// Intra-field parallel codec benchmarks: serial versus parallel pack and
// unpack for the two codecs with intra-field fan-out (sz: wavefront Lorenzo +
// sharded Huffman; zfp: chunked block coder). The recorded baseline lives in
// BENCH_compress.json and is gated by cmd/benchguard; speedup floors only
// apply on multi-core runners (see the baseline's runner note).
package fxrz_test

import (
	"fmt"
	"sync"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/grid"
)

// compressBenchWidths are the worker budgets the baseline records: serial,
// half fan-out, and the ISSUE's 1.5×-floor width.
var compressBenchWidths = []int{1, 2, 4}

var (
	compressBenchField     *grid.Field
	compressBenchFieldOnce sync.Once
)

// compressBenchInput is the ≥256³ field the speedup floor is measured on.
func compressBenchInput(b *testing.B) *grid.Field {
	b.Helper()
	compressBenchFieldOnce.Do(func() {
		f, err := datagen.NyxField("baryon_density", 1, 1, 256)
		if err != nil {
			b.Fatalf("generating bench field: %v", err)
		}
		compressBenchField = f
	})
	if compressBenchField == nil {
		b.Skip("bench field generation failed earlier")
	}
	return compressBenchField
}

// compressBenchKnob returns the codec's knob for the bench field: a 1e-3
// relative bound for error-bounded codecs.
func compressBenchKnob(f *grid.Field) float64 { return 1e-3 * f.ValueRange() }

func BenchmarkCompressPack(b *testing.B) {
	f := compressBenchInput(b)
	knob := compressBenchKnob(f)
	for _, name := range []string{"sz", "zfp"} {
		for _, w := range compressBenchWidths {
			b.Run(fmt.Sprintf("%s/w%d", name, w), func(b *testing.B) {
				base, err := fxrz.ByName(name)
				if err != nil {
					b.Fatal(err)
				}
				c := fxrz.WithParallelism(base, w)
				b.SetBytes(int64(f.Bytes()))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Compress(f, knob); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(f.Size()), "ns/elem")
			})
		}
	}
}

func BenchmarkCompressUnpack(b *testing.B) {
	f := compressBenchInput(b)
	knob := compressBenchKnob(f)
	for _, name := range []string{"sz", "zfp"} {
		base, err := fxrz.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		blob, err := base.Compress(f, knob)
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range compressBenchWidths {
			b.Run(fmt.Sprintf("%s/w%d", name, w), func(b *testing.B) {
				c := fxrz.WithParallelism(base, w)
				b.SetBytes(int64(f.Bytes()))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := c.Decompress(blob); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(f.Size()), "ns/elem")
			})
		}
	}
}
