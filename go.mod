module github.com/fxrz-go/fxrz

go 1.22
