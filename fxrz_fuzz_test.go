package fxrz_test

import (
	"math"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
)

// FuzzDecompress drives the top-level container dispatch — the exact path
// the fxrzd serve layer feeds attacker-controlled request bodies into — with
// arbitrary byte streams across every codec magic. The contract is strict:
// truncated, bit-flipped or absurd-dims inputs must come back as errors,
// never panics or implausibly large allocations, and the parallel decoder
// must agree with the serial one on both the verdict and every bit of the
// reconstruction.
func FuzzDecompress(f *testing.F) {
	fld, err := fxrz.NewField("seed", 6, 7, 5)
	if err != nil {
		f.Fatal(err)
	}
	for i := range fld.Data {
		fld.Data[i] = float32(i%13)*0.5 - float32(i%7)*0.25
	}
	// One valid stream per codec magic, so mutations explore each decoder's
	// near-valid neighborhood through the shared dispatch.
	for _, c := range []fxrz.Compressor{
		fxrz.NewSZ(), fxrz.NewSZ2(), fxrz.NewZFP(), fxrz.NewMGARD(),
	} {
		if blob, err := c.Compress(fld, 1e-3); err == nil {
			f.Add(blob)
			// The indexed-container neighborhood: same inner stream wrapped
			// with a region index, so mutations also explore index parsing.
			if ix, err := fxrz.IndexBlob(blob); err == nil {
				f.Add(ix)
			}
		}
	}
	if blob, err := fxrz.NewZFPFixedRate().Compress(fld, 8); err == nil {
		f.Add(blob)
	}
	if blob, err := fxrz.NewFPZIP().Compress(fld, 16); err == nil {
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{0x5A})
	// Headers claiming absurd geometry: dims whose product overflows int64
	// and dims far beyond any plausible payload budget.
	f.Add([]byte{0x5A, 0x01, 's', 0x04,
		0xff, 0xff, 0xff, 0xff, 0x1f, 0xff, 0xff, 0xff, 0xff, 0x1f,
		0xff, 0xff, 0xff, 0xff, 0x1f, 0xff, 0xff, 0xff, 0xff, 0x1f})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := fxrz.Decompress(data)
		if err == nil && g != nil && g.Size() > 1<<24 {
			t.Skip("oversized but well-formed header")
		}
		for _, w := range []int{2, 3} {
			pg, perr := fxrz.DecompressParallel(data, w)
			if (err == nil) != (perr == nil) {
				t.Fatalf("w=%d: serial err=%v, parallel err=%v", w, err, perr)
			}
			if err != nil {
				continue
			}
			for i := range g.Data {
				if math.Float32bits(g.Data[i]) != math.Float32bits(pg.Data[i]) {
					t.Fatalf("w=%d sample %d: serial %x, parallel %x",
						w, i, math.Float32bits(g.Data[i]), math.Float32bits(pg.Data[i]))
				}
			}
		}
		if err != nil {
			return
		}
		// Region cross-check: a deterministic in-bounds subvolume derived
		// from the input bytes must decode to exactly the matching slice of
		// the full reconstruction — on mutated-but-valid streams too.
		dims := g.Dims
		lo := make([]int, len(dims))
		hi := make([]int, len(dims))
		h := 0
		for _, b := range data {
			h = h*131 + int(b)&0xFF
		}
		if h < 0 {
			h = -h
		}
		for d, n := range dims {
			a := (h >> (3 * d)) % n
			b := (h >> (3*d + 7)) % n
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b+1
		}
		rg, rerr := fxrz.DecompressRegion(data, lo, hi)
		if rerr != nil {
			t.Fatalf("region %v:%v failed on decodable stream: %v", lo, hi, rerr)
		}
		i := 0
		coord := append([]int(nil), lo...)
		for {
			if want := g.At(coord...); math.Float32bits(rg.Data[i]) != math.Float32bits(want) {
				t.Fatalf("region %v:%v sample %d: %x != %x",
					lo, hi, i, math.Float32bits(rg.Data[i]), math.Float32bits(want))
			}
			i++
			d := len(coord) - 1
			for ; d >= 0; d-- {
				coord[d]++
				if coord[d] < hi[d] {
					break
				}
				coord[d] = lo[d]
			}
			if d < 0 {
				break
			}
		}
	})
}
