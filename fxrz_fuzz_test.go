package fxrz_test

import (
	"math"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
)

// FuzzDecompress drives the top-level container dispatch — the exact path
// the fxrzd serve layer feeds attacker-controlled request bodies into — with
// arbitrary byte streams across every codec magic. The contract is strict:
// truncated, bit-flipped or absurd-dims inputs must come back as errors,
// never panics or implausibly large allocations, and the parallel decoder
// must agree with the serial one on both the verdict and every bit of the
// reconstruction.
func FuzzDecompress(f *testing.F) {
	fld, err := fxrz.NewField("seed", 6, 7, 5)
	if err != nil {
		f.Fatal(err)
	}
	for i := range fld.Data {
		fld.Data[i] = float32(i%13)*0.5 - float32(i%7)*0.25
	}
	// One valid stream per codec magic, so mutations explore each decoder's
	// near-valid neighborhood through the shared dispatch.
	for _, c := range []fxrz.Compressor{
		fxrz.NewSZ(), fxrz.NewSZ2(), fxrz.NewZFP(), fxrz.NewMGARD(),
	} {
		if blob, err := c.Compress(fld, 1e-3); err == nil {
			f.Add(blob)
		}
	}
	if blob, err := fxrz.NewZFPFixedRate().Compress(fld, 8); err == nil {
		f.Add(blob)
	}
	if blob, err := fxrz.NewFPZIP().Compress(fld, 16); err == nil {
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{0x5A})
	// Headers claiming absurd geometry: dims whose product overflows int64
	// and dims far beyond any plausible payload budget.
	f.Add([]byte{0x5A, 0x01, 's', 0x04,
		0xff, 0xff, 0xff, 0xff, 0x1f, 0xff, 0xff, 0xff, 0xff, 0x1f,
		0xff, 0xff, 0xff, 0xff, 0x1f, 0xff, 0xff, 0xff, 0xff, 0x1f})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := fxrz.Decompress(data)
		if err == nil && g != nil && g.Size() > 1<<24 {
			t.Skip("oversized but well-formed header")
		}
		for _, w := range []int{2, 3} {
			pg, perr := fxrz.DecompressParallel(data, w)
			if (err == nil) != (perr == nil) {
				t.Fatalf("w=%d: serial err=%v, parallel err=%v", w, err, perr)
			}
			if err != nil {
				continue
			}
			for i := range g.Data {
				if math.Float32bits(g.Data[i]) != math.Float32bits(pg.Data[i]) {
					t.Fatalf("w=%d sample %d: serial %x, parallel %x",
						w, i, math.Float32bits(g.Data[i]), math.Float32bits(pg.Data[i]))
				}
			}
		}
	})
}
