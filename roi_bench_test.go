package fxrz_test

import (
	"fmt"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
)

// BenchmarkRegionDecode measures what the region index buys: decoding a
// centered 32³ subvolume (1/8 of the volume) out of an indexed 64³ stream
// versus decoding the whole field through the same entry point. The full/
// eighth pair is measured within one run, so the ratio gates on any machine;
// BENCH_roi.json records it and `make bench-roi` fails if the eighth-volume
// speedup regresses. Both pairs carry benchguard floors: zfp seeks its own
// 4³ blocks, and sz's chunked entropy container now seeks too — a region
// decode entropy-decodes only the chunks covering its slabs and skips the
// Lorenzo arithmetic outside the region's prefix box.
func BenchmarkRegionDecode(b *testing.B) {
	f, err := datagen.NyxField("baryon_density", 1, 2, 64)
	if err != nil {
		b.Fatal(err)
	}
	knob := 1e-3 * f.ValueRange()
	full := [][]int{{0, 0, 0}, {64, 64, 64}}
	eighth := [][]int{{16, 16, 16}, {48, 48, 48}}
	for _, codec := range []struct {
		name string
		c    fxrz.Compressor
	}{
		{"zfp", fxrz.NewZFP()},
		{"sz", fxrz.NewSZ()},
	} {
		blob, err := codec.c.Compress(f, knob)
		if err != nil {
			b.Fatal(err)
		}
		indexed, err := fxrz.IndexBlob(blob)
		if err != nil {
			b.Fatal(err)
		}
		overhead := float64(len(indexed)-len(blob)) / float64(len(blob))
		for _, region := range []struct {
			name   string
			lo, hi []int
		}{
			{"full", full[0], full[1]},
			{"eighth", eighth[0], eighth[1]},
		} {
			b.Run(fmt.Sprintf("%s/%s", codec.name, region.name), func(b *testing.B) {
				b.ReportMetric(overhead, "idx-frac")
				for i := 0; i < b.N; i++ {
					if _, err := fxrz.DecompressRegion(indexed, region.lo, region.hi); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
