// Package archive implements a simple multi-field container for campaigns
// of fixed-ratio-compressed scientific fields: many compressed streams, one
// file, random access by field name. It is the storage-quota use case of
// the paper (§III-B) made concrete — compress every snapshot of a campaign
// toward the quota-derived target ratio and keep them individually
// retrievable.
//
// Layout:
//
//	"FXRZARCH1"
//	entry*        each: raw compressed stream bytes
//	index         gob([]entryMeta)
//	footer        8-byte little-endian index offset, "FXRZEND1"
//
// Entries are written streaming (no seeking); the index carries offsets for
// random access on read.
package archive

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	fxrz "github.com/fxrz-go/fxrz"
)

const (
	magic  = "FXRZARCH1"
	footer = "FXRZEND1"
)

// ErrNotFound reports a missing archive member.
var ErrNotFound = errors.New("archive: field not found")

// Entry describes one archived field.
type Entry struct {
	// Name is the archive member name (unique).
	Name string
	// Offset and Size locate the compressed stream in the file.
	Offset int64
	Size   int64
	// RawBytes is the uncompressed field size, for ratio accounting.
	RawBytes int64
}

// Ratio returns the member's compression ratio.
func (e Entry) Ratio() float64 {
	if e.Size == 0 {
		return 0
	}
	return float64(e.RawBytes) / float64(e.Size)
}

// Writer builds an archive on a streaming writer.
type Writer struct {
	w       io.Writer
	off     int64
	entries []Entry
	names   map[string]bool
	closed  bool
}

// NewWriter starts an archive on w.
func NewWriter(w io.Writer) (*Writer, error) {
	n, err := io.WriteString(w, magic)
	if err != nil {
		return nil, err
	}
	return &Writer{w: w, off: int64(n), names: map[string]bool{}}, nil
}

// Add appends a compressed stream under a unique name. rawBytes records the
// uncompressed size for ratio reporting (0 if unknown).
func (w *Writer) Add(name string, blob []byte, rawBytes int64) error {
	if w.closed {
		return errors.New("archive: writer closed")
	}
	if name == "" {
		return errors.New("archive: empty member name")
	}
	if w.names[name] {
		return fmt.Errorf("archive: duplicate member %q", name)
	}
	if len(blob) == 0 {
		return fmt.Errorf("archive: empty stream for %q", name)
	}
	n, err := w.w.Write(blob)
	if err != nil {
		return err
	}
	w.entries = append(w.entries, Entry{Name: name, Offset: w.off, Size: int64(n), RawBytes: rawBytes})
	w.names[name] = true
	w.off += int64(n)
	return nil
}

// AddField compresses the field toward the target ratio with the framework
// and archives it under the field's name.
func (w *Writer) AddField(fw *fxrz.Framework, f *fxrz.Field, targetRatio float64) error {
	blob, _, err := fw.CompressToRatio(f, targetRatio)
	if err != nil {
		return err
	}
	return w.Add(f.Name, blob, int64(f.Bytes()))
}

// Close writes the index and footer. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	idxOff := w.off
	enc := gob.NewEncoder(w.w)
	if err := enc.Encode(w.entries); err != nil {
		return fmt.Errorf("archive: writing index: %w", err)
	}
	var tail [8]byte
	binary.LittleEndian.PutUint64(tail[:], uint64(idxOff))
	if _, err := w.w.Write(tail[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w.w, footer)
	return err
}

// Reader provides random access to an archive.
type Reader struct {
	r       io.ReaderAt
	entries []Entry
	byName  map[string]int
}

// OpenReader parses the index of an archive of the given total size.
func OpenReader(r io.ReaderAt, size int64) (*Reader, error) {
	head := make([]byte, len(magic))
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("archive: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("archive: not an FXRZ archive")
	}
	tailLen := int64(8 + len(footer))
	if size < int64(len(magic))+tailLen {
		return nil, errors.New("archive: truncated")
	}
	tail := make([]byte, tailLen)
	if _, err := r.ReadAt(tail, size-tailLen); err != nil {
		return nil, fmt.Errorf("archive: reading footer: %w", err)
	}
	if string(tail[8:]) != footer {
		return nil, errors.New("archive: missing footer (truncated write?)")
	}
	idxOff := int64(binary.LittleEndian.Uint64(tail[:8]))
	if idxOff < int64(len(magic)) || idxOff > size-tailLen {
		return nil, errors.New("archive: corrupt index offset")
	}
	idx := make([]byte, size-tailLen-idxOff)
	if _, err := r.ReadAt(idx, idxOff); err != nil {
		return nil, fmt.Errorf("archive: reading index: %w", err)
	}
	var entries []Entry
	if err := gob.NewDecoder(bytes.NewReader(idx)).Decode(&entries); err != nil {
		return nil, fmt.Errorf("archive: decoding index: %w", err)
	}
	rd := &Reader{r: r, entries: entries, byName: make(map[string]int, len(entries))}
	for i, e := range entries {
		if e.Offset < int64(len(magic)) || e.Size <= 0 || e.Offset+e.Size > idxOff {
			return nil, fmt.Errorf("archive: corrupt entry %q", e.Name)
		}
		rd.byName[e.Name] = i
	}
	return rd, nil
}

// List returns the archive members in write order.
func (r *Reader) List() []Entry { return append([]Entry(nil), r.entries...) }

// Blob returns the raw compressed stream of a member.
func (r *Reader) Blob(name string) ([]byte, error) {
	i, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	e := r.entries[i]
	buf := make([]byte, e.Size)
	if _, err := r.r.ReadAt(buf, e.Offset); err != nil {
		return nil, fmt.Errorf("archive: reading %q: %w", name, err)
	}
	return buf, nil
}

// Field decompresses a member through the built-in codec dispatch.
func (r *Reader) Field(name string) (*fxrz.Field, error) {
	blob, err := r.Blob(name)
	if err != nil {
		return nil, err
	}
	return fxrz.Decompress(blob)
}

// TotalCompressed returns the summed member sizes (excluding index/framing).
func (r *Reader) TotalCompressed() int64 {
	var s int64
	for _, e := range r.entries {
		s += e.Size
	}
	return s
}
