package archive

import (
	"bytes"
	"errors"
	"math"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
)

func sampleField(name string, seed int) *fxrz.Field {
	f, err := fxrz.NewField(name, 12, 12, 12)
	if err != nil {
		panic(err)
	}
	for i := range f.Data {
		f.Data[i] = float32(math.Sin(float64(i+seed*37) / 20))
	}
	return f
}

func buildArchive(t *testing.T, names ...string) ([]byte, map[string]*fxrz.Field) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	c := fxrz.NewSZ()
	fields := map[string]*fxrz.Field{}
	for i, name := range names {
		f := sampleField(name, i)
		fields[name] = f
		blob, err := c.Compress(f, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Add(name, blob, int64(f.Bytes())); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), fields
}

func TestArchiveRoundTrip(t *testing.T) {
	data, fields := buildArchive(t, "a", "b", "c")
	r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	list := r.List()
	if len(list) != 3 {
		t.Fatalf("%d members", len(list))
	}
	for _, e := range list {
		if e.Ratio() <= 0 {
			t.Errorf("%s: ratio %v", e.Name, e.Ratio())
		}
		got, err := r.Field(e.Name)
		if err != nil {
			t.Fatalf("Field(%s): %v", e.Name, err)
		}
		want := fields[e.Name]
		maxErr, err := fxrz.MaxAbsError(want, got)
		if err != nil {
			t.Fatal(err)
		}
		if maxErr > 1e-3 {
			t.Errorf("%s: max error %v", e.Name, maxErr)
		}
	}
	if r.TotalCompressed() <= 0 || r.TotalCompressed() >= int64(len(data)) {
		t.Errorf("TotalCompressed = %d of %d", r.TotalCompressed(), len(data))
	}
}

func TestArchiveRandomAccessOrderIndependent(t *testing.T) {
	data, _ := buildArchive(t, "x", "y", "z")
	r, err := OpenReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	// Access members out of order.
	for _, name := range []string{"z", "x", "y", "x"} {
		if _, err := r.Field(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := r.Blob("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing member error = %v", err)
	}
}

func TestArchiveWriterValidation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add("", []byte{1}, 0); err == nil {
		t.Error("empty name accepted")
	}
	if err := w.Add("a", nil, 0); err == nil {
		t.Error("empty stream accepted")
	}
	if err := w.Add("a", []byte{1, 2}, 8); err != nil {
		t.Fatal(err)
	}
	if err := w.Add("a", []byte{3}, 8); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Add("b", []byte{1}, 0); err == nil {
		t.Error("add after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestArchiveRejectsCorrupt(t *testing.T) {
	data, _ := buildArchive(t, "a")
	if _, err := OpenReader(bytes.NewReader(data[:4]), 4); err == nil {
		t.Error("truncated archive accepted")
	}
	if _, err := OpenReader(bytes.NewReader([]byte("JUNKJUNKJUNKJUNKJUNKJUNK")), 24); err == nil {
		t.Error("junk accepted")
	}
	// Cut the footer off.
	cut := data[:len(data)-3]
	if _, err := OpenReader(bytes.NewReader(cut), int64(len(cut))); err == nil {
		t.Error("missing footer accepted")
	}
	// Corrupt the index offset.
	mut := append([]byte(nil), data...)
	mut[len(mut)-9] ^= 0xFF
	if _, err := OpenReader(bytes.NewReader(mut), int64(len(mut))); err == nil {
		t.Error("corrupt index offset accepted")
	}
}

func TestAddFieldUsesFramework(t *testing.T) {
	var training []*fxrz.Field
	for i := 0; i < 3; i++ {
		training = append(training, sampleField("train", i))
	}
	cfg := fxrz.DefaultConfig()
	cfg.StationaryPoints = 8
	cfg.AugmentPerField = 30
	cfg.Trees = 20
	fw, err := fxrz.Train(fxrz.NewSZ(), training, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f := sampleField("snap", 9)
	lo, hi := fw.ValidRatioRange(f)
	if err := w.AddField(fw, f, (lo+hi)/2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Field("snap"); err != nil {
		t.Fatal(err)
	}
}
