// Package fxrz is the public API of FXRZ — a feature-driven, fixed-ratio,
// compressor-agnostic lossy compression framework for scientific data
// (Rahman et al., ICDE 2023).
//
// Error-bounded lossy compressors answer "how big is the output for this
// error bound?"; FXRZ answers the inverse question practitioners actually
// face under storage quotas, bandwidth caps and memory limits: "which error
// bound reaches this target compression ratio?" — and answers it without
// running the compressor at decision time.
//
// # Quick start
//
//	c := fxrz.NewSZ()
//	fw, err := fxrz.Train(c, trainingFields, fxrz.DefaultConfig())
//	...
//	blob, est, err := fw.CompressToRatio(field, 100) // target ratio 100:1
//
// Train runs the compressor ~25 times per training field to collect
// stationary (error bound, ratio) points, augments them by interpolation,
// and fits a random-forest regressor from (data features, adjusted target
// ratio) to the error-bound setting. EstimateConfig/CompressToRatio then
// cost only a stride-sampled feature extraction plus a model query —
// typically a small fraction of one compression.
//
// Four built-in codecs implement the full compressor suite of the paper's
// evaluation: SZ-style prediction-based (NewSZ), ZFP transform-based in
// fixed-accuracy (NewZFP) and fixed-rate (NewZFPFixedRate) modes,
// FPZIP-style precision-based (NewFPZIP), and MGARD+-style multilevel
// (NewMGARD). Anything else can participate by implementing Compressor.
package fxrz

import (
	"fmt"
	"io"

	"github.com/fxrz-go/fxrz/internal/brick"
	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/core"
	"github.com/fxrz-go/fxrz/internal/fpzip"
	"github.com/fxrz-go/fxrz/internal/fraz"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/metrics"
	"github.com/fxrz-go/fxrz/internal/mgard"
	"github.com/fxrz-go/fxrz/internal/roi"
	"github.com/fxrz-go/fxrz/internal/sz"
	"github.com/fxrz-go/fxrz/internal/zfp"
)

// Field is a dense 1–4 dimensional float32 scientific field; see NewField.
type Field = grid.Field

// Compressor is an error-controlled lossy compressor: a codec driven by a
// single scalar knob (an absolute error bound, or an integer precision for
// FPZIP-style codecs), described by its Axis.
type Compressor = compress.Compressor

// Axis describes a compressor's configuration knob.
type Axis = compress.Axis

// Config controls training and inference; see DefaultConfig.
type Config = core.Config

// Features are the statistical data features FXRZ extracts (§IV-C).
type Features = core.Features

// Estimate is the inference output: the knob plus the analysis breakdown.
type Estimate = core.Estimate

// TrainStats breaks down where training time went.
type TrainStats = core.TrainStats

// FRaZConfig configures the FRaZ baseline search (see SearchFRaZ).
type FRaZConfig = fraz.Config

// FRaZResult is the outcome of a FRaZ search.
type FRaZResult = fraz.Result

// Model kinds for Config.Model.
const (
	ModelRFR      = core.ModelRFR
	ModelAdaBoost = core.ModelAdaBoost
	ModelSVR      = core.ModelSVR
)

// NewField allocates a zero-filled field with the given dimensions
// (slowest-varying first; 1 to 4 dimensions).
func NewField(name string, dims ...int) (*Field, error) { return grid.New(name, dims...) }

// FieldFromData wraps an existing float32 slice as a field without copying.
func FieldFromData(name string, data []float32, dims ...int) (*Field, error) {
	return grid.FromData(name, data, dims...)
}

// NewSZ returns the SZ-style prediction-based compressor (Lorenzo predictor,
// linear-scaling quantization, Huffman+LZ back end). Knob: absolute error
// bound.
func NewSZ() Compressor { return sz.New() }

// NewSZ2 returns the SZ2-style compressor: SZ's pipeline with per-block
// selection between the Lorenzo predictor and a linear-regression predictor
// (the design of the actual SZ 2.x releases). Knob: absolute error bound.
func NewSZ2() Compressor { return sz.NewV2() }

// NewZFP returns the ZFP transform-based compressor in fixed-accuracy mode.
// Knob: absolute error tolerance.
func NewZFP() Compressor { return zfp.New() }

// NewZFPFixedRate returns ZFP in fixed-rate mode. Knob: bits per value.
// Fixed-rate reaches a target ratio exactly by construction but at markedly
// worse quality than fixed-accuracy mode at the same ratio — the trade-off
// that motivates fixed-ratio frameworks in the first place.
func NewZFPFixedRate() Compressor { return zfp.NewFixedRate() }

// NewFPZIP returns the FPZIP-style predictive compressor. Knob: integer
// precision in [2, 32] (retained significant bits).
func NewFPZIP() Compressor { return fpzip.New() }

// NewMGARD returns the MGARD+-style multilevel interpolation compressor.
// Knob: absolute error bound.
func NewMGARD() Compressor { return mgard.New() }

// WithRelativeBound wraps an absolute-error-bound codec so its knob becomes
// a value-range-relative bound in (0, 1] (SZ's "REL" mode): the same setting
// then means the same proportional distortion on any dataset. Precision-knob
// codecs (FPZIP) cannot be wrapped.
func WithRelativeBound(c Compressor) Compressor { return compress.NewRelBound(c) }

// WithParallelism returns the codec configured for the given intra-field
// worker budget (0 uses all cores, 1 forces serial). Codecs without
// intra-field parallelism are returned unchanged. Output streams and
// reconstructions are bit-identical at every setting.
func WithParallelism(c Compressor, workers int) Compressor {
	return compress.WithWorkers(c, workers)
}

// Compressors returns the four codecs of the paper's evaluation, in the
// order the experiment tables list them.
func Compressors() []Compressor {
	return []Compressor{NewSZ(), NewZFP(), NewMGARD(), NewFPZIP()}
}

// ByName resolves a codec by its Name(): "sz", "sz2", "zfp", "zfp-rate",
// "fpzip", "mgard".
func ByName(name string) (Compressor, error) {
	switch name {
	case "sz":
		return NewSZ(), nil
	case "sz2":
		return NewSZ2(), nil
	case "zfp":
		return NewZFP(), nil
	case "zfp-rate":
		return NewZFPFixedRate(), nil
	case "fpzip":
		return NewFPZIP(), nil
	case "mgard":
		return NewMGARD(), nil
	}
	return nil, fmt.Errorf("fxrz: unknown compressor %q (want sz, sz2, zfp, zfp-rate, fpzip or mgard)", name)
}

// DefaultConfig returns the paper's configuration: stride-4 feature
// sampling, Compressibility Adjustment with λ=0.15 over 4³ blocks, 25
// stationary points per training field, and a 100-tree random forest.
func DefaultConfig() Config { return core.DefaultConfig() }

// Framework is a trained FXRZ instance bound to one compressor. A trained
// framework is immutable: EstimateConfig, CompressToRatio, BrickToRatio and
// ValidRatioRange are safe for concurrent use from multiple goroutines.
type Framework struct {
	inner *core.Framework
	codec Compressor
}

// Train builds a framework for the compressor from training fields. This is
// the only phase that runs the compressor (Config.StationaryPoints runs per
// field); inference is compression-free.
func Train(c Compressor, fields []*Field, cfg Config) (*Framework, error) {
	fw, err := core.Train(c, fields, cfg)
	if err != nil {
		return nil, err
	}
	return &Framework{inner: fw, codec: compress.WithWorkers(c, cfg.Parallelism)}, nil
}

// WithParallelism returns a framework whose analysis passes and codec runs
// use the given worker budget (0 uses all cores, 1 forces serial). The
// trained model is shared; estimates, streams and reconstructions are
// bit-identical at every setting.
func (fw *Framework) WithParallelism(workers int) *Framework {
	return &Framework{
		inner: fw.inner.WithParallelism(workers),
		codec: compress.WithWorkers(fw.codec, workers),
	}
}

// EstimateConfig predicts the knob (error bound or precision) expected to
// reach the target compression ratio on the field, without compressing.
func (fw *Framework) EstimateConfig(f *Field, targetRatio float64) (Estimate, error) {
	return fw.inner.EstimateConfig(f, targetRatio)
}

// EstimateFromFeatures predicts the knob from pre-extracted features alone —
// one model query, no field access. caRatio supplies the Compressibility
// Adjustment block ratio R when the caller knows it (NonConstantR of an
// earlier estimate for the same variable); caRatio <= 0 skips adjustment.
// This is the fxrzd serving fast path for clients that cache their features.
func (fw *Framework) EstimateFromFeatures(ft Features, targetRatio, caRatio float64) (Estimate, error) {
	return fw.inner.EstimateFromFeatures(ft, targetRatio, caRatio)
}

// CompressToRatio estimates the knob for the target ratio and compresses the
// field with it, returning the stream and the estimate used.
func (fw *Framework) CompressToRatio(f *Field, targetRatio float64) ([]byte, Estimate, error) {
	est, err := fw.inner.EstimateConfig(f, targetRatio)
	if err != nil {
		return nil, est, err
	}
	blob, err := fw.codec.Compress(f, est.Knob)
	if err != nil {
		return nil, est, fmt.Errorf("fxrz: compressing at estimated knob %g: %w", est.Knob, err)
	}
	return blob, est, nil
}

// Stats returns the training-time breakdown (Table VI).
func (fw *Framework) Stats() TrainStats { return fw.inner.Stats() }

// ValidRatioRange reports the target-ratio interval the framework can serve
// for a field without extrapolating beyond its training curves — choose
// targets inside it, exactly as the paper selects per-dataset valid ratio
// ranges.
func (fw *Framework) ValidRatioRange(f *Field) (lo, hi float64) {
	return fw.inner.ValidRatioRange(f)
}

// Save persists a trained framework (random-forest models only) so later
// runs — and, as the paper envisions, other users of the same application —
// can skip training.
func (fw *Framework) Save(w io.Writer) error { return fw.inner.Save(w) }

// Load restores a framework saved with Save and binds it to the compressor
// it was trained for (resolved by name via ByName).
func Load(r io.Reader) (*Framework, error) {
	inner, err := core.LoadFramework(r)
	if err != nil {
		return nil, err
	}
	c, err := ByName(inner.CompressorName())
	if err != nil {
		return nil, fmt.Errorf("fxrz: model was trained for %q: %w", inner.CompressorName(), err)
	}
	return &Framework{inner: inner, codec: c}, nil
}

// Compressor returns the codec the framework was trained for.
func (fw *Framework) Compressor() Compressor { return fw.codec }

// ExtractFeatures computes the data features on a uniform stride-K sample of
// the field (stride 4 keeps ~1.5% of a 3D field); stride <= 1 uses every
// point.
func ExtractFeatures(f *Field, stride int) Features { return core.ExtractFeatures(f, stride) }

// Ratio returns a stream's compression ratio against its source field.
func Ratio(f *Field, blob []byte) float64 { return compress.Ratio(f, blob) }

// MaxAbsError returns the L∞ distance between two equally-shaped fields.
func MaxAbsError(a, b *Field) (float64, error) { return compress.MaxAbsError(a, b) }

// PSNR returns the peak signal-to-noise ratio of a reconstruction in dB.
func PSNR(orig, rec *Field) (float64, error) { return metrics.PSNR(orig, rec) }

// BoundForPSNR returns the absolute error bound expected to deliver the
// target PSNR (dB) under an SZ-style quantizer — the analytic quality→bound
// mapping of the related work, complementing the ratio→bound mapping FXRZ
// learns.
func BoundForPSNR(f *Field, targetPSNR float64) (float64, error) {
	return metrics.BoundForPSNR(f, targetPSNR)
}

// Decompress reconstructs a field from any stream produced by the built-in
// codecs, dispatching on the stream's magic byte. It decodes serially; use
// DecompressParallel to spend more cores on large fields.
func Decompress(blob []byte) (*Field, error) { return DecompressParallel(blob, 1) }

// DecompressParallel is Decompress with an intra-field worker budget (0 uses
// all cores, 1 decodes serially). The reconstruction is bit-identical at
// every setting.
func DecompressParallel(blob []byte, workers int) (*Field, error) {
	if len(blob) == 0 {
		return nil, fmt.Errorf("fxrz: empty stream")
	}
	var c Compressor
	switch blob[0] {
	case compress.MagicSZ:
		c = sz.New()
	case compress.MagicSZ2:
		c = sz.NewV2()
	case compress.MagicZFP:
		c = zfp.New()
	case compress.MagicFPZIP:
		c = fpzip.New()
	case compress.MagicMGARD:
		c = mgard.New()
	case compress.MagicIndexed:
		// Indexed container: the inner blob is byte-identical to an
		// un-indexed stream, so full decode is exactly the pre-index path.
		inner, _, err := roi.Unwrap(blob)
		if err != nil {
			return nil, err
		}
		return DecompressParallel(inner, workers)
	default:
		return nil, fmt.Errorf("fxrz: unrecognised stream (magic 0x%02x)", blob[0])
	}
	return compress.WithWorkers(c, workers).Decompress(blob)
}

// IndexBlob wraps a compressed stream into the indexed container format,
// building the region index that lets DecompressRegion seek (one extra
// skim/decode pass at write time, typically <1% extra bytes for zfp
// streams). Indexing is idempotent; codecs without a seekable layout get an
// empty index and still region-decode via the fallback path. Full-field
// decode of the result is bit-identical to decoding the original stream.
func IndexBlob(blob []byte) ([]byte, error) { return roi.Build(blob) }

// ParseRegion parses the textual region syntax "lo0:hi0,lo1:hi1,..."
// (half-open, slowest dimension first) shared by `fxrz unpack -region` and
// the serving layer's region parameter.
func ParseRegion(s string) (lo, hi []int, err error) { return roi.ParseRegion(s) }

// DecompressRegion decodes only the half-open subvolume [lo, hi) of a
// stream — an indexed container, a raw codec blob, or a marshaled brick
// store — returning a field of shape hi-lo whose samples are bit-identical
// to the corresponding slice of a full decode. The cost scales with the
// region, not the field: zfp seeks to block offsets, sz entropy-decodes only
// the chunks covering the region's slabs and restarts the Lorenzo recurrence
// at each one (legacy whole-stream sz blobs restart at the nearest indexed
// slab instead, see IndexBlob), and brick stores read only intersecting
// chunks. Codecs without seekable structure fall back to full decode +
// slice — always correct, just slower.
func DecompressRegion(blob []byte, lo, hi []int) (*Field, error) {
	return DecompressRegionParallel(blob, lo, hi, 1)
}

// DecompressRegionParallel is DecompressRegion with a worker budget for the
// fallback full-decode paths (the seeking paths are serial — they touch too
// little data to fan out). Output is bit-identical at every setting.
func DecompressRegionParallel(blob []byte, lo, hi []int, workers int) (*Field, error) {
	return roi.DecodeRegion(blob, lo, hi, workers)
}

// RegionReader provides O(1) materialized random access over a compressed
// stream: At(coord...) decodes lazily — block by block for zfp streams, slab
// by slab for chunked sz streams — and performs zero heap allocations once
// the blocks or slabs under a query region are warm. See OpenReader.
type RegionReader = roi.Reader

// OpenReader parses a stream (indexed container, raw codec blob, or
// marshaled brick store) for lazy point access without decoding any samples.
func OpenReader(blob []byte) (*RegionReader, error) { return roi.NewReader(blob) }

// BrickStore is a chunked compressed representation of one field with
// random access: each brick decompresses independently, so region reads
// touch only the bricks they intersect. See BuildBricks.
type BrickStore = brick.Store

// BuildBricks compresses a field as independent bricks of the given side at
// a fixed knob (error bound or precision).
func BuildBricks(c Compressor, f *Field, side int, knob float64) (*BrickStore, error) {
	return brick.Build(c, f, side, knob)
}

// LoadBricks restores a store persisted with (*BrickStore).Marshal; the
// codec must match the one it was built with.
func LoadBricks(c Compressor, blob []byte) (*BrickStore, error) {
	return brick.Unmarshal(c, blob)
}

// BrickSet is an ordered collection of brick stores sharing one field
// geometry — a time window or ensemble — read through one region plan. See
// OpenBrickSet.
type BrickSet = brick.Set

// OpenBrickSet restores a set from marshaled brick-store blobs, detecting
// each member's codec from its streams. It backs the serving layer's
// multi-field region reads (/v1/unpack-many with ?region=).
func OpenBrickSet(blobs ...[]byte) (*BrickSet, error) {
	return brick.OpenSet(roi.ResolveCodec, blobs...)
}

// BrickToRatio estimates the knob for the target overall ratio and builds a
// random-access brick store at that knob — fixed-ratio compression that can
// be read region by region.
func (fw *Framework) BrickToRatio(f *Field, targetRatio float64, side int) (*BrickStore, Estimate, error) {
	est, err := fw.inner.EstimateConfig(f, targetRatio)
	if err != nil {
		return nil, est, err
	}
	st, err := brick.Build(fw.codec, f, side, est.Knob)
	if err != nil {
		return nil, est, err
	}
	return st, est, nil
}

// SearchFRaZ runs the FRaZ baseline: an iterative trial-and-error search
// that *runs the compressor* each iteration. It is provided for comparison
// and for targets outside a trained framework's range.
func SearchFRaZ(c Compressor, f *Field, targetRatio float64, cfg FRaZConfig) (FRaZResult, error) {
	return fraz.Search(c, f, targetRatio, cfg)
}

// DefaultFRaZConfig mirrors the paper's FRaZ setup (3 bins) with the given
// per-bin iteration cap (the evaluation uses 6 and 15).
func DefaultFRaZConfig(maxIters int) FRaZConfig { return fraz.DefaultConfig(maxIters) }
