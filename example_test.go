package fxrz_test

import (
	"bytes"
	"fmt"
	"log"

	fxrz "github.com/fxrz-go/fxrz"
)

// Example demonstrates the core fixed-ratio workflow: train once, then
// compress toward target ratios without running the compressor to decide.
func Example() {
	// Training snapshots come from your application; any []float32 works.
	var training []*fxrz.Field
	for ts := 0; ts < 3; ts++ {
		f, _ := fxrz.NewField(fmt.Sprintf("run1/ts%d", ts), 32, 32, 32)
		fillDemo(f, ts)
		training = append(training, f)
	}
	fw, err := fxrz.Train(fxrz.NewSZ(), training, fxrz.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	snapshot, _ := fxrz.NewField("run2/ts7", 32, 32, 32)
	fillDemo(snapshot, 7)

	blob, est, err := fw.CompressToRatio(snapshot, 20)
	if err != nil {
		log.Fatal(err)
	}
	restored, _ := fxrz.Decompress(blob)
	maxErr, _ := fxrz.MaxAbsError(snapshot, restored)
	_ = est.Knob // the error bound FXRZ chose
	fmt.Println(maxErr <= est.Knob)
	// Output: true
}

// ExampleFramework_Save shows persisting a trained model for later runs.
func ExampleFramework_Save() {
	f, _ := fxrz.NewField("train", 24, 24, 24)
	fillDemo(f, 1)
	fw, err := fxrz.Train(fxrz.NewZFP(), []*fxrz.Field{f}, fxrz.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		log.Fatal(err)
	}
	reloaded, err := fxrz.Load(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(reloaded.Compressor().Name())
	// Output: zfp
}

// ExampleFramework_BrickToRatio shows fixed-ratio compression with random
// access: region reads decompress only the bricks they touch.
func ExampleFramework_BrickToRatio() {
	f, _ := fxrz.NewField("field", 32, 32, 32)
	fillDemo(f, 2)
	fw, err := fxrz.Train(fxrz.NewSZ(), []*fxrz.Field{f}, fxrz.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	snapshot, _ := fxrz.NewField("snap", 32, 32, 32)
	fillDemo(snapshot, 3)
	store, _, err := fw.BrickToRatio(snapshot, 10, 16)
	if err != nil {
		log.Fatal(err)
	}
	region, err := store.ReadRegion([]int{8, 8, 8}, []int{4, 4, 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(region.Size())
	// Output: 64
}

// fillDemo writes a deterministic smooth field for the examples.
func fillDemo(f *fxrz.Field, seed int) {
	for i := range f.Data {
		v := float32((i*(seed+3))%97)/97 + float32(i%13)*0.01
		f.Data[i] = v
	}
}
