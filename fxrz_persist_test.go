package fxrz_test

import (
	"bytes"
	"strings"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
)

func TestPublicSaveLoad(t *testing.T) {
	fw, err := fxrz.Train(fxrz.NewZFP(), trainFields(t), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := fxrz.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Compressor().Name() != "zfp" {
		t.Errorf("compressor = %q", got.Compressor().Name())
	}
	f := testField(t)
	a, err := fw.EstimateConfig(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.EstimateConfig(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Knob != b.Knob {
		t.Errorf("estimates diverge after reload: %v vs %v", a.Knob, b.Knob)
	}
	// The reloaded framework can drive the codec end to end.
	blob, _, err := got.CompressToRatio(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fxrz.Decompress(blob); err != nil {
		t.Fatal(err)
	}
}

func TestPublicLoadGarbage(t *testing.T) {
	if _, err := fxrz.Load(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage model accepted")
	}
}
