// Random access: post-hoc analysis rarely needs a whole snapshot — it reads
// a slab around a feature of interest (a halo, a storm core, a wavefront).
// The brick store keeps a snapshot compressed at a target overall ratio and
// decompresses only the bricks a query touches, so a small region read costs
// a small fraction of a full decompression.
package main

import (
	"fmt"
	"log"
	"time"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
)

func main() {
	var training []*fxrz.Field
	for _, ts := range []int{1, 3, 5} {
		f, err := datagen.NyxField("baryon_density", 1, ts, 64)
		if err != nil {
			log.Fatal(err)
		}
		training = append(training, f)
	}
	fw, err := fxrz.Train(fxrz.NewSZ(), training, fxrz.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	snapshot, err := datagen.NyxField("baryon_density", 2, 2, 64)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := fw.ValidRatioRange(snapshot)
	target := lo + 0.4*(hi-lo)

	// Brick side trades access granularity against per-brick overhead: tiny
	// bricks pay stream headers repeatedly and fall short of the target
	// ratio, so match the side to the smallest region analysis touches.
	store, est, err := fw.BrickToRatio(snapshot, target, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bricked %s at knob %.4g: %d bricks, overall ratio %.1f (target %.1f)\n",
		snapshot.Name, est.Knob, store.Bricks(), store.Ratio(), target)

	// Query a small slab around the densest halo: find it via one coarse
	// pass on the reconstructed full field (analysis would usually know the
	// position from a catalog).
	full, err := store.ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	best, bi := float32(-1), 0
	for i, v := range full.Data {
		if v > best {
			best, bi = v, i
		}
	}
	c := full.Coord(bi)
	origin := []int{clamp(c[0]-8, 0, 48), clamp(c[1]-8, 0, 48), clamp(c[2]-8, 0, 48)}
	shape := []int{16, 16, 16}

	t0 := time.Now()
	region, err := store.ReadRegion(origin, shape)
	if err != nil {
		log.Fatal(err)
	}
	regionTime := time.Since(t0)

	t1 := time.Now()
	if _, err := store.ReadAll(); err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(t1)

	fmt.Printf("densest structure at %v (density %.1f)\n", c, best)
	fmt.Printf("region read %v+%v: %v vs full decompression %v (%.0f× less work)\n",
		origin, shape, regionTime.Round(time.Microsecond), fullTime.Round(time.Microsecond),
		float64(fullTime)/float64(regionTime))
	_ = region

	// The store survives serialisation for on-disk analysis caches.
	blob := store.Marshal()
	restored, err := fxrz.LoadBricks(fxrz.NewSZ(), blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persisted store: %.2f MB, %d bricks after reload\n", float64(len(blob))/1e6, restored.Bricks())
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
