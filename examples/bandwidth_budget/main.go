// Bandwidth budget: an instrument (here an RTM-like seismic simulation)
// produces snapshots faster than the outgoing link can carry them. Each
// snapshot must be compressed to fit its transmission slot — a per-snapshot
// *minimum compression ratio* dictated by the link, exactly the
// materials-science use case of §III-B (LCLS-II/APS-U detectors behind a
// limited link need ratios of 10+).
//
// FXRZ picks the error bound per snapshot from features alone; the example
// also runs the FRaZ trial-and-error baseline to show what the decision
// would cost if the compressor had to run in the loop.
package main

import (
	"fmt"
	"log"
	"time"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
)

const (
	linkBytesPerSec = 2e6             // 2 MB/s outgoing link
	slotDuration    = 2 * time.Second // one snapshot every 2 s
)

func main() {
	// Train on early snapshots of a small-scale run.
	training, err := datagen.RTMSnapshots("small", []int{40, 80, 120, 160, 200}, 10)
	if err != nil {
		log.Fatal(err)
	}
	fw, err := fxrz.Train(fxrz.NewSZ(), training, fxrz.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The production run is bigger — different mesh, same physics.
	stream, err := datagen.RTMSnapshots("big", []int{120, 200, 280, 360}, 10)
	if err != nil {
		log.Fatal(err)
	}

	budget := int(linkBytesPerSec * slotDuration.Seconds())
	fmt.Printf("link budget: %d bytes per %v slot\n\n", budget, slotDuration)

	var sent, lateSlots int
	for _, snap := range stream {
		// The minimum ratio that fits the slot; clamp into the valid range.
		need := float64(snap.Bytes()) / float64(budget)
		lo, hi := fw.ValidRatioRange(snap)
		target := need
		if target < lo {
			target = lo
		}
		if target > hi {
			target = hi
		}

		blob, est, err := fw.CompressToRatio(snap, target)
		if err != nil {
			log.Fatal(err)
		}
		fits := len(blob) <= budget
		if !fits {
			lateSlots++
		}
		sent += len(blob)

		// What the same decision costs with trial-and-error search.
		fr, err := fxrz.SearchFRaZ(fxrz.NewSZ(), snap, target, fxrz.DefaultFRaZConfig(15))
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-24s need ≥%5.1f:1  chose eb %.3g  sent %7d B (fits=%v)\n",
			snap.Name, need, est.Knob, len(blob), fits)
		fmt.Printf("%-24s FXRZ decision %8v   vs FRaZ search %8v (%d compressor runs)\n\n",
			"", est.AnalysisTime().Round(time.Microsecond), fr.SearchTime.Round(time.Microsecond), fr.CompressorRuns)
	}
	fmt.Printf("stream total: %d bytes across %d slots, %d over-budget slots\n", sent, len(stream), lateSlots)
}
