// Storage quota: a simulation campaign must archive many fields under a
// fixed disk quota — the §III-B "limited storage space" use case (e.g., a
// 10 TB allocation on ANL Theta for runs producing hundreds of TB). The
// campaign-wide quota translates into one target compression ratio; FXRZ
// turns it into a *per-field* error bound, so smooth fields keep tight
// bounds and rough fields get the looser bounds they actually need, instead
// of one global worst-case bound.
package main

import (
	"fmt"
	"log"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
)

func main() {
	// Train per field type on configuration-1 outputs.
	var training []*fxrz.Field
	for _, field := range datagen.NyxFields {
		for _, ts := range []int{1, 3, 5} {
			f, err := datagen.NyxField(field, 1, ts, 32)
			if err != nil {
				log.Fatal(err)
			}
			training = append(training, f)
		}
	}
	fw, err := fxrz.Train(fxrz.NewSZ(), training, fxrz.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The campaign to archive: configuration-2 outputs (all four fields).
	var campaign []*fxrz.Field
	for _, field := range datagen.NyxFields {
		f, err := datagen.NyxField(field, 2, 2, 32)
		if err != nil {
			log.Fatal(err)
		}
		campaign = append(campaign, f)
	}

	var rawBytes int
	for _, f := range campaign {
		rawBytes += f.Bytes()
	}
	quota := rawBytes / 20 // archive must fit in 1/20 of the raw size
	fmt.Printf("campaign: %d fields, %.1f MB raw, quota %.2f MB (ratio %d:1)\n\n",
		len(campaign), float64(rawBytes)/1e6, float64(quota)/1e6, rawBytes/quota)

	// Water-filling allocation: fields that cannot reach the campaign ratio
	// are pinned at their achievable maximum, and the remaining quota is
	// redistributed over the flexible fields (with 25% headroom for
	// estimation error) until the assignment stabilises.
	targets := make([]float64, len(campaign))
	pinned := make([]bool, len(campaign))
	for iter := 0; iter < 4; iter++ {
		pinnedBytes, flexBytes := 0.0, 0.0
		for i, f := range campaign {
			_, hi := fw.ValidRatioRange(f)
			if pinned[i] {
				pinnedBytes += float64(f.Bytes()) / targets[i]
			} else {
				flexBytes += float64(f.Bytes())
				_ = hi
			}
		}
		remaining := float64(quota) - pinnedBytes
		if remaining <= 0 || flexBytes == 0 {
			break
		}
		need := 1.25 * flexBytes / remaining
		changed := false
		for i, f := range campaign {
			if pinned[i] {
				continue
			}
			lo, hi := fw.ValidRatioRange(f)
			t := need
			if t < lo {
				t = lo
			}
			if t >= hi {
				t = hi
				pinned[i] = true
				changed = true
			}
			targets[i] = t
		}
		if !changed {
			break
		}
	}

	// First pass: compress every field at its allocated target.
	blobs := make([][]byte, len(campaign))
	knobs := make([]float64, len(campaign))
	var archived int
	for i, f := range campaign {
		blob, est, err := fw.CompressToRatio(f, targets[i])
		if err != nil {
			log.Fatal(err)
		}
		blobs[i], knobs[i] = blob, est.Knob
		archived += len(blob)
	}

	// Corrective pass: model estimates carry a few percent error; if the
	// archive overflows, retarget the shortfall fields using their *measured*
	// ratios (one extra compression each — still far cheaper than a search).
	if archived > quota {
		for i, f := range campaign {
			mcr := fxrz.Ratio(f, blobs[i])
			if mcr >= targets[i] {
				continue
			}
			retry := targets[i] * targets[i] / mcr // scale by the observed shortfall
			blob, est, err := fw.CompressToRatio(f, retry)
			if err != nil {
				log.Fatal(err)
			}
			if len(blob) < len(blobs[i]) {
				archived += len(blob) - len(blobs[i])
				blobs[i], knobs[i], targets[i] = blob, est.Knob, retry
			}
			if archived <= quota {
				break
			}
		}
	}

	for i, f := range campaign {
		restored, err := fxrz.Decompress(blobs[i])
		if err != nil {
			log.Fatal(err)
		}
		psnr, _ := fxrz.PSNR(f, restored)
		fmt.Printf("%-36s target %6.1f  eb %9.3g  %8d B  ratio %6.1f  PSNR %5.1f dB\n",
			f.Name, targets[i], knobs[i], len(blobs[i]), fxrz.Ratio(f, blobs[i]), psnr)
	}
	fmt.Printf("\narchive total: %.2f MB vs quota %.2f MB — fits: %v\n",
		float64(archived)/1e6, float64(quota)/1e6, archived <= quota)
}
