// Quickstart: train FXRZ for the SZ compressor on a few snapshots, then
// compress a new snapshot toward a target compression ratio — no manual
// error-bound tuning, no trial-and-error compression runs.
package main

import (
	"fmt"
	"log"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
)

func main() {
	// Training data: three time steps of a Nyx-like cosmology field. In a
	// real deployment these are snapshots your application already produced
	// (any []float32 via fxrz.FieldFromData works).
	var training []*fxrz.Field
	for _, ts := range []int{1, 3, 5} {
		f, err := datagen.NyxField("baryon_density", 1, ts, 32)
		if err != nil {
			log.Fatal(err)
		}
		training = append(training, f)
	}

	// Train once (runs the compressor ~25× per field); reuse forever.
	fw, err := fxrz.Train(fxrz.NewSZ(), training, fxrz.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v (stationary sweep %v, model fit %v)\n",
		fw.Stats().Total().Round(1e6), fw.Stats().StationarySweep.Round(1e6), fw.Stats().ModelFit.Round(1e6))

	// A new snapshot from a different simulation configuration.
	snapshot, err := datagen.NyxField("baryon_density", 2, 2, 32)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := fw.ValidRatioRange(snapshot)
	fmt.Printf("valid target ratios for this snapshot: %.0f – %.0f\n", lo, hi)

	target := lo + 0.5*(hi-lo)
	blob, est, err := fw.CompressToRatio(snapshot, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target ratio %.0f → error bound %.4g chosen in %v (no compression runs)\n",
		target, est.Knob, est.AnalysisTime().Round(1e3))
	fmt.Printf("achieved ratio %.1f (%d → %d bytes)\n",
		fxrz.Ratio(snapshot, blob), snapshot.Bytes(), len(blob))

	// The stream decompresses like any SZ stream, with the error bound held.
	restored, err := fxrz.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	maxErr, err := fxrz.MaxAbsError(snapshot, restored)
	if err != nil {
		log.Fatal(err)
	}
	psnr, _ := fxrz.PSNR(snapshot, restored)
	fmt.Printf("round trip: max abs error %.4g (bound %.4g), PSNR %.1f dB\n", maxErr, est.Knob, psnr)
}
