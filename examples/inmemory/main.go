// In-memory snapshot cache: a long-running simulation keeps past time steps
// available for analysis, but memory is capped — the §III-B "limited memory
// capacity" use case (quantum simulations needing exabytes keep state
// compressed in RAM). The cache holds every snapshot compressed at a ratio
// chosen so N snapshots fit the budget, and decompresses on access.
package main

import (
	"fmt"
	"log"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
)

// cache is a fixed-footprint store of compressed snapshots.
type cache struct {
	fw       *fxrz.Framework
	budget   int
	capacity int // snapshots the budget must hold
	used     int
	blobs    map[int][]byte
}

func (c *cache) put(ts int, f *fxrz.Field) error {
	perSnapshot := c.budget / c.capacity
	// 20% headroom: estimation error on a single snapshot must not blow the
	// shared budget.
	target := 1.2 * float64(f.Bytes()) / float64(perSnapshot)
	lo, hi := c.fw.ValidRatioRange(f)
	if target < lo {
		target = lo
	}
	if target > hi {
		target = hi
	}
	blob, _, err := c.fw.CompressToRatio(f, target)
	if err != nil {
		return err
	}
	c.blobs[ts] = blob
	c.used += len(blob)
	return nil
}

func (c *cache) get(ts int) (*fxrz.Field, error) {
	blob, ok := c.blobs[ts]
	if !ok {
		return nil, fmt.Errorf("no snapshot for ts %d", ts)
	}
	return fxrz.Decompress(blob)
}

func main() {
	// Train on a short warm-up run.
	var training []*fxrz.Field
	for _, ts := range []int{2, 6, 10} {
		f, err := datagen.HurricaneField("TC", ts, 12)
		if err != nil {
			log.Fatal(err)
		}
		training = append(training, f)
	}
	fw, err := fxrz.Train(fxrz.NewZFP(), training, fxrz.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	sampleBytes := training[0].Bytes()
	steps := []int{12, 18, 24, 30, 36, 42, 48}
	// Budget: the whole history in 1/6 of its raw footprint.
	c := &cache{fw: fw, budget: sampleBytes * len(steps) / 6, capacity: len(steps), blobs: map[int][]byte{}}
	fmt.Printf("cache budget %.2f MB for %d snapshots (%.2f MB raw)\n\n",
		float64(c.budget)/1e6, len(steps), float64(sampleBytes*len(steps))/1e6)

	for _, ts := range steps {
		f, err := datagen.HurricaneField("TC", ts, 12)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.put(ts, f); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stored %d snapshots in %.2f MB — within budget: %v\n\n",
		len(steps), float64(c.used)/1e6, c.used <= c.budget)

	// Analysis replays a past step from the cache.
	restored, err := c.get(30)
	if err != nil {
		log.Fatal(err)
	}
	orig, _ := datagen.HurricaneField("TC", 30, 12)
	psnr, _ := fxrz.PSNR(orig, restored)
	maxErr, _ := fxrz.MaxAbsError(orig, restored)
	fmt.Printf("replayed ts 30: PSNR %.1f dB, max abs error %.4g\n", psnr, maxErr)
}
