// Command expbench regenerates every table and figure of the paper's
// evaluation (§V). Run all experiments:
//
//	expbench -exp all -scale small
//
// or a single one (fig2, fig3/table1, fig4, fig6, table2, table3, sampling,
// table4, fig7, table7, fig89, fig10, fig11, table6, zfprate, importance,
// compare, fig12, fig13, table8, fig14, dump). Scale "tiny" is the CI
// preset; "small" mirrors the paper's methodology (25 stationary points, 25
// targets) at laptop size. The FRaZ-based experiments dominate the runtime;
// bound them with -comps/-tcrs/-maxtest or skip them with -nofraz.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/fxrz-go/fxrz/internal/exp"
	"github.com/fxrz-go/fxrz/internal/obs"
)

func main() {
	var (
		which  = flag.String("exp", "all", "experiment id or 'all'")
		scale  = flag.String("scale", "small", "tiny | small")
		maxTF  = flag.Int("maxtest", 2, "max test fields per app in comparison experiments")
		noFRaZ = flag.Bool("nofraz", false, "skip the FRaZ baseline experiments (fig12/fig13/fig14/table8)")
		comps  = flag.String("comps", "", "comma-separated compressor subset for comparison experiments (default: all)")
		tcrs   = flag.Int("tcrs", 0, "override the number of target ratios per test field")
		par    = flag.Int("parallelism", 0, "worker pool size for sweeps and analysis (0 = all cores, 1 = serial)")
	)
	flag.Parse()
	if *par < 0 {
		fmt.Fprintf(os.Stderr, "expbench: -parallelism must be >= 0 (0 = all cores, 1 = serial), got %d\n", *par)
		os.Exit(2)
	}
	if err := run(*which, *scale, *maxTF, *noFRaZ, *comps, *tcrs, *par); err != nil {
		fmt.Fprintln(os.Stderr, "expbench:", err)
		os.Exit(1)
	}
}

func run(which, scaleName string, maxTestFields int, noFRaZ bool, compsFlag string, tcrs, parallelism int) error {
	var scale exp.Scale
	switch scaleName {
	case "tiny":
		scale = exp.Tiny
	case "small":
		scale = exp.Small
	default:
		return fmt.Errorf("unknown scale %q (want tiny or small)", scaleName)
	}
	if tcrs > 0 {
		scale.TCRs = tcrs
	}
	scale.Parallelism = parallelism
	comps := exp.CompressorNames
	if compsFlag != "" {
		comps = strings.Split(compsFlag, ",")
	}
	// Record per-stage timings for the whole session; the table printed at
	// the end shows where the experiment wall time went.
	obs.Enable()
	s := exp.NewSession(scale)
	ids := strings.Split(which, ",")
	if which == "all" {
		ids = []string{"fig2", "fig3", "fig4", "fig6", "table2", "table3", "sampling", "table4", "fig7",
			"table7", "fig89", "fig10", "fig11", "table6", "zfprate", "importance", "compare", "fig14", "dump"}
		if noFRaZ {
			ids = ids[:len(ids)-3]
			ids = append(ids, "dump")
		}
	}

	// The comparison experiments share one expensive Compare run.
	var cmp *exp.CompareResult
	needCompare := func() (*exp.CompareResult, error) {
		if cmp != nil {
			return cmp, nil
		}
		var err error
		cmp, err = exp.Compare(s, exp.Apps, comps, maxTestFields)
		return cmp, err
	}

	for _, id := range ids {
		start := time.Now()
		var out string
		var err error
		switch strings.TrimSpace(id) {
		case "fig2":
			var r *exp.Fig2Result
			if r, err = exp.Fig2(s); err == nil {
				out = r.String()
			}
		case "fig3", "table1":
			var r *exp.Fig3Table1Result
			if r, err = exp.Fig3Table1(s); err == nil {
				out = r.String()
			}
		case "fig4":
			var r *exp.Fig4Result
			if r, err = exp.Fig4(s); err == nil {
				out = r.String()
			}
		case "fig6":
			var r *exp.Fig6Result
			if r, err = exp.Fig6(s); err == nil {
				out = r.String()
			}
		case "table2":
			var r *exp.Table2Result
			if r, err = exp.Table2(s); err == nil {
				out = r.String()
			}
		case "table3":
			var r *exp.Table3Result
			if r, err = exp.Table3(s); err == nil {
				out = r.String()
			}
		case "sampling":
			var r *exp.SamplingResult
			if r, err = exp.Sampling(s); err == nil {
				out = r.String()
			}
		case "table4":
			var r *exp.Table4Result
			if r, err = exp.Table4(s); err == nil {
				out = r.String()
			}
		case "fig7":
			var r *exp.Fig7Result
			if r, err = exp.Fig7(s); err == nil {
				out = r.String()
			}
		case "table7":
			var r *exp.Table7Result
			if r, err = exp.Table7(s); err == nil {
				out = r.String()
			}
		case "fig89":
			var r *exp.Fig89Result
			if r, err = exp.Fig89(s); err == nil {
				out = r.String()
			}
		case "fig10":
			var r *exp.Fig10Result
			if r, err = exp.Fig10(s); err == nil {
				out = r.String()
			}
		case "fig11":
			var r *exp.Fig11Result
			if r, err = exp.Fig11(s); err == nil {
				out = r.String()
			}
		case "table6":
			var r *exp.Table6Result
			if r, err = exp.Table6(s); err == nil {
				out = r.String()
			}
		case "compare":
			var r *exp.CompareResult
			if r, err = needCompare(); err == nil {
				out = r.Fig12String() + "\n" + r.Fig13String() + "\n" + r.CapabilityString() + "\n" + r.Table8String()
			}
		case "capability":
			var r *exp.CompareResult
			if r, err = needCompare(); err == nil {
				out = r.CapabilityString()
			}
		case "fig12":
			var r *exp.CompareResult
			if r, err = needCompare(); err == nil {
				out = r.Fig12String()
			}
		case "fig13":
			var r *exp.CompareResult
			if r, err = needCompare(); err == nil {
				out = r.Fig13String()
			}
		case "table8":
			var r *exp.CompareResult
			if r, err = needCompare(); err == nil {
				out = r.Table8String()
			}
		case "fig14":
			var r *exp.Fig14Result
			if r, err = exp.Fig14(s); err == nil {
				out = r.String()
			}
		case "importance":
			var r *exp.ImportanceResult
			if r, err = exp.Importance(s); err == nil {
				out = r.String()
			}
		case "zfprate":
			var r *exp.ZFPRateResult
			if r, err = exp.ZFPRate(s); err == nil {
				out = r.String()
			}
		case "dump":
			var r *exp.DumpResult
			if r, err = exp.Dump(s); err == nil {
				out = r.String()
			}
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("=== %s (scale %s, %v) ===\n%s\n", id, scale.Name, time.Since(start).Round(time.Millisecond), out)
	}
	if table := obs.TakeSnapshot().TimingTable(); table != "" {
		fmt.Printf("=== per-stage timings (session total) ===\n%s", table)
	}
	return nil
}
