// Command genfixtures regenerates the repository's committed test fixtures:
//
//   - testdata/golden/: one compressed stream per codec over a fixed
//     deterministic field, each paired with its bit-exact reconstruction.
//     golden_test.go diffs today's codecs against these files, so any
//     unintentional change to a stream format or a reconstruction — a
//     quantizer tweak, a Huffman table reorder, a header field — fails
//     loudly instead of silently orphaning previously written archives.
//   - testdata/fuzz/ seed corpora for the decoder fuzz targets that lack
//     them (internal/zfp, internal/fpzip, internal/mgard, and the top-level
//     FuzzDecompress), so `go test -fuzz` starts from valid streams instead
//     of rediscovering the header format from zero.
//
// Run from the repository root after an *intentional* format change:
//
//	go run ./cmd/genfixtures
//
// and commit the diff alongside the change that caused it. Everything the
// generator consumes is deterministic (datagen fields, serial codecs), so
// an unchanged tree regenerates byte-identical fixtures.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/fieldio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "genfixtures:", err)
		os.Exit(1)
	}
}

// goldenCodecs fixes the codec/knob grid the golden fixtures cover. Knobs
// are chosen to exercise real quantization (not lossless-small, not
// everything-to-zero) on the fixture field.
var goldenCodecs = []struct {
	name string
	knob float64
}{
	{"sz", 1e-3},
	{"sz2", 1e-3},
	{"zfp", 1e-3},
	{"zfp-rate", 8},
	{"fpzip", 16},
	{"mgard", 1e-3},
}

// fuzzSeedDirs maps fuzz-target corpus directories to the codecs whose
// valid streams seed them.
var fuzzSeedDirs = []struct {
	dir    string
	codecs []string
}{
	{"internal/zfp/testdata/fuzz/FuzzDecompress", []string{"zfp", "zfp-rate"}},
	{"internal/fpzip/testdata/fuzz/FuzzDecompress", []string{"fpzip"}},
	{"internal/mgard/testdata/fuzz/FuzzDecompress", []string{"mgard"}},
	{"testdata/fuzz/FuzzDecompress", []string{
		"sz", "sz2", "zfp", "zfp-rate", "fpzip", "mgard", "sz-indexed", "zfp-indexed"}},
}

func run(args []string) error {
	fs := flag.NewFlagSet("genfixtures", flag.ContinueOnError)
	root := fs.String("root", ".", "repository root to write fixtures under")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The golden field: a 16^3 Nyx-style baryon density block — big enough
	// that every codec's pipeline stages (blocking, prediction, entropy
	// coding) run for real, small enough to commit.
	f, err := datagen.NyxField("baryon_density", 1, 2, 16)
	if err != nil {
		return err
	}
	goldenDir := filepath.Join(*root, "testdata", "golden")
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		return err
	}

	// The source field itself, as an fxrzfield container: the golden test
	// also pins the container format cmd/fxrz and fxrzd speak.
	var fbuf bytes.Buffer
	if err := fieldio.Write(&fbuf, f); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(goldenDir, "field.fxrzfield"), fbuf.Bytes()); err != nil {
		return err
	}

	blobs := map[string][]byte{}
	for _, gc := range goldenCodecs {
		c, err := fxrz.ByName(gc.name)
		if err != nil {
			return err
		}
		blob, err := c.Compress(f, gc.knob)
		if err != nil {
			return fmt.Errorf("%s: %w", gc.name, err)
		}
		rec, err := c.Decompress(blob)
		if err != nil {
			return fmt.Errorf("%s: %w", gc.name, err)
		}
		var rbuf bytes.Buffer
		if err := fieldio.Write(&rbuf, rec); err != nil {
			return err
		}
		if err := writeFile(filepath.Join(goldenDir, gc.name+".blob"), blob); err != nil {
			return err
		}
		if err := writeFile(filepath.Join(goldenDir, gc.name+".recon"), rbuf.Bytes()); err != nil {
			return err
		}
		blobs[gc.name] = blob
	}

	// Indexed containers over the seekable codecs: pin the region-index
	// container format (wrapper framing, per-codec index payload, checksum)
	// so a change to index layout is a visible fixture diff, not a silent
	// break of archives indexed with an older build.
	for _, name := range []string{"sz", "zfp"} {
		indexed, err := fxrz.IndexBlob(blobs[name])
		if err != nil {
			return fmt.Errorf("%s index: %w", name, err)
		}
		if err := writeFile(filepath.Join(goldenDir, name+"-indexed.blob"), indexed); err != nil {
			return err
		}
		blobs[name+"-indexed"] = indexed
	}

	// A brick-store container over SZ: pins the random-access archive format.
	st, err := fxrz.BuildBricks(fxrz.NewSZ(), f, 8, 1e-3)
	if err != nil {
		return err
	}
	rec, err := st.ReadAll()
	if err != nil {
		return err
	}
	var rbuf bytes.Buffer
	if err := fieldio.Write(&rbuf, rec); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(goldenDir, "sz-bricks.store"), st.Marshal()); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(goldenDir, "sz-bricks.recon"), rbuf.Bytes()); err != nil {
		return err
	}

	// Fuzz seed corpora: each seed is one valid stream in the on-disk
	// corpus-entry encoding, named for the codec so diffs stay readable.
	for _, sd := range fuzzSeedDirs {
		dir := filepath.Join(*root, filepath.FromSlash(sd.dir))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for _, name := range sd.codecs {
			entry := corpusEntry(blobs[name])
			if err := writeFile(filepath.Join(dir, "seed-"+name), entry); err != nil {
				return err
			}
		}
	}
	return nil
}

// corpusEntry encodes one []byte seed in the `go test fuzz v1` on-disk
// corpus format.
func corpusEntry(b []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n")
}

func writeFile(path string, b []byte) error {
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(b))
	return nil
}
