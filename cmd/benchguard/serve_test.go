package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
)

// fullServe builds a valid serve baseline, optionally mutated, as JSON.
func fullServe(t *testing.T, mutate func(map[string]*serveEntry)) string {
	t.Helper()
	es := map[string]*serveEntry{
		"estimate": {Name: "estimate", Bench: "BenchmarkServeEstimate", NsPerReqDirect: 50000, NsPerReqHTTP: 210000, Overhead: 4.2},
		"pack":     {Name: "pack", Bench: "BenchmarkServePack", NsPerReqDirect: 1160000, NsPerReqHTTP: 1490000, Overhead: 1.28},
		"unpack":   {Name: "unpack", Bench: "BenchmarkServeUnpack", NsPerReqDirect: 180000, NsPerReqHTTP: 387000, Overhead: 2.15},
	}
	if mutate != nil {
		mutate(es)
	}
	b := serveBaseline{
		Benchmark: "BenchmarkServe* (internal/serve)",
		Date:      "2026-08-05",
		Runner:    compressRunner{CPU: "test", Cores: 1, Note: "test"},
	}
	for _, name := range []string{"estimate", "pack", "unpack"} {
		if e := es[name]; e != nil {
			b.Endpoints = append(b.Endpoints, *e)
		}
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestValidateServeBaselines(t *testing.T) {
	if err := validate([]byte(fullServe(t, nil))); err != nil {
		t.Fatalf("valid serve baseline rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(map[string]*serveEntry)
		wantErr string
	}{
		{"missing endpoint", func(es map[string]*serveEntry) {
			es["unpack"] = nil
		}, `missing required endpoint "unpack"`},
		{"missing bench", func(es map[string]*serveEntry) {
			es["pack"].Bench = ""
		}, "missing bench"},
		{"zero direct ns", func(es map[string]*serveEntry) {
			es["pack"].NsPerReqDirect = 0
		}, "ns_per_req_direct/http must be > 0"},
		{"inconsistent overhead", func(es map[string]*serveEntry) {
			es["estimate"].Overhead = 2.0
		}, "inconsistent with http/direct ratio"},
		{"overhead above cap", func(es map[string]*serveEntry) {
			es["pack"].NsPerReqHTTP = es["pack"].NsPerReqDirect * 2.5
			es["pack"].Overhead = 2.5
		}, "exceeds the 2.0x cap"},
	}
	for _, tc := range cases {
		err := validate([]byte(fullServe(t, tc.mutate)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}

	// Duplicate endpoints and a zero-core runner are rejected too.
	dup := strings.Replace(fullServe(t, nil), `"name":"pack"`, `"name":"estimate"`, 1)
	if err := validate([]byte(dup)); err == nil || !strings.Contains(err.Error(), "duplicate entry") {
		t.Errorf("duplicate endpoint: err = %v", err)
	}
	noCores := strings.Replace(fullServe(t, nil), `"cores":1`, `"cores":0`, 1)
	if err := validate([]byte(noCores)); err == nil || !strings.Contains(err.Error(), "runner.cores must be > 0") {
		t.Errorf("zero cores: err = %v", err)
	}
}

func TestParseServeBenchLine(t *testing.T) {
	cases := []struct {
		line       string
		name, role string
		v          float64
		ok         bool
	}{
		{"BenchmarkServeEstimate/direct-8   25065   48850 ns/op", "estimate", "before", 48850, true},
		{"BenchmarkServeEstimate/http-8      5425  207631 ns/op", "estimate", "after", 207631, true},
		{"BenchmarkServeUnpack/http          3074  386955 ns/op", "unpack", "after", 386955, true},
		{"BenchmarkServePack/warm-8             1       1 ns/op", "", "", 0, false},
		{"BenchmarkServeEstimate-8          25065   48850 ns/op", "", "", 0, false},
		{"BenchmarkKernelQuantize3D/fast-8      1    20.5 ns/elem", "", "", 0, false},
		{"ok  	github.com/fxrz-go/fxrz/internal/serve	2.883s", "", "", 0, false},
	}
	for _, tc := range cases {
		name, role, v, ok := parseServeBenchLine(tc.line)
		if ok != tc.ok || name != tc.name || role != tc.role || v != tc.v {
			t.Errorf("parseServeBenchLine(%q) = (%q, %q, %v, %v), want (%q, %q, %v, %v)",
				tc.line, name, role, v, ok, tc.name, tc.role, tc.v, tc.ok)
		}
	}
}

const healthyServeBench = `
goos: linux
BenchmarkServeEstimate/direct-8   25065    50000 ns/op
BenchmarkServeEstimate/http-8      5425   210000 ns/op
BenchmarkServePack/direct-8        1045  1160000 ns/op
BenchmarkServePack/http-8           808  1490000 ns/op
BenchmarkServeUnpack/direct-8      6366   180000 ns/op
BenchmarkServeUnpack/http-8        3074   387000 ns/op
PASS
`

func TestRunDeltasServe(t *testing.T) {
	baseline := t.TempDir() + "/BENCH_serve.json"
	if err := os.WriteFile(baseline, []byte(fullServe(t, nil)), 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := runDeltas(strings.NewReader(healthyServeBench), &sb, baseline, 1); err != nil {
		t.Fatalf("healthy run rejected: %v\n%s", err, sb.String())
	}
	for _, name := range []string{"estimate", "pack", "unpack"} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("delta table missing %s:\n%s", name, sb.String())
		}
	}

	// Overhead regressed >10% against the recorded ratio → fail. (An http
	// pack of 1,700,000 ns is 1.47x direct, against the recorded 1.28x.)
	slowed := strings.Replace(healthyServeBench, " 1490000 ns/op", " 1700000 ns/op", 1)
	sb.Reset()
	err := runDeltas(strings.NewReader(slowed), &sb, baseline, 1)
	if err == nil || !strings.Contains(err.Error(), "regressed >10%") {
		t.Fatalf("regressed run: err = %v, want regression failure", err)
	}

	// Overhead through the absolute cap fails even with no baseline given.
	capped := strings.Replace(healthyServeBench, " 1490000 ns/op",
		fmt.Sprintf(" %d ns/op", 1160000*3), 1)
	sb.Reset()
	err = runDeltas(strings.NewReader(capped), &sb, "", 1)
	if err == nil || !strings.Contains(err.Error(), "exceeds the 2.0x cap") {
		t.Fatalf("capped run: err = %v, want cap failure", err)
	}

	// A missing http variant is a broken roster anywhere.
	missing := strings.Replace(healthyServeBench, "BenchmarkServeUnpack/http-8        3074   387000 ns/op\n", "", 1)
	sb.Reset()
	err = runDeltas(strings.NewReader(missing), &sb, baseline, 1)
	if err == nil || !strings.Contains(err.Error(), "missing after variant") {
		t.Fatalf("missing-variant run: err = %v, want missing-variant failure", err)
	}
}

func TestRecordedServeBaselineIsValid(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(raw); err != nil {
		t.Errorf("recorded BENCH_serve.json rejected: %v", err)
	}
}
