package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
)

// fullServe builds a valid serve baseline, optionally mutated, as JSON.
func fullServe(t *testing.T, mutate func(map[string]*serveEntry)) string {
	t.Helper()
	return fullServeWithBatch(t, mutate, nil)
}

// batchResults builds the fixed-size ladder from four per-item costs.
func batchResults(b1, b4, b16, b64 float64) []serveBatchResult {
	return []serveBatchResult{
		{Batch: 1, NsPerItem: b1}, {Batch: 4, NsPerItem: b4},
		{Batch: 16, NsPerItem: b16}, {Batch: 64, NsPerItem: b64},
	}
}

func fullServeWithBatch(t *testing.T, mutate func(map[string]*serveEntry), mutateBatch func(map[string]*serveBatchEntry)) string {
	t.Helper()
	es := map[string]*serveEntry{
		"estimate": {Name: "estimate", Bench: "BenchmarkServeEstimate", NsPerReqDirect: 50000, NsPerReqHTTP: 210000, Overhead: 4.2},
		"pack":     {Name: "pack", Bench: "BenchmarkServePack", NsPerReqDirect: 1160000, NsPerReqHTTP: 1490000, Overhead: 1.28},
		"unpack":   {Name: "unpack", Bench: "BenchmarkServeUnpack", NsPerReqDirect: 180000, NsPerReqHTTP: 387000, Overhead: 2.15},
	}
	bs := map[string]*serveBatchEntry{
		"estimate": {Name: "estimate", Bench: "BenchmarkServeBatchEstimate",
			Results: batchResults(51200, 20000, 16000, 12500), AmortizationB16: 3.2, AmortizationFloor: 3.0},
		"pack": {Name: "pack", Bench: "BenchmarkServeBatchPack",
			Results: batchResults(2100000, 2080000, 2050000, 2040000), AmortizationB16: 1.02},
		"unpack": {Name: "unpack", Bench: "BenchmarkServeBatchUnpack",
			Results: batchResults(700000, 500000, 450000, 430000), AmortizationB16: 1.56},
	}
	if mutate != nil {
		mutate(es)
	}
	if mutateBatch != nil {
		mutateBatch(bs)
	}
	b := serveBaseline{
		Benchmark: "BenchmarkServe* (internal/serve)",
		Date:      "2026-08-05",
		Runner:    compressRunner{CPU: "test", Cores: 1, Note: "test"},
	}
	for _, name := range []string{"estimate", "pack", "unpack"} {
		if e := es[name]; e != nil {
			b.Endpoints = append(b.Endpoints, *e)
		}
		if e := bs[name]; e != nil {
			b.Batch = append(b.Batch, *e)
		}
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestValidateServeBaselines(t *testing.T) {
	if err := validate([]byte(fullServe(t, nil))); err != nil {
		t.Fatalf("valid serve baseline rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(map[string]*serveEntry)
		wantErr string
	}{
		{"missing endpoint", func(es map[string]*serveEntry) {
			es["unpack"] = nil
		}, `missing required endpoint "unpack"`},
		{"missing bench", func(es map[string]*serveEntry) {
			es["pack"].Bench = ""
		}, "missing bench"},
		{"zero direct ns", func(es map[string]*serveEntry) {
			es["pack"].NsPerReqDirect = 0
		}, "ns_per_req_direct/http must be > 0"},
		{"inconsistent overhead", func(es map[string]*serveEntry) {
			es["estimate"].Overhead = 2.0
		}, "inconsistent with http/direct ratio"},
		{"overhead above cap", func(es map[string]*serveEntry) {
			es["pack"].NsPerReqHTTP = es["pack"].NsPerReqDirect * 2.5
			es["pack"].Overhead = 2.5
		}, "exceeds the 2.0x cap"},
	}
	for _, tc := range cases {
		err := validate([]byte(fullServe(t, tc.mutate)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}

	batchCases := []struct {
		name    string
		mutate  func(map[string]*serveBatchEntry)
		wantErr string
	}{
		{"missing batch endpoint", func(bs map[string]*serveBatchEntry) {
			bs["unpack"] = nil
		}, `missing required batch endpoint "unpack"`},
		{"missing batch bench", func(bs map[string]*serveBatchEntry) {
			bs["pack"].Bench = ""
		}, "missing bench"},
		{"missing batch size", func(bs map[string]*serveBatchEntry) {
			bs["pack"].Results = bs["pack"].Results[:3]
		}, "missing result for batch=64"},
		{"zero per-item ns", func(bs map[string]*serveBatchEntry) {
			bs["unpack"].Results[0].NsPerItem = 0
		}, "ns_per_item must be > 0"},
		{"per-item cost rises", func(bs map[string]*serveBatchEntry) {
			bs["unpack"].Results[3].NsPerItem = 600000 // b64 jumps 33% over b16
		}, "per-item cost rises"},
		{"inconsistent amortization", func(bs map[string]*serveBatchEntry) {
			bs["estimate"].AmortizationB16 = 2.0
		}, "inconsistent with b1/b16 per-item ratio"},
		{"amortization below own floor", func(bs map[string]*serveBatchEntry) {
			bs["estimate"].Results = batchResults(51200, 30000, 25600, 23000)
			bs["estimate"].AmortizationB16 = 2.0
		}, "below the 3.0x floor"},
		{"estimate floor dropped", func(bs map[string]*serveBatchEntry) {
			bs["estimate"].AmortizationFloor = 1.5
		}, "below the required 3.0x"},
	}
	for _, tc := range batchCases {
		err := validate([]byte(fullServeWithBatch(t, nil, tc.mutate)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
	// A serve baseline with no batch section at all predates the /v1/*-many
	// endpoints and must be re-recorded.
	noBatch := fullServeWithBatch(t, nil, func(bs map[string]*serveBatchEntry) {
		for name := range bs {
			bs[name] = nil
		}
	})
	if err := validate([]byte(noBatch)); err == nil || !strings.Contains(err.Error(), `missing required section "batch"`) {
		t.Errorf("batchless baseline: err = %v", err)
	}

	// Duplicate endpoints and a zero-core runner are rejected too.
	dup := strings.Replace(fullServe(t, nil), `"name":"pack"`, `"name":"estimate"`, 1)
	if err := validate([]byte(dup)); err == nil || !strings.Contains(err.Error(), "duplicate entry") {
		t.Errorf("duplicate endpoint: err = %v", err)
	}
	noCores := strings.Replace(fullServe(t, nil), `"cores":1`, `"cores":0`, 1)
	if err := validate([]byte(noCores)); err == nil || !strings.Contains(err.Error(), "runner.cores must be > 0") {
		t.Errorf("zero cores: err = %v", err)
	}
}

func TestParseServeBenchLine(t *testing.T) {
	cases := []struct {
		line       string
		name, role string
		v          float64
		ok         bool
	}{
		{"BenchmarkServeEstimate/direct-8   25065   48850 ns/op", "estimate", "before", 48850, true},
		{"BenchmarkServeEstimate/http-8      5425  207631 ns/op", "estimate", "after", 207631, true},
		{"BenchmarkServeUnpack/http          3074  386955 ns/op", "unpack", "after", 386955, true},
		{"BenchmarkServePack/warm-8             1       1 ns/op", "", "", 0, false},
		{"BenchmarkServeEstimate-8          25065   48850 ns/op", "", "", 0, false},
		{"BenchmarkKernelQuantize3D/fast-8      1    20.5 ns/elem", "", "", 0, false},
		{"ok  	github.com/fxrz-go/fxrz/internal/serve	2.883s", "", "", 0, false},
	}
	for _, tc := range cases {
		name, role, v, ok := parseServeBenchLine(tc.line)
		if ok != tc.ok || name != tc.name || role != tc.role || v != tc.v {
			t.Errorf("parseServeBenchLine(%q) = (%q, %q, %v, %v), want (%q, %q, %v, %v)",
				tc.line, name, role, v, ok, tc.name, tc.role, tc.v, tc.ok)
		}
	}
}

func TestParseServeBatchBenchLine(t *testing.T) {
	cases := []struct {
		line       string
		name, role string
		v          float64
		ok         bool
	}{
		{"BenchmarkServeBatchEstimate/b1-8     300    51200 ns/op", "estimate_batch16", "before", 51200, true},
		{"BenchmarkServeBatchEstimate/b16-8    300   256000 ns/op", "estimate_batch16", "after", 16000, true},
		{"BenchmarkServeBatchUnpack/b16        100  7200000 ns/op", "unpack_batch16", "after", 450000, true},
		// b4/b64 points are recorded in the baseline, not paired in -deltas.
		{"BenchmarkServeBatchEstimate/b4-8     300    80000 ns/op", "", "", 0, false},
		{"BenchmarkServeBatchEstimate/b64-8    300   800000 ns/op", "", "", 0, false},
		{"BenchmarkServeBatchEstimate/http-8   300    51200 ns/op", "", "", 0, false},
		{"BenchmarkServeEstimate/http-8       5425   207631 ns/op", "", "", 0, false},
	}
	for _, tc := range cases {
		name, role, v, ok := parseServeBatchBenchLine(tc.line)
		if ok != tc.ok || name != tc.name || role != tc.role || v != tc.v {
			t.Errorf("parseServeBatchBenchLine(%q) = (%q, %q, %v, %v), want (%q, %q, %v, %v)",
				tc.line, name, role, v, ok, tc.name, tc.role, tc.v, tc.ok)
		}
	}
}

func TestRunDeltasBatchFloor(t *testing.T) {
	// The amortization floor is absolute: it gates with no baseline given.
	healthy := `
BenchmarkServeBatchEstimate/b1-8     300    51200 ns/op
BenchmarkServeBatchEstimate/b16-8    300   256000 ns/op
PASS
`
	var sb strings.Builder
	if err := runDeltas(strings.NewReader(healthy), &sb, "", 1); err != nil {
		t.Fatalf("healthy batch run rejected: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "estimate_batch16") || !strings.Contains(sb.String(), "3.0x floor") {
		t.Fatalf("delta table missing the gated batch pair:\n%s", sb.String())
	}

	// Per-item cost at b16 only 2x below b1 → below the 3x floor.
	flat := strings.Replace(healthy, " 256000 ns/op", " 409600 ns/op", 1)
	sb.Reset()
	err := runDeltas(strings.NewReader(flat), &sb, "", 1)
	if err == nil || !strings.Contains(err.Error(), "below the 3.0x floor") {
		t.Fatalf("flat batch curve: err = %v, want floor failure", err)
	}

	// Unpack has no absolute floor: a modest curve passes on its own.
	unpackOnly := `
BenchmarkServeBatchUnpack/b1-8       300   700000 ns/op
BenchmarkServeBatchUnpack/b16-8     100  10400000 ns/op
PASS
`
	sb.Reset()
	if err := runDeltas(strings.NewReader(unpackOnly), &sb, "", 1); err != nil {
		t.Fatalf("floorless batch pair rejected: %v\n%s", err, sb.String())
	}
}

const healthyServeBench = `
goos: linux
BenchmarkServeEstimate/direct-8   25065    50000 ns/op
BenchmarkServeEstimate/http-8      5425   210000 ns/op
BenchmarkServePack/direct-8        1045  1160000 ns/op
BenchmarkServePack/http-8           808  1490000 ns/op
BenchmarkServeUnpack/direct-8      6366   180000 ns/op
BenchmarkServeUnpack/http-8        3074   387000 ns/op
PASS
`

func TestRunDeltasServe(t *testing.T) {
	baseline := t.TempDir() + "/BENCH_serve.json"
	if err := os.WriteFile(baseline, []byte(fullServe(t, nil)), 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := runDeltas(strings.NewReader(healthyServeBench), &sb, baseline, 1); err != nil {
		t.Fatalf("healthy run rejected: %v\n%s", err, sb.String())
	}
	for _, name := range []string{"estimate", "pack", "unpack"} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("delta table missing %s:\n%s", name, sb.String())
		}
	}

	// Overhead regressed >10% against the recorded ratio → fail. (An http
	// pack of 1,700,000 ns is 1.47x direct, against the recorded 1.28x.)
	slowed := strings.Replace(healthyServeBench, " 1490000 ns/op", " 1700000 ns/op", 1)
	sb.Reset()
	err := runDeltas(strings.NewReader(slowed), &sb, baseline, 1)
	if err == nil || !strings.Contains(err.Error(), "regressed >10%") {
		t.Fatalf("regressed run: err = %v, want regression failure", err)
	}

	// Overhead through the absolute cap fails even with no baseline given.
	capped := strings.Replace(healthyServeBench, " 1490000 ns/op",
		fmt.Sprintf(" %d ns/op", 1160000*3), 1)
	sb.Reset()
	err = runDeltas(strings.NewReader(capped), &sb, "", 1)
	if err == nil || !strings.Contains(err.Error(), "exceeds the 2.0x cap") {
		t.Fatalf("capped run: err = %v, want cap failure", err)
	}

	// A missing http variant is a broken roster anywhere.
	missing := strings.Replace(healthyServeBench, "BenchmarkServeUnpack/http-8        3074   387000 ns/op\n", "", 1)
	sb.Reset()
	err = runDeltas(strings.NewReader(missing), &sb, baseline, 1)
	if err == nil || !strings.Contains(err.Error(), "missing after variant") {
		t.Fatalf("missing-variant run: err = %v, want missing-variant failure", err)
	}
}

func TestRecordedServeBaselineIsValid(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(raw); err != nil {
		t.Errorf("recorded BENCH_serve.json rejected: %v", err)
	}
}
