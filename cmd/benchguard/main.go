// Command benchguard validates the recorded benchmark baseline
// (BENCH_train.json) so the performance trajectory stays machine-readable
// across PRs: CI fails when the file is missing, is not valid JSON, or has
// dropped the fields the trajectory tooling depends on.
//
//	benchguard -file BENCH_train.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

// baseline mirrors the schema of BENCH_train.json. Fields beyond these may
// come and go (runner notes, per-run extras); the ones here are load-bearing.
type baseline struct {
	Benchmark string   `json:"benchmark"`
	Date      string   `json:"date"`
	Field     string   `json:"field"`
	Results   []result `json:"results"`
}

type result struct {
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	SweepS  float64 `json:"sweep_s"`
}

// validate checks one recorded baseline blob.
func validate(raw []byte) error {
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if b.Benchmark == "" {
		return fmt.Errorf("missing required field %q", "benchmark")
	}
	if b.Date == "" {
		return fmt.Errorf("missing required field %q", "date")
	}
	if _, err := time.Parse("2006-01-02", b.Date); err != nil {
		return fmt.Errorf("date %q is not YYYY-MM-DD: %w", b.Date, err)
	}
	if b.Field == "" {
		return fmt.Errorf("missing required field %q", "field")
	}
	if len(b.Results) == 0 {
		return fmt.Errorf("results is empty: the baseline must record at least one worker width")
	}
	seen := make(map[int]bool, len(b.Results))
	for i, r := range b.Results {
		if r.Workers <= 0 {
			return fmt.Errorf("results[%d]: workers must be > 0, got %d", i, r.Workers)
		}
		if seen[r.Workers] {
			return fmt.Errorf("results[%d]: duplicate entry for workers=%d", i, r.Workers)
		}
		seen[r.Workers] = true
		if !(r.NsPerOp > 0) {
			return fmt.Errorf("results[%d] (workers=%d): ns_per_op must be > 0, got %v", i, r.Workers, r.NsPerOp)
		}
		if !(r.SweepS > 0) {
			return fmt.Errorf("results[%d] (workers=%d): sweep_s must be > 0, got %v", i, r.Workers, r.SweepS)
		}
	}
	return nil
}

func main() {
	file := flag.String("file", "BENCH_train.json", "recorded benchmark baseline to validate")
	flag.Parse()
	raw, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
	if err := validate(raw); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *file, err)
		os.Exit(1)
	}
	var b baseline
	_ = json.Unmarshal(raw, &b) // validated above
	fmt.Printf("benchguard: %s ok (%s, %d worker widths, recorded %s)\n",
		*file, b.Benchmark, len(b.Results), b.Date)
}
