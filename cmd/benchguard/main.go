// Command benchguard keeps the recorded benchmark baselines machine-readable
// and honest across PRs. It validates any number of BENCH_*.json files
// (schema is detected from content) and fails when a file is missing, is not
// valid JSON, has dropped a load-bearing field, or — for kernel baselines —
// no longer meets the speedup floors the fast paths were merged under.
//
//	benchguard BENCH_train.json BENCH_kernels.json
//
// With -deltas it instead reads `go test -bench` output on stdin, pairs each
// kernel's before/after variants, prints the old-vs-new table, and (with
// -baseline) fails when a measured speedup has regressed more than 10%
// against the recorded one. Speedups are ratios measured within a single run
// on a single machine, so the comparison is meaningful even when the box
// differs from the one that recorded the baseline.
//
//	go test -run '^$' -bench BenchmarkKernel ./... | benchguard -deltas -baseline BENCH_kernels.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// trainBaseline mirrors the schema of BENCH_train.json.
type trainBaseline struct {
	Benchmark string        `json:"benchmark"`
	Date      string        `json:"date"`
	Field     string        `json:"field"`
	Results   []trainResult `json:"results"`
}

type trainResult struct {
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	SweepS  float64 `json:"sweep_s"`
}

// kernelBaseline mirrors the schema of BENCH_kernels.json.
type kernelBaseline struct {
	Benchmark string         `json:"benchmark"`
	Date      string         `json:"date"`
	Kernels   []kernelResult `json:"kernels"`
}

type kernelResult struct {
	Name         string  `json:"name"`
	Bench        string  `json:"bench"`
	NsPerElemOld float64 `json:"ns_per_elem_before"`
	NsPerElemNew float64 `json:"ns_per_elem_after"`
	Speedup      float64 `json:"speedup"`
}

// speedupFloors are the merge-time guarantees of the kernel fast paths: the
// two headline kernels keep their ISSUE-mandated floors, and nothing is
// allowed to have regressed past 0.9× (a fast path slower than the generic
// code it replaced would be a bug, not noise).
var speedupFloors = map[string]float64{
	"sz_quantize_3d": 1.5,
	"huffman_decode": 1.3,
}

const minSpeedup = 0.9

// requiredKernels is the fixed roster a kernel baseline must cover.
var requiredKernels = []string{"sz_quantize_3d", "zfp_encode_ints", "huffman_decode", "ca_scan"}

// validate checks one recorded baseline blob, dispatching on its schema.
func validate(raw []byte) error {
	var probe struct {
		Results []json.RawMessage `json:"results"`
		Kernels []json.RawMessage `json:"kernels"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	switch {
	case probe.Kernels != nil:
		return validateKernels(raw)
	case probe.Results != nil:
		return validateTrain(raw)
	default:
		return fmt.Errorf("unrecognized schema: neither %q nor %q present", "results", "kernels")
	}
}

func validateCommon(benchmark, date string) error {
	if benchmark == "" {
		return fmt.Errorf("missing required field %q", "benchmark")
	}
	if date == "" {
		return fmt.Errorf("missing required field %q", "date")
	}
	if _, err := time.Parse("2006-01-02", date); err != nil {
		return fmt.Errorf("date %q is not YYYY-MM-DD: %w", date, err)
	}
	return nil
}

func validateTrain(raw []byte) error {
	var b trainBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if err := validateCommon(b.Benchmark, b.Date); err != nil {
		return err
	}
	if b.Field == "" {
		return fmt.Errorf("missing required field %q", "field")
	}
	if len(b.Results) == 0 {
		return fmt.Errorf("results is empty: the baseline must record at least one worker width")
	}
	seen := make(map[int]bool, len(b.Results))
	for i, r := range b.Results {
		if r.Workers <= 0 {
			return fmt.Errorf("results[%d]: workers must be > 0, got %d", i, r.Workers)
		}
		if seen[r.Workers] {
			return fmt.Errorf("results[%d]: duplicate entry for workers=%d", i, r.Workers)
		}
		seen[r.Workers] = true
		if !(r.NsPerOp > 0) {
			return fmt.Errorf("results[%d] (workers=%d): ns_per_op must be > 0, got %v", i, r.Workers, r.NsPerOp)
		}
		if !(r.SweepS > 0) {
			return fmt.Errorf("results[%d] (workers=%d): sweep_s must be > 0, got %v", i, r.Workers, r.SweepS)
		}
	}
	return nil
}

func validateKernels(raw []byte) error {
	var b kernelBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if err := validateCommon(b.Benchmark, b.Date); err != nil {
		return err
	}
	if len(b.Kernels) == 0 {
		return fmt.Errorf("kernels is empty")
	}
	seen := make(map[string]kernelResult, len(b.Kernels))
	for i, k := range b.Kernels {
		if k.Name == "" {
			return fmt.Errorf("kernels[%d]: missing name", i)
		}
		if _, dup := seen[k.Name]; dup {
			return fmt.Errorf("kernels[%d]: duplicate entry for %q", i, k.Name)
		}
		seen[k.Name] = k
		if !(k.NsPerElemOld > 0) || !(k.NsPerElemNew > 0) {
			return fmt.Errorf("kernels[%d] (%s): ns_per_elem_before/after must be > 0, got %v/%v",
				i, k.Name, k.NsPerElemOld, k.NsPerElemNew)
		}
		if !(k.Speedup > 0) {
			return fmt.Errorf("kernels[%d] (%s): speedup must be > 0, got %v", i, k.Name, k.Speedup)
		}
		if ratio := k.NsPerElemOld / k.NsPerElemNew; ratio/k.Speedup > 1.01 || k.Speedup/ratio > 1.01 {
			return fmt.Errorf("kernels[%d] (%s): speedup %.3f inconsistent with before/after ratio %.3f",
				i, k.Name, k.Speedup, ratio)
		}
		floor := speedupFloors[k.Name]
		if floor < minSpeedup {
			floor = minSpeedup
		}
		if k.Speedup < floor {
			return fmt.Errorf("kernels[%d] (%s): speedup %.3f below floor %.2f", i, k.Name, k.Speedup, floor)
		}
	}
	for _, name := range requiredKernels {
		if _, ok := seen[name]; !ok {
			return fmt.Errorf("missing required kernel %q", name)
		}
	}
	return nil
}

// benchToKernel maps `go test -bench` names to baseline kernel names, and
// variant names to the before/after role.
var benchToKernel = map[string]string{
	"BenchmarkKernelQuantize3D":    "sz_quantize_3d",
	"BenchmarkKernelEncodeInts":    "zfp_encode_ints",
	"BenchmarkKernelHuffmanDecode": "huffman_decode",
	"BenchmarkKernelCAScan":        "ca_scan",
}

var variantRole = map[string]string{
	"generic": "before", "perplane": "before", "bitwise": "before", "odometer": "before",
	"fast": "after", "transposed": "after", "table": "after",
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine extracts (kernel, role, ns/elem) from one benchmark output
// line, or ok=false for lines that are not kernel results.
func parseBenchLine(line string) (kernel, role string, nsPerElem float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "BenchmarkKernel") {
		return "", "", 0, false
	}
	name := procSuffix.ReplaceAllString(fields[0], "")
	base, variant, found := strings.Cut(name, "/")
	if !found {
		return "", "", 0, false
	}
	kernel, okK := benchToKernel[base]
	role, okV := variantRole[variant]
	if !okK || !okV {
		return "", "", 0, false
	}
	for i := 2; i < len(fields); i++ {
		if fields[i] == "ns/elem" {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil || !(v > 0) {
				return "", "", 0, false
			}
			return kernel, role, v, true
		}
	}
	return "", "", 0, false
}

// runDeltas implements -deltas: pair up variants from bench output, print the
// old-vs-new table, and gate against the recorded baseline if one was given.
func runDeltas(in io.Reader, out io.Writer, baselinePath string) error {
	type pair struct{ before, after float64 }
	measured := map[string]*pair{}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		kernel, role, v, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		p := measured[kernel]
		if p == nil {
			p = &pair{}
			measured[kernel] = p
		}
		if role == "before" {
			p.before = v
		} else {
			p.after = v
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(measured) == 0 {
		return fmt.Errorf("no kernel benchmark lines found on stdin")
	}

	var recorded map[string]kernelResult
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return err
		}
		if err := validateKernels(raw); err != nil {
			return fmt.Errorf("%s: %w", baselinePath, err)
		}
		var b kernelBaseline
		_ = json.Unmarshal(raw, &b) // validated above
		recorded = make(map[string]kernelResult, len(b.Kernels))
		for _, k := range b.Kernels {
			recorded[k.Name] = k
		}
	}

	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	fmt.Fprintf(out, "%-16s %12s %12s %9s %s\n", "kernel", "old ns/elem", "new ns/elem", "speedup", "recorded")
	for _, name := range names {
		p := measured[name]
		if p.before == 0 || p.after == 0 {
			failures = append(failures, fmt.Sprintf("%s: missing %s variant", name,
				map[bool]string{true: "before", false: "after"}[p.before == 0]))
			continue
		}
		sp := p.before / p.after
		note := "-"
		if rec, ok := recorded[name]; ok {
			note = fmt.Sprintf("%.2fx", rec.Speedup)
			if sp < minSpeedup*rec.Speedup {
				failures = append(failures, fmt.Sprintf(
					"%s: measured speedup %.2fx regressed >10%% against recorded %.2fx", name, sp, rec.Speedup))
			}
		}
		fmt.Fprintf(out, "%-16s %12.2f %12.2f %8.2fx %s\n", name, p.before, p.after, sp, note)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}

func main() {
	deltas := flag.Bool("deltas", false, "read `go test -bench` output on stdin and print before/after kernel deltas")
	baseline := flag.String("baseline", "", "with -deltas: recorded BENCH_kernels.json to gate regressions against")
	flag.Parse()

	if *deltas {
		if err := runDeltas(os.Stdin, os.Stdout, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		return
	}
	files := flag.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no baseline files given (usage: benchguard FILE...)")
		os.Exit(1)
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		if err := validate(raw); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", file, err)
			os.Exit(1)
		}
		fmt.Printf("benchguard: %s ok\n", file)
	}
}
