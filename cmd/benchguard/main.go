// Command benchguard keeps the recorded benchmark baselines machine-readable
// and honest across PRs. It validates any number of BENCH_*.json files
// (schema is detected from content) and fails when a file is missing, is not
// valid JSON, has dropped a load-bearing field, or — for kernel baselines —
// no longer meets the speedup floors the fast paths were merged under.
//
//	benchguard BENCH_train.json BENCH_kernels.json
//
// With -deltas it instead reads `go test -bench` output on stdin, pairs each
// kernel's before/after variants, prints the old-vs-new table, and (with
// -baseline) fails when a measured speedup has regressed more than 10%
// against the recorded one. Speedups are ratios measured within a single run
// on a single machine, so the comparison is meaningful even when the box
// differs from the one that recorded the baseline.
//
//	go test -run '^$' -bench BenchmarkKernel ./... | benchguard -deltas -baseline BENCH_kernels.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// trainBaseline mirrors the schema of BENCH_train.json.
type trainBaseline struct {
	Benchmark string        `json:"benchmark"`
	Date      string        `json:"date"`
	Field     string        `json:"field"`
	Results   []trainResult `json:"results"`
}

type trainResult struct {
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	SweepS  float64 `json:"sweep_s"`
}

// compressBaseline mirrors the schema of BENCH_compress.json: per-codec
// pack/unpack ns/elem at worker widths 1, 2 and 4, recorded with the runner
// that measured them. Parallel speedups — unlike the kernel before/after
// ratios — are only meaningful on multi-core machines, so the 1.5× pack
// floor is enforced only when the recording runner had >= 4 cores; a
// single-core recording must carry an explanatory note and is instead held
// to a bounded-overhead gate (width 4 within 1.5× of width 1).
type compressBaseline struct {
	Benchmark string          `json:"benchmark"`
	Date      string          `json:"date"`
	Field     string          `json:"field"`
	Runner    compressRunner  `json:"runner"`
	Codecs    []compressEntry `json:"codecs"`
}

type compressRunner struct {
	CPU   string `json:"cpu"`
	Cores int    `json:"cores"`
	Note  string `json:"note"`
}

type compressEntry struct {
	Name      string           `json:"name"`
	Results   []compressResult `json:"results"`
	SpeedupW4 float64          `json:"speedup_w4"`
}

type compressResult struct {
	Workers   int     `json:"workers"`
	NsPerElem float64 `json:"ns_per_elem"`
}

// requiredCodecs is the roster a compress baseline must cover, and
// compressWidths the worker widths each entry must record.
var requiredCodecs = []string{"sz_pack", "sz_unpack", "zfp_pack", "zfp_unpack"}
var compressWidths = []int{1, 2, 4}

const (
	// packSpeedupFloor is the ISSUE-mandated pack speedup at width 4 on a
	// >= 256³ field, enforceable only on multi-core recorders.
	packSpeedupFloor = 1.5
	// parallelOverheadCap bounds how much slower width 4 may run than width
	// 1 on any recorder: fan-out bookkeeping must stay cheap even when no
	// cores are available to exploit it.
	parallelOverheadCap = 1.5
	// multiCoreMin is the core count from which wall-clock speedups are
	// considered measurable.
	multiCoreMin = 4
)

// serveBaseline mirrors the schema of BENCH_serve.json: per-endpoint ns per
// request through the library directly and through a full HTTP round trip,
// with their ratio recorded as the serving overhead. Like the kernel
// before/after ratios — and unlike the parallel wall-clock speedups — the
// overhead is measured within one run on one machine, so it gates anywhere.
type serveBaseline struct {
	Benchmark string            `json:"benchmark"`
	Date      string            `json:"date"`
	Runner    compressRunner    `json:"runner"`
	Endpoints []serveEntry      `json:"endpoints"`
	Batch     []serveBatchEntry `json:"batch"`
}

type serveEntry struct {
	Name           string  `json:"name"`
	Bench          string  `json:"bench"`
	NsPerReqDirect float64 `json:"ns_per_req_direct"`
	NsPerReqHTTP   float64 `json:"ns_per_req_http"`
	Overhead       float64 `json:"overhead"`
}

// serveBatchEntry records one /v1/*-many amortization curve: per-item ns at
// each batch size (whole-batch ns/op divided by the /bN subname), the b1/b16
// per-item ratio, and the floor that ratio was merged under. Per-item cost
// must also fall (within slack) as the batch grows — a curve that bends back
// up means the batch path serializes work the single path did not.
type serveBatchEntry struct {
	Name              string             `json:"name"`
	Bench             string             `json:"bench"`
	Results           []serveBatchResult `json:"results"`
	AmortizationB16   float64            `json:"amortization_b16"`
	AmortizationFloor float64            `json:"amortization_floor"`
}

type serveBatchResult struct {
	Batch     int     `json:"batch"`
	NsPerItem float64 `json:"ns_per_item"`
}

// serveOverheadCaps bounds how much a request may cost through the HTTP
// layer relative to the direct library call: the server must stay a wrapper,
// not a tax. The caps leave headroom over the recorded overheads (which are
// inflated by the benchmark's deliberately small fixture field — the ~200us
// fixed per-request cost shrinks relative to real field sizes).
var serveOverheadCaps = map[string]float64{
	"estimate": 8.0,
	"pack":     2.0,
	"unpack":   4.0,
}

// requiredEndpoints is the roster a serve baseline must cover, and
// requiredBatchEndpoints the amortization curves it must record.
var requiredEndpoints = []string{"estimate", "pack", "unpack"}
var requiredBatchEndpoints = []string{"estimate", "pack", "unpack"}

// serveBatchSizes is the fixed batch-size ladder every curve must record.
var serveBatchSizes = []int{1, 4, 16, 64}

const (
	// batchEstimateAmortFloor is the merge-time guarantee of the batch
	// endpoints: per-item cost of the features-mode estimate at batch 16
	// must be at least 3x below batch 1, or batching is not amortizing the
	// per-request overhead it exists to amortize.
	batchEstimateAmortFloor = 3.0
	// batchMonotonicitySlack is how much a per-item cost may rise from one
	// batch size to the next before the curve counts as regressing. The
	// tolerance is wide because large-body curves (unpack at batch 16 moves
	// ~300KB requests and ~900KB responses over loopback) pick up 10-20% of
	// socket-scheduling noise on small fixtures; a batch path that actually
	// serialized work the single path did not would overshoot this by far.
	batchMonotonicitySlack = 1.25
)

// roiBaseline mirrors the schema of BENCH_roi.json: per-codec ns to decode a
// fixed subvolume out of an indexed stream versus a full decode through the
// same entry point, with the within-run ratio recorded as the region speedup.
// Like the serve overheads, the ratio is measured within one run on one
// machine, so it gates anywhere.
type roiBaseline struct {
	Benchmark string         `json:"benchmark"`
	Date      string         `json:"date"`
	Runner    compressRunner `json:"runner"`
	Regions   []roiEntry     `json:"regions"`
}

type roiEntry struct {
	Name              string  `json:"name"`
	Bench             string  `json:"bench"`
	NsFull            float64 `json:"ns_full"`
	NsRegion          float64 `json:"ns_region"`
	Speedup           float64 `json:"speedup"`
	VolumeFrac        float64 `json:"volume_frac"`
	SpeedupFloor      float64 `json:"speedup_floor"`
	IndexOverheadFrac float64 `json:"index_overhead_frac"`
	IndexOverheadCap  float64 `json:"index_overhead_cap"`
}

// requiredRegions is the roster a roi baseline must cover, and the headline
// entries' merge-time guarantees: the zfp eighth-volume decode must be >= 4x
// faster than a full decode while its index stays within 1% of the blob, and
// the sz eighth-volume decode — seekable since its entropy stream went
// chunked — must stay >= 2.5x.
var requiredRegions = []string{"zfp_eighth", "sz_eighth"}

const (
	roiHeadline             = "zfp_eighth"
	roiHeadlineSpeedupFloor = 4.0
	roiHeadlineOverheadCap  = 0.01
	roiSZRegion             = "sz_eighth"
	roiSZSpeedupFloor       = 2.5
	roiSZOverheadCap        = 0.01
)

// entropyBaseline mirrors the schema of BENCH_entropy.json: the whole-stream
// serial Huffman decode versus the chunked container's parallel decode at
// worker widths 1, 2 and 4 on a >= 1M-symbol quantization-code-like stream.
// Width speedups are wall-clock and core-bound (BENCH_compress.json
// convention: the w4 floor gates only on >= multiCoreMin-core recorders, and
// a small recorder must carry an explanatory runner.note), but two bounds
// hold on any machine: chunked decode at width 1 must stay within
// parallelOverheadCap of the whole-stream decode, and the chunk table must
// cost at most blob_overhead_cap of the legacy container size.
type entropyBaseline struct {
	Benchmark string         `json:"benchmark"`
	Date      string         `json:"date"`
	Runner    compressRunner `json:"runner"`
	Entropy   []entropyEntry `json:"entropy"`
}

type entropyEntry struct {
	Name             string           `json:"name"`
	Bench            string           `json:"bench"`
	NsSerial         float64          `json:"ns_serial"`
	Results          []compressResult `json:"results"`
	SpeedupW4        float64          `json:"speedup_w4"`
	BlobOverheadFrac float64          `json:"blob_overhead_frac"`
	BlobOverheadCap  float64          `json:"blob_overhead_cap"`
}

// requiredEntropy is the roster an entropy baseline must cover, and
// entropyW4Floor the ISSUE-mandated chunked-decode speedup over the serial
// whole-stream decode at width 4 on a multi-core recorder.
var requiredEntropy = []string{"huffman_chunked"}

const (
	entropyW4Floor         = 2.0
	entropyBlobOverheadCap = 0.01
)

// kernelBaseline mirrors the schema of BENCH_kernels.json.
type kernelBaseline struct {
	Benchmark string         `json:"benchmark"`
	Date      string         `json:"date"`
	Kernels   []kernelResult `json:"kernels"`
}

type kernelResult struct {
	Name         string  `json:"name"`
	Bench        string  `json:"bench"`
	NsPerElemOld float64 `json:"ns_per_elem_before"`
	NsPerElemNew float64 `json:"ns_per_elem_after"`
	Speedup      float64 `json:"speedup"`
}

// speedupFloors are the merge-time guarantees of the kernel fast paths: the
// two headline kernels keep their ISSUE-mandated floors, and nothing is
// allowed to have regressed past 0.9× (a fast path slower than the generic
// code it replaced would be a bug, not noise).
var speedupFloors = map[string]float64{
	"sz_quantize_3d": 1.5,
	"huffman_decode": 1.3,
}

const minSpeedup = 0.9

// requiredKernels is the fixed roster a kernel baseline must cover.
var requiredKernels = []string{"sz_quantize_3d", "zfp_encode_ints", "huffman_decode", "ca_scan"}

// knownSchemas names every baseline shape benchguard validates, keyed by the
// top-level field whose presence selects it. The unknown-schema error prints
// this so a misspelled or half-written baseline says what would have matched.
var knownSchemas = []struct{ key, desc string }{
	{"shard", "sharded-serving comparison baseline (BENCH_shard.json)"},
	{"load", "fxrzload mixed-load baseline (BENCH_load.json)"},
	{"entropy", "chunked-entropy decode baseline (BENCH_entropy.json)"},
	{"regions", "region-decode baseline (BENCH_roi.json)"},
	{"endpoints", "serving-overhead baseline (BENCH_serve.json)"},
	{"codecs", "parallel-compress baseline (BENCH_compress.json)"},
	{"kernels", "kernel fast-path baseline (BENCH_kernels.json)"},
	{"results", "training-sweep baseline (BENCH_train.json)"},
}

// validate checks one recorded baseline blob, dispatching on its schema.
// A load baseline also carries an "endpoints" array, so "load" is probed
// first.
func validate(raw []byte) error {
	var probe struct {
		Results   []json.RawMessage `json:"results"`
		Kernels   []json.RawMessage `json:"kernels"`
		Codecs    []json.RawMessage `json:"codecs"`
		Endpoints []json.RawMessage `json:"endpoints"`
		Regions   []json.RawMessage `json:"regions"`
		Entropy   []json.RawMessage `json:"entropy"`
		Load      json.RawMessage   `json:"load"`
		Shard     json.RawMessage   `json:"shard"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	switch {
	case probe.Shard != nil:
		return validateShard(raw)
	case probe.Load != nil:
		return validateLoad(raw)
	case probe.Entropy != nil:
		return validateEntropy(raw)
	case probe.Regions != nil:
		return validateRoi(raw)
	case probe.Endpoints != nil:
		return validateServe(raw)
	case probe.Codecs != nil:
		return validateCompress(raw)
	case probe.Kernels != nil:
		return validateKernels(raw)
	case probe.Results != nil:
		return validateTrain(raw)
	default:
		var sb strings.Builder
		sb.WriteString("unknown schema: no recognized top-level field present; known schemas are")
		for _, s := range knownSchemas {
			fmt.Fprintf(&sb, "\n  %q -> %s", s.key, s.desc)
		}
		return fmt.Errorf("%s", sb.String())
	}
}

// loadBaseline mirrors the schema of BENCH_load.json, recorded by
// cmd/fxrzload: a mixed estimate/unpack/pack workload's totals plus
// per-endpoint latency percentiles. The p99 caps and the shed cap are
// recorded into the file by the run that measured it, so the gate travels
// with the measurement; like the compress baseline, a small recorder
// (< multiCoreMin cores) must carry an explanatory runner.note because
// absolute latencies there are indicative only.
type loadBaseline struct {
	Benchmark string         `json:"benchmark"`
	Date      string         `json:"date"`
	Runner    compressRunner `json:"runner"`
	Load      loadSummary    `json:"load"`
	Endpoints []loadEntry    `json:"endpoints"`
}

type loadSummary struct {
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`
	Mix         string  `json:"mix"`
	RegionFrac  float64 `json:"region_frac"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors"`
	ShedFrac    float64 `json:"shed_frac"`
	ShedCap     float64 `json:"shed_cap"`
	RPS         float64 `json:"rps"`
}

type loadEntry struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Errors   int     `json:"errors"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
	P99CapMS float64 `json:"p99_cap_ms"`
}

// requiredLoadEndpoints is the roster a load baseline must cover — the full
// mix, or the QoS interaction between the classes went unmeasured.
var requiredLoadEndpoints = []string{"estimate", "unpack", "pack"}

func validateLoad(raw []byte) error {
	var b loadBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if err := validateCommon(b.Benchmark, b.Date); err != nil {
		return err
	}
	if b.Runner.Cores <= 0 {
		return fmt.Errorf("runner.cores must be > 0, got %d", b.Runner.Cores)
	}
	if b.Runner.Cores < multiCoreMin && b.Runner.Note == "" {
		return fmt.Errorf("runner has %d cores (< %d): a runner.note qualifying the latency percentiles is required",
			b.Runner.Cores, multiCoreMin)
	}
	l := b.Load
	if l.Concurrency <= 0 {
		return fmt.Errorf("load.concurrency must be > 0, got %d", l.Concurrency)
	}
	if !(l.DurationS > 0) {
		return fmt.Errorf("load.duration_s must be > 0, got %v", l.DurationS)
	}
	if l.Mix == "" {
		return fmt.Errorf("missing required field %q", "load.mix")
	}
	if l.RegionFrac < 0 || l.RegionFrac > 1 {
		return fmt.Errorf("load.region_frac must be in [0, 1], got %v", l.RegionFrac)
	}
	if l.Requests <= 0 {
		return fmt.Errorf("load.requests must be > 0, got %d", l.Requests)
	}
	if l.OK <= 0 {
		return fmt.Errorf("load.ok must be > 0: a baseline with no successful request measured nothing")
	}
	if l.Errors != 0 {
		return fmt.Errorf("load.errors = %d: a clean baseline has none (shed 429s are counted separately)", l.Errors)
	}
	if l.Requests != l.OK+l.Shed+l.Errors {
		return fmt.Errorf("load totals inconsistent: requests %d != ok %d + shed %d + errors %d",
			l.Requests, l.OK, l.Shed, l.Errors)
	}
	if frac := float64(l.Shed) / float64(l.Requests); l.ShedFrac < frac-0.001 || l.ShedFrac > frac+0.001 {
		return fmt.Errorf("load.shed_frac %.4f inconsistent with shed/requests %.4f", l.ShedFrac, frac)
	}
	if l.ShedCap < 0 || l.ShedCap > 1 {
		return fmt.Errorf("load.shed_cap must be in [0, 1], got %v", l.ShedCap)
	}
	if l.ShedCap > 0 && l.ShedFrac > l.ShedCap {
		return fmt.Errorf("shed fraction %.4f exceeds the recorded %.2f cap", l.ShedFrac, l.ShedCap)
	}
	if !(l.RPS > 0) {
		return fmt.Errorf("load.rps must be > 0, got %v", l.RPS)
	}
	seen := make(map[string]bool, len(b.Endpoints))
	var sumReq, sumOK, sumShed, sumErr int
	for i, e := range b.Endpoints {
		if e.Name == "" {
			return fmt.Errorf("endpoints[%d]: missing name", i)
		}
		if seen[e.Name] {
			return fmt.Errorf("endpoints[%d]: duplicate entry for %q", i, e.Name)
		}
		seen[e.Name] = true
		if e.Requests != e.OK+e.Shed+e.Errors {
			return fmt.Errorf("endpoints[%d] (%s): counts inconsistent: requests %d != ok %d + shed %d + errors %d",
				i, e.Name, e.Requests, e.OK, e.Shed, e.Errors)
		}
		if e.OK <= 0 {
			return fmt.Errorf("endpoints[%d] (%s): ok must be > 0 — no successful request, so its percentiles are fiction",
				i, e.Name)
		}
		sumReq += e.Requests
		sumOK += e.OK
		sumShed += e.Shed
		sumErr += e.Errors
		if !(e.P50MS > 0) || e.P50MS > e.P90MS || e.P90MS > e.P99MS || e.P99MS > e.MaxMS {
			return fmt.Errorf("endpoints[%d] (%s): percentiles must satisfy 0 < p50 <= p90 <= p99 <= max, got %v/%v/%v/%v",
				i, e.Name, e.P50MS, e.P90MS, e.P99MS, e.MaxMS)
		}
		if e.P99CapMS < 0 {
			return fmt.Errorf("endpoints[%d] (%s): p99_cap_ms must be >= 0, got %v", i, e.Name, e.P99CapMS)
		}
		if e.P99CapMS > 0 && e.P99MS > e.P99CapMS {
			return fmt.Errorf("endpoints[%d] (%s): p99 %.2fms exceeds the recorded %.2fms cap",
				i, e.Name, e.P99MS, e.P99CapMS)
		}
	}
	if sumReq != l.Requests || sumOK != l.OK || sumShed != l.Shed || sumErr != l.Errors {
		return fmt.Errorf("endpoint sums (%d/%d/%d/%d req/ok/shed/err) do not add up to the load totals (%d/%d/%d/%d)",
			sumReq, sumOK, sumShed, sumErr, l.Requests, l.OK, l.Shed, l.Errors)
	}
	for _, name := range requiredLoadEndpoints {
		if !seen[name] {
			return fmt.Errorf("missing required endpoint %q", name)
		}
	}
	return nil
}

// shardBaseline mirrors the schema of BENCH_shard.json, recorded by
// cmd/fxrzload -shard-out: the same batch workload driven against one
// instance and against a peered shard ring, with the sharded/single per-item
// p50 ratio recorded as the scatter-gather overhead. Both runs happen within
// one invocation on one machine, so — like the serve overheads — the ratio
// gates anywhere, while absolute latencies from a small recorder
// (< multiCoreMin cores) must carry a qualifying runner.note.
type shardBaseline struct {
	Benchmark string         `json:"benchmark"`
	Date      string         `json:"date"`
	Runner    compressRunner `json:"runner"`
	Shard     shardSummary   `json:"shard"`
}

type shardSummary struct {
	Mix         string     `json:"mix"`
	Batch       int        `json:"batch"`
	Concurrency int        `json:"concurrency"`
	Runs        []shardRun `json:"runs"`
	OverheadP50 float64    `json:"overhead_p50"`
	OverheadCap float64    `json:"overhead_cap"`
}

type shardRun struct {
	Shards    int     `json:"shards"`
	DurationS float64 `json:"duration_s"`
	Items     int     `json:"items"`
	OK        int     `json:"ok"`
	Shed      int     `json:"shed"`
	Errors    int     `json:"errors"`
	ItemP50MS float64 `json:"item_p50_ms"`
	ItemP99MS float64 `json:"item_p99_ms"`
}

func validateShard(raw []byte) error {
	var b shardBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if err := validateCommon(b.Benchmark, b.Date); err != nil {
		return err
	}
	if b.Runner.Cores <= 0 {
		return fmt.Errorf("runner.cores must be > 0, got %d", b.Runner.Cores)
	}
	if b.Runner.Cores < multiCoreMin && b.Runner.Note == "" {
		return fmt.Errorf("runner has %d cores (< %d): a runner.note qualifying the latency percentiles is required",
			b.Runner.Cores, multiCoreMin)
	}
	s := b.Shard
	if s.Mix == "" {
		return fmt.Errorf("missing required field %q", "shard.mix")
	}
	if s.Batch < 2 {
		return fmt.Errorf("shard.batch must be >= 2 (the comparison measures the /v1/*-many scatter path), got %d", s.Batch)
	}
	if s.Concurrency <= 0 {
		return fmt.Errorf("shard.concurrency must be > 0, got %d", s.Concurrency)
	}
	if len(s.Runs) < 2 {
		return fmt.Errorf("shard.runs must record the single-instance run and at least one sharded run, got %d", len(s.Runs))
	}
	seen := make(map[int]bool, len(s.Runs))
	for i, r := range s.Runs {
		if r.Shards <= 0 {
			return fmt.Errorf("runs[%d]: shards must be > 0, got %d", i, r.Shards)
		}
		if seen[r.Shards] {
			return fmt.Errorf("runs[%d]: duplicate entry for shards=%d", i, r.Shards)
		}
		seen[r.Shards] = true
		if i > 0 && r.Shards <= s.Runs[i-1].Shards {
			return fmt.Errorf("runs[%d]: shard counts must be ascending, got %d after %d", i, r.Shards, s.Runs[i-1].Shards)
		}
		if !(r.DurationS > 0) {
			return fmt.Errorf("runs[%d] (shards=%d): duration_s must be > 0, got %v", i, r.Shards, r.DurationS)
		}
		if r.Items <= 0 {
			return fmt.Errorf("runs[%d] (shards=%d): items must be > 0, got %d", i, r.Shards, r.Items)
		}
		if r.OK <= 0 {
			return fmt.Errorf("runs[%d] (shards=%d): ok must be > 0: a run with no successful item measured nothing", i, r.Shards)
		}
		if r.Errors != 0 {
			return fmt.Errorf("runs[%d] (shards=%d): errors = %d: a clean baseline has none (shed 429s are counted separately)", i, r.Shards, r.Errors)
		}
		if r.Items != r.OK+r.Shed+r.Errors {
			return fmt.Errorf("runs[%d] (shards=%d): counts inconsistent: items %d != ok %d + shed %d + errors %d",
				i, r.Shards, r.Items, r.OK, r.Shed, r.Errors)
		}
		if !(r.ItemP50MS > 0) || r.ItemP50MS > r.ItemP99MS {
			return fmt.Errorf("runs[%d] (shards=%d): percentiles must satisfy 0 < item_p50 <= item_p99, got %v/%v",
				i, r.Shards, r.ItemP50MS, r.ItemP99MS)
		}
	}
	if s.Runs[0].Shards != 1 {
		return fmt.Errorf("runs[0] must be the single-instance run (shards=1), got shards=%d", s.Runs[0].Shards)
	}
	last := s.Runs[len(s.Runs)-1]
	if last.Shards < 2 {
		return fmt.Errorf("no sharded run recorded: the last run must have shards >= 2, got %d", last.Shards)
	}
	if !(s.OverheadP50 > 0) {
		return fmt.Errorf("shard.overhead_p50 must be > 0, got %v", s.OverheadP50)
	}
	// The recorder rounds the overhead to two decimals, so the check is
	// absolute, not relative: a rounded value is within 0.005 of the ratio.
	if ratio := last.ItemP50MS / s.Runs[0].ItemP50MS; s.OverheadP50 < ratio-0.011 || s.OverheadP50 > ratio+0.011 {
		return fmt.Errorf("shard.overhead_p50 %.3f inconsistent with the sharded/single p50 ratio %.3f", s.OverheadP50, ratio)
	}
	if s.OverheadCap < 0 {
		return fmt.Errorf("shard.overhead_cap must be >= 0, got %v", s.OverheadCap)
	}
	if s.OverheadCap > 0 && s.OverheadP50 > s.OverheadCap {
		return fmt.Errorf("scatter-gather overhead %.2fx exceeds the recorded %.2fx cap", s.OverheadP50, s.OverheadCap)
	}
	return nil
}

func validateRoi(raw []byte) error {
	var b roiBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if err := validateCommon(b.Benchmark, b.Date); err != nil {
		return err
	}
	if b.Runner.Cores <= 0 {
		return fmt.Errorf("runner.cores must be > 0, got %d", b.Runner.Cores)
	}
	seen := make(map[string]roiEntry, len(b.Regions))
	for i, e := range b.Regions {
		if e.Name == "" {
			return fmt.Errorf("regions[%d]: missing name", i)
		}
		if _, dup := seen[e.Name]; dup {
			return fmt.Errorf("regions[%d]: duplicate entry for %q", i, e.Name)
		}
		seen[e.Name] = e
		if e.Bench == "" {
			return fmt.Errorf("regions[%d] (%s): missing bench", i, e.Name)
		}
		if !(e.NsFull > 0) || !(e.NsRegion > 0) {
			return fmt.Errorf("regions[%d] (%s): ns_full/ns_region must be > 0, got %v/%v",
				i, e.Name, e.NsFull, e.NsRegion)
		}
		if !(e.Speedup > 0) {
			return fmt.Errorf("regions[%d] (%s): speedup must be > 0, got %v", i, e.Name, e.Speedup)
		}
		if ratio := e.NsFull / e.NsRegion; ratio/e.Speedup > 1.01 || e.Speedup/ratio > 1.01 {
			return fmt.Errorf("regions[%d] (%s): speedup %.3f inconsistent with full/region ratio %.3f",
				i, e.Name, e.Speedup, ratio)
		}
		if !(e.VolumeFrac > 0 && e.VolumeFrac <= 1) {
			return fmt.Errorf("regions[%d] (%s): volume_frac must be in (0, 1], got %v", i, e.Name, e.VolumeFrac)
		}
		if e.SpeedupFloor > 0 && e.Speedup < e.SpeedupFloor {
			return fmt.Errorf("regions[%d] (%s): speedup %.2fx below the %.1fx floor",
				i, e.Name, e.Speedup, e.SpeedupFloor)
		}
		if e.IndexOverheadFrac < 0 {
			return fmt.Errorf("regions[%d] (%s): index_overhead_frac must be >= 0, got %v",
				i, e.Name, e.IndexOverheadFrac)
		}
		if e.IndexOverheadCap > 0 && e.IndexOverheadFrac > e.IndexOverheadCap {
			return fmt.Errorf("regions[%d] (%s): index overhead %.4f exceeds the %.2f cap",
				i, e.Name, e.IndexOverheadFrac, e.IndexOverheadCap)
		}
	}
	for _, name := range requiredRegions {
		if _, ok := seen[name]; !ok {
			return fmt.Errorf("missing required region %q", name)
		}
	}
	// The headline entries must keep their merge-time guarantees, not just
	// any self-declared floor.
	h := seen[roiHeadline]
	if h.SpeedupFloor < roiHeadlineSpeedupFloor {
		return fmt.Errorf("%s: speedup_floor %.2f below the required %.1fx", roiHeadline, h.SpeedupFloor, roiHeadlineSpeedupFloor)
	}
	if !(h.IndexOverheadCap > 0) || h.IndexOverheadCap > roiHeadlineOverheadCap {
		return fmt.Errorf("%s: index_overhead_cap %v must be in (0, %.2f]", roiHeadline, h.IndexOverheadCap, roiHeadlineOverheadCap)
	}
	s := seen[roiSZRegion]
	if s.SpeedupFloor < roiSZSpeedupFloor {
		return fmt.Errorf("%s: speedup_floor %.2f below the required %.1fx", roiSZRegion, s.SpeedupFloor, roiSZSpeedupFloor)
	}
	if !(s.IndexOverheadCap > 0) || s.IndexOverheadCap > roiSZOverheadCap {
		return fmt.Errorf("%s: index_overhead_cap %v must be in (0, %.2f]", roiSZRegion, s.IndexOverheadCap, roiSZOverheadCap)
	}
	return nil
}

func validateEntropy(raw []byte) error {
	var b entropyBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if err := validateCommon(b.Benchmark, b.Date); err != nil {
		return err
	}
	if b.Runner.Cores <= 0 {
		return fmt.Errorf("runner.cores must be > 0, got %d", b.Runner.Cores)
	}
	multiCore := b.Runner.Cores >= multiCoreMin
	if !multiCore && b.Runner.Note == "" {
		return fmt.Errorf("runner has %d cores (< %d): a runner.note explaining the un-enforceable speedup floor is required",
			b.Runner.Cores, multiCoreMin)
	}
	seen := make(map[string]entropyEntry, len(b.Entropy))
	for i, e := range b.Entropy {
		if e.Name == "" {
			return fmt.Errorf("entropy[%d]: missing name", i)
		}
		if _, dup := seen[e.Name]; dup {
			return fmt.Errorf("entropy[%d]: duplicate entry for %q", i, e.Name)
		}
		seen[e.Name] = e
		if e.Bench == "" {
			return fmt.Errorf("entropy[%d] (%s): missing bench", i, e.Name)
		}
		if !(e.NsSerial > 0) {
			return fmt.Errorf("entropy[%d] (%s): ns_serial must be > 0, got %v", i, e.Name, e.NsSerial)
		}
		byWidth := make(map[int]float64, len(e.Results))
		for j, r := range e.Results {
			if !(r.NsPerElem > 0) {
				return fmt.Errorf("entropy[%d] (%s) results[%d]: ns_per_elem must be > 0, got %v", i, e.Name, j, r.NsPerElem)
			}
			if _, dup := byWidth[r.Workers]; dup {
				return fmt.Errorf("entropy[%d] (%s): duplicate entry for workers=%d", i, e.Name, r.Workers)
			}
			byWidth[r.Workers] = r.NsPerElem
		}
		for _, w := range compressWidths {
			if _, ok := byWidth[w]; !ok {
				return fmt.Errorf("entropy[%d] (%s): missing result for workers=%d", i, e.Name, w)
			}
		}
		ratio := e.NsSerial / byWidth[4]
		if !(e.SpeedupW4 > 0) {
			return fmt.Errorf("entropy[%d] (%s): speedup_w4 must be > 0, got %v", i, e.Name, e.SpeedupW4)
		}
		if ratio/e.SpeedupW4 > 1.01 || e.SpeedupW4/ratio > 1.01 {
			return fmt.Errorf("entropy[%d] (%s): speedup_w4 %.3f inconsistent with serial/w4 ratio %.3f", i, e.Name, e.SpeedupW4, ratio)
		}
		// Chunk bookkeeping must stay cheap even with no cores to exploit:
		// a width-1 chunked decode may not run more than parallelOverheadCap
		// slower than the whole-stream decode, on any recorder.
		if byWidth[1] > parallelOverheadCap*e.NsSerial {
			return fmt.Errorf("entropy[%d] (%s): width-1 chunked decode is %.2fx slower than the whole-stream decode (overhead cap %.2fx)",
				i, e.Name, byWidth[1]/e.NsSerial, parallelOverheadCap)
		}
		if e.BlobOverheadFrac < 0 {
			return fmt.Errorf("entropy[%d] (%s): blob_overhead_frac must be >= 0, got %v", i, e.Name, e.BlobOverheadFrac)
		}
		if !(e.BlobOverheadCap > 0) || e.BlobOverheadCap > entropyBlobOverheadCap {
			return fmt.Errorf("entropy[%d] (%s): blob_overhead_cap %v must be in (0, %.2f]", i, e.Name, e.BlobOverheadCap, entropyBlobOverheadCap)
		}
		if e.BlobOverheadFrac > e.BlobOverheadCap {
			return fmt.Errorf("entropy[%d] (%s): chunk-table overhead %.5f exceeds the %.2f cap", i, e.Name, e.BlobOverheadFrac, e.BlobOverheadCap)
		}
		if multiCore && e.SpeedupW4 < entropyW4Floor {
			return fmt.Errorf("entropy[%d] (%s): chunked decode speedup %.3f at width 4 below the %.1fx floor on a %d-core runner",
				i, e.Name, e.SpeedupW4, entropyW4Floor, b.Runner.Cores)
		}
	}
	for _, name := range requiredEntropy {
		if _, ok := seen[name]; !ok {
			return fmt.Errorf("missing required entropy entry %q", name)
		}
	}
	return nil
}

func validateCompress(raw []byte) error {
	var b compressBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if err := validateCommon(b.Benchmark, b.Date); err != nil {
		return err
	}
	if b.Field == "" {
		return fmt.Errorf("missing required field %q", "field")
	}
	if b.Runner.Cores <= 0 {
		return fmt.Errorf("runner.cores must be > 0, got %d", b.Runner.Cores)
	}
	multiCore := b.Runner.Cores >= multiCoreMin
	if !multiCore && b.Runner.Note == "" {
		return fmt.Errorf("runner has %d cores (< %d): a runner.note explaining the un-enforceable speedup floor is required",
			b.Runner.Cores, multiCoreMin)
	}
	seen := make(map[string]compressEntry, len(b.Codecs))
	for i, c := range b.Codecs {
		if c.Name == "" {
			return fmt.Errorf("codecs[%d]: missing name", i)
		}
		if _, dup := seen[c.Name]; dup {
			return fmt.Errorf("codecs[%d]: duplicate entry for %q", i, c.Name)
		}
		seen[c.Name] = c
		byWidth := make(map[int]float64, len(c.Results))
		for j, r := range c.Results {
			if !(r.NsPerElem > 0) {
				return fmt.Errorf("codecs[%d] (%s) results[%d]: ns_per_elem must be > 0, got %v", i, c.Name, j, r.NsPerElem)
			}
			if _, dup := byWidth[r.Workers]; dup {
				return fmt.Errorf("codecs[%d] (%s): duplicate entry for workers=%d", i, c.Name, r.Workers)
			}
			byWidth[r.Workers] = r.NsPerElem
		}
		for _, w := range compressWidths {
			if _, ok := byWidth[w]; !ok {
				return fmt.Errorf("codecs[%d] (%s): missing result for workers=%d", i, c.Name, w)
			}
		}
		ratio := byWidth[1] / byWidth[4]
		if !(c.SpeedupW4 > 0) {
			return fmt.Errorf("codecs[%d] (%s): speedup_w4 must be > 0, got %v", i, c.Name, c.SpeedupW4)
		}
		if ratio/c.SpeedupW4 > 1.01 || c.SpeedupW4/ratio > 1.01 {
			return fmt.Errorf("codecs[%d] (%s): speedup_w4 %.3f inconsistent with w1/w4 ratio %.3f", i, c.Name, c.SpeedupW4, ratio)
		}
		if c.SpeedupW4 < 1/parallelOverheadCap {
			return fmt.Errorf("codecs[%d] (%s): width-4 run is %.2fx slower than serial (overhead cap %.2fx)",
				i, c.Name, 1/c.SpeedupW4, parallelOverheadCap)
		}
		if multiCore && strings.HasSuffix(c.Name, "_pack") && c.SpeedupW4 < packSpeedupFloor {
			return fmt.Errorf("codecs[%d] (%s): pack speedup %.3f at width 4 below the %.1fx floor on a %d-core runner",
				i, c.Name, c.SpeedupW4, packSpeedupFloor, b.Runner.Cores)
		}
	}
	for _, name := range requiredCodecs {
		if _, ok := seen[name]; !ok {
			return fmt.Errorf("missing required codec %q", name)
		}
	}
	return nil
}

func validateServe(raw []byte) error {
	var b serveBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if err := validateCommon(b.Benchmark, b.Date); err != nil {
		return err
	}
	if b.Runner.Cores <= 0 {
		return fmt.Errorf("runner.cores must be > 0, got %d", b.Runner.Cores)
	}
	seen := make(map[string]bool, len(b.Endpoints))
	for i, e := range b.Endpoints {
		if e.Name == "" {
			return fmt.Errorf("endpoints[%d]: missing name", i)
		}
		if seen[e.Name] {
			return fmt.Errorf("endpoints[%d]: duplicate entry for %q", i, e.Name)
		}
		seen[e.Name] = true
		if e.Bench == "" {
			return fmt.Errorf("endpoints[%d] (%s): missing bench", i, e.Name)
		}
		if !(e.NsPerReqDirect > 0) || !(e.NsPerReqHTTP > 0) {
			return fmt.Errorf("endpoints[%d] (%s): ns_per_req_direct/http must be > 0, got %v/%v",
				i, e.Name, e.NsPerReqDirect, e.NsPerReqHTTP)
		}
		if !(e.Overhead > 0) {
			return fmt.Errorf("endpoints[%d] (%s): overhead must be > 0, got %v", i, e.Name, e.Overhead)
		}
		if ratio := e.NsPerReqHTTP / e.NsPerReqDirect; ratio/e.Overhead > 1.01 || e.Overhead/ratio > 1.01 {
			return fmt.Errorf("endpoints[%d] (%s): overhead %.3f inconsistent with http/direct ratio %.3f",
				i, e.Name, e.Overhead, ratio)
		}
		if cap, ok := serveOverheadCaps[e.Name]; ok && e.Overhead > cap {
			return fmt.Errorf("endpoints[%d] (%s): serving overhead %.2fx exceeds the %.1fx cap",
				i, e.Name, e.Overhead, cap)
		}
	}
	for _, name := range requiredEndpoints {
		if !seen[name] {
			return fmt.Errorf("missing required endpoint %q", name)
		}
	}
	if len(b.Batch) == 0 {
		return fmt.Errorf("missing required section %q: the /v1/*-many amortization curves must be recorded", "batch")
	}
	seenBatch := make(map[string]serveBatchEntry, len(b.Batch))
	for i, e := range b.Batch {
		if e.Name == "" {
			return fmt.Errorf("batch[%d]: missing name", i)
		}
		if _, dup := seenBatch[e.Name]; dup {
			return fmt.Errorf("batch[%d]: duplicate entry for %q", i, e.Name)
		}
		seenBatch[e.Name] = e
		if e.Bench == "" {
			return fmt.Errorf("batch[%d] (%s): missing bench", i, e.Name)
		}
		byN := make(map[int]float64, len(e.Results))
		for j, r := range e.Results {
			if r.Batch <= 0 {
				return fmt.Errorf("batch[%d] (%s) results[%d]: batch must be > 0, got %d", i, e.Name, j, r.Batch)
			}
			if !(r.NsPerItem > 0) {
				return fmt.Errorf("batch[%d] (%s) results[%d]: ns_per_item must be > 0, got %v", i, e.Name, j, r.NsPerItem)
			}
			if _, dup := byN[r.Batch]; dup {
				return fmt.Errorf("batch[%d] (%s): duplicate entry for batch=%d", i, e.Name, r.Batch)
			}
			byN[r.Batch] = r.NsPerItem
		}
		for _, n := range serveBatchSizes {
			if _, ok := byN[n]; !ok {
				return fmt.Errorf("batch[%d] (%s): missing result for batch=%d", i, e.Name, n)
			}
		}
		for k := 1; k < len(serveBatchSizes); k++ {
			prev, cur := serveBatchSizes[k-1], serveBatchSizes[k]
			if byN[cur] > byN[prev]*batchMonotonicitySlack {
				return fmt.Errorf("batch[%d] (%s): per-item cost rises from %.0fns at batch %d to %.0fns at batch %d (> %.0f%% slack)",
					i, e.Name, byN[prev], prev, byN[cur], cur, (batchMonotonicitySlack-1)*100)
			}
		}
		ratio := byN[1] / byN[16]
		if !(e.AmortizationB16 > 0) {
			return fmt.Errorf("batch[%d] (%s): amortization_b16 must be > 0, got %v", i, e.Name, e.AmortizationB16)
		}
		if ratio/e.AmortizationB16 > 1.01 || e.AmortizationB16/ratio > 1.01 {
			return fmt.Errorf("batch[%d] (%s): amortization_b16 %.3f inconsistent with b1/b16 per-item ratio %.3f",
				i, e.Name, e.AmortizationB16, ratio)
		}
		if e.AmortizationFloor < 0 {
			return fmt.Errorf("batch[%d] (%s): amortization_floor must be >= 0, got %v", i, e.Name, e.AmortizationFloor)
		}
		if e.AmortizationFloor > 0 && e.AmortizationB16 < e.AmortizationFloor {
			return fmt.Errorf("batch[%d] (%s): amortization %.2fx at batch 16 below the %.1fx floor",
				i, e.Name, e.AmortizationB16, e.AmortizationFloor)
		}
	}
	for _, name := range requiredBatchEndpoints {
		if _, ok := seenBatch[name]; !ok {
			return fmt.Errorf("missing required batch endpoint %q", name)
		}
	}
	// The estimate curve must keep its merge-time floor, not just any
	// self-declared one.
	if est := seenBatch["estimate"]; est.AmortizationFloor < batchEstimateAmortFloor {
		return fmt.Errorf("batch estimate: amortization_floor %.2f below the required %.1fx", est.AmortizationFloor, batchEstimateAmortFloor)
	}
	return nil
}

func validateCommon(benchmark, date string) error {
	if benchmark == "" {
		return fmt.Errorf("missing required field %q", "benchmark")
	}
	if date == "" {
		return fmt.Errorf("missing required field %q", "date")
	}
	if _, err := time.Parse("2006-01-02", date); err != nil {
		return fmt.Errorf("date %q is not YYYY-MM-DD: %w", date, err)
	}
	return nil
}

func validateTrain(raw []byte) error {
	var b trainBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if err := validateCommon(b.Benchmark, b.Date); err != nil {
		return err
	}
	if b.Field == "" {
		return fmt.Errorf("missing required field %q", "field")
	}
	if len(b.Results) == 0 {
		return fmt.Errorf("results is empty: the baseline must record at least one worker width")
	}
	seen := make(map[int]bool, len(b.Results))
	for i, r := range b.Results {
		if r.Workers <= 0 {
			return fmt.Errorf("results[%d]: workers must be > 0, got %d", i, r.Workers)
		}
		if seen[r.Workers] {
			return fmt.Errorf("results[%d]: duplicate entry for workers=%d", i, r.Workers)
		}
		seen[r.Workers] = true
		if !(r.NsPerOp > 0) {
			return fmt.Errorf("results[%d] (workers=%d): ns_per_op must be > 0, got %v", i, r.Workers, r.NsPerOp)
		}
		if !(r.SweepS > 0) {
			return fmt.Errorf("results[%d] (workers=%d): sweep_s must be > 0, got %v", i, r.Workers, r.SweepS)
		}
	}
	return nil
}

func validateKernels(raw []byte) error {
	var b kernelBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("not valid JSON: %w", err)
	}
	if err := validateCommon(b.Benchmark, b.Date); err != nil {
		return err
	}
	if len(b.Kernels) == 0 {
		return fmt.Errorf("kernels is empty")
	}
	seen := make(map[string]kernelResult, len(b.Kernels))
	for i, k := range b.Kernels {
		if k.Name == "" {
			return fmt.Errorf("kernels[%d]: missing name", i)
		}
		if _, dup := seen[k.Name]; dup {
			return fmt.Errorf("kernels[%d]: duplicate entry for %q", i, k.Name)
		}
		seen[k.Name] = k
		if !(k.NsPerElemOld > 0) || !(k.NsPerElemNew > 0) {
			return fmt.Errorf("kernels[%d] (%s): ns_per_elem_before/after must be > 0, got %v/%v",
				i, k.Name, k.NsPerElemOld, k.NsPerElemNew)
		}
		if !(k.Speedup > 0) {
			return fmt.Errorf("kernels[%d] (%s): speedup must be > 0, got %v", i, k.Name, k.Speedup)
		}
		if ratio := k.NsPerElemOld / k.NsPerElemNew; ratio/k.Speedup > 1.01 || k.Speedup/ratio > 1.01 {
			return fmt.Errorf("kernels[%d] (%s): speedup %.3f inconsistent with before/after ratio %.3f",
				i, k.Name, k.Speedup, ratio)
		}
		floor := speedupFloors[k.Name]
		if floor < minSpeedup {
			floor = minSpeedup
		}
		if k.Speedup < floor {
			return fmt.Errorf("kernels[%d] (%s): speedup %.3f below floor %.2f", i, k.Name, k.Speedup, floor)
		}
	}
	for _, name := range requiredKernels {
		if _, ok := seen[name]; !ok {
			return fmt.Errorf("missing required kernel %q", name)
		}
	}
	return nil
}

// benchToKernel maps `go test -bench` names to baseline kernel names, and
// variant names to the before/after role.
var benchToKernel = map[string]string{
	"BenchmarkKernelQuantize3D":    "sz_quantize_3d",
	"BenchmarkKernelEncodeInts":    "zfp_encode_ints",
	"BenchmarkKernelHuffmanDecode": "huffman_decode",
	"BenchmarkKernelCAScan":        "ca_scan",
}

var variantRole = map[string]string{
	"generic": "before", "perplane": "before", "bitwise": "before", "odometer": "before",
	"fast": "after", "transposed": "after", "table": "after",
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// nsPerElem extracts the custom ns/elem metric from a bench output line.
func nsPerElem(fields []string) (float64, bool) {
	for i := 2; i < len(fields); i++ {
		if fields[i] == "ns/elem" {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil || !(v > 0) {
				return 0, false
			}
			return v, true
		}
	}
	return 0, false
}

// parseBenchLine extracts (kernel, role, ns/elem) from one benchmark output
// line, or ok=false for lines that are not kernel results.
func parseBenchLine(line string) (kernel, role string, nsPerElem_ float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "BenchmarkKernel") {
		return "", "", 0, false
	}
	name := procSuffix.ReplaceAllString(fields[0], "")
	base, variant, found := strings.Cut(name, "/")
	if !found {
		return "", "", 0, false
	}
	kernel, okK := benchToKernel[base]
	role, okV := variantRole[variant]
	if !okK || !okV {
		return "", "", 0, false
	}
	v, okN := nsPerElem(fields)
	if !okN {
		return "", "", 0, false
	}
	return kernel, role, v, true
}

// parseCompressBenchLine extracts (codec entry, role, ns/elem) from a
// BenchmarkCompressPack/sz/w1-style line: width 1 plays the serial "before"
// role and width 4 the parallel "after"; width 2 is recorded but not gated.
func parseCompressBenchLine(line string) (name, role string, v float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "BenchmarkCompress") {
		return "", "", 0, false
	}
	parts := strings.Split(procSuffix.ReplaceAllString(fields[0], ""), "/")
	if len(parts) != 3 {
		return "", "", 0, false
	}
	var op string
	switch parts[0] {
	case "BenchmarkCompressPack":
		op = "pack"
	case "BenchmarkCompressUnpack":
		op = "unpack"
	default:
		return "", "", 0, false
	}
	switch parts[2] {
	case "w1":
		role = "before"
	case "w4":
		role = "after"
	default:
		return "", "", 0, false
	}
	v, okN := nsPerElem(fields)
	if !okN {
		return "", "", 0, false
	}
	return parts[1] + "_" + op, role, v, true
}

// parseServeBenchLine extracts (endpoint, role, ns/op) from a
// BenchmarkServeEstimate/direct-style line: the direct library call plays
// the "before" role and the HTTP round trip the "after", so the pair's
// before/after ratio is the inverse of the serving overhead.
func parseServeBenchLine(line string) (name, role string, v float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "BenchmarkServe") {
		return "", "", 0, false
	}
	parts := strings.Split(procSuffix.ReplaceAllString(fields[0], ""), "/")
	if len(parts) != 2 {
		return "", "", 0, false
	}
	base := strings.TrimPrefix(parts[0], "BenchmarkServe")
	if base == "" {
		return "", "", 0, false
	}
	switch parts[1] {
	case "direct":
		role = "before"
	case "http":
		role = "after"
	default:
		return "", "", 0, false
	}
	if fields[3] != "ns/op" {
		return "", "", 0, false
	}
	v, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || !(v > 0) {
		return "", "", 0, false
	}
	return strings.ToLower(base), role, v, true
}

// batchSub matches the /bN batch-size subname of BenchmarkServeBatch* runs.
var batchSub = regexp.MustCompile(`^b(\d+)$`)

// parseServeBatchBenchLine extracts (curve, role, per-item ns) from a
// BenchmarkServeBatchEstimate/b16-style line. The benchmark reports
// whole-batch ns/op, so the value is divided by the batch size from the /bN
// subname. The b1 run plays the "before" role and b16 the "after", pairing as
// "<endpoint>_batch16" with the before/after ratio being the per-item
// amortization; the b4/b64 points are recorded in the baseline but not
// re-paired here.
func parseServeBatchBenchLine(line string) (name, role string, v float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "BenchmarkServeBatch") {
		return "", "", 0, false
	}
	parts := strings.Split(procSuffix.ReplaceAllString(fields[0], ""), "/")
	if len(parts) != 2 {
		return "", "", 0, false
	}
	base := strings.TrimPrefix(parts[0], "BenchmarkServeBatch")
	if base == "" {
		return "", "", 0, false
	}
	m := batchSub.FindStringSubmatch(parts[1])
	if m == nil {
		return "", "", 0, false
	}
	n, err := strconv.Atoi(m[1])
	if err != nil || n <= 0 {
		return "", "", 0, false
	}
	switch n {
	case 1:
		role = "before"
	case 16:
		role = "after"
	default:
		return "", "", 0, false
	}
	if fields[3] != "ns/op" {
		return "", "", 0, false
	}
	v, err = strconv.ParseFloat(fields[2], 64)
	if err != nil || !(v > 0) {
		return "", "", 0, false
	}
	return strings.ToLower(base) + "_batch16", role, v / float64(n), true
}

// batchAmortFloors are the absolute per-item amortization floors enforced in
// -deltas mode, keyed by the paired curve name.
var batchAmortFloors = map[string]float64{
	"estimate_batch16": batchEstimateAmortFloor,
}

// parseRoiBenchLine extracts (region entry, role, ns/op) from a
// BenchmarkRegionDecode/zfp/full-style line: the full decode plays the
// "before" role and the subvolume decode the "after", so the pair's
// before/after ratio is the region speedup.
func parseRoiBenchLine(line string) (name, role string, v float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "BenchmarkRegionDecode/") {
		return "", "", 0, false
	}
	parts := strings.Split(procSuffix.ReplaceAllString(fields[0], ""), "/")
	if len(parts) != 3 {
		return "", "", 0, false
	}
	switch parts[2] {
	case "full":
		role = "before"
	case "eighth":
		role = "after"
	default:
		return "", "", 0, false
	}
	if fields[3] != "ns/op" {
		return "", "", 0, false
	}
	v, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || !(v > 0) {
		return "", "", 0, false
	}
	return parts[1] + "_eighth", role, v, true
}

// parseEntropyBenchLine pairs the chunked-entropy decode variants: the
// whole-stream serial decode is the "before" leg and the width-4 chunked
// decode the "after" leg (w1/w2 appear in the recorded baseline but carry no
// within-run gate of their own here).
func parseEntropyBenchLine(line string) (name, role string, v float64, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "BenchmarkChunkedDecode/") {
		return "", "", 0, false
	}
	parts := strings.Split(procSuffix.ReplaceAllString(fields[0], ""), "/")
	if len(parts) != 3 {
		return "", "", 0, false
	}
	switch parts[2] {
	case "serial":
		role = "before"
	case "w4":
		role = "after"
	default:
		return "", "", 0, false
	}
	if fields[3] != "ns/op" {
		return "", "", 0, false
	}
	v, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || !(v > 0) {
		return "", "", 0, false
	}
	return parts[1] + "_chunked", role, v, true
}

// runDeltas implements -deltas: pair up variants from bench output, print the
// old-vs-new table, and gate against the recorded baseline if one was given.
// Kernel lines pair generic/fast variants; compress lines pair the w1/w4
// worker widths. Kernel speedups are before/after ratios within one process
// and gate on any machine; compress speedups are wall-clock parallel gains,
// so they gate only when the measuring machine has >= multiCoreMin cores
// (elsewhere the table is printed for information and only missing variants
// fail).
func runDeltas(in io.Reader, out io.Writer, baselinePath string, cores int) error {
	type pair struct{ before, after float64 }
	measured := map[string]*pair{}
	compressGate := cores >= multiCoreMin
	isCompress := map[string]bool{}
	isServe := map[string]bool{}
	isRoi := map[string]bool{}
	isBatch := map[string]bool{}
	isEntropy := map[string]bool{}
	roiFloors := map[string]float64{}
	record := func(name, role string, v float64) {
		p := measured[name]
		if p == nil {
			p = &pair{}
			measured[name] = p
		}
		if role == "before" {
			p.before = v
		} else {
			p.after = v
		}
	}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		if kernel, role, v, ok := parseBenchLine(sc.Text()); ok {
			record(kernel, role, v)
			continue
		}
		if name, role, v, ok := parseCompressBenchLine(sc.Text()); ok {
			record(name, role, v)
			isCompress[name] = true
			continue
		}
		if name, role, v, ok := parseRoiBenchLine(sc.Text()); ok {
			record(name, role, v)
			isRoi[name] = true
			continue
		}
		if name, role, v, ok := parseEntropyBenchLine(sc.Text()); ok {
			record(name, role, v)
			isEntropy[name] = true
			continue
		}
		if name, role, v, ok := parseServeBatchBenchLine(sc.Text()); ok {
			record(name, role, v)
			isBatch[name] = true
			continue
		}
		if name, role, v, ok := parseServeBenchLine(sc.Text()); ok {
			record(name, role, v)
			isServe[name] = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(measured) == 0 {
		return fmt.Errorf("no kernel or compress benchmark lines found on stdin")
	}

	recorded := map[string]float64{}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return err
		}
		if err := validate(raw); err != nil {
			return fmt.Errorf("%s: %w", baselinePath, err)
		}
		var kb kernelBaseline
		var cb compressBaseline
		var sb serveBaseline
		var rb roiBaseline
		var eb entropyBaseline
		_ = json.Unmarshal(raw, &kb) // validated above
		_ = json.Unmarshal(raw, &cb)
		_ = json.Unmarshal(raw, &sb)
		_ = json.Unmarshal(raw, &rb)
		_ = json.Unmarshal(raw, &eb)
		for _, e := range eb.Entropy {
			recorded[e.Name] = e.SpeedupW4
		}
		for _, k := range kb.Kernels {
			recorded[k.Name] = k.Speedup
		}
		for _, c := range cb.Codecs {
			recorded[c.Name] = c.SpeedupW4
		}
		for _, e := range sb.Endpoints {
			// The serve pair's before/after ratio is direct/http, i.e. the
			// inverse of the recorded overhead.
			recorded[e.Name] = 1 / e.Overhead
		}
		for _, e := range sb.Batch {
			recorded[e.Name+"_batch16"] = e.AmortizationB16
		}
		for _, e := range rb.Regions {
			recorded[e.Name] = e.Speedup
			roiFloors[e.Name] = e.SpeedupFloor
		}
	}

	names := make([]string, 0, len(measured))
	for name := range measured {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	fmt.Fprintf(out, "%-16s %12s %12s %9s %s\n", "name", "old ns/elem", "new ns/elem", "speedup", "recorded")
	for _, name := range names {
		p := measured[name]
		if p.before == 0 || p.after == 0 {
			failures = append(failures, fmt.Sprintf("%s: missing %s variant", name,
				map[bool]string{true: "before", false: "after"}[p.before == 0]))
			continue
		}
		sp := p.before / p.after
		note := "-"
		if rec, ok := recorded[name]; ok {
			note = fmt.Sprintf("%.2fx", rec)
			switch {
			case (isCompress[name] || isEntropy[name]) && !compressGate:
				note += " (not gated: <4 cores)"
			case isRoi[name]:
				// Region pairs gate on their absolute floors below; the
				// recorded ratio stays informational, because the sz pair's
				// small ratio swings more than 10% run to run on busy boxes.
			case isBatch[name]:
				// Batch pairs likewise gate on their absolute amortization
				// floor below, not on run-to-run ratio drift.
			case sp < minSpeedup*rec:
				failures = append(failures, fmt.Sprintf(
					"%s: measured speedup %.2fx regressed >10%% against recorded %.2fx", name, sp, rec))
			}
		}
		if isServe[name] {
			if cap, ok := serveOverheadCaps[name]; ok && 1/sp > cap {
				failures = append(failures, fmt.Sprintf(
					"%s: serving overhead %.2fx exceeds the %.1fx cap", name, 1/sp, cap))
			}
		}
		if isRoi[name] {
			if floor := roiFloors[name]; floor > 0 {
				note += fmt.Sprintf(" (gate: %.1fx floor)", floor)
				if sp < floor {
					failures = append(failures, fmt.Sprintf(
						"%s: region speedup %.2fx below the %.1fx floor", name, sp, floor))
				}
			}
		}
		if isBatch[name] {
			if floor := batchAmortFloors[name]; floor > 0 {
				note += fmt.Sprintf(" (gate: %.1fx floor)", floor)
				if sp < floor {
					failures = append(failures, fmt.Sprintf(
						"%s: per-item amortization %.2fx at batch 16 below the %.1fx floor", name, sp, floor))
				}
			}
		}
		if isEntropy[name] && compressGate && sp < entropyW4Floor {
			failures = append(failures, fmt.Sprintf(
				"%s: chunked decode speedup %.2fx at width 4 below the %.1fx floor on a %d-core machine", name, sp, entropyW4Floor, cores))
		}
		if isCompress[name] && compressGate && strings.HasSuffix(name, "_pack") && sp < packSpeedupFloor {
			failures = append(failures, fmt.Sprintf(
				"%s: pack speedup %.2fx at width 4 below the %.1fx floor on a %d-core machine", name, sp, packSpeedupFloor, cores))
		}
		fmt.Fprintf(out, "%-16s %12.2f %12.2f %8.2fx %s\n", name, p.before, p.after, sp, note)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}

func main() {
	deltas := flag.Bool("deltas", false, "read `go test -bench` output on stdin and print before/after kernel deltas")
	baseline := flag.String("baseline", "", "with -deltas: recorded BENCH_kernels.json to gate regressions against")
	flag.Parse()

	if *deltas {
		if err := runDeltas(os.Stdin, os.Stdout, *baseline, runtime.NumCPU()); err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		return
	}
	files := flag.Args()
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no baseline files given (usage: benchguard FILE...)")
		os.Exit(1)
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchguard:", err)
			os.Exit(1)
		}
		if err := validate(raw); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", file, err)
			os.Exit(1)
		}
		fmt.Printf("benchguard: %s ok\n", file)
	}
}
