package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// fullShard builds a valid shard-comparison baseline, optionally mutated, as
// JSON. The fixture's arithmetic is exactly consistent (items = ok + shed,
// overhead = sharded/single p50 ratio) so each mutation isolates one rule.
func fullShard(t *testing.T, mutate func(b *shardBaseline)) string {
	t.Helper()
	b := shardBaseline{
		Benchmark: "fxrzd sharded serving tier (fxrzload -shard-out)",
		Date:      "2026-08-08",
		Runner:    compressRunner{CPU: "test-cpu", Cores: 8},
		Shard: shardSummary{
			Mix:         "80:10:10",
			Batch:       8,
			Concurrency: 4,
			Runs: []shardRun{
				{Shards: 1, DurationS: 5, Items: 4000, OK: 3900, Shed: 100, ItemP50MS: 0.5, ItemP99MS: 2},
				{Shards: 2, DurationS: 5, Items: 3000, OK: 2950, Shed: 50, ItemP50MS: 0.75, ItemP99MS: 3},
			},
			OverheadP50: 1.5,
			OverheadCap: 3,
		},
	}
	if mutate != nil {
		mutate(&b)
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestValidateShardAccepts(t *testing.T) {
	if err := validate([]byte(fullShard(t, nil))); err != nil {
		t.Fatalf("valid shard baseline rejected: %v", err)
	}
	// The cap is optional: a baseline recorded without a gate still validates.
	uncapped := fullShard(t, func(b *shardBaseline) { b.Shard.OverheadCap = 0 })
	if err := validate([]byte(uncapped)); err != nil {
		t.Fatalf("uncapped shard baseline rejected: %v", err)
	}
	// A small recorder passes when it carries the qualifying note.
	small := fullShard(t, func(b *shardBaseline) {
		b.Runner.Cores = 2
		b.Runner.Note = "2-core container: absolute latencies indicative only"
	})
	if err := validate([]byte(small)); err != nil {
		t.Fatalf("noted 2-core shard baseline rejected: %v", err)
	}
	// More than two runs are legal as long as shard counts ascend from 1.
	three := fullShard(t, func(b *shardBaseline) {
		b.Shard.Runs = append(b.Shard.Runs,
			shardRun{Shards: 4, DurationS: 5, Items: 2000, OK: 2000, ItemP50MS: 1.0, ItemP99MS: 4})
		b.Shard.OverheadP50 = 2.0
	})
	if err := validate([]byte(three)); err != nil {
		t.Fatalf("three-run shard baseline rejected: %v", err)
	}
}

func TestValidateShardRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(b *shardBaseline)
		wantErr string
	}{
		{"no benchmark", func(b *shardBaseline) { b.Benchmark = "" }, `missing required field "benchmark"`},
		{"bad date", func(b *shardBaseline) { b.Date = "08/08/2026" }, "not YYYY-MM-DD"},
		{"zero cores", func(b *shardBaseline) { b.Runner.Cores = 0 }, "runner.cores must be > 0"},
		{"small runner, no note", func(b *shardBaseline) { b.Runner.Cores = 2; b.Runner.Note = "" }, "runner.note"},
		{"no mix", func(b *shardBaseline) { b.Shard.Mix = "" }, `missing required field "shard.mix"`},
		{"single-item batch", func(b *shardBaseline) { b.Shard.Batch = 1 }, "batch must be >= 2"},
		{"zero concurrency", func(b *shardBaseline) { b.Shard.Concurrency = 0 }, "concurrency must be > 0"},
		{"one run only", func(b *shardBaseline) { b.Shard.Runs = b.Shard.Runs[:1] }, "at least one sharded run"},
		{"zero shard count", func(b *shardBaseline) { b.Shard.Runs[0].Shards = 0 }, "shards must be > 0"},
		{"duplicate shard count", func(b *shardBaseline) {
			b.Shard.Runs[1] = b.Shard.Runs[0]
		}, "duplicate entry for shards=1"},
		{"descending shard counts", func(b *shardBaseline) {
			b.Shard.Runs[0].Shards, b.Shard.Runs[1].Shards = 2, 1
		}, "ascending"},
		{"zero duration", func(b *shardBaseline) { b.Shard.Runs[0].DurationS = 0 }, "duration_s must be > 0"},
		{"no items", func(b *shardBaseline) {
			b.Shard.Runs[1].Items, b.Shard.Runs[1].OK, b.Shard.Runs[1].Shed = 0, 0, 0
		}, "items must be > 0"},
		{"no successes", func(b *shardBaseline) {
			b.Shard.Runs[1].OK = 0
			b.Shard.Runs[1].Shed = 3000
		}, "ok must be > 0"},
		{"errors present", func(b *shardBaseline) {
			b.Shard.Runs[1].Errors = 3
			b.Shard.Runs[1].Shed = 47
		}, "a clean baseline has none"},
		{"counts inconsistent", func(b *shardBaseline) { b.Shard.Runs[1].Shed = 51 }, "counts inconsistent"},
		{"zero p50", func(b *shardBaseline) { b.Shard.Runs[0].ItemP50MS = 0 }, "item_p50 <= item_p99"},
		{"non-monotone percentiles", func(b *shardBaseline) { b.Shard.Runs[0].ItemP99MS = 0.1 }, "item_p50 <= item_p99"},
		{"first run sharded", func(b *shardBaseline) {
			b.Shard.Runs[0].Shards = 3
			b.Shard.Runs[1].Shards = 4
		}, "runs[0] must be the single-instance run"},
		{"zero overhead", func(b *shardBaseline) { b.Shard.OverheadP50 = 0 }, "overhead_p50 must be > 0"},
		{"overhead inconsistent", func(b *shardBaseline) { b.Shard.OverheadP50 = 2.5 }, "inconsistent with the sharded/single p50 ratio"},
		{"negative cap", func(b *shardBaseline) { b.Shard.OverheadCap = -1 }, "overhead_cap must be >= 0"},
		{"overhead over cap", func(b *shardBaseline) { b.Shard.OverheadCap = 1.2 }, "exceeds the recorded 1.20x cap"},
	}
	for _, tc := range cases {
		err := validate([]byte(fullShard(t, tc.mutate)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestValidateShardDispatch: the probe must route a "shard"-keyed baseline to
// the shard validator before any other schema gets a chance to reject it.
func TestValidateShardDispatch(t *testing.T) {
	err := validate([]byte(fullShard(t, func(b *shardBaseline) { b.Shard.Runs[1].Shed = 51 })))
	if err == nil || !strings.Contains(err.Error(), "shards=2") {
		t.Fatalf("err = %v, want a shard-schema error (dispatch went elsewhere?)", err)
	}
}

func TestRecordedShardBaselineIsValid(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_shard.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(raw); err != nil {
		t.Fatalf("BENCH_shard.json: %v", err)
	}
}
