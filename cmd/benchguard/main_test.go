package main

import (
	"os"
	"strings"
	"testing"
)

func TestRecordedBaselineIsValid(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_train.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(raw); err != nil {
		t.Errorf("recorded BENCH_train.json rejected: %v", err)
	}
}

func TestValidateRejectsMalformedBaselines(t *testing.T) {
	cases := []struct {
		name, blob, wantErr string
	}{
		{"not json", "nope", "not valid JSON"},
		{"empty object", "{}", `missing required field "benchmark"`},
		{"missing date", `{"benchmark":"B","field":"f","results":[{"workers":1,"ns_per_op":1,"sweep_s":1}]}`, `missing required field "date"`},
		{"bad date", `{"benchmark":"B","date":"05-08-2026","field":"f","results":[{"workers":1,"ns_per_op":1,"sweep_s":1}]}`, "not YYYY-MM-DD"},
		{"missing field", `{"benchmark":"B","date":"2026-08-05","results":[{"workers":1,"ns_per_op":1,"sweep_s":1}]}`, `missing required field "field"`},
		{"no results", `{"benchmark":"B","date":"2026-08-05","field":"f","results":[]}`, "results is empty"},
		{"zero workers", `{"benchmark":"B","date":"2026-08-05","field":"f","results":[{"workers":0,"ns_per_op":1,"sweep_s":1}]}`, "workers must be > 0"},
		{"duplicate workers", `{"benchmark":"B","date":"2026-08-05","field":"f","results":[{"workers":2,"ns_per_op":1,"sweep_s":1},{"workers":2,"ns_per_op":1,"sweep_s":1}]}`, "duplicate entry"},
		{"zero ns_per_op", `{"benchmark":"B","date":"2026-08-05","field":"f","results":[{"workers":1,"ns_per_op":0,"sweep_s":1}]}`, "ns_per_op must be > 0"},
		{"negative sweep", `{"benchmark":"B","date":"2026-08-05","field":"f","results":[{"workers":1,"ns_per_op":1,"sweep_s":-3}]}`, "sweep_s must be > 0"},
	}
	for _, tc := range cases {
		err := validate([]byte(tc.blob))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestValidateAcceptsMinimalBaseline(t *testing.T) {
	blob := `{
	  "benchmark": "BenchmarkTrainParallel",
	  "date": "2026-08-05",
	  "field": "nyx baryon_density",
	  "results": [
	    {"workers": 1, "ns_per_op": 3e8, "sweep_s": 0.3},
	    {"workers": 4, "ns_per_op": 1e8, "sweep_s": 0.1}
	  ]
	}`
	if err := validate([]byte(blob)); err != nil {
		t.Errorf("minimal baseline rejected: %v", err)
	}
}
