package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRecordedBaselinesAreValid(t *testing.T) {
	for _, file := range []string{"../../BENCH_train.json", "../../BENCH_kernels.json", "../../BENCH_load.json"} {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		if err := validate(raw); err != nil {
			t.Errorf("recorded %s rejected: %v", file, err)
		}
	}
}

func TestValidateRejectsMalformedBaselines(t *testing.T) {
	cases := []struct {
		name, blob, wantErr string
	}{
		{"not json", "nope", "not valid JSON"},
		{"empty object", "{}", "unknown schema"},
		{"missing benchmark", `{"results":[{"workers":1,"ns_per_op":1,"sweep_s":1}]}`, `missing required field "benchmark"`},
		{"missing date", `{"benchmark":"B","field":"f","results":[{"workers":1,"ns_per_op":1,"sweep_s":1}]}`, `missing required field "date"`},
		{"bad date", `{"benchmark":"B","date":"05-08-2026","field":"f","results":[{"workers":1,"ns_per_op":1,"sweep_s":1}]}`, "not YYYY-MM-DD"},
		{"missing field", `{"benchmark":"B","date":"2026-08-05","results":[{"workers":1,"ns_per_op":1,"sweep_s":1}]}`, `missing required field "field"`},
		{"no results", `{"benchmark":"B","date":"2026-08-05","field":"f","results":[]}`, "results is empty"},
		{"zero workers", `{"benchmark":"B","date":"2026-08-05","field":"f","results":[{"workers":0,"ns_per_op":1,"sweep_s":1}]}`, "workers must be > 0"},
		{"duplicate workers", `{"benchmark":"B","date":"2026-08-05","field":"f","results":[{"workers":2,"ns_per_op":1,"sweep_s":1},{"workers":2,"ns_per_op":1,"sweep_s":1}]}`, "duplicate entry"},
		{"zero ns_per_op", `{"benchmark":"B","date":"2026-08-05","field":"f","results":[{"workers":1,"ns_per_op":0,"sweep_s":1}]}`, "ns_per_op must be > 0"},
		{"negative sweep", `{"benchmark":"B","date":"2026-08-05","field":"f","results":[{"workers":1,"ns_per_op":1,"sweep_s":-3}]}`, "sweep_s must be > 0"},
	}
	for _, tc := range cases {
		err := validate([]byte(tc.blob))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// fullKernels builds a valid kernel baseline, optionally mutated, as JSON.
func fullKernels(t *testing.T, mutate func(map[string]*kernelResult)) string {
	t.Helper()
	ks := map[string]*kernelResult{
		"sz_quantize_3d":  {Name: "sz_quantize_3d", NsPerElemOld: 40, NsPerElemNew: 20, Speedup: 2},
		"zfp_encode_ints": {Name: "zfp_encode_ints", NsPerElemOld: 80, NsPerElemNew: 16, Speedup: 5},
		"huffman_decode":  {Name: "huffman_decode", NsPerElemOld: 6, NsPerElemNew: 4, Speedup: 1.5},
		"ca_scan":         {Name: "ca_scan", NsPerElemOld: 7.5, NsPerElemNew: 2.5, Speedup: 3},
	}
	if mutate != nil {
		mutate(ks)
	}
	b := kernelBaseline{Benchmark: "BenchmarkKernel*", Date: "2026-08-05"}
	for _, name := range []string{"sz_quantize_3d", "zfp_encode_ints", "huffman_decode", "ca_scan"} {
		if k, ok := ks[name]; ok {
			b.Kernels = append(b.Kernels, *k)
		}
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestValidateKernelBaselines(t *testing.T) {
	if err := validate([]byte(fullKernels(t, nil))); err != nil {
		t.Fatalf("valid kernel baseline rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(map[string]*kernelResult)
		wantErr string
	}{
		{"missing required kernel", func(ks map[string]*kernelResult) {
			delete(ks, "ca_scan")
		}, `missing required kernel "ca_scan"`},
		{"quantize floor", func(ks map[string]*kernelResult) {
			ks["sz_quantize_3d"].NsPerElemNew = 30
			ks["sz_quantize_3d"].Speedup = 40.0 / 30.0
		}, "below floor 1.50"},
		{"huffman floor", func(ks map[string]*kernelResult) {
			ks["huffman_decode"].NsPerElemNew = 5
			ks["huffman_decode"].Speedup = 1.2
		}, "below floor 1.30"},
		{"regression floor", func(ks map[string]*kernelResult) {
			ks["ca_scan"].NsPerElemNew = 10
			ks["ca_scan"].Speedup = 0.75
		}, "below floor 0.90"},
		{"inconsistent speedup", func(ks map[string]*kernelResult) {
			ks["ca_scan"].Speedup = 2
		}, "inconsistent with before/after ratio"},
		{"zero before", func(ks map[string]*kernelResult) {
			ks["ca_scan"].NsPerElemOld = 0
		}, "must be > 0"},
		{"missing name", func(ks map[string]*kernelResult) {
			ks["ca_scan"].Name = ""
		}, "missing name"},
	}
	for _, tc := range cases {
		err := validate([]byte(fullKernels(t, tc.mutate)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line       string
		wantKernel string
		wantRole   string
		wantNs     float64
		wantOK     bool
	}{
		{"BenchmarkKernelQuantize3D/generic-4  19  11270620 ns/op  93.04 MB/s  42.99 ns/elem",
			"sz_quantize_3d", "before", 42.99, true},
		{"BenchmarkKernelQuantize3D/fast  42  5480697 ns/op  191.32 MB/s  20.91 ns/elem",
			"sz_quantize_3d", "after", 20.91, true},
		{"BenchmarkKernelHuffmanDecode/table-1  100  2733352 ns/op  5.213 ns/elem",
			"huffman_decode", "after", 5.213, true},
		{"BenchmarkKernelEncodeInts/perplane  42411  5282 ns/op  82.53 ns/elem",
			"zfp_encode_ints", "before", 82.53, true},
		{"BenchmarkCompress-4  10  100 ns/op", "", "", 0, false},
		{"goos: linux", "", "", 0, false},
		{"BenchmarkKernelQuantize3D/fast  42  5480697 ns/op", "", "", 0, false}, // no ns/elem metric
	}
	for _, tc := range cases {
		kernel, role, ns, ok := parseBenchLine(tc.line)
		if ok != tc.wantOK || kernel != tc.wantKernel || role != tc.wantRole || ns != tc.wantNs {
			t.Errorf("parseBenchLine(%q) = (%q, %q, %v, %v), want (%q, %q, %v, %v)",
				tc.line, kernel, role, ns, ok, tc.wantKernel, tc.wantRole, tc.wantNs, tc.wantOK)
		}
	}
}

const healthyBench = `
BenchmarkKernelQuantize3D/generic  10  1 ns/op  40.0 ns/elem
BenchmarkKernelQuantize3D/fast  10  1 ns/op  19.5 ns/elem
BenchmarkKernelEncodeInts/perplane  10  1 ns/op  80.0 ns/elem
BenchmarkKernelEncodeInts/transposed  10  1 ns/op  16.5 ns/elem
BenchmarkKernelHuffmanDecode/bitwise  10  1 ns/op  6.0 ns/elem
BenchmarkKernelHuffmanDecode/table  10  1 ns/op  4.1 ns/elem
BenchmarkKernelCAScan/odometer  10  1 ns/op  7.5 ns/elem
BenchmarkKernelCAScan/fast  10  1 ns/op  2.6 ns/elem
`

func TestRunDeltasGatesRegressions(t *testing.T) {
	baseline := t.TempDir() + "/BENCH_kernels.json"
	if err := os.WriteFile(baseline, []byte(fullKernels(t, nil)), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := runDeltas(strings.NewReader(healthyBench), &sb, baseline, 8); err != nil {
		t.Fatalf("healthy run rejected: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "sz_quantize_3d") {
		t.Fatalf("delta table missing kernels:\n%s", sb.String())
	}

	// Fast path slowed to a 1.02x speedup against a recorded 1.5x → >10% off.
	regressed := strings.Replace(healthyBench,
		"BenchmarkKernelHuffmanDecode/table  10  1 ns/op  4.1 ns/elem",
		"BenchmarkKernelHuffmanDecode/table  10  1 ns/op  5.9 ns/elem", 1)
	sb.Reset()
	err := runDeltas(strings.NewReader(regressed), &sb, baseline, 8)
	if err == nil || !strings.Contains(err.Error(), "regressed >10%") {
		t.Fatalf("regressed run: err = %v, want regression failure", err)
	}

	missing := strings.Replace(healthyBench,
		"BenchmarkKernelCAScan/fast  10  1 ns/op  2.6 ns/elem", "", 1)
	sb.Reset()
	err = runDeltas(strings.NewReader(missing), &sb, baseline, 8)
	if err == nil || !strings.Contains(err.Error(), "missing after variant") {
		t.Fatalf("missing-variant run: err = %v, want missing-variant failure", err)
	}

	sb.Reset()
	if err := runDeltas(strings.NewReader("no bench lines here"), &sb, "", 8); err == nil {
		t.Fatal("empty input accepted")
	}
}
