package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// fullRoi builds a valid roi baseline, optionally mutated, as JSON.
func fullRoi(t *testing.T, mutate func(map[string]*roiEntry)) string {
	t.Helper()
	es := map[string]*roiEntry{
		"zfp_eighth": {
			Name: "zfp_eighth", Bench: "BenchmarkRegionDecode/zfp",
			NsFull: 8500000, NsRegion: 1450000, Speedup: 5.86, VolumeFrac: 0.125,
			SpeedupFloor: 4.0, IndexOverheadFrac: 0.0027, IndexOverheadCap: 0.01,
		},
		"sz_eighth": {
			Name: "sz_eighth", Bench: "BenchmarkRegionDecode/sz",
			NsFull: 20300000, NsRegion: 14800000, Speedup: 1.37, VolumeFrac: 0.125,
			SpeedupFloor: 1.0, IndexOverheadFrac: 0.0001, IndexOverheadCap: 0,
		},
	}
	if mutate != nil {
		mutate(es)
	}
	b := roiBaseline{
		Benchmark: "BenchmarkRegionDecode (repo root)",
		Date:      "2026-08-08",
		Runner:    compressRunner{CPU: "test", Cores: 1, Note: "test"},
	}
	for _, name := range []string{"zfp_eighth", "sz_eighth"} {
		if e := es[name]; e != nil {
			b.Regions = append(b.Regions, *e)
		}
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestValidateRoiBaselines(t *testing.T) {
	if err := validate([]byte(fullRoi(t, nil))); err != nil {
		t.Fatalf("valid roi baseline rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(map[string]*roiEntry)
		wantErr string
	}{
		{"missing region", func(es map[string]*roiEntry) {
			es["sz_eighth"] = nil
		}, `missing required region "sz_eighth"`},
		{"missing bench", func(es map[string]*roiEntry) {
			es["zfp_eighth"].Bench = ""
		}, "missing bench"},
		{"zero ns", func(es map[string]*roiEntry) {
			es["zfp_eighth"].NsRegion = 0
		}, "ns_full/ns_region must be > 0"},
		{"inconsistent speedup", func(es map[string]*roiEntry) {
			es["zfp_eighth"].Speedup = 9.0
		}, "inconsistent with full/region ratio"},
		{"speedup below own floor", func(es map[string]*roiEntry) {
			es["zfp_eighth"].NsRegion = 3000000
			es["zfp_eighth"].Speedup = 2.83
		}, "below the 4.0x floor"},
		{"bad volume fraction", func(es map[string]*roiEntry) {
			es["sz_eighth"].VolumeFrac = 0
		}, "volume_frac must be in (0, 1]"},
		{"overhead above cap", func(es map[string]*roiEntry) {
			es["zfp_eighth"].IndexOverheadFrac = 0.02
		}, "exceeds the 0.01 cap"},
		{"headline floor weakened", func(es map[string]*roiEntry) {
			es["zfp_eighth"].SpeedupFloor = 1.5
		}, "speedup_floor 1.50 below the required 4.0x"},
		{"headline cap removed", func(es map[string]*roiEntry) {
			es["zfp_eighth"].IndexOverheadCap = 0
		}, "index_overhead_cap 0 must be in (0, 0.01]"},
		{"headline cap loosened", func(es map[string]*roiEntry) {
			es["zfp_eighth"].IndexOverheadCap = 0.5
			es["zfp_eighth"].IndexOverheadFrac = 0.4
		}, "index_overhead_cap 0.5 must be in (0, 0.01]"},
	}
	for _, tc := range cases {
		err := validate([]byte(fullRoi(t, tc.mutate)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}

	dup := strings.Replace(fullRoi(t, nil), `"name":"sz_eighth"`, `"name":"zfp_eighth"`, 1)
	if err := validate([]byte(dup)); err == nil || !strings.Contains(err.Error(), "duplicate entry") {
		t.Errorf("duplicate region: err = %v", err)
	}
}

func TestParseRoiBenchLine(t *testing.T) {
	cases := []struct {
		line       string
		name, role string
		v          float64
		ok         bool
	}{
		{"BenchmarkRegionDecode/zfp/full-8      127   8488158 ns/op  0.0027 idx-frac", "zfp_eighth", "before", 8488158, true},
		{"BenchmarkRegionDecode/zfp/eighth-8    796   1454288 ns/op", "zfp_eighth", "after", 1454288, true},
		{"BenchmarkRegionDecode/sz/eighth        72  14830733 ns/op", "sz_eighth", "after", 14830733, true},
		{"BenchmarkRegionDecode/sz/half-8         1         1 ns/op", "", "", 0, false},
		{"BenchmarkRegionDecode/sz-8              1         1 ns/op", "", "", 0, false},
		{"BenchmarkServeUnpack/http            3074    386955 ns/op", "", "", 0, false},
		{"PASS", "", "", 0, false},
	}
	for _, tc := range cases {
		name, role, v, ok := parseRoiBenchLine(tc.line)
		if ok != tc.ok || name != tc.name || role != tc.role || v != tc.v {
			t.Errorf("parseRoiBenchLine(%q) = (%q, %q, %v, %v), want (%q, %q, %v, %v)",
				tc.line, name, role, v, ok, tc.name, tc.role, tc.v, tc.ok)
		}
	}
}

const healthyRoiBench = `
goos: linux
BenchmarkRegionDecode/zfp/full-8        127   8500000 ns/op  0.0027 idx-frac
BenchmarkRegionDecode/zfp/eighth-8      796   1450000 ns/op  0.0027 idx-frac
BenchmarkRegionDecode/sz/full-8          52  20300000 ns/op  0.0001 idx-frac
BenchmarkRegionDecode/sz/eighth-8        72  14800000 ns/op  0.0001 idx-frac
PASS
`

func TestRunDeltasRoi(t *testing.T) {
	baseline := t.TempDir() + "/BENCH_roi.json"
	if err := os.WriteFile(baseline, []byte(fullRoi(t, nil)), 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := runDeltas(strings.NewReader(healthyRoiBench), &sb, baseline, 1); err != nil {
		t.Fatalf("healthy run rejected: %v\n%s", err, sb.String())
	}
	for _, name := range []string{"zfp_eighth", "sz_eighth"} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("delta table missing %s:\n%s", name, sb.String())
		}
	}

	// The region speedup through its recorded floor fails: an eighth-volume
	// zfp decode of 3,000,000 ns is only 2.83x the full decode.
	slowed := strings.Replace(healthyRoiBench, " 1450000 ns/op", " 3000000 ns/op", 1)
	sb.Reset()
	err := runDeltas(strings.NewReader(slowed), &sb, baseline, 1)
	if err == nil || !strings.Contains(err.Error(), "below the 4.0x floor") {
		t.Fatalf("slowed run: err = %v, want floor failure", err)
	}

	// A small sz wobble (well within run-to-run noise on its ~1.4x ratio)
	// stays above the 1.0x floor and must NOT fail the gate.
	wobble := strings.Replace(healthyRoiBench, " 14800000 ns/op", " 18000000 ns/op", 1)
	sb.Reset()
	if err := runDeltas(strings.NewReader(wobble), &sb, baseline, 1); err != nil {
		t.Fatalf("sz wobble rejected: %v\n%s", err, sb.String())
	}

	// A missing eighth variant is a broken roster.
	missing := strings.Replace(healthyRoiBench, "BenchmarkRegionDecode/sz/eighth-8        72  14800000 ns/op  0.0001 idx-frac\n", "", 1)
	sb.Reset()
	err = runDeltas(strings.NewReader(missing), &sb, baseline, 1)
	if err == nil || !strings.Contains(err.Error(), "missing after variant") {
		t.Fatalf("missing-variant run: err = %v, want missing-variant failure", err)
	}
}

func TestRecordedRoiBaselineIsValid(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_roi.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(raw); err != nil {
		t.Errorf("recorded BENCH_roi.json rejected: %v", err)
	}
}
