package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// fullRoi builds a valid roi baseline, optionally mutated, as JSON.
func fullRoi(t *testing.T, mutate func(map[string]*roiEntry)) string {
	t.Helper()
	es := map[string]*roiEntry{
		"zfp_eighth": {
			Name: "zfp_eighth", Bench: "BenchmarkRegionDecode/zfp",
			NsFull: 8500000, NsRegion: 1450000, Speedup: 5.86, VolumeFrac: 0.125,
			SpeedupFloor: 4.0, IndexOverheadFrac: 0.0027, IndexOverheadCap: 0.01,
		},
		"sz_eighth": {
			Name: "sz_eighth", Bench: "BenchmarkRegionDecode/sz",
			NsFull: 20300000, NsRegion: 7000000, Speedup: 2.9, VolumeFrac: 0.125,
			SpeedupFloor: 2.5, IndexOverheadFrac: 0.0001, IndexOverheadCap: 0.01,
		},
	}
	if mutate != nil {
		mutate(es)
	}
	b := roiBaseline{
		Benchmark: "BenchmarkRegionDecode (repo root)",
		Date:      "2026-08-08",
		Runner:    compressRunner{CPU: "test", Cores: 1, Note: "test"},
	}
	for _, name := range []string{"zfp_eighth", "sz_eighth"} {
		if e := es[name]; e != nil {
			b.Regions = append(b.Regions, *e)
		}
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestValidateRoiBaselines(t *testing.T) {
	if err := validate([]byte(fullRoi(t, nil))); err != nil {
		t.Fatalf("valid roi baseline rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(map[string]*roiEntry)
		wantErr string
	}{
		{"missing region", func(es map[string]*roiEntry) {
			es["sz_eighth"] = nil
		}, `missing required region "sz_eighth"`},
		{"missing bench", func(es map[string]*roiEntry) {
			es["zfp_eighth"].Bench = ""
		}, "missing bench"},
		{"zero ns", func(es map[string]*roiEntry) {
			es["zfp_eighth"].NsRegion = 0
		}, "ns_full/ns_region must be > 0"},
		{"inconsistent speedup", func(es map[string]*roiEntry) {
			es["zfp_eighth"].Speedup = 9.0
		}, "inconsistent with full/region ratio"},
		{"speedup below own floor", func(es map[string]*roiEntry) {
			es["zfp_eighth"].NsRegion = 3000000
			es["zfp_eighth"].Speedup = 2.83
		}, "below the 4.0x floor"},
		{"bad volume fraction", func(es map[string]*roiEntry) {
			es["sz_eighth"].VolumeFrac = 0
		}, "volume_frac must be in (0, 1]"},
		{"overhead above cap", func(es map[string]*roiEntry) {
			es["zfp_eighth"].IndexOverheadFrac = 0.02
		}, "exceeds the 0.01 cap"},
		{"headline floor weakened", func(es map[string]*roiEntry) {
			es["zfp_eighth"].SpeedupFloor = 1.5
		}, "speedup_floor 1.50 below the required 4.0x"},
		{"headline cap removed", func(es map[string]*roiEntry) {
			es["zfp_eighth"].IndexOverheadCap = 0
		}, "index_overhead_cap 0 must be in (0, 0.01]"},
		{"headline cap loosened", func(es map[string]*roiEntry) {
			es["zfp_eighth"].IndexOverheadCap = 0.5
			es["zfp_eighth"].IndexOverheadFrac = 0.4
		}, "index_overhead_cap 0.5 must be in (0, 0.01]"},
		{"sz floor weakened", func(es map[string]*roiEntry) {
			es["sz_eighth"].SpeedupFloor = 1.0
		}, "sz_eighth: speedup_floor 1.00 below the required 2.5x"},
		{"sz cap removed", func(es map[string]*roiEntry) {
			es["sz_eighth"].IndexOverheadCap = 0
		}, "sz_eighth: index_overhead_cap 0 must be in (0, 0.01]"},
		{"sz speedup below own floor", func(es map[string]*roiEntry) {
			es["sz_eighth"].NsRegion = 14800000
			es["sz_eighth"].Speedup = 1.37
		}, "below the 2.5x floor"},
	}
	for _, tc := range cases {
		err := validate([]byte(fullRoi(t, tc.mutate)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}

	dup := strings.Replace(fullRoi(t, nil), `"name":"sz_eighth"`, `"name":"zfp_eighth"`, 1)
	if err := validate([]byte(dup)); err == nil || !strings.Contains(err.Error(), "duplicate entry") {
		t.Errorf("duplicate region: err = %v", err)
	}
}

func TestParseRoiBenchLine(t *testing.T) {
	cases := []struct {
		line       string
		name, role string
		v          float64
		ok         bool
	}{
		{"BenchmarkRegionDecode/zfp/full-8      127   8488158 ns/op  0.0027 idx-frac", "zfp_eighth", "before", 8488158, true},
		{"BenchmarkRegionDecode/zfp/eighth-8    796   1454288 ns/op", "zfp_eighth", "after", 1454288, true},
		{"BenchmarkRegionDecode/sz/eighth        72  14830733 ns/op", "sz_eighth", "after", 14830733, true},
		{"BenchmarkRegionDecode/sz/half-8         1         1 ns/op", "", "", 0, false},
		{"BenchmarkRegionDecode/sz-8              1         1 ns/op", "", "", 0, false},
		{"BenchmarkServeUnpack/http            3074    386955 ns/op", "", "", 0, false},
		{"PASS", "", "", 0, false},
	}
	for _, tc := range cases {
		name, role, v, ok := parseRoiBenchLine(tc.line)
		if ok != tc.ok || name != tc.name || role != tc.role || v != tc.v {
			t.Errorf("parseRoiBenchLine(%q) = (%q, %q, %v, %v), want (%q, %q, %v, %v)",
				tc.line, name, role, v, ok, tc.name, tc.role, tc.v, tc.ok)
		}
	}
}

const healthyRoiBench = `
goos: linux
BenchmarkRegionDecode/zfp/full-8        127   8500000 ns/op  0.0027 idx-frac
BenchmarkRegionDecode/zfp/eighth-8      796   1450000 ns/op  0.0027 idx-frac
BenchmarkRegionDecode/sz/full-8          52  20300000 ns/op  0.0001 idx-frac
BenchmarkRegionDecode/sz/eighth-8        72   7000000 ns/op  0.0001 idx-frac
PASS
`

func TestRunDeltasRoi(t *testing.T) {
	baseline := t.TempDir() + "/BENCH_roi.json"
	if err := os.WriteFile(baseline, []byte(fullRoi(t, nil)), 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := runDeltas(strings.NewReader(healthyRoiBench), &sb, baseline, 1); err != nil {
		t.Fatalf("healthy run rejected: %v\n%s", err, sb.String())
	}
	for _, name := range []string{"zfp_eighth", "sz_eighth"} {
		if !strings.Contains(sb.String(), name) {
			t.Fatalf("delta table missing %s:\n%s", name, sb.String())
		}
	}

	// The region speedup through its recorded floor fails: an eighth-volume
	// zfp decode of 3,000,000 ns is only 2.83x the full decode.
	slowed := strings.Replace(healthyRoiBench, " 1450000 ns/op", " 3000000 ns/op", 1)
	sb.Reset()
	err := runDeltas(strings.NewReader(slowed), &sb, baseline, 1)
	if err == nil || !strings.Contains(err.Error(), "below the 4.0x floor") {
		t.Fatalf("slowed run: err = %v, want floor failure", err)
	}

	// A small sz wobble (run-to-run noise against the recorded 2.9x) stays
	// above the 2.5x floor and must NOT fail the gate: region pairs gate on
	// their absolute floors, not on drift from the recorded ratio.
	wobble := strings.Replace(healthyRoiBench, " 7000000 ns/op", " 7800000 ns/op", 1)
	sb.Reset()
	if err := runDeltas(strings.NewReader(wobble), &sb, baseline, 1); err != nil {
		t.Fatalf("sz wobble rejected: %v\n%s", err, sb.String())
	}

	// Falling through the sz floor fails: 14,800,000 ns is only 1.37x.
	szSlow := strings.Replace(healthyRoiBench, " 7000000 ns/op", " 14800000 ns/op", 1)
	sb.Reset()
	err = runDeltas(strings.NewReader(szSlow), &sb, baseline, 1)
	if err == nil || !strings.Contains(err.Error(), "below the 2.5x floor") {
		t.Fatalf("slow sz run: err = %v, want sz floor failure", err)
	}

	// A missing eighth variant is a broken roster.
	missing := strings.Replace(healthyRoiBench, "BenchmarkRegionDecode/sz/eighth-8        72   7000000 ns/op  0.0001 idx-frac\n", "", 1)
	sb.Reset()
	err = runDeltas(strings.NewReader(missing), &sb, baseline, 1)
	if err == nil || !strings.Contains(err.Error(), "missing after variant") {
		t.Fatalf("missing-variant run: err = %v, want missing-variant failure", err)
	}
}

func TestRecordedRoiBaselineIsValid(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_roi.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(raw); err != nil {
		t.Errorf("recorded BENCH_roi.json rejected: %v", err)
	}
}
