package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// fullLoad builds a valid load baseline, optionally mutated, as JSON. The
// fixture's arithmetic is exactly consistent (totals = endpoint sums,
// shed_frac = shed/requests) so each mutation isolates one rule.
func fullLoad(t *testing.T, mutate func(b *loadBaseline)) string {
	t.Helper()
	b := loadBaseline{
		Benchmark: "fxrzd mixed-load harness (fxrzload)",
		Date:      "2026-08-08",
		Runner:    compressRunner{CPU: "test-cpu", Cores: 8},
		Load: loadSummary{
			Concurrency: 8,
			DurationS:   10,
			Mix:         "90:5:5",
			RegionFrac:  0.25,
			Requests:    1000,
			OK:          950,
			Shed:        50,
			Errors:      0,
			ShedFrac:    0.05,
			ShedCap:     0.25,
			RPS:         100,
		},
		Endpoints: []loadEntry{
			{Name: "estimate", Requests: 900, OK: 880, Shed: 20, P50MS: 1, P90MS: 2, P99MS: 4, MaxMS: 9, P99CapMS: 40},
			{Name: "unpack", Requests: 50, OK: 40, Shed: 10, P50MS: 2, P90MS: 4, P99MS: 8, MaxMS: 15, P99CapMS: 60},
			{Name: "pack", Requests: 50, OK: 30, Shed: 20, P50MS: 3, P90MS: 6, P99MS: 10, MaxMS: 20, P99CapMS: 80},
		},
	}
	if mutate != nil {
		mutate(&b)
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestValidateLoadAccepts(t *testing.T) {
	if err := validate([]byte(fullLoad(t, nil))); err != nil {
		t.Fatalf("valid load baseline rejected: %v", err)
	}
	// Caps are optional: a baseline recorded without gates still validates.
	uncapped := fullLoad(t, func(b *loadBaseline) {
		b.Load.ShedCap = 0
		for i := range b.Endpoints {
			b.Endpoints[i].P99CapMS = 0
		}
	})
	if err := validate([]byte(uncapped)); err != nil {
		t.Fatalf("uncapped load baseline rejected: %v", err)
	}
	// A small recorder passes when it carries the qualifying note.
	small := fullLoad(t, func(b *loadBaseline) {
		b.Runner.Cores = 1
		b.Runner.Note = "1-core container: absolute latencies indicative only"
	})
	if err := validate([]byte(small)); err != nil {
		t.Fatalf("noted 1-core load baseline rejected: %v", err)
	}
}

// TestValidateLoadDispatch: a load baseline also carries "endpoints", so the
// probe must route it to the load validator, not the serve one (whose schema
// would reject these entries for missing bench/overhead fields).
func TestValidateLoadDispatch(t *testing.T) {
	err := validate([]byte(fullLoad(t, func(b *loadBaseline) { b.Load.Requests = 999 })))
	if err == nil || !strings.Contains(err.Error(), "load totals inconsistent") {
		t.Fatalf("err = %v, want a load-schema error (dispatch went elsewhere?)", err)
	}
}

func TestValidateLoadRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(b *loadBaseline)
		wantErr string
	}{
		{"no benchmark", func(b *loadBaseline) { b.Benchmark = "" }, `missing required field "benchmark"`},
		{"bad date", func(b *loadBaseline) { b.Date = "08/08/2026" }, "not YYYY-MM-DD"},
		{"zero cores", func(b *loadBaseline) { b.Runner.Cores = 0 }, "runner.cores must be > 0"},
		{"small runner, no note", func(b *loadBaseline) { b.Runner.Cores = 2; b.Runner.Note = "" }, "runner.note"},
		{"zero concurrency", func(b *loadBaseline) { b.Load.Concurrency = 0 }, "concurrency must be > 0"},
		{"zero duration", func(b *loadBaseline) { b.Load.DurationS = 0 }, "duration_s must be > 0"},
		{"no mix", func(b *loadBaseline) { b.Load.Mix = "" }, `missing required field "load.mix"`},
		{"bad region frac", func(b *loadBaseline) { b.Load.RegionFrac = 1.5 }, "region_frac must be in [0, 1]"},
		{"no requests", func(b *loadBaseline) {
			b.Load.Requests, b.Load.OK, b.Load.Shed = 0, 0, 0
			b.Load.ShedFrac = 0
		}, "requests must be > 0"},
		{"no successes", func(b *loadBaseline) {
			b.Load.OK = 0
			b.Load.Shed = 1000
			b.Load.ShedFrac = 1
		}, "ok must be > 0"},
		{"errors present", func(b *loadBaseline) { b.Load.Errors = 3 }, "a clean baseline has none"},
		{"totals inconsistent", func(b *loadBaseline) { b.Load.OK = 949 }, "load totals inconsistent"},
		{"shed frac wrong", func(b *loadBaseline) { b.Load.ShedFrac = 0.5 }, "shed_frac"},
		{"shed cap out of range", func(b *loadBaseline) { b.Load.ShedCap = 2 }, "shed_cap must be in [0, 1]"},
		{"shed over cap", func(b *loadBaseline) { b.Load.ShedCap = 0.01 }, "exceeds the recorded 0.01 cap"},
		{"zero rps", func(b *loadBaseline) { b.Load.RPS = 0 }, "rps must be > 0"},
		{"unnamed endpoint", func(b *loadBaseline) { b.Endpoints[0].Name = "" }, "missing name"},
		{"duplicate endpoint", func(b *loadBaseline) { b.Endpoints[1] = b.Endpoints[0] }, "duplicate entry"},
		{"endpoint counts inconsistent", func(b *loadBaseline) { b.Endpoints[0].Shed = 21 }, "counts inconsistent"},
		{"endpoint without successes", func(b *loadBaseline) {
			b.Endpoints[2].OK = 0
			b.Endpoints[2].Shed = 50
			b.Load.OK -= 30
			b.Load.Shed += 30
			b.Load.ShedFrac = 0.08
		}, "percentiles are fiction"},
		{"zero p50", func(b *loadBaseline) { b.Endpoints[0].P50MS = 0 }, "p50 <= p90 <= p99 <= max"},
		{"non-monotone percentiles", func(b *loadBaseline) { b.Endpoints[0].P99MS = 1.5 }, "p50 <= p90 <= p99 <= max"},
		{"negative p99 cap", func(b *loadBaseline) { b.Endpoints[0].P99CapMS = -1 }, "p99_cap_ms must be >= 0"},
		{"p99 over cap", func(b *loadBaseline) { b.Endpoints[0].P99CapMS = 3 }, "exceeds the recorded 3.00ms cap"},
		{"endpoint sums drift", func(b *loadBaseline) {
			b.Endpoints[0].Requests += 10
			b.Endpoints[0].OK += 10
		}, "do not add up to the load totals"},
		{"missing required endpoint", func(b *loadBaseline) {
			b.Endpoints[2].Name = "repack"
		}, `missing required endpoint "pack"`},
	}
	for _, tc := range cases {
		err := validate([]byte(fullLoad(t, tc.mutate)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestUnknownSchemaListsKnownShapes pins the satellite requirement: the
// unrecognized-file error must name every schema benchguard knows, so a
// misspelled baseline tells the author what would have matched.
func TestUnknownSchemaListsKnownShapes(t *testing.T) {
	err := validate([]byte(`{"benchmark":"B","date":"2026-08-08","latencies":[]}`))
	if err == nil {
		t.Fatal("schema-less baseline accepted")
	}
	for _, key := range []string{"results", "kernels", "codecs", "endpoints", "regions", "load", "shard"} {
		if !strings.Contains(err.Error(), `"`+key+`"`) {
			t.Errorf("unknown-schema error does not mention %q:\n%v", key, err)
		}
	}
	for _, file := range []string{"BENCH_train.json", "BENCH_kernels.json", "BENCH_compress.json",
		"BENCH_serve.json", "BENCH_roi.json", "BENCH_load.json", "BENCH_shard.json"} {
		if !strings.Contains(err.Error(), file) {
			t.Errorf("unknown-schema error does not mention %s:\n%v", file, err)
		}
	}
}
