package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// fullEntropy builds a valid entropy baseline, optionally mutated, as JSON.
// The runner has 8 cores so the w4 floor is armed by default; runner-level
// mutations are done with string surgery on the marshalled JSON.
func fullEntropy(t *testing.T, mutate func(map[string]*entropyEntry)) string {
	t.Helper()
	es := map[string]*entropyEntry{
		"huffman_chunked": {
			Name: "huffman_chunked", Bench: "BenchmarkChunkedDecode/huffman",
			NsSerial: 9.6,
			Results: []compressResult{
				{Workers: 1, NsPerElem: 6.8},
				{Workers: 2, NsPerElem: 4.9},
				{Workers: 4, NsPerElem: 3.84},
			},
			SpeedupW4: 2.5, BlobOverheadFrac: 0.0001, BlobOverheadCap: 0.01,
		},
	}
	if mutate != nil {
		mutate(es)
	}
	b := entropyBaseline{
		Benchmark: "BenchmarkChunkedDecode (internal/entropy)",
		Date:      "2026-08-08",
		Runner:    compressRunner{CPU: "test", Cores: 8, Note: "test"},
	}
	b.Entropy = []entropyEntry{}
	if e := es["huffman_chunked"]; e != nil {
		b.Entropy = append(b.Entropy, *e)
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestValidateEntropyBaselines(t *testing.T) {
	if err := validate([]byte(fullEntropy(t, nil))); err != nil {
		t.Fatalf("valid entropy baseline rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(map[string]*entropyEntry)
		wantErr string
	}{
		{"missing entry", func(es map[string]*entropyEntry) {
			es["huffman_chunked"] = nil
		}, `missing required entropy entry "huffman_chunked"`},
		{"missing bench", func(es map[string]*entropyEntry) {
			es["huffman_chunked"].Bench = ""
		}, "missing bench"},
		{"zero serial", func(es map[string]*entropyEntry) {
			es["huffman_chunked"].NsSerial = 0
		}, "ns_serial must be > 0"},
		{"missing width", func(es map[string]*entropyEntry) {
			e := es["huffman_chunked"]
			e.Results = e.Results[:1]
		}, "missing result for workers=2"},
		{"duplicate width", func(es map[string]*entropyEntry) {
			e := es["huffman_chunked"]
			e.Results = append(e.Results, compressResult{Workers: 4, NsPerElem: 3.9})
		}, "duplicate entry for workers=4"},
		{"inconsistent speedup", func(es map[string]*entropyEntry) {
			es["huffman_chunked"].SpeedupW4 = 9.0
		}, "inconsistent with serial/w4 ratio"},
		{"width-1 overhead breach", func(es map[string]*entropyEntry) {
			// 16.0 ns at width 1 is 1.67x the 9.6 ns whole-stream decode,
			// over the 1.5x bookkeeping cap.
			es["huffman_chunked"].Results[0].NsPerElem = 16.0
		}, "width-1 chunked decode is"},
		{"negative blob overhead", func(es map[string]*entropyEntry) {
			es["huffman_chunked"].BlobOverheadFrac = -0.1
		}, "blob_overhead_frac must be >= 0"},
		{"blob cap removed", func(es map[string]*entropyEntry) {
			es["huffman_chunked"].BlobOverheadCap = 0
		}, "blob_overhead_cap 0 must be in (0, 0.01]"},
		{"blob cap loosened", func(es map[string]*entropyEntry) {
			es["huffman_chunked"].BlobOverheadCap = 0.5
			es["huffman_chunked"].BlobOverheadFrac = 0.4
		}, "blob_overhead_cap 0.5 must be in (0, 0.01]"},
		{"blob overhead above cap", func(es map[string]*entropyEntry) {
			es["huffman_chunked"].BlobOverheadFrac = 0.02
		}, "exceeds the 0.01 cap"},
		{"w4 floor on multi-core runner", func(es map[string]*entropyEntry) {
			// 6.4 ns at width 4 is only 1.5x the serial decode: under the 2x
			// floor, which is armed because the builder's runner has 8 cores.
			e := es["huffman_chunked"]
			e.Results[2].NsPerElem = 6.4
			e.SpeedupW4 = 1.5
		}, "below the 2.0x floor on a 8-core runner"},
	}
	for _, tc := range cases {
		err := validate([]byte(fullEntropy(t, tc.mutate)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}

	// A small runner must carry a note explaining the un-enforceable floor...
	small := strings.Replace(fullEntropy(t, nil), `"cores":8`, `"cores":1`, 1)
	small = strings.Replace(small, `"note":"test"`, `"note":""`, 1)
	if err := validate([]byte(small)); err == nil || !strings.Contains(err.Error(), "runner.note") {
		t.Errorf("small runner without note: err = %v", err)
	}
	// ...and with the note present, a sub-floor speedup_w4 is accepted there.
	slowSmall := fullEntropy(t, func(es map[string]*entropyEntry) {
		e := es["huffman_chunked"]
		e.Results[2].NsPerElem = 6.4
		e.SpeedupW4 = 1.5
	})
	slowSmall = strings.Replace(slowSmall, `"cores":8`, `"cores":1`, 1)
	if err := validate([]byte(slowSmall)); err != nil {
		t.Errorf("1-core runner with sub-floor w4 rejected: %v", err)
	}
}

func TestParseEntropyBenchLine(t *testing.T) {
	cases := []struct {
		line       string
		name, role string
		v          float64
		ok         bool
	}{
		{"BenchmarkChunkedDecode/huffman/serial-8    59  20286570 ns/op  103.35 MB/s  0.0001 blob-overhead-frac", "huffman_chunked", "before", 20286570, true},
		{"BenchmarkChunkedDecode/huffman/w4-8        82  14528693 ns/op", "huffman_chunked", "after", 14528693, true},
		{"BenchmarkChunkedDecode/huffman/serial      59  20286570 ns/op", "huffman_chunked", "before", 20286570, true},
		{"BenchmarkChunkedDecode/huffman/w1-8        71  14248814 ns/op", "", "", 0, false},
		{"BenchmarkChunkedDecode/huffman/w2-8        68  15215126 ns/op", "", "", 0, false},
		{"BenchmarkChunkedDecode/huffman-8            1         1 ns/op", "", "", 0, false},
		{"BenchmarkKernelUnpredict/generic-8       2048    500000 ns/op", "", "", 0, false},
		{"PASS", "", "", 0, false},
	}
	for _, tc := range cases {
		name, role, v, ok := parseEntropyBenchLine(tc.line)
		if ok != tc.ok || name != tc.name || role != tc.role || v != tc.v {
			t.Errorf("parseEntropyBenchLine(%q) = (%q, %q, %v, %v), want (%q, %q, %v, %v)",
				tc.line, name, role, v, ok, tc.name, tc.role, tc.v, tc.ok)
		}
	}
}

const healthyEntropyBench = `
goos: linux
BenchmarkChunkedDecode/huffman/serial-8    59  20000000 ns/op  0.0001 blob-overhead-frac
BenchmarkChunkedDecode/huffman/w1-8        71  14000000 ns/op  0.0001 blob-overhead-frac
BenchmarkChunkedDecode/huffman/w2-8        68  10000000 ns/op  0.0001 blob-overhead-frac
BenchmarkChunkedDecode/huffman/w4-8        82   8000000 ns/op  0.0001 blob-overhead-frac
PASS
`

func TestRunDeltasEntropy(t *testing.T) {
	baseline := t.TempDir() + "/BENCH_entropy.json"
	if err := os.WriteFile(baseline, []byte(fullEntropy(t, nil)), 0o644); err != nil {
		t.Fatal(err)
	}

	// On a multi-core box the healthy 2.5x run clears the 2x floor.
	var sb strings.Builder
	if err := runDeltas(strings.NewReader(healthyEntropyBench), &sb, baseline, 8); err != nil {
		t.Fatalf("healthy multi-core run rejected: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "huffman_chunked") {
		t.Fatalf("delta table missing huffman_chunked:\n%s", sb.String())
	}

	// A slow width-4 decode (1.82x) falls through the 2x floor there...
	slowed := strings.Replace(healthyEntropyBench, " 8000000 ns/op", " 11000000 ns/op", 1)
	sb.Reset()
	err := runDeltas(strings.NewReader(slowed), &sb, baseline, 8)
	if err == nil || !strings.Contains(err.Error(), "below the 2.0x floor") {
		t.Fatalf("slowed multi-core run: err = %v, want floor failure", err)
	}

	// ...but on a small box the wall-clock floor is informational only.
	sb.Reset()
	if err := runDeltas(strings.NewReader(slowed), &sb, baseline, 1); err != nil {
		t.Fatalf("slowed 1-core run rejected: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "not gated: <4 cores") {
		t.Fatalf("1-core delta table missing the not-gated note:\n%s", sb.String())
	}

	// A missing width-4 variant is a broken roster on any machine.
	missing := strings.Replace(healthyEntropyBench, "BenchmarkChunkedDecode/huffman/w4-8        82   8000000 ns/op  0.0001 blob-overhead-frac\n", "", 1)
	sb.Reset()
	err = runDeltas(strings.NewReader(missing), &sb, baseline, 1)
	if err == nil || !strings.Contains(err.Error(), "missing after variant") {
		t.Fatalf("missing-variant run: err = %v, want missing-variant failure", err)
	}
}

func TestRecordedEntropyBaselineIsValid(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_entropy.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(raw); err != nil {
		t.Errorf("recorded BENCH_entropy.json rejected: %v", err)
	}
}
