package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// fullCompress builds a valid compress baseline, optionally mutated, as JSON.
// Defaults model a multi-core recorder whose pack entries clear the 1.5×
// floor.
func fullCompress(t *testing.T, mutate func(b *compressBaseline)) string {
	t.Helper()
	mk := func(name string, w1, w2, w4 float64) compressEntry {
		return compressEntry{
			Name: name,
			Results: []compressResult{
				{Workers: 1, NsPerElem: w1},
				{Workers: 2, NsPerElem: w2},
				{Workers: 4, NsPerElem: w4},
			},
			SpeedupW4: w1 / w4,
		}
	}
	b := compressBaseline{
		Benchmark: "BenchmarkCompress*",
		Date:      "2026-08-05",
		Field:     "nyx baryon_density 256x256x256",
		Runner:    compressRunner{CPU: "test", Cores: 8},
		Codecs: []compressEntry{
			mk("sz_pack", 140, 80, 50),
			mk("sz_unpack", 21, 14, 10),
			mk("zfp_pack", 20, 12, 8),
			mk("zfp_unpack", 22, 14, 11),
		},
	}
	if mutate != nil {
		mutate(&b)
	}
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func TestValidateCompressBaselines(t *testing.T) {
	if err := validate([]byte(fullCompress(t, nil))); err != nil {
		t.Fatalf("valid compress baseline rejected: %v", err)
	}
	// A single-core recording passes only with an explanatory note, and is
	// exempt from the pack floor (held to the overhead cap instead).
	singleCore := func(b *compressBaseline) {
		b.Runner.Cores = 1
		b.Runner.Note = "single-core runner; floor not enforceable"
		for i := range b.Codecs {
			r := &b.Codecs[i]
			r.Results = []compressResult{
				{Workers: 1, NsPerElem: 20},
				{Workers: 2, NsPerElem: 24},
				{Workers: 4, NsPerElem: 25},
			}
			r.SpeedupW4 = 0.8
		}
	}
	if err := validate([]byte(fullCompress(t, singleCore))); err != nil {
		t.Fatalf("single-core baseline with note rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(b *compressBaseline)
		wantErr string
	}{
		{"missing field", func(b *compressBaseline) { b.Field = "" }, `missing required field "field"`},
		{"zero cores", func(b *compressBaseline) { b.Runner.Cores = 0 }, "runner.cores must be > 0"},
		{"single core without note", func(b *compressBaseline) { b.Runner.Cores = 1 }, "runner.note"},
		{"missing codec", func(b *compressBaseline) { b.Codecs = b.Codecs[:3] }, `missing required codec "zfp_unpack"`},
		{"duplicate codec", func(b *compressBaseline) { b.Codecs = append(b.Codecs, b.Codecs[0]) }, "duplicate entry"},
		{"missing width", func(b *compressBaseline) { b.Codecs[0].Results = b.Codecs[0].Results[:2] }, "missing result for workers=4"},
		{"zero ns", func(b *compressBaseline) { b.Codecs[1].Results[0].NsPerElem = 0 }, "ns_per_elem must be > 0"},
		{"inconsistent speedup", func(b *compressBaseline) { b.Codecs[0].SpeedupW4 = 9.99 }, "inconsistent with w1/w4 ratio"},
		{
			"pack floor violated on multi-core", func(b *compressBaseline) {
				b.Codecs[2].Results[2].NsPerElem = 18 // zfp_pack w4: 20/18 ≈ 1.11×
				b.Codecs[2].SpeedupW4 = 20.0 / 18
			},
			"below the 1.5x floor",
		},
		{
			"overhead cap violated", func(b *compressBaseline) {
				b.Runner.Cores = 1
				b.Runner.Note = "single-core"
				b.Codecs[3].Results[2].NsPerElem = 40 // zfp_unpack w4: 1.8× slower
				b.Codecs[3].SpeedupW4 = 22.0 / 40
			},
			"overhead cap",
		},
	}
	for _, tc := range cases {
		err := validate([]byte(fullCompress(t, tc.mutate)))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.wantErr)
		}
	}
}

const healthyCompressBench = `
BenchmarkCompressPack/sz/w1-8      1  1 ns/op  140.0 ns/elem
BenchmarkCompressPack/sz/w2-8      1  1 ns/op  80.0 ns/elem
BenchmarkCompressPack/sz/w4-8      1  1 ns/op  50.0 ns/elem
BenchmarkCompressPack/zfp/w1-8     1  1 ns/op  20.0 ns/elem
BenchmarkCompressPack/zfp/w4-8     1  1 ns/op  8.0 ns/elem
BenchmarkCompressUnpack/sz/w1-8    1  1 ns/op  21.0 ns/elem
BenchmarkCompressUnpack/sz/w4-8    1  1 ns/op  10.0 ns/elem
BenchmarkCompressUnpack/zfp/w1-8   1  1 ns/op  22.0 ns/elem
BenchmarkCompressUnpack/zfp/w4-8   1  1 ns/op  11.0 ns/elem
`

func TestRunDeltasCompress(t *testing.T) {
	baseline := t.TempDir() + "/BENCH_compress.json"
	if err := os.WriteFile(baseline, []byte(fullCompress(t, nil)), 0o644); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := runDeltas(strings.NewReader(healthyCompressBench), &sb, baseline, 8); err != nil {
		t.Fatalf("healthy multi-core run rejected: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "sz_pack") || !strings.Contains(sb.String(), "zfp_unpack") {
		t.Fatalf("delta table missing compress entries:\n%s", sb.String())
	}

	// Pack slowed to 1.1× against the floor on a multi-core machine → fail.
	slowed := strings.Replace(healthyCompressBench,
		"BenchmarkCompressPack/zfp/w4-8     1  1 ns/op  8.0 ns/elem",
		"BenchmarkCompressPack/zfp/w4-8     1  1 ns/op  18.0 ns/elem", 1)
	sb.Reset()
	err := runDeltas(strings.NewReader(slowed), &sb, baseline, 8)
	if err == nil || !strings.Contains(err.Error(), "below the 1.5x floor") {
		t.Fatalf("slowed multi-core run: err = %v, want pack-floor failure", err)
	}

	// The same slowed measurement on a single-core machine is not gated.
	sb.Reset()
	if err := runDeltas(strings.NewReader(slowed), &sb, baseline, 1); err != nil {
		t.Fatalf("single-core run gated: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "not gated") {
		t.Fatalf("single-core table missing not-gated note:\n%s", sb.String())
	}

	// A missing w4 variant fails everywhere: the benchmark roster itself must
	// stay intact even where speedups are unmeasurable.
	missing := strings.Replace(healthyCompressBench,
		"BenchmarkCompressUnpack/zfp/w4-8   1  1 ns/op  11.0 ns/elem", "", 1)
	sb.Reset()
	err = runDeltas(strings.NewReader(missing), &sb, baseline, 1)
	if err == nil || !strings.Contains(err.Error(), "missing after variant") {
		t.Fatalf("missing-variant run: err = %v, want missing-variant failure", err)
	}
}

func TestRecordedCompressBaselineIsValid(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_compress.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(raw); err != nil {
		t.Errorf("recorded BENCH_compress.json rejected: %v", err)
	}
}
