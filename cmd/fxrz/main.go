// Command fxrz is the command-line front end of the FXRZ framework: it
// generates synthetic scientific datasets, trains a fixed-ratio model, and
// compresses/decompresses fields toward a target compression ratio.
//
// Fields on disk use a tiny self-describing container: the header line
// "fxrzfield <name> <d0> [d1 ...]\n" followed by little-endian float32s.
//
//	fxrz gen   -app nyx -field baryon_density -config 1 -ts 1 -size 48 -o baryon.f32
//	fxrz est   -c sz -target 100 -train a.f32,b.f32 -in test.f32
//	fxrz pack  -c sz -target 100 -train a.f32,b.f32 -in test.f32 -o test.szc -index
//	fxrz unpack -in test.szc -o restored.f32
//	fxrz unpack -in test.szc -o slab.f32 -region 0:16,32:64,32:64
//	fxrz fraz  -c sz -target 100 -iters 15 -in test.f32
package main

import (
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux (-pprof flag)
	"os"
	"strings"
	"time"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/archive"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/fieldio"
	"github.com/fxrz-go/fxrz/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "est":
		err = cmdEstimate(os.Args[2:], false)
	case "pack":
		err = cmdEstimate(os.Args[2:], true)
	case "unpack":
		err = cmdUnpack(os.Args[2:])
	case "fraz":
		err = cmdFRaZ(os.Args[2:])
	case "features":
		err = cmdFeatures(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "archive":
		err = cmdArchive(os.Args[2:])
	case "extract":
		err = cmdExtract(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fxrz:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fxrz <gen|train|est|pack|unpack|fraz|features> [flags]
  gen       generate a synthetic scientific field
  train     train a fixed-ratio model and save it to disk
  est       estimate the error-bound setting for a target ratio
  pack      estimate and compress toward a target ratio
  unpack    decompress a stream produced by pack
  fraz      run the FRaZ baseline search for comparison
  features  print the FXRZ data features of a field
  bench     measure codec throughput and ratio on a field
  archive   compress many fields toward a target ratio into one archive
  extract   list or extract members of an archive`)
}

// obsOpts carries the observability flags shared by the heavy subcommands.
type obsOpts struct {
	jsonPath  string
	pprofAddr string
}

// addObsFlags registers -obs-json and -pprof on a subcommand's flag set.
func addObsFlags(fs *flag.FlagSet) *obsOpts {
	o := &obsOpts{}
	fs.StringVar(&o.jsonPath, "obs-json", "", "write an observability snapshot (JSON) to this file on exit")
	fs.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	return o
}

// start enables recording when either flag was given and brings up the
// pprof/expvar endpoint. With neither flag the no-op recorder stays
// installed and the run pays nothing for the instrumentation.
func (o *obsOpts) start() error {
	if o.jsonPath == "" && o.pprofAddr == "" {
		return nil
	}
	obs.Enable()
	obs.Publish()
	if o.pprofAddr != "" {
		ln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		fmt.Fprintf(os.Stderr, "serving pprof on http://%s/debug/pprof/ and expvar on /debug/vars\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}
	return nil
}

// finish dumps the snapshot the -obs-json flag asked for.
func (o *obsOpts) finish() error {
	if o.jsonPath == "" {
		return nil
	}
	if err := obs.TakeSnapshot().WriteJSONFile(o.jsonPath); err != nil {
		return fmt.Errorf("obs-json: %w", err)
	}
	return nil
}

// checkParallelism rejects negative worker-pool sizes at flag-parse time:
// pool.Workers would silently treat them as "all cores", which is never what
// a negative value meant.
func checkParallelism(cmd string, p int) error {
	if p < 0 {
		return fmt.Errorf("%s: -parallelism must be >= 0 (0 = all cores, 1 = serial), got %d", cmd, p)
	}
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	app := fs.String("app", "nyx", "nyx | hurricane | qmcpack | rtm")
	field := fs.String("field", "baryon_density", "field name (app-specific)")
	config := fs.Int("config", 1, "simulation configuration")
	ts := fs.Int("ts", 1, "time step")
	size := fs.Int("size", 48, "base edge size")
	spin := fs.Int("spin", 0, "qmcpack spin channel")
	out := fs.String("o", "", "output path (required)")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -o is required")
	}
	var f *fxrz.Field
	var err error
	switch *app {
	case "nyx":
		f, err = datagen.NyxField(*field, *config, *ts, *size)
	case "hurricane":
		f, err = datagen.HurricaneField(*field, *ts, *size)
	case "qmcpack":
		f, err = datagen.QMCPackField(*config, *spin, *size)
	case "rtm":
		var snaps []*fxrz.Field
		snaps, err = datagen.RTMSnapshots(*field, []int{*ts}, *size) // field: small|big
		if err == nil {
			f = snaps[0]
		}
	default:
		return fmt.Errorf("gen: unknown app %q", *app)
	}
	if err != nil {
		return err
	}
	if err := writeField(*out, f); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %v (%d samples, %.1f MB)\n", *out, f.Dims, f.Size(), float64(f.Bytes())/1e6)
	return nil
}

func loadTraining(list string) ([]*fxrz.Field, error) {
	if list == "" {
		return nil, fmt.Errorf("-train is required (comma-separated field files)")
	}
	var out []*fxrz.Field
	for _, p := range strings.Split(list, ",") {
		f, err := readField(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// cmdTrain trains a framework and saves the model for later est/pack runs.
func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	cname := fs.String("c", "sz", "compressor: sz | sz2 | zfp | zfp-rate | fpzip | mgard")
	train := fs.String("train", "", "comma-separated training field files (required)")
	out := fs.String("o", "", "output model path (required)")
	stationary := fs.Int("stationary", 25, "stationary points per training field")
	parallelism := fs.Int("parallelism", 0, "worker pool size (0 = all cores, 1 = serial)")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := checkParallelism("train", *parallelism); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("train: -o is required")
	}
	if err := obsf.start(); err != nil {
		return err
	}
	c, err := fxrz.ByName(*cname)
	if err != nil {
		return err
	}
	fields, err := loadTraining(*train)
	if err != nil {
		return err
	}
	cfg := fxrz.DefaultConfig()
	cfg.StationaryPoints = *stationary
	cfg.Parallelism = *parallelism
	fw, err := fxrz.Train(c, fields, cfg)
	if err != nil {
		return err
	}
	w, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer w.Close()
	if err := fw.Save(w); err != nil {
		return err
	}
	st := fw.Stats()
	fmt.Printf("trained %s model on %d fields in %v (%d samples) -> %s\n",
		*cname, st.FieldsTrained, st.Total().Round(1e6), st.Samples, *out)
	return obsf.finish()
}

func cmdEstimate(args []string, pack bool) error {
	name := "est"
	if pack {
		name = "pack"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	cname := fs.String("c", "sz", "compressor: sz | sz2 | zfp | zfp-rate | fpzip | mgard")
	target := fs.Float64("target", 0, "target compression ratio (required)")
	train := fs.String("train", "", "comma-separated training field files")
	model := fs.String("model", "", "trained model file (alternative to -train)")
	in := fs.String("in", "", "input field file (required)")
	out := fs.String("o", "", "output stream path (pack only)")
	index := fs.Bool("index", false, "wrap the stream with a region-decode index (pack only; enables fast unpack -region)")
	stationary := fs.Int("stationary", 25, "stationary points per training field")
	parallelism := fs.Int("parallelism", 0, "worker pool size (0 = all cores, 1 = serial)")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := checkParallelism(name, *parallelism); err != nil {
		return err
	}
	if *target <= 0 || *in == "" {
		return fmt.Errorf("%s: -target and -in are required", name)
	}
	if err := obsf.start(); err != nil {
		return err
	}
	f, err := readField(*in)
	if err != nil {
		return err
	}
	var fw *fxrz.Framework
	if *model != "" {
		r, err := os.Open(*model)
		if err != nil {
			return err
		}
		fw, err = fxrz.Load(r)
		r.Close()
		if err != nil {
			return err
		}
		fw = fw.WithParallelism(*parallelism)
		fmt.Printf("loaded %s model from %s\n", fw.Compressor().Name(), *model)
	} else {
		c, err := fxrz.ByName(*cname)
		if err != nil {
			return err
		}
		fields, err := loadTraining(*train)
		if err != nil {
			return err
		}
		cfg := fxrz.DefaultConfig()
		cfg.StationaryPoints = *stationary
		cfg.Parallelism = *parallelism
		fw, err = fxrz.Train(c, fields, cfg)
		if err != nil {
			return err
		}
		st := fw.Stats()
		fmt.Printf("trained on %d fields in %v (%d samples; sweep %v)\n",
			st.FieldsTrained, st.Total().Round(1e6), st.Samples, st.StationarySweep.Round(1e6))
	}
	lo, hi := fw.ValidRatioRange(f)
	fmt.Printf("valid target-ratio range for %s: [%.1f, %.1f]\n", f.Name, lo, hi)

	if !pack {
		est, err := fw.EstimateConfig(f, *target)
		if err != nil {
			return err
		}
		fmt.Printf("estimated knob: %g (analysis %v, ACR %.2f, R %.3f, extrapolating=%v)\n",
			est.Knob, est.AnalysisTime().Round(1e3), est.AdjustedRatio, est.NonConstantR, est.Extrapolating)
		return obsf.finish()
	}
	if *out == "" {
		return fmt.Errorf("pack: -o is required")
	}
	blob, est, err := fw.CompressToRatio(f, *target)
	if err != nil {
		return err
	}
	if *index {
		if blob, err = fxrz.IndexBlob(blob); err != nil {
			return err
		}
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	mcr := fxrz.Ratio(f, blob)
	fmt.Printf("packed %s -> %s: knob %g, target %.1f, achieved %.1f (err %.1f%%)\n",
		*in, *out, est.Knob, *target, mcr, 100*math.Abs(mcr-*target)/(*target))
	return obsf.finish()
}

func cmdUnpack(args []string) error {
	fs := flag.NewFlagSet("unpack", flag.ExitOnError)
	in := fs.String("in", "", "input stream (required)")
	out := fs.String("o", "", "output field file (required)")
	region := fs.String("region", "", "decode only this subvolume, as half-open ranges lo0:hi0,lo1:hi1,... (slowest dim first)")
	parallelism := fs.Int("parallelism", 0, "worker pool size (0 = all cores, 1 = serial)")
	fs.Parse(args)
	if err := checkParallelism("unpack", *parallelism); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("unpack: -in and -o are required")
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var f *fxrz.Field
	if *region != "" {
		lo, hi, err := fxrz.ParseRegion(*region)
		if err != nil {
			return fmt.Errorf("unpack: %w", err)
		}
		f, err = fxrz.DecompressRegionParallel(blob, lo, hi, *parallelism)
		if err != nil {
			return fmt.Errorf("unpack: region %s: %w", *region, err)
		}
		if err := writeField(*out, f); err != nil {
			return err
		}
		fmt.Printf("unpacked %s [%s] -> %s: %v\n", *in, *region, *out, f.Dims)
		return nil
	}
	f, err = fxrz.DecompressParallel(blob, *parallelism)
	if err != nil {
		return err
	}
	if err := writeField(*out, f); err != nil {
		return err
	}
	fmt.Printf("unpacked %s -> %s: %v\n", *in, *out, f.Dims)
	return nil
}

func cmdFRaZ(args []string) error {
	fs := flag.NewFlagSet("fraz", flag.ExitOnError)
	cname := fs.String("c", "sz", "compressor")
	target := fs.Float64("target", 0, "target ratio (required)")
	iters := fs.Int("iters", 15, "max iterations per bin")
	in := fs.String("in", "", "input field file (required)")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if *target <= 0 || *in == "" {
		return fmt.Errorf("fraz: -target and -in are required")
	}
	if err := obsf.start(); err != nil {
		return err
	}
	c, err := fxrz.ByName(*cname)
	if err != nil {
		return err
	}
	f, err := readField(*in)
	if err != nil {
		return err
	}
	res, err := fxrz.SearchFRaZ(c, f, *target, fxrz.DefaultFRaZConfig(*iters))
	if err != nil {
		return err
	}
	fmt.Printf("FRaZ: knob %g achieves %.1f (target %.1f) after %d compressor runs in %v\n",
		res.Knob, res.AchievedRatio, *target, res.CompressorRuns, res.SearchTime.Round(1e6))
	return obsf.finish()
}

func cmdFeatures(args []string) error {
	fs := flag.NewFlagSet("features", flag.ExitOnError)
	in := fs.String("in", "", "input field file (required)")
	stride := fs.Int("stride", 4, "sampling stride")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("features: -in is required")
	}
	if err := obsf.start(); err != nil {
		return err
	}
	f, err := readField(*in)
	if err != nil {
		return err
	}
	ft := fxrz.ExtractFeatures(f, *stride)
	fmt.Printf("%s %v (stride %d)\n", f.Name, f.Dims, *stride)
	fmt.Printf("  ValueRange   %g\n  MeanValue    %g\n  MND          %g\n  MLD          %g\n  MSD          %g\n",
		ft.ValueRange, ft.MeanValue, ft.MND, ft.MLD, ft.MSD)
	fmt.Printf("  gradients    mean %g  min %g  max %g\n", ft.MeanGradient, ft.MinGradient, ft.MaxGradient)
	return obsf.finish()
}

// writeField stores a field in the fxrzfield container format.
func writeField(path string, f *fxrz.Field) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fieldio.Write(w, f); err != nil {
		w.Close()
		return fmt.Errorf("%s: %w", path, err)
	}
	return w.Close()
}

// readField loads a field from the fxrzfield container format.
func readField(path string) (*fxrz.Field, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	f, err := fieldio.Read(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// cmdArchive compresses a set of fields toward one target ratio into a
// single random-access archive, using a saved model.
func cmdArchive(args []string) error {
	fs := flag.NewFlagSet("archive", flag.ExitOnError)
	model := fs.String("model", "", "trained model file (required)")
	target := fs.Float64("target", 0, "campaign target compression ratio (required)")
	in := fs.String("in", "", "comma-separated field files (required)")
	out := fs.String("o", "", "output archive path (required)")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if *model == "" || *target <= 0 || *in == "" || *out == "" {
		return fmt.Errorf("archive: -model, -target, -in and -o are required")
	}
	if err := obsf.start(); err != nil {
		return err
	}
	mr, err := os.Open(*model)
	if err != nil {
		return err
	}
	fw, err := fxrz.Load(mr)
	mr.Close()
	if err != nil {
		return err
	}
	w, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer w.Close()
	aw, err := archive.NewWriter(w)
	if err != nil {
		return err
	}
	var raw, packed int64
	for _, path := range strings.Split(*in, ",") {
		f, err := readField(strings.TrimSpace(path))
		if err != nil {
			return err
		}
		lo, hi := fw.ValidRatioRange(f)
		t := *target
		if t < lo {
			t = lo
		}
		if t > hi {
			t = hi
		}
		blob, est, err := fw.CompressToRatio(f, t)
		if err != nil {
			return err
		}
		if err := aw.Add(f.Name, blob, int64(f.Bytes())); err != nil {
			return err
		}
		raw += int64(f.Bytes())
		packed += int64(len(blob))
		fmt.Printf("  %-36s target %6.1f  knob %9.3g  %8d B\n", f.Name, t, est.Knob, len(blob))
	}
	if err := aw.Close(); err != nil {
		return err
	}
	fmt.Printf("archived %.2f MB into %.2f MB (overall ratio %.1f) -> %s\n",
		float64(raw)/1e6, float64(packed)/1e6, float64(raw)/float64(packed), *out)
	return obsf.finish()
}

// cmdExtract lists or extracts archive members.
func cmdExtract(args []string) error {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	in := fs.String("in", "", "archive path (required)")
	name := fs.String("name", "", "member to extract (omit to list)")
	out := fs.String("o", "", "output field file (required with -name)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("extract: -in is required")
	}
	r, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer r.Close()
	st, err := r.Stat()
	if err != nil {
		return err
	}
	ar, err := archive.OpenReader(r, st.Size())
	if err != nil {
		return err
	}
	if *name == "" {
		for _, e := range ar.List() {
			fmt.Printf("%-40s %10d B  ratio %6.1f\n", e.Name, e.Size, e.Ratio())
		}
		return nil
	}
	if *out == "" {
		return fmt.Errorf("extract: -o is required with -name")
	}
	f, err := ar.Field(*name)
	if err != nil {
		return err
	}
	if err := writeField(*out, f); err != nil {
		return err
	}
	fmt.Printf("extracted %s -> %s %v\n", *name, *out, f.Dims)
	return nil
}

// cmdBench measures compression/decompression throughput and the achieved
// ratio of each codec on a field at a relative error bound.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	in := fs.String("in", "", "input field file (required)")
	rel := fs.Float64("rel", 1e-3, "error bound relative to the field's value range")
	parallelism := fs.Int("parallelism", 0, "worker pool size (0 = all cores, 1 = serial)")
	obsf := addObsFlags(fs)
	fs.Parse(args)
	if err := checkParallelism("bench", *parallelism); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("bench: -in is required")
	}
	if err := obsf.start(); err != nil {
		return err
	}
	f, err := readField(*in)
	if err != nil {
		return err
	}
	vr := f.ValueRange()
	fmt.Printf("%s %v (%.1f MB), bound = %g x range\n", f.Name, f.Dims, float64(f.Bytes())/1e6, *rel)
	for _, name := range []string{"sz", "sz2", "zfp", "mgard", "fpzip"} {
		c, err := fxrz.ByName(name)
		if err != nil {
			return err
		}
		c = fxrz.WithParallelism(c, *parallelism)
		knob := *rel * vr
		if name == "fpzip" {
			knob = 16
		}
		t0 := time.Now()
		blob, err := c.Compress(f, knob)
		if err != nil {
			return err
		}
		ct := time.Since(t0)
		t1 := time.Now()
		if _, err := c.Decompress(blob); err != nil {
			return err
		}
		dt := time.Since(t1)
		mbs := func(d time.Duration) float64 { return float64(f.Bytes()) / 1e6 / d.Seconds() }
		fmt.Printf("  %-6s ratio %8.2f   compress %7.1f MB/s   decompress %7.1f MB/s\n",
			name, fxrz.Ratio(f, blob), mbs(ct), mbs(dt))
	}
	return obsf.finish()
}
