package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/obs"
)

func TestFieldFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.f32")
	f, err := fxrz.NewField("nyx/test field", 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		f.Data[i] = float32(math.Sin(float64(i)))
	}
	if err := writeField(path, f); err != nil {
		t.Fatal(err)
	}
	g, err := readField(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "nyx/test_field" { // spaces are sanitised in the header
		t.Errorf("name = %q", g.Name)
	}
	if len(g.Dims) != 3 || g.Dims[0] != 3 || g.Dims[2] != 5 {
		t.Errorf("dims = %v", g.Dims)
	}
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatalf("value %d: %v vs %v", i, f.Data[i], g.Data[i])
		}
	}
}

func TestReadFieldRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := writeBytes(p, []byte(content)); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := readField(filepath.Join(dir, "missing.f32")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := readField(write("bad.f32", "not a field\n")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := readField(write("short.f32", "fxrzfield x 4 4\nshort")); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := readField(write("dims.f32", "fxrzfield x 4 nope\n")); err == nil {
		t.Error("non-numeric dim accepted")
	}
}

func writeBytes(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

// TestNegativeParallelismRejected pins the flag-validation fix: pool.Workers
// treats any non-positive value as "all cores", so a negative -parallelism
// must be rejected at flag-parse time instead of silently maxing out.
func TestNegativeParallelismRejected(t *testing.T) {
	if err := cmdTrain([]string{"-parallelism", "-2"}); err == nil || !strings.Contains(err.Error(), "-parallelism must be >= 0") {
		t.Errorf("train: err = %v, want -parallelism validation error", err)
	}
	for _, pack := range []bool{false, true} {
		err := cmdEstimate([]string{"-parallelism", "-1"}, pack)
		if err == nil || !strings.Contains(err.Error(), "-parallelism must be >= 0") {
			t.Errorf("est(pack=%v): err = %v, want -parallelism validation error", pack, err)
		}
	}
	if err := checkParallelism("x", 0); err != nil {
		t.Errorf("parallelism 0 rejected: %v", err)
	}
	if err := checkParallelism("x", 4); err != nil {
		t.Errorf("parallelism 4 rejected: %v", err)
	}
}

// TestUnpackRegion drives `fxrz unpack -region` end to end: pack a field
// directly (no model needed — a raw codec stream), index it, and check the
// regioned unpack writes exactly the requested slab of the full unpack.
func TestUnpackRegion(t *testing.T) {
	dir := t.TempDir()
	f, err := fxrz.NewField("slab", 12, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		f.Data[i] = float32(math.Sin(float64(i) * 0.05))
	}
	blob, err := fxrz.NewZFP().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := fxrz.IndexBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	stream := filepath.Join(dir, "slab.zfpc")
	if err := writeBytes(stream, indexed); err != nil {
		t.Fatal(err)
	}
	fullOut := filepath.Join(dir, "full.f32")
	if err := cmdUnpack([]string{"-in", stream, "-o", fullOut}); err != nil {
		t.Fatal(err)
	}
	regionOut := filepath.Join(dir, "region.f32")
	if err := cmdUnpack([]string{"-in", stream, "-o", regionOut, "-region", "2:9,3:10,1:7", "-parallelism", "1"}); err != nil {
		t.Fatal(err)
	}
	full, err := readField(fullOut)
	if err != nil {
		t.Fatal(err)
	}
	region, err := readField(regionOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(region.Dims) != 3 || region.Dims[0] != 7 || region.Dims[1] != 7 || region.Dims[2] != 6 {
		t.Fatalf("region dims = %v, want [7 7 6]", region.Dims)
	}
	for z := 0; z < 7; z++ {
		for y := 0; y < 7; y++ {
			for x := 0; x < 6; x++ {
				want := full.At(z+2, y+3, x+1)
				got := region.At(z, y, x)
				if math.Float32bits(want) != math.Float32bits(got) {
					t.Fatalf("region (%d,%d,%d) = %x, want %x", z, y, x,
						math.Float32bits(got), math.Float32bits(want))
				}
			}
		}
	}

	// Bad inputs surface as errors, not panics or silent full decodes.
	if err := cmdUnpack([]string{"-in", stream, "-o", regionOut, "-region", "0:5"}); err == nil {
		t.Error("rank-mismatched -region accepted")
	}
	if err := cmdUnpack([]string{"-in", stream, "-o", regionOut, "-region", "0:99,0:1,0:1"}); err == nil {
		t.Error("out-of-bounds -region accepted")
	}
	if err := cmdUnpack([]string{"-in", stream, "-o", regionOut, "-region", "garbage"}); err == nil {
		t.Error("malformed -region accepted")
	}
}

// TestTrainObsJSONSnapshot drives `fxrz train -obs-json` end to end on a
// small synthetic suite and checks the snapshot carries the per-stage span
// timings and compressor run counts the README documents.
func TestTrainObsJSONSnapshot(t *testing.T) {
	defer obs.Disable() // -obs-json enables the process-global recorder
	dir := t.TempDir()
	var train []string
	for fi, phase := range []float64{3, 8} {
		f, err := fxrz.NewField(fmt.Sprintf("train-%d", fi), 16, 16, 16)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f.Data {
			f.Data[i] = float32(math.Sin(phase * float64(i) / 100))
		}
		p := filepath.Join(dir, f.Name+".f32")
		if err := writeField(p, f); err != nil {
			t.Fatal(err)
		}
		train = append(train, p)
	}
	model := filepath.Join(dir, "model.fxrz")
	snap := filepath.Join(dir, "obs.json")
	err := cmdTrain([]string{
		"-train", strings.Join(train, ","),
		"-o", model,
		"-stationary", "4",
		"-obs-json", snap,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var got obs.Snapshot
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	for _, span := range []string{"train/total", "train/sweep", "train/analysis", "features/extract", "ca/scan"} {
		if got.Spans[span].Count == 0 {
			t.Errorf("snapshot missing span %q", span)
		}
	}
	if got.Counters["compressor_runs/sz"] < 8 { // 2 fields x 4 stationary points
		t.Errorf("compressor_runs/sz = %d, want >= 8", got.Counters["compressor_runs/sz"])
	}
	if got.Counters["train/fields"] != 2 {
		t.Errorf("train/fields = %d, want 2", got.Counters["train/fields"])
	}
}
