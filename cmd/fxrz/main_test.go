package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
)

func TestFieldFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.f32")
	f, err := fxrz.NewField("nyx/test field", 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		f.Data[i] = float32(math.Sin(float64(i)))
	}
	if err := writeField(path, f); err != nil {
		t.Fatal(err)
	}
	g, err := readField(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "nyx/test_field" { // spaces are sanitised in the header
		t.Errorf("name = %q", g.Name)
	}
	if len(g.Dims) != 3 || g.Dims[0] != 3 || g.Dims[2] != 5 {
		t.Errorf("dims = %v", g.Dims)
	}
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatalf("value %d: %v vs %v", i, f.Data[i], g.Data[i])
		}
	}
}

func TestReadFieldRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := writeBytes(p, []byte(content)); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := readField(filepath.Join(dir, "missing.f32")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := readField(write("bad.f32", "not a field\n")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := readField(write("short.f32", "fxrzfield x 4 4\nshort")); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := readField(write("dims.f32", "fxrzfield x 4 nope\n")); err == nil {
		t.Error("non-numeric dim accepted")
	}
}

func writeBytes(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
