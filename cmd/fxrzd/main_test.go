package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	dir := t.TempDir()
	o, err := parseFlags([]string{"-models", dir})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":8080" {
		t.Errorf("addr = %q", o.addr)
	}
	if o.cfg.ModelsDir != dir {
		t.Errorf("models dir = %q", o.cfg.ModelsDir)
	}
	if o.cfg.CacheSize != 8 || o.cfg.MaxBodyBytes != 256<<20 || o.cfg.Timeout != 60*time.Second {
		t.Errorf("defaults = %+v", o.cfg)
	}
	if o.drain != 30*time.Second {
		t.Errorf("drain = %v", o.drain)
	}
	if o.cfg.RatePerClient != 0 || o.cfg.RateBurst != 0 {
		t.Errorf("rate limiting on by default: rate=%g burst=%d", o.cfg.RatePerClient, o.cfg.RateBurst)
	}
	if o.cfg.MaxBatch != 64 {
		t.Errorf("max-batch default = %d, want 64", o.cfg.MaxBatch)
	}
}

func TestParseFlagsMaxBatch(t *testing.T) {
	o, err := parseFlags([]string{"-models", t.TempDir(), "-max-batch", "8"})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.MaxBatch != 8 {
		t.Errorf("max-batch = %d, want 8", o.cfg.MaxBatch)
	}
}

func TestParseFlagsRate(t *testing.T) {
	o, err := parseFlags([]string{"-models", t.TempDir(), "-rate", "12.5", "-rate-burst", "25"})
	if err != nil {
		t.Fatal(err)
	}
	if o.cfg.RatePerClient != 12.5 || o.cfg.RateBurst != 25 {
		t.Errorf("rate config = %g/%d, want 12.5/25", o.cfg.RatePerClient, o.cfg.RateBurst)
	}
}

func TestParseFlagsRejections(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]string{
		"missing models":       {},
		"models not a dir":     {"-models", dir + "/nope"},
		"negative parallelism": {"-models", dir, "-parallelism", "-1"},
		"negative inflight":    {"-models", dir, "-max-inflight", "-2"},
		"zero body cap":        {"-models", dir, "-max-body", "0"},
		"zero timeout":         {"-models", dir, "-timeout", "0s"},
		"zero drain":           {"-models", dir, "-drain", "0s"},
		"negative rate":        {"-models", dir, "-rate", "-1"},
		"negative rate burst":  {"-models", dir, "-rate-burst", "-3"},
		"zero max-batch":       {"-models", dir, "-max-batch", "0"},
		"peers without self":   {"-models", dir, "-peers", "http://a:1,http://b:2"},
		"self without peers":   {"-models", dir, "-self", "http://a:1"},
		"self not in peers":    {"-models", dir, "-peers", "http://a:1,http://b:2", "-self", "http://c:3"},
		"relative peer url":    {"-models", dir, "-peers", "a:1,http://b:2", "-self", "http://b:2"},
		"non-http peer url":    {"-models", dir, "-peers", "ftp://a:1,http://b:2", "-self", "http://b:2"},
		"duplicate peer":       {"-models", dir, "-peers", "http://a:1,http://a:1", "-self", "http://a:1"},
	}
	for name, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseFlagsShardRing(t *testing.T) {
	dir := t.TempDir()
	o, err := parseFlags([]string{"-models", dir,
		"-peers", "http://10.0.0.1:8080, http://10.0.0.2:8080", "-self", "http://10.0.0.2:8080"})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.cfg.Peers) != 2 || o.cfg.Peers[0] != "http://10.0.0.1:8080" || o.cfg.Peers[1] != "http://10.0.0.2:8080" {
		t.Errorf("peers = %v (whitespace around commas must be trimmed)", o.cfg.Peers)
	}
	if o.cfg.Self != "http://10.0.0.2:8080" {
		t.Errorf("self = %q", o.cfg.Self)
	}
}

func TestParseFlagsParallelismMessage(t *testing.T) {
	// The rejection must explain the knob the way the other commands do.
	_, err := parseFlags([]string{"-models", t.TempDir(), "-parallelism", "-3"})
	if err == nil || !strings.Contains(err.Error(), "0 = all cores") {
		t.Fatalf("err = %v", err)
	}
}
