// Command fxrzd is the FXRZ serving daemon: a long-lived HTTP server that
// answers fixed-ratio questions online. It serves trained models from a
// directory of .fxm files (produced by `fxrz train -o models/<id>.fxm`)
// through a bounded LRU cache, and exposes:
//
//	POST /v1/estimate?model=ID&target=N   features (JSON) or field sample -> knob
//	POST /v1/pack?model=ID&target=N       fxrzfield container -> compressed stream
//	POST /v1/unpack                       compressed stream -> fxrzfield container
//	POST /v1/estimate-many, /v1/pack-many, /v1/unpack-many
//	                                      batch containers: many items, one
//	                                      admission ticket, per-item statuses
//	GET  /v1/models                       model inventory
//	GET  /healthz                         liveness + admission state
//	GET  /metrics                         obs snapshot (per-endpoint p50/p90/p99)
//
// Admission control splits the in-flight slots into QoS priority classes
// (estimate > unpack > pack, each with a guaranteed share plus
// work-conserving borrowing) so cheap estimates never starve behind packs;
// excess load is shed with 429. Optional per-client rate limiting (-rate,
// keyed by X-Fxrz-Client or the remote address) sheds over-budget clients
// with 429 and a Retry-After computed from their token-bucket refill.
// Request bodies are capped (413) and stuck requests time out (503).
// SIGINT/SIGTERM drain in-flight requests before exit.
//
//	fxrzd -models ./models -addr :8080 -parallelism 0 -rate 50
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux (-pprof flag)
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/serve"
	"github.com/fxrz-go/fxrz/internal/shard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fxrzd:", err)
		os.Exit(1)
	}
}

// options is the parsed flag set.
type options struct {
	addr      string
	cfg       serve.Config
	obsJSON   string
	pprofAddr string
	drain     time.Duration
}

// parseFlags validates the command line into options.
func parseFlags(args []string) (options, error) {
	var o options
	var peers string
	fs := flag.NewFlagSet("fxrzd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", ":8080", "listen address")
	fs.StringVar(&o.cfg.ModelsDir, "models", "", "directory of .fxm model files (required)")
	fs.IntVar(&o.cfg.CacheSize, "cache", 8, "max resident models in the registry")
	fs.IntVar(&o.cfg.MaxInFlight, "max-inflight", 0, "max concurrently admitted heavy requests (0 = worker budget)")
	fs.Int64Var(&o.cfg.MaxBodyBytes, "max-body", 256<<20, "request body cap in bytes")
	fs.DurationVar(&o.cfg.Timeout, "timeout", 60*time.Second, "per-request timeout")
	fs.IntVar(&o.cfg.Parallelism, "parallelism", 0, "total intra-field worker budget (0 = all cores, 1 = serial)")
	fs.Float64Var(&o.cfg.RatePerClient, "rate", 0, "per-client request budget on heavy endpoints in req/s (0 = no rate limiting)")
	fs.IntVar(&o.cfg.RateBurst, "rate-burst", 0, "per-client token-bucket burst (0 = ceil of -rate)")
	fs.IntVar(&o.cfg.MaxBatch, "max-batch", 64, "max items per /v1/*-many batch request (larger batches get 413)")
	fs.StringVar(&peers, "peers", "", "comma-separated base URLs of every fxrzd in the shard ring, this instance included (empty = single instance)")
	fs.StringVar(&o.cfg.Self, "self", "", "this instance's own entry in -peers (required with -peers)")
	fs.DurationVar(&o.drain, "drain", 30*time.Second, "graceful-shutdown drain budget")
	fs.StringVar(&o.obsJSON, "obs-json", "", "write an observability snapshot (JSON) to this file on exit")
	fs.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof and expvar on this extra address")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.cfg.ModelsDir == "" {
		return o, fmt.Errorf("-models is required")
	}
	if st, err := os.Stat(o.cfg.ModelsDir); err != nil || !st.IsDir() {
		return o, fmt.Errorf("-models %q is not a directory", o.cfg.ModelsDir)
	}
	if o.cfg.Parallelism < 0 {
		return o, fmt.Errorf("-parallelism must be >= 0 (0 = all cores, 1 = serial), got %d", o.cfg.Parallelism)
	}
	if o.cfg.MaxInFlight < 0 {
		return o, fmt.Errorf("-max-inflight must be >= 0, got %d", o.cfg.MaxInFlight)
	}
	if o.cfg.MaxBodyBytes <= 0 {
		return o, fmt.Errorf("-max-body must be > 0, got %d", o.cfg.MaxBodyBytes)
	}
	if o.cfg.Timeout <= 0 || o.drain <= 0 {
		return o, fmt.Errorf("-timeout and -drain must be > 0")
	}
	if o.cfg.RatePerClient < 0 {
		return o, fmt.Errorf("-rate must be >= 0 (0 = no rate limiting), got %g", o.cfg.RatePerClient)
	}
	if o.cfg.RateBurst < 0 {
		return o, fmt.Errorf("-rate-burst must be >= 0 (0 = ceil of -rate), got %d", o.cfg.RateBurst)
	}
	if o.cfg.MaxBatch < 1 {
		return o, fmt.Errorf("-max-batch must be >= 1, got %d", o.cfg.MaxBatch)
	}
	if peers != "" {
		for _, p := range strings.Split(peers, ",") {
			p = strings.TrimSpace(p)
			if u, err := url.Parse(p); err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
				return o, fmt.Errorf("-peers entry %q must be an absolute http(s) base URL", p)
			}
			o.cfg.Peers = append(o.cfg.Peers, p)
		}
		if o.cfg.Self == "" {
			return o, fmt.Errorf("-self is required with -peers (this instance's own entry in the ring)")
		}
		// Validate the ring here so a bad peer list fails at startup with a
		// flag error, not a panic inside serve.NewServer.
		if _, err := shard.NewRing(o.cfg.Self, o.cfg.Peers); err != nil {
			return o, err
		}
	} else if o.cfg.Self != "" {
		return o, fmt.Errorf("-self without -peers: a ring of one needs no routing")
	}
	return o, nil
}

func run(args []string) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	// A serving process always records: /metrics is part of the API.
	obs.Enable()
	obs.Publish()
	if o.pprofAddr != "" {
		ln, err := net.Listen("tcp", o.pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		fmt.Fprintf(os.Stderr, "serving pprof on http://%s/debug/pprof/ and expvar on /debug/vars\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}

	s := serve.NewServer(o.cfg)
	if models, err := s.Registry().List(); err == nil {
		fmt.Fprintf(os.Stderr, "fxrzd: serving %d model(s) from %s\n", len(models), o.cfg.ModelsDir)
	}
	if len(o.cfg.Peers) > 0 {
		fmt.Fprintf(os.Stderr, "fxrzd: shard ring of %d (self %s)\n", len(o.cfg.Peers), o.cfg.Self)
	}
	srv := &http.Server{
		Addr:              o.addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	fmt.Fprintf(os.Stderr, "fxrzd: listening on %s\n", o.addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "fxrzd: %v — draining in-flight requests (budget %v)\n", sig, o.drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if o.obsJSON != "" {
		if err := obs.TakeSnapshot().WriteJSONFile(o.obsJSON); err != nil {
			return fmt.Errorf("obs-json: %w", err)
		}
	}
	fmt.Fprintln(os.Stderr, "fxrzd: drained, bye")
	return nil
}
