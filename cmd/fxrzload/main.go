// Command fxrzload is the load generator for fxrzd: it drives a mixed
// estimate/unpack/pack workload at fixed concurrency for a fixed duration and
// reports per-endpoint latency percentiles (p50/p90/p99/max), shed counts,
// and throughput. It is the measurement half of the serving-hardening story —
// the QoS classes and rate limits in fxrzd are only claims until a saturating
// mixed workload shows estimates completing while packs shed.
//
// Three modes:
//
//	fxrzload -addr http://host:8080 -model nyx-sz -target 8    # external fxrzd
//	fxrzload -selfserve -duration 10s -out BENCH_load.json     # in-process fxrzd
//	fxrzload -selfserve -shards 2 -batch 8 -shard-out BENCH_shard.json
//	                                                           # 1-vs-N shard compare
//
// -selfserve trains a small model once, mounts a real fxrzd handler on a
// loopback listener, and aims the workload at it — the mode CI uses, no
// daemon required. -rate, -max-inflight and -parallelism shape that server.
// -shards N mounts N such instances peered into one static shard ring;
// -addr also accepts a comma-separated list of bases, and in both cases the
// workers round-robin across the targets. -shard-out runs the same batch
// workload against one instance and then a -shards ring and records the
// amortized per-item latency both ways plus the sharded/single p50 overhead
// ratio — the measured price of scatter-gather fan-out.
//
// The mix is -mix "estimate:unpack:pack" weights; -region-frac turns that
// fraction of unpack requests into region (partial) decodes. -batch N (N > 1)
// aims the same mix at the /v1/*-many endpoints, N items per request, and
// records amortized per-item latencies — the knob that measures how much
// batching buys under the same concurrency. Each worker is its own
// rate-limiter client (load-<n> via X-Fxrz-Client). The summary is
// written as a benchguard-validated load baseline (-out), optionally with
// per-request samples as CSV (-csv); -p99-caps and -shed-cap are recorded
// into the baseline so the gate travels with the measurement.
package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/batch"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/fieldio"
	"github.com/fxrz-go/fxrz/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fxrzload:", err)
		os.Exit(1)
	}
}

// The workload endpoints, in mix order.
const (
	epEstimate = iota
	epUnpack
	epPack
	numEndpoints
)

var epNames = [numEndpoints]string{"estimate", "unpack", "pack"}

// mixSpec is the parsed -mix: integer weights per endpoint.
type mixSpec struct {
	weights [numEndpoints]int
	sum     int
	raw     string
}

// parseMix reads "estimate:unpack:pack" integer weights (e.g. "90:5:5").
func parseMix(s string) (mixSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) != numEndpoints {
		return mixSpec{}, fmt.Errorf("mix %q must be %d colon-separated weights (estimate:unpack:pack)", s, numEndpoints)
	}
	var m mixSpec
	m.raw = s
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 0 {
			return mixSpec{}, fmt.Errorf("mix weight %q must be a non-negative integer", p)
		}
		m.weights[i] = w
		m.sum += w
	}
	if m.sum == 0 {
		return mixSpec{}, fmt.Errorf("mix %q has no traffic: at least one weight must be > 0", s)
	}
	return m, nil
}

// pick draws an endpoint index with probability proportional to its weight.
func (m mixSpec) pick(rng *rand.Rand) int {
	n := rng.Intn(m.sum)
	for i, w := range m.weights {
		if n < w {
			return i
		}
		n -= w
	}
	return numEndpoints - 1
}

// parseCaps reads "-p99-caps estimate=5,unpack=80,pack=200" (milliseconds).
func parseCaps(s string) (map[string]float64, error) {
	caps := map[string]float64{}
	if s == "" {
		return caps, nil
	}
	for _, kv := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("p99 cap %q must be endpoint=milliseconds", kv)
		}
		known := false
		for _, ep := range epNames {
			known = known || name == ep
		}
		if !known {
			return nil, fmt.Errorf("p99 cap names unknown endpoint %q (want one of %v)", name, epNames[:])
		}
		ms, err := strconv.ParseFloat(val, 64)
		if err != nil || !(ms > 0) {
			return nil, fmt.Errorf("p99 cap for %s must be a positive millisecond value, got %q", name, val)
		}
		caps[name] = ms
	}
	return caps, nil
}

// options is the parsed flag set.
type options struct {
	addr        string
	targets     []string // parsed -addr entries (round-robin across workers)
	selfserve   bool
	shards      int
	shardOut    string
	overheadCap float64
	model       string
	target      float64
	concurrency int
	duration    time.Duration
	mix         mixSpec
	regionFrac  float64
	size        int
	seed        int64
	csvPath     string
	outPath     string
	caps        map[string]float64
	shedCap     float64
	note        string
	rate        float64
	maxInFlight int
	parallelism int
	batch       int
}

// parseFlags validates the command line into options.
func parseFlags(args []string) (options, error) {
	var o options
	var mixStr, capsStr string
	fs := flag.NewFlagSet("fxrzload", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "", "base URL(s) of running fxrzd instance(s), comma-separated; workers round-robin across them")
	fs.BoolVar(&o.selfserve, "selfserve", false, "train a small model and serve it in-process instead of -addr")
	fs.IntVar(&o.shards, "shards", 1, "selfserve: number of in-process instances peered into one shard ring")
	fs.StringVar(&o.shardOut, "shard-out", "", "selfserve batch mode: drive 1 shard and then -shards shards, write the comparison baseline (JSON) to this file")
	fs.Float64Var(&o.overheadCap, "overhead-cap", 0, "max tolerated sharded/single per-item p50 ratio recorded into the shard baseline (0 = none)")
	fs.StringVar(&o.model, "model", "", "model ID to drive (default \"loadtest\" with -selfserve)")
	fs.Float64Var(&o.target, "target", 0, "target compression ratio (0 with -selfserve = middle of the model's valid range)")
	fs.IntVar(&o.concurrency, "concurrency", 8, "concurrent workers, each a distinct rate-limiter client")
	fs.DurationVar(&o.duration, "duration", 5*time.Second, "how long to drive the workload")
	fs.StringVar(&mixStr, "mix", "90:5:5", "estimate:unpack:pack traffic weights")
	fs.Float64Var(&o.regionFrac, "region-frac", 0.25, "fraction of unpack requests that decode a region (partial decode)")
	fs.IntVar(&o.size, "size", 24, "per-dimension size of the cubic workload field")
	fs.Int64Var(&o.seed, "seed", 1, "base RNG seed (worker k uses seed+k)")
	fs.StringVar(&o.csvPath, "csv", "", "write per-request samples (endpoint,status,latency_us) to this CSV file")
	fs.StringVar(&o.outPath, "out", "", "write the benchguard load baseline (JSON) to this file")
	fs.StringVar(&capsStr, "p99-caps", "", "per-endpoint p99 caps in ms recorded into the baseline (e.g. estimate=5,unpack=80,pack=200)")
	fs.Float64Var(&o.shedCap, "shed-cap", 0, "max tolerated overall shed fraction recorded into the baseline (0 = none)")
	fs.StringVar(&o.note, "note", "", "extra runner note appended to the baseline")
	fs.Float64Var(&o.rate, "rate", 0, "selfserve: per-client rate limit in req/s (0 = off)")
	fs.IntVar(&o.maxInFlight, "max-inflight", 0, "selfserve: admission slots (0 = worker budget)")
	fs.IntVar(&o.parallelism, "parallelism", 0, "selfserve: intra-field worker budget (0 = all cores, 1 = serial)")
	fs.IntVar(&o.batch, "batch", 1, "items per request: > 1 drives the /v1/*-many batch endpoints with amortized per-item latencies")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	var err error
	if o.mix, err = parseMix(mixStr); err != nil {
		return o, err
	}
	if o.caps, err = parseCaps(capsStr); err != nil {
		return o, err
	}
	if o.selfserve {
		if o.addr != "" {
			return o, fmt.Errorf("-selfserve and -addr are mutually exclusive")
		}
		if o.model == "" {
			o.model = "loadtest"
		}
	} else {
		if o.addr == "" {
			return o, fmt.Errorf("either -addr or -selfserve is required")
		}
		for _, a := range strings.Split(o.addr, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return o, fmt.Errorf("-addr %q has an empty entry", o.addr)
			}
			o.targets = append(o.targets, a)
		}
		if o.model == "" {
			return o, fmt.Errorf("-model is required without -selfserve")
		}
		if !(o.target > 0) {
			return o, fmt.Errorf("-target must be > 0 without -selfserve (no model to derive it from)")
		}
		if o.rate != 0 || o.maxInFlight != 0 || o.parallelism != 0 {
			return o, fmt.Errorf("-rate, -max-inflight and -parallelism shape the -selfserve server; with -addr, configure fxrzd itself")
		}
		if o.shards != 1 {
			return o, fmt.Errorf("-shards shapes the -selfserve cluster; with -addr, list the ring's instances explicitly")
		}
	}
	if o.shards < 1 {
		return o, fmt.Errorf("-shards must be >= 1, got %d", o.shards)
	}
	if o.shardOut != "" {
		if !o.selfserve {
			return o, fmt.Errorf("-shard-out needs -selfserve (it mounts both clusters in-process)")
		}
		if o.shards < 2 {
			return o, fmt.Errorf("-shard-out compares 1 shard against -shards, so -shards must be >= 2")
		}
		if o.batch < 2 {
			return o, fmt.Errorf("-shard-out measures the /v1/*-many scatter path; set -batch >= 2")
		}
		if o.outPath != "" {
			return o, fmt.Errorf("-shard-out and -out are mutually exclusive (one baseline per run)")
		}
	}
	if o.overheadCap < 0 {
		return o, fmt.Errorf("-overhead-cap must be >= 0, got %g", o.overheadCap)
	}
	if o.target < 0 {
		return o, fmt.Errorf("-target must be >= 0, got %g", o.target)
	}
	if o.concurrency < 1 {
		return o, fmt.Errorf("-concurrency must be >= 1, got %d", o.concurrency)
	}
	if o.duration <= 0 {
		return o, fmt.Errorf("-duration must be > 0, got %v", o.duration)
	}
	if o.regionFrac < 0 || o.regionFrac > 1 {
		return o, fmt.Errorf("-region-frac must be in [0, 1], got %g", o.regionFrac)
	}
	if o.size < 2 {
		return o, fmt.Errorf("-size must be >= 2, got %d", o.size)
	}
	if o.shedCap < 0 || o.shedCap > 1 {
		return o, fmt.Errorf("-shed-cap must be in [0, 1], got %g", o.shedCap)
	}
	if o.rate < 0 || o.maxInFlight < 0 || o.parallelism < 0 {
		return o, fmt.Errorf("-rate, -max-inflight and -parallelism must be >= 0")
	}
	if o.batch < 1 {
		return o, fmt.Errorf("-batch must be >= 1, got %d", o.batch)
	}
	return o, nil
}

// sample is one request's outcome. status 0 means the transport failed.
type sample struct {
	ep     uint8
	status int
	us     int64
}

// trainSelfServe trains the tiny self-serve model once and saves it under
// o.model in a fresh temp dir every in-process instance mounts. cleanup
// removes the dir.
func trainSelfServe(o options, stderr io.Writer) (dir string, fw *fxrz.Framework, cleanup func(), err error) {
	fmt.Fprintln(stderr, "fxrzload: training the self-serve model (small forest, once)")
	var fields []*fxrz.Field
	for _, ts := range []int{1, 3, 5} {
		f, ferr := datagen.NyxField("baryon_density", 1, ts, 16)
		if ferr != nil {
			return "", nil, nil, ferr
		}
		fields = append(fields, f)
	}
	cfg := fxrz.DefaultConfig()
	cfg.StationaryPoints = 8
	cfg.AugmentPerField = 30
	cfg.Trees = 12
	fw, err = fxrz.Train(fxrz.NewSZ(), fields, cfg)
	if err != nil {
		return "", nil, nil, fmt.Errorf("training the self-serve model: %w", err)
	}
	dir, err = os.MkdirTemp("", "fxrzload-models-")
	if err != nil {
		return "", nil, nil, err
	}
	cleanup = func() { _ = os.RemoveAll(dir) }
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		cleanup()
		return "", nil, nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, o.model+".fxm"), buf.Bytes(), 0o644); err != nil {
		cleanup()
		return "", nil, nil, err
	}
	return dir, fw, cleanup, nil
}

// startCluster mounts nShards in-process fxrzd instances over the trained
// model dir. With nShards > 1 the listeners are bound before any server
// starts, so every instance opens knowing the full peer list and its own
// base — the same static-ring contract as fxrzd -peers/-self. shutdown
// drains them all.
func startCluster(o options, dir string, nShards int) (bases []string, shutdown func(), err error) {
	lns := make([]net.Listener, nShards)
	bases = make([]string, nShards)
	for i := range lns {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			for _, l := range lns[:i] {
				_ = l.Close()
			}
			return nil, nil, lerr
		}
		lns[i] = ln
		bases[i] = "http://" + ln.Addr().String()
	}
	maxBatch := 64
	if o.batch > maxBatch {
		maxBatch = o.batch
	}
	srvs := make([]*http.Server, nShards)
	for i := range lns {
		cfg := serve.Config{
			ModelsDir:     dir,
			MaxInFlight:   o.maxInFlight,
			Parallelism:   o.parallelism,
			RatePerClient: o.rate,
			MaxBatch:      maxBatch,
		}
		if nShards > 1 {
			cfg.Peers = append([]string(nil), bases...)
			cfg.Self = bases[i]
		}
		srvs[i] = &http.Server{Handler: serve.NewServer(cfg).Handler()}
		go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(srvs[i], lns[i])
	}
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, hs := range srvs {
			_ = hs.Shutdown(ctx)
		}
	}
	return bases, shutdown, nil
}

// regionQuery builds an interior half-extent box per dimension
// ("lo:hi,lo:hi,..."), the region= value for partial unpacks.
func regionQuery(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		lo := d / 4
		hi := lo + d/2
		if hi <= lo {
			hi = lo + 1
		}
		parts[i] = fmt.Sprintf("%d:%d", lo, hi)
	}
	return strings.Join(parts, ",")
}

// warmupPack runs one pack outside the measured window: it warms the model
// cache and its response is the compressed blob every unpack request replays.
func warmupPack(client *http.Client, packURL string, body []byte) ([]byte, error) {
	req, err := http.NewRequest("POST", packURL, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(serve.ClientHeader, "load-warmup")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(blob))
	}
	return blob, nil
}

// doBatchRequest sends n copies of body as one /v1/*-many container and
// returns one sample per item with the request latency amortized across them.
// A refused batch (shed, 413, transport failure) yields n samples carrying
// the outer status so batch-mode shed accounting stays per-item. shardKeys
// gives each item a distinct shard-key param — identical payloads would
// otherwise all hash to one owner and a sharded target would never scatter.
func doBatchRequest(client *http.Client, ep int, url, clientID string, body []byte, n int, shardKeys bool) []sample {
	items := make([]batch.Item, n)
	for i := range items {
		items[i] = batch.Item{ID: uint64(i), Payload: body}
		if shardKeys {
			items[i].Params = fmt.Sprintf("shard-key=i%d", i)
		}
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(batch.EncodeRequest(items)))
	if err != nil {
		return repeatSample(sample{ep: uint8(ep)}, n)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(serve.ClientHeader, clientID)
	t0 := time.Now()
	resp, err := client.Do(req)
	us := time.Since(t0).Microseconds()
	perItem := us / int64(n)
	if err != nil {
		return repeatSample(sample{ep: uint8(ep), us: perItem}, n)
	}
	respBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	perItem = time.Since(t0).Microseconds() / int64(n)
	if resp.StatusCode != http.StatusOK || err != nil {
		return repeatSample(sample{ep: uint8(ep), status: resp.StatusCode, us: perItem}, n)
	}
	results, err := batch.DecodeResponse(respBody)
	if err != nil || len(results) != n {
		return repeatSample(sample{ep: uint8(ep), us: perItem}, n)
	}
	out := make([]sample, n)
	for i, r := range results {
		out[i] = sample{ep: uint8(ep), status: r.Status, us: perItem}
	}
	return out
}

// repeatSample fills a batch-wide outcome across its n items.
func repeatSample(s sample, n int) []sample {
	out := make([]sample, n)
	for i := range out {
		out[i] = s
	}
	return out
}

// doRequest sends one POST and returns its outcome sample.
func doRequest(client *http.Client, ep int, url, clientID string, body []byte) sample {
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return sample{ep: uint8(ep)}
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(serve.ClientHeader, clientID)
	t0 := time.Now()
	resp, err := client.Do(req)
	us := time.Since(t0).Microseconds()
	if err != nil {
		return sample{ep: uint8(ep), us: us}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return sample{ep: uint8(ep), status: resp.StatusCode, us: us}
}

// percentileMS is the q-th percentile (nearest-rank) of sorted microsecond
// latencies, in milliseconds.
func percentileMS(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / 1000
}

// The baseline shapes benchguard's load schema validates. runnerInfo mirrors
// the runner block every BENCH_*.json carries.
type runnerInfo struct {
	CPU   string `json:"cpu"`
	Cores int    `json:"cores"`
	Note  string `json:"note,omitempty"`
}

type loadSummary struct {
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s"`
	Mix         string  `json:"mix"`
	RegionFrac  float64 `json:"region_frac"`
	Requests    int     `json:"requests"`
	OK          int     `json:"ok"`
	Shed        int     `json:"shed"`
	Errors      int     `json:"errors"`
	ShedFrac    float64 `json:"shed_frac"`
	ShedCap     float64 `json:"shed_cap,omitempty"`
	RPS         float64 `json:"rps"`
}

type endpointEntry struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Errors   int     `json:"errors"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
	MaxMS    float64 `json:"max_ms"`
	P99CapMS float64 `json:"p99_cap_ms,omitempty"`
}

type report struct {
	Benchmark string          `json:"benchmark"`
	Date      string          `json:"date"`
	Runner    runnerInfo      `json:"runner"`
	Load      loadSummary     `json:"load"`
	Endpoints []endpointEntry `json:"endpoints"`
}

// cpuModel names the host CPU for the runner block.
func cpuModel() string {
	if b, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if rest, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(rest, ":"); ok {
					return strings.TrimSpace(v)
				}
			}
		}
	}
	return runtime.GOOS + "/" + runtime.GOARCH
}

// newLoadClient builds the shared HTTP client: keep-alive pool sized to the
// worker count — with the default transport (MaxIdleConnsPerHost 2) most
// workers would re-dial per request and the measured latencies would include
// connection setup, not serving.
func newLoadClient(concurrency int) (*http.Client, int) {
	idle := concurrency + 2
	return &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * idle,
		MaxIdleConnsPerHost: idle,
	}}, idle
}

// driveWindow runs the measured window: each worker owns a seeded RNG, a
// rate-limiter identity, and one target (round-robin over targets), and
// loops the mix until the deadline.
func driveWindow(o options, client *http.Client, targets []string, fieldBytes, blob []byte, target float64, region string, shardKeys bool) ([][]sample, time.Duration) {
	perWorker := make([][]sample, o.concurrency)
	deadline := time.Now().Add(o.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < o.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := targets[w%len(targets)]
			packURL := fmt.Sprintf("%s/v1/pack?model=%s&target=%g", base, o.model, target)
			estimateURL := fmt.Sprintf("%s/v1/estimate?model=%s&target=%g", base, o.model, target)
			unpackURL := base + "/v1/unpack"
			regionURL := unpackURL + "?region=" + region
			packManyURL := fmt.Sprintf("%s/v1/pack-many?model=%s&target=%g", base, o.model, target)
			estimateManyURL := fmt.Sprintf("%s/v1/estimate-many?model=%s&target=%g", base, o.model, target)
			unpackManyURL := base + "/v1/unpack-many"
			regionManyURL := unpackManyURL + "?region=" + region
			rng := rand.New(rand.NewSource(o.seed + int64(w)))
			clientID := fmt.Sprintf("load-%d", w)
			var out []sample
			for time.Now().Before(deadline) {
				var last sample
				if o.batch > 1 {
					var batched []sample
					switch ep := o.mix.pick(rng); ep {
					case epEstimate:
						batched = doBatchRequest(client, ep, estimateManyURL, clientID, fieldBytes, o.batch, shardKeys)
					case epUnpack:
						url := unpackManyURL
						if rng.Float64() < o.regionFrac {
							url = regionManyURL
						}
						batched = doBatchRequest(client, ep, url, clientID, blob, o.batch, shardKeys)
					case epPack:
						batched = doBatchRequest(client, ep, packManyURL, clientID, fieldBytes, o.batch, shardKeys)
					}
					out = append(out, batched...)
					last = batched[len(batched)-1]
				} else {
					switch ep := o.mix.pick(rng); ep {
					case epEstimate:
						last = doRequest(client, ep, estimateURL, clientID, fieldBytes)
					case epUnpack:
						url := unpackURL
						if rng.Float64() < o.regionFrac {
							url = regionURL
						}
						last = doRequest(client, ep, url, clientID, blob)
					case epPack:
						last = doRequest(client, ep, packURL, clientID, fieldBytes)
					}
					out = append(out, last)
				}
				if last.status == http.StatusTooManyRequests {
					// Shed or rate-limited: back off instead of busy-spinning.
					time.Sleep(5 * time.Millisecond)
				}
			}
			perWorker[w] = out
		}(w)
	}
	wg.Wait()
	return perWorker, time.Since(start)
}

// epAgg is one endpoint's (or the run's) outcome counts plus OK latencies.
type epAgg struct {
	requests, ok, shed, errors int
	okUS                       []int64
}

// aggregate folds samples per endpoint; percentiles are over OK latencies
// only (a shed 429 returns in microseconds and would flatter the tail).
// allOK is every OK latency across endpoints, sorted, for run-wide
// percentiles.
func aggregate(caps map[string]float64, perWorker [][]sample) (entries []endpointEntry, total epAgg, allOK []int64) {
	var agg [numEndpoints]epAgg
	for _, samples := range perWorker {
		for _, s := range samples {
			a := &agg[s.ep]
			a.requests++
			switch {
			case s.status == http.StatusOK:
				a.ok++
				a.okUS = append(a.okUS, s.us)
			case s.status == http.StatusTooManyRequests:
				a.shed++
			default:
				a.errors++
			}
		}
	}
	for ep, a := range agg {
		total.requests += a.requests
		total.ok += a.ok
		total.shed += a.shed
		total.errors += a.errors
		allOK = append(allOK, a.okUS...)
		if a.requests == 0 {
			continue
		}
		sort.Slice(a.okUS, func(i, j int) bool { return a.okUS[i] < a.okUS[j] })
		entries = append(entries, endpointEntry{
			Name:     epNames[ep],
			Requests: a.requests,
			OK:       a.ok,
			Shed:     a.shed,
			Errors:   a.errors,
			P50MS:    percentileMS(a.okUS, 0.50),
			P90MS:    percentileMS(a.okUS, 0.90),
			P99MS:    percentileMS(a.okUS, 0.99),
			MaxMS:    percentileMS(a.okUS, 1),
			P99CapMS: caps[epNames[ep]],
		})
	}
	sort.Slice(allOK, func(i, j int) bool { return allOK[i] < allOK[j] })
	return entries, total, allOK
}

func run(args []string, stdout, stderr io.Writer) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if o.shardOut != "" {
		return runShardCompare(o, stdout, stderr)
	}
	targets := o.targets
	var fw *fxrz.Framework
	if o.selfserve {
		dir, fw2, cleanup, terr := trainSelfServe(o, stderr)
		if terr != nil {
			return terr
		}
		defer cleanup()
		bases, shutdown, cerr := startCluster(o, dir, o.shards)
		if cerr != nil {
			return cerr
		}
		defer shutdown()
		targets, fw = bases, fw2
	}

	// The workload field: a time step the self-serve model never trained on.
	f, err := datagen.NyxField("baryon_density", 2, 2, o.size)
	if err != nil {
		return err
	}
	var fieldBuf bytes.Buffer
	if err := fieldio.Write(&fieldBuf, f); err != nil {
		return err
	}
	fieldBytes := fieldBuf.Bytes()
	target := o.target
	if target == 0 {
		lo, hi := fw.ValidRatioRange(f)
		target = lo + 0.5*(hi-lo)
	}

	client, idle := newLoadClient(o.concurrency)
	region := regionQuery(f.Dims)
	packURL := fmt.Sprintf("%s/v1/pack?model=%s&target=%g", targets[0], o.model, target)
	blob, err := warmupPack(client, packURL, fieldBytes)
	if err != nil {
		return fmt.Errorf("warmup pack: %w", err)
	}
	fmt.Fprintf(stderr, "fxrzload: driving %s for %v at concurrency %d (mix %s, target %.3g, %d-byte blob)\n",
		strings.Join(targets, ","), o.duration, o.concurrency, o.mix.raw, target, len(blob))

	// Distinct per-item shard keys whenever the target side can scatter:
	// the selfserve ring when sharded, or several external bases.
	shardKeys := o.batch > 1 && (o.shards > 1 || len(targets) > 1)
	perWorker, elapsed := driveWindow(o, client, targets, fieldBytes, blob, target, region, shardKeys)
	entries, total, _ := aggregate(o.caps, perWorker)
	shedFrac := 0.0
	if total.requests > 0 {
		shedFrac = float64(total.shed) / float64(total.requests)
	}

	fmt.Fprintf(stdout, "fxrzload: %d requests in %.1fs (%.1f req/s): %d ok, %d shed (%.1f%%), %d errors\n",
		total.requests, elapsed.Seconds(), float64(total.requests)/elapsed.Seconds(),
		total.ok, total.shed, 100*shedFrac, total.errors)
	for _, e := range entries {
		capped := ""
		if e.P99CapMS > 0 && e.P99MS > e.P99CapMS {
			capped = "  ** OVER p99 cap **"
		}
		fmt.Fprintf(stdout, "  %-8s %6d req  %6d ok  %5d shed  %3d err  p50 %8.2fms  p90 %8.2fms  p99 %8.2fms  max %8.2fms%s\n",
			e.Name, e.Requests, e.OK, e.Shed, e.Errors, e.P50MS, e.P90MS, e.P99MS, e.MaxMS, capped)
	}

	if o.csvPath != "" {
		if err := writeCSV(o.csvPath, perWorker); err != nil {
			return fmt.Errorf("csv: %w", err)
		}
	}
	if o.outPath != "" {
		note := fmt.Sprintf("single-run percentiles from fxrzload (mix %s, concurrency %d); http keep-alive transport with MaxIdleConnsPerHost=%d (>= %d workers, no per-request re-dial); shared hardware, treat absolute latencies as indicative", o.mix.raw, o.concurrency, idle, o.concurrency)
		if o.batch > 1 {
			note += fmt.Sprintf("; batch=%d via /v1/*-many, latencies amortized per item", o.batch)
		}
		if o.shards > 1 {
			note += fmt.Sprintf("; selfserve shard ring of %d instances, workers round-robin across bases", o.shards)
		} else if len(targets) > 1 {
			note += fmt.Sprintf("; %d external bases, workers round-robin across them", len(targets))
		}
		if o.note != "" {
			note += "; " + o.note
		}
		rep := report{
			Benchmark: "fxrzd mixed-load harness (fxrzload)",
			Date:      time.Now().Format("2006-01-02"),
			Runner:    runnerInfo{CPU: cpuModel(), Cores: runtime.NumCPU(), Note: note},
			Load: loadSummary{
				Concurrency: o.concurrency,
				DurationS:   math.Round(elapsed.Seconds()*100) / 100,
				Mix:         o.mix.raw,
				RegionFrac:  o.regionFrac,
				Requests:    total.requests,
				OK:          total.ok,
				Shed:        total.shed,
				Errors:      total.errors,
				ShedFrac:    math.Round(shedFrac*1e4) / 1e4,
				ShedCap:     o.shedCap,
				RPS:         math.Round(float64(total.requests)/elapsed.Seconds()*10) / 10,
			},
			Endpoints: entries,
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "fxrzload: wrote %s\n", o.outPath)
	}
	if total.errors > 0 {
		return fmt.Errorf("%d request(s) failed (non-200/429) — the baseline is not clean", total.errors)
	}
	if total.ok == 0 {
		return fmt.Errorf("no request succeeded — nothing to measure")
	}
	return nil
}

// The shard-comparison baseline shapes benchguard's shard schema validates.
type shardRun struct {
	Shards    int     `json:"shards"`
	DurationS float64 `json:"duration_s"`
	Items     int     `json:"items"`
	OK        int     `json:"ok"`
	Shed      int     `json:"shed"`
	Errors    int     `json:"errors"`
	ItemP50MS float64 `json:"item_p50_ms"`
	ItemP99MS float64 `json:"item_p99_ms"`
}

type shardSummary struct {
	Mix         string     `json:"mix"`
	Batch       int        `json:"batch"`
	Concurrency int        `json:"concurrency"`
	Runs        []shardRun `json:"runs"`
	OverheadP50 float64    `json:"overhead_p50"`
	OverheadCap float64    `json:"overhead_cap,omitempty"`
}

type shardReport struct {
	Benchmark string       `json:"benchmark"`
	Date      string       `json:"date"`
	Runner    runnerInfo   `json:"runner"`
	Shard     shardSummary `json:"shard"`
}

// runShardCompare measures what scatter-gather fan-out costs: the same batch
// workload against one instance and then a -shards ring (same trained model,
// same mix, same concurrency), amortized per-item percentiles for each, and
// the sharded/single p50 ratio recorded as the overhead a deployment pays
// for routing. Items carry distinct shard keys so batches actually split.
func runShardCompare(o options, stdout, stderr io.Writer) error {
	dir, fw, cleanup, err := trainSelfServe(o, stderr)
	if err != nil {
		return err
	}
	defer cleanup()
	f, err := datagen.NyxField("baryon_density", 2, 2, o.size)
	if err != nil {
		return err
	}
	var fieldBuf bytes.Buffer
	if err := fieldio.Write(&fieldBuf, f); err != nil {
		return err
	}
	fieldBytes := fieldBuf.Bytes()
	target := o.target
	if target == 0 {
		lo, hi := fw.ValidRatioRange(f)
		target = lo + 0.5*(hi-lo)
	}
	region := regionQuery(f.Dims)

	var runs []shardRun
	for _, n := range []int{1, o.shards} {
		bases, shutdown, err := startCluster(o, dir, n)
		if err != nil {
			return err
		}
		client, _ := newLoadClient(o.concurrency)
		packURL := fmt.Sprintf("%s/v1/pack?model=%s&target=%g", bases[0], o.model, target)
		blob, err := warmupPack(client, packURL, fieldBytes)
		if err != nil {
			shutdown()
			return fmt.Errorf("warmup pack (%d shard(s)): %w", n, err)
		}
		fmt.Fprintf(stderr, "fxrzload: driving %d shard(s) for %v at concurrency %d (batch %d, mix %s)\n",
			n, o.duration, o.concurrency, o.batch, o.mix.raw)
		perWorker, elapsed := driveWindow(o, client, bases, fieldBytes, blob, target, region, n > 1)
		shutdown()
		_, total, allOK := aggregate(o.caps, perWorker)
		if total.errors > 0 {
			return fmt.Errorf("%d item(s) failed on the %d-shard run — the baseline is not clean", total.errors, n)
		}
		if total.ok == 0 {
			return fmt.Errorf("no item succeeded on the %d-shard run — nothing to measure", n)
		}
		runs = append(runs, shardRun{
			Shards:    n,
			DurationS: math.Round(elapsed.Seconds()*100) / 100,
			Items:     total.requests,
			OK:        total.ok,
			Shed:      total.shed,
			Errors:    total.errors,
			ItemP50MS: percentileMS(allOK, 0.50),
			ItemP99MS: percentileMS(allOK, 0.99),
		})
	}

	overhead := 0.0
	if runs[0].ItemP50MS > 0 {
		overhead = math.Round(runs[1].ItemP50MS/runs[0].ItemP50MS*100) / 100
	}
	for _, r := range runs {
		fmt.Fprintf(stdout, "  %d shard(s): %6d items  %6d ok  %5d shed  item p50 %8.3fms  p99 %8.3fms\n",
			r.Shards, r.Items, r.OK, r.Shed, r.ItemP50MS, r.ItemP99MS)
	}
	fmt.Fprintf(stdout, "  scatter-gather per-item p50 overhead: %.2fx\n", overhead)

	note := fmt.Sprintf("amortized per-item latencies over /v1/*-many (batch %d, mix %s, concurrency %d); the sharded run pays one loopback forward per remote sub-batch, so the overhead ratio is routing cost, not network distance; shared hardware, treat absolute latencies as indicative", o.batch, o.mix.raw, o.concurrency)
	if o.note != "" {
		note += "; " + o.note
	}
	rep := shardReport{
		Benchmark: "fxrzd sharded serving tier (fxrzload -shard-out)",
		Date:      time.Now().Format("2006-01-02"),
		Runner:    runnerInfo{CPU: cpuModel(), Cores: runtime.NumCPU(), Note: note},
		Shard: shardSummary{
			Mix:         o.mix.raw,
			Batch:       o.batch,
			Concurrency: o.concurrency,
			Runs:        runs,
			OverheadP50: overhead,
			OverheadCap: o.overheadCap,
		},
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.shardOut, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "fxrzload: wrote %s\n", o.shardOut)
	if o.overheadCap > 0 && overhead > o.overheadCap {
		return fmt.Errorf("scatter-gather p50 overhead %.2fx exceeds the %.2fx cap", overhead, o.overheadCap)
	}
	return nil
}

// writeCSV dumps every sample as endpoint,status,latency_us rows.
func writeCSV(path string, perWorker [][]sample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	_ = w.Write([]string{"endpoint", "status", "latency_us"})
	for _, samples := range perWorker {
		for _, s := range samples {
			_ = w.Write([]string{epNames[s.ep], strconv.Itoa(s.status), strconv.FormatInt(s.us, 10)})
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
