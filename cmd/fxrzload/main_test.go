package main

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	o, err := parseFlags([]string{"-selfserve"})
	if err != nil {
		t.Fatal(err)
	}
	if o.model != "loadtest" {
		t.Errorf("selfserve default model = %q, want loadtest", o.model)
	}
	if o.concurrency != 8 || o.duration != 5*time.Second || o.size != 24 {
		t.Errorf("defaults = %+v", o)
	}
	if o.mix.weights != [numEndpoints]int{90, 5, 5} {
		t.Errorf("default mix = %v", o.mix.weights)
	}
	if o.regionFrac != 0.25 {
		t.Errorf("default region-frac = %g", o.regionFrac)
	}
	if o.target != 0 || o.rate != 0 || o.shedCap != 0 {
		t.Errorf("defaults = %+v", o)
	}
	if o.batch != 1 {
		t.Errorf("default batch = %d, want 1 (single-request mode)", o.batch)
	}
}

func TestParseFlagsRejections(t *testing.T) {
	cases := map[string][]string{
		"no addr, no selfserve":  {},
		"addr plus selfserve":    {"-selfserve", "-addr", "http://x"},
		"remote without model":   {"-addr", "http://x", "-target", "8"},
		"remote without target":  {"-addr", "http://x", "-model", "m"},
		"remote with rate":       {"-addr", "http://x", "-model", "m", "-target", "8", "-rate", "5"},
		"short mix":              {"-selfserve", "-mix", "90:10"},
		"negative mix weight":    {"-selfserve", "-mix", "90:-1:11"},
		"all-zero mix":           {"-selfserve", "-mix", "0:0:0"},
		"zero concurrency":       {"-selfserve", "-concurrency", "0"},
		"zero duration":          {"-selfserve", "-duration", "0s"},
		"region frac over 1":     {"-selfserve", "-region-frac", "1.5"},
		"tiny size":              {"-selfserve", "-size", "1"},
		"negative target":        {"-selfserve", "-target", "-2"},
		"unknown cap endpoint":   {"-selfserve", "-p99-caps", "bogus=1"},
		"non-positive cap":       {"-selfserve", "-p99-caps", "estimate=0"},
		"malformed cap":          {"-selfserve", "-p99-caps", "estimate"},
		"shed cap over 1":        {"-selfserve", "-shed-cap", "2"},
		"negative max-inflight":  {"-selfserve", "-max-inflight", "-1"},
		"negative parallelism":   {"-selfserve", "-parallelism", "-1"},
		"negative selfserv rate": {"-selfserve", "-rate", "-1"},
		"zero batch":             {"-selfserve", "-batch", "0"},
		"zero shards":            {"-selfserve", "-shards", "0"},
		"shards with addr":       {"-addr", "http://x", "-model", "m", "-target", "8", "-shards", "2"},
		"empty addr entry":       {"-addr", "http://x,,http://y", "-model", "m", "-target", "8"},
		"shard-out no selfserve": {"-addr", "http://x", "-model", "m", "-target", "8", "-shard-out", "b.json"},
		"shard-out one shard":    {"-selfserve", "-batch", "4", "-shard-out", "b.json"},
		"shard-out no batch":     {"-selfserve", "-shards", "2", "-shard-out", "b.json"},
		"shard-out plus out":     {"-selfserve", "-shards", "2", "-batch", "4", "-shard-out", "b.json", "-out", "c.json"},
		"negative overhead cap":  {"-selfserve", "-shards", "2", "-batch", "4", "-shard-out", "b.json", "-overhead-cap", "-1"},
	}
	for name, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseFlagsMultiAddr(t *testing.T) {
	o, err := parseFlags([]string{"-addr", "http://a:1, http://b:2", "-model", "m", "-target", "8"})
	if err != nil {
		t.Fatal(err)
	}
	if len(o.targets) != 2 || o.targets[0] != "http://a:1" || o.targets[1] != "http://b:2" {
		t.Errorf("targets = %v (whitespace around commas must be trimmed)", o.targets)
	}
}

func TestParseFlagsShardCompare(t *testing.T) {
	o, err := parseFlags([]string{"-selfserve", "-shards", "3", "-batch", "8",
		"-shard-out", "b.json", "-overhead-cap", "2.5"})
	if err != nil {
		t.Fatal(err)
	}
	if o.shards != 3 || o.shardOut != "b.json" || o.overheadCap != 2.5 {
		t.Errorf("shard options = shards=%d shardOut=%q cap=%g", o.shards, o.shardOut, o.overheadCap)
	}
}

func TestParseMix(t *testing.T) {
	m, err := parseMix("90:5:5")
	if err != nil {
		t.Fatal(err)
	}
	if m.sum != 100 || m.weights != [numEndpoints]int{90, 5, 5} {
		t.Errorf("mix = %+v", m)
	}
	// Zero-weight endpoints are legal (pack-free mixes are a real workload)
	// and must never be picked.
	m, err = parseMix("1:1:0")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if m.pick(rng) == epPack {
			t.Fatal("picked a zero-weight endpoint")
		}
	}
}

func TestMixPickDistribution(t *testing.T) {
	m, err := parseMix("90:5:5")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	var counts [numEndpoints]int
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.pick(rng)]++
	}
	if frac := float64(counts[epEstimate]) / n; frac < 0.85 || frac > 0.95 {
		t.Errorf("estimate fraction = %.3f, want ~0.90", frac)
	}
	if counts[epUnpack] == 0 || counts[epPack] == 0 {
		t.Errorf("minority endpoints never picked: %v", counts)
	}
}

func TestParseCaps(t *testing.T) {
	caps, err := parseCaps("estimate=5,unpack=80.5,pack=200")
	if err != nil {
		t.Fatal(err)
	}
	if caps["estimate"] != 5 || caps["unpack"] != 80.5 || caps["pack"] != 200 {
		t.Errorf("caps = %v", caps)
	}
	if caps, err := parseCaps(""); err != nil || len(caps) != 0 {
		t.Errorf("empty caps = %v, %v", caps, err)
	}
}

func TestPercentileMS(t *testing.T) {
	if got := percentileMS(nil, 0.99); got != 0 {
		t.Errorf("empty percentile = %g", got)
	}
	if got := percentileMS([]int64{1500}, 0.5); got != 1.5 {
		t.Errorf("single-sample p50 = %g, want 1.5", got)
	}
	// 1..100 microseconds: nearest-rank p50 is the 50th value, p99 the 99th.
	var us []int64
	for i := int64(1); i <= 100; i++ {
		us = append(us, i)
	}
	if got := percentileMS(us, 0.50); got != 0.050 {
		t.Errorf("p50 = %g, want 0.050", got)
	}
	if got := percentileMS(us, 0.99); got != 0.099 {
		t.Errorf("p99 = %g, want 0.099", got)
	}
	if got := percentileMS(us, 1); got != 0.100 {
		t.Errorf("max = %g, want 0.100", got)
	}
}

func TestRegionQuery(t *testing.T) {
	if got := regionQuery([]int{16, 16, 16}); got != "4:12,4:12,4:12" {
		t.Errorf("region = %q", got)
	}
	// Tiny dims still yield a non-empty box.
	if got := regionQuery([]int{2, 3}); got != "0:1,0:1" {
		t.Errorf("region = %q", got)
	}
}

// TestEndToEndSelfServe is the harness smoke test: a short self-serve run
// must produce a clean summary, a parseable baseline whose counts are
// internally consistent, and a CSV with one row per request.
func TestEndToEndSelfServe(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model and drives load")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_load.json")
	csvPath := filepath.Join(dir, "samples.csv")
	err := run([]string{
		"-selfserve", "-duration", "300ms", "-concurrency", "2",
		"-size", "16", "-max-inflight", "4", "-seed", "7",
		"-mix", "60:20:20", "-out", out, "-csv", csvPath,
	}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Load.Requests == 0 || rep.Load.OK == 0 {
		t.Fatalf("no traffic recorded: %+v", rep.Load)
	}
	if rep.Load.Errors != 0 {
		t.Fatalf("errors in a clean run: %+v", rep.Load)
	}
	if rep.Load.Requests != rep.Load.OK+rep.Load.Shed+rep.Load.Errors {
		t.Errorf("load counts inconsistent: %+v", rep.Load)
	}
	if rep.Runner.Cores <= 0 || rep.Runner.CPU == "" || rep.Runner.Note == "" {
		t.Errorf("runner block incomplete: %+v", rep.Runner)
	}
	if rep.Date == "" || rep.Benchmark == "" {
		t.Errorf("missing benchmark/date: %q %q", rep.Benchmark, rep.Date)
	}
	sum := 0
	for _, e := range rep.Endpoints {
		if e.Requests != e.OK+e.Shed+e.Errors {
			t.Errorf("endpoint %s counts inconsistent: %+v", e.Name, e)
		}
		if e.OK > 0 && !(e.P50MS > 0 && e.P50MS <= e.P90MS && e.P90MS <= e.P99MS && e.P99MS <= e.MaxMS) {
			t.Errorf("endpoint %s percentiles not monotone: %+v", e.Name, e)
		}
		sum += e.Requests
	}
	if sum != rep.Load.Requests {
		t.Errorf("endpoint requests sum %d != load total %d", sum, rep.Load.Requests)
	}

	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != rep.Load.Requests+1 {
		t.Errorf("csv rows = %d, want %d samples + header", len(rows), rep.Load.Requests)
	}
	if strings.Join(rows[0], ",") != "endpoint,status,latency_us" {
		t.Errorf("csv header = %v", rows[0])
	}
}

// TestEndToEndSelfServeBatch drives the same harness through the /v1/*-many
// endpoints: every request carries -batch items, so the per-item sample count
// is a multiple of the batch size and the runner note records the mode.
func TestEndToEndSelfServeBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model and drives load")
	}
	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	const batchN = 4
	err := run([]string{
		"-selfserve", "-duration", "300ms", "-concurrency", "2",
		"-size", "16", "-max-inflight", "4", "-seed", "7",
		"-mix", "60:20:20", "-batch", "4", "-out", out,
	}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Load.Requests == 0 || rep.Load.OK == 0 || rep.Load.Errors != 0 {
		t.Fatalf("batch run not clean: %+v", rep.Load)
	}
	if rep.Load.Requests%batchN != 0 {
		t.Errorf("per-item samples = %d, not a multiple of batch %d", rep.Load.Requests, batchN)
	}
	if !strings.Contains(rep.Runner.Note, "batch=4") || !strings.Contains(rep.Runner.Note, "MaxIdleConnsPerHost") {
		t.Errorf("runner note does not record the batch mode and transport: %q", rep.Runner.Note)
	}
}

// TestEndToEndShardCompare runs the 1-vs-N comparison mode: both runs must be
// clean, the baseline must carry one entry per shard count, and the recorded
// overhead must match the two runs' p50 ratio.
func TestEndToEndShardCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model and drives two clusters")
	}
	out := filepath.Join(t.TempDir(), "BENCH_shard.json")
	err := run([]string{
		"-selfserve", "-shards", "2", "-batch", "4",
		"-duration", "300ms", "-concurrency", "2",
		"-size", "16", "-seed", "7", "-mix", "80:10:10",
		"-shard-out", out,
	}, io.Discard, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep shardReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Shard.Runs) != 2 || rep.Shard.Runs[0].Shards != 1 || rep.Shard.Runs[1].Shards != 2 {
		t.Fatalf("runs = %+v, want shards 1 then 2", rep.Shard.Runs)
	}
	for _, r := range rep.Shard.Runs {
		if r.Items == 0 || r.OK == 0 || r.Errors != 0 {
			t.Errorf("%d-shard run not clean: %+v", r.Shards, r)
		}
		if r.Items != r.OK+r.Shed+r.Errors {
			t.Errorf("%d-shard counts inconsistent: %+v", r.Shards, r)
		}
		if !(r.ItemP50MS > 0 && r.ItemP50MS <= r.ItemP99MS) {
			t.Errorf("%d-shard percentiles not monotone: %+v", r.Shards, r)
		}
	}
	want := rep.Shard.Runs[1].ItemP50MS / rep.Shard.Runs[0].ItemP50MS
	if got := rep.Shard.OverheadP50; got < want-0.011 || got > want+0.011 {
		t.Errorf("overhead = %g, want ~%g (p50 ratio of the two runs)", got, want)
	}
	if rep.Runner.Cores <= 0 || rep.Runner.Note == "" || rep.Benchmark == "" || rep.Date == "" {
		t.Errorf("report header incomplete: %+v", rep)
	}
}
