// Benchmarks regenerating every table and figure of the paper's evaluation
// at Tiny scale (run `cmd/expbench -scale small` for the paper-methodology
// runs; EXPERIMENTS.md records both). Custom metrics carry the quantities
// the paper reports: estimation errors as `err%`, speedups as `x`.
package fxrz_test

import (
	"fmt"
	"sync"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/exp"
	"github.com/fxrz-go/fxrz/internal/grid"
)

var (
	benchSession     *exp.Session
	benchSessionOnce sync.Once

	benchCompare     *exp.CompareResult
	benchCompareErr  error
	benchCompareOnce sync.Once
)

func session() *exp.Session {
	benchSessionOnce.Do(func() { benchSession = exp.NewSession(exp.Tiny) })
	return benchSession
}

// compare runs the expensive FXRZ-vs-FRaZ grid once and is shared by the
// Fig 12, Fig 13 and Table VIII benchmarks.
func compare(b *testing.B) *exp.CompareResult {
	benchCompareOnce.Do(func() {
		benchCompare, benchCompareErr = exp.Compare(session(), exp.Apps, exp.CompressorNames, 1)
	})
	if benchCompareErr != nil {
		b.Fatal(benchCompareErr)
	}
	return benchCompare
}

func BenchmarkFig2AugmentationCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig2(session())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.InterpErrors["sz"], "sz-interp-err%")
		b.ReportMetric(100*r.InterpErrors["zfp"], "zfp-interp-err%")
	}
}

func BenchmarkFig3CrossDatasetRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig3Table1(session())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Ratios["sz"][0], "sz-nyx-ratio")
	}
}

func BenchmarkTable1FeatureValues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig3Table1(session())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Features[0].ValueRange, "nyx-range")
	}
}

func BenchmarkTable2FeatureCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Table2(session())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Corr["sz"][0], "sz-valuerange-corr")
		wins := 0.0
		for _, c := range exp.CompressorNames {
			if r.AdoptedBeatGradients(c) {
				wins++
			}
		}
		b.ReportMetric(wins, "adopted-beat-gradients/4")
	}
}

func BenchmarkTable3ModelSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Table3(session())
		if err != nil {
			b.Fatal(err)
		}
		if !r.RFRBest() {
			b.Log("warning: RFR not best in this run")
		}
	}
}

func BenchmarkSamplingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Sampling(session())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.ErrSampled, "sampled-err%")
		b.ReportMetric(100*r.ErrFull, "full-err%")
		if r.FeatTimeSampled > 0 {
			b.ReportMetric(float64(r.FeatTimeFull)/float64(r.FeatTimeSampled), "feat-speedup-x")
		}
	}
}

func BenchmarkTable4LambdaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Table4(session())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Err["nyx"]["sz"][0.15], "nyx-sz-λ0.15-err%")
	}
}

func BenchmarkFig7CompressibilityAdjustment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig7(session())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.AvgErrWith["sz"], "with-CA-err%")
		b.ReportMetric(100*r.AvgErrWithout["sz"], "without-CA-err%")
	}
}

func BenchmarkTable7CAValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Table7(session())
		if err != nil {
			b.Fatal(err)
		}
		p := r.Err["nyx"]["sz"]
		b.ReportMetric(100*p[0], "with-CA-err%")
		b.ReportMetric(100*p[1], "without-CA-err%")
	}
}

func BenchmarkFig89DatasetVariability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig89(session())
		if err != nil {
			b.Fatal(err)
		}
		for _, d := range r.Distances {
			b.ReportMetric(d, "hist-distance")
			break
		}
	}
}

func BenchmarkFig10Distortion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig10(session())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0][2], "tight-psnr-dB")
		b.ReportMetric(100*r.Rows[2][3], "loose-displaced%")
	}
}

func BenchmarkFig11ValidRange(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig11(session()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6TrainingTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Table6(session())
		if err != nil {
			b.Fatal(err)
		}
		st := r.Stats["nyx"]["sz"]
		b.ReportMetric(st.Total().Seconds(), "nyx-sz-train-s")
	}
}

func BenchmarkFig12AccuracyCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := compare(b)
		if r.Fig12String() == "" {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig13EstimationError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := compare(b)
		fx, fr := r.Averages()
		b.ReportMetric(100*fx, "fxrz-err%")
		b.ReportMetric(100*fr[6], "fraz6-err%")
		b.ReportMetric(100*fr[15], "fraz15-err%")
	}
}

func BenchmarkTable8AnalysisCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := compare(b)
		b.ReportMetric(r.SpeedupOverFRaZ(15), "speedup-x")
	}
}

func BenchmarkFig14CrossScope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Fig14(session())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Err["sz"][0], "fxrz-sz-err%")
		b.ReportMetric(100*r.Err["sz"][1], "fraz-sz-err%")
	}
}

func BenchmarkZFPRateAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.ZFPRate(session())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanInflation(), "rate-err-inflation-x")
	}
}

// BenchmarkTrainParallel measures end-to-end training (dominated by the
// stationary sweep) on a 64³ Nyx field at increasing worker-pool widths. On a
// multi-core runner the 4-worker case should be ≥ 2× faster than serial;
// BENCH_train.json records the baseline trajectory across PRs.
func BenchmarkTrainParallel(b *testing.B) {
	f, err := datagen.NyxField("baryon_density", 1, 1, 64)
	if err != nil {
		b.Fatal(err)
	}
	fields := []*grid.Field{f}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := fxrz.DefaultConfig()
				cfg.StationaryPoints = 8
				cfg.AugmentPerField = 50
				cfg.Trees = 20
				cfg.Parallelism = workers
				fw, err := fxrz.Train(fxrz.NewSZ(), fields, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(fw.Stats().StationarySweep.Seconds(), "sweep-s")
			}
		})
	}
}

func BenchmarkParallelDumping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := exp.Dump(session())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0][2], "gain-512ranks-x")
		b.ReportMetric(r.Rows[len(r.Rows)-1][2], "gain-4096ranks-x")
	}
}
