package fxrz_test

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
)

// regionField builds a field with the value mix that has historically broken
// predictors: smooth structure, noise, and (when hostile) NaN/Inf/huge values
// that force the sz escape path.
func regionField(t testing.TB, hostile bool, dims ...int) *fxrz.Field {
	t.Helper()
	f, err := fxrz.NewField("roi-prop", dims...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(len(dims))*31 + int64(f.Size())))
	for i := range f.Data {
		f.Data[i] = float32(math.Sin(float64(i)*0.021)) + 0.05*rng.Float32()
		if hostile {
			switch i % 97 {
			case 0:
				f.Data[i] = float32(math.NaN())
			case 13:
				f.Data[i] = float32(math.Inf(1))
			case 31:
				f.Data[i] = 1e30
			}
		}
	}
	return f
}

// sliceRegion extracts [lo,hi) from a full field sample by sample — an
// independent oracle for the region decoders.
func sliceRegion(t testing.TB, f *fxrz.Field, lo, hi []int) []float32 {
	t.Helper()
	shape := make([]int, len(lo))
	n := 1
	for d := range lo {
		shape[d] = hi[d] - lo[d]
		n *= shape[d]
	}
	out := make([]float32, 0, n)
	coord := append([]int(nil), lo...)
	for {
		out = append(out, f.At(coord...))
		d := len(coord) - 1
		for ; d >= 0; d-- {
			coord[d]++
			if coord[d] < hi[d] {
				break
			}
			coord[d] = lo[d]
		}
		if d < 0 {
			return out
		}
	}
}

func randomRegion(rng *rand.Rand, dims []int) (lo, hi []int) {
	lo = make([]int, len(dims))
	hi = make([]int, len(dims))
	for d, n := range dims {
		a, b := rng.Intn(n), rng.Intn(n)
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b+1
	}
	return lo, hi
}

// TestDecompressRegionProperty is the end-to-end property pin: for every
// codec, rank 1..4, hostile and benign data, raw and indexed blobs, and every
// worker width, DecompressRegionParallel of a random subvolume is bit-equal
// to the corresponding slice of the full decode.
func TestDecompressRegionProperty(t *testing.T) {
	shapes := [][]int{{41}, {17, 21}, {9, 11, 13}, {4, 5, 6, 7}}
	codecs := []struct {
		name string
		c    fxrz.Compressor
	}{
		{"sz", fxrz.NewSZ()},
		{"sz2", fxrz.NewSZ2()},
		{"zfp", fxrz.NewZFP()},
	}
	widths := []int{1, 2, runtime.NumCPU()}
	rng := rand.New(rand.NewSource(11))
	for _, dims := range shapes {
		for _, hostile := range []bool{false, true} {
			f := regionField(t, hostile, dims...)
			for _, cd := range codecs {
				blob, err := cd.c.Compress(f, 1e-3)
				if err != nil {
					t.Fatalf("%s dims=%v: %v", cd.name, dims, err)
				}
				indexed, err := fxrz.IndexBlob(blob)
				if err != nil {
					t.Fatalf("%s dims=%v: IndexBlob: %v", cd.name, dims, err)
				}
				full, err := fxrz.Decompress(blob)
				if err != nil {
					t.Fatal(err)
				}
				// Indexed full decode must match raw full decode bit for bit.
				ifull, err := fxrz.Decompress(indexed)
				if err != nil {
					t.Fatalf("%s dims=%v: indexed full decode: %v", cd.name, dims, err)
				}
				for i := range full.Data {
					if math.Float32bits(full.Data[i]) != math.Float32bits(ifull.Data[i]) {
						t.Fatalf("%s dims=%v: indexed full decode diverges at %d", cd.name, dims, i)
					}
				}
				for trial := 0; trial < 8; trial++ {
					lo, hi := randomRegion(rng, dims)
					want := sliceRegion(t, full, lo, hi)
					for _, blobKind := range []struct {
						kind string
						b    []byte
					}{{"raw", blob}, {"indexed", indexed}} {
						for _, w := range widths {
							got, err := fxrz.DecompressRegionParallel(blobKind.b, lo, hi, w)
							if err != nil {
								t.Fatalf("%s/%s dims=%v region=%v:%v w=%d: %v",
									cd.name, blobKind.kind, dims, lo, hi, w, err)
							}
							if len(got.Data) != len(want) {
								t.Fatalf("%s/%s dims=%v: region size %d, want %d",
									cd.name, blobKind.kind, dims, len(got.Data), len(want))
							}
							for i := range want {
								if math.Float32bits(got.Data[i]) != math.Float32bits(want[i]) {
									t.Fatalf("%s/%s dims=%v region=%v:%v w=%d sample %d: %x != %x",
										cd.name, blobKind.kind, dims, lo, hi, w, i,
										math.Float32bits(got.Data[i]), math.Float32bits(want[i]))
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestRegionReaderFacade exercises the exported lazy reader against the same
// oracle.
func TestRegionReaderFacade(t *testing.T) {
	f := regionField(t, false, 13, 10, 9)
	blob, err := fxrz.NewZFP().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := fxrz.IndexBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	r, err := fxrz.OpenReader(indexed)
	if err != nil {
		t.Fatal(err)
	}
	full, err := fxrz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 100; q++ {
		z, y, x := rng.Intn(13), rng.Intn(10), rng.Intn(9)
		got, err := r.At(z, y, x)
		if err != nil {
			t.Fatal(err)
		}
		if want := full.At(z, y, x); math.Float32bits(got) != math.Float32bits(want) {
			t.Fatalf("At(%d,%d,%d) = %v, want %v", z, y, x, got, want)
		}
	}
}
