package fxrz_test

import (
	"math"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
)

func trainFields(t *testing.T) []*fxrz.Field {
	t.Helper()
	var fields []*fxrz.Field
	for _, ts := range []int{1, 3, 5} {
		f, err := datagen.NyxField("baryon_density", 1, ts, 24)
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
	}
	return fields
}

func testField(t *testing.T) *fxrz.Field {
	t.Helper()
	f, err := datagen.NyxField("baryon_density", 2, 2, 24)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func quickConfig() fxrz.Config {
	cfg := fxrz.DefaultConfig()
	cfg.StationaryPoints = 12
	cfg.AugmentPerField = 60
	cfg.Trees = 40
	return cfg
}

func TestEndToEndFixedRatioSZ(t *testing.T) {
	fw, err := fxrz.Train(fxrz.NewSZ(), trainFields(t), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := testField(t)
	// Pick targets inside the valid ratio range, as the paper does (Fig 11).
	lo, hi := fw.ValidRatioRange(f)
	if !(hi > lo) || lo <= 0 {
		t.Fatalf("invalid ratio range [%v, %v]", lo, hi)
	}
	span := hi - lo
	var worst float64
	for _, tcr := range []float64{lo + 0.2*span, lo + 0.5*span, lo + 0.75*span} {
		blob, est, err := fw.CompressToRatio(f, tcr)
		if err != nil {
			t.Fatalf("tcr=%v: %v", tcr, err)
		}
		mcr := fxrz.Ratio(f, blob)
		relErr := math.Abs(mcr-tcr) / tcr
		if relErr > worst {
			worst = relErr
		}
		t.Logf("tcr=%v knob=%.4g mcr=%.1f err=%.1f%% extrap=%v", tcr, est.Knob, mcr, relErr*100, est.Extrapolating)
		// Round trip must still work at the chosen setting.
		g, err := fxrz.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		maxErr, err := fxrz.MaxAbsError(f, g)
		if err != nil {
			t.Fatal(err)
		}
		if maxErr > est.Knob*(1+1e-6) {
			t.Errorf("tcr=%v: error %g exceeds bound %g", tcr, maxErr, est.Knob)
		}
	}
	// Capability level 2 at miniature scale: generous bar; the evaluation
	// benches measure the paper-level accuracy at real scale.
	if worst > 0.6 {
		t.Errorf("worst estimation error %.0f%% too high", worst*100)
	}
}

func TestEndToEndBeatsFRaZCost(t *testing.T) {
	fw, err := fxrz.Train(fxrz.NewSZ(), trainFields(t), quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := testField(t)
	est, err := fw.EstimateConfig(f, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fxrz.SearchFRaZ(fxrz.NewSZ(), f, 50, fxrz.DefaultFRaZConfig(15))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompressorRuns < 2 {
		t.Fatalf("FRaZ ran the compressor only %d times", res.CompressorRuns)
	}
	if est.AnalysisTime() >= res.SearchTime {
		t.Errorf("FXRZ analysis (%v) not faster than FRaZ search (%v)", est.AnalysisTime(), res.SearchTime)
	}
}

func TestAllCodecsTrainAndEstimate(t *testing.T) {
	fields := trainFields(t)
	test := testField(t)
	for _, c := range fxrz.Compressors() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			cfg := quickConfig()
			fw, err := fxrz.Train(c, fields, cfg)
			if err != nil {
				t.Fatal(err)
			}
			blob, est, err := fw.CompressToRatio(test, 15)
			if err != nil {
				t.Fatal(err)
			}
			mcr := fxrz.Ratio(test, blob)
			if mcr <= 0 {
				t.Fatalf("ratio %v", mcr)
			}
			t.Logf("%s: knob=%.4g mcr=%.1f", c.Name(), est.Knob, mcr)
			if _, err := fxrz.Decompress(blob); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"sz", "sz2", "zfp", "zfp-rate", "fpzip", "mgard"} {
		c, err := fxrz.ByName(name)
		if err != nil || c.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := fxrz.ByName("gzip"); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestDecompressDispatch(t *testing.T) {
	f, err := fxrz.NewField("t", 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		f.Data[i] = float32(i)
	}
	for _, c := range fxrz.Compressors() {
		knob := 0.01
		if c.Name() == "fpzip" {
			knob = 16
		}
		blob, err := c.Compress(f, knob)
		if err != nil {
			t.Fatal(err)
		}
		g, err := fxrz.Decompress(blob)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if g.Size() != f.Size() {
			t.Fatalf("%s: size mismatch", c.Name())
		}
	}
	if _, err := fxrz.Decompress(nil); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := fxrz.Decompress([]byte{0x99}); err == nil {
		t.Error("unknown magic accepted")
	}
}

func TestFieldFromData(t *testing.T) {
	data := make([]float32, 12)
	f, err := fxrz.FieldFromData("x", data, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 12 {
		t.Errorf("size %d", f.Size())
	}
	if _, err := fxrz.FieldFromData("x", data, 5, 5); err == nil {
		t.Error("mismatched dims accepted")
	}
}
