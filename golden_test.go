package fxrz_test

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/fieldio"
)

// The golden fixtures under testdata/golden pin the on-disk formats: every
// codec's stream layout, the fxrzfield container, and the brick-store
// archive. These tests fail when a change alters either the bytes a codec
// emits or the field it reconstructs from old bytes — both of which orphan
// archives users have already written. If the change is intentional (a
// format revision), regenerate with `go run ./cmd/genfixtures` and say so in
// the commit; if not, it is a compatibility bug this test just caught.

// goldenField reproduces the exact field cmd/genfixtures compressed.
func goldenField(t *testing.T) *fxrz.Field {
	t.Helper()
	f, err := datagen.NyxField("baryon_density", 1, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "golden", name))
	if err != nil {
		t.Fatalf("golden fixture missing (run `go run ./cmd/genfixtures`): %v", err)
	}
	return b
}

// sameBits requires two fields to agree on every sample bit for bit.
func sameBits(t *testing.T, label string, want, got *fxrz.Field) {
	t.Helper()
	if len(want.Data) != len(got.Data) {
		t.Fatalf("%s: %d samples, want %d", label, len(got.Data), len(want.Data))
	}
	for i := range want.Data {
		if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
			t.Fatalf("%s: sample %d = %x, want %x (reconstruction drift)",
				label, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
		}
	}
}

func TestGoldenFieldContainer(t *testing.T) {
	blob := readGolden(t, "field.fxrzfield")
	// Old container bytes must still parse to the exact source field...
	got, err := fieldio.Read(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "container", goldenField(t), got)
	// ...and today's writer must still emit the same bytes.
	var buf bytes.Buffer
	if err := fieldio.Write(&buf, goldenField(t)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), blob) {
		t.Error("fxrzfield container writer drifted from the golden bytes")
	}
}

func TestGoldenStreams(t *testing.T) {
	knobs := map[string]float64{
		"sz": 1e-3, "sz2": 1e-3, "zfp": 1e-3, "zfp-rate": 8, "fpzip": 16, "mgard": 1e-3,
	}
	f := goldenField(t)
	for name, knob := range knobs {
		t.Run(name, func(t *testing.T) {
			blob := readGolden(t, name+".blob")
			reconBytes := readGolden(t, name+".recon")
			want, err := fieldio.Read(bytes.NewReader(reconBytes))
			if err != nil {
				t.Fatal(err)
			}

			// Decode compatibility: the committed stream must reconstruct the
			// committed field, through both the magic-byte dispatcher and the
			// parallel decoder.
			got, err := fxrz.Decompress(blob)
			if err != nil {
				t.Fatalf("golden stream no longer decodes: %v", err)
			}
			sameBits(t, "serial decode", want, got)
			got, err = fxrz.DecompressParallel(blob, 3)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, "parallel decode", want, got)

			// Encode stability: today's encoder must reproduce the committed
			// stream byte for byte from the same field and knob.
			c, err := fxrz.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := c.Compress(f, knob)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fresh, blob) {
				t.Errorf("%s encoder drifted: emits %d bytes differing from the %d-byte golden stream",
					name, len(fresh), len(blob))
			}
		})
	}
}

// TestGoldenIndexedStreams pins the indexed-container format: committed
// indexed blobs must full-decode to the same reconstruction as their raw
// counterparts, region decode out of them must match the corresponding slice,
// and re-indexing today must reproduce the committed bytes. It also pins the
// compatibility promise in the other direction: pre-index blobs (the raw
// golden streams) must region-decode through the no-index fallback paths.
func TestGoldenIndexedStreams(t *testing.T) {
	lo, hi := []int{4, 4, 4}, []int{12, 12, 12}
	for _, name := range []string{"sz", "zfp"} {
		t.Run(name, func(t *testing.T) {
			indexed := readGolden(t, name+"-indexed.blob")
			raw := readGolden(t, name+".blob")
			reconBytes := readGolden(t, name+".recon")
			want, err := fieldio.Read(bytes.NewReader(reconBytes))
			if err != nil {
				t.Fatal(err)
			}

			// Full decode of the indexed container, serial and parallel, must
			// be bit-identical to the raw stream's pinned reconstruction.
			got, err := fxrz.Decompress(indexed)
			if err != nil {
				t.Fatalf("golden indexed stream no longer decodes: %v", err)
			}
			sameBits(t, "indexed serial decode", want, got)
			got, err = fxrz.DecompressParallel(indexed, 3)
			if err != nil {
				t.Fatal(err)
			}
			sameBits(t, "indexed parallel decode", want, got)

			// Region decode — from the indexed container (seeking path) and
			// from the raw pre-index blob (fallback path) — must both match
			// the slice of the pinned reconstruction.
			for _, src := range []struct {
				kind string
				blob []byte
			}{{"indexed", indexed}, {"pre-index", raw}} {
				region, err := fxrz.DecompressRegion(src.blob, lo, hi)
				if err != nil {
					t.Fatalf("%s region decode: %v", src.kind, err)
				}
				i := 0
				for z := lo[0]; z < hi[0]; z++ {
					for y := lo[1]; y < hi[1]; y++ {
						for x := lo[2]; x < hi[2]; x++ {
							wantV := want.At(z, y, x)
							if math.Float32bits(region.Data[i]) != math.Float32bits(wantV) {
								t.Fatalf("%s region sample (%d,%d,%d) = %x, want %x", src.kind,
									z, y, x, math.Float32bits(region.Data[i]), math.Float32bits(wantV))
							}
							i++
						}
					}
				}
			}

			// Index-build stability: re-indexing the committed raw stream must
			// reproduce the committed indexed container byte for byte.
			fresh, err := fxrz.IndexBlob(raw)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fresh, indexed) {
				t.Errorf("%s index build drifted: emits %d bytes differing from the %d-byte golden container",
					name, len(fresh), len(indexed))
			}
		})
	}
}

func TestGoldenBrickStore(t *testing.T) {
	blob := readGolden(t, "sz-bricks.store")
	reconBytes := readGolden(t, "sz-bricks.recon")
	want, err := fieldio.Read(bytes.NewReader(reconBytes))
	if err != nil {
		t.Fatal(err)
	}
	st, err := fxrz.LoadBricks(fxrz.NewSZ(), blob)
	if err != nil {
		t.Fatalf("golden brick store no longer loads: %v", err)
	}
	got, err := st.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "brick store", want, got)

	// A region read out of the old archive must match the same region of
	// the full reconstruction — random access is part of the pinned format.
	region, err := st.ReadRegion([]int{4, 4, 4}, []int{8, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			for z := 0; z < 8; z++ {
				wantV := want.Data[(x+4)*16*16+(y+4)*16+(z+4)]
				gotV := region.Data[x*8*8+y*8+z]
				if math.Float32bits(wantV) != math.Float32bits(gotV) {
					t.Fatalf("region sample (%d,%d,%d) = %x, want %x", x, y, z,
						math.Float32bits(gotV), math.Float32bits(wantV))
				}
			}
		}
	}

	fresh, err := fxrz.BuildBricks(fxrz.NewSZ(), goldenField(t), 8, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.Marshal(), blob) {
		t.Error("brick-store marshal drifted from the golden bytes")
	}
}
