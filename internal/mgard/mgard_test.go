package mgard

import (
	"math"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/compress/compresstest"
	"github.com/fxrz-go/fxrz/internal/grid"
)

func TestRoundTripRespectsBound(t *testing.T) {
	compresstest.RoundTrip(t, New(), []float64{1e-4, 1e-2, 0.5, 10},
		func(f *grid.Field, knob float64) float64 { return knob })
}

func TestRatioMonotone(t *testing.T) {
	compresstest.MonotoneRatio(t, New(), []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}, true)
}

func TestRejectsCorrupt(t *testing.T) {
	compresstest.RejectsCorrupt(t, New(), 1e-3)
}

func TestInvalidErrorBound(t *testing.T) {
	f := grid.MustNew("t", 8)
	for _, eb := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := New().Compress(f, eb); err == nil {
			t.Errorf("eb=%v accepted", eb)
		}
	}
}

func TestHierarchyVisitsEveryPointOnce(t *testing.T) {
	for _, dims := range [][]int{{16}, {8, 8}, {7, 9}, {8, 6, 10}, {5, 4, 3, 6}, {1, 7}, {2, 2, 2}} {
		n := 1
		for _, d := range dims {
			n *= d
		}
		seen := make([]int, n)
		recon := make([]float32, n)
		visitHierarchy(dims, func(idx int, pred func() float64) {
			if idx < 0 || idx >= n {
				t.Fatalf("dims %v: index %d out of range", dims, idx)
			}
			seen[idx]++
			_ = pred() // must not panic and must only touch visited points
		}, recon)
		for i, s := range seen {
			if s != 1 {
				t.Fatalf("dims %v: point %d visited %d times", dims, i, s)
			}
		}
	}
}

func TestPredictorsOnlyUseVisitedPoints(t *testing.T) {
	dims := []int{9, 12}
	n := 108
	recon := make([]float32, n)
	visited := make([]bool, n)
	// Poison unvisited entries: if a predictor reads one, the prediction will
	// contain the poison value and the check below fails.
	const poison = 1e30
	for i := range recon {
		recon[i] = poison
	}
	visitHierarchy(dims, func(idx int, pred func() float64) {
		p := pred()
		if math.Abs(p) > 1e29 {
			t.Fatalf("predictor for %d read an unvisited point (pred=%g)", idx, p)
		}
		visited[idx] = true
		recon[idx] = 1 // any non-poison value
	}, recon)
	for i, v := range visited {
		if !v {
			t.Fatalf("point %d never visited", i)
		}
	}
}

func TestSmoothFieldHighRatio(t *testing.T) {
	f := grid.MustNew("s", 48, 48, 48)
	for z := 0; z < 48; z++ {
		for y := 0; y < 48; y++ {
			for x := 0; x < 48; x++ {
				f.Set(float32(math.Sin(float64(z)/16)+math.Cos(float64(y)/16)+math.Sin(float64(x)/16)), z, y, x)
			}
		}
	}
	r, err := compress.CompressRatio(New(), f, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r < 15 {
		t.Errorf("smooth field ratio %.1f, want >= 15", r)
	}
}

func TestConstantFieldExtremeRatio(t *testing.T) {
	f := grid.MustNew("c", 32, 32, 32)
	f.Fill(-7.5)
	r, err := compress.CompressRatio(New(), f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if r < 500 {
		t.Errorf("constant field ratio %.1f, want >= 500", r)
	}
}
