// Package mgard implements an MGARD+-style multilevel error-controlled lossy
// compressor. MGARD+ (Liang et al., 2021) accelerates MGARD by replacing its
// L2-projection multigrid decomposition with interpolation-based multilevel
// prediction plus SZ-style quantization and entropy coding; this package
// follows that design:
//
//  1. A dyadic hierarchy of grids G_S ⊃ G_{S/2} ⊃ … ⊃ G_1 is built over the
//     field (S = 2^levels).
//  2. The coarsest grid is quantized directly.
//  3. Each refinement level predicts the newly introduced points by cubic
//     (falling back to linear) interpolation along one dimension at a time
//     from already-reconstructed coarser points, and quantizes the
//     prediction corrections against the absolute error bound.
//  4. The quantization codes go through the shared LZ+Huffman back end.
//
// Every point is quantized exactly once against a prediction built from
// reconstructed values, so |decompressed - original| <= eb holds pointwise.
package mgard

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
)

const (
	intervals = 1 << 16
	radius    = intervals / 2
	maxLevels = 6
)

// Compressor is the MGARD+-like codec. The zero value is ready to use.
type Compressor struct{}

// New returns an MGARD+-like compressor.
func New() *Compressor { return &Compressor{} }

// Name implements compress.Compressor.
func (*Compressor) Name() string { return "mgard" }

// Axis implements compress.Compressor.
func (*Compressor) Axis() compress.Axis {
	return compress.Axis{Kind: compress.AbsErrorBound, Min: 1e-12, Max: 1e6}
}

// Compress implements compress.Compressor.
func (*Compressor) Compress(f *grid.Field, eb float64) ([]byte, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("mgard: error bound must be a positive finite number, got %v", eb)
	}
	n := f.Size()
	codes := make([]uint16, 0, n)
	var raw []float32
	recon := make([]float32, n)
	twoEB := 2 * eb

	visitHierarchy(f.Dims, func(idx int, pred func() float64) {
		v := float64(f.Data[idx])
		p := pred()
		q := math.Round((v - p) / twoEB)
		if !math.IsNaN(q) && !math.IsInf(q, 0) {
			if code := int64(q) + radius; code > 0 && code < intervals {
				rec := float32(p + twoEB*q)
				if math.Abs(float64(rec)-v) <= eb {
					codes = append(codes, uint16(code))
					recon[idx] = rec
					return
				}
			}
		}
		codes = append(codes, 0)
		raw = append(raw, f.Data[idx])
		recon[idx] = f.Data[idx]
	}, recon)

	codeBytes := make([]byte, 2*len(codes))
	for i, c := range codes {
		binary.LittleEndian.PutUint16(codeBytes[2*i:], c)
	}
	packed, err := entropy.CompressBytes(codeBytes)
	if err != nil {
		return nil, fmt.Errorf("mgard: encode codes: %w", err)
	}
	out := compress.AppendHeader(nil, compress.Header{Magic: compress.MagicMGARD, Name: f.Name, Dims: f.Dims, Knob: eb})
	out = binary.AppendUvarint(out, uint64(len(packed)))
	out = append(out, packed...)
	out = binary.AppendUvarint(out, uint64(len(raw)))
	for _, v := range raw {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	return out, nil
}

// Decompress implements compress.Compressor.
func (*Compressor) Decompress(blob []byte) (*grid.Field, error) {
	h, payload, err := compress.ParseHeader(blob, compress.MagicMGARD)
	if err != nil {
		return nil, fmt.Errorf("mgard: %w", err)
	}
	if _, err := compress.CheckElems(h.Dims, len(payload)); err != nil {
		return nil, fmt.Errorf("mgard: %w", err)
	}
	pcLen, k := binary.Uvarint(payload)
	if k <= 0 || uint64(len(payload)-k) < pcLen {
		return nil, fmt.Errorf("mgard: %w: code section", compress.ErrCorrupt)
	}
	payload = payload[k:]
	codeBytes, err := entropy.DecompressBytes(payload[:pcLen])
	if err != nil {
		return nil, fmt.Errorf("mgard: decode codes: %w", err)
	}
	payload = payload[pcLen:]
	nraw, k := binary.Uvarint(payload)
	if k <= 0 || uint64(len(payload)-k) < 4*nraw {
		return nil, fmt.Errorf("mgard: %w: raw section", compress.ErrCorrupt)
	}
	payload = payload[k:]

	f, err := grid.New(h.Name, h.Dims...)
	if err != nil {
		return nil, fmt.Errorf("mgard: %w", err)
	}
	if len(codeBytes) != 2*f.Size() {
		return nil, fmt.Errorf("mgard: %w: %d code bytes for %d points", compress.ErrCorrupt, len(codeBytes), f.Size())
	}
	eb := h.Knob
	twoEB := 2 * eb
	pos, rawPos := 0, 0
	var visitErr error
	visitHierarchy(h.Dims, func(idx int, pred func() float64) {
		if visitErr != nil {
			return
		}
		code := binary.LittleEndian.Uint16(codeBytes[2*pos:])
		pos++
		if code == 0 {
			if uint64(rawPos) >= nraw {
				visitErr = fmt.Errorf("mgard: %w: raw pool exhausted", compress.ErrCorrupt)
				return
			}
			f.Data[idx] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*rawPos:]))
			rawPos++
			return
		}
		f.Data[idx] = float32(pred() + twoEB*float64(int(code)-radius))
	}, f.Data)
	if visitErr != nil {
		return nil, visitErr
	}
	return f, nil
}

// visitHierarchy walks every grid point exactly once, coarsest level first,
// invoking fn with the point's linear index and a predictor closure that
// interpolates from already-visited points in recon. The traversal order and
// the predictors are fully determined by the dims, so encoder and decoder
// stay in lockstep.
func visitHierarchy(dims []int, fn func(idx int, pred func() float64), recon []float32) {
	nd := len(dims)
	strides := make([]int, nd)
	st := 1
	for i := nd - 1; i >= 0; i-- {
		strides[i] = st
		st *= dims[i]
	}
	levels := pickLevels(dims)
	base := 1 << uint(levels)

	zero := func() float64 { return 0 }

	// Coarsest grid: all coords multiples of base, predicted as zero.
	visitLattice(dims, func(coord []int) bool {
		for _, c := range coord {
			if c%base != 0 {
				return false
			}
		}
		return true
	}, strides, func(idx int, coord []int) { fn(idx, zero) })

	// Refinement: halve the stride each level; within a level, pass along
	// each dimension in turn (SZ3/MGARD+ style interpolation sweeps).
	for s := base; s >= 2; s /= 2 {
		h := s / 2
		for d := 0; d < nd; d++ {
			dd := d
			hh := h
			visitLattice(dims, func(coord []int) bool {
				// New points for this pass: odd multiple of h along d,
				// multiples of h in earlier dims, multiples of s in later.
				if coord[dd]%s != hh {
					return false
				}
				for e := 0; e < nd; e++ {
					if e == dd {
						continue
					}
					step := s
					if e < dd {
						step = hh
					}
					if coord[e]%step != 0 {
						return false
					}
				}
				return true
			}, strides, func(idx int, coord []int) {
				fn(idx, interp1D(recon, coord, dims, strides, dd, hh))
			})
		}
	}
}

// interp1D builds the predictor for a point: cubic spline interpolation along
// dimension d when the ±h and ±3h neighbors exist (the paper's equation (3)
// stencil), linear interpolation when only ±h exist, and nearest-neighbor
// extrapolation at the boundary.
func interp1D(recon []float32, coord, dims, strides []int, d, h int) func() float64 {
	c := coord[d]
	idx := 0
	for i, cc := range coord {
		idx += cc * strides[i]
	}
	s := strides[d]
	switch {
	case c >= 3*h && c+3*h < dims[d]:
		i0, i1, i2, i3 := idx-3*h*s, idx-h*s, idx+h*s, idx+3*h*s
		return func() float64 {
			return -1.0/16*float64(recon[i0]) + 9.0/16*float64(recon[i1]) +
				9.0/16*float64(recon[i2]) - 1.0/16*float64(recon[i3])
		}
	case c+h < dims[d]:
		i1, i2 := idx-h*s, idx+h*s
		return func() float64 { return (float64(recon[i1]) + float64(recon[i2])) / 2 }
	default:
		i1 := idx - h*s
		return func() float64 { return float64(recon[i1]) }
	}
}

// visitLattice walks all coordinates in row-major order and calls visit for
// the ones accepted by keep.
func visitLattice(dims []int, keep func(coord []int) bool, strides []int, visit func(idx int, coord []int)) {
	nd := len(dims)
	coord := make([]int, nd)
	for {
		if keep(coord) {
			idx := 0
			for i, c := range coord {
				idx += c * strides[i]
			}
			visit(idx, coord)
		}
		d := nd - 1
		for d >= 0 {
			coord[d]++
			if coord[d] < dims[d] {
				break
			}
			coord[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}

// pickLevels chooses the hierarchy depth: deep enough that the coarse grid is
// sparse, shallow enough that every dimension keeps at least two coarse
// points when possible.
func pickLevels(dims []int) int {
	minDim := dims[0]
	for _, d := range dims[1:] {
		if d < minDim {
			minDim = d
		}
	}
	l := 0
	for l < maxLevels && (1<<uint(l+1)) < minDim {
		l++
	}
	return l
}

// elemCount multiplies dims without allocating (header sanity checks).
func elemCount(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}
