// Package brick implements a chunked compressed store with random access:
// a field is partitioned into fixed-size bricks, each compressed
// independently, so analysis can decompress just the region it touches —
// the access pattern ZFP's compressed arrays serve, generalised to every
// codec in this repository. Combined with FXRZ, the brick knob can be
// chosen for a target overall ratio without trial compression.
package brick

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
)

// Store holds one field compressed as independent bricks.
type Store struct {
	name      string
	dims      []int
	brickSide int
	codec     compress.Compressor
	// blobs are the per-brick compressed streams, in row-major brick order.
	blobs [][]byte
	// origins/shapes describe each brick's region (clipped at boundaries).
	origins [][]int
	shapes  [][]int
}

// Build compresses the field brick by brick at the given knob.
func Build(c compress.Compressor, f *grid.Field, brickSide int, knob float64) (*Store, error) {
	if brickSide < 2 {
		return nil, fmt.Errorf("brick: side %d too small", brickSide)
	}
	s := &Store{
		name: f.Name, dims: append([]int(nil), f.Dims...),
		brickSide: brickSide, codec: c,
	}
	var buildErr error
	grid.VisitBlocks(f, brickSide, func(b grid.Block, vals []float32) {
		if buildErr != nil {
			return
		}
		sub, err := grid.FromData(f.Name, append([]float32(nil), vals...), b.Shape...)
		if err != nil {
			buildErr = err
			return
		}
		blob, err := c.Compress(sub, knob)
		if err != nil {
			buildErr = fmt.Errorf("brick: compressing brick at %v: %w", b.Origin, err)
			return
		}
		s.blobs = append(s.blobs, blob)
		s.origins = append(s.origins, append([]int(nil), b.Origin...))
		s.shapes = append(s.shapes, append([]int(nil), b.Shape...))
	})
	if buildErr != nil {
		return nil, buildErr
	}
	return s, nil
}

// Bricks returns the number of bricks.
func (s *Store) Bricks() int { return len(s.blobs) }

// Dims returns the field geometry of the store.
func (s *Store) Dims() []int { return append([]int(nil), s.dims...) }

// CompressedBytes returns the total compressed payload size.
func (s *Store) CompressedBytes() int {
	n := 0
	for _, b := range s.blobs {
		n += len(b)
	}
	return n
}

// Ratio returns the overall compression ratio (excluding in-memory index).
func (s *Store) Ratio() float64 {
	raw := 4
	for _, d := range s.dims {
		raw *= d
	}
	cb := s.CompressedBytes()
	if cb == 0 {
		return 0
	}
	return float64(raw) / float64(cb)
}

// ReadBrick decompresses one brick by index.
func (s *Store) ReadBrick(i int) (*grid.Field, []int, error) {
	if i < 0 || i >= len(s.blobs) {
		return nil, nil, fmt.Errorf("brick: index %d out of range [0, %d)", i, len(s.blobs))
	}
	f, err := s.codec.Decompress(s.blobs[i])
	if err != nil {
		return nil, nil, fmt.Errorf("brick: decompressing brick %d: %w", i, err)
	}
	return f, s.origins[i], nil
}

// checkRegion validates a region request against the store geometry.
func (s *Store) checkRegion(origin, shape []int) error {
	nd := len(s.dims)
	if len(origin) != nd || len(shape) != nd {
		return errors.New("brick: origin/shape dimensionality mismatch")
	}
	for d := 0; d < nd; d++ {
		if origin[d] < 0 || shape[d] <= 0 || origin[d]+shape[d] > s.dims[d] {
			return fmt.Errorf("brick: region out of bounds in dim %d", d)
		}
	}
	return nil
}

// VisitRegion decodes each brick intersecting [origin, origin+shape) and
// calls fn once per brick with the brick's global origin and a
// zero-allocation iterator (grid.RegionIter) positioned over the
// intersection in the brick's local coordinates — global coordinate =
// iterator coordinate + brickOrigin. This is the streaming spine under
// ReadRegion, for callers that aggregate or forward samples rather than
// materialise the sub-box. fn returning an error stops the walk.
func (s *Store) VisitRegion(origin, shape []int, fn func(brickOrigin []int, it *grid.RegionIter) error) error {
	if err := s.checkRegion(origin, shape); err != nil {
		return err
	}
	nd := len(s.dims)
	lo := make([]int, nd)
	hi := make([]int, nd)
	touched := 0
	for i := range s.blobs {
		if !intersects(s.origins[i], s.shapes[i], origin, shape) {
			continue
		}
		bf, borigin, err := s.ReadBrick(i)
		if err != nil {
			return err
		}
		touched++
		// Clip the request to this brick, in brick-local coordinates.
		for d := 0; d < nd; d++ {
			lo[d] = maxI(origin[d], borigin[d]) - borigin[d]
			hi[d] = minI(origin[d]+shape[d], borigin[d]+bf.Dims[d]) - borigin[d]
		}
		it, err := bf.IterRegion(lo, hi)
		if err != nil {
			return fmt.Errorf("brick: brick %d intersection: %w", i, err)
		}
		if err := fn(borigin, it); err != nil {
			return err
		}
	}
	if touched == 0 {
		return errors.New("brick: region matched no bricks (corrupt index)")
	}
	obs.Add("brick/region_bricks_read", int64(touched))
	obs.Add("brick/region_bricks_skipped", int64(len(s.blobs)-touched))
	return nil
}

// ReadRegion reconstructs an arbitrary sub-box [origin, origin+shape),
// decompressing only the bricks that intersect it.
func (s *Store) ReadRegion(origin, shape []int) (*grid.Field, error) {
	if err := s.checkRegion(origin, shape); err != nil {
		return nil, err
	}
	out, err := grid.New(s.name+"/region", shape...)
	if err != nil {
		return nil, err
	}
	outStrides := out.Strides()
	err = s.VisitRegion(origin, shape, func(borigin []int, it *grid.RegionIter) error {
		for it.Next() {
			c := it.Coord()
			oi := 0
			for d := range c {
				oi += (c[d] + borigin[d] - origin[d]) * outStrides[d]
			}
			out.Data[oi] = it.Value()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RegionByteRanges reports, for each brick intersecting [origin,
// origin+shape), the half-open byte range its compressed stream (including
// its length varint) occupies in the Marshal layout. This is the brick
// analogue of the codec offset indexes: the length-prefixed chunk framing is
// itself the persisted index, so the ranges are derived rather than stored
// twice.
func (s *Store) RegionByteRanges(origin, shape []int) ([][2]int, error) {
	if err := s.checkRegion(origin, shape); err != nil {
		return nil, err
	}
	off := s.headerSize()
	var ranges [][2]int
	for i, b := range s.blobs {
		n := uvarintLen(uint64(len(b))) + len(b)
		if intersects(s.origins[i], s.shapes[i], origin, shape) {
			ranges = append(ranges, [2]int{off, off + n})
		}
		off += n
	}
	return ranges, nil
}

// headerSize returns the byte length of the Marshal header (everything
// before the first brick stream's length varint).
func (s *Store) headerSize() int {
	n := 8 + 1 + len(s.name)%256 + 1
	for _, d := range s.dims {
		n += uvarintLen(uint64(d))
	}
	n += uvarintLen(uint64(s.brickSide))
	n += uvarintLen(uint64(len(s.blobs)))
	return n
}

// MarshaledSize returns len(s.Marshal()) without building the bytes — the
// set-level byte-range planner uses it to offset each member's ranges into
// the concatenated layout.
func (s *Store) MarshaledSize() int {
	n := s.headerSize()
	for _, b := range s.blobs {
		n += uvarintLen(uint64(len(b))) + len(b)
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// ReadAll reconstructs the whole field.
func (s *Store) ReadAll() (*grid.Field, error) {
	origin := make([]int, len(s.dims))
	f, err := s.ReadRegion(origin, s.dims)
	if err != nil {
		return nil, err
	}
	f.Name = s.name
	return f, nil
}

func intersects(ao, as, bo, bs []int) bool {
	for d := range ao {
		if ao[d]+as[d] <= bo[d] || bo[d]+bs[d] <= ao[d] {
			return false
		}
	}
	return true
}

// Marshal serialises the store (index + streams) for persistence.
func (s *Store) Marshal() []byte {
	out := []byte("FXRZBRK1")
	out = append(out, byte(len(s.name)%256))
	out = append(out, s.name[:len(s.name)%256]...)
	out = append(out, byte(len(s.dims)))
	for _, d := range s.dims {
		out = binary.AppendUvarint(out, uint64(d))
	}
	out = binary.AppendUvarint(out, uint64(s.brickSide))
	out = binary.AppendUvarint(out, uint64(len(s.blobs)))
	for _, b := range s.blobs {
		out = binary.AppendUvarint(out, uint64(len(b)))
		out = append(out, b...)
	}
	return out
}

// Unmarshal restores a store persisted with Marshal; the codec must be the
// one the store was built with (its magic is validated on first read).
func Unmarshal(c compress.Compressor, blob []byte) (*Store, error) {
	if len(blob) < 8 || string(blob[:8]) != "FXRZBRK1" {
		return nil, errors.New("brick: not a brick store")
	}
	blob = blob[8:]
	if len(blob) < 1 {
		return nil, errors.New("brick: truncated name")
	}
	nameLen := int(blob[0])
	blob = blob[1:]
	if len(blob) < nameLen+1 {
		return nil, errors.New("brick: truncated header")
	}
	s := &Store{name: string(blob[:nameLen]), codec: c}
	blob = blob[nameLen:]
	nd := int(blob[0])
	blob = blob[1:]
	if nd == 0 || nd > grid.MaxDims {
		return nil, fmt.Errorf("brick: bad dims count %d", nd)
	}
	for i := 0; i < nd; i++ {
		d, k := binary.Uvarint(blob)
		if k <= 0 || d == 0 {
			return nil, errors.New("brick: bad dim")
		}
		s.dims = append(s.dims, int(d))
		blob = blob[k:]
	}
	side, k := binary.Uvarint(blob)
	if k <= 0 || side < 2 {
		return nil, errors.New("brick: bad brick side")
	}
	s.brickSide = int(side)
	blob = blob[k:]
	count, k := binary.Uvarint(blob)
	if k <= 0 {
		return nil, errors.New("brick: bad brick count")
	}
	blob = blob[k:]
	for i := uint64(0); i < count; i++ {
		n, k := binary.Uvarint(blob)
		if k <= 0 || uint64(len(blob)-k) < n {
			return nil, fmt.Errorf("brick: truncated brick %d", i)
		}
		blob = blob[k:]
		s.blobs = append(s.blobs, blob[:n:n])
		blob = blob[n:]
	}
	// Rebuild brick geometry from dims + side (must match Build's row-major
	// block order) without materialising the field.
	visitOrigins(s.dims, s.brickSide, func(origin []int) {
		shape := make([]int, nd)
		for d := range shape {
			shape[d] = s.brickSide
			if origin[d]+shape[d] > s.dims[d] {
				shape[d] = s.dims[d] - origin[d]
			}
		}
		s.origins = append(s.origins, append([]int(nil), origin...))
		s.shapes = append(s.shapes, shape)
	})
	if len(s.origins) != len(s.blobs) {
		return nil, fmt.Errorf("brick: %d streams for %d bricks", len(s.blobs), len(s.origins))
	}
	return s, nil
}

// IsStore reports whether blob begins with the brick store magic.
func IsStore(blob []byte) bool {
	return len(blob) >= 8 && string(blob[:8]) == "FXRZBRK1"
}

// UnmarshalAuto restores a persisted store, detecting the codec from the
// magic byte of the first brick stream via resolve. The Marshal layout does
// not record the codec, so callers that don't know it out of band (e.g. the
// region-decode dispatcher) use this instead of Unmarshal.
func UnmarshalAuto(resolve func(magic byte) (compress.Compressor, error), blob []byte) (*Store, error) {
	s, err := Unmarshal(nil, blob)
	if err != nil {
		return nil, err
	}
	if len(s.blobs) == 0 || len(s.blobs[0]) == 0 {
		return nil, errors.New("brick: empty store, cannot detect codec")
	}
	c, err := resolve(s.blobs[0][0])
	if err != nil {
		return nil, fmt.Errorf("brick: %w", err)
	}
	s.codec = c
	return s, nil
}

// visitOrigins iterates brick origins in the same row-major order
// grid.VisitBlocks uses.
func visitOrigins(dims []int, side int, fn func(origin []int)) {
	nd := len(dims)
	origin := make([]int, nd)
	for {
		fn(origin)
		d := nd - 1
		for d >= 0 {
			origin[d] += side
			if origin[d] < dims[d] {
				break
			}
			origin[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
