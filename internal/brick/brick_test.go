package brick

import (
	"math"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/sz"
	"github.com/fxrz-go/fxrz/internal/zfp"
)

func sampleField() *grid.Field {
	f := grid.MustNew("s", 20, 24, 28)
	for z := 0; z < 20; z++ {
		for y := 0; y < 24; y++ {
			for x := 0; x < 28; x++ {
				f.Set(float32(math.Sin(float64(z)/4)*math.Cos(float64(y)/5)+0.1*math.Sin(float64(x))), z, y, x)
			}
		}
	}
	return f
}

func TestBuildAndReadAll(t *testing.T) {
	f := sampleField()
	const eb = 1e-3
	for _, c := range []compress.Compressor{sz.New(), zfp.New()} {
		st, err := Build(c, f, 8, eb)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		wantBricks := 3 * 3 * 4 // ceil(20/8)·ceil(24/8)·ceil(28/8)
		if st.Bricks() != wantBricks {
			t.Errorf("%s: %d bricks, want %d", c.Name(), st.Bricks(), wantBricks)
		}
		got, err := st.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		maxErr, err := compress.MaxAbsError(f, got)
		if err != nil {
			t.Fatal(err)
		}
		if maxErr > eb*(1+1e-6) {
			t.Errorf("%s: max error %v exceeds bound", c.Name(), maxErr)
		}
		if st.Ratio() <= 1 {
			t.Errorf("%s: ratio %v", c.Name(), st.Ratio())
		}
	}
}

func TestReadRegionMatchesFull(t *testing.T) {
	f := sampleField()
	st, err := Build(sz.New(), f, 8, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := st.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][2][]int{
		{{0, 0, 0}, {8, 8, 8}},    // one brick
		{{4, 4, 4}, {8, 8, 8}},    // straddles 8 bricks
		{{17, 21, 25}, {3, 3, 3}}, // boundary bricks
		{{0, 0, 0}, {20, 24, 28}}, // everything
		{{10, 0, 5}, {1, 24, 1}},  // pencil across y
	}
	for _, tc := range cases {
		origin, shape := tc[0], tc[1]
		region, err := st.ReadRegion(origin, shape)
		if err != nil {
			t.Fatalf("region %v+%v: %v", origin, shape, err)
		}
		for i := 0; i < region.Size(); i++ {
			c := region.Coord(i)
			gc := []int{c[0] + origin[0], c[1] + origin[1], c[2] + origin[2]}
			if region.Data[i] != full.At(gc...) {
				t.Fatalf("region %v+%v: mismatch at %v", origin, shape, c)
			}
		}
	}
}

func TestReadRegionValidation(t *testing.T) {
	st, err := Build(sz.New(), sampleField(), 8, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadRegion([]int{0, 0}, []int{4, 4}); err == nil {
		t.Error("wrong dimensionality accepted")
	}
	if _, err := st.ReadRegion([]int{-1, 0, 0}, []int{4, 4, 4}); err == nil {
		t.Error("negative origin accepted")
	}
	if _, err := st.ReadRegion([]int{18, 0, 0}, []int{8, 4, 4}); err == nil {
		t.Error("out-of-bounds region accepted")
	}
	if _, _, err := st.ReadBrick(-1); err == nil {
		t.Error("negative brick index accepted")
	}
	if _, _, err := st.ReadBrick(10000); err == nil {
		t.Error("huge brick index accepted")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	f := sampleField()
	st, err := Build(sz.New(), f, 8, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	blob := st.Marshal()
	got, err := Unmarshal(sz.New(), blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bricks() != st.Bricks() {
		t.Fatalf("bricks %d vs %d", got.Bricks(), st.Bricks())
	}
	a, err := st.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("mismatch at %d after persistence round trip", i)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(sz.New(), nil); err == nil {
		t.Error("nil accepted")
	}
	if _, err := Unmarshal(sz.New(), []byte("NOTBRICK")); err == nil {
		t.Error("bad magic accepted")
	}
	st, _ := Build(sz.New(), sampleField(), 8, 1e-3)
	blob := st.Marshal()
	for _, cut := range []int{8, 9, 12, len(blob) / 2} {
		if _, err := Unmarshal(sz.New(), blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestRegionReadsTouchFewBricks(t *testing.T) {
	// Random access economy: reading one brick-sized region must not cost a
	// full decompression. Verified indirectly: a 1-brick region from a store
	// with 36 bricks decodes correctly even when other bricks are corrupted.
	f := sampleField()
	st, err := Build(sz.New(), f, 8, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the last brick's stream.
	last := len(st.blobs) - 1
	st.blobs[last] = []byte{0xFF, 0xFF}
	if _, err := st.ReadRegion([]int{0, 0, 0}, []int{8, 8, 8}); err != nil {
		t.Fatalf("first-brick read should not touch the corrupt last brick: %v", err)
	}
	if _, err := st.ReadRegion([]int{16, 16, 24}, []int{4, 8, 4}); err == nil {
		t.Error("read overlapping the corrupt brick should fail")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(sz.New(), sampleField(), 1, 1e-3); err == nil {
		t.Error("brick side 1 accepted")
	}
	if _, err := Build(sz.New(), sampleField(), 8, -1); err == nil {
		t.Error("invalid knob accepted")
	}
}
