// Set: the unified multi-brick read path. A Set holds several Stores of the
// same field geometry — successive time steps, ensemble members, or the
// fields of one multi-field snapshot — and serves one region plan across all
// of them: validate the region once, plan the byte ranges once per store
// against the concatenated persisted layout, decode only the bricks the
// region intersects in each store. It is the serving tier's backing for
// /v1/unpack-many with ?region=: one request, one plan, many bricked fields.
package brick

import (
	"errors"
	"fmt"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
)

// Set is an ordered collection of brick stores sharing one field geometry.
// Create with NewSet or OpenSet; the zero value is not usable.
type Set struct {
	stores []*Store
}

// NewSet builds a set over stores, which must be non-empty and agree on
// dimensions — a region plan is only meaningful across identical geometry.
func NewSet(stores ...*Store) (*Set, error) {
	if len(stores) == 0 {
		return nil, errors.New("brick: empty set")
	}
	dims := stores[0].dims
	for i, st := range stores[1:] {
		if !sameDims(st.dims, dims) {
			return nil, fmt.Errorf("brick: set member %d has dims %v, want %v", i+1, st.dims, dims)
		}
	}
	return &Set{stores: append([]*Store(nil), stores...)}, nil
}

// OpenSet restores a set from marshaled store blobs, detecting each store's
// codec from its first brick stream via resolve (use roi.ResolveCodec).
func OpenSet(resolve func(magic byte) (compress.Compressor, error), blobs ...[]byte) (*Set, error) {
	stores := make([]*Store, len(blobs))
	for i, blob := range blobs {
		st, err := UnmarshalAuto(resolve, blob)
		if err != nil {
			return nil, fmt.Errorf("brick: set member %d: %w", i, err)
		}
		stores[i] = st
	}
	return NewSet(stores...)
}

// Len returns the number of stores in the set.
func (s *Set) Len() int { return len(s.stores) }

// Store returns set member m.
func (s *Set) Store(m int) *Store { return s.stores[m] }

// Dims returns the shared field geometry.
func (s *Set) Dims() []int { return s.stores[0].Dims() }

// ReadRegion reconstructs [origin, origin+shape) from set member m,
// decompressing only the bricks the region intersects.
func (s *Set) ReadRegion(m int, origin, shape []int) (*grid.Field, error) {
	if m < 0 || m >= len(s.stores) {
		return nil, fmt.Errorf("brick: set member %d out of range [0, %d)", m, len(s.stores))
	}
	return s.stores[m].ReadRegion(origin, shape)
}

// ReadRegionAll reconstructs the same region from every member, in set
// order. The region is validated once; per-member decode work is the
// caller's to parallelise (the serving tier fans members out through its
// worker budget).
func (s *Set) ReadRegionAll(origin, shape []int) ([]*grid.Field, error) {
	if err := s.stores[0].checkRegion(origin, shape); err != nil {
		return nil, err
	}
	out := make([]*grid.Field, len(s.stores))
	for m, st := range s.stores {
		f, err := st.ReadRegion(origin, shape)
		if err != nil {
			return nil, fmt.Errorf("brick: set member %d: %w", m, err)
		}
		out[m] = f
	}
	return out, nil
}

// RegionByteRanges plans the byte ranges a region read touches across the
// whole set, in the concatenated persisted layout (member 0's Marshal bytes,
// then member 1's, ...). A reader holding that concatenation — the sharded
// brick file the roadmap points at — fetches exactly these ranges and
// nothing else. Ranges are returned per member, already offset by the
// preceding members' marshaled sizes.
func (s *Set) RegionByteRanges(origin, shape []int) ([][][2]int, error) {
	out := make([][][2]int, len(s.stores))
	base := 0
	for m, st := range s.stores {
		ranges, err := st.RegionByteRanges(origin, shape)
		if err != nil {
			return nil, fmt.Errorf("brick: set member %d: %w", m, err)
		}
		for i := range ranges {
			ranges[i][0] += base
			ranges[i][1] += base
		}
		out[m] = ranges
		base += st.MarshaledSize()
	}
	return out, nil
}

func sameDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for d := range a {
		if a[d] != b[d] {
			return false
		}
	}
	return true
}
