package brick

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/sz"
	"github.com/fxrz-go/fxrz/internal/zfp"
)

// timeWindow builds n stores of the same geometry — a synthetic time series
// where each step phase-shifts the field — mixing codecs across members to
// exercise per-member codec detection in OpenSet.
func timeWindow(t *testing.T, n int) []*Store {
	t.Helper()
	stores := make([]*Store, n)
	for m := 0; m < n; m++ {
		f := grid.MustNew("step", 20, 24, 28)
		for z := 0; z < 20; z++ {
			for y := 0; y < 24; y++ {
				for x := 0; x < 28; x++ {
					f.Set(float32(math.Sin(float64(z+m)/4)*math.Cos(float64(y)/5)+0.1*math.Sin(float64(x+m))), z, y, x)
				}
			}
		}
		var codec compress.Compressor = sz.New()
		if m%2 == 1 {
			codec = zfp.New()
		}
		st, err := Build(codec, f, 8, 1e-3)
		if err != nil {
			t.Fatal(err)
		}
		stores[m] = st
	}
	return stores
}

func TestSetReadRegionMatchesStores(t *testing.T) {
	stores := timeWindow(t, 3)
	set, err := NewSet(stores...)
	if err != nil {
		t.Fatal(err)
	}
	origin, shape := []int{4, 4, 4}, []int{8, 8, 8}
	all, err := set.ReadRegionAll(origin, shape)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("%d regions for 3 members", len(all))
	}
	for m, st := range stores {
		want, err := st.ReadRegion(origin, shape)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(float32Bytes(all[m].Data), float32Bytes(want.Data)) {
			t.Errorf("member %d: set read diverged from store read", m)
		}
		one, err := set.ReadRegion(m, origin, shape)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(float32Bytes(one.Data), float32Bytes(want.Data)) {
			t.Errorf("member %d: single-member set read diverged", m)
		}
	}
}

func TestOpenSetFromMarshaledBlobs(t *testing.T) {
	stores := timeWindow(t, 3)
	blobs := make([][]byte, len(stores))
	for m, st := range stores {
		blobs[m] = st.Marshal()
	}
	set, err := OpenSet(resolveTestCodec, blobs...)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("Len = %d", set.Len())
	}
	origin, shape := []int{17, 21, 25}, []int{3, 3, 3}
	got, err := set.ReadRegionAll(origin, shape)
	if err != nil {
		t.Fatal(err)
	}
	for m, st := range stores {
		want, err := st.ReadRegion(origin, shape)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(float32Bytes(got[m].Data), float32Bytes(want.Data)) {
			t.Errorf("member %d: reopened set read diverged from the original store", m)
		}
	}
}

func TestSetValidation(t *testing.T) {
	if _, err := NewSet(); err == nil || !strings.Contains(err.Error(), "empty set") {
		t.Errorf("empty set: err = %v", err)
	}
	a := timeWindow(t, 1)[0]
	small := grid.MustNew("small", 8, 8, 8)
	b, err := Build(sz.New(), small, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSet(a, b); err == nil || !strings.Contains(err.Error(), "dims") {
		t.Errorf("mismatched dims: err = %v", err)
	}
	set, err := NewSet(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.ReadRegion(1, []int{0, 0, 0}, []int{4, 4, 4}); err == nil {
		t.Error("out-of-range member read succeeded")
	}
	if _, err := set.ReadRegionAll([]int{0, 0, 0}, []int{99, 4, 4}); err == nil {
		t.Error("out-of-bounds region read succeeded")
	}
}

// TestSetRegionByteRanges pins the concatenated-layout plan: each returned
// range, applied to the concatenation of the members' Marshal bytes, must
// land exactly on a length-prefixed brick stream of the right member.
func TestSetRegionByteRanges(t *testing.T) {
	stores := timeWindow(t, 3)
	set, err := NewSet(stores...)
	if err != nil {
		t.Fatal(err)
	}
	var file []byte
	for _, st := range stores {
		blob := st.Marshal()
		if got := st.MarshaledSize(); got != len(blob) {
			t.Fatalf("MarshaledSize = %d, want %d", got, len(blob))
		}
		file = append(file, blob...)
	}
	origin, shape := []int{4, 4, 4}, []int{8, 8, 8}
	plan, err := set.RegionByteRanges(origin, shape)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != len(stores) {
		t.Fatalf("plan covers %d members, want %d", len(plan), len(stores))
	}
	for m, ranges := range plan {
		if len(ranges) == 0 {
			t.Fatalf("member %d: empty plan for an intersecting region", m)
		}
		for _, r := range ranges {
			if r[0] < 0 || r[1] > len(file) || r[0] >= r[1] {
				t.Fatalf("member %d: range %v outside the %d-byte file", m, r, len(file))
			}
			chunk := file[r[0]:r[1]]
			n, k := binary.Uvarint(chunk)
			if k <= 0 || int(n)+k != len(chunk) {
				t.Fatalf("member %d: range %v is not one length-prefixed stream", m, r)
			}
		}
	}
}

// TestVisitRegionStreamsExactSamples checks the streaming spine: visiting a
// region yields every sample ReadRegion materialises, each exactly once, at
// the coordinates the brick origin implies.
func TestVisitRegionStreamsExactSamples(t *testing.T) {
	st := timeWindow(t, 1)[0]
	origin, shape := []int{4, 4, 4}, []int{9, 7, 11}
	want, err := st.ReadRegion(origin, shape)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[3]int]float32)
	err = st.VisitRegion(origin, shape, func(borigin []int, it *grid.RegionIter) error {
		for it.Next() {
			c := it.Coord()
			key := [3]int{c[0] + borigin[0], c[1] + borigin[1], c[2] + borigin[2]}
			if _, dup := seen[key]; dup {
				t.Fatalf("coordinate %v visited twice", key)
			}
			seen[key] = it.Value()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != want.Size() {
		t.Fatalf("visited %d samples, want %d", len(seen), want.Size())
	}
	for i := 0; i < want.Size(); i++ {
		c := want.Coord(i)
		key := [3]int{c[0] + origin[0], c[1] + origin[1], c[2] + origin[2]}
		if seen[key] != want.Data[i] {
			t.Fatalf("sample at %v: visited %v, materialised %v", key, seen[key], want.Data[i])
		}
	}
}

// resolveTestCodec mirrors roi.ResolveCodec for the codecs this test builds
// with (the brick package cannot import roi without a cycle).
func resolveTestCodec(magic byte) (compress.Compressor, error) {
	switch magic {
	case compress.MagicSZ:
		return sz.New(), nil
	case compress.MagicZFP:
		return zfp.New(), nil
	}
	return nil, fmt.Errorf("test: unknown magic 0x%02x", magic)
}

// float32Bytes views a float32 slice as bytes for bit-identity comparison.
func float32Bytes(v []float32) []byte {
	out := make([]byte, 0, 4*len(v))
	for _, x := range v {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(x))
	}
	return out
}
