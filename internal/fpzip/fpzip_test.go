package fpzip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/compress/compresstest"
	"github.com/fxrz-go/fxrz/internal/grid"
)

func TestRoundTripRespectsRelativeBound(t *testing.T) {
	compresstest.RoundTrip(t, New(), []float64{32, 24, 16, 12},
		func(f *grid.Field, knob float64) float64 {
			mn, mx := f.Range()
			maxAbs := math.Max(math.Abs(mn), math.Abs(mx))
			return maxAbs * RelativeErrorBound(int(knob)) * 2
		})
}

func TestRatioMonotoneInPrecision(t *testing.T) {
	// Lower precision → higher ratio; MonotoneRatio expects increasing, so
	// feed decreasing precisions.
	compresstest.MonotoneRatio(t, New(), []float64{32, 28, 24, 20, 16, 12, 8}, true)
}

func TestRejectsCorrupt(t *testing.T) {
	compresstest.RejectsCorrupt(t, New(), 16)
}

func TestInvalidPrecision(t *testing.T) {
	f := grid.MustNew("t", 8)
	for _, p := range []float64{0, 1, 33, -5, math.NaN()} {
		if _, err := New().Compress(f, p); err == nil {
			t.Errorf("precision %v accepted", p)
		}
	}
}

func TestFullPrecisionIsLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := grid.MustNew("t", 9, 11, 7)
	for i := range f.Data {
		f.Data[i] = rng.Float32()*2000 - 1000
	}
	blob, err := New().Compress(f, 32)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New().Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatalf("precision 32 not lossless at %d: %v vs %v", i, f.Data[i], g.Data[i])
		}
	}
}

func TestMapFloatOrderPreserving(t *testing.T) {
	vals := []float32{float32(math.Inf(-1)), -1e30, -3.5, -1, -1e-30, 0, 1e-30, 1, 3.5, 1e30, float32(math.Inf(1))}
	for i := 1; i < len(vals); i++ {
		if !(mapFloat(vals[i-1]) < mapFloat(vals[i])) {
			t.Errorf("order not preserved between %v and %v", vals[i-1], vals[i])
		}
	}
}

func TestMapUnmapBijection(t *testing.T) {
	check := func(b uint32) bool {
		v := math.Float32frombits(b)
		if math.IsNaN(float64(v)) {
			return true // NaN payloads need not round trip bit-exactly
		}
		return unmapFloat(mapFloat(v)) == v
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestZigzagBijection(t *testing.T) {
	for _, e := range []int64{0, 1, -1, 1 << 32, -(1 << 32), math.MaxInt32, math.MinInt32} {
		if unzigzag(zigzag(e)) != e {
			t.Errorf("zigzag round trip failed for %d", e)
		}
	}
	check := func(e int64) bool { return unzigzag(zigzag(e)) == e }
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSmoothDataCompressesWell(t *testing.T) {
	f := grid.MustNew("s", 32, 32, 32)
	for z := 0; z < 32; z++ {
		for y := 0; y < 32; y++ {
			for x := 0; x < 32; x++ {
				f.Set(float32(100+10*math.Sin(float64(z+y+x)/20)), z, y, x)
			}
		}
	}
	r16, err := compress.CompressRatio(New(), f, 16)
	if err != nil {
		t.Fatal(err)
	}
	if r16 < 4 {
		t.Errorf("precision 16 on smooth data: ratio %.2f, want >= 4", r16)
	}
	r8, err := compress.CompressRatio(New(), f, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r8 <= r16 {
		t.Errorf("ratio should grow as precision drops: p8=%.2f p16=%.2f", r8, r16)
	}
}

func TestPrecisionControlsError(t *testing.T) {
	f := grid.MustNew("s", 24, 24)
	for y := 0; y < 24; y++ {
		for x := 0; x < 24; x++ {
			f.Set(float32(math.Sin(float64(x)/5)*math.Cos(float64(y)/7)), y, x)
		}
	}
	var prev float64 = -1
	for _, p := range []float64{28, 22, 16, 12} {
		blob, err := New().Compress(f, p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := New().Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		maxErr, _ := compress.MaxAbsError(f, g)
		if prev >= 0 && maxErr < prev {
			t.Errorf("error should not shrink as precision drops: p=%g err=%g prev=%g", p, maxErr, prev)
		}
		prev = maxErr
	}
}

func TestInfinitiesSurviveLosslessMode(t *testing.T) {
	f := grid.MustNew("inf", 4, 4)
	for i := range f.Data {
		f.Data[i] = float32(i)
	}
	f.Data[3] = float32(math.Inf(1))
	f.Data[7] = float32(math.Inf(-1))
	blob, err := New().Compress(f, 32)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New().Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(g.Data[3]), 1) || !math.IsInf(float64(g.Data[7]), -1) {
		t.Errorf("infinities lost: %v %v", g.Data[3], g.Data[7])
	}
	for i := range f.Data {
		if i != 3 && i != 7 && g.Data[i] != f.Data[i] {
			t.Errorf("value %d changed: %v vs %v", i, g.Data[i], f.Data[i])
		}
	}
}

func TestDenormalsRoundTrip(t *testing.T) {
	f := grid.MustNew("den", 8)
	for i := range f.Data {
		f.Data[i] = float32(i) * 1e-42 // subnormal range
	}
	blob, err := New().Compress(f, 32)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New().Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if g.Data[i] != f.Data[i] {
			t.Errorf("denormal %d: %g vs %g", i, g.Data[i], f.Data[i])
		}
	}
}
