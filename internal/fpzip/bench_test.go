package fpzip

import (
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress/compresstest"
)

func BenchmarkCompress(b *testing.B)   { compresstest.BenchCompress(b, New(), 16) }
func BenchmarkDecompress(b *testing.B) { compresstest.BenchDecompress(b, New(), 16) }
