// Package fpzip implements an FPZIP-style precision-controlled lossy
// compressor (Lindstrom & Isenburg, 2006). Unlike the error-bound driven
// codecs, its knob is an integer precision p in [2, 32]: the number of most
// significant bits of each value's order-preserving integer representation
// that are retained. Lossy operation truncates the remaining bits, which
// bounds the *relative* error at roughly 2^(10-p) (sign + 8 exponent bits +
// p-9 mantissa bits survive for p > 9).
//
// Pipeline: order-preserving float→uint mapping, truncation to p bits,
// N-dimensional Lorenzo prediction in the truncated integer domain, and
// adaptive range coding of zigzagged residuals (a unary bit-length code with
// per-position adaptive contexts followed by raw magnitude bits).
package fpzip

import (
	"fmt"
	"math"
	"math/bits"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
)

// Compressor is the FPZIP-like codec. The zero value is ready to use.
type Compressor struct{}

// New returns an FPZIP-like compressor.
func New() *Compressor { return &Compressor{} }

// Name implements compress.Compressor.
func (*Compressor) Name() string { return "fpzip" }

// Axis implements compress.Compressor: the knob is the retained precision in
// bits. Lower precision means higher ratio, which Axis.ToModel encodes by
// negating the knob.
func (*Compressor) Axis() compress.Axis {
	return compress.Axis{Kind: compress.Precision, Min: 2, Max: 32}
}

// RelativeErrorBound returns the worst-case relative error of precision p,
// used by tests and by documentation; it is not part of the codec contract
// for p <= 9 where exponent bits start being truncated.
func RelativeErrorBound(p int) float64 {
	if p <= 9 {
		return 1
	}
	return math.Ldexp(1, 10-p)
}

// mapFloat converts a float32 to an order-preserving uint32: negative values
// have all bits flipped, non-negative values have the sign bit set.
func mapFloat(v float32) uint32 {
	b := math.Float32bits(v)
	if b&0x80000000 != 0 {
		return ^b
	}
	return b | 0x80000000
}

// unmapFloat inverts mapFloat.
func unmapFloat(u uint32) float32 {
	var b uint32
	if u&0x80000000 != 0 {
		b = u &^ 0x80000000
	} else {
		b = ^u
	}
	return math.Float32frombits(b)
}

// Compress implements compress.Compressor. The knob is rounded to an integer
// precision in [2, 32].
func (c *Compressor) Compress(f *grid.Field, knob float64) ([]byte, error) {
	p := int(math.Round(knob))
	if p < 2 || p > 32 {
		return nil, fmt.Errorf("fpzip: precision must be in [2, 32], got %v", knob)
	}
	shift := uint(32 - p)
	n := f.Size()
	recon := make([]uint32, n) // truncated, shifted-down p-bit values
	lor := newLorenzoU(f.Dims)

	enc := entropy.NewRangeEncoder()
	lenModels := entropy.NewBitModels(34)
	for idx := 0; idx < n; idx++ {
		u := mapFloat(f.Data[idx]) >> shift
		pred := lor.predict(recon, idx, p)
		e := int64(u) - int64(pred)
		z := zigzag(e)
		k := uint(bits.Len64(z))
		for i := uint(0); i < k; i++ {
			enc.EncodeBit(&lenModels[i], 1)
		}
		if k < 33 {
			// The unary code is capped at the maximum possible length (33
			// bits for a zigzagged 33-bit residual), where no terminator is
			// needed; the decoder stops there symmetrically.
			enc.EncodeBit(&lenModels[k], 0)
		}
		if k > 1 {
			enc.EncodeDirect(z&((1<<(k-1))-1), k-1) // MSB of z is implied
		}
		recon[idx] = u
		lor.advance()
	}
	payload := enc.Finish()

	out := compress.AppendHeader(nil, compress.Header{Magic: compress.MagicFPZIP, Name: f.Name, Dims: f.Dims, Knob: float64(p)})
	return append(out, payload...), nil
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(blob []byte) (*grid.Field, error) {
	h, payload, err := compress.ParseHeader(blob, compress.MagicFPZIP)
	if err != nil {
		return nil, fmt.Errorf("fpzip: %w", err)
	}
	if _, err := compress.CheckElems(h.Dims, len(payload)); err != nil {
		return nil, fmt.Errorf("fpzip: %w", err)
	}
	p := int(h.Knob)
	if p < 2 || p > 32 {
		return nil, fmt.Errorf("fpzip: %w: precision %v", compress.ErrCorrupt, h.Knob)
	}
	shift := uint(32 - p)
	f, err := grid.New(h.Name, h.Dims...)
	if err != nil {
		return nil, fmt.Errorf("fpzip: %w", err)
	}
	n := f.Size()
	recon := make([]uint32, n)
	lor := newLorenzoU(h.Dims)
	dec := entropy.NewRangeDecoder(payload)
	lenModels := entropy.NewBitModels(34)
	for idx := 0; idx < n; idx++ {
		var k uint
		for k < 33 && dec.DecodeBit(&lenModels[k]) == 1 {
			k++
		}
		var z uint64
		if k > 0 {
			z = 1
			if k > 1 {
				z = z<<(k-1) | dec.DecodeDirect(k-1)
			}
		}
		e := unzigzag(z)
		pred := lor.predict(recon, idx, p)
		u := int64(pred) + e
		maxU := int64(1)<<uint(p) - 1
		if u < 0 || u > maxU {
			return nil, fmt.Errorf("fpzip: %w: value escapes precision domain at %d", compress.ErrCorrupt, idx)
		}
		recon[idx] = uint32(u)
		f.Data[idx] = unmapFloat(uint32(u) << shift)
		lor.advance()
	}
	return f, nil
}

func zigzag(e int64) uint64 {
	return uint64((e << 1) ^ (e >> 63))
}

func unzigzag(z uint64) int64 {
	return int64(z>>1) ^ -int64(z&1)
}

// lorenzoU is the Lorenzo predictor over the truncated unsigned domain, with
// clamping into [0, 2^p) so encoder and decoder stay in range identically.
type lorenzoU struct {
	dims    []int
	strides []int
	coord   []int
	offs    []int
	signs   []int64
}

func newLorenzoU(dims []int) *lorenzoU {
	l := &lorenzoU{dims: dims, coord: make([]int, len(dims))}
	st := 1
	l.strides = make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		l.strides[i] = st
		st *= dims[i]
	}
	for m := 1; m < 1<<len(dims); m++ {
		off := 0
		for d := 0; d < len(dims); d++ {
			if m&(1<<d) != 0 {
				off += l.strides[d]
			}
		}
		l.offs = append(l.offs, off)
		if bits.OnesCount(uint(m))%2 == 1 {
			l.signs = append(l.signs, 1)
		} else {
			l.signs = append(l.signs, -1)
		}
	}
	return l
}

func (l *lorenzoU) predict(data []uint32, idx, p int) uint32 {
	var pred int64
	any := false
	for m := 1; m < 1<<len(l.dims); m++ {
		ok := true
		for d := 0; d < len(l.dims); d++ {
			if m&(1<<d) != 0 && l.coord[d] == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		any = true
		pred += l.signs[m-1] * int64(data[idx-l.offs[m-1]])
	}
	if !any {
		// No neighbors: predict the midpoint of the mapped domain (zero).
		return uint32(1) << uint(p-1)
	}
	maxU := int64(1)<<uint(p) - 1
	if pred < 0 {
		pred = 0
	}
	if pred > maxU {
		pred = maxU
	}
	return uint32(pred)
}

func (l *lorenzoU) advance() {
	for d := len(l.dims) - 1; d >= 0; d-- {
		l.coord[d]++
		if l.coord[d] < l.dims[d] {
			return
		}
		l.coord[d] = 0
	}
}

// elemCount multiplies dims without allocating (header sanity checks).
func elemCount(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}
