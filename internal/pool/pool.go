// Package pool provides the bounded worker pool behind FXRZ's parallel
// training pipeline: stationary-point sweeps, feature extraction and the
// Compressibility-Adjustment block scan all fan out through it.
//
// The pool is deliberately tiny and deterministic-by-construction. Tasks
// are identified by a dense index; workers claim indexes in increasing
// order from a shared atomic counter and write results into
// index-addressed slots owned by the caller. Because no result flows
// through a shared accumulator, the assembled output is identical at any
// worker count — the property core.Train relies on for bit-identical
// models regardless of Config.Parallelism.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/fxrz-go/fxrz/internal/obs"
)

// Workers resolves a parallelism knob: values > 0 are returned unchanged,
// anything else defaults to runtime.GOMAXPROCS(0) (all available cores).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Split divides a worker budget between an outer fan-out of ntasks tasks and
// the inner parallelism available to each task, keeping the total goroutine
// count at roughly the budget: outer = min(budget, ntasks) workers run tasks,
// and each task may use inner = max(1, budget/outer) workers of its own.
// A budget of 1 yields (1, 1) — fully serial at both levels — which is what
// keeps Config.Parallelism=1 deterministic debugging runs single-threaded.
func Split(budget, ntasks int) (outer, inner int) {
	outer = budget
	if outer > ntasks {
		outer = ntasks
	}
	if outer < 1 {
		outer = 1
	}
	inner = budget / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// Run invokes fn(i) for every i in [0, n) using at most `workers`
// concurrent goroutines and returns when every invocation has completed.
// workers is clamped to n; workers <= 1 (or n <= 1) runs every task
// serially on the calling goroutine, spawning nothing. fn must be safe for
// concurrent invocation when workers > 1 and should write its result into
// an index-addressed slot to keep output ordering deterministic.
func Run(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	obs.Inc("pool/runs")
	obs.Add("pool/tasks", int64(n))
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunErr is Run for fallible tasks. It returns the error of the
// lowest-indexed failing task, or nil if every task succeeds.
//
// The returned error is deterministic at any worker count: tasks are
// claimed in index order, so by the time any task fails, every task with a
// smaller index has already been claimed and runs to completion — the
// smallest genuinely-failing index is therefore always recorded. Tasks not
// yet claimed when a failure is recorded are skipped; they can only carry
// indexes above an already-recorded failure.
func RunErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	obs.Inc("pool/runs")
	obs.Add("pool/tasks", int64(n))
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
