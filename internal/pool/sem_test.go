package pool

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSemaphoreTryAcquire(t *testing.T) {
	s := NewSemaphore(2)
	if s.Cap() != 2 {
		t.Fatalf("Cap = %d", s.Cap())
	}
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("could not fill empty semaphore")
	}
	if s.TryAcquire() {
		t.Fatal("over-admitted past capacity")
	}
	if s.InUse() != 2 {
		t.Fatalf("InUse = %d", s.InUse())
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

func TestSemaphoreAcquireContext(t *testing.T) {
	s := NewSemaphore(1)
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Acquire(ctx); err == nil {
		t.Fatal("acquire on full semaphore did not honor context")
	}
	s.Release()
	if err := s.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	const slots, workers = 3, 16
	s := NewSemaphore(slots)
	var mu sync.Mutex
	var cur, peak int
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := s.Acquire(context.Background()); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				cur++
				if cur > peak {
					peak = cur
				}
				mu.Unlock()
				mu.Lock()
				cur--
				mu.Unlock()
				s.Release()
			}
		}()
	}
	wg.Wait()
	if peak > slots {
		t.Fatalf("peak concurrency %d exceeded %d slots", peak, slots)
	}
}

func TestSemaphoreReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unmatched Release did not panic")
		}
	}()
	NewSemaphore(1).Release()
}

func TestSemaphoreMinimumOneSlot(t *testing.T) {
	s := NewSemaphore(0)
	if s.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", s.Cap())
	}
}
