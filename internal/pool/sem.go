package pool

import "context"

// Semaphore is a counting semaphore bounding concurrent admissions — the
// serving layer's in-flight request gate. It complements Split: fxrzd admits
// at most MaxInFlight heavy requests and hands each the inner share of the
// worker budget, so serving concurrency and intra-field parallelism do not
// multiply past the configured core budget.
type Semaphore struct {
	slots chan struct{}
}

// NewSemaphore returns a semaphore with n slots (n < 1 is treated as 1).
func NewSemaphore(n int) *Semaphore {
	if n < 1 {
		n = 1
	}
	return &Semaphore{slots: make(chan struct{}, n)}
}

// TryAcquire claims a slot without blocking, reporting whether it succeeded.
// Admission control uses this form: a full server sheds load immediately
// (429) instead of queueing work it cannot start.
func (s *Semaphore) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx.Err in
// the latter case.
func (s *Semaphore) Acquire(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a previously acquired slot. Releasing more than was
// acquired panics, as that always indicates an accounting bug.
func (s *Semaphore) Release() {
	select {
	case <-s.slots:
	default:
		panic("pool: Semaphore.Release without matching Acquire")
	}
}

// Cap returns the slot count.
func (s *Semaphore) Cap() int { return cap(s.slots) }

// InUse returns the number of currently held slots (racy by nature; for
// gauges and tests only).
func (s *Semaphore) InUse() int { return len(s.slots) }
