package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/fxrz-go/fxrz/internal/obs"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(5) != 5 {
		t.Errorf("Workers(5) = %d", Workers(5))
	}
	if Workers(0) < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", Workers(0))
	}
	if Workers(-3) != Workers(0) {
		t.Errorf("Workers(-3) = %d, want %d", Workers(-3), Workers(0))
	}
}

func TestRunCoversEveryIndexAtAnyWorkerCount(t *testing.T) {
	const n = 100
	for _, workers := range []int{0, 1, 2, 4, 7, n, 3 * n} {
		out := make([]int, n)
		Run(workers, n, func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	called := false
	Run(4, 0, func(int) { called = true })
	Run(4, -1, func(int) { called = true })
	if called {
		t.Error("fn called for n <= 0")
	}
}

func TestRunErrReturnsLowestIndexFailure(t *testing.T) {
	// Indexes 3 and 7 fail; the reported error must be index 3's at every
	// worker count (determinism contract).
	for _, workers := range []int{1, 2, 4, 8} {
		var ran atomic.Int64
		err := RunErr(workers, 10, func(i int) error {
			ran.Add(1)
			if i == 3 || i == 7 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Errorf("workers=%d: err = %v, want task 3's", workers, err)
		}
		if ran.Load() < 4 {
			t.Errorf("workers=%d: only %d tasks ran before the failure was reported", workers, ran.Load())
		}
	}
}

func TestRunErrNilOnSuccess(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		if err := RunErr(workers, 25, func(int) error { ran.Add(1); return nil }); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 25 {
			t.Errorf("workers=%d: ran %d/25", workers, ran.Load())
		}
	}
}

// TestRunErrDeterministicWithObsEnabled re-runs the lowest-index-error
// contract at widths 1, 2 and NumCPU with obs recording live, proving the
// counters bumped inside Run/RunErr cannot change which error wins — and
// that the pool's throughput counters actually record the traffic.
func TestRunErrDeterministicWithObsEnabled(t *testing.T) {
	obs.Enable()
	defer obs.Disable()
	obs.Reset()

	const n = 24
	widths := []int{1, 2, runtime.NumCPU()}
	for _, workers := range widths {
		err := RunErr(workers, n, func(i int) error {
			if i == 5 || i == 11 || i == 19 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 5 failed" {
			t.Errorf("workers=%d: err = %v, want task 5's", workers, err)
		}
	}

	s := obs.TakeSnapshot()
	if got := s.Counters["pool/runs"]; got != int64(len(widths)) {
		t.Errorf("pool/runs = %d, want %d", got, len(widths))
	}
	if got := s.Counters["pool/tasks"]; got != int64(len(widths)*n) {
		t.Errorf("pool/tasks = %d, want %d", got, len(widths)*n)
	}
}

func TestRunErrSerialStopsEarly(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	err := RunErr(1, 10, func(i int) error {
		ran++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != 3 {
		t.Errorf("serial path ran %d tasks after failure, want 3", ran)
	}
}
