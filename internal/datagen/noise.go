// Package datagen synthesises the scientific datasets the paper evaluates
// on. The real datasets (SDRBench Nyx, QMCPack, RTM, Hurricane Isabel) are
// multi-gigabyte downloads; these generators reproduce the *feature
// signatures* the paper reports for them — value range, mean, neighbor/
// Lorenzo/spline differences, constant-region fraction — at configurable
// laptop-scale sizes, with deterministic seeding so experiments are
// reproducible. Time steps evolve coherently (capability level 1) and
// configurations change the underlying physics parameters and grid sizes
// (capability level 2).
package datagen

import "math"

// splitmix64 advances and mixes a 64-bit state; it is the hash primitive
// behind the lattice noise.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// latticeHash returns a deterministic value in [-1, 1] for an integer
// lattice point of up to four coordinates plus a stream seed.
func latticeHash(seed uint64, c0, c1, c2, c3 int64) float64 {
	h := splitmix64(seed)
	h = splitmix64(h ^ uint64(c0))
	h = splitmix64(h ^ uint64(c1))
	h = splitmix64(h ^ uint64(c2))
	h = splitmix64(h ^ uint64(c3))
	return float64(int64(h>>11))/float64(1<<52) - 1
}

// smooth is the quintic smoothstep used to interpolate lattice noise without
// visible grid artifacts.
func smooth(t float64) float64 { return t * t * t * (t*(t*6-15) + 10) }

// Noise3 samples continuous value noise at (x, y, z) for one stream.
func Noise3(seed uint64, x, y, z float64) float64 {
	x0, y0, z0 := math.Floor(x), math.Floor(y), math.Floor(z)
	tx, ty, tz := smooth(x-x0), smooth(y-y0), smooth(z-z0)
	ix, iy, iz := int64(x0), int64(y0), int64(z0)
	var c [2][2][2]float64
	for dz := int64(0); dz < 2; dz++ {
		for dy := int64(0); dy < 2; dy++ {
			for dx := int64(0); dx < 2; dx++ {
				c[dz][dy][dx] = latticeHash(seed, ix+dx, iy+dy, iz+dz, 0)
			}
		}
	}
	lerp := func(a, b, t float64) float64 { return a + (b-a)*t }
	return lerp(
		lerp(lerp(c[0][0][0], c[0][0][1], tx), lerp(c[0][1][0], c[0][1][1], tx), ty),
		lerp(lerp(c[1][0][0], c[1][0][1], tx), lerp(c[1][1][0], c[1][1][1], tx), ty),
		tz)
}

// OctavesFor picks the number of fBm octaves so the finest octave's
// wavelength stays at or above ~4 grid cells for a field of the given edge
// size and base frequency (in cycles per box). Finer octaves would alias
// into per-cell noise, which real simulation outputs — produced by PDE
// solvers with their own resolution limits — do not contain.
func OctavesFor(size int, freq float64) int {
	o := 1
	wavelength := float64(size) / freq
	for wavelength/2 >= 8 && o < 8 {
		wavelength /= 2
		o++
	}
	return o
}

// FBM3 sums octaves of Noise3 into fractional Brownian motion: a multi-scale
// field whose roughness is controlled by gain (persistence) and whose base
// feature size is 1/freq grid cells. Values are approximately in [-1, 1].
func FBM3(seed uint64, x, y, z, freq float64, octaves int, gain float64) float64 {
	var sum, norm float64
	amp := 1.0
	f := freq
	for o := 0; o < octaves; o++ {
		sum += amp * Noise3(seed+uint64(o)*0x9E37, x*f, y*f, z*f)
		norm += amp
		amp *= gain
		f *= 2
	}
	return sum / norm
}
