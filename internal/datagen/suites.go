package datagen

import (
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// The suites below mirror the paper's Table V at configurable scale. `size`
// is the base edge length: the paper's 512³ Nyx grid corresponds to
// NyxField(..., size=512); tests use 16–32, experiments 48–96. Field values
// are engineered to reproduce the Table I feature signatures:
//
//	Nyx       — log-normal densities with halo clumps, high dynamic range
//	QMCPack   — oscillatory orbital textures, moderate range, 4D layout
//	RTM       — FDTD wavefields, tiny value range, wave patterns
//	Hurricane — smooth temperature with moving vortex; sparse cloud water
//	            (large constant regions exercising the CA optimization)

// NyxFields lists the four Nyx fields the paper evaluates.
var NyxFields = []string{"baryon_density", "dark_matter_density", "temperature", "velocity_x"}

// NyxField generates one Nyx-like cosmology field of size³ cells.
// config selects the simulation configuration (capability level 2): config 1
// is the "Nyx-1" training run, config 2 the "Nyx-2" testing run with a
// different seed, power spectrum and growth factor. timeStep evolves
// structure coherently.
func NyxField(field string, config, timeStep, size int) (*grid.Field, error) {
	if size < 8 {
		return nil, fmt.Errorf("datagen: nyx size %d too small", size)
	}
	var seed uint64
	var sigma, freq, growth float64
	switch config {
	case 1:
		seed, sigma, freq, growth = 0xA11CE, 1.9, 3.0, 0.04
	case 2:
		seed, sigma, freq, growth = 0xB0B42, 2.15, 3.6, 0.05
	default:
		return nil, fmt.Errorf("datagen: nyx config %d not in {1, 2}", config)
	}
	t := float64(timeStep)
	sig := sigma * (1 + growth*t)
	adv := 0.08 * t
	oct := OctavesFor(size, freq)

	name := fmt.Sprintf("nyx-%d/%s/ts%d", config, field, timeStep)
	f := grid.MustNew(name, size, size, size)
	inv := 1 / float64(size)

	// Halo catalog: clumps at hashed comoving positions, shared across
	// fields of one config so density/temperature stay physically coherent.
	type halo struct{ z, y, x, m float64 }
	nh := 6 + size/8
	halos := make([]halo, nh)
	for i := range halos {
		halos[i] = halo{
			z: 0.5 + 0.5*latticeHash(seed+77, int64(i), 1, 0, 0),
			y: 0.5 + 0.5*latticeHash(seed+77, int64(i), 2, 0, 0),
			x: 0.5 + 0.5*latticeHash(seed+77, int64(i), 3, 0, 0),
			m: 2 + 3*math.Abs(latticeHash(seed+77, int64(i), 4, 0, 0)),
		}
	}
	sigma2 := math.Max(0.05, 3.0/float64(size))
	sigma2 *= sigma2
	haloAt := func(zf, yf, xf float64) float64 {
		var s float64
		for _, h := range halos {
			dz, dy, dx := zf-h.z, yf-h.y, xf-h.x
			r2 := (dz*dz + dy*dy + dx*dx) / (2 * sigma2)
			if r2 < 25 {
				s += h.m * math.Exp(-r2)
			}
		}
		return s
	}

	for z := 0; z < size; z++ {
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				zf, yf, xf := float64(z)*inv, float64(y)*inv, float64(x)*inv
				g := FBM3(seed, zf+adv, yf+adv*0.7, xf, freq, oct, 0.55)
				var v float64
				switch field {
				case "baryon_density":
					v = math.Exp(sig*g) * (1 + haloAt(zf, yf, xf))
				case "dark_matter_density":
					g2 := FBM3(seed+13, zf+adv, yf, xf, freq*1.4, oct, 0.65)
					v = math.Exp(sig*1.1*g2) * (1 + 1.5*haloAt(zf, yf, xf))
				case "temperature":
					// Shock-heated gas: voids sit at the CMB-like floor
					// temperature, which produces the large constant blocks
					// visible in the paper's Fig 6 (Nyx temperature is its
					// Compressibility Adjustment illustration).
					rho := math.Exp(sig * g)
					if rho > 0.8 {
						g3 := FBM3(seed+29, zf, yf+adv, xf, freq*0.8, oct, 0.5)
						v = 300 + 8e3*math.Pow(rho-0.8, 0.8) + 1e3*(g3+1)
					} else {
						v = 300
					}
				case "velocity_x":
					v = 3e2 * FBM3(seed+41, zf, yf, xf+adv, freq*0.6, 2, 0.45)
				default:
					return nil, fmt.Errorf("datagen: unknown nyx field %q", field)
				}
				f.Set(float32(v), z, y, x)
			}
		}
	}
	return f, nil
}

// HurricaneFields lists the two Hurricane Isabel fields the paper uses in
// its evaluation. The generator also provides U, V, W and PRECIPf (SDRBench
// carries 13 Isabel fields; these are the commonly used extras).
var HurricaneFields = []string{"QCLOUD", "TC"}

// HurricaneExtraFields lists the additional Isabel-like fields available.
var HurricaneExtraFields = []string{"U", "V", "W", "PRECIPf"}

// HurricaneField generates one Hurricane-Isabel-like weather field on a
// size×5·size×5·size grid (the paper's 100×500×500 aspect ratio).
// The storm vortex translates with the time step, which makes later time
// steps (test data) genuinely different from earlier ones (training data) —
// capability level 1.
func HurricaneField(field string, timeStep, size int) (*grid.Field, error) {
	if size < 4 {
		return nil, fmt.Errorf("datagen: hurricane size %d too small", size)
	}
	const seed = 0x15ABE1
	nz, ny, nx := size, 5*size, 5*size
	t := float64(timeStep)
	// Storm track: the eye drifts across the domain.
	cy := 0.35 + 0.006*t
	cx := 0.60 - 0.007*t

	octTC := OctavesFor(ny, 2.5)
	octQC := OctavesFor(ny, 6)
	name := fmt.Sprintf("hurricane/%s/ts%d", field, timeStep)
	f := grid.MustNew(name, nz, ny, nx)
	for z := 0; z < nz; z++ {
		zf := float64(z) / float64(nz)
		for y := 0; y < ny; y++ {
			yf := float64(y) / float64(ny)
			for x := 0; x < nx; x++ {
				xf := float64(x) / float64(nx)
				dy, dx := yf-cy, xf-cx
				r := math.Hypot(dy, dx)
				ang := math.Atan2(dy, dx)
				var v float64
				switch field {
				case "TC":
					// Temperature: lapse rate with altitude, warm core at the
					// eye, large-scale smooth gradients.
					g := FBM3(seed, zf, yf+0.01*t, xf, 2.5, octTC, 0.5)
					warmCore := 12 * math.Exp(-r*r*120) * (1 - zf)
					v = 25 - 70*zf + 8*g + warmCore
				case "QCLOUD":
					// Cloud water: zero outside clouds (the paper's large
					// constant regions), spiral rainbands around the eye.
					g := FBM3(seed+3, zf*2, yf*2+0.01*t, xf*2, 6, octQC, 0.6)
					spiral := math.Cos(3*ang + 25*r - 0.05*t)
					band := math.Exp(-math.Abs(r-0.12)*14) * math.Max(0, spiral)
					cloud := g*0.5 + band - 0.35
					if cloud < 0 {
						cloud = 0
					}
					v = 2.5e-3 * cloud * cloud * (1 - zf*0.8)
				case "U", "V":
					// Horizontal wind: tangential vortex flow plus a steering
					// background current and turbulence. Tangential speed
					// peaks at the eyewall radius and decays outside (a
					// Rankine-like profile).
					tang := 55.0 * rankine(r, 0.12)
					g := FBM3(seed+11, zf, yf+0.01*t, xf, 4, octTC, 0.55)
					if field == "U" {
						v = -tang*math.Sin(ang) + 6 + 5*g
					} else {
						v = tang*math.Cos(ang) - 3 + 5*g
					}
					v *= 1 - 0.5*zf
				case "W":
					// Vertical velocity: updrafts concentrated in the
					// rainbands, weak elsewhere.
					spiral := math.Cos(3*ang + 25*r - 0.05*t)
					band := math.Exp(-math.Abs(r-0.12)*14) * math.Max(0, spiral)
					g := FBM3(seed+17, zf*2, yf*2, xf*2, 6, octQC, 0.6)
					v = 4*band*math.Sin(math.Pi*zf) + 0.4*g
				case "PRECIPf":
					// Precipitation mixing ratio: sparse like QCLOUD but
					// concentrated closer to the surface.
					g := FBM3(seed+23, zf*2, yf*2+0.01*t, xf*2, 6, octQC, 0.6)
					spiral := math.Cos(4*ang + 22*r - 0.04*t)
					band := math.Exp(-math.Abs(r-0.10)*16) * math.Max(0, spiral)
					p := g*0.4 + band - 0.42
					if p < 0 {
						p = 0
					}
					v = 4e-3 * p * p * math.Exp(-3*zf)
				default:
					return nil, fmt.Errorf("datagen: unknown hurricane field %q", field)
				}
				f.Set(float32(v), z, y, x)
			}
		}
	}
	return f, nil
}

// QMCPackField generates a QMCPack-like 4D orbital field [orbitals, nz, ny,
// nx] for the given configuration and spin channel. Configurations differ in
// orbital count, mimicking the paper's QMCPack-1/2/3 (288/480/816 orbitals)
// at reduced scale: config c has (4+4c)·size/16 orbitals.
func QMCPackField(config, spin, size int) (*grid.Field, error) {
	if config < 1 || config > 3 {
		return nil, fmt.Errorf("datagen: qmcpack config %d not in 1..3", config)
	}
	if spin != 0 && spin != 1 {
		return nil, fmt.Errorf("datagen: qmcpack spin %d not in {0, 1}", spin)
	}
	if size < 8 {
		return nil, fmt.Errorf("datagen: qmcpack size %d too small", size)
	}
	norb := (4 + 4*config) * size / 16
	if norb < 3 {
		norb = 3
	}
	nz, ny, nx := size, size*3/4, size*3/4
	if ny < 6 {
		ny, nx = 6, 6
	}
	seed := uint64(0xC0FFEE + config*1000 + spin)

	name := fmt.Sprintf("qmcpack-%d/spin%d", config, spin)
	f := grid.MustNew(name, norb, nz, ny, nx)
	for k := 0; k < norb; k++ {
		// Each orbital: superposition of three plane waves whose frequency
		// grows with the orbital index, under a soft envelope.
		var kz, ky, kx, ph [3]float64
		for j := 0; j < 3; j++ {
			base := float64(k)*0.9 + 2
			if cap := float64(size) / 5; base > cap {
				base = cap
			}
			kz[j] = base * (1 + 0.7*latticeHash(seed, int64(k), int64(j), 1, 0))
			ky[j] = base * (1 + 0.7*latticeHash(seed, int64(k), int64(j), 2, 0))
			kx[j] = base * (1 + 0.7*latticeHash(seed, int64(k), int64(j), 3, 0))
			ph[j] = math.Pi * latticeHash(seed, int64(k), int64(j), 4, 0)
		}
		for z := 0; z < nz; z++ {
			zf := float64(z) / float64(nz)
			for y := 0; y < ny; y++ {
				yf := float64(y) / float64(ny)
				for x := 0; x < nx; x++ {
					xf := float64(x) / float64(nx)
					var psi float64
					for j := 0; j < 3; j++ {
						psi += math.Cos(kz[j]*zf*2*math.Pi + ky[j]*yf*2*math.Pi + kx[j]*xf*2*math.Pi + ph[j])
					}
					env := math.Exp(-((zf-0.5)*(zf-0.5) + (yf-0.5)*(yf-0.5) + (xf-0.5)*(xf-0.5)) * 2)
					// Positive-density-like values: range ~[0, 35].
					v := 4 * env * psi * psi
					f.Set(float32(v), k, z, y, x)
				}
			}
		}
	}
	return f, nil
}

// RTMSnapshots runs the FDTD acoustic solver and captures wavefield
// snapshots at the requested time steps (ascending). sizeClass "small" uses
// a (2s, 4s, 4s) grid and "big" a (2s, 8s, 8s) grid, mirroring the paper's
// RTM-SmallScale/BigScale pair; both share the physics but not the mesh, so
// small-scale training and big-scale testing is a genuine configuration
// change (capability level 2).
func RTMSnapshots(sizeClass string, steps []int, size int) ([]*grid.Field, error) {
	var nz, ny, nx int
	var seed uint64
	switch sizeClass {
	case "small":
		nz, ny, nx, seed = 2*size, 4*size, 4*size, 0x5E15
	case "big":
		nz, ny, nx, seed = 2*size, 8*size, 8*size, 0x5E15+1
	default:
		return nil, fmt.Errorf("datagen: rtm size class %q not in {small, big}", sizeClass)
	}
	sim, err := NewWaveSim(seed, nz, ny, nx)
	if err != nil {
		return nil, err
	}
	out := make([]*grid.Field, 0, len(steps))
	prev := -1
	for _, st := range steps {
		if st <= prev {
			return nil, fmt.Errorf("datagen: rtm steps must be ascending, got %v", steps)
		}
		sim.StepTo(st)
		snap := sim.Snapshot(fmt.Sprintf("rtm-%s/snapshot-%d", sizeClass, st))
		addRTMBackground(snap)
		out = append(out, snap)
		prev = st
	}
	return out, nil
}

// addRTMBackground superimposes the smooth positive illumination background
// RTM snapshots carry on top of the oscillating wavefield. This matches the
// Table I signature of the paper's RTM data — a small value range (~0.1)
// with a mean around half of it (0.09 for range 0.16) — and it is what
// makes the λ·mean constant-block threshold of the Compressibility
// Adjustment meaningful on seismic data (a zero-mean field would get a
// near-zero threshold).
func addRTMBackground(f *grid.Field) {
	const (
		waveScale = 0.06 // target wave amplitude in field units
		baseLevel = 0.05
		baseGrad  = 0.03
	)
	// One fixed scale for every snapshot and size class: the source wavelet
	// amplitude is a simulation constant, so a constant factor keeps all
	// snapshots in identical units (propagated wavefronts sit at ~0.005–0.03
	// raw, i.e. ~0.03–0.15 scaled ≈ waveScale).
	const scale = float32(5 * waveScale / 0.06)
	nz := f.Dims[0]
	plane := f.Size() / nz
	for z := 0; z < nz; z++ {
		bg := float32(baseLevel + baseGrad*float64(z)/float64(nz))
		base := z * plane
		for i := 0; i < plane; i++ {
			f.Data[base+i] = f.Data[base+i]*scale + bg
		}
	}
}

// rankine is the normalised Rankine vortex tangential-speed profile: linear
// growth inside the eyewall radius rm, 1/r decay outside.
func rankine(r, rm float64) float64 {
	if r <= 0 {
		return 0
	}
	if r < rm {
		return r / rm
	}
	return rm / r
}
