package datagen

import (
	"math"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

func TestNoiseDeterministic(t *testing.T) {
	a := Noise3(1, 0.3, 1.7, 2.9)
	b := Noise3(1, 0.3, 1.7, 2.9)
	if a != b {
		t.Fatal("noise not deterministic")
	}
	c := Noise3(2, 0.3, 1.7, 2.9)
	if a == c {
		t.Fatal("seed has no effect")
	}
}

func TestNoiseRangeAndContinuity(t *testing.T) {
	for i := 0; i < 2000; i++ {
		x := float64(i) * 0.013
		v := Noise3(7, x, x*0.7, x*0.3)
		if v < -1.01 || v > 1.01 {
			t.Fatalf("noise value %v out of [-1,1]", v)
		}
		// Continuity: adjacent samples differ by a bounded amount.
		w := Noise3(7, x+1e-3, x*0.7, x*0.3)
		if math.Abs(v-w) > 0.02 {
			t.Fatalf("noise discontinuity at %v: %v vs %v", x, v, w)
		}
	}
}

func TestFBMOctavesIncreaseRoughness(t *testing.T) {
	rough := func(oct int) float64 {
		var sum float64
		prev := 0.0
		for i := 0; i < 500; i++ {
			x := float64(i) * 0.05
			v := FBM3(11, x, 0.2, 0.8, 2, oct, 0.6)
			if i > 0 {
				sum += math.Abs(v - prev)
			}
			prev = v
		}
		return sum
	}
	if rough(5) <= rough(1) {
		t.Errorf("5-octave fBm (%v) not rougher than 1-octave (%v)", rough(5), rough(1))
	}
}

func TestWaveSimPropagates(t *testing.T) {
	sim, err := NewWaveSim(1, 16, 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	sim.StepTo(60)
	f := sim.Snapshot("t")
	mn, mx := f.Range()
	if mx-mn == 0 {
		t.Fatal("wavefield is identically zero after 60 steps")
	}
	for _, v := range f.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("wavefield blew up (non-finite values)")
		}
	}
	// RTM signature: small value range (paper Table I: 0.05–0.16).
	if mx-mn > 10 {
		t.Errorf("wavefield range %v unexpectedly large", mx-mn)
	}
	// Energy must have reached beyond the immediate source neighborhood.
	far := f.At(12, 20, 20)
	_ = far // presence check only; amplitude may be tiny
}

func TestWaveSimStable(t *testing.T) {
	sim, err := NewWaveSim(2, 12, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	sim.StepTo(400)
	f := sim.Snapshot("t")
	for _, v := range f.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("instability: non-finite value")
		}
		if v > 100 || v < -100 {
			t.Fatalf("instability: runaway amplitude %v", v)
		}
	}
}

func TestWaveSimTooSmall(t *testing.T) {
	if _, err := NewWaveSim(1, 4, 4, 4); err == nil {
		t.Fatal("expected size error")
	}
}

func TestNyxFieldSignatures(t *testing.T) {
	f, err := NyxField("baryon_density", 1, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Dims) != 3 || f.Dims[0] != 16 {
		t.Fatalf("dims = %v", f.Dims)
	}
	mn, mx := f.Range()
	if mn < 0 {
		t.Errorf("density has negative values (min %v)", mn)
	}
	if mx/math.Max(mn, 1e-6) < 10 {
		t.Errorf("density dynamic range %v too small for a log-normal field", mx/mn)
	}
	// Determinism.
	g, err := NyxField("baryon_density", 1, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatal("nyx field not deterministic")
		}
	}
}

func TestNyxConfigsDiffer(t *testing.T) {
	a, _ := NyxField("baryon_density", 1, 1, 16)
	b, err := NyxField("baryon_density", 2, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Data {
		if a.Data[i] == b.Data[i] {
			same++
		}
	}
	if same > len(a.Data)/100 {
		t.Errorf("configs 1 and 2 share %d/%d values", same, len(a.Data))
	}
}

func TestNyxTimeEvolution(t *testing.T) {
	a, _ := NyxField("temperature", 1, 1, 16)
	b, _ := NyxField("temperature", 1, 5, 16)
	var diff float64
	for i := range a.Data {
		diff += math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
	}
	if diff == 0 {
		t.Fatal("time steps identical")
	}
}

func TestNyxErrors(t *testing.T) {
	if _, err := NyxField("baryon_density", 3, 1, 16); err == nil {
		t.Error("config 3 accepted")
	}
	if _, err := NyxField("nope", 1, 1, 16); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := NyxField("baryon_density", 1, 1, 2); err == nil {
		t.Error("tiny size accepted")
	}
}

func TestHurricaneQCloudIsSparse(t *testing.T) {
	f, err := HurricaneField("QCLOUD", 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	zeros := 0
	for _, v := range f.Data {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(f.Size())
	if frac < 0.3 {
		t.Errorf("QCLOUD zero fraction %.2f, want >= 0.3 (sparse cloud field)", frac)
	}
	mn, _ := f.Range()
	if mn < 0 {
		t.Errorf("cloud water negative: %v", mn)
	}
}

func TestHurricaneVortexMoves(t *testing.T) {
	a, _ := HurricaneField("TC", 5, 8)
	b, _ := HurricaneField("TC", 48, 8)
	// Locate the warm-core maximum at the surface level (z = 0).
	locate := func(f *grid.Field) (int, int) {
		ny, nx := f.Dims[1], f.Dims[2]
		bi, bv := 0, float32(math.Inf(-1))
		for i := 0; i < ny*nx; i++ {
			if f.Data[i] > bv {
				bv, bi = f.Data[i], i
			}
		}
		return bi / nx, bi % nx
	}
	ay, ax := locate(a)
	by, bx := locate(b)
	if ay == by && ax == bx {
		t.Error("vortex core did not move between ts 5 and 48")
	}
}

func TestQMCPack4DAndConfigsScale(t *testing.T) {
	f1, err := QMCPackField(1, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Dims) != 4 {
		t.Fatalf("dims = %v, want 4D", f1.Dims)
	}
	f3, err := QMCPackField(3, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Dims[0] <= f1.Dims[0] {
		t.Errorf("config 3 orbitals (%d) not more than config 1 (%d)", f3.Dims[0], f1.Dims[0])
	}
	s0, _ := QMCPackField(1, 0, 16)
	s1, err := QMCPackField(1, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range s0.Data {
		if s0.Data[i] == s1.Data[i] {
			same++
		}
	}
	if same > len(s0.Data)/100 {
		t.Error("spin channels nearly identical")
	}
}

func TestQMCPackErrors(t *testing.T) {
	if _, err := QMCPackField(0, 0, 16); err == nil {
		t.Error("config 0 accepted")
	}
	if _, err := QMCPackField(1, 2, 16); err == nil {
		t.Error("spin 2 accepted")
	}
}

func TestRTMSnapshotsOrderedSteps(t *testing.T) {
	snaps, err := RTMSnapshots("small", []int{20, 40, 60}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	if _, err := RTMSnapshots("small", []int{40, 20}, 8); err == nil {
		t.Error("descending steps accepted")
	}
	if _, err := RTMSnapshots("huge", []int{10}, 8); err == nil {
		t.Error("bad size class accepted")
	}
	// Later snapshots must differ from earlier ones.
	var diff float64
	for i := range snaps[0].Data {
		diff += math.Abs(float64(snaps[2].Data[i]) - float64(snaps[0].Data[i]))
	}
	if diff == 0 {
		t.Error("snapshots identical across time")
	}
}

func TestRTMBigLargerThanSmall(t *testing.T) {
	small, err := RTMSnapshots("small", []int{10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RTMSnapshots("big", []int{10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if big[0].Size() <= small[0].Size() {
		t.Errorf("big (%d) not larger than small (%d)", big[0].Size(), small[0].Size())
	}
}

func TestHurricaneExtraFields(t *testing.T) {
	for _, field := range HurricaneExtraFields {
		f, err := HurricaneField(field, 10, 8)
		if err != nil {
			t.Fatalf("%s: %v", field, err)
		}
		mn, mx := f.Range()
		if mx-mn == 0 {
			t.Errorf("%s: constant field", field)
		}
		for _, v := range f.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite value", field)
			}
		}
	}
	// Wind components must show the vortex: opposite signs across the eye.
	u, _ := HurricaneField("U", 10, 8)
	ny, nx := u.Dims[1], u.Dims[2]
	// The eye at ts=10 sits near (0.41, 0.53) in fractional coords.
	cy, cx := int(0.41*float64(ny)), int(0.53*float64(nx))
	above := u.At(0, clampI(cy-6, ny), cx)
	below := u.At(0, clampI(cy+6, ny), cx)
	if (above > 0) == (below > 0) {
		t.Errorf("U does not change sign across the eye: %v vs %v", above, below)
	}
	// Precipitation is sparse.
	p, _ := HurricaneField("PRECIPf", 10, 8)
	zeros := 0
	for _, v := range p.Data {
		if v == 0 {
			zeros++
		}
	}
	if float64(zeros)/float64(p.Size()) < 0.3 {
		t.Errorf("PRECIPf zero fraction %v too low", float64(zeros)/float64(p.Size()))
	}
}

func clampI(v, hi int) int {
	if v < 0 {
		return 0
	}
	if v >= hi {
		return hi - 1
	}
	return v
}
