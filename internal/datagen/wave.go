package datagen

import (
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// WaveSim is a 3D acoustic finite-difference time-domain (FDTD) solver used
// to generate RTM-like seismic wavefield snapshots. It integrates the scalar
// wave equation ∂²p/∂t² = c²∇²p with a second-order leapfrog scheme over a
// heterogeneous layered velocity model, injecting a Ricker wavelet at a
// source point — the same physics reverse time migration propagates, which
// is what gives RTM snapshots their characteristic low-amplitude wave
// textures (paper Fig. 4).
type WaveSim struct {
	nz, ny, nx int
	c2dt2      []float32 // (c·dt/dx)² per cell
	p, pPrev   []float32
	step       int
	srcIdx     int
	srcFreq    float64
	dt         float64
}

// NewWaveSim builds a solver on an nz×ny×nx grid with a layered velocity
// model perturbed by seeded noise (velocities 1.5–4.0 in grid units).
func NewWaveSim(seed uint64, nz, ny, nx int) (*WaveSim, error) {
	if nz < 8 || ny < 8 || nx < 8 {
		return nil, fmt.Errorf("datagen: wave grid %dx%dx%d too small (min 8 per dim)", nz, ny, nx)
	}
	n := nz * ny * nx
	s := &WaveSim{
		nz: nz, ny: ny, nx: nx,
		c2dt2: make([]float32, n),
		p:     make([]float32, n),
		pPrev: make([]float32, n),
		// The wavelet peaks at step t0/dt = (1.2/srcFreq)/dt ≈ 40 and is
		// spent by ~step 80, so snapshots from step ~100 on show a
		// propagating wavefront with stable amplitude rather than a still-
		// ramping source.
		srcFreq: 0.25,
		dt:      0.12, // CFL: cmax·dt/dx = 4·0.12 = 0.48 < 1/√3
	}
	// Layered velocity: speed increases with depth, with lateral variation
	// and a few dipping interfaces, like a simplified Marmousi-style model.
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				depth := float64(z) / float64(nz)
				layer := math.Floor(depth*6 + 1.5*Noise3(seed, float64(x)/24, float64(y)/24, 0))
				c := 1.5 + 0.4*layer + 0.1*Noise3(seed+1, float64(x)/10, float64(y)/10, float64(z)/10)
				if c < 1.5 {
					c = 1.5
				}
				if c > 4.0 {
					c = 4.0
				}
				v := c * s.dt // dx = 1
				s.c2dt2[(z*ny+y)*nx+x] = float32(v * v)
			}
		}
	}
	s.srcIdx = (2*ny + ny/2) * nx // near-surface source, centered in y,x
	s.srcIdx += nx / 2
	return s, nil
}

// Step advances the wavefield one time step.
func (s *WaveSim) Step() {
	nz, ny, nx := s.nz, s.ny, s.nx
	p, prev := s.p, s.pPrev
	next := prev // reuse: prev becomes next in the leapfrog rotation
	for z := 1; z < nz-1; z++ {
		for y := 1; y < ny-1; y++ {
			base := (z*ny + y) * nx
			for x := 1; x < nx-1; x++ {
				i := base + x
				lap := p[i-1] + p[i+1] + p[i-nx] + p[i+nx] + p[i-nx*ny] + p[i+nx*ny] - 6*p[i]
				next[i] = 2*p[i] - prev[i] + s.c2dt2[i]*lap
			}
		}
	}
	// Absorbing-ish boundary: simple damping sponge on the faces keeps
	// energy from reflecting back too strongly.
	s.damp(next)
	// Ricker wavelet source.
	t := float64(s.step) * s.dt
	t0 := 1.2 / s.srcFreq
	arg := math.Pi * math.Pi * s.srcFreq * s.srcFreq * (t - t0) * (t - t0)
	next[s.srcIdx] += float32((1 - 2*arg) * math.Exp(-arg) * 0.5)
	s.p, s.pPrev = next, p
	s.step++
}

func (s *WaveSim) damp(buf []float32) {
	const width = 4
	const factor = 0.90
	nz, ny, nx := s.nz, s.ny, s.nx
	att := func(d int) float32 {
		if d >= width {
			return 1
		}
		return float32(math.Pow(factor, float64(width-d)))
	}
	for z := 0; z < nz; z++ {
		dz := min3(z, nz-1-z, width)
		for y := 0; y < ny; y++ {
			dy := min3(y, ny-1-y, width)
			if dz >= width && dy >= width {
				// Only x edges need attention in this row.
				base := (z*ny + y) * nx
				for x := 0; x < width; x++ {
					buf[base+x] *= att(x)
					buf[base+nx-1-x] *= att(x)
				}
				continue
			}
			a := att(dz) * att(dy)
			base := (z*ny + y) * nx
			for x := 0; x < nx; x++ {
				buf[base+x] = buf[base+x] * a * att(min3(x, nx-1-x, width))
			}
		}
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// StepTo advances the simulation to the given absolute time step.
func (s *WaveSim) StepTo(step int) {
	for s.step < step {
		s.Step()
	}
}

// Snapshot copies the current pressure field into a named grid field.
func (s *WaveSim) Snapshot(name string) *grid.Field {
	f := grid.MustNew(name, s.nz, s.ny, s.nx)
	copy(f.Data, s.p)
	return f
}

// TimeStep reports the current step number.
func (s *WaveSim) TimeStep() int { return s.step }
