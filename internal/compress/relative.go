package compress

import (
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// RelBound wraps an absolute-error-bound compressor as a value-range
// relative one (SZ's "REL" mode, §II): the knob becomes eb/valueRange, so
// the same setting means the same proportional distortion on any dataset.
// Decompression is unchanged — the wrapped codec's absolute bound is stored
// in the stream as usual.
type RelBound struct {
	// Inner is the wrapped absolute-bound codec.
	Inner Compressor
}

// NewRelBound wraps an absolute-error-bound codec. Wrapping a precision-knob
// codec is rejected at Compress time.
func NewRelBound(inner Compressor) *RelBound { return &RelBound{Inner: inner} }

// Name implements Compressor.
func (r *RelBound) Name() string { return r.Inner.Name() + "-rel" }

// Axis implements Compressor: relative bounds live in (0, 1].
func (r *RelBound) Axis() Axis {
	return Axis{Kind: AbsErrorBound, Min: 1e-9, Max: 1}
}

// Compress implements Compressor: the relative knob is scaled by the field's
// value range before delegating. A constant field (range 0) compresses with
// a tiny absolute bound.
func (r *RelBound) Compress(f *grid.Field, rel float64) ([]byte, error) {
	if r.Inner.Axis().Kind != AbsErrorBound {
		return nil, fmt.Errorf("compress: cannot wrap precision codec %s as relative-bound", r.Inner.Name())
	}
	if !(rel > 0) || rel > 1 || math.IsNaN(rel) {
		return nil, fmt.Errorf("compress: relative bound must be in (0, 1], got %v", rel)
	}
	vr := f.ValueRange()
	abs := rel * vr
	if abs <= 0 {
		abs = 1e-12
	}
	return r.Inner.Compress(f, abs)
}

// Decompress implements Compressor.
func (r *RelBound) Decompress(blob []byte) (*grid.Field, error) {
	return r.Inner.Decompress(blob)
}

// WithWorkers implements ParallelCompressor by forwarding the budget to the
// wrapped codec; wrapping a codec without intra-field parallelism is a no-op.
func (r *RelBound) WithWorkers(n int) Compressor {
	return &RelBound{Inner: WithWorkers(r.Inner, n)}
}
