// Package compress defines the error-controlled lossy compressor abstraction
// shared by the SZ-, ZFP-, FPZIP- and MGARD-like codecs, together with the
// "configuration axis" concept FXRZ regresses over.
//
// Every codec in this repository is driven by a single scalar knob. For
// SZ/ZFP/MGARD the knob is an absolute error bound; for FPZIP it is an
// integer precision (number of retained significant bits, 1..32). FXRZ is
// compressor-agnostic precisely because it only ever manipulates the knob
// through the Axis interface: the ML model regresses the axis' model-space
// value (log10 of the bound, or the precision itself) against data features
// and the adjusted target ratio.
package compress

import (
	"errors"
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// ErrCorrupt reports a malformed compressed stream.
var ErrCorrupt = errors.New("compress: corrupt stream")

// Compressor is an error-controlled lossy compressor.
type Compressor interface {
	// Name returns the codec identifier used in experiment tables
	// ("sz", "zfp", "fpzip", "mgard").
	Name() string
	// Axis describes the codec's configuration knob.
	Axis() Axis
	// Compress encodes the field under the given knob setting.
	Compress(f *grid.Field, knob float64) ([]byte, error)
	// Decompress reconstructs a field from an encoded stream.
	Decompress(blob []byte) (*grid.Field, error)
}

// ParallelCompressor is implemented by codecs whose Compress/Decompress can
// fan a single call out across a worker pool. The contract is strict: output
// must be byte-identical (and reconstructions bit-identical) at every worker
// budget, so binding a budget never invalidates a ratio curve, a trained
// model, or a recorded baseline.
type ParallelCompressor interface {
	Compressor
	// WithWorkers returns a codec bound to the given worker budget, with
	// pool.Workers semantics: 0 selects all cores, 1 forces a fully serial
	// run. The receiver is not modified.
	WithWorkers(n int) Compressor
}

// WithWorkers binds a worker budget to c when the codec supports intra-field
// parallelism, and returns c unchanged otherwise. Sweeps use it to split a
// Parallelism budget between outer (per-task) and inner (per-call) fan-out
// without caring which codecs can use the inner share.
func WithWorkers(c Compressor, n int) Compressor {
	if p, ok := c.(ParallelCompressor); ok {
		return p.WithWorkers(n)
	}
	return c
}

// AxisKind distinguishes the two knob semantics in the evaluated codecs.
type AxisKind int

const (
	// AbsErrorBound knobs are positive absolute L∞ error bounds; the model
	// space is log10(knob) because ratios vary with the bound's exponent.
	AbsErrorBound AxisKind = iota
	// Precision knobs are integer bit precisions (FPZIP, 1..32); larger
	// precision means lower error and lower ratio, so the model space is the
	// negated precision to keep "larger model value → larger ratio".
	Precision
)

// Axis describes a codec's configuration knob and its valid domain.
type Axis struct {
	Kind AxisKind
	// Min and Max bound the knob domain used for training sweeps and for
	// FRaZ's search range.
	Min, Max float64
}

// ToModel maps a knob value into the space the ML model regresses in.
func (a Axis) ToModel(knob float64) float64 {
	switch a.Kind {
	case AbsErrorBound:
		return math.Log10(knob)
	default:
		return -knob
	}
}

// FromModel inverts ToModel and clamps into the valid domain.
func (a Axis) FromModel(v float64) float64 {
	var knob float64
	switch a.Kind {
	case AbsErrorBound:
		knob = math.Pow(10, v)
	default:
		knob = math.Round(-v)
	}
	return a.Clamp(knob)
}

// Clamp restricts a knob to the axis domain (and rounds precisions).
func (a Axis) Clamp(knob float64) float64 {
	if a.Kind == Precision {
		knob = math.Round(knob)
	}
	if knob < a.Min {
		knob = a.Min
	}
	if knob > a.Max {
		knob = a.Max
	}
	return knob
}

// Span returns n knob settings covering the domain: log-uniform for error
// bounds (matching the paper's "uniformly spanned ... error bound settings"
// over exponents), integer-uniform for precisions. n must be >= 2.
func (a Axis) Span(n int) []float64 {
	if n < 2 {
		n = 2
	}
	out := make([]float64, 0, n)
	switch a.Kind {
	case AbsErrorBound:
		lo, hi := math.Log10(a.Min), math.Log10(a.Max)
		for i := 0; i < n; i++ {
			out = append(out, math.Pow(10, lo+(hi-lo)*float64(i)/float64(n-1)))
		}
	default:
		lo, hi := a.Min, a.Max
		prev := math.Inf(-1)
		for i := 0; i < n; i++ {
			p := math.Round(lo + (hi-lo)*float64(i)/float64(n-1))
			if p != prev {
				out = append(out, p)
				prev = p
			}
		}
	}
	return out
}

// MaxPlausibleElems bounds the element count a payload of the given size
// could plausibly encode with any built-in codec. The most compact real
// streams (constant fields through the LZ stage) stay far below 65536
// elements per payload byte; decoders reject headers claiming more before
// allocating, so corrupt streams cannot demand gigabyte buffers.
func MaxPlausibleElems(payloadLen int) int { return 65536*payloadLen + 65536 }

// maxAddressableElems mirrors grid's addressable-size ceiling (2^40
// samples); header dims whose product exceeds it can never name a real
// field and are rejected as corrupt before any arithmetic that could
// overflow.
const maxAddressableElems = 1 << 40

// CheckElems validates the element count a decoded header claims against
// the payload that supposedly encodes it, returning the dims product. The
// product is accumulated overflow-safely, so absurd headers (four maximal
// dims whose naive product wraps around int64 to something small) fail
// here — before any decoder allocation — rather than slipping past a
// naive `product > budget` compare. Every decode path calls this right
// after ParseHeader: the serve layer feeds attacker-controlled bytes
// straight into Decompress, and the contract is errors, never panics or
// unbounded allocations.
func CheckElems(dims []int, payloadLen int) (int, error) {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return 0, fmt.Errorf("%w: non-positive dim %d", ErrCorrupt, d)
		}
		if n > maxAddressableElems/d {
			return 0, fmt.Errorf("%w: dims %v overflow addressable size", ErrCorrupt, dims)
		}
		n *= d
	}
	if n > MaxPlausibleElems(payloadLen) {
		return 0, fmt.Errorf("%w: %d elements implausible for %d payload bytes", ErrCorrupt, n, payloadLen)
	}
	return n, nil
}

// Ratio returns the compression ratio of an encoded stream for a field.
func Ratio(f *grid.Field, blob []byte) float64 {
	if len(blob) == 0 {
		return 0
	}
	return float64(f.Bytes()) / float64(len(blob))
}

// MaxAbsError returns the L∞ distance between two equally-shaped fields.
func MaxAbsError(a, b *grid.Field) (float64, error) {
	if a.Size() != b.Size() {
		return 0, fmt.Errorf("compress: size mismatch %d vs %d", a.Size(), b.Size())
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m, nil
}

// CompressRatio is a convenience that compresses and reports the ratio.
func CompressRatio(c Compressor, f *grid.Field, knob float64) (float64, error) {
	blob, err := c.Compress(f, knob)
	if err != nil {
		return 0, err
	}
	return Ratio(f, blob), nil
}
