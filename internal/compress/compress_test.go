package compress

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/fxrz-go/fxrz/internal/grid"
)

func TestAxisErrorBoundModelSpace(t *testing.T) {
	a := Axis{Kind: AbsErrorBound, Min: 1e-9, Max: 100}
	if got := a.ToModel(1e-3); got != -3 {
		t.Errorf("ToModel(1e-3) = %v", got)
	}
	if got := a.FromModel(-3); math.Abs(got-1e-3)/1e-3 > 1e-12 {
		t.Errorf("FromModel(-3) = %v", got)
	}
	// Clamping.
	if got := a.FromModel(10); got != 100 {
		t.Errorf("FromModel(10) = %v, want clamp to 100", got)
	}
	if got := a.FromModel(-30); got != 1e-9 {
		t.Errorf("FromModel(-30) = %v, want clamp to 1e-9", got)
	}
}

func TestAxisPrecisionModelSpace(t *testing.T) {
	a := Axis{Kind: Precision, Min: 2, Max: 32}
	if got := a.ToModel(16); got != -16 {
		t.Errorf("ToModel(16) = %v", got)
	}
	if got := a.FromModel(-16.4); got != 16 {
		t.Errorf("FromModel(-16.4) = %v, want rounded 16", got)
	}
	if got := a.Clamp(99); got != 32 {
		t.Errorf("Clamp(99) = %v", got)
	}
	if got := a.Clamp(0.2); got != 2 {
		t.Errorf("Clamp(0.2) = %v", got)
	}
}

func TestAxisRoundTripQuick(t *testing.T) {
	a := Axis{Kind: AbsErrorBound, Min: 1e-12, Max: 1e6}
	check := func(exp int8) bool {
		e := int(exp) % 6 // exponents in (-6, 6), inside the domain
		knob := math.Pow(10, float64(e))
		back := a.FromModel(a.ToModel(knob))
		return math.Abs(back-knob)/knob < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestAxisSpan(t *testing.T) {
	a := Axis{Kind: AbsErrorBound, Min: 1e-4, Max: 1}
	s := a.Span(5)
	if len(s) != 5 {
		t.Fatalf("span len %d", len(s))
	}
	if math.Abs(s[0]-1e-4)/1e-4 > 1e-9 || math.Abs(s[4]-1) > 1e-12 {
		t.Errorf("span endpoints %v", s)
	}
	// Log-uniform: consecutive ratios equal.
	r1, r2 := s[1]/s[0], s[2]/s[1]
	if math.Abs(r1-r2)/r1 > 1e-9 {
		t.Errorf("span not log-uniform: %v", s)
	}
	p := Axis{Kind: Precision, Min: 2, Max: 32}
	ps := p.Span(40)
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Fatalf("precision span not strictly increasing: %v", ps)
		}
		if ps[i] != math.Round(ps[i]) {
			t.Fatalf("precision span not integral: %v", ps)
		}
	}
	if got := a.Span(1); len(got) < 2 {
		t.Errorf("Span(1) should clamp to 2 points, got %v", got)
	}
}

func TestRatioAndMaxAbsError(t *testing.T) {
	f := grid.MustNew("t", 10)
	if got := Ratio(f, make([]byte, 10)); got != 4 {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(f, nil); got != 0 {
		t.Errorf("Ratio(empty) = %v", got)
	}
	g := f.Clone()
	g.Data[3] = 7
	e, err := MaxAbsError(f, g)
	if err != nil || e != 7 {
		t.Errorf("MaxAbsError = %v, %v", e, err)
	}
	if _, err := MaxAbsError(f, grid.MustNew("u", 3)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Magic: MagicSZ, Name: "nyx/baryon_density/ts3", Dims: []int{512, 512, 512}, Knob: 1.25e-3}
	blob := AppendHeader(nil, h)
	blob = append(blob, 0xAB, 0xCD) // payload
	got, payload, err := ParseHeader(blob, MagicSZ)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != h.Name || got.Knob != h.Knob || len(got.Dims) != 3 || got.Dims[0] != 512 {
		t.Errorf("header %+v", got)
	}
	if len(payload) != 2 || payload[0] != 0xAB {
		t.Errorf("payload %v", payload)
	}
}

func TestHeaderRejects(t *testing.T) {
	h := Header{Magic: MagicZFP, Name: "x", Dims: []int{4}, Knob: 1}
	blob := AppendHeader(nil, h)
	if _, _, err := ParseHeader(blob, MagicSZ); err == nil {
		t.Error("wrong magic accepted")
	}
	if _, _, err := ParseHeader(nil, MagicZFP); err == nil {
		t.Error("empty blob accepted")
	}
	for cut := 1; cut < len(blob); cut++ {
		if _, _, err := ParseHeader(blob[:cut], MagicZFP); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestHeaderQuick(t *testing.T) {
	check := func(name string, d1, d2 uint8, knob float64) bool {
		if math.IsNaN(knob) {
			return true
		}
		if len(name) > 255 {
			name = name[:255]
		}
		dims := []int{int(d1)%64 + 1, int(d2)%64 + 1}
		blob := AppendHeader(nil, Header{Magic: MagicMGARD, Name: name, Dims: dims, Knob: knob})
		got, _, err := ParseHeader(blob, MagicMGARD)
		return err == nil && got.Name == name && got.Knob == knob &&
			got.Dims[0] == dims[0] && got.Dims[1] == dims[1]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCheckElems(t *testing.T) {
	if n, err := CheckElems([]int{6, 7, 5}, 1024); err != nil || n != 210 {
		t.Fatalf("valid dims rejected: n=%d err=%v", n, err)
	}
	cases := []struct {
		name    string
		dims    []int
		payload int
	}{
		{"zero dim", []int{0, 4}, 1024},
		{"negative dim", []int{-3}, 1024},
		{"budget exceeded", []int{1 << 20, 1 << 10}, 2},
		// The naive product of four maximal dims wraps int64 to something
		// tiny; the overflow-safe accumulation must still reject it.
		{"int64 overflow", []int{1 << 32, 1 << 32, 1 << 32, 1 << 32}, 1 << 20},
		{"addressable overflow", []int{1 << 30, 1 << 30}, 1 << 30},
	}
	for _, tc := range cases {
		n, err := CheckElems(tc.dims, tc.payload)
		if err == nil {
			t.Errorf("%s: accepted (n=%d)", tc.name, n)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error %v does not wrap ErrCorrupt", tc.name, err)
		}
	}
}
