package compresstest

import (
	"math"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
)

// BenchField is the standard 64³ multi-scale field used by the per-codec
// throughput benchmarks: smooth large-scale structure plus a rough octave,
// representative of the synthetic application data.
func BenchField() *grid.Field {
	n := 64
	f := grid.MustNew("bench", n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				v := math.Sin(float64(z)/17)*math.Cos(float64(y)/13) +
					0.3*math.Sin(float64(x)/5+float64(y)/7) +
					0.05*math.Sin(float64(x+y+z)/2)
				f.Set(float32(v), z, y, x)
			}
		}
	}
	return f
}

// BenchCompress measures compression throughput at a knob; the reported
// MB/s metric is raw input bytes per second.
func BenchCompress(b *testing.B, c compress.Compressor, knob float64) {
	b.Helper()
	f := BenchField()
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		blob, err := c.Compress(f, knob)
		if err != nil {
			b.Fatal(err)
		}
		ratio = compress.Ratio(f, blob)
	}
	b.ReportMetric(ratio, "ratio")
}

// BenchDecompress measures decompression throughput.
func BenchDecompress(b *testing.B, c compress.Compressor, knob float64) {
	b.Helper()
	f := BenchField()
	blob, err := c.Compress(f, knob)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}
