// Package compresstest provides conformance checks shared by the codec test
// suites: round-trip geometry, error-bound enforcement, ratio monotonicity
// along the configuration axis, and corruption robustness.
package compresstest

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
)

// TestFields returns a deterministic set of fields exercising the shapes and
// textures the codecs must handle: 1D–4D, constant, smooth, oscillatory,
// noisy, tiny, and boundary-unfriendly (non-multiple-of-4) extents.
func TestFields() []*grid.Field {
	rng := rand.New(rand.NewSource(2023))
	var fs []*grid.Field

	smooth3 := grid.MustNew("smooth3d", 17, 19, 23)
	for z := 0; z < 17; z++ {
		for y := 0; y < 19; y++ {
			for x := 0; x < 23; x++ {
				v := math.Sin(float64(z)/5) * math.Cos(float64(y)/7) * math.Sin(float64(x)/9)
				smooth3.Set(float32(10+5*v), z, y, x)
			}
		}
	}
	fs = append(fs, smooth3)

	const1 := grid.MustNew("const2d", 16, 16)
	const1.Fill(3.25)
	fs = append(fs, const1)

	noisy := grid.MustNew("noisy1d", 211)
	for i := range noisy.Data {
		noisy.Data[i] = rng.Float32()*100 - 50
	}
	fs = append(fs, noisy)

	wave2 := grid.MustNew("wave2d", 33, 31)
	for y := 0; y < 33; y++ {
		for x := 0; x < 31; x++ {
			wave2.Set(float32(math.Sin(float64(x+y)/3)), y, x)
		}
	}
	fs = append(fs, wave2)

	f4 := grid.MustNew("field4d", 3, 5, 7, 6)
	for i := range f4.Data {
		f4.Data[i] = float32(math.Sin(float64(i) / 40))
	}
	fs = append(fs, f4)

	tiny := grid.MustNew("tiny", 2, 2, 2)
	copy(tiny.Data, []float32{1, 2, 3, 4, 5, 6, 7, 8})
	fs = append(fs, tiny)

	spiky := grid.MustNew("spiky3d", 9, 9, 9)
	for i := range spiky.Data {
		if i%57 == 0 {
			spiky.Data[i] = 1e6
		} else {
			spiky.Data[i] = float32(i % 3)
		}
	}
	fs = append(fs, spiky)

	return fs
}

// RoundTrip checks that decompression restores the geometry and that the
// reported error metric respects the codec's contract. boundFor maps the
// knob to the guaranteed L∞ bound (identity for error-bound codecs; a
// precision-dependent bound for FPZIP). A nil boundFor skips the bound check.
func RoundTrip(t *testing.T, c compress.Compressor, knobs []float64, boundFor func(f *grid.Field, knob float64) float64) {
	t.Helper()
	for _, f := range TestFields() {
		for _, knob := range knobs {
			blob, err := c.Compress(f, knob)
			if err != nil {
				t.Fatalf("%s: compress %s knob=%g: %v", c.Name(), f.Name, knob, err)
			}
			g, err := c.Decompress(blob)
			if err != nil {
				t.Fatalf("%s: decompress %s knob=%g: %v", c.Name(), f.Name, knob, err)
			}
			if g.Size() != f.Size() || len(g.Dims) != len(f.Dims) {
				t.Fatalf("%s: %s knob=%g: geometry mismatch %v vs %v", c.Name(), f.Name, knob, g.Dims, f.Dims)
			}
			for i, d := range f.Dims {
				if g.Dims[i] != d {
					t.Fatalf("%s: %s: dim %d = %d, want %d", c.Name(), f.Name, i, g.Dims[i], d)
				}
			}
			if boundFor != nil {
				bound := boundFor(f, knob)
				maxErr, err := compress.MaxAbsError(f, g)
				if err != nil {
					t.Fatal(err)
				}
				if maxErr > bound*(1+1e-6) {
					t.Errorf("%s: %s knob=%g: max abs error %g exceeds bound %g", c.Name(), f.Name, knob, maxErr, bound)
				}
			}
		}
	}
}

// MonotoneRatio checks that looser settings never substantially shrink the
// compression ratio on a smooth field. Lossy back ends are not perfectly
// monotone, so a small tolerance is allowed.
func MonotoneRatio(t *testing.T, c compress.Compressor, knobs []float64, looserIsLarger bool) {
	t.Helper()
	f := TestFields()[0] // smooth3d
	prev := -math.MaxFloat64
	for i, knob := range knobs {
		r, err := compress.CompressRatio(c, f, knob)
		if err != nil {
			t.Fatalf("%s: knob=%g: %v", c.Name(), knob, err)
		}
		if r <= 0 {
			t.Fatalf("%s: knob=%g: nonpositive ratio %g", c.Name(), knob, r)
		}
		if i > 0 && looserIsLarger && r < prev*0.85 {
			t.Errorf("%s: ratio dropped from %.2f to %.2f between knobs %g and %g", c.Name(), prev, r, knobs[i-1], knob)
		}
		prev = r
	}
}

// RejectsCorrupt verifies the decoder returns errors (never panics) on
// mutated streams and on garbage.
func RejectsCorrupt(t *testing.T, c compress.Compressor, knob float64) {
	t.Helper()
	f := TestFields()[0]
	blob, err := c.Compress(f, knob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decompress(nil); err == nil {
		t.Errorf("%s: nil blob accepted", c.Name())
	}
	if _, err := c.Decompress([]byte{1, 2, 3}); err == nil {
		t.Errorf("%s: garbage accepted", c.Name())
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		mut := append([]byte(nil), blob...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: panic on corrupt stream: %v", c.Name(), r)
				}
			}()
			g, err := c.Decompress(mut)
			_ = g
			_ = err // either error or wrong data is fine; panic is not
		}()
	}
	// Truncations must error out, not panic.
	for cut := 0; cut < len(blob); cut += 1 + len(blob)/23 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: panic on truncated stream (len %d): %v", c.Name(), cut, r)
				}
			}()
			_, _ = c.Decompress(blob[:cut])
		}()
	}
}
