package compress

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// Header is the codec-independent stream prefix: a magic byte identifying
// the codec, the field geometry, and the knob the stream was encoded under.
// Codecs append their own payload after it.
type Header struct {
	Magic byte
	Name  string
	Dims  []int
	Knob  float64
}

// Codec magic bytes.
const (
	MagicSZ    byte = 0x5A
	MagicSZ2   byte = 0x5B
	MagicZFP   byte = 0x2F
	MagicFPZIP byte = 0xF2
	MagicMGARD byte = 0x4D
	// MagicIndexed marks the indexed container: a codec blob wrapped together
	// with a region-decode offset index (see internal/roi). The inner blob is
	// byte-identical to what the codec would have written on its own.
	MagicIndexed byte = 0xC1
)

// AppendHeader serialises h onto dst and returns the extended slice.
func AppendHeader(dst []byte, h Header) []byte {
	dst = append(dst, h.Magic)
	dst = append(dst, byte(len(h.Name)))
	dst = append(dst, h.Name...)
	dst = append(dst, byte(len(h.Dims)))
	for _, d := range h.Dims {
		dst = binary.AppendUvarint(dst, uint64(d))
	}
	var kb [8]byte
	binary.LittleEndian.PutUint64(kb[:], math.Float64bits(h.Knob))
	return append(dst, kb[:]...)
}

// ParseHeader decodes a header and returns it with the remaining payload.
func ParseHeader(blob []byte, wantMagic byte) (Header, []byte, error) {
	var h Header
	if len(blob) < 3 {
		return h, nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	h.Magic = blob[0]
	if h.Magic != wantMagic {
		return h, nil, fmt.Errorf("%w: magic 0x%02x, want 0x%02x", ErrCorrupt, h.Magic, wantMagic)
	}
	nameLen := int(blob[1])
	blob = blob[2:]
	if len(blob) < nameLen+1 {
		return h, nil, fmt.Errorf("%w: truncated name", ErrCorrupt)
	}
	h.Name = string(blob[:nameLen])
	blob = blob[nameLen:]
	nd := int(blob[0])
	blob = blob[1:]
	if nd == 0 || nd > grid.MaxDims {
		return h, nil, fmt.Errorf("%w: %d dims", ErrCorrupt, nd)
	}
	h.Dims = make([]int, nd)
	for i := 0; i < nd; i++ {
		d, k := binary.Uvarint(blob)
		if k <= 0 || d == 0 || d > 1<<32 {
			return h, nil, fmt.Errorf("%w: bad dim", ErrCorrupt)
		}
		h.Dims[i] = int(d)
		blob = blob[k:]
	}
	if len(blob) < 8 {
		return h, nil, fmt.Errorf("%w: truncated knob", ErrCorrupt)
	}
	h.Knob = math.Float64frombits(binary.LittleEndian.Uint64(blob[:8]))
	return h, blob[8:], nil
}
