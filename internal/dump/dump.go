// Package dump simulates parallel data dumping on a supercomputer — the
// paper's end-to-end experiment (§V-H, 1024–4096 cores on ANL Bebop, GPFS at
// ~2 GB/s). Each rank analyses its field (FXRZ inference or FRaZ search),
// compresses it, and writes the result through a shared parallel file
// system. Analysis and compression are perfectly parallel across ranks;
// I/O contends for the aggregate bandwidth. The simulator is a discrete-
// event model fed with *measured* per-rank times from the real codecs, so
// the FXRZ-vs-FRaZ gain it reports reproduces the mechanism behind the
// paper's 1.18–8.71× speedups: FRaZ's per-rank analysis costs many
// compressions while FXRZ's costs almost nothing.
package dump

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// RankTask describes one rank's work.
type RankTask struct {
	// AnalysisTime is the fixed-ratio configuration search/inference cost.
	AnalysisTime time.Duration
	// CompressTime is the single compression at the chosen setting.
	CompressTime time.Duration
	// Bytes is the compressed output size to be written.
	Bytes int64
}

// IOConfig models the shared parallel file system.
type IOConfig struct {
	// Bandwidth is the aggregate write bandwidth in bytes/second
	// (Bebop's GPFS: ~2 GB/s).
	Bandwidth float64
	// Channels is the number of concurrent writers the I/O subsystem
	// sustains (Bebop: 2 I/O nodes). The aggregate bandwidth is divided
	// evenly among busy channels.
	Channels int
}

// DefaultIO returns the Bebop-like I/O model used in the evaluation.
func DefaultIO() IOConfig { return IOConfig{Bandwidth: 2e9, Channels: 2} }

// Result summarises one simulated dump.
type Result struct {
	// Makespan is the end-to-end wall time from job start to the last byte
	// written.
	Makespan time.Duration
	// ComputeTime is the mean per-rank analysis+compression time.
	ComputeTime time.Duration
	// IOBusy is the total time the I/O subsystem spent busy.
	IOBusy time.Duration
}

// Simulate runs the discrete-event model for the given rank tasks.
// Each channel serves requests in arrival order at Bandwidth/Channels.
func Simulate(tasks []RankTask, io IOConfig) (Result, error) {
	if len(tasks) == 0 {
		return Result{}, fmt.Errorf("dump: no rank tasks")
	}
	if io.Bandwidth <= 0 || io.Channels <= 0 {
		return Result{}, fmt.Errorf("dump: invalid I/O config %+v", io)
	}
	perChannel := io.Bandwidth / float64(io.Channels)

	// Arrival events: rank i requests I/O at analysis+compress completion.
	type arrival struct {
		at    float64 // seconds
		bytes int64
	}
	arrivals := make([]arrival, len(tasks))
	var computeSum time.Duration
	for i, t := range tasks {
		if t.AnalysisTime < 0 || t.CompressTime < 0 || t.Bytes < 0 {
			return Result{}, fmt.Errorf("dump: negative task parameters at rank %d", i)
		}
		arrivals[i] = arrival{at: (t.AnalysisTime + t.CompressTime).Seconds(), bytes: t.Bytes}
		computeSum += t.AnalysisTime + t.CompressTime
	}
	// Sort arrivals by time (FIFO service).
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].at < arrivals[j].at })

	// Channel availability times as a min-heap.
	ch := make(minHeap, io.Channels)
	heap.Init(&ch)

	var makespan, ioBusy float64
	for _, a := range arrivals {
		free := ch[0]
		start := a.at
		if free > start {
			start = free
		}
		service := float64(a.bytes) / perChannel
		end := start + service
		ch[0] = end
		heap.Fix(&ch, 0)
		ioBusy += service
		if end > makespan {
			makespan = end
		}
	}
	return Result{
		Makespan:    secondsToDuration(makespan),
		ComputeTime: computeSum / time.Duration(len(tasks)),
		IOBusy:      secondsToDuration(ioBusy),
	}, nil
}

// Uniform builds n identical rank tasks — the common case where every rank
// dumps one field of the same dataset.
func Uniform(n int, t RankTask) []RankTask {
	out := make([]RankTask, n)
	for i := range out {
		out[i] = t
	}
	return out
}

// Gain returns how much faster dump a is than dump b (makespan_b /
// makespan_a).
func Gain(a, b Result) float64 {
	if a.Makespan <= 0 {
		return 0
	}
	return float64(b.Makespan) / float64(a.Makespan)
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

type minHeap []float64

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h minHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *minHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
