package dump

import (
	"testing"
	"time"
)

func TestSimulateSingleRank(t *testing.T) {
	tasks := []RankTask{{AnalysisTime: time.Second, CompressTime: 2 * time.Second, Bytes: 2e9}}
	res, err := Simulate(tasks, IOConfig{Bandwidth: 2e9, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 1s analysis + 2s compress + 2e9 bytes at 1e9 B/s per channel = 2s I/O.
	want := 5 * time.Second
	if res.Makespan < want-time.Millisecond || res.Makespan > want+time.Millisecond {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestIOContentionSerializes(t *testing.T) {
	// 4 ranks, instant compute, each writing 1e9 bytes through 2 channels at
	// 2e9 aggregate: per-channel 1e9 B/s, 2 rounds of 2 writes → 2 seconds.
	tasks := Uniform(4, RankTask{Bytes: 1e9})
	res, err := Simulate(tasks, IOConfig{Bandwidth: 2e9, Channels: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * time.Second
	if res.Makespan < want-time.Millisecond || res.Makespan > want+time.Millisecond {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

func TestAnalysisCostDominatesAtScale(t *testing.T) {
	// The paper's mechanism: FRaZ pays many compressions per rank before
	// writing; FXRZ pays ~nothing. With compute fully parallel, the gain is
	// bounded by (analysis+compress)/(compress) when I/O is not the
	// bottleneck, and shrinks as I/O saturates.
	compress := 100 * time.Millisecond
	frazAnalysis := 15 * compress // 15-iteration search
	fxrzAnalysis := 5 * time.Millisecond

	for _, ranks := range []int{16, 256, 4096} {
		io := DefaultIO()
		bytes := int64(1e6)
		fxrz, err := Simulate(Uniform(ranks, RankTask{AnalysisTime: fxrzAnalysis, CompressTime: compress, Bytes: bytes}), io)
		if err != nil {
			t.Fatal(err)
		}
		fraz, err := Simulate(Uniform(ranks, RankTask{AnalysisTime: frazAnalysis, CompressTime: compress, Bytes: bytes}), io)
		if err != nil {
			t.Fatal(err)
		}
		g := Gain(fxrz, fraz)
		if g <= 1 {
			t.Errorf("ranks=%d: FXRZ gain %v <= 1", ranks, g)
		}
	}
}

func TestGainShrinksWhenIOBound(t *testing.T) {
	// When I/O dominates, analysis savings matter less: gain must shrink.
	compress := 10 * time.Millisecond
	small := int64(1e5)
	huge := int64(1e9)
	io := DefaultIO()
	ranks := 512

	gainFor := func(bytes int64) float64 {
		fxrz, err := Simulate(Uniform(ranks, RankTask{AnalysisTime: time.Millisecond, CompressTime: compress, Bytes: bytes}), io)
		if err != nil {
			t.Fatal(err)
		}
		fraz, err := Simulate(Uniform(ranks, RankTask{AnalysisTime: 150 * time.Millisecond, CompressTime: compress, Bytes: bytes}), io)
		if err != nil {
			t.Fatal(err)
		}
		return Gain(fxrz, fraz)
	}
	if gainFor(huge) >= gainFor(small) {
		t.Errorf("I/O-bound gain (%v) should be below compute-bound gain (%v)", gainFor(huge), gainFor(small))
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, DefaultIO()); err == nil {
		t.Error("empty task list accepted")
	}
	if _, err := Simulate(Uniform(1, RankTask{}), IOConfig{}); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if _, err := Simulate([]RankTask{{Bytes: -1}}, DefaultIO()); err == nil {
		t.Error("negative bytes accepted")
	}
}

func TestIOBusyAccounting(t *testing.T) {
	tasks := Uniform(8, RankTask{Bytes: 5e8})
	res, err := Simulate(tasks, IOConfig{Bandwidth: 1e9, Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 8 × 5e8 bytes at 1e9 B/s = 4 seconds of I/O, fully serialized.
	want := 4 * time.Second
	if res.IOBusy < want-time.Millisecond || res.IOBusy > want+time.Millisecond {
		t.Errorf("IOBusy = %v, want %v", res.IOBusy, want)
	}
	if res.Makespan < res.IOBusy {
		t.Errorf("makespan %v below serialized I/O time %v", res.Makespan, res.IOBusy)
	}
}

func TestStragglerDominatesMakespan(t *testing.T) {
	// Heterogeneous ranks: one straggler with a long analysis holds the
	// dump's completion even when everyone else finished long before — the
	// reason per-rank FRaZ search variance hurts at scale.
	tasks := Uniform(63, RankTask{AnalysisTime: 10 * time.Millisecond, CompressTime: 10 * time.Millisecond, Bytes: 1e5})
	tasks = append(tasks, RankTask{AnalysisTime: 5 * time.Second, CompressTime: 10 * time.Millisecond, Bytes: 1e5})
	res, err := Simulate(tasks, DefaultIO())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < 5*time.Second {
		t.Errorf("makespan %v below the straggler's arrival", res.Makespan)
	}
	uniform, err := Simulate(Uniform(64, RankTask{AnalysisTime: 10 * time.Millisecond, CompressTime: 10 * time.Millisecond, Bytes: 1e5}), DefaultIO())
	if err != nil {
		t.Fatal(err)
	}
	if g := Gain(uniform, res); g < 10 {
		t.Errorf("straggler run only %vx slower than uniform", g)
	}
}
