// Package shard is fxrzd's multi-instance serving tier: a rendezvous-hash
// (HRW) placement map over a static peer list, an HTTP peer client with
// deadline propagation and bounded jittered retries, and a scatter-gather
// router that splits a /v1/*-many batch container by owning shard, forwards
// the sub-batches concurrently, and merges the per-item statuses back into
// one response. FRaZ-style distributed I/O pipelines (many nodes, each
// touching a slice of a snapshot) and fleet-scale estimate sweeps are both
// scatter-gather over shards, not one giant field — this package is the
// routing half of that story; internal/serve owns the per-shard execution.
//
// Placement is rendezvous hashing rather than a token ring: every peer
// scores every key and the highest score owns it, so removing one of N
// peers relocates exactly the keys the dead peer owned (~1/N of them) and
// no others — no token rebalancing, no shared state, any instance computes
// the same owner from the same static peer list.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable rendezvous-hash placement map over a static peer
// list. Peers are opaque strings (fxrzd uses base URLs); Self names the
// instance holding this ring.
type Ring struct {
	self  string
	peers []string // sorted, deduplicated
}

// NewRing validates a static peer list into a placement map. The list must
// be non-empty, free of duplicates and empty entries, and contain self —
// every instance carries the same list, differing only in which entry it
// calls its own.
func NewRing(self string, peers []string) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("shard: empty peer list")
	}
	sorted := append([]string(nil), peers...)
	sort.Strings(sorted)
	seen := make(map[string]bool, len(sorted))
	for _, p := range sorted {
		if p == "" {
			return nil, fmt.Errorf("shard: empty peer entry")
		}
		if seen[p] {
			return nil, fmt.Errorf("shard: duplicate peer %q", p)
		}
		seen[p] = true
	}
	if !seen[self] {
		return nil, fmt.Errorf("shard: self %q is not in the peer list %v", self, sorted)
	}
	return &Ring{self: self, peers: sorted}, nil
}

// Self returns this instance's own peer entry.
func (r *Ring) Self() string { return r.self }

// Members returns the sorted peer list (a copy).
func (r *Ring) Members() []string { return append([]string(nil), r.peers...) }

// N returns the ring size.
func (r *Ring) N() int { return len(r.peers) }

// Owner returns the peer owning key: the peer with the highest rendezvous
// score. Ties (a hash collision across peers) break toward the
// lexicographically smaller peer, so every instance agrees.
func (r *Ring) Owner(key string) string {
	best := r.peers[0]
	bestScore := score(r.peers[0], key)
	for _, p := range r.peers[1:] {
		if s := score(p, key); s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// score hashes one (peer, key) pair. FNV-1a over peer + NUL + key — stable
// across processes and Go versions (unlike hash/maphash), with the NUL
// separator keeping ("ab","c") and ("a","bc") distinct — then a 64-bit
// finalizer: FNV alone avalanches poorly on near-identical keys (brick IDs
// differ only in trailing digits) and skews the argmax across peers by up
// to ~50%; the multiply-xorshift mix restores uniform placement.
func score(peer, key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(peer))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 finalizer: a bijective scramble whose output bits
// each depend on every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ItemKey derives the placement key for one batch item from its effective
// parameters (the item's params merged over the request query) and payload:
//
//   - an explicit shard-key parameter wins — clients that know their brick
//     IDs route deterministically without the server inspecting payloads;
//   - else the item's model ID — estimate and pack items for one model
//     co-locate with that model's warm registry cache;
//   - else a content hash of the payload — unpack items (compressed bricks)
//     spread by their bytes.
func ItemKey(get func(string) string, payload []byte) string {
	if k := get("shard-key"); k != "" {
		return k
	}
	if m := get("model"); m != "" {
		return "model:" + m
	}
	h := fnv.New64a()
	_, _ = h.Write(payload)
	return fmt.Sprintf("blob:%016x", h.Sum64())
}
