// The scatter-gather router: partition a decoded batch by owning shard,
// forward the remote sub-batches concurrently, and hand the local indexes
// back to the caller — internal/serve runs those through its own charged
// execution path (rate limit, QoS admission, pool.Split worker budget)
// while the forwards are in flight, then the merged per-item results go
// out as one response container.
package shard

import (
	"context"
	"net/http"
	"net/url"
	"sort"
	"time"

	"github.com/fxrz-go/fxrz/internal/batch"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

// Options configures a Router.
type Options struct {
	// Self and Peers define the placement ring (see NewRing).
	Self  string
	Peers []string
	// Retries bounds per-forward retry attempts beyond the first
	// (default DefaultRetries; -1 disables retries).
	Retries int
	// Backoff is the base of the jittered exponential retry backoff
	// (default DefaultBackoff).
	Backoff time.Duration
	// Transport overrides the peer HTTP transport (tests; nil = a pooled
	// keep-alive transport).
	Transport http.RoundTripper
}

// Router owns the ring and the peer client for one fxrzd instance.
type Router struct {
	ring   *Ring
	client *client
}

// NewRouter builds a router from o; the peer list must validate (NewRing).
func NewRouter(o Options) (*Router, error) {
	ring, err := NewRing(o.Self, o.Peers)
	if err != nil {
		return nil, err
	}
	retries := o.Retries
	if retries == 0 {
		retries = DefaultRetries
	} else if retries < 0 {
		retries = 0
	}
	return &Router{ring: ring, client: newClient(o.Transport, retries, o.Backoff)}, nil
}

// Ring exposes the placement map (healthz reports its membership).
func (rt *Router) Ring() *Ring { return rt.ring }

// SetSleep replaces the retry-backoff sleep function. Tests use this to
// count and bound retries without wall-clock waits (the shard analogue of
// ratelimit.SetClock); production code never calls it.
func (rt *Router) SetSleep(sleep func(time.Duration)) {
	rt.client.mu.Lock()
	defer rt.client.mu.Unlock()
	if sleep == nil {
		sleep = time.Sleep
	}
	rt.client.sleep = sleep
}

// SetAttemptTimeout caps each forward attempt (0 = the whole remaining
// request budget). Tests use a tiny cap to force the stalled-peer path
// deterministically; production deployments can bound how long one slow
// peer holds up a merge before the retry kicks in.
func (rt *Router) SetAttemptTimeout(d time.Duration) {
	rt.client.mu.Lock()
	defer rt.client.mu.Unlock()
	rt.client.attemptTimeout = d
}

// SubBatch is the slice of a batch owned by one remote peer: Idx holds the
// original item indexes, in order.
type SubBatch struct {
	Peer string
	Idx  []int
}

// Partition splits item indexes by owner: local collects the indexes this
// instance owns, remote groups the rest per peer (peers sorted, so the
// forward fan-out order is deterministic).
func (rt *Router) Partition(keys []string) (local []int, remote []SubBatch) {
	byPeer := make(map[string][]int)
	for i, key := range keys {
		owner := rt.ring.Owner(key)
		if owner == rt.ring.Self() {
			local = append(local, i)
			continue
		}
		byPeer[owner] = append(byPeer[owner], i)
	}
	peers := make([]string, 0, len(byPeer))
	for p := range byPeer {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		remote = append(remote, SubBatch{Peer: p, Idx: byPeer[p]})
	}
	return local, remote
}

// Scatter forwards every remote sub-batch concurrently and writes its
// per-item results into results at the original indexes. A failed forward
// fails only its own sub-batch: every item gets the PeerError's status (503
// for a dead/stalled/5xx peer, 400 for a corrupt response container, the
// peer's own code for an outer refusal) with the error text as payload.
// The fan-out obeys the pool.Split budget rule against the machine's worker
// budget — forwards are network-bound, but their goroutine count still
// never exceeds the configured parallelism.
func (rt *Router) Scatter(ctx context.Context, pathAndQuery, clientID string, items []batch.Item, remote []SubBatch, results []batch.Result) {
	if len(remote) == 0 {
		return
	}
	outer, _ := pool.Split(pool.Workers(0), len(remote))
	pool.Run(outer, len(remote), func(k int) {
		sb := remote[k]
		sub := make([]batch.Item, len(sb.Idx))
		for j, idx := range sb.Idx {
			sub[j] = items[idx]
		}
		obs.Add("shard/forwarded", int64(len(sb.Idx)))
		done := obs.Span("shard/peer/" + peerLabel(sb.Peer))
		res, err := rt.client.forward(ctx, sb.Peer, pathAndQuery, clientID, sub)
		done()
		if err != nil {
			obs.Inc("shard/peer_err")
			pe, ok := err.(*PeerError)
			status := http.StatusServiceUnavailable
			if ok {
				status = pe.Status
			}
			for _, idx := range sb.Idx {
				results[idx] = batch.Result{ID: items[idx].ID, Status: status, Payload: []byte(err.Error())}
			}
			return
		}
		for j, idx := range sb.Idx {
			results[idx] = res[j]
		}
	})
}

// peerLabel shortens a peer base URL to host:port for metric names.
func peerLabel(peer string) string {
	if u, err := url.Parse(peer); err == nil && u.Host != "" {
		return u.Host
	}
	return peer
}
