package shard

import (
	"fmt"
	"testing"
)

// fourPeers is a fixed ring roster for the placement properties.
var fourPeers = []string{
	"http://10.0.0.1:8080",
	"http://10.0.0.2:8080",
	"http://10.0.0.3:8080",
	"http://10.0.0.4:8080",
}

// brickKeys generates n synthetic brick IDs.
func brickKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("nyx/baryon_density/ts42/brick-%05d", i)
	}
	return keys
}

// TestShardRingDeterministic: two rings built from the same list agree on
// every owner, regardless of the order the peer list arrived in — placement
// is a pure function of (peer set, key), never of construction order.
func TestShardRingDeterministic(t *testing.T) {
	a, err := NewRing(fourPeers[0], fourPeers)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []string{fourPeers[2], fourPeers[0], fourPeers[3], fourPeers[1]}
	b, err := NewRing(fourPeers[2], shuffled)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range brickKeys(1000) {
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("owner of %q differs across construction orders: %q vs %q", key, ao, bo)
		}
	}
}

// TestShardRingGolden pins a few owners so an accidental change to the hash
// (or the tie-break) cannot slip through as a silent full reshuffle: every
// already-deployed ring would disagree with the new code about ownership.
func TestShardRingGolden(t *testing.T) {
	r, err := NewRing(fourPeers[0], fourPeers)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]string{
		"nyx/baryon_density/ts42/brick-00000": "http://10.0.0.4:8080",
		"nyx/baryon_density/ts42/brick-00001": "http://10.0.0.4:8080",
		"nyx/baryon_density/ts42/brick-00002": "http://10.0.0.4:8080",
		"model:nyx-sz":                        "http://10.0.0.2:8080",
	}
	for key, want := range golden {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %q, want the recorded %q (hash function changed?)", key, got, want)
		}
	}
}

// TestShardRingUniform: over 10k brick IDs and 4 peers, every peer owns
// within 10% of the fair share — rendezvous hashing with a decent hash has
// no hot shard.
func TestShardRingUniform(t *testing.T) {
	r, err := NewRing(fourPeers[0], fourPeers)
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 10000
	counts := make(map[string]int, len(fourPeers))
	for _, key := range brickKeys(nKeys) {
		counts[r.Owner(key)]++
	}
	fair := float64(nKeys) / float64(len(fourPeers))
	for _, p := range fourPeers {
		got := float64(counts[p])
		if got < fair*0.9 || got > fair*1.1 {
			t.Errorf("peer %s owns %d of %d keys; want within 10%% of the fair %.0f", p, counts[p], nKeys, fair)
		}
	}
}

// TestShardRingRelocation: removing one of N peers relocates exactly the
// keys the removed peer owned (~1/N) and not a single other key — the HRW
// property that makes a static list workable (a dead peer's share spreads;
// the rest of the placement map is untouched).
func TestShardRingRelocation(t *testing.T) {
	const nKeys = 10000
	full, err := NewRing(fourPeers[0], fourPeers)
	if err != nil {
		t.Fatal(err)
	}
	removed := fourPeers[3]
	reduced, err := NewRing(fourPeers[0], fourPeers[:3])
	if err != nil {
		t.Fatal(err)
	}
	relocated, owned := 0, 0
	for _, key := range brickKeys(nKeys) {
		before, after := full.Owner(key), reduced.Owner(key)
		if before == removed {
			owned++
			if after == removed {
				t.Fatalf("key %q still owned by the removed peer", key)
			}
			relocated++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %q -> %q although its owner survived: HRW must not reshuffle", key, before, after)
		}
	}
	if relocated != owned {
		t.Fatalf("relocated %d != keys owned by the removed peer %d", relocated, owned)
	}
	fair := float64(nKeys) / float64(len(fourPeers))
	if f := float64(owned); f < fair*0.9 || f > fair*1.1 {
		t.Errorf("removed peer owned %d keys; want ~1/N = %.0f (within 10%%)", owned, fair)
	}
}

func TestShardRingValidation(t *testing.T) {
	cases := []struct {
		name  string
		self  string
		peers []string
	}{
		{"empty list", "a", nil},
		{"empty entry", "a", []string{"a", ""}},
		{"duplicate", "a", []string{"a", "b", "b"}},
		{"self not a member", "c", []string{"a", "b"}},
	}
	for _, tc := range cases {
		if _, err := NewRing(tc.self, tc.peers); err == nil {
			t.Errorf("%s: NewRing(%q, %v) succeeded, want error", tc.name, tc.self, tc.peers)
		}
	}
	if r, err := NewRing("a", []string{"a"}); err != nil || r.Owner("anything") != "a" {
		t.Errorf("a ring of one must own everything: ring %v err %v", r, err)
	}
}

// TestShardItemKey pins the key-derivation precedence: explicit shard-key,
// else model, else payload hash — and that equal payloads key equally.
func TestShardItemKey(t *testing.T) {
	get := func(m map[string]string) func(string) string {
		return func(k string) string { return m[k] }
	}
	if k := ItemKey(get(map[string]string{"shard-key": "b7", "model": "m"}), nil); k != "b7" {
		t.Errorf("explicit shard-key must win, got %q", k)
	}
	if k := ItemKey(get(map[string]string{"model": "nyx-sz"}), []byte("x")); k != "model:nyx-sz" {
		t.Errorf("model fallback: got %q", k)
	}
	p1 := ItemKey(get(nil), []byte("same bytes"))
	p2 := ItemKey(get(nil), []byte("same bytes"))
	p3 := ItemKey(get(nil), []byte("other bytes"))
	if p1 != p2 || p1 == p3 {
		t.Errorf("payload hashing: %q vs %q vs %q", p1, p2, p3)
	}
}
