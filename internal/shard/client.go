// The peer HTTP client: one scatter-gather forward is a POST of a re-encoded
// batch request container to the owning peer, with the original client
// identity and the remaining request deadline propagated in headers so the
// peer's rate limiter and QoS admission charge the real client under the
// real time budget. Connect errors and 5xx responses are retried a bounded
// number of times with jittered exponential backoff; everything else — a
// peer's own shed (429), a client-caused 4xx, an undecodable response
// container — is returned to the router for per-item status mapping.
package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/fxrz-go/fxrz/internal/batch"
	"github.com/fxrz-go/fxrz/internal/obs"
)

// ClientHeader names the request header that identifies a client to the
// rate limiter (internal/serve aliases it); the router copies it onto
// forwarded sub-batches so every shard charges the same client.
const ClientHeader = "X-Fxrz-Client"

// ForwardedHeader marks a sub-batch forwarded by a shard router. A server
// receiving it executes the batch locally — all instances compute the same
// owners, so re-routing could only loop, never improve.
const ForwardedHeader = "X-Fxrz-Forwarded"

// DeadlineHeader carries the forwarding shard's remaining request budget in
// microseconds; the receiving shard clamps its own per-request timeout to
// it, so a sub-batch never outlives the client request that spawned it.
const DeadlineHeader = "X-Fxrz-Deadline-Us"

// Retry policy defaults: a forward gets 1 + DefaultRetries attempts, with
// jittered exponential backoff starting at DefaultBackoff between them.
const (
	DefaultRetries = 2
	DefaultBackoff = 25 * time.Millisecond
)

// PeerError is a failed sub-batch forward: every item of the sub-batch gets
// Status, and Err says why (the merged response stays 200 — a dead peer
// fails its own items, not its neighbours').
type PeerError struct {
	Peer   string
	Status int
	Err    error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("shard peer %s: %v", e.Peer, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// errCorrupt tags an undecodable peer response container: never retried
// (the bytes already arrived; asking again cannot fix a framing bug) and
// never silently merged — the sub-batch's items all fail with 400.
var errCorrupt = errors.New("corrupt response container")

// errPeerStatus tags a non-200 outer response during an attempt.
type errPeerStatus struct {
	code int
	body string
}

func (e *errPeerStatus) Error() string {
	if e.body == "" {
		return fmt.Sprintf("status %d", e.code)
	}
	return fmt.Sprintf("status %d: %s", e.code, e.body)
}

// client forwards sub-batches to peers with bounded retries.
type client struct {
	hc      *http.Client
	retries int
	backoff time.Duration

	mu             sync.Mutex
	sleep          func(time.Duration) // injectable: tests install a no-op recorder
	rng            *rand.Rand
	attemptTimeout time.Duration // 0 = the whole remaining ctx budget per attempt
}

func newClient(transport http.RoundTripper, retries int, backoff time.Duration) *client {
	if transport == nil {
		transport = &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 16}
	}
	if retries < 0 {
		retries = DefaultRetries
	}
	if backoff <= 0 {
		backoff = DefaultBackoff
	}
	return &client{
		hc:      &http.Client{Transport: transport},
		retries: retries,
		backoff: backoff,
		sleep:   time.Sleep,
		rng:     rand.New(rand.NewSource(1)),
	}
}

// forward posts items to peer as one batch request container and returns the
// decoded per-item results. Connect errors and outer 5xx responses retry up
// to the budget; a nil error guarantees len(results) == len(items). Failures
// come back as *PeerError with the per-item status the caller should record:
// 503 for an unreachable/stalled/5xx peer, 400 for a corrupt response
// container, the peer's own code for an outer 4xx (429 = the peer shed the
// sub-batch under the forwarded client's budget).
func (c *client) forward(ctx context.Context, peer, pathAndQuery, clientID string, items []batch.Item) ([]batch.Result, error) {
	body := batch.EncodeRequest(items)
	url := strings.TrimSuffix(peer, "/") + pathAndQuery
	var lastErr error
	for attempt := 0; ; attempt++ {
		results, err := c.attempt(ctx, url, clientID, body, len(items))
		if err == nil {
			return results, nil
		}
		lastErr = err
		if !retryable(err) || attempt >= c.retries || ctx.Err() != nil {
			break
		}
		obs.Inc("shard/retry")
		c.sleepBackoff(attempt)
	}
	return nil, &PeerError{Peer: peer, Status: failStatus(lastErr), Err: lastErr}
}

// attempt is one forward try. The outgoing request carries the parent ctx
// (capped at the attempt timeout when one is set), the original client
// identity, the forwarded marker, and the remaining deadline in
// microseconds.
func (c *client) attempt(ctx context.Context, url, clientID string, body []byte, n int) ([]batch.Result, error) {
	c.mu.Lock()
	at := c.attemptTimeout
	c.mu.Unlock()
	if at > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, at)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(ForwardedHeader, "1")
	if clientID != "" {
		req.Header.Set(ClientHeader, clientID)
	}
	if dl, ok := ctx.Deadline(); ok {
		if us := time.Until(dl).Microseconds(); us > 0 {
			req.Header.Set(DeadlineHeader, strconv.FormatInt(us, 10))
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &errPeerStatus{code: resp.StatusCode, body: errSnippet(respBody)}
	}
	results, err := batch.DecodeResponse(respBody)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	if len(results) != n {
		return nil, fmt.Errorf("%w: %d results for %d items", errCorrupt, len(results), n)
	}
	return results, nil
}

// retryable says whether an attempt error may resolve on its own: transport
// failures (connection refused, reset, an attempt that outlived its slice of
// the deadline) and outer 5xx responses do; a peer's deliberate refusal
// (4xx) and an undecodable response container do not.
func retryable(err error) bool {
	var ps *errPeerStatus
	if errors.As(err, &ps) {
		return ps.code >= 500
	}
	return !errors.Is(err, errCorrupt)
}

// failStatus maps the final attempt error to the per-item status the
// sub-batch's items will carry.
func failStatus(err error) int {
	var ps *errPeerStatus
	if errors.As(err, &ps) {
		if ps.code >= 500 {
			return http.StatusServiceUnavailable
		}
		return ps.code
	}
	if errors.Is(err, errCorrupt) {
		return http.StatusBadRequest
	}
	return http.StatusServiceUnavailable
}

// sleepBackoff waits the jittered exponential backoff for attempt (0-based):
// uniformly within [d/2, d) for d = backoff << attempt, so synchronized
// retries against a recovering peer spread out. The sleep function is
// injectable (tests install a recorder and never wall-wait).
func (c *client) sleepBackoff(attempt int) {
	d := c.backoff << uint(attempt)
	c.mu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d/2)))
	sleep := c.sleep
	c.mu.Unlock()
	sleep(jittered)
}

// errSnippet trims an error body for the per-item payload.
func errSnippet(b []byte) string {
	s := strings.TrimSpace(string(b))
	if len(s) > 200 {
		s = s[:200]
	}
	return s
}
