// Fault-injection coverage for the peer client and the scatter-gather
// router: peers that die mid-batch, stall past the deadline, shed with
// 429, answer 5xx, or return a corrupted response container. Every retry
// is observable (recorded sleeps + the shard/retry counter) and no test
// wall-waits — the backoff sleep is a no-op recorder and stalled peers
// are cut off by a tiny attempt timeout.
package shard

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/fxrz-go/fxrz/internal/batch"
	"github.com/fxrz-go/fxrz/internal/obs"
)

func TestMain(m *testing.M) {
	obs.Enable()
	os.Exit(m.Run())
}

// sleepRecorder captures backoff sleeps without waiting.
type sleepRecorder struct {
	mu    sync.Mutex
	slept []time.Duration
}

func (sr *sleepRecorder) sleep(d time.Duration) {
	sr.mu.Lock()
	sr.slept = append(sr.slept, d)
	sr.mu.Unlock()
}

func (sr *sleepRecorder) durations() []time.Duration {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	return append([]time.Duration(nil), sr.slept...)
}

// testRouter builds a two-peer router (self + the given peer URL) with a
// no-op recorded sleep, returning the router and the recorder.
func testRouter(t *testing.T, peer string) (*Router, *sleepRecorder) {
	t.Helper()
	rt, err := NewRouter(Options{Self: "http://self.invalid", Peers: []string{"http://self.invalid", peer}})
	if err != nil {
		t.Fatal(err)
	}
	sr := &sleepRecorder{}
	rt.SetSleep(sr.sleep)
	return rt, sr
}

// echoPeer answers any batch request with per-item 200s echoing the
// payloads back, after n initial responses served by warmup (which may
// fail them).
func echoPeer(t *testing.T, warmupN int, warmup http.HandlerFunc) *httptest.Server {
	t.Helper()
	var calls atomic.Int64
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if int(calls.Add(1)) <= warmupN {
			warmup(w, r)
			return
		}
		body := make([]byte, 0)
		buf := make([]byte, 1<<16)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		items, err := batch.DecodeRequest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]batch.Result, len(items))
		for i, it := range items {
			results[i] = batch.Result{ID: it.ID, Status: 200, Payload: it.Payload}
		}
		_, _ = w.Write(batch.EncodeResponse(results))
	}))
}

func threeItems() []batch.Item {
	return []batch.Item{
		{ID: 1, Payload: []byte("alpha")},
		{ID: 2, Payload: []byte("beta")},
		{ID: 3, Payload: []byte("gamma")},
	}
}

func retryCount(t *testing.T, before, after *obs.Snapshot) int64 {
	t.Helper()
	return after.Counters["shard/retry"] - before.Counters["shard/retry"]
}

// TestShardForwardOK: the happy path — one attempt, no sleeps, results in
// item order.
func TestShardForwardOK(t *testing.T) {
	peer := echoPeer(t, 0, nil)
	defer peer.Close()
	rt, sr := testRouter(t, peer.URL)

	res, err := rt.client.forward(context.Background(), peer.URL, "/v1/estimate-many?model=m", "client-a", threeItems())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for i, want := range []string{"alpha", "beta", "gamma"} {
		if res[i].Status != 200 || string(res[i].Payload) != want {
			t.Errorf("result %d = (%d, %q), want (200, %q)", i, res[i].Status, res[i].Payload, want)
		}
	}
	if n := len(sr.durations()); n != 0 {
		t.Errorf("happy path recorded %d backoff sleeps, want 0", n)
	}
}

// TestShardForwardHeaders: a forwarded sub-batch carries the forwarded
// marker, the original client identity, and the remaining deadline in
// microseconds (no larger than the actual budget).
func TestShardForwardHeaders(t *testing.T) {
	var gotForwarded, gotClient, gotDeadline string
	peer := echoPeer(t, 1, nil)
	defer peer.Close()
	// Wrap: first call records headers then falls through to echo via a
	// second request — simpler to just record inside a fresh echo peer.
	peer.Close()
	peer = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotForwarded = r.Header.Get(ForwardedHeader)
		gotClient = r.Header.Get(ClientHeader)
		gotDeadline = r.Header.Get(DeadlineHeader)
		_, _ = w.Write(batch.EncodeResponse([]batch.Result{{ID: 7, Status: 200}}))
	}))
	defer peer.Close()
	rt, _ := testRouter(t, peer.URL)

	budget := 2 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if _, err := rt.client.forward(ctx, peer.URL, "/v1/pack-many", "tenant-9", []batch.Item{{ID: 7}}); err != nil {
		t.Fatal(err)
	}
	if gotForwarded != "1" {
		t.Errorf("%s = %q, want \"1\"", ForwardedHeader, gotForwarded)
	}
	if gotClient != "tenant-9" {
		t.Errorf("%s = %q, want \"tenant-9\"", ClientHeader, gotClient)
	}
	us, err := strconv.ParseInt(gotDeadline, 10, 64)
	if err != nil || us <= 0 || us > budget.Microseconds() {
		t.Errorf("%s = %q, want 0 < us <= %d", DeadlineHeader, gotDeadline, budget.Microseconds())
	}
}

// TestShardForwardRetriesThenOK: a peer that answers 503 twice and then
// recovers succeeds within the default budget; both retries are counted
// and both backoff sleeps fall inside the jitter window [d/2, d) for
// d = backoff << attempt.
func TestShardForwardRetriesThenOK(t *testing.T) {
	peer := echoPeer(t, 2, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "transient", http.StatusServiceUnavailable)
	})
	defer peer.Close()
	rt, sr := testRouter(t, peer.URL)

	before := obs.TakeSnapshot()
	res, err := rt.client.forward(context.Background(), peer.URL, "/v1/unpack-many", "", threeItems())
	after := obs.TakeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].Status != 200 {
		t.Fatalf("recovered peer: got %v", res)
	}
	if got := retryCount(t, before, after); got != 2 {
		t.Errorf("shard/retry delta = %d, want 2", got)
	}
	slept := sr.durations()
	if len(slept) != 2 {
		t.Fatalf("recorded %d sleeps, want 2", len(slept))
	}
	for attempt, d := range slept {
		base := DefaultBackoff << uint(attempt)
		if d < base/2 || d >= base {
			t.Errorf("backoff %d = %v, want in [%v, %v)", attempt, d, base/2, base)
		}
	}
}

// TestShardForwardBoundedRetries: an always-5xx peer gets exactly
// 1 + DefaultRetries attempts, then every item fails 503. The retry
// budget is observable, not wall-clock.
func TestShardForwardBoundedRetries(t *testing.T) {
	var attempts atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "down for good", http.StatusBadGateway)
	}))
	defer peer.Close()
	rt, sr := testRouter(t, peer.URL)

	before := obs.TakeSnapshot()
	_, err := rt.client.forward(context.Background(), peer.URL, "/v1/estimate-many", "", threeItems())
	after := obs.TakeSnapshot()
	pe, ok := err.(*PeerError)
	if !ok {
		t.Fatalf("err = %v, want *PeerError", err)
	}
	if pe.Status != http.StatusServiceUnavailable {
		t.Errorf("PeerError.Status = %d, want 503", pe.Status)
	}
	if got := attempts.Load(); got != 1+DefaultRetries {
		t.Errorf("peer saw %d attempts, want %d", got, 1+DefaultRetries)
	}
	if got := retryCount(t, before, after); got != DefaultRetries {
		t.Errorf("shard/retry delta = %d, want %d", got, DefaultRetries)
	}
	if n := len(sr.durations()); n != DefaultRetries {
		t.Errorf("recorded %d sleeps, want %d", n, DefaultRetries)
	}
}

// TestShardForwardDeadPeer: a closed listener (connection refused) retries
// like any transport error, then fails the sub-batch with 503.
func TestShardForwardDeadPeer(t *testing.T) {
	peer := echoPeer(t, 0, nil)
	peerURL := peer.URL
	peer.Close() // dead before the first byte

	rt, sr := testRouter(t, peerURL)
	before := obs.TakeSnapshot()
	_, err := rt.client.forward(context.Background(), peerURL, "/v1/unpack-many", "", threeItems())
	after := obs.TakeSnapshot()
	pe, ok := err.(*PeerError)
	if !ok || pe.Status != http.StatusServiceUnavailable {
		t.Fatalf("dead peer: err = %v, want *PeerError with 503", err)
	}
	if got := retryCount(t, before, after); got != DefaultRetries {
		t.Errorf("shard/retry delta = %d, want %d", got, DefaultRetries)
	}
	if n := len(sr.durations()); n != DefaultRetries {
		t.Errorf("recorded %d sleeps, want %d", n, DefaultRetries)
	}
}

// TestShardForwardCorrupt: a corrupted response container — garbage bytes,
// a flipped CRC, or a result count that disagrees with the request — maps
// to 400 and is never retried: the bytes already arrived, asking again
// cannot fix a framing bug, and the items must not silently merge.
func TestShardForwardCorrupt(t *testing.T) {
	goodTwo := batch.EncodeResponse([]batch.Result{{ID: 1, Status: 200}, {ID: 2, Status: 200}})
	flipped := append([]byte(nil), batch.EncodeResponse([]batch.Result{
		{ID: 1, Status: 200}, {ID: 2, Status: 200}, {ID: 3, Status: 200},
	})...)
	flipped[len(flipped)-1] ^= 0x01

	cases := []struct {
		name string
		body []byte
	}{
		{"garbage", []byte("this is not a container")},
		{"flipped CRC", flipped},
		{"wrong result count", goodTwo},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var attempts atomic.Int64
			peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				attempts.Add(1)
				_, _ = w.Write(tc.body)
			}))
			defer peer.Close()
			rt, sr := testRouter(t, peer.URL)

			before := obs.TakeSnapshot()
			_, err := rt.client.forward(context.Background(), peer.URL, "/v1/estimate-many", "", threeItems())
			after := obs.TakeSnapshot()
			pe, ok := err.(*PeerError)
			if !ok || pe.Status != http.StatusBadRequest {
				t.Fatalf("corrupt container: err = %v, want *PeerError with 400", err)
			}
			if got := attempts.Load(); got != 1 {
				t.Errorf("peer saw %d attempts, want 1 (corruption must not retry)", got)
			}
			if got := retryCount(t, before, after); got != 0 {
				t.Errorf("shard/retry delta = %d, want 0", got)
			}
			if n := len(sr.durations()); n != 0 {
				t.Errorf("recorded %d sleeps, want 0", n)
			}
		})
	}
}

// TestShardForwardPeerRefusal: a peer's own 4xx (a shed sub-batch, a
// client error) passes through as the per-item status without retrying —
// the refusal is deliberate, not transient.
func TestShardForwardPeerRefusal(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusRequestEntityTooLarge} {
		var attempts atomic.Int64
		peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			attempts.Add(1)
			http.Error(w, "refused", code)
		}))
		rt, sr := testRouter(t, peer.URL)

		_, err := rt.client.forward(context.Background(), peer.URL, "/v1/pack-many", "", threeItems())
		pe, ok := err.(*PeerError)
		if !ok || pe.Status != code {
			t.Errorf("peer %d: err = %v, want *PeerError with %d", code, err, code)
		}
		if got := attempts.Load(); got != 1 {
			t.Errorf("peer %d saw %d attempts, want 1", code, got)
		}
		if n := len(sr.durations()); n != 0 {
			t.Errorf("peer %d: recorded %d sleeps, want 0", code, n)
		}
		peer.Close()
	}
}

// TestShardForwardCanceled: a context already done never retries — the
// request that spawned the forward is gone.
func TestShardForwardCanceled(t *testing.T) {
	peer := echoPeer(t, 0, nil)
	defer peer.Close()
	rt, sr := testRouter(t, peer.URL)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := rt.client.forward(ctx, peer.URL, "/v1/estimate-many", "", threeItems())
	pe, ok := err.(*PeerError)
	if !ok || pe.Status != http.StatusServiceUnavailable {
		t.Fatalf("canceled ctx: err = %v, want *PeerError with 503", err)
	}
	if n := len(sr.durations()); n != 0 {
		t.Errorf("canceled ctx recorded %d sleeps, want 0", n)
	}
}

// TestShardForwardStalledPeer: a peer that accepts the connection and then
// never answers is cut off by the attempt timeout, retried within the
// budget, and finally failed with 503. The stall is bounded by the tiny
// injected timeout, not the wall clock.
func TestShardForwardStalledPeer(t *testing.T) {
	var attempts atomic.Int64
	release := make(chan struct{})
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		<-release // stall well past the attempt timeout
	}))
	defer peer.Close()
	defer close(release) // runs first: unblock the stalled handlers so Close can reap them
	rt, sr := testRouter(t, peer.URL)
	rt.SetAttemptTimeout(5 * time.Millisecond)

	before := obs.TakeSnapshot()
	_, err := rt.client.forward(context.Background(), peer.URL, "/v1/unpack-many", "", threeItems())
	after := obs.TakeSnapshot()
	pe, ok := err.(*PeerError)
	if !ok || pe.Status != http.StatusServiceUnavailable {
		t.Fatalf("stalled peer: err = %v, want *PeerError with 503", err)
	}
	if got := attempts.Load(); got != 1+DefaultRetries {
		t.Errorf("stalled peer saw %d attempts, want %d", got, 1+DefaultRetries)
	}
	if got := retryCount(t, before, after); got != DefaultRetries {
		t.Errorf("shard/retry delta = %d, want %d", got, DefaultRetries)
	}
	if n := len(sr.durations()); n != DefaultRetries {
		t.Errorf("recorded %d sleeps, want %d", n, DefaultRetries)
	}
}

// TestShardScatterMerge: one live peer and one dead peer in the same
// scatter — the dead peer's items carry per-item 503s, the live peer's
// and the local items are untouched, and the failure increments
// shard/peer_err exactly once (one sub-batch failed, not three items).
func TestShardScatterMerge(t *testing.T) {
	live := echoPeer(t, 0, nil)
	defer live.Close()
	dead := echoPeer(t, 0, nil)
	deadURL := dead.URL
	dead.Close()

	self := "http://self.invalid"
	rt, err := NewRouter(Options{Self: self, Peers: []string{self, live.URL, deadURL}})
	if err != nil {
		t.Fatal(err)
	}
	rt.SetSleep(func(time.Duration) {})

	items := []batch.Item{
		{ID: 10, Payload: []byte("p0")}, // -> live
		{ID: 11, Payload: []byte("p1")}, // -> dead
		{ID: 12, Payload: []byte("p2")}, // -> dead
		{ID: 13, Payload: []byte("p3")}, // -> local (left zero)
	}
	remote := []SubBatch{
		{Peer: live.URL, Idx: []int{0}},
		{Peer: deadURL, Idx: []int{1, 2}},
	}
	results := make([]batch.Result, len(items))

	before := obs.TakeSnapshot()
	rt.Scatter(context.Background(), "/v1/estimate-many", "c", items, remote, results)
	after := obs.TakeSnapshot()

	if results[0].Status != 200 || string(results[0].Payload) != "p0" {
		t.Errorf("live peer item: got (%d, %q), want (200, \"p0\")", results[0].Status, results[0].Payload)
	}
	for _, i := range []int{1, 2} {
		if results[i].Status != http.StatusServiceUnavailable {
			t.Errorf("dead peer item %d: status %d, want 503", i, results[i].Status)
		}
		if results[i].ID != items[i].ID {
			t.Errorf("dead peer item %d: ID %d, want %d", i, results[i].ID, items[i].ID)
		}
		if len(results[i].Payload) == 0 {
			t.Errorf("dead peer item %d: want an error payload", i)
		}
	}
	if results[3].Status != 0 {
		t.Errorf("local item was written by Scatter: %v", results[3])
	}
	if d := after.Counters["shard/peer_err"] - before.Counters["shard/peer_err"]; d != 1 {
		t.Errorf("shard/peer_err delta = %d, want 1 (one failed sub-batch)", d)
	}
	if d := after.Counters["shard/forwarded"] - before.Counters["shard/forwarded"]; d != 3 {
		t.Errorf("shard/forwarded delta = %d, want 3 (items routed off-box)", d)
	}
}

// TestShardPartition: every index lands exactly once, local indexes stay
// local, and the remote fan-out order is deterministic (peers sorted).
func TestShardPartition(t *testing.T) {
	self := "http://10.0.0.1:8080"
	rt, err := NewRouter(Options{Self: self, Peers: fourPeers})
	if err != nil {
		t.Fatal(err)
	}
	keys := brickKeys(200)
	local, remote := rt.Partition(keys)
	seen := make(map[int]bool)
	for _, i := range local {
		if owner := rt.Ring().Owner(keys[i]); owner != self {
			t.Errorf("local index %d owned by %q", i, owner)
		}
		seen[i] = true
	}
	for k := 1; k < len(remote); k++ {
		if remote[k-1].Peer >= remote[k].Peer {
			t.Errorf("remote sub-batches out of order: %q before %q", remote[k-1].Peer, remote[k].Peer)
		}
	}
	for _, sb := range remote {
		for _, i := range sb.Idx {
			if owner := rt.Ring().Owner(keys[i]); owner != sb.Peer {
				t.Errorf("index %d grouped under %q but owned by %q", i, sb.Peer, owner)
			}
			if seen[i] {
				t.Errorf("index %d partitioned twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(keys) {
		t.Errorf("partition covered %d of %d indexes", len(seen), len(keys))
	}
}
