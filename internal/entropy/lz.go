package entropy

import (
	"encoding/binary"
	"fmt"
)

// A byte-oriented LZ77 dictionary coder with greedy hash-chain matching. It
// stands in for the Zstd stage SZ runs after Huffman coding: on the highly
// repetitive byte streams produced by quantization codes of smooth scientific
// data it collapses long runs and repeated motifs, which is what lets SZ-like
// compressors exceed the ~32× ceiling pure symbol entropy coding imposes on
// float32 data.
//
// Token format (all varint-coded):
//
//	litLen  — number of literal bytes to copy
//	<literals>
//	matchLen — 0 terminates the stream, otherwise length ≥ lzMinMatch
//	distance — backwards offset ≥ 1
const (
	lzMinMatch   = 4
	lzMaxMatch   = 1 << 16
	lzWindowSize = 1 << 20
	lzHashBits   = 17
	lzMaxChain   = 32
)

func lzHash(b []byte) uint32 {
	// Multiplicative hash of 4 bytes (Fibonacci hashing).
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> (32 - lzHashBits)
}

// LZCompress compresses src. The output always starts with the uncompressed
// length so the decoder can allocate exactly once.
func LZCompress(src []byte) []byte {
	out := binary.AppendUvarint(nil, uint64(len(src)))
	// Hash-chain state comes from the scratch pool: head is re-armed to -1
	// below, and prev entries are only ever read through chains written during
	// this run, so neither needs a fresh allocation.
	head := getInt32s(1 << lzHashBits)
	for i := range head {
		head[i] = -1
	}
	prev := getInt32s(len(src))

	litStart := 0
	i := 0
	emit := func(litEnd, matchLen, dist int) {
		out = binary.AppendUvarint(out, uint64(litEnd-litStart))
		out = append(out, src[litStart:litEnd]...)
		out = binary.AppendUvarint(out, uint64(matchLen))
		if matchLen > 0 {
			out = binary.AppendUvarint(out, uint64(dist))
		}
	}
	for i+lzMinMatch <= len(src) {
		h := lzHash(src[i:])
		bestLen, bestDist := 0, 0
		cand := head[h]
		for chain := 0; cand >= 0 && chain < lzMaxChain; chain++ {
			d := i - int(cand)
			if d > lzWindowSize {
				break
			}
			l := matchLength(src, int(cand), i)
			if l > bestLen {
				bestLen, bestDist = l, d
				if l >= lzMaxMatch {
					break
				}
			}
			cand = prev[cand]
		}
		if bestLen >= lzMinMatch {
			emit(i, bestLen, bestDist)
			// Insert hash entries across the match so future matches can
			// refer into it, then continue after it.
			end := i + bestLen
			for ; i < end && i+lzMinMatch <= len(src); i++ {
				hh := lzHash(src[i:])
				prev[i] = head[hh]
				head[hh] = int32(i)
			}
			i = end
			litStart = i
			continue
		}
		prev[i] = head[h]
		head[h] = int32(i)
		i++
	}
	// Trailing literals and terminator.
	emit(len(src), 0, 0)
	putInt32s(head)
	putInt32s(prev)
	return out
}

func matchLength(src []byte, a, b int) int {
	n := 0
	max := len(src) - b
	if max > lzMaxMatch {
		max = lzMaxMatch
	}
	for n < max && src[a+n] == src[b+n] {
		n++
	}
	return n
}

// LZDecompress reverses LZCompress.
func LZDecompress(blob []byte) ([]byte, error) {
	size, k := binary.Uvarint(blob)
	if k <= 0 {
		return nil, ErrTruncated
	}
	blob = blob[k:]
	if size > 1<<36 {
		return nil, fmt.Errorf("entropy: implausible uncompressed size %d", size)
	}
	// A valid stream cannot expand a byte into more than lzMaxMatch output
	// bytes; reject early so corrupt headers cannot demand huge buffers.
	if size > uint64(len(blob))*lzMaxMatch+64 {
		return nil, fmt.Errorf("entropy: claimed size %d impossible for %d input bytes", size, len(blob))
	}
	capHint := size
	if capHint > 1<<20 {
		capHint = 1 << 20 // grow on demand; do not trust the header blindly
	}
	out := make([]byte, 0, capHint)
	for {
		litLen, k := binary.Uvarint(blob)
		if k <= 0 {
			return nil, ErrTruncated
		}
		blob = blob[k:]
		if uint64(len(blob)) < litLen {
			return nil, ErrTruncated
		}
		if uint64(len(out))+litLen > size {
			return nil, fmt.Errorf("entropy: literals overflow declared size %d", size)
		}
		out = append(out, blob[:litLen]...)
		blob = blob[litLen:]
		matchLen, k := binary.Uvarint(blob)
		if k <= 0 {
			return nil, ErrTruncated
		}
		blob = blob[k:]
		if matchLen == 0 {
			break
		}
		// The encoder never emits matches longer than lzMaxMatch, and the
		// output may never exceed the declared size — both checks keep a
		// corrupt varint from driving an unbounded copy loop.
		if matchLen > lzMaxMatch || uint64(len(out))+matchLen > size {
			return nil, fmt.Errorf("entropy: invalid match length %d at output offset %d", matchLen, len(out))
		}
		dist, k := binary.Uvarint(blob)
		if k <= 0 {
			return nil, ErrTruncated
		}
		blob = blob[k:]
		if dist == 0 || dist > uint64(len(out)) {
			return nil, fmt.Errorf("entropy: invalid match distance %d at output offset %d", dist, len(out))
		}
		// Byte-by-byte copy: overlapping matches (dist < matchLen) replicate
		// the run, which is the core RLE-like behaviour.
		start := len(out) - int(dist)
		for j := 0; j < int(matchLen); j++ {
			out = append(out, out[start+j])
		}
	}
	if uint64(len(out)) != size {
		return nil, fmt.Errorf("entropy: decoded %d bytes, header said %d", len(out), size)
	}
	return out, nil
}

// CompressBytes runs the full lossless pipeline used by the SZ-like and
// MGARD-like compressors: LZ dictionary coding followed by Huffman coding of
// the LZ output bytes. On incompressible input the overhead is a few bytes.
func CompressBytes(src []byte) ([]byte, error) {
	return CompressBytesParallel(src, 1)
}

// CompressBytesParallel is CompressBytes with the Huffman frequency count
// sharded over at most `workers` goroutines (see HuffmanEncodeParallel). The
// LZ match search is inherently serial — every match refers back into already
// emitted output — so it stays on the calling goroutine. Output is identical
// to CompressBytes at every worker count.
func CompressBytesParallel(src []byte, workers int) ([]byte, error) {
	lz := LZCompress(src)
	syms := getU32s(len(lz))
	for i, b := range lz {
		syms[i] = uint32(b)
	}
	putBytes(lz)
	blob, err := HuffmanEncodeParallel(syms, 256, workers)
	putU32s(syms)
	return blob, err
}

// DecompressBytes reverses CompressBytes and the chunked variants: it sniffs
// the container (chunked.go) and dispatches, so any blob a CompressBytes*
// encoder produced decodes here. Serial; DecompressBytesParallel fans chunked
// containers out over a worker pool.
func DecompressBytes(blob []byte) ([]byte, error) {
	return DecompressBytesParallel(blob, 1)
}
