package entropy

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func benchData() []byte {
	// Quantization-code-like bytes: long runs with sparse disturbances.
	rng := rand.New(rand.NewSource(1))
	data := bytes.Repeat([]byte{0, 0x80}, 1<<18)
	for i := 0; i < len(data)/100; i++ {
		data[rng.Intn(len(data))] = byte(rng.Intn(256))
	}
	return data
}

func BenchmarkLZCompress(b *testing.B) {
	data := benchData()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		LZCompress(data)
	}
}

func BenchmarkLZDecompress(b *testing.B) {
	data := benchData()
	blob := LZCompress(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LZDecompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHuffmanEncode(b *testing.B) {
	data := benchData()
	syms := make([]uint32, len(data))
	for i, v := range data {
		syms[i] = uint32(v)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HuffmanEncode(syms, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelHuffmanDecode compares the bit-at-a-time canonical walk
// against the first-level-table decoder on a quantization-code-like stream.
// Recorded in BENCH_kernels.json as huffman_decode.
func BenchmarkKernelHuffmanDecode(b *testing.B) {
	data := benchData()
	syms := make([]uint32, len(data))
	for i, v := range data {
		syms[i] = uint32(v)
	}
	blob, err := HuffmanEncode(syms, 256)
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range []struct {
		name     string
		useTable bool
	}{{"bitwise", false}, {"table", true}} {
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := huffmanDecode(blob, v.useTable); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(syms)), "ns/elem")
		})
	}
}

// BenchmarkChunkedDecode measures what the chunked container buys on decode:
// a 2M-symbol quantization-code-like stream decoded through the whole-stream
// serial path versus HuffmanDecodeChunked at worker widths 1, 2 and 4.
// Recorded in BENCH_entropy.json (`make bench-entropy`): the serial/w4 pair
// carries a 2x floor on >= 4-core machines, and the w1 pair bounds the
// container's bookkeeping overhead on any machine. The blob-overhead-frac
// metric is the chunk table's size cost over the legacy container (budget:
// <= 1%, pinned absolutely by TestChunkedOverhead).
func BenchmarkChunkedDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint32, 1<<21)
	for i := range syms {
		if i%2 == 0 {
			syms[i] = 1 << 15 // sz's "predicted exactly" center code
		} else {
			syms[i] = uint32(1<<15 + rng.Intn(64) - 32)
		}
	}
	for i := 0; i < len(syms)/100; i++ {
		syms[rng.Intn(len(syms))] = uint32(rng.Intn(1 << 16))
	}
	legacy, err := HuffmanEncode(syms, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	chunked, err := HuffmanEncodeChunked(syms, 1<<16, 1)
	if err != nil {
		b.Fatal(err)
	}
	overhead := float64(len(chunked)-len(legacy)) / float64(len(legacy))
	b.Run("huffman/serial", func(b *testing.B) {
		b.SetBytes(int64(len(syms)))
		b.ReportMetric(overhead, "blob-overhead-frac")
		for i := 0; i < b.N; i++ {
			if _, err := HuffmanDecode(legacy); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("huffman/w%d", w), func(b *testing.B) {
			b.SetBytes(int64(len(syms)))
			b.ReportMetric(overhead, "blob-overhead-frac")
			for i := 0; i < b.N; i++ {
				if _, err := HuffmanDecodeChunked(chunked, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRangeCoder(b *testing.B) {
	n := 1 << 18
	b.SetBytes(int64(n / 8))
	for i := 0; i < b.N; i++ {
		enc := NewRangeEncoder()
		m := NewBitModels(4)
		for j := 0; j < n; j++ {
			enc.EncodeBit(&m[j&3], uint(j>>5)&1)
		}
		enc.Finish()
	}
}
