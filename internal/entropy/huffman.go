package entropy

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

// maxHuffmanLen caps code lengths so the decoder can use fixed-width tables.
// Lengths are limited with a simple push-down rebalance (sufficient for the
// ≤ 2^16-symbol alphabets the SZ quantizer produces).
const maxHuffmanLen = 32

// HuffmanEncode entropy-codes a sequence of symbols drawn from the alphabet
// [0, alphabet). The output embeds a canonical code-length table followed by
// the bit stream, so HuffmanDecode needs no side information beyond the blob.
func HuffmanEncode(symbols []uint32, alphabet int) ([]byte, error) {
	return HuffmanEncodeParallel(symbols, alphabet, 1)
}

// freqShardMin gates the sharded frequency count: below this many symbols the
// scan is too cheap for fan-out to pay for itself.
const freqShardMin = 1 << 16

// HuffmanEncodeParallel is HuffmanEncode with the frequency count sharded
// across at most `workers` goroutines. Shards cover contiguous symbol ranges
// and are combined by summation in shard order, so the frequency table — and
// therefore the code table, the bit stream, and any error — is identical to
// the serial encoder's at every worker count. Code construction and the
// bitstream emit stay serial: they are inherently sequential and cheap next
// to the frequency scan.
func HuffmanEncodeParallel(symbols []uint32, alphabet, workers int) ([]byte, error) {
	if alphabet <= 0 {
		return nil, fmt.Errorf("entropy: invalid alphabet size %d", alphabet)
	}
	freq := getInts(alphabet)
	if bad := countFrequencies(symbols, alphabet, freq, workers); bad >= 0 {
		s := symbols[bad]
		putInts(freq)
		return nil, fmt.Errorf("entropy: symbol %d outside alphabet %d", s, alphabet)
	}
	lengths := huffmanLengths(freq)
	putInts(freq)
	codes := canonicalCodes(lengths)

	// Stage the header through the scratch pool like the bitstream buffer:
	// only the final exact-size blob is freshly allocated (callers keep it,
	// so it can never be recycled).
	hdr := getBytes()
	hdr = binary.AppendUvarint(hdr, uint64(alphabet))
	hdr = binary.AppendUvarint(hdr, uint64(len(symbols)))
	// Length table: run-length encode zeros since most alphabets are sparse.
	hdr = appendLengthTable(hdr, lengths)

	w := &BitWriter{buf: getBytes()}
	for _, s := range symbols {
		c := codes[s]
		w.WriteBits(uint64(c.code), uint(c.len))
	}
	putCodes(codes)
	payload := w.Bytes()
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	out := make([]byte, 0, len(hdr)+len(payload))
	out = append(out, hdr...)
	out = append(out, payload...)
	putBytes(hdr)
	putBytes(payload)
	return out, nil
}

// countFrequencies fills freq (zeroed, len alphabet) with symbol counts,
// fanning the scan out over contiguous shards when the input is large enough.
// It returns the index of the first symbol outside the alphabet, or -1. The
// shard ranges are ordered and disjoint, so the earliest bad index in the
// lowest bad shard is exactly the index the serial scan would have stopped at.
func countFrequencies(symbols []uint32, alphabet int, freq []int, workers int) int {
	if workers <= 1 || len(symbols) < freqShardMin {
		for i, s := range symbols {
			if int(s) >= alphabet {
				return i
			}
			freq[s]++
		}
		return -1
	}
	nshards := workers
	per := (len(symbols) + nshards - 1) / nshards
	nshards = (len(symbols) + per - 1) / per
	partial := make([][]int, nshards)
	bad := make([]int, nshards)
	pool.Run(workers, nshards, func(s int) {
		lo, hi := s*per, (s+1)*per
		if hi > len(symbols) {
			hi = len(symbols)
		}
		pf := getInts(alphabet)
		partial[s] = pf
		bad[s] = -1
		for i := lo; i < hi; i++ {
			sym := symbols[i]
			if int(sym) >= alphabet {
				bad[s] = i
				return
			}
			pf[sym]++
		}
	})
	obs.Add("entropy/freq_shards", int64(nshards))
	firstBad := -1
	for s := 0; s < nshards; s++ {
		if firstBad < 0 && bad[s] >= 0 {
			firstBad = bad[s]
		}
		for sym, c := range partial[s] {
			freq[sym] += c
		}
		putInts(partial[s])
	}
	return firstBad
}

// HuffmanDecode reverses HuffmanEncode.
func HuffmanDecode(blob []byte) ([]uint32, error) {
	return huffmanDecode(blob, true)
}

// huffmanDecode is the implementation behind HuffmanDecode. useTable selects
// the table-driven fast path; tests pass false to pin the table decoder to
// the bit-at-a-time oracle.
func huffmanDecode(blob []byte, useTable bool) ([]uint32, error) {
	alphabet, n, lengths, payload, err := parseHuffmanHeader(blob)
	if err != nil {
		return nil, err
	}
	if alphabet == 0 {
		return nil, fmt.Errorf("entropy: zero alphabet")
	}
	if alphabet > 1 && n > 8*len(payload) {
		return nil, fmt.Errorf("entropy: %d symbols cannot fit in %d payload bytes", n, len(payload))
	}
	dec, err := newCanonicalDecoder(lengths, useTable && n >= decTableMinSymbols)
	if err != nil {
		return nil, err
	}
	defer dec.release()
	if dec.table != nil {
		obs.Inc("entropy/huffdec_table")
	} else {
		obs.Inc("entropy/huffdec_bitwise")
	}
	r := NewBitReader(payload)
	capHint := n
	if capHint > 1<<20 {
		capHint = 1 << 20 // a corrupt count must not drive the allocation
	}
	out := make([]uint32, 0, capHint)
	if dec.table != nil {
		return dec.decodeAllTable(r, n, out)
	}
	for i := 0; i < n; i++ {
		s, err := dec.decodeSlow(r)
		if err != nil {
			return nil, fmt.Errorf("entropy: symbol %d/%d: %w", i, n, err)
		}
		out = append(out, s)
	}
	return out, nil
}

func parseHuffmanHeader(blob []byte) (alphabet, n int, lengths []uint8, payload []byte, err error) {
	a, k := binary.Uvarint(blob)
	if k <= 0 {
		return 0, 0, nil, nil, ErrTruncated
	}
	blob = blob[k:]
	cnt, k := binary.Uvarint(blob)
	if k <= 0 {
		return 0, 0, nil, nil, ErrTruncated
	}
	blob = blob[k:]
	if a > 1<<24 || cnt > 1<<34 {
		return 0, 0, nil, nil, fmt.Errorf("entropy: implausible header (alphabet %d, count %d)", a, cnt)
	}
	lengths, blob, err = readLengthTable(blob, int(a))
	if err != nil {
		return 0, 0, nil, nil, err
	}
	plen, k := binary.Uvarint(blob)
	if k <= 0 {
		return 0, 0, nil, nil, ErrTruncated
	}
	blob = blob[k:]
	if uint64(len(blob)) < plen {
		return 0, 0, nil, nil, ErrTruncated
	}
	return int(a), int(cnt), lengths, blob[:plen], nil
}

// huffmanLengths computes code lengths from frequencies via the classic
// two-queue/heap construction, then limits lengths to maxHuffmanLen.
func huffmanLengths(freq []int) []uint8 {
	type node struct {
		w           int
		sym         int // >= 0 for leaves
		left, right int // indices into pool for internal nodes
	}
	pool := make([]node, 0, 2*len(freq))
	h := &intHeap{}
	for s, f := range freq {
		if f > 0 {
			pool = append(pool, node{w: f, sym: s, left: -1, right: -1})
			heap.Push(h, heapItem{w: f, idx: len(pool) - 1})
		}
	}
	lengths := make([]uint8, len(freq))
	switch h.Len() {
	case 0:
		return lengths
	case 1:
		// A single distinct symbol still needs a 1-bit code.
		lengths[pool[0].sym] = 1
		return lengths
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(heapItem)
		b := heap.Pop(h).(heapItem)
		pool = append(pool, node{w: a.w + b.w, sym: -1, left: a.idx, right: b.idx})
		heap.Push(h, heapItem{w: a.w + b.w, idx: len(pool) - 1})
	}
	root := heap.Pop(h).(heapItem).idx
	// Iterative depth-first traversal to assign depths.
	type frame struct{ idx, depth int }
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := pool[f.idx]
		if nd.sym >= 0 {
			d := f.depth
			if d == 0 {
				d = 1
			}
			if d > maxHuffmanLen {
				d = maxHuffmanLen
			}
			lengths[nd.sym] = uint8(d)
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
	fixKraft(lengths)
	return lengths
}

// fixKraft repairs any Kraft-inequality violation introduced by clamping
// lengths, by lengthening the shortest over-short codes.
func fixKraft(lengths []uint8) {
	for {
		var sum uint64
		for _, l := range lengths {
			if l > 0 {
				sum += 1 << (maxHuffmanLen - l)
			}
		}
		if sum <= 1<<maxHuffmanLen {
			return
		}
		// Find the longest code shorter than the cap and lengthen it.
		best := -1
		for s, l := range lengths {
			if l > 0 && l < maxHuffmanLen && (best < 0 || l > lengths[best]) {
				best = s
			}
		}
		if best < 0 {
			return // cannot repair; should be impossible for sane alphabets
		}
		lengths[best]++
	}
}

type heapItem struct{ w, idx int }

type intHeap []heapItem

func (h intHeap) Len() int { return len(h) }
func (h intHeap) Less(i, j int) bool {
	if h[i].w != h[j].w {
		return h[i].w < h[j].w
	}
	return h[i].idx < h[j].idx
}
func (h intHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x any)   { *h = append(*h, x.(heapItem)) }
func (h *intHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

type huffCode struct {
	code uint32
	len  uint8
}

// canonicalCodes assigns canonical codes (shorter codes first, then by
// symbol), stored bit-reversed so they can be emitted LSB-first. The table
// comes from the scratch pool; callers return it with putCodes. Entries for
// zero-length symbols are left stale — see getCodes.
func canonicalCodes(lengths []uint8) []huffCode {
	type symLen struct {
		sym int
		l   uint8
	}
	var syms []symLen
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, symLen{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].sym < syms[j].sym
	})
	codes := getCodes(len(lengths))
	var code uint32
	var prevLen uint8
	for _, sl := range syms {
		code <<= (sl.l - prevLen)
		prevLen = sl.l
		codes[sl.sym] = huffCode{code: bits.Reverse32(code) >> (32 - sl.l), len: sl.l}
		code++
	}
	return codes
}

// First-level decode table parameters. A code of length l ≤ decTableBits
// occupies 2^(decTableBits-l) table slots (one per padding combination), so a
// single masked peek at the bit reader resolves it without the per-bit
// canonical walk. Codes longer than decTableBits, invalid prefixes, and
// end-of-stream tails all fall through to the bit-at-a-time path, which keeps
// the original error semantics exactly.
const (
	decTableBits = 12
	decTableSize = 1 << decTableBits
	// decTableMinSymbols gates table construction: filling 4096 entries only
	// pays off when the stream is long enough to amortise it.
	decTableMinSymbols = 128
)

// decEntry packs a first-level table hit as symbol<<6 | codeLen. Zero means
// "no code of length ≤ decTableBits has this prefix". Symbols fit in 24 bits
// (parseHuffmanHeader caps the alphabet at 2^24) and lengths in 6.
type decEntry uint32

// canonicalDecoder resolves short codes through a fixed-width first-level
// table and walks the remainder bit by bit using first-code/offset tables.
type canonicalDecoder struct {
	// firstCode[l] is the canonical value of the first code of length l,
	// and symAt maps (l, code-firstCode[l]) to the symbol.
	count   [maxHuffmanLen + 1]int
	first   [maxHuffmanLen + 1]uint32
	offset  [maxHuffmanLen + 1]int
	symbols []uint32
	// table is the pooled first-level lookup table, or nil when the caller
	// declined it or the length table over-subscribes the code space.
	table []decEntry
}

func newCanonicalDecoder(lengths []uint8, buildTable bool) (*canonicalDecoder, error) {
	d := &canonicalDecoder{}
	var kraft uint64
	for _, l := range lengths {
		if l > maxHuffmanLen {
			return nil, fmt.Errorf("entropy: code length %d exceeds cap", l)
		}
		if l > 0 {
			d.count[l]++
			kraft += 1 << (maxHuffmanLen - l)
		}
	}
	var code uint32
	idx := 0
	for l := 1; l <= maxHuffmanLen; l++ {
		code <<= 1
		d.first[l] = code
		d.offset[l] = idx
		code += uint32(d.count[l])
		idx += d.count[l]
	}
	d.symbols = make([]uint32, idx)
	next := make([]int, maxHuffmanLen+1)
	for s, l := range lengths {
		if l > 0 {
			d.symbols[d.offset[l]+next[l]] = uint32(s)
			next[l]++
		}
	}
	// An over-subscribed length table (Kraft sum > 1) assigns overlapping
	// codes; reversed indices would collide, so leave the table off and let
	// the bit-wise walk reproduce the historical behaviour for such blobs.
	if buildTable && kraft <= 1<<maxHuffmanLen {
		d.buildTable()
	}
	return d, nil
}

// buildTable fills the first-level table: each code of length l ≤ decTableBits
// lands at its bit-reversed value (codes are emitted LSB-first, so the low
// bits of the reader's accumulator hold the code's leading bits reversed) and
// is replicated across every high-bit padding.
func (d *canonicalDecoder) buildTable() {
	d.table = getDecTable()
	for l := 1; l <= decTableBits; l++ {
		e := decEntry(l)
		for j := 0; j < d.count[l]; j++ {
			rev := int(bits.Reverse32(d.first[l]+uint32(j)) >> (32 - uint(l)))
			sym := d.symbols[d.offset[l]+j]
			for idx := rev; idx < decTableSize; idx += 1 << l {
				d.table[idx] = e | decEntry(sym)<<6
			}
		}
	}
}

// release returns the pooled decode table, if any. The decoder must not be
// used afterwards.
func (d *canonicalDecoder) release() {
	if d.table != nil {
		putDecTable(d.table)
		d.table = nil
	}
}

// decodeAllTable decodes n symbols through the first-level table, shadowing
// the bit-reader state in locals so the hot loop keeps it in registers
// (per-symbol method calls would spill it on every iteration). Long codes,
// invalid prefixes and stream tails sync the reader and take the canonical
// walk, so error behaviour is identical to the bit-wise path.
func (d *canonicalDecoder) decodeAllTable(r *BitReader, n int, out []uint32) ([]uint32, error) {
	table := d.table
	buf := r.buf
	acc, nbits, pos := r.acc, r.nbits, r.pos
	for i := 0; i < n; i++ {
		if nbits < decTableBits {
			for nbits <= 56 && pos < len(buf) {
				acc |= uint64(buf[pos]) << nbits
				pos++
				nbits += 8
			}
		}
		e := table[acc&(decTableSize-1)]
		// Bits above nbits in the accumulator are zero padding; the entry is
		// only trusted when its whole code is real bits.
		if l := uint(e) & 63; l != 0 && l <= nbits {
			acc >>= l
			nbits -= l
			out = append(out, uint32(e>>6))
			continue
		}
		r.acc, r.nbits, r.pos = acc, nbits, pos
		s, err := d.decodeSlow(r)
		if err != nil {
			return nil, fmt.Errorf("entropy: symbol %d/%d: %w", i, n, err)
		}
		out = append(out, s)
		acc, nbits, pos = r.acc, r.nbits, r.pos
	}
	r.acc, r.nbits, r.pos = acc, nbits, pos
	return out, nil
}

// decodeSlow is the canonical bit-at-a-time walk: the oracle the table path
// is property-tested against, and the fallback for long codes, invalid
// prefixes and stream tails.
func (d *canonicalDecoder) decodeSlow(r *BitReader) (uint32, error) {
	var code uint32
	for l := 1; l <= maxHuffmanLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(b)
		if d.count[l] > 0 && code-d.first[l] < uint32(d.count[l]) {
			return d.symbols[d.offset[l]+int(code-d.first[l])], nil
		}
	}
	return 0, fmt.Errorf("entropy: invalid Huffman code")
}

// appendLengthTable serialises the code-length table with zero-run
// compression: (0, runLen) pairs for gaps, raw lengths otherwise.
func appendLengthTable(out []byte, lengths []uint8) []byte {
	i := 0
	for i < len(lengths) {
		if lengths[i] == 0 {
			j := i
			for j < len(lengths) && lengths[j] == 0 {
				j++
			}
			out = append(out, 0)
			out = binary.AppendUvarint(out, uint64(j-i))
			i = j
			continue
		}
		out = append(out, lengths[i])
		i++
	}
	return out
}

func readLengthTable(blob []byte, alphabet int) ([]uint8, []byte, error) {
	lengths := make([]uint8, alphabet)
	i := 0
	for i < alphabet {
		if len(blob) == 0 {
			return nil, nil, ErrTruncated
		}
		l := blob[0]
		blob = blob[1:]
		if l == 0 {
			run, k := binary.Uvarint(blob)
			if k <= 0 {
				return nil, nil, ErrTruncated
			}
			blob = blob[k:]
			if run == 0 || uint64(i)+run > uint64(alphabet) {
				return nil, nil, fmt.Errorf("entropy: bad zero run %d at symbol %d", run, i)
			}
			i += int(run)
			continue
		}
		lengths[i] = l
		i++
	}
	return lengths, blob, nil
}
