package entropy

import (
	"sync"

	"github.com/fxrz-go/fxrz/internal/obs"
)

// Scratch pools for the hot encode path. A training sweep runs the full
// compressor pipeline dozens of times per field; recycling the frequency
// table, bit-stream payload and symbol buffers across runs removes the
// allocations that otherwise dominate sweep GC pressure. Buffers handed out
// here are either zeroed on get (getInts) or fully overwritten by their only
// consumer before any read, so recycling never leaks stale state.
//
// Each get reports a hit (recycled capacity sufficed) or a miss (fresh
// allocation) to the obs counters entropy/scratch_hit and
// entropy/scratch_miss, so sweeps can verify the pools actually absorb the
// steady-state allocation traffic.

var (
	bytePool  = sync.Pool{New: func() any { return new([]byte) }}
	intPool   = sync.Pool{New: func() any { return new([]int) }}
	int32Pool = sync.Pool{New: func() any { return new([]int32) }}
	u32Pool   = sync.Pool{New: func() any { return new([]uint32) }}
	codePool  = sync.Pool{New: func() any { return new([]huffCode) }}
	decPool   = sync.Pool{New: func() any { return new([]decEntry) }}
)

// record bumps the pool hit/miss counters.
func record(hit bool) {
	if hit {
		obs.Inc("entropy/scratch_hit")
	} else {
		obs.Inc("entropy/scratch_miss")
	}
}

// getBytes returns an empty byte slice with recycled capacity.
func getBytes() []byte {
	p := bytePool.Get().(*[]byte)
	record(cap(*p) > 0)
	return (*p)[:0]
}

func putBytes(b []byte) {
	if cap(b) == 0 {
		return
	}
	bytePool.Put(&b)
}

// getInts returns a zeroed int slice of length n.
func getInts(n int) []int {
	p := intPool.Get().(*[]int)
	s := *p
	if cap(s) < n {
		record(false)
		return make([]int, n)
	}
	record(true)
	s = s[:n]
	clear(s)
	return s
}

func putInts(s []int) {
	if cap(s) == 0 {
		return
	}
	intPool.Put(&s)
}

// getInt32s returns an int32 slice of length n. Contents are unspecified —
// the caller must initialise every entry it reads.
func getInt32s(n int) []int32 {
	p := int32Pool.Get().(*[]int32)
	s := *p
	if cap(s) < n {
		record(false)
		return make([]int32, n)
	}
	record(true)
	return s[:n]
}

func putInt32s(s []int32) {
	if cap(s) == 0 {
		return
	}
	int32Pool.Put(&s)
}

// getU32s returns a uint32 slice of length n. Contents are unspecified.
func getU32s(n int) []uint32 {
	p := u32Pool.Get().(*[]uint32)
	s := *p
	if cap(s) < n {
		record(false)
		return make([]uint32, n)
	}
	record(true)
	return s[:n]
}

func putU32s(s []uint32) {
	if cap(s) == 0 {
		return
	}
	u32Pool.Put(&s)
}

// getCodes returns a huffCode slice of length n. Entries for symbols absent
// from the current alphabet may hold stale codes; encoders only index the
// table with symbols whose frequency is non-zero, which always have a
// freshly-assigned code.
func getCodes(n int) []huffCode {
	p := codePool.Get().(*[]huffCode)
	s := *p
	if cap(s) < n {
		record(false)
		return make([]huffCode, n)
	}
	record(true)
	return s[:n]
}

func putCodes(s []huffCode) {
	if cap(s) == 0 {
		return
	}
	codePool.Put(&s)
}

// getDecTable returns a zeroed first-level Huffman decode table
// (decTableSize entries, ~16 KiB) with recycled backing storage.
func getDecTable() []decEntry {
	p := decPool.Get().(*[]decEntry)
	s := *p
	if cap(s) < decTableSize {
		record(false)
		return make([]decEntry, decTableSize)
	}
	record(true)
	s = s[:decTableSize]
	clear(s)
	return s
}

func putDecTable(s []decEntry) {
	if cap(s) == 0 {
		return
	}
	decPool.Put(&s)
}
