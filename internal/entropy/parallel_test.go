package entropy

import (
	"bytes"
	"math/rand"
	"testing"
)

// AppendBits must splice a donor stream into a destination writer so the
// combined stream equals writing every bit through one writer — for every
// destination misalignment and donor length, including donors that end
// mid-byte and mid-word.
func TestAppendBitsEquivalentToSerialWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, preBits := range []int{0, 1, 3, 7, 8, 13, 63, 64, 65, 130} {
		for _, donorBits := range []int{0, 1, 5, 8, 9, 64, 65, 127, 128, 300, 1000} {
			pre := make([]bool, preBits)
			for i := range pre {
				pre[i] = rng.Intn(2) == 1
			}
			donorBools := make([]bool, donorBits)
			for i := range donorBools {
				donorBools[i] = rng.Intn(2) == 1
			}

			donor := new(BitWriter)
			for _, b := range donorBools {
				if b {
					donor.WriteBit(1)
				} else {
					donor.WriteBit(0)
				}
			}
			nbits := donor.BitLen()
			if nbits != donorBits {
				t.Fatalf("donor BitLen = %d, want %d", nbits, donorBits)
			}
			donorBytes := donor.Bytes()

			spliced := new(BitWriter)
			serial := new(BitWriter)
			for _, b := range pre {
				v := uint(0)
				if b {
					v = 1
				}
				spliced.WriteBit(v)
				serial.WriteBit(v)
			}
			spliced.AppendBits(donorBytes, nbits)
			for _, b := range donorBools {
				if b {
					serial.WriteBit(1)
				} else {
					serial.WriteBit(0)
				}
			}
			if spliced.BitLen() != serial.BitLen() {
				t.Fatalf("pre=%d donor=%d: BitLen %d != %d", preBits, donorBits, spliced.BitLen(), serial.BitLen())
			}
			if !bytes.Equal(spliced.Bytes(), serial.Bytes()) {
				t.Fatalf("pre=%d donor=%d: spliced stream differs from serial stream", preBits, donorBits)
			}
		}
	}
}

// NewBitReaderAt(b, off) must be indistinguishable from a fresh reader that
// consumed off bits, for byte-aligned and unaligned offsets and offsets past
// the end of the buffer (which read zeros, like TryRead* past the tail).
func TestNewBitReaderAtMatchesConsumedReader(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	buf := make([]byte, 64)
	rng.Read(buf)
	totalBits := 8 * len(buf)

	for _, off := range []int{0, 1, 7, 8, 9, 31, 32, 63, 64, 65, 200, totalBits - 3, totalBits, totalBits + 50} {
		seq := NewBitReader(buf)
		for rem := off; rem > 0; rem -= 64 {
			n := rem
			if n > 64 {
				n = 64
			}
			seq.TryReadBits(uint(n))
		}
		at := NewBitReaderAt(buf, off)
		for i := 0; i < 80; i++ {
			want := seq.TryReadBit()
			got := at.TryReadBit()
			if got != want {
				t.Fatalf("off=%d: bit %d after offset: got %d, want %d", off, i, got, want)
			}
		}
	}
}

// randomSymbols returns n symbols over the alphabet with a skewed
// distribution so the Huffman tree has mixed code lengths.
func randomSymbols(rng *rand.Rand, n, alphabet int) []uint32 {
	syms := make([]uint32, n)
	for i := range syms {
		if rng.Intn(4) == 0 {
			syms[i] = uint32(rng.Intn(alphabet))
		} else {
			syms[i] = uint32(rng.Intn(1 + alphabet/16))
		}
	}
	return syms
}

// Sharded frequency counting must produce byte-identical Huffman streams at
// every worker count, above and below the sharding cutoff.
func TestHuffmanEncodeParallelIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sizes := []int{0, 1, 100, freqShardMin - 1, freqShardMin, freqShardMin + 7, 3 * freqShardMin}
	for _, n := range sizes {
		for _, alphabet := range []int{2, 97, 1 << 16} {
			syms := randomSymbols(rng, n, alphabet)
			want, err := HuffmanEncode(syms, alphabet)
			if err != nil {
				t.Fatalf("n=%d alphabet=%d: serial encode: %v", n, alphabet, err)
			}
			for _, workers := range []int{2, 3, 5, 16} {
				got, err := HuffmanEncodeParallel(syms, alphabet, workers)
				if err != nil {
					t.Fatalf("n=%d alphabet=%d w=%d: %v", n, alphabet, workers, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("n=%d alphabet=%d w=%d: parallel blob differs from serial", n, alphabet, workers)
				}
			}
			dec, err := HuffmanDecode(want)
			if err != nil {
				t.Fatalf("n=%d alphabet=%d: decode: %v", n, alphabet, err)
			}
			if len(dec) != len(syms) {
				t.Fatalf("n=%d alphabet=%d: decode length %d != %d", n, alphabet, len(dec), len(syms))
			}
		}
	}
}

// The out-of-alphabet error must name the same symbol — the first bad one in
// input order — at every worker count, even when later shards contain
// earlier-valued bad symbols.
func TestHuffmanEncodeParallelFirstBadSymbol(t *testing.T) {
	n := 2*freqShardMin + 11
	syms := make([]uint32, n)
	for i := range syms {
		syms[i] = uint32(i % 50)
	}
	syms[freqShardMin/2] = 77 // first in input order
	syms[n-1] = 60            // also bad, later shard, smaller index within shard

	want, err := HuffmanEncode(syms, 50)
	if err == nil {
		t.Fatal("serial encode of bad symbols succeeded")
	}
	_ = want
	for _, workers := range []int{2, 3, 8} {
		_, perr := HuffmanEncodeParallel(syms, 50, workers)
		if perr == nil {
			t.Fatalf("w=%d: parallel encode of bad symbols succeeded", workers)
		}
		if perr.Error() != err.Error() {
			t.Fatalf("w=%d: error %q differs from serial %q", workers, perr, err)
		}
	}
}

// CompressBytesParallel must be byte-identical to CompressBytes and round-trip
// through the unchanged serial decoder.
func TestCompressBytesParallelIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 1000, 2*freqShardMin + 333} {
		src := make([]byte, n)
		for i := range src {
			// Compressible mix: runs plus noise.
			if rng.Intn(3) == 0 {
				src[i] = byte(rng.Intn(256))
			} else {
				src[i] = byte(i / 64)
			}
		}
		want, err := CompressBytes(src)
		if err != nil {
			t.Fatalf("n=%d: serial: %v", n, err)
		}
		for _, workers := range []int{2, 3, 7} {
			got, err := CompressBytesParallel(src, workers)
			if err != nil {
				t.Fatalf("n=%d w=%d: %v", n, workers, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("n=%d w=%d: parallel blob differs from serial", n, workers)
			}
		}
		back, err := DecompressBytes(want)
		if err != nil {
			t.Fatalf("n=%d: decompress: %v", n, err)
		}
		if !bytes.Equal(back, src) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}
