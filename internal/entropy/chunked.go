package entropy

// Chunked, seekable entropy containers.
//
// The whole-stream Huffman and LZ+Huffman coders are serial by construction:
// one bit stream, one dictionary window, decodable only front to back. The
// chunked containers below keep a single shared canonical code-length table
// (so the ratio cost of chunking stays in the per-chunk bookkeeping, not in
// duplicated tables) and split the payload into N independently decodable
// chunks with per-chunk symbol counts and byte-offset deltas. That buys two
// things: decode fans chunks across a worker pool, and a reader that only
// needs a byte range of the original stream entropy-decodes only the chunks
// covering it (DecompressBytesRange) — the primitive the SZ region decoder
// uses to go from O(stream) to O(region).
//
// Container layout (all integers uvarint unless noted):
//
//	byte 0x00        sentinel — a legacy stream starts with uvarint(alphabet)
//	                 and the decoder rejects alphabet 0, so no legacy blob
//	                 ever begins with a zero byte
//	byte magic       0xC5 chunked Huffman symbols | 0xCB chunked LZ bytes
//	byte version     1
//	[0xCB only] srcLen      total uncompressed byte count
//	[0xCB only] blockBytes  source bytes per chunk (last chunk ragged)
//	alphabet
//	n                total symbol count across chunks
//	nchunks
//	nchunks × count  per-chunk symbol counts (sum = n)
//	length table     shared canonical code lengths (same RLE as legacy)
//	nchunks × plen   per-chunk payload byte lengths (byte-offset deltas;
//	                 chunks are byte-aligned, costing < 1 byte per chunk)
//	payloads         concatenated per-chunk bit streams
//
// For the 0xCB byte container, chunk i's symbols are the LZ compression of
// source block i = src[i*blockBytes : min((i+1)*blockBytes, srcLen)] — each
// block is dictionary-coded independently, so a chunk decodes without any
// bytes from its neighbours.
//
// Encoding is deterministic at every worker width: chunk boundaries depend
// only on the input length, the shared frequency table is summed in chunk
// order (integer sums are order-independent), and per-chunk payloads are
// assembled serially. The whole-stream coders remain untouched as the
// bit-exactness oracles and as the decode path for all pre-existing blobs;
// every decode entry point here sniffs the sentinel and transparently falls
// back to them.

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

const (
	chunkedSentinel     = 0x00
	chunkedMagicHuffman = 0xC5
	chunkedMagicBytes   = 0xCB
	chunkedVersion      = 1

	// ChunkTargetBytes is the target source bytes per chunk of the byte
	// container (and, via DefaultChunkSymbols, symbols per chunk of the
	// symbol container): large enough that the per-chunk uvarint bookkeeping
	// and LZ window reset stay far under 1% of the payload, small enough
	// that a handful of chunks cover a typical field and region reads skip
	// most of them. Exported so callers aligning chunk boundaries to their
	// own structure (sz rows) can derive a block size near this target.
	ChunkTargetBytes = 1 << 17

	// DefaultChunkSymbols is the symbol-container chunk size: inputs shorter
	// than two chunks encode in the legacy whole-stream format (the same
	// size-cutoff idiom the wavefront kernels use — below the cutoff the
	// fan-out costs more than it buys).
	DefaultChunkSymbols = 1 << 17

	// maxChunksCap bounds hostile chunk counts before any per-chunk
	// allocation happens.
	maxChunksCap = 1 << 20
)

// isChunked reports whether blob starts a chunked container with the given
// magic.
func isChunked(blob []byte, magic byte) bool {
	return len(blob) >= 3 && blob[0] == chunkedSentinel && blob[1] == magic && blob[2] == chunkedVersion
}

// IsChunked reports whether blob is any chunked entropy container.
func IsChunked(blob []byte) bool {
	return isChunked(blob, chunkedMagicHuffman) || isChunked(blob, chunkedMagicBytes)
}

// ChunkedBlockSize returns the source block size of a chunked byte container
// (the byte span each chunk decodes independently), or 0 when blob is not
// one. Callers use it to map their own structure onto chunk boundaries
// without decoding anything.
func ChunkedBlockSize(blob []byte) int {
	if !isChunked(blob, chunkedMagicBytes) {
		return 0
	}
	rest := blob[3:]
	if _, k := binary.Uvarint(rest); k > 0 {
		rest = rest[k:]
		if b, k := binary.Uvarint(rest); k > 0 && b > 0 && b <= 1<<36 {
			return int(b)
		}
	}
	return 0
}

// HuffmanEncodeChunked encodes symbols like HuffmanEncode but into the
// chunked container, splitting the stream into DefaultChunkSymbols-symbol
// chunks that HuffmanDecodeChunked can decode in parallel. Inputs shorter
// than two chunks produce the legacy whole-stream format byte-identically.
// Output is identical at every worker count.
func HuffmanEncodeChunked(symbols []uint32, alphabet, workers int) ([]byte, error) {
	nchunks := (len(symbols) + DefaultChunkSymbols - 1) / DefaultChunkSymbols
	if nchunks < 2 {
		return HuffmanEncodeParallel(symbols, alphabet, workers)
	}
	chunks := make([][]uint32, nchunks)
	for i := range chunks {
		lo := i * DefaultChunkSymbols
		hi := lo + DefaultChunkSymbols
		if hi > len(symbols) {
			hi = len(symbols)
		}
		chunks[i] = symbols[lo:hi]
	}
	out := []byte{chunkedSentinel, chunkedMagicHuffman, chunkedVersion}
	return appendChunkedCore(out, chunks, alphabet, workers)
}

// HuffmanDecodeChunked reverses HuffmanEncodeChunked with up to `workers`
// chunks decoding concurrently. Legacy whole-stream blobs are dispatched to
// HuffmanDecode, so any blob either encoder produced decodes here.
func HuffmanDecodeChunked(blob []byte, workers int) ([]uint32, error) {
	if !isChunked(blob, chunkedMagicHuffman) {
		obs.Inc("entropy/legacy_decode")
		return HuffmanDecode(blob)
	}
	h, err := parseChunkedCore(blob[3:])
	if err != nil {
		return nil, err
	}
	recordChunkedDecode(len(h.counts))
	out := make([]uint32, h.n)
	offs := make([]int, len(h.counts))
	sum := 0
	for i, c := range h.counts {
		offs[i] = sum
		sum += c
	}
	err = h.decodeInto(workers, func(i int) []uint32 {
		return out[offs[i] : offs[i] : offs[i]+h.counts[i]]
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CompressBytesChunked is CompressBytes in the chunked container: src is cut
// into ChunkTargetBytes blocks, each LZ-coded independently, with one shared
// Huffman table over all chunks. Inputs shorter than two blocks fall back to
// the legacy whole-stream format byte-identically. Output is identical at
// every worker count.
func CompressBytesChunked(src []byte, workers int) ([]byte, error) {
	if (len(src)+ChunkTargetBytes-1)/ChunkTargetBytes < 2 {
		return CompressBytesParallel(src, workers)
	}
	return CompressBytesBlocks(src, ChunkTargetBytes, workers)
}

// CompressBytesBlocks encodes src into the chunked byte container with the
// caller's exact block size — the entry point for callers that align chunk
// boundaries to their own structure (sz uses a multiple of its row size so
// slab boundaries land on chunk boundaries). The container is emitted even
// for a single block; callers wanting the legacy fallback use
// CompressBytesChunked.
func CompressBytesBlocks(src []byte, blockBytes, workers int) ([]byte, error) {
	if blockBytes <= 0 {
		return nil, fmt.Errorf("entropy: invalid chunk block size %d", blockBytes)
	}
	nblocks := (len(src) + blockBytes - 1) / blockBytes
	if nblocks < 1 {
		nblocks = 1
	}
	if nblocks > maxChunksCap {
		return nil, fmt.Errorf("entropy: %d chunks exceed cap (block size %d for %d bytes)", nblocks, blockBytes, len(src))
	}
	// Each block is dictionary-coded independently so its chunk decodes
	// without neighbours; the match search inside a block is the serial
	// LZCompress, so per-block output is deterministic and the fan-out is
	// over blocks only.
	lz := make([][]byte, nblocks)
	pool.Run(workers, nblocks, func(i int) {
		lo := i * blockBytes
		hi := lo + blockBytes
		if hi > len(src) {
			hi = len(src)
		}
		lz[i] = LZCompress(src[lo:hi])
	})
	chunks := make([][]uint32, nblocks)
	total := 0
	for _, b := range lz {
		total += len(b)
	}
	syms := getU32s(total)
	pos := 0
	for i, b := range lz {
		chunk := syms[pos : pos+len(b)]
		for j, v := range b {
			chunk[j] = uint32(v)
		}
		chunks[i] = chunk
		pos += len(b)
		putBytes(b)
	}
	out := []byte{chunkedSentinel, chunkedMagicBytes, chunkedVersion}
	out = binary.AppendUvarint(out, uint64(len(src)))
	out = binary.AppendUvarint(out, uint64(blockBytes))
	out, err := appendChunkedCore(out, chunks, 256, workers)
	putU32s(syms)
	return out, err
}

// DecompressBytesParallel reverses CompressBytes and CompressBytesChunked,
// decoding the chunks of a chunked container across up to `workers`
// goroutines. Legacy whole-stream blobs take the original serial path.
func DecompressBytesParallel(blob []byte, workers int) ([]byte, error) {
	if !isChunked(blob, chunkedMagicBytes) {
		obs.Inc("entropy/legacy_decode")
		return decompressBytesLegacy(blob)
	}
	h, srcLen, blockBytes, err := parseChunkedBytes(blob)
	if err != nil {
		return nil, err
	}
	recordChunkedDecode(len(h.counts))
	out := make([]byte, srcLen)
	if err := h.decodeBlocksInto(out, 0, len(h.counts), blockBytes, workers); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressBytesRange returns bytes [off, end) of the stream a CompressBytes
// variant encoded. totalLen is the caller's expected uncompressed length and
// is validated against the container. For a chunked container only the chunks
// covering [off, end) are entropy-decoded — cost O(range), not O(stream);
// legacy blobs decode in full and slice.
func DecompressBytesRange(blob []byte, off, end, totalLen, workers int) ([]byte, error) {
	if off < 0 || end < off || end > totalLen {
		return nil, fmt.Errorf("entropy: invalid byte range [%d, %d) of %d", off, end, totalLen)
	}
	if !isChunked(blob, chunkedMagicBytes) {
		obs.Inc("entropy/legacy_decode")
		all, err := decompressBytesLegacy(blob)
		if err != nil {
			return nil, err
		}
		if len(all) != totalLen {
			return nil, fmt.Errorf("entropy: stream decodes to %d bytes, caller expected %d", len(all), totalLen)
		}
		return all[off:end], nil
	}
	h, srcLen, blockBytes, err := parseChunkedBytes(blob)
	if err != nil {
		return nil, err
	}
	if srcLen != totalLen {
		return nil, fmt.Errorf("entropy: chunked stream holds %d bytes, caller expected %d", srcLen, totalLen)
	}
	c0 := off / blockBytes
	c1 := (end + blockBytes - 1) / blockBytes
	if c1 > len(h.counts) {
		c1 = len(h.counts)
	}
	if c0 >= c1 {
		c0, c1 = 0, 0
	}
	recordChunkedDecode(c1 - c0)
	buf := make([]byte, minInt(c1*blockBytes, srcLen)-c0*blockBytes)
	if err := h.decodeBlocksInto(buf, c0, c1, blockBytes, workers); err != nil {
		return nil, err
	}
	return buf[off-c0*blockBytes : end-c0*blockBytes], nil
}

// decompressBytesLegacy is the pre-chunking whole-stream pipeline (Huffman
// then LZ), retained as the decode path for every legacy blob and as the
// oracle the chunked round-trip tests pin against.
func decompressBytesLegacy(blob []byte) ([]byte, error) {
	syms, err := HuffmanDecode(blob)
	if err != nil {
		return nil, err
	}
	lz := make([]byte, len(syms))
	for i, s := range syms {
		lz[i] = byte(s)
	}
	return LZDecompress(lz)
}

// recordChunkedDecode bumps the chunked-traffic counters: serve-time adoption
// of the new container is observable as chunked vs legacy decode counts plus
// a chunks-per-blob histogram (obs histograms bucket int64 durations, so the
// chunk count rides in as a Duration — the power-of-two buckets and quantiles
// read directly as chunk counts).
func recordChunkedDecode(nchunks int) {
	obs.Inc("entropy/chunked_decode")
	obs.Observe("entropy/chunks_per_blob", time.Duration(nchunks))
}

// chunkedCore is a parsed chunked container from the alphabet field onward.
type chunkedCore struct {
	alphabet int
	n        int
	counts   []int
	lengths  []uint8
	payloads [][]byte
}

// appendChunkedCore appends the shared-table multi-chunk encoding of chunks
// to out: alphabet, total count, per-chunk counts, one length table built
// from the summed frequencies, per-chunk payload lengths, then the payloads.
// Per-chunk frequency counting and payload emission fan out over the pool;
// chunk-ordered summation and serial assembly keep the bytes identical at
// every worker count.
func appendChunkedCore(out []byte, chunks [][]uint32, alphabet, workers int) ([]byte, error) {
	if alphabet <= 0 {
		return nil, fmt.Errorf("entropy: invalid alphabet size %d", alphabet)
	}
	nchunks := len(chunks)
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	partial := make([][]int, nchunks)
	bad := make([]int, nchunks)
	pool.Run(workers, nchunks, func(i int) {
		pf := getInts(alphabet)
		partial[i] = pf
		bad[i] = -1
		for j, s := range chunks[i] {
			if int(s) >= alphabet {
				bad[i] = j
				return
			}
			pf[s]++
		}
	})
	freq := getInts(alphabet)
	badSym := int64(-1)
	for i := nchunks - 1; i >= 0; i-- {
		if bad[i] >= 0 {
			badSym = int64(chunks[i][bad[i]])
		}
		for sym, c := range partial[i] {
			freq[sym] += c
		}
		putInts(partial[i])
	}
	if badSym >= 0 {
		putInts(freq)
		return nil, fmt.Errorf("entropy: symbol %d outside alphabet %d", badSym, alphabet)
	}
	lengths := huffmanLengths(freq)
	putInts(freq)
	codes := canonicalCodes(lengths)

	payloads := make([][]byte, nchunks)
	pool.Run(workers, nchunks, func(i int) {
		w := NewPooledBitWriter()
		for _, s := range chunks[i] {
			c := codes[s]
			w.WriteBits(uint64(c.code), uint(c.len))
		}
		payloads[i] = w.Bytes()
	})
	putCodes(codes)

	out = binary.AppendUvarint(out, uint64(alphabet))
	out = binary.AppendUvarint(out, uint64(total))
	out = binary.AppendUvarint(out, uint64(nchunks))
	for _, c := range chunks {
		out = binary.AppendUvarint(out, uint64(len(c)))
	}
	out = appendLengthTable(out, lengths)
	for _, p := range payloads {
		out = binary.AppendUvarint(out, uint64(len(p)))
	}
	for _, p := range payloads {
		out = append(out, p...)
		RecycleBuffer(p)
	}
	return out, nil
}

// parseChunkedCore parses and validates everything after the 3-byte
// container prefix. Payload slices are views into blob.
func parseChunkedCore(body []byte) (*chunkedCore, error) {
	a, k := binary.Uvarint(body)
	if k <= 0 {
		return nil, ErrTruncated
	}
	body = body[k:]
	n, k := binary.Uvarint(body)
	if k <= 0 {
		return nil, ErrTruncated
	}
	body = body[k:]
	nchunks, k := binary.Uvarint(body)
	if k <= 0 {
		return nil, ErrTruncated
	}
	body = body[k:]
	if a == 0 || a > 1<<24 || n > 1<<34 || nchunks == 0 || nchunks > maxChunksCap {
		return nil, fmt.Errorf("entropy: implausible chunked header (alphabet %d, count %d, chunks %d)", a, n, nchunks)
	}
	h := &chunkedCore{alphabet: int(a), n: int(n), counts: make([]int, nchunks)}
	var sum uint64
	for i := range h.counts {
		c, k := binary.Uvarint(body)
		if k <= 0 {
			return nil, ErrTruncated
		}
		body = body[k:]
		sum += c
		if c > n || sum > n {
			return nil, fmt.Errorf("entropy: chunk symbol counts overflow total %d", n)
		}
		h.counts[i] = int(c)
	}
	if sum != n {
		return nil, fmt.Errorf("entropy: chunk symbol counts sum to %d, header says %d", sum, n)
	}
	var err error
	h.lengths, body, err = readLengthTable(body, h.alphabet)
	if err != nil {
		return nil, err
	}
	plens := make([]uint64, nchunks)
	var psum uint64
	for i := range plens {
		p, k := binary.Uvarint(body)
		if k <= 0 {
			return nil, ErrTruncated
		}
		body = body[k:]
		psum += p
		if psum > uint64(len(body)) {
			return nil, ErrTruncated
		}
		plens[i] = p
	}
	if psum != uint64(len(body)) {
		return nil, fmt.Errorf("entropy: %d payload bytes for %d declared", len(body), psum)
	}
	// Every symbol costs at least one bit, so a chunk's count cannot exceed
	// its payload bit length (the legacy decoder's fit check, per chunk).
	// This also bounds the output allocation by the input size.
	h.payloads = make([][]byte, nchunks)
	for i, p := range plens {
		h.payloads[i] = body[:p]
		body = body[p:]
		if uint64(h.counts[i]) > 8*p {
			return nil, fmt.Errorf("entropy: chunk %d: %d symbols cannot fit in %d payload bytes", i, h.counts[i], p)
		}
	}
	return h, nil
}

// parseChunkedBytes parses a chunked byte container's prefix and core and
// cross-checks the block structure.
func parseChunkedBytes(blob []byte) (h *chunkedCore, srcLen, blockBytes int, err error) {
	body := blob[3:]
	s, k := binary.Uvarint(body)
	if k <= 0 {
		return nil, 0, 0, ErrTruncated
	}
	body = body[k:]
	b, k := binary.Uvarint(body)
	if k <= 0 {
		return nil, 0, 0, ErrTruncated
	}
	body = body[k:]
	if s > 1<<36 || b == 0 || b > 1<<36 {
		return nil, 0, 0, fmt.Errorf("entropy: implausible chunked byte header (size %d, block %d)", s, b)
	}
	if h, err = parseChunkedCore(body); err != nil {
		return nil, 0, 0, err
	}
	want := int((s + b - 1) / b)
	if want < 1 {
		want = 1
	}
	if len(h.counts) != want {
		return nil, 0, 0, fmt.Errorf("entropy: %d chunks for %d bytes in %d-byte blocks (want %d)", len(h.counts), s, b, want)
	}
	return h, int(s), int(b), nil
}

// newDecoder builds the shared canonical decoder for the container's length
// table. The decoder is read-only after construction, so every chunk worker
// shares it; the caller must release() it once all workers are done.
func (h *chunkedCore) newDecoder() (*canonicalDecoder, error) {
	dec, err := newCanonicalDecoder(h.lengths, h.n >= decTableMinSymbols)
	if err != nil {
		return nil, err
	}
	if dec.table != nil {
		obs.Inc("entropy/huffdec_table")
	} else {
		obs.Inc("entropy/huffdec_bitwise")
	}
	return dec, nil
}

// decodeChunk decodes chunk i's symbols into out (len 0, cap == counts[i]).
func (h *chunkedCore) decodeChunk(dec *canonicalDecoder, i int, out []uint32) ([]uint32, error) {
	r := NewBitReader(h.payloads[i])
	n := h.counts[i]
	if dec.table != nil {
		return dec.decodeAllTable(r, n, out)
	}
	for j := 0; j < n; j++ {
		s, err := dec.decodeSlow(r)
		if err != nil {
			return nil, fmt.Errorf("entropy: symbol %d/%d: %w", j, n, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// decodeInto decodes every chunk concurrently, writing chunk i's symbols
// into the slice dst(i) returns (len 0, cap counts[i], disjoint per chunk).
func (h *chunkedCore) decodeInto(workers int, dst func(i int) []uint32) error {
	dec, err := h.newDecoder()
	if err != nil {
		return err
	}
	defer dec.release()
	errs := make([]error, len(h.counts))
	pool.Run(workers, len(h.counts), func(i int) {
		out, err := h.decodeChunk(dec, i, dst(i))
		if err == nil && len(out) != h.counts[i] {
			err = fmt.Errorf("entropy: chunk %d decoded %d symbols, want %d", i, len(out), h.counts[i])
		}
		errs[i] = err
	})
	return firstErr(errs)
}

// decodeBlocksInto decodes byte-container chunks [c0, c1) into out, which
// must hold exactly the source bytes those blocks cover (the last block may
// be ragged). Each chunk Huffman-decodes its LZ bytes and LZ-decodes them
// into its disjoint segment of out.
func (h *chunkedCore) decodeBlocksInto(out []byte, c0, c1, blockBytes, workers int) error {
	if h.alphabet != 256 {
		return fmt.Errorf("entropy: chunked byte stream has alphabet %d, want 256", h.alphabet)
	}
	dec, err := h.newDecoder()
	if err != nil {
		return err
	}
	defer dec.release()
	base := c0 * blockBytes
	errs := make([]error, c1-c0)
	pool.Run(workers, c1-c0, func(t int) {
		i := c0 + t
		syms := getU32s(h.counts[i])[:0]
		syms, err := h.decodeChunk(dec, i, syms)
		if err != nil {
			errs[t] = err
			putU32s(syms[:cap(syms)])
			return
		}
		lz := getScratchLZ(len(syms))
		for j, s := range syms {
			lz[j] = byte(s)
		}
		putU32s(syms[:cap(syms)])
		lo := i*blockBytes - base
		hi := lo + blockBytes
		if hi > len(out) {
			hi = len(out)
		}
		errs[t] = lzDecompressInto(out[lo:hi], lz)
		putScratchLZ(lz)
	})
	return firstErr(errs)
}

// getScratchLZ / putScratchLZ stage per-chunk LZ byte buffers through the
// byte pool.
func getScratchLZ(n int) []byte {
	b := getBytes()
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

func putScratchLZ(b []byte) { putBytes(b) }

func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// lzDecompressInto is LZDecompress for a destination of exactly known size:
// the token stream must decode to len(dst) bytes, written in place. It
// mirrors LZDecompress's validation token for token (the chunked round-trip
// tests and FuzzChunkedEntropy pin the two against each other).
func lzDecompressInto(dst []byte, blob []byte) error {
	size, k := binary.Uvarint(blob)
	if k <= 0 {
		return ErrTruncated
	}
	blob = blob[k:]
	if size != uint64(len(dst)) {
		return fmt.Errorf("entropy: chunk holds %d bytes, block expects %d", size, len(dst))
	}
	pos := 0
	for {
		litLen, k := binary.Uvarint(blob)
		if k <= 0 {
			return ErrTruncated
		}
		blob = blob[k:]
		if uint64(len(blob)) < litLen {
			return ErrTruncated
		}
		if litLen > uint64(len(dst)-pos) {
			return fmt.Errorf("entropy: literals overflow declared size %d", size)
		}
		pos += copy(dst[pos:], blob[:litLen])
		blob = blob[litLen:]
		matchLen, k := binary.Uvarint(blob)
		if k <= 0 {
			return ErrTruncated
		}
		blob = blob[k:]
		if matchLen == 0 {
			break
		}
		if matchLen > lzMaxMatch || matchLen > uint64(len(dst)-pos) {
			return fmt.Errorf("entropy: invalid match length %d at output offset %d", matchLen, pos)
		}
		dist, k := binary.Uvarint(blob)
		if k <= 0 {
			return ErrTruncated
		}
		blob = blob[k:]
		if dist == 0 || dist > uint64(pos) {
			return fmt.Errorf("entropy: invalid match distance %d at output offset %d", dist, pos)
		}
		// Byte-by-byte copy so overlapping matches replicate runs, exactly
		// as LZDecompress does.
		start := pos - int(dist)
		for j := 0; j < int(matchLen); j++ {
			dst[pos] = dst[start+j]
			pos++
		}
	}
	if pos != len(dst) {
		return fmt.Errorf("entropy: decoded %d bytes, header said %d", pos, size)
	}
	return nil
}
