package entropy

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentCompressRoundTrip hammers the pooled encode path from many
// goroutines at once: every worker must round-trip its own payloads even
// while scratch buffers are recycled across workers. Run under -race this
// also proves no pooled buffer is shared while live.
func TestConcurrentCompressRoundTrip(t *testing.T) {
	const workers = 8
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				src := make([]byte, rng.Intn(4096))
				switch r % 3 {
				case 0: // repetitive — exercises LZ matches
					for i := range src {
						src[i] = byte(i / 7 % 5)
					}
				case 1: // random — mostly literals
					rng.Read(src)
				case 2: // sparse alphabet — exercises Huffman table reuse
					for i := range src {
						src[i] = byte(rng.Intn(3) * 40)
					}
				}
				blob, err := CompressBytes(src)
				if err != nil {
					errs <- err
					return
				}
				got, err := DecompressBytes(blob)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, src) {
					t.Errorf("seed %d round %d: round trip mismatch (%d bytes)", seed, r, len(src))
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestHuffmanEncodeAfterPoolReuse encodes with a wide alphabet, then a
// narrow one, then wide again, so recycled frequency/code tables must be
// correctly re-zeroed (freq) or provably unread (stale codes).
func TestHuffmanEncodeAfterPoolReuse(t *testing.T) {
	wide := make([]uint32, 5000)
	for i := range wide {
		wide[i] = uint32(i % 60000)
	}
	narrow := []uint32{1, 2, 3, 2, 1, 2, 3, 3, 3}
	for round := 0; round < 4; round++ {
		for _, tc := range []struct {
			syms     []uint32
			alphabet int
		}{{wide, 1 << 16}, {narrow, 8}} {
			blob, err := HuffmanEncode(tc.syms, tc.alphabet)
			if err != nil {
				t.Fatal(err)
			}
			got, err := HuffmanDecode(blob)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.syms) {
				t.Fatalf("round %d: %d symbols, want %d", round, len(got), len(tc.syms))
			}
			for i := range got {
				if got[i] != tc.syms[i] {
					t.Fatalf("round %d: symbol %d = %d, want %d", round, i, got[i], tc.syms[i])
				}
			}
		}
	}
}
