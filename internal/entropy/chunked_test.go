package entropy

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// workerWidths are the widths every chunked-vs-whole identity property is
// checked at: serial, the smallest real fan-out, and whatever the host has.
func workerWidths() []int {
	w := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		w = append(w, n)
	}
	return w
}

// chunkedByteInputs returns the byte-pattern corpus for the byte-container
// properties: constant runs (maximal LZ collapse), uniform noise
// (incompressible), a skewed alphabet (Huffman-friendly), sz-like escape-heavy
// little-endian code words, and the raw bit patterns of NaN/Inf float32
// streams — plus lengths that straddle chunk boundaries by ±1.
func chunkedByteInputs(block int) map[string][]byte {
	rng := rand.New(rand.NewSource(9))
	in := map[string][]byte{}

	constant := make([]byte, 3*block+block/2)
	for i := range constant {
		constant[i] = 0x42
	}
	in["constant"] = constant

	noise := make([]byte, 2*block+1)
	rng.Read(noise)
	in["noise"] = noise

	skew := make([]byte, 4*block-1)
	for i := range skew {
		if rng.Intn(10) == 0 {
			skew[i] = byte(rng.Intn(256))
		} else {
			skew[i] = byte(rng.Intn(4))
		}
	}
	in["skewed"] = skew

	// sz-like codes: mostly near the radius (0x8000) with escape zeros.
	codes := make([]byte, 2*block)
	for i := 0; i+1 < len(codes); i += 2 {
		if rng.Intn(20) == 0 {
			codes[i], codes[i+1] = 0, 0 // escape
		} else {
			v := 0x8000 + rng.Intn(7) - 3
			codes[i], codes[i+1] = byte(v), byte(v>>8)
		}
	}
	in["escape-heavy"] = codes

	// NaN/Inf payloads as they appear in a raw float32 pool.
	special := make([]byte, 0, 3*block)
	for len(special) < 3*block {
		var bits uint32
		switch rng.Intn(3) {
		case 0:
			bits = math.Float32bits(float32(math.NaN()))
		case 1:
			bits = math.Float32bits(float32(math.Inf(1)))
		default:
			bits = math.Float32bits(float32(math.Inf(-1)))
		}
		special = append(special, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
	}
	in["nan-inf"] = special

	// Boundary-straddling lengths around exact multiples of the block size.
	for _, d := range []int{-1, 0, 1} {
		n := 2*block + d
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i * 7)
		}
		in[map[int]string{-1: "straddle-minus", 0: "straddle-exact", 1: "straddle-plus"}[d]] = b
	}
	return in
}

// TestChunkedBytesIdentity: the chunked byte container must encode
// byte-identically at every worker width, decode back to the source at every
// width through every entry point, and the legacy coder's blobs must pass
// through the chunk-aware entry points untouched.
func TestChunkedBytesIdentity(t *testing.T) {
	const block = 512
	for name, src := range chunkedByteInputs(block) {
		t.Run(name, func(t *testing.T) {
			var ref []byte
			for _, w := range workerWidths() {
				blob, err := CompressBytesBlocks(src, block, w)
				if err != nil {
					t.Fatalf("encode w=%d: %v", w, err)
				}
				if ref == nil {
					ref = blob
					if !IsChunked(blob) {
						t.Fatalf("expected a chunked container for %d bytes in %d-byte blocks", len(src), block)
					}
					if got := ChunkedBlockSize(blob); got != block {
						t.Fatalf("ChunkedBlockSize = %d, want %d", got, block)
					}
				} else if !bytes.Equal(blob, ref) {
					t.Fatalf("encode at w=%d differs from w=1", w)
				}
			}
			for _, w := range workerWidths() {
				got, err := DecompressBytesParallel(ref, w)
				if err != nil {
					t.Fatalf("decode w=%d: %v", w, err)
				}
				if !bytes.Equal(got, src) {
					t.Fatalf("decode w=%d round-trip mismatch", w)
				}
			}
			// The serial dispatcher handles chunked blobs too.
			got, err := DecompressBytes(ref)
			if err != nil || !bytes.Equal(got, src) {
				t.Fatalf("DecompressBytes on chunked blob: %v", err)
			}
			// Legacy blobs flow through the chunk-aware decoder unchanged.
			legacy, err := CompressBytes(src)
			if err != nil {
				t.Fatalf("legacy encode: %v", err)
			}
			if IsChunked(legacy) {
				t.Fatalf("whole-stream encoder emitted a chunked container")
			}
			got, err = DecompressBytesParallel(legacy, 4)
			if err != nil || !bytes.Equal(got, src) {
				t.Fatalf("legacy blob through DecompressBytesParallel: %v", err)
			}
		})
	}
}

// TestChunkedBytesFallback: below the two-chunk cutoff the chunked entry
// point must produce the legacy whole-stream format byte-identically.
func TestChunkedBytesFallback(t *testing.T) {
	src := make([]byte, ChunkTargetBytes-1)
	for i := range src {
		src[i] = byte(i)
	}
	chunked, err := CompressBytesChunked(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := CompressBytes(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chunked, legacy) {
		t.Fatalf("below-cutoff chunked encode is not byte-identical to the legacy format")
	}
}

// TestChunkedBytesRange: DecompressBytesRange must return exactly src[off:end]
// for ranges inside, straddling, and exactly on chunk boundaries — for both
// chunked and legacy containers.
func TestChunkedBytesRange(t *testing.T) {
	const block = 512
	rng := rand.New(rand.NewSource(11))
	src := make([]byte, 5*block+block/3)
	for i := range src {
		src[i] = byte(rng.Intn(8) * 31)
	}
	chunked, err := CompressBytesBlocks(src, block, 2)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := CompressBytes(src)
	if err != nil {
		t.Fatal(err)
	}
	ranges := [][2]int{
		{0, len(src)},              // everything
		{0, 0},                     // empty at the front
		{len(src), len(src)},       // empty at the back
		{block, 2 * block},         // exactly one chunk
		{block - 1, block + 1},     // straddles a boundary
		{3*block + 7, 5 * block},   // tail across the ragged last chunk
		{block / 2, block/2 + 100}, // interior of one chunk
	}
	for i := 0; i < 32; i++ {
		a := rng.Intn(len(src) + 1)
		b := a + rng.Intn(len(src)+1-a)
		ranges = append(ranges, [2]int{a, b})
	}
	for _, r := range ranges {
		off, end := r[0], r[1]
		for _, blob := range [][]byte{chunked, legacy} {
			got, err := DecompressBytesRange(blob, off, end, len(src), 2)
			if err != nil {
				t.Fatalf("range [%d,%d): %v", off, end, err)
			}
			if !bytes.Equal(got, src[off:end]) {
				t.Fatalf("range [%d,%d): content mismatch", off, end)
			}
		}
	}
	// Invalid ranges and a wrong totalLen must error, not panic.
	if _, err := DecompressBytesRange(chunked, -1, 4, len(src), 1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := DecompressBytesRange(chunked, 4, 2, len(src), 1); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := DecompressBytesRange(chunked, 0, 4, len(src)+1, 1); err == nil {
		t.Fatal("wrong totalLen accepted")
	}
}

// TestChunkedHuffmanIdentity: the symbol container must be deterministic
// across widths, decode back to the input at every width, and fall back to
// the legacy format below the two-chunk cutoff.
func TestChunkedHuffmanIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 2*DefaultChunkSymbols + 513 // three chunks, last one ragged
	syms := make([]uint32, n)
	for i := range syms {
		if rng.Intn(16) == 0 {
			syms[i] = 0
		} else {
			syms[i] = uint32(0x8000 + rng.Intn(9) - 4)
		}
	}
	const alphabet = 1 << 16
	var ref []byte
	for _, w := range workerWidths() {
		blob, err := HuffmanEncodeChunked(syms, alphabet, w)
		if err != nil {
			t.Fatalf("encode w=%d: %v", w, err)
		}
		if ref == nil {
			ref = blob
			if !IsChunked(blob) {
				t.Fatalf("expected a chunked container for %d symbols", n)
			}
		} else if !bytes.Equal(blob, ref) {
			t.Fatalf("encode at w=%d differs from w=1", w)
		}
	}
	for _, w := range workerWidths() {
		got, err := HuffmanDecodeChunked(ref, w)
		if err != nil {
			t.Fatalf("decode w=%d: %v", w, err)
		}
		if len(got) != len(syms) {
			t.Fatalf("decode w=%d: %d symbols, want %d", w, len(got), len(syms))
		}
		for i := range got {
			if got[i] != syms[i] {
				t.Fatalf("decode w=%d: symbol %d = %d, want %d", w, i, got[i], syms[i])
			}
		}
	}
	// Legacy blobs pass through the chunk-aware decoder; short inputs fall
	// back to the legacy format byte-identically.
	short := syms[:DefaultChunkSymbols-1]
	chunked, err := HuffmanEncodeChunked(short, alphabet, 2)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := HuffmanEncode(short, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chunked, legacy) {
		t.Fatalf("below-cutoff chunked encode is not byte-identical to the legacy format")
	}
	got, err := HuffmanDecodeChunked(legacy, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != short[i] {
			t.Fatalf("legacy fallback decode mismatch at %d", i)
		}
	}
	// Out-of-alphabet symbols must be rejected with the same shape of error
	// as the whole-stream encoder.
	bad := make([]uint32, 3*DefaultChunkSymbols)
	bad[len(bad)-1] = alphabet
	if _, err := HuffmanEncodeChunked(bad, alphabet, 2); err == nil {
		t.Fatal("out-of-alphabet symbol accepted")
	}
}

// TestChunkedConstantInput: a single-symbol alphabet exercises the 1-bit
// degenerate code path across chunks.
func TestChunkedConstantInput(t *testing.T) {
	syms := make([]uint32, 2*DefaultChunkSymbols+3)
	blob, err := HuffmanEncodeChunked(syms, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := HuffmanDecodeChunked(blob, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(syms) {
		t.Fatalf("decoded %d symbols, want %d", len(got), len(syms))
	}
	for i, s := range got {
		if s != 0 {
			t.Fatalf("symbol %d = %d, want 0", i, s)
		}
	}
}

// TestChunkedOverhead: the chunked container's bookkeeping (shared table is
// amortized; per-chunk counts, offsets, and LZ window resets are not) must
// stay under 1% of the legacy whole-stream size on a realistic code stream.
func TestChunkedOverhead(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := make([]byte, 1<<20) // 8 chunks at the default target
	for i := 0; i+1 < len(src); i += 2 {
		var v int
		if rng.Intn(30) == 0 {
			v = 0
		} else {
			v = 0x8000 + rng.Intn(5) - 2
		}
		src[i], src[i+1] = byte(v), byte(v>>8)
	}
	legacy, err := CompressBytes(src)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := CompressBytesChunked(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	overhead := float64(len(chunked)-len(legacy)) / float64(len(legacy))
	t.Logf("legacy %d bytes, chunked %d bytes, overhead %.4f%%", len(legacy), len(chunked), 100*overhead)
	if overhead > 0.01 {
		t.Fatalf("chunk bookkeeping overhead %.4f%% exceeds the 1%% budget", 100*overhead)
	}
}

// TestLZDecompressIntoMatchesOracle pins the fixed-destination LZ decoder
// against LZDecompress over a spread of inputs.
func TestLZDecompressIntoMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(4096)
		src := make([]byte, n)
		switch trial % 3 {
		case 0:
			rng.Read(src)
		case 1: // repetitive: long overlapping matches
			for i := range src {
				src[i] = byte(i % (1 + trial))
			}
		case 2: // runs: distance-1 overlap replication
			for i := range src {
				src[i] = byte(i / 64)
			}
		}
		blob := LZCompress(src)
		want, err := LZDecompress(blob)
		if err != nil {
			t.Fatalf("trial %d: oracle: %v", trial, err)
		}
		dst := make([]byte, n)
		if err := lzDecompressInto(dst, blob); err != nil {
			t.Fatalf("trial %d: into: %v", trial, err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("trial %d: fixed-destination decode differs from oracle", trial)
		}
		// A destination of the wrong size must be rejected.
		if n > 0 {
			if err := lzDecompressInto(make([]byte, n-1), blob); err == nil {
				t.Fatalf("trial %d: short destination accepted", trial)
			}
		}
	}
}

// TestChunkedHostileHeaders: malformed containers must error cleanly.
func TestChunkedHostileHeaders(t *testing.T) {
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i % 5)
	}
	good, err := CompressBytesBlocks(src, 1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"sentinel only":  {0x00},
		"bad magic":      {0x00, 0xEE, 0x01, 0x01},
		"bad version":    {0x00, 0xCB, 0x09, 0x01},
		"truncated half": good[:len(good)/2],
		"truncated tail": good[:len(good)-1],
	}
	// Flipped-byte corpus over the header region.
	for i := 3; i < 24 && i < len(good); i++ {
		b := bytes.Clone(good)
		b[i] ^= 0xFF
		cases["flip"] = b
		if out, err := DecompressBytesParallel(b, 2); err == nil && !bytes.Equal(out, src) {
			t.Fatalf("flip at %d: silent corruption", i)
		}
	}
	for name, b := range cases {
		if out, err := DecompressBytesParallel(b, 2); err == nil && !bytes.Equal(out, src) {
			t.Fatalf("%s: silent corruption", name)
		}
	}
}
