package entropy

import (
	"math/rand"
	"testing"
)

// The table-driven decoder must be indistinguishable from the bit-at-a-time
// canonical walk: same symbols on valid streams, same verdict on corrupt
// ones. Fibonacci-weighted frequencies are the classic depth-maximising
// distribution, pushing codes past decTableBits so the first-level-miss
// overflow path is exercised alongside the table hits.

func huffStreams(rng *rand.Rand) map[string][]uint32 {
	streams := make(map[string][]uint32)

	uniform := make([]uint32, 4096)
	for i := range uniform {
		uniform[i] = uint32(rng.Intn(500))
	}
	streams["uniform"] = uniform

	skew := make([]uint32, 4096)
	for i := range skew {
		if rng.Intn(10) == 0 {
			skew[i] = uint32(rng.Intn(200))
		} // else symbol 0 dominates → 1-2 bit code
	}
	streams["skewed"] = skew

	// Fibonacci weights: symbol i appears fib(i) times, giving code lengths
	// that grow linearly in the symbol index — well past the 12-bit table.
	var fib []uint32
	a, b := 1, 1
	for s := 0; s < 24; s++ {
		for j := 0; j < a; j++ {
			fib = append(fib, uint32(s))
		}
		a, b = b, a+b
	}
	rng.Shuffle(len(fib), func(i, j int) { fib[i], fib[j] = fib[j], fib[i] })
	streams["fibonacci"] = fib

	streams["single"] = make([]uint32, 2048) // one symbol, 1-bit codes

	short := make([]uint32, 50) // below decTableMinSymbols: bitwise on both
	for i := range short {
		short[i] = uint32(i)
	}
	streams["short"] = short

	return streams
}

func TestHuffmanTableDecodeMatchesBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, syms := range huffStreams(rng) {
		alphabet := 1
		for _, s := range syms {
			if int(s) >= alphabet {
				alphabet = int(s) + 1
			}
		}
		blob, err := HuffmanEncode(syms, alphabet)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		tab, errT := huffmanDecode(blob, true)
		bit, errB := huffmanDecode(blob, false)
		if errT != nil || errB != nil {
			t.Fatalf("%s: table err=%v bitwise err=%v", name, errT, errB)
		}
		if len(tab) != len(bit) {
			t.Fatalf("%s: %d vs %d symbols", name, len(tab), len(bit))
		}
		for i := range tab {
			if tab[i] != bit[i] {
				t.Fatalf("%s: symbol %d: table %d, bitwise %d", name, i, tab[i], bit[i])
			}
		}
	}
}

func TestHuffmanTableDecodeAgreesOnCorruptBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	syms := make([]uint32, 1024)
	for i := range syms {
		syms[i] = uint32(rng.Intn(300))
	}
	blob, err := HuffmanEncode(syms, 300)
	if err != nil {
		t.Fatal(err)
	}
	check := func(b []byte, what string) {
		tab, errT := huffmanDecode(b, true)
		bit, errB := huffmanDecode(b, false)
		if (errT == nil) != (errB == nil) {
			t.Fatalf("%s: table err=%v, bitwise err=%v", what, errT, errB)
		}
		if errT != nil && errT.Error() != errB.Error() {
			t.Fatalf("%s: error messages diverge: %q vs %q", what, errT, errB)
		}
		for i := range tab {
			if tab[i] != bit[i] {
				t.Fatalf("%s: symbol %d diverges", what, i)
			}
		}
	}
	for cut := 0; cut < len(blob); cut += 37 {
		check(blob[:cut], "truncated")
	}
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), blob...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		check(mut, "bit-flipped")
	}
}
