package entropy

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitStreamRoundTrip(t *testing.T) {
	w := &BitWriter{}
	w.WriteBit(1)
	w.WriteBit(0)
	w.WriteBits(0xABCD, 16)
	w.WriteBits(0xFFFFFFFFFFFFFFFF, 64)
	w.WriteBits(5, 3)
	blob := w.Bytes()

	r := NewBitReader(blob)
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("bit 0")
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Fatal("bit 1")
	}
	if v, _ := r.ReadBits(16); v != 0xABCD {
		t.Fatalf("16-bit = %x", v)
	}
	if v, _ := r.ReadBits(64); v != 0xFFFFFFFFFFFFFFFF {
		t.Fatalf("64-bit = %x", v)
	}
	if v, _ := r.ReadBits(3); v != 5 {
		t.Fatalf("3-bit = %x", v)
	}
}

func TestBitStreamQuick(t *testing.T) {
	check := func(vals []uint64, widths []uint8) bool {
		w := &BitWriter{}
		type rec struct {
			v uint64
			n uint
		}
		var recs []rec
		for i, v := range vals {
			n := uint(1)
			if i < len(widths) {
				n = uint(widths[i])%64 + 1
			}
			mask := uint64(1)<<n - 1
			if n == 64 {
				mask = ^uint64(0)
			}
			recs = append(recs, rec{v & mask, n})
			w.WriteBits(v, n)
		}
		r := NewBitReader(w.Bytes())
		for _, rc := range recs {
			got, err := r.ReadBits(rc.n)
			if err != nil || got != rc.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBitReaderTruncation(t *testing.T) {
	w := &BitWriter{}
	w.WriteBits(0x3, 2)
	r := NewBitReader(w.Bytes())
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal("padding within final byte should be readable")
	}
	if _, err := r.ReadBit(); err == nil {
		t.Fatal("expected truncation error")
	}
	if b := r.TryReadBit(); b != 0 {
		t.Fatal("TryReadBit should zero-pad")
	}
	if v := r.TryReadBits(13); v != 0 {
		t.Fatal("TryReadBits should zero-pad")
	}
}

func TestHuffmanRoundTripPatterns(t *testing.T) {
	cases := []struct {
		name     string
		symbols  []uint32
		alphabet int
	}{
		{"empty", nil, 4},
		{"single-symbol", []uint32{7, 7, 7, 7, 7}, 16},
		{"two-symbols", []uint32{0, 1, 0, 0, 1, 0}, 2},
		{"all-distinct", []uint32{0, 1, 2, 3, 4, 5, 6, 7}, 8},
		{"skewed", func() []uint32 {
			s := make([]uint32, 1000)
			for i := range s {
				if i%100 == 0 {
					s[i] = uint32(i % 7)
				}
			}
			return s
		}(), 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			blob, err := HuffmanEncode(tc.symbols, tc.alphabet)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := HuffmanDecode(blob)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got) != len(tc.symbols) {
				t.Fatalf("len = %d, want %d", len(got), len(tc.symbols))
			}
			for i := range got {
				if got[i] != tc.symbols[i] {
					t.Fatalf("symbol %d = %d, want %d", i, got[i], tc.symbols[i])
				}
			}
		})
	}
}

func TestHuffmanRejectsOutOfAlphabet(t *testing.T) {
	if _, err := HuffmanEncode([]uint32{9}, 4); err == nil {
		t.Fatal("expected out-of-alphabet error")
	}
	if _, err := HuffmanEncode(nil, 0); err == nil {
		t.Fatal("expected invalid alphabet error")
	}
}

func TestHuffmanCompressesSkewedData(t *testing.T) {
	// 64k symbols, 99% are symbol 0: should approach the entropy bound and
	// come out far below the 2-byte/symbol raw size.
	syms := make([]uint32, 1<<16)
	rng := rand.New(rand.NewSource(42))
	for i := range syms {
		if rng.Float64() < 0.01 {
			syms[i] = uint32(rng.Intn(255) + 1)
		}
	}
	blob, err := HuffmanEncode(syms, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > len(syms)/4 {
		t.Errorf("skewed stream compressed to %d bytes, want < %d", len(blob), len(syms)/4)
	}
}

func TestHuffmanQuick(t *testing.T) {
	check := func(raw []byte) bool {
		syms := make([]uint32, len(raw))
		for i, b := range raw {
			syms[i] = uint32(b)
		}
		blob, err := HuffmanEncode(syms, 256)
		if err != nil {
			return false
		}
		got, err := HuffmanDecode(blob)
		if err != nil || len(got) != len(syms) {
			return false
		}
		for i := range got {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRangeCoderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nCtx := 8
	encModels := NewBitModels(nCtx)
	enc := NewRangeEncoder()
	type ev struct {
		ctx int
		bit uint
	}
	var evs []ev
	for i := 0; i < 50000; i++ {
		ctx := rng.Intn(nCtx)
		// Context-dependent bias so adaptation matters.
		var bit uint
		if rng.Float64() < 0.1*float64(ctx+1) {
			bit = 1
		}
		evs = append(evs, ev{ctx, bit})
		enc.EncodeBit(&encModels[ctx], bit)
	}
	enc.EncodeDirect(0xDEADBEEF, 32)
	blob := enc.Finish()

	decModels := NewBitModels(nCtx)
	dec := NewRangeDecoder(blob)
	for i, e := range evs {
		if got := dec.DecodeBit(&decModels[e.ctx]); got != e.bit {
			t.Fatalf("bit %d: got %d, want %d", i, got, e.bit)
		}
	}
	if v := dec.DecodeDirect(32); v != 0xDEADBEEF {
		t.Fatalf("direct = %x", v)
	}
}

func TestRangeCoderCompressesBiasedBits(t *testing.T) {
	enc := NewRangeEncoder()
	m := NewBitModels(1)
	rng := rand.New(rand.NewSource(3))
	n := 100000
	for i := 0; i < n; i++ {
		var b uint
		if rng.Float64() < 0.02 {
			b = 1
		}
		enc.EncodeBit(&m[0], b)
	}
	blob := enc.Finish()
	// Entropy of p=0.02 is ~0.14 bits; allow generous slack for adaptation.
	if len(blob)*8 > n/3 {
		t.Errorf("biased stream: %d bits for %d input bits", len(blob)*8, n)
	}
}

func TestLZRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"tiny", []byte{1, 2, 3}},
		{"run", bytes.Repeat([]byte{0}, 100000)},
		{"repeat-motif", bytes.Repeat([]byte{1, 2, 3, 4, 5}, 9999)},
		{"alternating", bytes.Repeat([]byte{0, 255}, 5000)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			blob := LZCompress(tc.data)
			got, err := LZDecompress(blob)
			if err != nil {
				t.Fatalf("decompress: %v", err)
			}
			if !bytes.Equal(got, tc.data) {
				t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(tc.data))
			}
		})
	}
}

func TestLZCompressesRuns(t *testing.T) {
	data := bytes.Repeat([]byte{0}, 1<<20)
	blob := LZCompress(data)
	if len(blob) > 200 {
		t.Errorf("1 MiB zero run compressed to %d bytes", len(blob))
	}
}

func TestLZRandomDataSurvives(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 10000)
	rng.Read(data)
	blob := LZCompress(data)
	got, err := LZDecompress(blob)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("random data round trip failed: %v", err)
	}
	if len(blob) > len(data)+len(data)/10+64 {
		t.Errorf("random data expanded too much: %d -> %d", len(data), len(blob))
	}
}

func TestLZQuick(t *testing.T) {
	check := func(data []byte, runs []uint16) bool {
		// Mix random data with injected runs to exercise match paths.
		buf := append([]byte(nil), data...)
		for _, r := range runs {
			buf = append(buf, bytes.Repeat([]byte{byte(r)}, int(r%97))...)
		}
		got, err := LZDecompress(LZCompress(buf))
		return err == nil && bytes.Equal(got, buf)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLZDecompressRejectsCorrupt(t *testing.T) {
	blob := LZCompress(bytes.Repeat([]byte{7}, 1000))
	for i := range blob {
		mut := append([]byte(nil), blob...)
		mut[i] ^= 0xFF
		out, err := LZDecompress(mut)
		// Either an error or a differing payload is acceptable; a crash is not.
		_ = out
		_ = err
	}
	if _, err := LZDecompress(nil); err == nil {
		t.Fatal("nil blob should error")
	}
	if _, err := LZDecompress([]byte{200}); err == nil {
		t.Fatal("truncated varint should error")
	}
}

func TestCompressBytesPipeline(t *testing.T) {
	data := bytes.Repeat([]byte{9, 9, 9, 9, 1, 2}, 10000)
	blob, err := CompressBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecompressBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pipeline round trip mismatch")
	}
	if len(blob) > len(data)/50 {
		t.Errorf("repetitive data: %d -> %d bytes", len(data), len(blob))
	}
}
