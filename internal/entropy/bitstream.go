// Package entropy implements the lossless coding substrate shared by the
// lossy compressors in this repository: an LSB-first bit stream, a canonical
// Huffman coder (SZ's entropy stage), an adaptive binary range coder (FPZIP's
// residual coder), and a byte-oriented LZ dictionary coder standing in for
// the Zstd stage SZ applies after Huffman coding.
package entropy

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated reports a read past the end of an encoded stream.
var ErrTruncated = errors.New("entropy: truncated stream")

// BitWriter writes bits LSB-first into 64-bit words, matching the layout ZFP
// uses. The zero value is ready to use.
type BitWriter struct {
	buf    []byte
	acc    uint64
	nbits  uint
	padded bool
}

// WriteBit appends a single bit (the low bit of b).
func (w *BitWriter) WriteBit(b uint) {
	w.acc |= uint64(b&1) << w.nbits
	w.nbits++
	if w.nbits == 64 {
		w.flushWord()
	}
}

// WriteBits appends the low n bits of v, least-significant first. n must be
// in [0, 64].
func (w *BitWriter) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	w.acc |= v << w.nbits
	written := 64 - w.nbits
	if n < written {
		written = n
	}
	w.nbits += written
	if w.nbits == 64 {
		w.flushWord()
		if rem := n - written; rem > 0 {
			w.acc = v >> written
			w.nbits = rem
		}
	}
}

func (w *BitWriter) flushWord() {
	var b [8]byte
	for i := range b {
		b[i] = byte(w.acc >> (8 * i))
	}
	w.buf = append(w.buf, b[:]...)
	w.acc = 0
	w.nbits = 0
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.nbits) }

// Bytes flushes any partial word and returns the encoded stream. The writer
// must not be used after Bytes is called.
func (w *BitWriter) Bytes() []byte {
	if w.nbits > 0 {
		n := (w.nbits + 7) / 8
		for i := uint(0); i < n; i++ {
			w.buf = append(w.buf, byte(w.acc>>(8*i)))
		}
		w.acc = 0
		w.nbits = 0
	}
	w.padded = true
	return w.buf
}

// AppendBits splices the first nbits bits of src — a stream produced by
// Bytes, LSB-first — onto this writer at its current bit position. Writing
// a stream's chunks through AppendBits in order reproduces, bit for bit, the
// stream a single writer would have produced, which is what lets parallel
// encoders stitch per-chunk payloads back into the serial blob.
func (w *BitWriter) AppendBits(src []byte, nbits int) {
	i := 0
	for ; nbits >= 64; nbits -= 64 {
		w.WriteBits(binary.LittleEndian.Uint64(src[i:]), 64)
		i += 8
	}
	if nbits > 0 {
		var v uint64
		for j := 0; j < (nbits+7)/8; j++ {
			v |= uint64(src[i+j]) << (8 * j)
		}
		w.WriteBits(v, uint(nbits))
	}
}

// NewPooledBitWriter returns a BitWriter whose backing buffer is recycled
// through the package scratch pool. Once the slice returned by Bytes has been
// copied out (e.g. appended to an output blob), hand it back with
// RecycleBuffer so the next writer starts with warmed capacity.
func NewPooledBitWriter() *BitWriter { return &BitWriter{buf: getBytes()} }

// RecycleBuffer returns a byte buffer (typically a BitWriter payload obtained
// via Bytes) to the scratch pool. The caller must not touch b afterwards.
func RecycleBuffer(b []byte) { putBytes(b) }

// BitReader reads bits LSB-first from a byte slice produced by BitWriter.
type BitReader struct {
	buf   []byte
	pos   int // byte position
	acc   uint64
	nbits uint
}

// NewBitReader wraps an encoded stream for reading.
func NewBitReader(b []byte) *BitReader { return &BitReader{buf: b} }

// NewBitReaderAt wraps b for reading starting at the given bit offset, as if
// a fresh reader had already consumed bitOff bits. Offsets at or past the end
// of the stream are valid: reads there see the usual zero padding. Parallel
// decoders use this to start workers at precomputed block offsets.
func NewBitReaderAt(b []byte, bitOff int) *BitReader {
	r := &BitReader{buf: b, pos: bitOff / 8}
	if r.pos > len(b) {
		r.pos = len(b)
	}
	if rem := uint(bitOff % 8); rem > 0 {
		r.TryReadBits(rem)
	}
	return r
}

func (r *BitReader) fill() {
	for r.nbits <= 56 && r.pos < len(r.buf) {
		r.acc |= uint64(r.buf[r.pos]) << r.nbits
		r.pos++
		r.nbits += 8
	}
}

// ReadBit reads one bit. Reading past the end returns ErrTruncated.
func (r *BitReader) ReadBit() (uint, error) {
	if r.nbits == 0 {
		r.fill()
		if r.nbits == 0 {
			return 0, ErrTruncated
		}
	}
	b := uint(r.acc & 1)
	r.acc >>= 1
	r.nbits--
	return b, nil
}

// ReadBits reads n bits (n in [0, 64]) least-significant first.
func (r *BitReader) ReadBits(n uint) (uint64, error) {
	if n == 0 {
		return 0, nil
	}
	var v uint64
	var got uint
	for got < n {
		if r.nbits == 0 {
			r.fill()
			if r.nbits == 0 {
				// Return the bits read so far; callers that tolerate zero
				// padding (TryReadBits) keep the partial value.
				return v, fmt.Errorf("%w: wanted %d more bits", ErrTruncated, n-got)
			}
		}
		take := n - got
		if take > r.nbits {
			take = r.nbits
		}
		v |= (r.acc & ((1 << take) - 1)) << got
		r.acc >>= take
		r.nbits -= take
		got += take
	}
	return v, nil
}

// TryReadBit reads one bit, returning 0 (without error) at end of stream.
// ZFP's decoder relies on zero padding past the encoded tail.
func (r *BitReader) TryReadBit() uint {
	b, err := r.ReadBit()
	if err != nil {
		return 0
	}
	return b
}

// TryReadBits is ReadBits with zero padding past the end of the stream.
func (r *BitReader) TryReadBits(n uint) uint64 {
	v, _ := r.ReadBits(n)
	return v
}
