package entropy

// Adaptive binary range coder in the carry-less style used by LZMA and by
// FPZIP's residual coder. Each context holds a 12-bit probability that the
// next bit is zero, updated with a shift-based exponential moving average.

const (
	rcTopBits    = 24
	rcTop        = 1 << rcTopBits
	rcModelBits  = 12
	rcModelTotal = 1 << rcModelBits
	rcMoveBits   = 5
)

// BitModel is one adaptive binary context. The zero value is invalid; use
// NewBitModels or initBitModel.
type BitModel struct{ p0 uint16 }

func initBitModel() BitModel { return BitModel{p0: rcModelTotal / 2} }

// NewBitModels allocates n contexts initialised to probability one half.
func NewBitModels(n int) []BitModel {
	ms := make([]BitModel, n)
	for i := range ms {
		ms[i] = initBitModel()
	}
	return ms
}

// RangeEncoder encodes bits against adaptive contexts. The carry-handling
// follows the LZMA SDK: the first emitted byte is a zero placeholder that
// the decoder discards when priming its code register.
type RangeEncoder struct {
	low      uint64
	rng      uint32
	cache    byte
	cacheSz  int64
	out      []byte
	finished bool
}

// NewRangeEncoder returns a ready encoder.
func NewRangeEncoder() *RangeEncoder {
	return &RangeEncoder{rng: 0xFFFFFFFF, cacheSz: 1}
}

func (e *RangeEncoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || (e.low>>32) != 0 {
		carry := byte(e.low >> 32)
		tmp := e.cache
		for {
			e.out = append(e.out, tmp+carry)
			tmp = 0xFF
			e.cacheSz--
			if e.cacheSz == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSz++
	e.low = (e.low << 8) & 0xFFFFFFFF
}

// EncodeBit encodes bit b under model m, updating the model.
func (e *RangeEncoder) EncodeBit(m *BitModel, b uint) {
	bound := (e.rng >> rcModelBits) * uint32(m.p0)
	if b == 0 {
		e.rng = bound
		m.p0 += (rcModelTotal - m.p0) >> rcMoveBits
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		m.p0 -= m.p0 >> rcMoveBits
	}
	for e.rng < rcTop {
		e.rng <<= 8
		e.shiftLow()
	}
}

// EncodeDirect encodes n raw (uncompressed, equiprobable) bits, MSB first.
func (e *RangeEncoder) EncodeDirect(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		e.rng >>= 1
		b := (v >> uint(i)) & 1
		if b != 0 {
			e.low += uint64(e.rng)
		}
		for e.rng < rcTop {
			e.rng <<= 8
			e.shiftLow()
		}
	}
}

// Finish flushes the encoder and returns the byte stream.
func (e *RangeEncoder) Finish() []byte {
	if !e.finished {
		for i := 0; i < 5; i++ {
			e.shiftLow()
		}
		e.finished = true
	}
	return e.out
}

// RangeDecoder mirrors RangeEncoder.
type RangeDecoder struct {
	rng  uint32
	code uint32
	in   []byte
	pos  int
}

// NewRangeDecoder wraps an encoded stream. Five bytes prime the 32-bit code
// register; the first is the encoder's zero placeholder and shifts out.
func NewRangeDecoder(b []byte) *RangeDecoder {
	d := &RangeDecoder{rng: 0xFFFFFFFF, in: b}
	for i := 0; i < 5; i++ {
		d.code = d.code<<8 | uint32(d.next())
	}
	return d
}

func (d *RangeDecoder) next() byte {
	if d.pos < len(d.in) {
		b := d.in[d.pos]
		d.pos++
		return b
	}
	return 0
}

// DecodeBit decodes one bit under model m.
func (d *RangeDecoder) DecodeBit(m *BitModel) uint {
	bound := (d.rng >> rcModelBits) * uint32(m.p0)
	var b uint
	if d.code < bound {
		d.rng = bound
		m.p0 += (rcModelTotal - m.p0) >> rcMoveBits
		b = 0
	} else {
		d.code -= bound
		d.rng -= bound
		m.p0 -= m.p0 >> rcMoveBits
		b = 1
	}
	for d.rng < rcTop {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.next())
	}
	return b
}

// DecodeDirect decodes n raw bits, MSB first.
func (d *RangeDecoder) DecodeDirect(n uint) uint64 {
	var v uint64
	for i := 0; i < int(n); i++ {
		d.rng >>= 1
		var b uint64
		if d.code >= d.rng {
			d.code -= d.rng
			b = 1
		}
		v = v<<1 | b
		for d.rng < rcTop {
			d.rng <<= 8
			d.code = d.code<<8 | uint32(d.next())
		}
	}
	return v
}
