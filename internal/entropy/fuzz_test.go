package entropy

import "testing"

// FuzzLZDecompress ensures the dictionary decoder never panics or
// over-allocates on arbitrary input.
func FuzzLZDecompress(f *testing.F) {
	f.Add(LZCompress([]byte("hello hello hello")))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := LZDecompress(data)
		if err == nil && len(out) > 1<<28 {
			t.Fatalf("implausible expansion to %d bytes accepted", len(out))
		}
	})
}

// FuzzHuffmanDecode ensures the canonical Huffman decoder is panic-free.
func FuzzHuffmanDecode(f *testing.F) {
	blob, _ := HuffmanEncode([]uint32{1, 2, 3, 1, 1, 2}, 8)
	f.Add(blob)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = HuffmanDecode(data)
	})
}
