package entropy

import "testing"

// FuzzLZDecompress ensures the dictionary decoder never panics or
// over-allocates on arbitrary input.
func FuzzLZDecompress(f *testing.F) {
	f.Add(LZCompress([]byte("hello hello hello")))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := LZDecompress(data)
		if err == nil && len(out) > 1<<28 {
			t.Fatalf("implausible expansion to %d bytes accepted", len(out))
		}
	})
}

// FuzzHuffmanDecode ensures the canonical Huffman decoder is panic-free and
// that the table-driven and bit-at-a-time paths agree on arbitrary blobs.
func FuzzHuffmanDecode(f *testing.F) {
	blob, _ := HuffmanEncode([]uint32{1, 2, 3, 1, 1, 2}, 8)
	f.Add(blob)
	long := make([]uint32, 512)
	for i := range long {
		long[i] = uint32(i % 200)
	}
	if blob, err := HuffmanEncode(long, 200); err == nil {
		f.Add(blob) // long enough to engage the decode table
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, errT := huffmanDecode(data, true)
		bit, errB := huffmanDecode(data, false)
		if (errT == nil) != (errB == nil) {
			t.Fatalf("table err=%v, bitwise err=%v", errT, errB)
		}
		if errT == nil {
			if len(tab) != len(bit) {
				t.Fatalf("table %d symbols, bitwise %d", len(tab), len(bit))
			}
			for i := range tab {
				if tab[i] != bit[i] {
					t.Fatalf("symbol %d: table %d, bitwise %d", i, tab[i], bit[i])
				}
			}
		}
	})
}
