package entropy

import (
	"bytes"
	"testing"
)

// FuzzLZDecompress ensures the dictionary decoder never panics or
// over-allocates on arbitrary input.
func FuzzLZDecompress(f *testing.F) {
	f.Add(LZCompress([]byte("hello hello hello")))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := LZDecompress(data)
		if err == nil && len(out) > 1<<28 {
			t.Fatalf("implausible expansion to %d bytes accepted", len(out))
		}
	})
}

// FuzzHuffmanDecode ensures the canonical Huffman decoder is panic-free and
// that the table-driven and bit-at-a-time paths agree on arbitrary blobs.
func FuzzHuffmanDecode(f *testing.F) {
	blob, _ := HuffmanEncode([]uint32{1, 2, 3, 1, 1, 2}, 8)
	f.Add(blob)
	long := make([]uint32, 512)
	for i := range long {
		long[i] = uint32(i % 200)
	}
	if blob, err := HuffmanEncode(long, 200); err == nil {
		f.Add(blob) // long enough to engage the decode table
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, errT := huffmanDecode(data, true)
		bit, errB := huffmanDecode(data, false)
		if (errT == nil) != (errB == nil) {
			t.Fatalf("table err=%v, bitwise err=%v", errT, errB)
		}
		if errT == nil {
			if len(tab) != len(bit) {
				t.Fatalf("table %d symbols, bitwise %d", len(tab), len(bit))
			}
			for i := range tab {
				if tab[i] != bit[i] {
					t.Fatalf("symbol %d: table %d, bitwise %d", i, tab[i], bit[i])
				}
			}
		}
	})
}

// FuzzChunkedEntropy drives the chunked-container byte decoder with arbitrary
// blobs (it must reject or decode, never panic or over-allocate), checks
// that serial and parallel decodes of whatever parses agree byte for byte,
// and round-trips the raw input through a forced-small-block encode so every
// mutation also exercises chunk-boundary bookkeeping and range decode.
func FuzzChunkedEntropy(f *testing.F) {
	sample := bytes.Repeat([]byte("chunked entropy \x00\x01\xfe\xff"), 40)
	if blob, err := CompressBytesBlocks(sample, 64, 1); err == nil {
		f.Add(blob)
	}
	if blob, err := CompressBytes(sample); err == nil {
		f.Add(blob) // legacy container through the same dispatch
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xCB, 0x01})
	f.Add([]byte{0x00, 0xC5, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if out, err := DecompressBytesParallel(data, 3); err == nil {
			if len(out) > 1<<28 {
				t.Fatalf("implausible expansion to %d bytes accepted", len(out))
			}
			serial, err := DecompressBytesParallel(data, 1)
			if err != nil {
				t.Fatalf("parallel decoded %d bytes, serial errored: %v", len(out), err)
			}
			if !bytes.Equal(out, serial) {
				t.Fatal("serial and parallel decodes disagree")
			}
		}
		if syms, err := HuffmanDecodeChunked(data, 2); err == nil && len(syms) > 1<<28 {
			t.Fatalf("implausible expansion to %d symbols accepted", len(syms))
		}
		if len(data) == 0 {
			return
		}
		// Round-trip with a hostile block size so most inputs span several
		// chunks. Cap the encoded prefix: per-chunk bookkeeping makes
		// thousands-of-tiny-chunks encodes slow (they are valid, just not a
		// layout any caller produces), and throughput matters more here.
		if len(data) > 1<<13 {
			data = data[:1<<13]
		}
		blockBytes := 16 + int(data[0])%113
		blob, err := CompressBytesBlocks(data, blockBytes, 2)
		if err != nil {
			t.Fatalf("encode (block %d): %v", blockBytes, err)
		}
		back, err := DecompressBytesParallel(blob, 2)
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("round trip mismatch")
		}
		off := int(data[len(data)-1]) % len(data)
		end := off + 1 + int(data[0])%(len(data)-off)
		got, err := DecompressBytesRange(blob, off, end, len(data), 2)
		if err != nil {
			t.Fatalf("range [%d,%d): %v", off, end, err)
		}
		if !bytes.Equal(got, data[off:end]) {
			t.Fatalf("range [%d,%d) mismatch", off, end)
		}
	})
}
