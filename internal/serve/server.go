// Package serve is fxrzd's HTTP layer: the online surface of the paper's
// core claim that fixed-ratio error-bound estimation is cheap enough to sit
// behind an endpoint. /v1/estimate answers "which knob reaches this target
// compression ratio" from a feature vector or a raw field sample without
// ever running a compressor — the property that separates FXRZ from
// search-based FRaZ, whose per-request iterative compression makes online
// serving impractical — while /v1/pack and /v1/unpack run the actual codecs
// through the ParallelCompressor plumbing for clients that want the bytes.
//
// The server owns four serving concerns the library does not:
//
//   - a model Registry (LRU cache of trained forests, single-flight cold
//     loads from the Save/Load persistence format),
//   - admission control (QoS priority classes over a bounded slot pool —
//     estimate > unpack > pack, each with a guaranteed share plus
//     work-conserving borrowing, see internal/qos — sharing the pool.Split
//     budget rule so request concurrency and intra-field workers do not
//     multiply, per-request timeouts, request body caps),
//   - per-client rate limiting (token buckets keyed by X-Fxrz-Client or the
//     remote address, see internal/ratelimit; refusals carry a Retry-After
//     computed from the client's actual bucket refill time), and
//   - observability (per-endpoint counters and latency histograms through
//     internal/obs, exported at /metrics with p50/p90/p99).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/fieldio"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
	"github.com/fxrz-go/fxrz/internal/qos"
	"github.com/fxrz-go/fxrz/internal/ratelimit"
	"github.com/fxrz-go/fxrz/internal/shard"
)

// The QoS class roster, in priority order. Estimate is the paper's
// high-volume cheap path (a feature lookup, never a compressor run) and gets
// twice the reserved weight; unpack outranks pack because decompression is
// typically interactive (an analysis waiting on bytes) while compression is
// batch. Class indexes are what handlers pass to instrument.
const (
	classEstimate = iota
	classUnpack
	classPack
	classNone = -1 // light endpoints: no admission control
)

var qosClasses = []qos.Class{
	{Name: "estimate", Weight: 2},
	{Name: "unpack", Weight: 1},
	{Name: "pack", Weight: 1},
}

// ClientHeader names the request header that identifies a client to the
// rate limiter; requests without it are keyed by remote address. The shard
// router forwards it on sub-batches so every shard charges the same client.
const ClientHeader = shard.ClientHeader

// Config sizes the server's serving limits. The zero value of every field
// selects a production-safe default.
type Config struct {
	// ModelsDir is the directory of .fxm model files the registry serves.
	ModelsDir string
	// CacheSize caps resident models in the registry (default 8).
	CacheSize int
	// MaxInFlight bounds concurrently admitted heavy requests (estimate,
	// pack, unpack); excess requests are shed with 429 immediately rather
	// than queued. Default: the worker budget, one request per worker.
	MaxInFlight int
	// MaxBodyBytes caps request bodies (default 256 MiB — a 384³ float32
	// field with headroom). Oversized requests get 413.
	MaxBodyBytes int64
	// Timeout bounds each admitted request (default 60s). Cancellation is
	// checked between pipeline stages; an expired request gets 503.
	Timeout time.Duration
	// Parallelism is the total intra-field worker budget shared by all
	// admitted requests (0 = all cores), divided by pool.Split: with
	// MaxInFlight requests admitted, each runs its codec and analysis
	// passes with budget/MaxInFlight workers, so admission × inner workers
	// stays at the configured budget.
	Parallelism int
	// RatePerClient caps each client's sustained request rate on the heavy
	// endpoints, in requests/second (token bucket, burst RateBurst).
	// 0 disables per-client rate limiting.
	RatePerClient float64
	// RateBurst is the per-client token-bucket depth (default:
	// ceil(RatePerClient), at least 1).
	RateBurst int
	// MaxBatch caps the item count of one /v1/*-many request (default 64).
	// Larger batches get 413 — the client splits, instead of one request
	// monopolising the admission pool.
	MaxBatch int
	// Peers is the static shard ring: the base URLs of every fxrzd
	// instance, this one included. When set, incoming /v1/*-many batches
	// are split by rendezvous-hashed owner and the remote sub-batches
	// forwarded (internal/shard); empty means single-instance serving.
	Peers []string
	// Self is this instance's own entry in Peers (required with Peers).
	Self string
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 8
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = pool.Workers(c.Parallelism)
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	return c
}

// Server is the fxrzd request handler set. Create with NewServer, mount
// with Handler.
type Server struct {
	cfg    Config
	reg    *Registry
	admit  *qos.Controller
	limits *ratelimit.Limiter
	// router scatter-gathers /v1/*-many batches across the shard ring;
	// nil when Config.Peers is empty (single-instance serving).
	router *shard.Router
	// inner is the per-request intra-field worker budget under full
	// admission, per the pool.Split rule.
	inner int
}

// NewServer builds a server from cfg (see Config for defaults). An invalid
// shard ring (Self missing from Peers, duplicates) panics: commands
// validate the peer list at flag-parse time with shard.NewRing, so reaching
// NewServer with a bad ring is a programming error.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	_, inner := pool.Split(pool.Workers(cfg.Parallelism), cfg.MaxInFlight)
	obs.SetGauge("serve/admission_slots", int64(cfg.MaxInFlight))
	obs.SetGauge("serve/workers_per_request", int64(inner))
	var router *shard.Router
	if len(cfg.Peers) > 0 {
		var err error
		router, err = shard.NewRouter(shard.Options{Self: cfg.Self, Peers: cfg.Peers})
		if err != nil {
			panic(fmt.Sprintf("serve: invalid shard ring: %v", err))
		}
	}
	return &Server{
		cfg:    cfg,
		reg:    NewRegistry(cfg.ModelsDir, cfg.CacheSize),
		admit:  qos.NewController(cfg.MaxInFlight, qosClasses),
		limits: ratelimit.New(ratelimit.Config{Rate: cfg.RatePerClient, Burst: cfg.RateBurst}),
		router: router,
		inner:  inner,
	}
}

// Registry exposes the model cache (cmd/fxrzd logs it; tests inspect it).
func (s *Server) Registry() *Registry { return s.reg }

// ShardRouter exposes the scatter-gather router — nil without Config.Peers.
// Tests use it to inject the retry sleeper and attempt timeout.
func (s *Server) ShardRouter() *shard.Router { return s.router }

// Handler returns the routed handler: the public v1 API plus health and
// metrics endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/estimate", s.instrument("estimate", classEstimate, s.handleEstimate))
	mux.Handle("POST /v1/pack", s.instrument("pack", classPack, s.handlePack))
	mux.Handle("POST /v1/unpack", s.instrument("unpack", classUnpack, s.handleUnpack))
	mux.Handle("POST /v1/estimate-many", s.instrumentBatch("estimate-many", classEstimate, s.runEstimateMany))
	mux.Handle("POST /v1/pack-many", s.instrumentBatch("pack-many", classPack, s.runPackMany))
	mux.Handle("POST /v1/unpack-many", s.instrumentBatch("unpack-many", classUnpack, s.runUnpackMany))
	mux.Handle("GET /v1/models", s.instrument("models", classNone, s.handleModels))
	mux.Handle("GET /healthz", s.instrument("healthz", classNone, s.handleHealthz))
	mux.Handle("GET /metrics", obs.Handler())
	return mux
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

// instrument wraps a handler with the serving concerns: request/error
// counters and a latency histogram under the endpoint's name, and — for
// heavy endpoints (class >= 0) — the per-client rate limit (429 with a
// refill-derived Retry-After), class-aware admission control (429 with
// Retry-After: 1 when the class's slots are exhausted), the request timeout,
// and the body size cap. The rate limit runs before admission so a refused
// client never consumes a slot.
func (s *Server) instrument(ep string, class int, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obs.Inc("serve/requests/" + ep)
		defer obs.Span("serve/latency/" + ep)()
		if class != classNone {
			if ok, retry := s.limits.Allow(clientID(r)); !ok {
				obs.Inc("serve/rejected/ratelimit")
				w.Header().Set("Retry-After", strconv.Itoa(ratelimit.RetryAfterSeconds(retry)))
				writeError(w, http.StatusTooManyRequests,
					fmt.Errorf("client over its %g req/s rate limit", s.cfg.RatePerClient))
				return
			}
			if !s.admit.TryAcquire(class) {
				obs.Inc("serve/rejected/overload")
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests,
					fmt.Errorf("server at capacity for %s requests (%d of %d slots in use)",
						qosClasses[class].Name, s.admit.Total(), s.admit.Capacity()))
				return
			}
			defer s.admit.Release(class)
			obs.AddGauge("serve/inflight", 1)
			obs.MaxGauge("serve/inflight_peak", int64(s.admit.Total()))
			defer obs.AddGauge("serve/inflight", -1)

			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
			defer cancel()
			r = r.WithContext(ctx)
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		if sw.code >= 400 {
			obs.Inc("serve/errors/" + ep)
		}
	})
}

// clientID keys the rate limiter: the ClientHeader when the caller sends
// one, else the remote host (without the per-connection port, so one client
// is one bucket across keep-alive connections).
func clientID(r *http.Request) string {
	if id := r.Header.Get(ClientHeader); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// statusWriter records the status code for the error counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps err to its status and sends the JSON envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// errorStatus maps pipeline errors to HTTP statuses: client-caused ones
// (unknown model, malformed container, oversized body) get 4xx, an expired
// request budget gets 503, anything else is a 500.
func errorStatus(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, ErrBadModelID), errors.Is(err, errBadRequest),
		errors.Is(err, compress.ErrCorrupt):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log line only.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

// bufPool recycles the staging buffers of the byte-moving endpoints: request
// bodies (pack, unpack) and the unpack response (staged so Content-Length can
// be set before writing). Under steady load this removes one multi-megabyte
// allocation per request on each side.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBuf caps the capacity a returned buffer may retain. A buffer grown
// by one oversized request is dropped rather than pinned in the pool forever.
const maxPooledBuf = 32 << 20

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuf {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// readBody drains a request body into a pooled buffer. The returned bytes
// alias the buffer — valid until putBuf.
func readBody(r *http.Request, buf *bytes.Buffer) ([]byte, error) {
	if _, err := buf.ReadFrom(r.Body); err != nil {
		return nil, asBodyError(err)
	}
	return buf.Bytes(), nil
}

// errBadRequest tags client-caused failures for errorStatus.
var errBadRequest = errors.New("bad request")

// badRequestf wraps a client-caused error.
func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{errBadRequest}, args...)...)
}

// fail is the common error exit of every handler.
func fail(w http.ResponseWriter, err error) {
	writeError(w, errorStatus(err), err)
}

// modelAndTarget parses the query parameters shared by estimate and pack.
func modelAndTarget(r *http.Request) (id string, target float64, err error) {
	q := r.URL.Query()
	return parseModelTarget(q.Get)
}

// parseModelTarget validates the model/target pair from any parameter source
// (the request query, or a batch item's params merged over it).
func parseModelTarget(get func(string) string) (id string, target float64, err error) {
	id = get("model")
	if id == "" {
		return "", 0, badRequestf("missing required query parameter %q", "model")
	}
	ts := get("target")
	if ts == "" {
		return "", 0, badRequestf("missing required query parameter %q", "target")
	}
	target, perr := strconv.ParseFloat(ts, 64)
	if perr != nil || !(target > 0) {
		return "", 0, badRequestf("target must be a positive ratio, got %q", ts)
	}
	return id, target, nil
}

// FeaturesRequest is the JSON body of a features-mode estimate: the five
// adopted data features of the paper (Table II), plus the optional CA block
// ratio a field-mode estimate for the same variable previously reported as
// non_constant_r.
type FeaturesRequest struct {
	ValueRange float64 `json:"value_range"`
	MeanValue  float64 `json:"mean_value"`
	MND        float64 `json:"mnd"`
	MLD        float64 `json:"mld"`
	MSD        float64 `json:"msd"`
	CARatio    float64 `json:"ca_ratio,omitempty"`
}

// EstimateResponse is the JSON body of a successful estimate.
type EstimateResponse struct {
	Model         string    `json:"model"`
	Compressor    string    `json:"compressor"`
	TargetRatio   float64   `json:"target_ratio"`
	Knob          float64   `json:"knob"`
	AdjustedRatio float64   `json:"adjusted_ratio"`
	NonConstantR  float64   `json:"non_constant_r"`
	Extrapolating bool      `json:"extrapolating"`
	ValidRange    []float64 `json:"valid_ratio_range,omitempty"`
	AnalysisMS    float64   `json:"analysis_ms"`
}

// handleEstimate answers POST /v1/estimate?model=ID&target=N. A JSON body
// (Content-Type: application/json) supplies pre-extracted features — the
// model-query-only fast path; any other body is read as an fxrzfield
// container and analysed the full way (stride-sampled feature extraction
// plus the CA block scan). Neither path runs a compressor.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	const ep = "estimate"
	id, target, err := modelAndTarget(r)
	if err != nil {
		fail(w, err)
		return
	}
	fw, err := s.reg.Get(r.Context(), id)
	if err != nil {
		fail(w, err)
		return
	}
	fw = fw.WithParallelism(s.inner)
	jsonMode := r.Header.Get("Content-Type") == "application/json"
	resp, err := estimateCore(r.Context(), fw, id, target, jsonMode, r.Body)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// estimateCore computes one estimate from a body — the shared engine of
// /v1/estimate and its batch form. jsonMode selects the pre-extracted
// features fast path; otherwise the body is an fxrzfield container analysed
// the full way. Neither path runs a compressor.
func estimateCore(ctx context.Context, fw *fxrz.Framework, id string, target float64, jsonMode bool, body io.Reader) (EstimateResponse, error) {
	resp := EstimateResponse{Model: id, Compressor: fw.Compressor().Name(), TargetRatio: target}
	var est fxrz.Estimate
	if jsonMode {
		var req FeaturesRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			return resp, badRequestf("decoding features: %v", err)
		}
		var err error
		est, err = fw.EstimateFromFeatures(fxrz.Features{
			ValueRange: req.ValueRange, MeanValue: req.MeanValue,
			MND: req.MND, MLD: req.MLD, MSD: req.MSD,
		}, target, req.CARatio)
		if err != nil {
			return resp, badRequestf("%v", err)
		}
	} else {
		f, err := fieldio.Read(body)
		if err != nil {
			return resp, asBodyError(err)
		}
		if err := ctx.Err(); err != nil {
			return resp, err
		}
		est, err = fw.EstimateConfig(f, target)
		if err != nil {
			return resp, badRequestf("%v", err)
		}
		lo, hi := fw.ValidRatioRange(f)
		resp.ValidRange = []float64{lo, hi}
	}
	resp.Knob = est.Knob
	resp.AdjustedRatio = est.AdjustedRatio
	resp.NonConstantR = est.NonConstantR
	resp.Extrapolating = est.Extrapolating
	resp.AnalysisMS = float64(est.AnalysisTime()) / 1e6
	return resp, nil
}

// asBodyError upgrades a wrapped MaxBytesError to itself (so errorStatus
// sees 413) and tags everything else as a client error.
func asBodyError(err error) error {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return tooBig
	}
	return badRequestf("%v", err)
}

// handlePack answers POST /v1/pack?model=ID&target=N: the body is an
// fxrzfield container; the response is the compressed stream produced at
// the estimated knob, with the estimate in X-Fxrz-* headers.
func (s *Server) handlePack(w http.ResponseWriter, r *http.Request) {
	const ep = "pack"
	id, target, err := modelAndTarget(r)
	if err != nil {
		fail(w, err)
		return
	}
	fw, err := s.reg.Get(r.Context(), id)
	if err != nil {
		fail(w, err)
		return
	}
	fw = fw.WithParallelism(s.inner)
	buf := getBuf()
	defer putBuf(buf)
	body, err := readBody(r, buf)
	if err != nil {
		fail(w, err)
		return
	}
	blob, est, f, err := packCore(r.Context(), fw, target, bytes.NewReader(body))
	if err != nil {
		fail(w, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set("Content-Length", strconv.Itoa(len(blob)))
	h.Set("X-Fxrz-Compressor", fw.Compressor().Name())
	h.Set("X-Fxrz-Knob", strconv.FormatFloat(est.Knob, 'g', -1, 64))
	h.Set("X-Fxrz-Achieved-Ratio", strconv.FormatFloat(fxrz.Ratio(f, blob), 'g', 6, 64))
	h.Set("X-Fxrz-Extrapolating", strconv.FormatBool(est.Extrapolating))
	_, _ = w.Write(blob)
}

// packCore compresses one fxrzfield body at the model's estimated knob — the
// shared engine of /v1/pack and its batch form.
func packCore(ctx context.Context, fw *fxrz.Framework, target float64, body io.Reader) ([]byte, fxrz.Estimate, *fxrz.Field, error) {
	f, err := fieldio.Read(body)
	if err != nil {
		return nil, fxrz.Estimate{}, nil, asBodyError(err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fxrz.Estimate{}, nil, err
	}
	blob, est, err := fw.CompressToRatio(f, target)
	if err != nil {
		return nil, est, nil, badRequestf("%v", err)
	}
	obs.Add("serve/bytes/packed_in", int64(f.Bytes()))
	obs.Add("serve/bytes/packed_out", int64(len(blob)))
	return blob, est, f, nil
}

// handleUnpack answers POST /v1/unpack: the body is any stream a built-in
// codec produced (the magic byte dispatches — indexed containers included);
// the response is the reconstructed field as an fxrzfield container. The
// optional `region` query parameter ("lo0:hi0,lo1:hi1,...", half-open,
// slowest dimension first) decodes only that subvolume; with an indexed
// stream the work scales with the region, not the field.
func (s *Server) handleUnpack(w http.ResponseWriter, r *http.Request) {
	const ep = "unpack"
	buf := getBuf()
	defer putBuf(buf)
	blob, err := readBody(r, buf)
	if err != nil {
		fail(w, err)
		return
	}
	if err := r.Context().Err(); err != nil {
		fail(w, err)
		return
	}
	f, err := unpackCore(blob, r.URL.Query().Get("region"), s.inner)
	if err != nil {
		fail(w, err)
		return
	}
	out := getBuf()
	defer putBuf(out)
	if err := fieldio.Write(out, f); err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(out.Len()))
	if _, err := w.Write(out.Bytes()); err != nil {
		// Headers are gone; all we can do is count it.
		obs.Inc("serve/errors/unpack_write")
	}
}

// unpackCore decompresses one stream, optionally restricted to a textual
// region — the shared engine of /v1/unpack and its batch form.
func unpackCore(blob []byte, region string, workers int) (*fxrz.Field, error) {
	var f *fxrz.Field
	var err error
	if region != "" {
		lo, hi, perr := fxrz.ParseRegion(region)
		if perr != nil {
			return nil, badRequestf("%v", perr)
		}
		obs.Inc("serve/unpack_region")
		f, err = fxrz.DecompressRegionParallel(blob, lo, hi, workers)
	} else {
		f, err = fxrz.DecompressParallel(blob, workers)
	}
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	obs.Add("serve/bytes/unpacked_out", int64(f.Bytes()))
	return f, nil
}

// ModelsResponse is the JSON body of GET /v1/models.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	models, err := s.reg.List()
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ModelsResponse{Models: models})
}

// HealthResponse is the JSON body of GET /healthz. Classes reports the QoS
// admission state per priority class (reserved share and current usage), in
// priority order; ModelCache and ModelCount give a load balancer enough to
// weight shards (a cold cache or an empty models directory serves slower);
// Shard reports ring membership when multi-instance serving is configured.
type HealthResponse struct {
	Status         string            `json:"status"`
	InFlight       int               `json:"in_flight"`
	AdmissionSlots int               `json:"admission_slots"`
	Classes        []qos.ClassStatus `json:"classes"`
	ModelCount     int               `json:"model_count"`
	ModelCache     CacheStatus       `json:"model_cache"`
	ResidentModels []string          `json:"resident_models"`
	Shard          *ShardStatus      `json:"shard,omitempty"`
}

// CacheStatus is the model registry's cache accounting in HealthResponse.
type CacheStatus struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Resident int   `json:"resident"`
	Capacity int   `json:"capacity"`
}

// ShardStatus reports the ring membership of a sharded instance.
type ShardStatus struct {
	Self  string   `json:"self"`
	Peers []string `json:"peers"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.reg.Stats()
	modelCount := 0
	if models, err := s.reg.List(); err == nil {
		modelCount = len(models)
	}
	resp := HealthResponse{
		Status:         "ok",
		InFlight:       s.admit.Total(),
		AdmissionSlots: s.admit.Capacity(),
		Classes:        s.admit.Status(),
		ModelCount:     modelCount,
		ModelCache: CacheStatus{
			Hits:     hits,
			Misses:   misses,
			Resident: len(s.reg.Resident()),
			Capacity: s.cfg.CacheSize,
		},
		ResidentModels: s.reg.Resident(),
	}
	if s.router != nil {
		ring := s.router.Ring()
		resp.Shard = &ShardStatus{Self: ring.Self(), Peers: ring.Members()}
	}
	writeJSON(w, http.StatusOK, resp)
}
