package serve_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"

	"github.com/fxrz-go/fxrz/internal/fieldio"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/serve"
)

// TestEstimatesSurvivePackFlood is the QoS acceptance test: a saturating
// pack flood must not starve the estimate path. It is deterministic — the
// flood consists of pack requests whose bodies never finish arriving (stalled
// io.Pipe), so they hold their admission slots until the test releases them,
// and the class arithmetic (capacity 8 → reserves estimate 2, unpack 1,
// pack 1, borrow pool 4) pins exactly how many packs get in.
func TestEstimatesSurvivePackFlood(t *testing.T) {
	ts, _ := newTestServer(t, func(c *serve.Config) { c.MaxInFlight = 8 })
	f := testField(t)
	target := midTarget(t, f)
	before := obs.TakeSnapshot()

	// Pack can reach its reserve (1) plus everything not needed by the other
	// guarantees (4): exactly 5 in-flight packs.
	const floodWidth = 5
	type held struct {
		pw   *io.PipeWriter
		done chan error
	}
	flood := make([]held, floodWidth)
	for i := range flood {
		pr, pw := io.Pipe()
		done := make(chan error, 1)
		go func() {
			resp, err := http.Post(
				fmt.Sprintf("%s/v1/pack?model=nyx-sz&target=%g", ts.URL, target),
				"application/octet-stream", pr)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				if resp.StatusCode != 200 {
					err = fmt.Errorf("flood pack status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
			done <- err
		}()
		flood[i] = held{pw: pw, done: done}
	}
	waitInFlight(t, ts.URL, floodWidth)

	// The flood has everything pack may hold: the next pack is shed with the
	// overload 429 and its fixed Retry-After of 1 (the rate-limit 429, by
	// contrast, derives Retry-After from the bucket — see the ratelimit
	// tests).
	resp, err := http.Post(
		fmt.Sprintf("%s/v1/pack?model=nyx-sz&target=%g", ts.URL, target),
		"application/octet-stream", fieldBody(t, f))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("6th pack under flood: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("overload Retry-After = %q, want \"1\"", got)
	}

	// Estimates keep completing under the saturating flood — the guaranteed
	// reserve admits them every time.
	for k := 0; k < 3; k++ {
		resp, err := http.Post(
			fmt.Sprintf("%s/v1/estimate?model=nyx-sz&target=%g", ts.URL, target),
			"application/octet-stream", fieldBody(t, f))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("estimate %d under pack flood: status %d: %s", k, resp.StatusCode, body)
		}
	}
	// Unpack's guarantee holds too.
	blob, _, err := trainedFW.CompressToRatio(f, target)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/unpack", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("unpack under pack flood: status %d", resp.StatusCode)
	}

	// The guarantee is observable, not just behavioral: per-class obs
	// counters show estimates admitted with zero sheds while packs shed.
	after := obs.TakeSnapshot()
	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	if delta("qos/shed/estimate") != 0 {
		t.Errorf("qos/shed/estimate = %d under pack flood, want 0", delta("qos/shed/estimate"))
	}
	if delta("qos/admitted/estimate") < 3 {
		t.Errorf("qos/admitted/estimate = %d, want >= 3", delta("qos/admitted/estimate"))
	}
	if delta("qos/shed/pack") < 1 {
		t.Errorf("qos/shed/pack = %d, want >= 1", delta("qos/shed/pack"))
	}
	if delta("qos/borrowed/pack") < 4 {
		t.Errorf("qos/borrowed/pack = %d, want >= 4 (flood borrowed the shared pool)", delta("qos/borrowed/pack"))
	}

	// Release the flood: every held pack must still complete correctly.
	var buf bytes.Buffer
	if err := fieldio.Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	for _, h := range flood {
		if _, err := io.Copy(h.pw, bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		h.pw.Close()
	}
	for i, h := range flood {
		if err := <-h.done; err != nil {
			t.Errorf("flood pack %d: %v", i, err)
		}
	}
}

// TestHealthzReportsClasses: the per-class admission state is part of the
// health surface, so operators can see reserves and usage without metrics.
func TestHealthzReportsClasses(t *testing.T) {
	ts, _ := newTestServer(t, func(c *serve.Config) { c.MaxInFlight = 8 })
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	h := decodeJSON[serve.HealthResponse](t, resp.Body)
	if len(h.Classes) != 3 {
		t.Fatalf("healthz classes = %+v, want 3 entries", h.Classes)
	}
	wantReserve := map[string]int{"estimate": 2, "unpack": 1, "pack": 1}
	for _, cs := range h.Classes {
		if cs.Reserve != wantReserve[cs.Name] {
			t.Errorf("class %s reserve = %d, want %d", cs.Name, cs.Reserve, wantReserve[cs.Name])
		}
	}
	if h.Classes[0].Name != "estimate" {
		t.Errorf("classes not in priority order: %+v", h.Classes)
	}
}
