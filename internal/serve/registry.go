package serve

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/obs"
)

// modelExt is the file extension a trained model must carry under the
// registry's directory: `fxrz train -o models/<id>.fxm` publishes a model
// the daemon can serve as <id>.
const modelExt = ".fxm"

// Registry is fxrzd's long-lived model store: a concurrency-safe LRU cache
// of trained frameworks keyed by model ID and loaded on demand from the
// persistence format under one directory. Cold loads are single-flight —
// any number of concurrent requests for the same absent model trigger
// exactly one disk read and gob decode, with the rest waiting on the first.
type Registry struct {
	dir      string
	capacity int

	// hits and misses mirror the serve/model_cache obs counters as native
	// fields, so /healthz can report cache effectiveness (a load balancer
	// weighting shards) without obs being enabled.
	hits   atomic.Int64
	misses atomic.Int64

	mu     sync.Mutex
	loaded map[string]*regEntry
	// lru orders resident model IDs, most recently used last. Model counts
	// are small (the cache holds whole random forests, tens of MB each), so
	// a slice scan beats a linked list in both clarity and constants.
	lru    []string
	flight map[string]*flightCall
}

// regEntry is one resident model.
type regEntry struct {
	fw   *fxrz.Framework
	size int64
}

// flightCall tracks one in-progress cold load.
type flightCall struct {
	done chan struct{}
	fw   *fxrz.Framework
	err  error
}

// NewRegistry returns a registry serving models from dir, holding at most
// capacity trained frameworks resident (capacity < 1 is treated as 1).
func NewRegistry(dir string, capacity int) *Registry {
	if capacity < 1 {
		capacity = 1
	}
	return &Registry{
		dir:      dir,
		capacity: capacity,
		loaded:   make(map[string]*regEntry),
		flight:   make(map[string]*flightCall),
	}
}

// ErrUnknownModel reports a model ID with no file behind it.
var ErrUnknownModel = fmt.Errorf("serve: unknown model")

// ErrBadModelID reports a syntactically invalid model ID.
var ErrBadModelID = fmt.Errorf("serve: invalid model id")

// checkID accepts the IDs List can produce and nothing else — in particular
// nothing that could escape the models directory.
func checkID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("%w: %q", ErrBadModelID, id)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("%w: %q", ErrBadModelID, id)
		}
	}
	if strings.HasPrefix(id, ".") {
		return fmt.Errorf("%w: %q", ErrBadModelID, id)
	}
	return nil
}

// Get returns the framework for id, loading it from disk on a cache miss.
// Waiters joining an in-progress load detach when ctx is done; the load
// itself keeps running and still populates the cache for later requests.
func (r *Registry) Get(ctx context.Context, id string) (*fxrz.Framework, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if e, ok := r.loaded[id]; ok {
		r.touch(id)
		r.mu.Unlock()
		r.hits.Add(1)
		obs.Inc("serve/model_cache/hits")
		return e.fw, nil
	}
	if c, ok := r.flight[id]; ok {
		r.mu.Unlock()
		obs.Inc("serve/model_cache/joins")
		select {
		case <-c.done:
			return c.fw, c.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	r.flight[id] = c
	r.mu.Unlock()

	r.misses.Add(1)
	obs.Inc("serve/model_cache/misses")
	c.fw, c.err = r.loadFromDisk(id)

	r.mu.Lock()
	delete(r.flight, id)
	if c.err == nil {
		r.insert(id, c.fw)
	}
	r.mu.Unlock()
	close(c.done)
	return c.fw, c.err
}

// touch moves id to the most-recently-used end. Caller holds r.mu.
func (r *Registry) touch(id string) {
	for i, v := range r.lru {
		if v == id {
			r.lru = append(append(r.lru[:i:i], r.lru[i+1:]...), id)
			return
		}
	}
	r.lru = append(r.lru, id)
}

// insert makes id resident, evicting least-recently-used models past the
// capacity. Caller holds r.mu.
func (r *Registry) insert(id string, fw *fxrz.Framework) {
	var size int64
	if fi, err := os.Stat(r.modelPath(id)); err == nil {
		size = fi.Size()
	}
	r.loaded[id] = &regEntry{fw: fw, size: size}
	r.touch(id)
	for len(r.loaded) > r.capacity {
		victim := r.lru[0]
		r.lru = r.lru[1:]
		delete(r.loaded, victim)
		obs.Inc("serve/model_cache/evictions")
	}
	obs.SetGauge("serve/model_cache/resident", int64(len(r.loaded)))
}

func (r *Registry) modelPath(id string) string {
	return filepath.Join(r.dir, id+modelExt)
}

// loadFromDisk performs the cold load outside the registry lock.
func (r *Registry) loadFromDisk(id string) (*fxrz.Framework, error) {
	defer obs.Span("serve/model_load")()
	f, err := os.Open(r.modelPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownModel, id)
		}
		return nil, fmt.Errorf("serve: opening model %q: %w", id, err)
	}
	defer f.Close()
	fw, err := fxrz.Load(f)
	if err != nil {
		obs.Inc("serve/model_cache/load_errors")
		return nil, fmt.Errorf("serve: loading model %q: %w", id, err)
	}
	return fw, nil
}

// ModelInfo describes one model the registry can serve.
type ModelInfo struct {
	ID         string `json:"id"`
	Loaded     bool   `json:"loaded"`
	Compressor string `json:"compressor,omitempty"`
	SizeBytes  int64  `json:"size_bytes"`
}

// List enumerates the model files under the registry directory, sorted by
// ID, annotating the resident ones with their codec.
func (r *Registry) List() ([]ModelInfo, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: listing models: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []ModelInfo
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, modelExt) {
			continue
		}
		id := strings.TrimSuffix(name, modelExt)
		if checkID(id) != nil {
			continue
		}
		info := ModelInfo{ID: id}
		if fi, err := de.Info(); err == nil {
			info.SizeBytes = fi.Size()
		}
		if e, ok := r.loaded[id]; ok {
			info.Loaded = true
			info.Compressor = e.fw.Compressor().Name()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Stats returns the lifetime cache hit and miss counts (the healthz
// endpoint; joins of an in-flight load count as neither).
func (r *Registry) Stats() (hits, misses int64) {
	return r.hits.Load(), r.misses.Load()
}

// Resident returns the IDs of the currently cached models (tests and the
// healthz endpoint).
func (r *Registry) Resident() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.lru...)
}
