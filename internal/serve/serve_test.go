package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/fieldio"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/serve"
)

// The fixture: one quick SZ model trained in TestMain, saved under several
// IDs so cache-eviction tests have distinct models to rotate through.
var (
	modelsDir string
	trainedFW *fxrz.Framework
)

// modelIDs are the fixture's registered model IDs (all the same forest).
var modelIDs = []string{"nyx-sz", "m0", "m1", "m2", "m3"}

func TestMain(m *testing.M) {
	obs.Enable()
	code, err := buildFixtureAndRun(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve fixture:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func buildFixtureAndRun(m *testing.M) (int, error) {
	dir, err := os.MkdirTemp("", "fxrzd-models-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	modelsDir = dir

	var fields []*fxrz.Field
	for _, ts := range []int{1, 3, 5} {
		f, err := datagen.NyxField("baryon_density", 1, ts, 24)
		if err != nil {
			return 0, err
		}
		fields = append(fields, f)
	}
	cfg := fxrz.DefaultConfig()
	cfg.StationaryPoints = 10
	cfg.AugmentPerField = 50
	cfg.Trees = 25
	trainedFW, err = fxrz.Train(fxrz.NewSZ(), fields, cfg)
	if err != nil {
		return 0, err
	}
	var buf bytes.Buffer
	if err := trainedFW.Save(&buf); err != nil {
		return 0, err
	}
	for _, id := range modelIDs {
		if err := os.WriteFile(filepath.Join(dir, id+".fxm"), buf.Bytes(), 0o644); err != nil {
			return 0, err
		}
	}
	// A non-model file the registry must skip, and a corrupt model it must
	// refuse to serve.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a model"), 0o644); err != nil {
		return 0, err
	}
	if err := os.WriteFile(filepath.Join(dir, "corrupt.fxm"), []byte("FXRZMODEL1 nope"), 0o644); err != nil {
		return 0, err
	}
	return m.Run(), nil
}

func testField(t *testing.T) *fxrz.Field {
	t.Helper()
	f, err := datagen.NyxField("baryon_density", 2, 2, 24)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// midTarget picks a target ratio comfortably inside the model's valid range.
func midTarget(t *testing.T, f *fxrz.Field) float64 {
	t.Helper()
	lo, hi := trainedFW.ValidRatioRange(f)
	if !(hi > lo) {
		t.Fatalf("invalid ratio range [%v, %v]", lo, hi)
	}
	return lo + 0.5*(hi-lo)
}

// newTestServer starts an httptest server over a fresh serve.Server.
func newTestServer(t *testing.T, mutate func(*serve.Config)) (*httptest.Server, *serve.Server) {
	t.Helper()
	cfg := serve.Config{ModelsDir: modelsDir}
	if mutate != nil {
		mutate(&cfg)
	}
	s := serve.NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

// fieldBody serialises f as an fxrzfield container.
func fieldBody(t *testing.T, f *fxrz.Field) *bytes.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := fieldio.Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(buf.Bytes())
}

func decodeJSON[T any](t *testing.T, r io.Reader) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEstimateFieldMode(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	f := testField(t)
	target := midTarget(t, f)

	resp, err := http.Post(
		fmt.Sprintf("%s/v1/estimate?model=nyx-sz&target=%g", ts.URL, target),
		"application/octet-stream", fieldBody(t, f))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	er := decodeJSON[serve.EstimateResponse](t, resp.Body)
	if er.Compressor != "sz" || er.Model != "nyx-sz" {
		t.Errorf("identity = %q/%q", er.Model, er.Compressor)
	}
	// The endpoint must agree exactly with a direct library call: same
	// model, same field, deterministic inference.
	want, err := trainedFW.EstimateConfig(f, target)
	if err != nil {
		t.Fatal(err)
	}
	if er.Knob != want.Knob {
		t.Errorf("knob = %v, direct call = %v", er.Knob, want.Knob)
	}
	if er.NonConstantR != want.NonConstantR || er.AdjustedRatio != want.AdjustedRatio {
		t.Errorf("analysis = (%v, %v), direct = (%v, %v)",
			er.NonConstantR, er.AdjustedRatio, want.NonConstantR, want.AdjustedRatio)
	}
	if len(er.ValidRange) != 2 || !(er.ValidRange[1] > er.ValidRange[0]) {
		t.Errorf("valid range = %v", er.ValidRange)
	}
}

func TestEstimateFeaturesMode(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	f := testField(t)
	target := midTarget(t, f)
	full, err := trainedFW.EstimateConfig(f, target)
	if err != nil {
		t.Fatal(err)
	}
	ft := fxrz.ExtractFeatures(f, 4)
	body, _ := json.Marshal(serve.FeaturesRequest{
		ValueRange: ft.ValueRange, MeanValue: ft.MeanValue,
		MND: ft.MND, MLD: ft.MLD, MSD: ft.MSD,
		CARatio: full.NonConstantR,
	})
	resp, err := http.Post(
		fmt.Sprintf("%s/v1/estimate?model=nyx-sz&target=%g", ts.URL, target),
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	er := decodeJSON[serve.EstimateResponse](t, resp.Body)
	// Features + the same CA ratio reproduce the full analysis exactly.
	if er.Knob != full.Knob {
		t.Errorf("features-mode knob = %v, field-mode = %v", er.Knob, full.Knob)
	}
	if er.ValidRange != nil {
		t.Errorf("features mode reported a field-dependent valid range: %v", er.ValidRange)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	f := testField(t)
	target := midTarget(t, f)

	resp, err := http.Post(
		fmt.Sprintf("%s/v1/pack?model=nyx-sz&target=%g", ts.URL, target),
		"application/octet-stream", fieldBody(t, f))
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pack status %d: %s", resp.StatusCode, blob)
	}
	knob, err := strconv.ParseFloat(resp.Header.Get("X-Fxrz-Knob"), 64)
	if err != nil || !(knob > 0) {
		t.Fatalf("X-Fxrz-Knob = %q (%v)", resp.Header.Get("X-Fxrz-Knob"), err)
	}
	if got := resp.Header.Get("X-Fxrz-Compressor"); got != "sz" {
		t.Errorf("X-Fxrz-Compressor = %q", got)
	}
	// The served stream is exactly what the library produces.
	wantBlob, est, err := trainedFW.CompressToRatio(f, target)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, wantBlob) {
		t.Error("served stream differs from direct CompressToRatio stream")
	}
	if knob != est.Knob {
		t.Errorf("served knob %v, direct %v", knob, est.Knob)
	}

	resp2, err := http.Post(ts.URL+"/v1/unpack", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		b, _ := io.ReadAll(resp2.Body)
		t.Fatalf("unpack status %d: %s", resp2.StatusCode, b)
	}
	g, err := fieldio.Read(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	// Served reconstruction is bit-identical to the library's.
	want, err := fxrz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Float32bits(want.Data[i]) != math.Float32bits(g.Data[i]) {
			t.Fatalf("sample %d differs", i)
		}
	}
	// And honors the error bound end to end.
	maxErr, err := fxrz.MaxAbsError(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > knob*(1+1e-6) {
		t.Errorf("round-trip error %g exceeds knob %g", maxErr, knob)
	}
}

// TestUnpackRegion drives the unpack endpoint's region parameter: a regioned
// response must carry exactly the requested subvolume of the full
// reconstruction, for raw and indexed streams alike, and malformed or
// out-of-bounds regions must come back 400.
func TestUnpackRegion(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	f := testField(t)
	blob, _, err := trainedFW.CompressToRatio(f, midTarget(t, f))
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := fxrz.IndexBlob(blob)
	if err != nil {
		t.Fatal(err)
	}
	full, err := fxrz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := []int{4, 8, 2}, []int{20, 21, 17}
	for _, src := range []struct {
		kind string
		blob []byte
	}{{"raw", blob}, {"indexed", indexed}} {
		resp, err := http.Post(ts.URL+"/v1/unpack?region=4:20,8:21,2:17",
			"application/octet-stream", bytes.NewReader(src.blob))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d: %s", src.kind, resp.StatusCode, body)
		}
		g, err := fieldio.Read(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Dims) != 3 || g.Dims[0] != 16 || g.Dims[1] != 13 || g.Dims[2] != 15 {
			t.Fatalf("%s: region dims = %v, want [16 13 15]", src.kind, g.Dims)
		}
		i := 0
		for z := lo[0]; z < hi[0]; z++ {
			for y := lo[1]; y < hi[1]; y++ {
				for x := lo[2]; x < hi[2]; x++ {
					if math.Float32bits(g.Data[i]) != math.Float32bits(full.At(z, y, x)) {
						t.Fatalf("%s: region sample (%d,%d,%d) differs from full decode", src.kind, z, y, x)
					}
					i++
				}
			}
		}
	}
	for _, bad := range []string{"garbage", "0:5", "0:99,0:99,0:99"} {
		resp, err := http.Post(ts.URL+"/v1/unpack?region="+bad,
			"application/octet-stream", bytes.NewReader(indexed))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("region %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestModelsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	f := testField(t)
	// Load one model so the listing distinguishes resident from cold.
	resp, err := http.Post(
		fmt.Sprintf("%s/v1/estimate?model=nyx-sz&target=%g", ts.URL, midTarget(t, f)),
		"application/octet-stream", fieldBody(t, f))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	mr := decodeJSON[serve.ModelsResponse](t, resp.Body)
	// 5 fixture IDs + corrupt.fxm; README.txt skipped.
	if len(mr.Models) != len(modelIDs)+1 {
		t.Fatalf("listed %d models: %+v", len(mr.Models), mr.Models)
	}
	byID := map[string]serve.ModelInfo{}
	for _, mi := range mr.Models {
		byID[mi.ID] = mi
	}
	if mi := byID["nyx-sz"]; !mi.Loaded || mi.Compressor != "sz" || mi.SizeBytes <= 0 {
		t.Errorf("nyx-sz info = %+v", mi)
	}
	if mi := byID["m0"]; mi.Loaded {
		t.Errorf("m0 unexpectedly resident: %+v", mi)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	f := testField(t)
	resp, err := http.Post(
		fmt.Sprintf("%s/v1/pack?model=nyx-sz&target=%g", ts.URL, midTarget(t, f)),
		"application/octet-stream", fieldBody(t, f))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	health := decodeJSON[serve.HealthResponse](t, hr.Body)
	if health.Status != "ok" || health.AdmissionSlots < 1 {
		t.Errorf("health = %+v", health)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	snap := decodeJSON[obs.Snapshot](t, mr.Body)
	if snap.Counters["serve/requests/pack"] < 1 {
		t.Errorf("pack request counter = %d", snap.Counters["serve/requests/pack"])
	}
	st, ok := snap.Spans["serve/latency/pack"]
	if !ok || st.Count < 1 {
		t.Fatalf("pack latency histogram missing: %+v", st)
	}
	if !(st.P99MS > 0) || st.P99MS < st.P50MS {
		t.Errorf("latency percentiles implausible: p50=%v p99=%v", st.P50MS, st.P99MS)
	}
}

func TestRejections(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	f := testField(t)
	target := midTarget(t, f)
	post := func(url, ct string, body io.Reader) *http.Response {
		t.Helper()
		resp, err := http.Post(url, ct, body)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	cases := []struct {
		name string
		resp *http.Response
		want int
	}{
		{"unknown model", post(fmt.Sprintf("%s/v1/estimate?model=ghost&target=%g", ts.URL, target),
			"application/octet-stream", fieldBody(t, f)), 404},
		{"traversal id", post(fmt.Sprintf("%s/v1/estimate?model=..%%2F..%%2Fetc&target=%g", ts.URL, target),
			"application/octet-stream", fieldBody(t, f)), 400},
		{"missing target", post(ts.URL+"/v1/estimate?model=nyx-sz",
			"application/octet-stream", fieldBody(t, f)), 400},
		{"bad target", post(ts.URL+"/v1/estimate?model=nyx-sz&target=-5",
			"application/octet-stream", fieldBody(t, f)), 400},
		{"garbage field", post(fmt.Sprintf("%s/v1/pack?model=nyx-sz&target=%g", ts.URL, target),
			"application/octet-stream", bytes.NewReader([]byte("not a field"))), 400},
		{"corrupt model file", post(fmt.Sprintf("%s/v1/estimate?model=corrupt&target=%g", ts.URL, target),
			"application/octet-stream", fieldBody(t, f)), 500},
		{"corrupt unpack blob", post(ts.URL+"/v1/unpack",
			"application/octet-stream", bytes.NewReader([]byte{0x5A, 0x01, 0x02})), 400},
		{"bad features json", post(fmt.Sprintf("%s/v1/estimate?model=nyx-sz&target=%g", ts.URL, target),
			"application/json", bytes.NewReader([]byte("{nope"))), 400},
	}
	for _, tc := range cases {
		if tc.resp.StatusCode != tc.want {
			body, _ := io.ReadAll(tc.resp.Body)
			t.Errorf("%s: status %d, want %d (%s)", tc.name, tc.resp.StatusCode, tc.want, body)
		}
		var apiErr struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(tc.resp.Body).Decode(&apiErr); err == nil && apiErr.Error == "" {
			t.Errorf("%s: missing error envelope", tc.name)
		}
	}
}

func TestBodyCap413(t *testing.T) {
	ts, _ := newTestServer(t, func(c *serve.Config) { c.MaxBodyBytes = 64 })
	f := testField(t)
	resp, err := http.Post(
		fmt.Sprintf("%s/v1/pack?model=nyx-sz&target=%g", ts.URL, midTarget(t, f)),
		"application/octet-stream", fieldBody(t, f))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 413 (%s)", resp.StatusCode, body)
	}
}

func TestTimeout503(t *testing.T) {
	ts, _ := newTestServer(t, func(c *serve.Config) { c.Timeout = time.Nanosecond })
	f := testField(t)
	resp, err := http.Post(
		fmt.Sprintf("%s/v1/pack?model=nyx-sz&target=%g", ts.URL, midTarget(t, f)),
		"application/octet-stream", fieldBody(t, f))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, body)
	}
}

// TestOverload429 holds the single admission slot with a request whose body
// never finishes arriving, then checks that the next request is shed with
// 429 (and a Retry-After) instead of queueing, and that the slot-holder
// still completes once its body lands.
func TestOverload429(t *testing.T) {
	ts, _ := newTestServer(t, func(c *serve.Config) { c.MaxInFlight = 1 })
	f := testField(t)
	target := midTarget(t, f)

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(
			fmt.Sprintf("%s/v1/pack?model=nyx-sz&target=%g", ts.URL, target),
			"application/octet-stream", pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != 200 {
				err = fmt.Errorf("slot holder status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
		done <- err
	}()
	// Wait until the slot holder is admitted (visible through /healthz).
	waitInFlight(t, ts.URL, 1)

	resp, err := http.Post(
		fmt.Sprintf("%s/v1/estimate?model=nyx-sz&target=%g", ts.URL, target),
		"application/octet-stream", fieldBody(t, f))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("overload 429 Retry-After = %q, want the fixed \"1\"", got)
	}

	// Deliver the held request's body; it must complete normally.
	var buf bytes.Buffer
	if err := fieldio.Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(pw, &buf); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// waitInFlight polls /healthz until the reported in-flight count reaches n.
func waitInFlight(t *testing.T, url string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		h := decodeJSON[serve.HealthResponse](t, resp.Body)
		resp.Body.Close()
		if h.InFlight >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("timed out waiting for request admission")
}

// TestGracefulShutdownDrain starts a request whose body is still in flight,
// initiates Shutdown, and verifies the server waits for the request to
// complete (with a correct response) before Shutdown returns.
func TestGracefulShutdownDrain(t *testing.T) {
	cfg := serve.Config{ModelsDir: modelsDir}
	s := serve.NewServer(cfg)
	srv := httptest.NewServer(s.Handler())
	// No t.Cleanup(srv.Close): the test ends with the server shut down.

	f := testField(t)
	target := midTarget(t, f)
	pr, pw := io.Pipe()
	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(
			fmt.Sprintf("%s/v1/pack?model=nyx-sz&target=%g", srv.URL, target),
			"application/octet-stream", pr)
		if err == nil {
			blob, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				err = fmt.Errorf("drained request status %d: %s", resp.StatusCode, blob)
			} else if _, derr := fxrz.Decompress(blob); derr != nil {
				err = fmt.Errorf("drained request returned corrupt stream: %w", derr)
			}
		}
		reqDone <- err
	}()
	waitInFlight(t, srv.URL, 1)

	shutDone := make(chan error, 1)
	go func() { shutDone <- srv.Config.Shutdown(context.Background()) }()

	// The in-flight request must not have been killed by Shutdown: give the
	// drain a moment, then complete the body.
	select {
	case err := <-reqDone:
		t.Fatalf("request finished before its body arrived: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	var buf bytes.Buffer
	if err := fieldio.Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(pw, &buf); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request not drained cleanly: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeConcurrentClients hammers a small-capacity server with mixed
// estimate/pack/unpack clients under -race: every request must end in a
// correct result or a clean 429 (which the client retries), never a panic,
// a corrupt stream, or a wrong reconstruction.
func TestServeConcurrentClients(t *testing.T) {
	ts, _ := newTestServer(t, func(c *serve.Config) { c.MaxInFlight = 2 })
	f := testField(t)
	target := midTarget(t, f)
	wantBlob, est, err := trainedFW.CompressToRatio(f, target)
	if err != nil {
		t.Fatal(err)
	}
	wantRec, err := fxrz.Decompress(wantBlob)
	if err != nil {
		t.Fatal(err)
	}

	var fieldBytes bytes.Buffer
	if err := fieldio.Write(&fieldBytes, f); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			errs <- func() error {
				for attempt := 0; attempt < 100; attempt++ {
					var resp *http.Response
					var err error
					switch i % 3 {
					case 0: // estimate
						resp, err = http.Post(
							fmt.Sprintf("%s/v1/estimate?model=nyx-sz&target=%g", ts.URL, target),
							"application/octet-stream", bytes.NewReader(fieldBytes.Bytes()))
					case 1: // pack
						resp, err = http.Post(
							fmt.Sprintf("%s/v1/pack?model=nyx-sz&target=%g", ts.URL, target),
							"application/octet-stream", bytes.NewReader(fieldBytes.Bytes()))
					default: // unpack
						resp, err = http.Post(ts.URL+"/v1/unpack",
							"application/octet-stream", bytes.NewReader(wantBlob))
					}
					if err != nil {
						return err
					}
					body, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if rerr != nil {
						return rerr
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						time.Sleep(time.Duration(1+i) * time.Millisecond)
						continue
					}
					if resp.StatusCode != 200 {
						return fmt.Errorf("client %d: status %d: %s", i, resp.StatusCode, body)
					}
					switch i % 3 {
					case 0:
						var er serve.EstimateResponse
						if err := json.Unmarshal(body, &er); err != nil {
							return err
						}
						if er.Knob != est.Knob {
							return fmt.Errorf("client %d: knob %v, want %v", i, er.Knob, est.Knob)
						}
					case 1:
						if !bytes.Equal(body, wantBlob) {
							return fmt.Errorf("client %d: served stream differs", i)
						}
					default:
						g, err := fieldio.Read(bytes.NewReader(body))
						if err != nil {
							return err
						}
						for j := range wantRec.Data {
							if math.Float32bits(wantRec.Data[j]) != math.Float32bits(g.Data[j]) {
								return fmt.Errorf("client %d: sample %d differs", i, j)
							}
						}
					}
					return nil
				}
				return fmt.Errorf("client %d: starved by 429s", i)
			}()
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}
