// Batch serving: the /v1/estimate-many, /v1/pack-many and /v1/unpack-many
// endpoints. Each takes one batch request container (internal/batch, magic
// 0xB5) of up to Config.MaxBatch items and answers one response container
// with a per-item status — the per-request serving machinery (routing, rate
// limit, admission, body transport) is paid once and amortised over the
// batch, and one bad item fails alone instead of failing its neighbours.
//
// The serving disciplines generalise rather than bend:
//
//   - Rate limiting charges one token per item (ratelimit.AllowN), so a
//     64-item batch draws the same per-client budget as 64 single calls.
//   - Admission takes one QoS ticket whose cost is the weighted item count
//     (qos.TryAcquireN): cheap estimates pack 8 items per slot, unpacks 4,
//     packs 2, clamped to what the class could ever hold (qos.MaxCost) so a
//     large batch waits for a quiet server instead of being unadmittable or
//     eating other classes' guarantees.
//   - Intra-batch fan-out obeys the pool.Split budget rule twice over: a
//     batch holding cost slots gets cost × inner workers, split across items
//     — slots × batch workers × per-item workers never oversubscribes the
//     configured budget.
//
// unpack-many additionally routes brick-store items that share a region
// through one brick.Set: geometry validated once, byte ranges planned across
// all members, each member still decoding only the bricks the region
// intersects.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/batch"
	"github.com/fxrz-go/fxrz/internal/brick"
	"github.com/fxrz-go/fxrz/internal/fieldio"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
	"github.com/fxrz-go/fxrz/internal/ratelimit"
	"github.com/fxrz-go/fxrz/internal/roi"
	"github.com/fxrz-go/fxrz/internal/shard"
)

// itemsPerSlot converts batch sizes to admission cost per class: how many
// items of the class one QoS slot is worth. Estimate items are feature
// lookups (many fit in a slot's worth of capacity); unpack and pack run real
// codec work and pack fewer.
var itemsPerSlot = map[int]int{
	classEstimate: 8,
	classUnpack:   4,
	classPack:     2,
}

// batchCost prices an n-item batch in admission slots: ceil(n / itemsPerSlot),
// clamped to [1, qos.MaxCost] so any legal batch is admissible on a quiet
// server but can never displace another class's guarantee.
func (s *Server) batchCost(class, n int) int {
	per := itemsPerSlot[class]
	cost := (n + per - 1) / per
	if m := s.admit.MaxCost(class); cost > m {
		cost = m
	}
	if cost < 1 {
		cost = 1
	}
	return cost
}

// batchRunner executes decoded items under a worker budget, filling one
// result per item. Implementations must write every results[i].
type batchRunner func(ctx context.Context, r *http.Request, items []batch.Item, results []batch.Result, budget int)

// instrumentBatch is the batch analogue of instrument. The order differs
// from the single-item path out of necessity: the item count is inside the
// body, so the body is read (under the size cap) and the container decoded
// before the rate limiter and admission controller run — both then charge
// for the whole batch at once (AllowN / TryAcquireN), so batching amortises
// the per-request machinery without bypassing any per-client or per-class
// limit.
func (s *Server) instrumentBatch(ep string, class int, run batchRunner) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		obs.Inc("serve/requests/" + ep)
		defer obs.Span("serve/latency/" + ep)()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		s.serveBatch(sw, r, ep, class, run)
		if sw.code >= 400 {
			obs.Inc("serve/errors/" + ep)
		}
	})
}

func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request, ep string, class int, run batchRunner) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := getBuf()
	defer putBuf(buf)
	body, err := readBody(r, buf)
	if err != nil {
		fail(w, err)
		return
	}
	items, err := batch.DecodeRequest(body)
	if err != nil {
		fail(w, err)
		return
	}
	n := len(items)
	if n > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("batch of %d items exceeds the %d-item limit; split the request", n, s.cfg.MaxBatch))
		return
	}
	// The request budget: the configured timeout, clamped to the remaining
	// deadline a forwarding shard propagated — a sub-batch never outlives
	// the client request that spawned it.
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(r))
	defer cancel()
	var results []batch.Result
	if s.router != nil && r.Header.Get(shard.ForwardedHeader) == "" {
		// Entry shard of a ring: split by owner, forward remote sub-batches,
		// run the local slice under the usual charges. Refusals become
		// per-item statuses — the merged response itself stays 200.
		results = s.scatterBatch(ctx, r, ep, class, items, run)
	} else {
		// Single instance, or a forwarded sub-batch (every item is ours by
		// construction): charge and run the whole batch; a refusal refuses
		// the batch outright.
		var ref *batchRefusal
		results, ref = s.localBatch(ctx, r, ep, class, items, run)
		if ref != nil {
			w.Header().Set("Retry-After", ref.retryAfter)
			writeError(w, ref.status, ref.err)
			return
		}
	}
	okCount := 0
	for i := range results {
		if results[i].Status < 400 {
			okCount++
		}
	}
	obs.Add("serve/batch/item_ok/"+ep, int64(okCount))
	obs.Add("serve/batch/item_err/"+ep, int64(n-okCount))
	out := batch.EncodeResponse(results)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(out)))
	_, _ = w.Write(out)
}

// requestTimeout is the configured per-request budget, clamped to a
// forwarded deadline (shard.DeadlineHeader, microseconds) when one arrived.
func (s *Server) requestTimeout(r *http.Request) time.Duration {
	d := s.cfg.Timeout
	if v := r.Header.Get(shard.DeadlineHeader); v != "" {
		if us, err := strconv.ParseInt(v, 10, 64); err == nil && us > 0 {
			if fwd := time.Duration(us) * time.Microsecond; fwd < d {
				d = fwd
			}
		}
	}
	return d
}

// batchRefusal is a whole-batch shed: the outer status and Retry-After the
// single-instance path writes, or — on the entry shard of a ring — the
// per-item status the local slice of a scatter-gather batch carries.
type batchRefusal struct {
	status     int
	retryAfter string
	err        error
}

// localBatch charges the rate limit and QoS admission for items and runs
// them, returning one result per item — or the refusal, when the batch is
// shed before any work happens.
func (s *Server) localBatch(ctx context.Context, r *http.Request, ep string, class int, items []batch.Item, run batchRunner) ([]batch.Result, *batchRefusal) {
	n := len(items)
	if ok, retry := s.limits.AllowN(clientID(r), n); !ok {
		obs.Inc("serve/rejected/ratelimit")
		return nil, &batchRefusal{
			status:     http.StatusTooManyRequests,
			retryAfter: strconv.Itoa(ratelimit.RetryAfterSeconds(retry)),
			err:        fmt.Errorf("batch of %d items over the client's %g req/s rate limit", n, s.cfg.RatePerClient),
		}
	}
	cost := s.batchCost(class, n)
	if !s.admit.TryAcquireN(class, cost) {
		obs.Inc("serve/rejected/overload")
		return nil, &batchRefusal{
			status:     http.StatusTooManyRequests,
			retryAfter: "1",
			err: fmt.Errorf("server at capacity for %s requests (%d of %d slots in use, batch needs %d)",
				qosClasses[class].Name, s.admit.Total(), s.admit.Capacity(), cost),
		}
	}
	defer s.admit.ReleaseN(class, cost)
	obs.AddGauge("serve/inflight", int64(cost))
	obs.MaxGauge("serve/inflight_peak", int64(s.admit.Total()))
	defer obs.AddGauge("serve/inflight", int64(-cost))
	obs.Add("serve/batch/items/"+ep, int64(n))

	results := make([]batch.Result, n)
	// The batch ticket holds cost slots, so it is entitled to cost slots'
	// worth of intra-field workers, split across the items.
	run(ctx, r, items, results, cost*s.inner)
	return results, nil
}

// scatterBatch routes one batch across the shard ring: items are keyed
// (explicit shard-key param, else model, else payload hash — shard.ItemKey),
// partitioned by rendezvous-hashed owner, and the remote sub-batches
// forwarded concurrently while the local slice runs under this instance's
// own rate-limit and admission charges. Per-item statuses merge back into
// one response: a dead peer 503s its own items, a corrupt peer response
// 400s its sub-batch, a local shed 429s the local slice — healthy items
// always survive.
func (s *Server) scatterBatch(ctx context.Context, r *http.Request, ep string, class int, items []batch.Item, run batchRunner) []batch.Result {
	n := len(items)
	base := r.URL.Query()
	keys := make([]string, n)
	for i, it := range items {
		iq, _ := itemQuery(it) // a bad params string keys by payload; the item still fails with 400 where it runs
		keys[i] = shard.ItemKey(func(k string) string { return mergedGet(base, iq, k) }, it.Payload)
	}
	local, remote := s.router.Partition(keys)
	results := make([]batch.Result, n)
	pathQ := r.URL.Path
	if r.URL.RawQuery != "" {
		pathQ += "?" + r.URL.RawQuery
	}

	var fwd sync.WaitGroup
	if len(remote) > 0 {
		fwd.Add(1)
		go func() {
			defer fwd.Done()
			s.router.Scatter(ctx, pathQ, clientID(r), items, remote, results)
		}()
	}
	if len(local) > 0 {
		sub := make([]batch.Item, len(local))
		for j, idx := range local {
			sub[j] = items[idx]
		}
		res, ref := s.localBatch(ctx, r, ep, class, sub, run)
		if ref != nil {
			for _, idx := range local {
				results[idx] = batch.Result{ID: items[idx].ID, Status: ref.status, Payload: []byte(ref.err.Error())}
			}
		} else {
			for j, idx := range local {
				results[idx] = res[j]
			}
		}
	}
	fwd.Wait()
	obs.Inc("shard/merged")
	obs.Add("shard/local_items", int64(len(local)))
	return results
}

// itemResult wraps a per-item outcome: the single-endpoint response bytes on
// success, the error mapped through errorStatus otherwise.
func itemResult(id uint64, payload []byte, err error) batch.Result {
	if err != nil {
		return batch.Result{ID: id, Status: errorStatus(err), Payload: []byte(err.Error())}
	}
	return batch.Result{ID: id, Status: http.StatusOK, Payload: payload}
}

// itemQuery parses an item's params override; empty params are an empty set.
func itemQuery(it batch.Item) (url.Values, error) {
	if it.Params == "" {
		return nil, nil
	}
	q, err := url.ParseQuery(it.Params)
	if err != nil {
		return nil, badRequestf("item params %q: %v", it.Params, err)
	}
	return q, nil
}

// mergedGet resolves one parameter: the item override when present, the
// request-level query otherwise.
func mergedGet(base, item url.Values, key string) string {
	if v := item.Get(key); v != "" {
		return v
	}
	return base.Get(key)
}

// modelEntry caches one registry lookup for a batch.
type modelEntry struct {
	fw  *fxrz.Framework
	err error
}

// prefetchModels resolves every distinct model id a batch references with
// one registry lookup each, before the fan-out — duplicate items share the
// entry instead of racing the registry.
func (s *Server) prefetchModels(ctx context.Context, base url.Values, items []batch.Item) map[string]modelEntry {
	out := make(map[string]modelEntry)
	for _, it := range items {
		iq, err := itemQuery(it)
		if err != nil {
			continue // the item itself will fail with 400 during the fan-out
		}
		id := mergedGet(base, iq, "model")
		if id == "" {
			continue
		}
		if _, seen := out[id]; seen {
			continue
		}
		fw, err := s.reg.Get(ctx, id)
		out[id] = modelEntry{fw: fw, err: err}
	}
	return out
}

// runEstimateMany fans the batch's items over the estimate engine. Each item
// body is what /v1/estimate takes: an fxrzfield container (sniffed by magic)
// for full analysis, anything else decoded as the JSON features fast path.
func (s *Server) runEstimateMany(ctx context.Context, r *http.Request, items []batch.Item, results []batch.Result, budget int) {
	base := r.URL.Query()
	models := s.prefetchModels(ctx, base, items)
	outer, perItem := pool.Split(budget, len(items))
	pool.Run(outer, len(items), func(i int) {
		results[i] = s.estimateItem(ctx, base, models, items[i], perItem)
	})
}

var fieldMagic = []byte("fxrzfield")

func (s *Server) estimateItem(ctx context.Context, base url.Values, models map[string]modelEntry, it batch.Item, workers int) batch.Result {
	iq, err := itemQuery(it)
	if err != nil {
		return itemResult(it.ID, nil, err)
	}
	id, target, err := parseModelTarget(func(k string) string { return mergedGet(base, iq, k) })
	if err != nil {
		return itemResult(it.ID, nil, err)
	}
	m := models[id]
	if m.err != nil {
		return itemResult(it.ID, nil, m.err)
	}
	jsonMode := !bytes.HasPrefix(it.Payload, fieldMagic)
	resp, err := estimateCore(ctx, m.fw.WithParallelism(workers), id, target, jsonMode, bytes.NewReader(it.Payload))
	if err != nil {
		return itemResult(it.ID, nil, err)
	}
	return itemResult(it.ID, encodeJSON(resp), nil)
}

// encodeJSON renders v exactly as writeJSON does (trailing newline
// included), so a batch item payload is bit-identical to the single
// endpoint's response body.
func encodeJSON(v any) []byte {
	var b bytes.Buffer
	_ = json.NewEncoder(&b).Encode(v)
	return b.Bytes()
}

// runPackMany fans the batch's items over the pack engine: each item body is
// an fxrzfield container, each result payload the compressed stream at the
// item's estimated knob.
func (s *Server) runPackMany(ctx context.Context, r *http.Request, items []batch.Item, results []batch.Result, budget int) {
	base := r.URL.Query()
	models := s.prefetchModels(ctx, base, items)
	outer, perItem := pool.Split(budget, len(items))
	pool.Run(outer, len(items), func(i int) {
		results[i] = s.packItem(ctx, base, models, items[i], perItem)
	})
}

func (s *Server) packItem(ctx context.Context, base url.Values, models map[string]modelEntry, it batch.Item, workers int) batch.Result {
	iq, err := itemQuery(it)
	if err != nil {
		return itemResult(it.ID, nil, err)
	}
	id, target, err := parseModelTarget(func(k string) string { return mergedGet(base, iq, k) })
	if err != nil {
		return itemResult(it.ID, nil, err)
	}
	m := models[id]
	if m.err != nil {
		return itemResult(it.ID, nil, m.err)
	}
	blob, _, _, err := packCore(ctx, m.fw.WithParallelism(workers), target, bytes.NewReader(it.Payload))
	return itemResult(it.ID, blob, err)
}

// setMember routes one unpack item through a shared brick set.
type setMember struct {
	set    *brick.Set
	member int
	origin []int
	shape  []int
}

// runUnpackMany fans the batch's items over the unpack engine. Items whose
// payloads are marshaled brick stores and whose effective region agree are
// first opened together as one brick.Set — geometry validated once, byte
// ranges planned across all members — and each then decodes only its own
// intersecting bricks. Everything else (other containers, per-item regions,
// stores of mismatched geometry) takes the per-item path, so a set that
// fails to open degrades gracefully instead of failing its items.
func (s *Server) runUnpackMany(ctx context.Context, r *http.Request, items []batch.Item, results []batch.Result, budget int) {
	base := r.URL.Query()
	members := s.planBrickSets(base, items)
	outer, perItem := pool.Split(budget, len(items))
	pool.Run(outer, len(items), func(i int) {
		results[i] = s.unpackItem(ctx, base, items[i], members[i], perItem)
	})
}

// planBrickSets groups brick-store items by their effective region text and
// opens each group of two or more as one brick.Set, returning the per-item
// membership (nil = per-item path). Groups that fail to open — mixed
// geometry, corrupt members — fall back silently; the per-item path will
// produce the per-item error.
func (s *Server) planBrickSets(base url.Values, items []batch.Item) []*setMember {
	members := make([]*setMember, len(items))
	groups := make(map[string][]int)
	for i, it := range items {
		if !brick.IsStore(it.Payload) {
			continue
		}
		iq, err := itemQuery(it)
		if err != nil {
			continue
		}
		if region := mergedGet(base, iq, "region"); region != "" {
			groups[region] = append(groups[region], i)
		}
	}
	for region, idx := range groups {
		if len(idx) < 2 {
			continue
		}
		lo, hi, err := fxrz.ParseRegion(region)
		if err != nil {
			continue
		}
		blobs := make([][]byte, len(idx))
		for k, i := range idx {
			blobs[k] = items[i].Payload
		}
		set, err := brick.OpenSet(roi.ResolveCodec, blobs...)
		if err != nil {
			continue
		}
		origin := make([]int, len(lo))
		shape := make([]int, len(lo))
		for d := range lo {
			origin[d], shape[d] = lo[d], hi[d]-lo[d]
		}
		// One plan across the whole set: the ranges a sharded reader would
		// fetch. Planning failures (region outside the shared geometry) leave
		// the group on the per-item path, which reports the per-item error.
		plan, err := set.RegionByteRanges(origin, shape)
		if err != nil {
			continue
		}
		planned := 0
		for _, ranges := range plan {
			for _, rg := range ranges {
				planned += rg[1] - rg[0]
			}
		}
		obs.Inc("serve/batch/brickset")
		obs.Add("serve/batch/brickset_members", int64(len(idx)))
		obs.Add("serve/batch/brickset_planned_bytes", int64(planned))
		for k, i := range idx {
			members[i] = &setMember{set: set, member: k, origin: origin, shape: shape}
		}
	}
	return members
}

func (s *Server) unpackItem(ctx context.Context, base url.Values, it batch.Item, sm *setMember, workers int) batch.Result {
	iq, err := itemQuery(it)
	if err != nil {
		return itemResult(it.ID, nil, err)
	}
	if err := ctx.Err(); err != nil {
		return itemResult(it.ID, nil, err)
	}
	var f *fxrz.Field
	if sm != nil {
		obs.Inc("serve/unpack_region")
		f, err = sm.set.ReadRegion(sm.member, sm.origin, sm.shape)
		if err != nil {
			err = badRequestf("%v", err)
		} else {
			obs.Add("serve/bytes/unpacked_out", int64(f.Bytes()))
		}
	} else {
		f, err = unpackCore(it.Payload, mergedGet(base, iq, "region"), workers)
	}
	if err != nil {
		return itemResult(it.ID, nil, err)
	}
	var out bytes.Buffer
	if err := fieldio.Write(&out, f); err != nil {
		return itemResult(it.ID, nil, err)
	}
	return itemResult(it.ID, out.Bytes(), nil)
}
