package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/batch"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/fieldio"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/serve"
)

// postBatch sends items to a -many endpoint and decodes the response
// container. Any non-200 outer status is returned with the body for the
// caller to assert on.
func postBatch(t *testing.T, url string, items []batch.Item) (int, []batch.Result, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(batch.EncodeRequest(items)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		return resp.StatusCode, nil, body
	}
	results, err := batch.DecodeResponse(body)
	if err != nil {
		t.Fatalf("decoding response container: %v", err)
	}
	return resp.StatusCode, results, body
}

// postSingle issues the equivalent single-endpoint call and returns its body.
func postSingle(t *testing.T, url, contentType string, payload []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, body
}

// TestBatchEstimateManyMatchesSingles: every batch item answer must agree
// with the corresponding single /v1/estimate call — all fields exactly,
// except the wall-clock AnalysisMS.
func TestBatchEstimateManyMatchesSingles(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	f := testField(t)
	target := midTarget(t, f)
	var fb bytes.Buffer
	if err := fieldio.Write(&fb, f); err != nil {
		t.Fatal(err)
	}
	full, err := trainedFW.EstimateConfig(f, target)
	if err != nil {
		t.Fatal(err)
	}
	ft := fxrz.ExtractFeatures(f, 4)
	featJSON, _ := json.Marshal(serve.FeaturesRequest{
		ValueRange: ft.ValueRange, MeanValue: ft.MeanValue,
		MND: ft.MND, MLD: ft.MLD, MSD: ft.MSD, CARatio: full.NonConstantR,
	})

	// Mixed batch: field-mode and features-mode items, two models, a
	// per-item target override.
	items := []batch.Item{
		{ID: 10, Payload: fb.Bytes()},
		{ID: 11, Payload: featJSON},
		{ID: 12, Params: "model=m0", Payload: fb.Bytes()},
		{ID: 13, Params: fmt.Sprintf("target=%g", target*1.1), Payload: featJSON},
	}
	base := fmt.Sprintf("%s/v1/estimate-many?model=nyx-sz&target=%g", ts.URL, target)
	status, results, _ := postBatch(t, base, items)
	if status != 200 {
		t.Fatalf("outer status %d", status)
	}
	singles := []struct {
		url, ct string
		payload []byte
	}{
		{fmt.Sprintf("%s/v1/estimate?model=nyx-sz&target=%g", ts.URL, target), "application/octet-stream", fb.Bytes()},
		{fmt.Sprintf("%s/v1/estimate?model=nyx-sz&target=%g", ts.URL, target), "application/json", featJSON},
		{fmt.Sprintf("%s/v1/estimate?model=m0&target=%g", ts.URL, target), "application/octet-stream", fb.Bytes()},
		{fmt.Sprintf("%s/v1/estimate?model=nyx-sz&target=%g", ts.URL, target*1.1), "application/json", featJSON},
	}
	for i, r := range results {
		if r.ID != items[i].ID {
			t.Fatalf("result %d echoes ID %d, want %d", i, r.ID, items[i].ID)
		}
		if r.Status != 200 {
			t.Fatalf("item %d status %d: %s", i, r.Status, r.Payload)
		}
		st, want := postSingle(t, singles[i].url, singles[i].ct, singles[i].payload)
		if st != 200 {
			t.Fatalf("single call %d status %d", i, st)
		}
		var a, b serve.EstimateResponse
		if err := json.Unmarshal(r.Payload, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(want, &b); err != nil {
			t.Fatal(err)
		}
		a.AnalysisMS, b.AnalysisMS = 0, 0
		ab, _ := json.Marshal(a)
		bb, _ := json.Marshal(b)
		if !bytes.Equal(ab, bb) {
			t.Errorf("item %d diverged from its single call:\n batch: %s\nsingle: %s", i, ab, bb)
		}
	}
}

// TestBatchPackUnpackManyBitIdentical is the acceptance property: a batch of
// N pack (and then unpack) items returns payloads bit-identical to N single
// calls against the same server.
func TestBatchPackUnpackManyBitIdentical(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	var fields []*fxrz.Field
	for _, ver := range []int{1, 2, 3} {
		f, err := datagen.NyxField("baryon_density", 1, ver, 24)
		if err != nil {
			t.Fatal(err)
		}
		fields = append(fields, f)
	}
	target := midTarget(t, fields[0])

	packItems := make([]batch.Item, len(fields))
	for i, f := range fields {
		var fb bytes.Buffer
		if err := fieldio.Write(&fb, f); err != nil {
			t.Fatal(err)
		}
		packItems[i] = batch.Item{ID: uint64(i), Payload: fb.Bytes()}
	}
	packURL := fmt.Sprintf("%s/v1/pack-many?model=nyx-sz&target=%g", ts.URL, target)
	status, packed, _ := postBatch(t, packURL, packItems)
	if status != 200 {
		t.Fatalf("pack-many status %d", status)
	}
	singleURL := fmt.Sprintf("%s/v1/pack?model=nyx-sz&target=%g", ts.URL, target)
	for i, r := range packed {
		if r.Status != 200 {
			t.Fatalf("pack item %d status %d: %s", i, r.Status, r.Payload)
		}
		st, want := postSingle(t, singleURL, "application/octet-stream", packItems[i].Payload)
		if st != 200 {
			t.Fatalf("single pack %d status %d", i, st)
		}
		if !bytes.Equal(r.Payload, want) {
			t.Errorf("pack item %d stream is not bit-identical to the single call", i)
		}
	}

	unpackItems := make([]batch.Item, len(packed))
	for i, r := range packed {
		unpackItems[i] = batch.Item{ID: uint64(100 + i), Payload: r.Payload}
	}
	status, unpacked, _ := postBatch(t, ts.URL+"/v1/unpack-many", unpackItems)
	if status != 200 {
		t.Fatalf("unpack-many status %d", status)
	}
	for i, r := range unpacked {
		if r.Status != 200 {
			t.Fatalf("unpack item %d status %d: %s", i, r.Status, r.Payload)
		}
		st, want := postSingle(t, ts.URL+"/v1/unpack", "application/octet-stream", unpackItems[i].Payload)
		if st != 200 {
			t.Fatalf("single unpack %d status %d", i, st)
		}
		if !bytes.Equal(r.Payload, want) {
			t.Errorf("unpack item %d field is not bit-identical to the single call", i)
		}
		g, err := fieldio.Read(bytes.NewReader(r.Payload))
		if err != nil {
			t.Fatal(err)
		}
		if g.Size() != fields[i].Size() {
			t.Errorf("unpack item %d size %d, want %d", i, g.Size(), fields[i].Size())
		}
	}
}

// TestBatchPartialFailure pins the isolation contract: one bad item in a
// batch of N yields N statuses with the N-1 good results bit-identical to
// single calls, while obs records exactly one admission ticket and N item
// outcomes.
func TestBatchPartialFailure(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	f := testField(t)
	target := midTarget(t, f)
	var fb bytes.Buffer
	if err := fieldio.Write(&fb, f); err != nil {
		t.Fatal(err)
	}
	items := []batch.Item{
		{ID: 0, Payload: fb.Bytes()},
		{ID: 1, Params: "model=no-such-model", Payload: fb.Bytes()},
		{ID: 2, Payload: fb.Bytes()},
		{ID: 3, Params: "target=bogus", Payload: fb.Bytes()},
		{ID: 4, Payload: []byte("neither a field nor json")},
	}
	before := obs.TakeSnapshot()
	url := fmt.Sprintf("%s/v1/estimate-many?model=nyx-sz&target=%g", ts.URL, target)
	status, results, _ := postBatch(t, url, items)
	after := obs.TakeSnapshot()
	if status != 200 {
		t.Fatalf("outer status %d — partial failure must not fail the batch", status)
	}
	if len(results) != len(items) {
		t.Fatalf("%d results for %d items", len(results), len(items))
	}
	wantStatus := []int{200, 404, 200, 400, 400}
	for i, r := range results {
		if r.Status != wantStatus[i] {
			t.Errorf("item %d status %d, want %d (%s)", i, r.Status, wantStatus[i], r.Payload)
		}
	}
	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	if got := delta("qos/admitted/estimate"); got != 1 {
		t.Errorf("admissions during the batch = %d, want exactly 1 ticket", got)
	}
	if ok, bad := delta("serve/batch/item_ok/estimate-many"), delta("serve/batch/item_err/estimate-many"); ok != 2 || bad != 3 {
		t.Errorf("item outcomes = %d ok + %d err, want 2 + 3", ok, bad)
	}
	// The good items must answer exactly like their single calls.
	for _, i := range []int{0, 2} {
		st, want := postSingle(t, fmt.Sprintf("%s/v1/estimate?model=nyx-sz&target=%g", ts.URL, target),
			"application/octet-stream", fb.Bytes())
		if st != 200 {
			t.Fatal("single call failed")
		}
		var a, b serve.EstimateResponse
		if err := json.Unmarshal(results[i].Payload, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(want, &b); err != nil {
			t.Fatal(err)
		}
		a.AnalysisMS, b.AnalysisMS = 0, 0
		ab, _ := json.Marshal(a)
		bb, _ := json.Marshal(b)
		if !bytes.Equal(ab, bb) {
			t.Errorf("surviving item %d diverged from its single call", i)
		}
	}
}

// TestBatchUnpackManyBrickSet: brick-store items sharing ?region= go through
// the unified brick.Set read path and still answer bit-identically to single
// region unpacks; a store of mismatched geometry mixed into the batch falls
// back to the per-item path without breaking its neighbours.
func TestBatchUnpackManyBrickSet(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	var stores [][]byte
	for _, ver := range []int{1, 2, 3} {
		f, err := datagen.NyxField("baryon_density", 1, ver, 24)
		if err != nil {
			t.Fatal(err)
		}
		st, _, err := trainedFW.BrickToRatio(f, midTarget(t, f), 8)
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, st.Marshal())
	}
	// A store with different dims: the set cannot include it, the item must
	// still succeed via the per-item fallback.
	odd, err := datagen.NyxField("baryon_density", 2, 9, 16)
	if err != nil {
		t.Fatal(err)
	}
	oddStore, _, err := trainedFW.BrickToRatio(odd, midTarget(t, odd), 8)
	if err != nil {
		t.Fatal(err)
	}

	const region = "4:20,8:21,2:17"
	items := []batch.Item{
		{ID: 0, Payload: stores[0]},
		{ID: 1, Payload: stores[1]},
		{ID: 2, Payload: stores[2]},
		{ID: 3, Params: "region=0:8,0:8,0:8", Payload: oddStore.Marshal()},
	}
	before := obs.TakeSnapshot()
	status, results, _ := postBatch(t, ts.URL+"/v1/unpack-many?region="+region, items)
	after := obs.TakeSnapshot()
	if status != 200 {
		t.Fatalf("outer status %d", status)
	}
	for i, r := range results {
		if r.Status != 200 {
			t.Fatalf("item %d status %d: %s", i, r.Status, r.Payload)
		}
		itemRegion := region
		var payload []byte
		if i == 3 {
			itemRegion = "0:8,0:8,0:8"
			payload = oddStore.Marshal()
		} else {
			payload = stores[i]
		}
		st, want := postSingle(t, ts.URL+"/v1/unpack?region="+itemRegion, "application/octet-stream", payload)
		if st != 200 {
			t.Fatalf("single region unpack %d status %d", i, st)
		}
		if !bytes.Equal(r.Payload, want) {
			t.Errorf("item %d region read diverged from the single call", i)
		}
	}
	delta := after.Counters["serve/batch/brickset"] - before.Counters["serve/batch/brickset"]
	if delta != 1 {
		t.Errorf("brickset plans during the batch = %d, want 1 (three matching stores)", delta)
	}
	memb := after.Counters["serve/batch/brickset_members"] - before.Counters["serve/batch/brickset_members"]
	if memb != 3 {
		t.Errorf("brickset members = %d, want 3 (the odd-geometry store must fall back)", memb)
	}
	if planned := after.Counters["serve/batch/brickset_planned_bytes"] - before.Counters["serve/batch/brickset_planned_bytes"]; planned <= 0 {
		t.Errorf("planned bytes = %d, want > 0", planned)
	}
}

// TestBatchLimits covers the request-level refusals: an over-MaxBatch batch
// gets 413, a malformed container 400, and both carry JSON error envelopes.
func TestBatchLimits(t *testing.T) {
	ts, _ := newTestServer(t, func(c *serve.Config) { c.MaxBatch = 3 })
	items := make([]batch.Item, 4)
	for i := range items {
		items[i] = batch.Item{ID: uint64(i), Payload: []byte("x")}
	}
	status, _, body := postBatch(t, ts.URL+"/v1/estimate-many?model=nyx-sz&target=8", items)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch status %d, want 413 (%s)", status, body)
	}
	if !strings.Contains(string(body), "split") {
		t.Errorf("413 body does not tell the client to split: %s", body)
	}
	st, body := postSingle(t, ts.URL+"/v1/unpack-many", "application/octet-stream", []byte("not a container"))
	if st != http.StatusBadRequest {
		t.Errorf("garbage container status %d, want 400 (%s)", st, body)
	}
	mut := batch.EncodeRequest(items[:2])
	mut[len(mut)-1] ^= 0xFF // break the trailing CRC
	st, body = postSingle(t, ts.URL+"/v1/unpack-many", "application/octet-stream", mut)
	if st != http.StatusBadRequest {
		t.Errorf("corrupt container status %d, want 400 (%s)", st, body)
	}
}

// TestBatchRateLimitChargesPerItem: a batch draws one token per item, so it
// cannot bypass the per-client limit by arriving as one request.
func TestBatchRateLimitChargesPerItem(t *testing.T) {
	ts, _ := newTestServer(t, func(c *serve.Config) {
		c.RatePerClient = 0.001 // effectively no refill during the test
		c.RateBurst = 4
	})
	f := testField(t)
	var fb bytes.Buffer
	if err := fieldio.Write(&fb, f); err != nil {
		t.Fatal(err)
	}
	mkItems := func(n int) []batch.Item {
		items := make([]batch.Item, n)
		for i := range items {
			items[i] = batch.Item{ID: uint64(i), Payload: fb.Bytes()}
		}
		return items
	}
	url := fmt.Sprintf("%s/v1/estimate-many?model=nyx-sz&target=%g", ts.URL, midTarget(t, f))
	req := func(n int) (int, string) {
		body := batch.EncodeRequest(mkItems(n))
		hreq, _ := http.NewRequest("POST", url, bytes.NewReader(body))
		hreq.Header.Set(serve.ClientHeader, "batch-client")
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}
	// Burst 4: a 3-item batch passes, then a 2-item batch must be refused
	// (1 token left) with a Retry-After, all-or-nothing.
	if st, _ := req(3); st != 200 {
		t.Fatalf("first batch status %d", st)
	}
	st, retry := req(2)
	if st != http.StatusTooManyRequests {
		t.Fatalf("over-budget batch status %d, want 429", st)
	}
	if retry == "" {
		t.Error("429 without a Retry-After header")
	}
}

// TestBatchOverloadShed: a batch whose admission cost exceeds the free slots
// is shed whole with 429 — no partial ticket, no queueing.
func TestBatchOverloadShed(t *testing.T) {
	ts, _ := newTestServer(t, func(c *serve.Config) { c.MaxInFlight = 2 })
	f := testField(t)
	target := midTarget(t, f)

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(
			fmt.Sprintf("%s/v1/pack?model=nyx-sz&target=%g", ts.URL, target),
			"application/octet-stream", pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != 200 {
				err = fmt.Errorf("slot holder status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
		done <- err
	}()
	waitInFlight(t, ts.URL, 1)

	// Capacity 2 with 1 slot held: a 16-item estimate batch needs
	// ceil(16/8) = 2 slots and must be shed whole.
	var fb bytes.Buffer
	if err := fieldio.Write(&fb, f); err != nil {
		t.Fatal(err)
	}
	items := make([]batch.Item, 16)
	for i := range items {
		items[i] = batch.Item{ID: uint64(i), Payload: fb.Bytes()}
	}
	status, _, body := postBatch(t,
		fmt.Sprintf("%s/v1/estimate-many?model=nyx-sz&target=%g", ts.URL, target), items)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", status, body)
	}

	// A batch within the single free slot still goes through.
	status, results, _ := postBatch(t,
		fmt.Sprintf("%s/v1/estimate-many?model=nyx-sz&target=%g", ts.URL, target), items[:8])
	if status != 200 {
		t.Fatalf("1-slot batch status %d while a slot is free", status)
	}
	for i, r := range results {
		if r.Status != 200 {
			t.Errorf("item %d status %d", i, r.Status)
		}
	}

	var buf bytes.Buffer
	if err := fieldio.Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(pw, &buf); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
