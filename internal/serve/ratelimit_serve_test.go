// Rate-limit tests live in the serve package (not serve_test) so they can
// hand the limiter a fake clock and make the Retry-After values exact. They
// need no trained model: the rate limiter runs before the model registry is
// consulted, so a limited request 429s no matter what the body holds.
package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// newRateLimitedServer builds a server with the given per-client rate and a
// manually advanced clock (mutex-guarded: the limiter reads it from handler
// goroutines), serving an empty models directory.
func newRateLimitedServer(t *testing.T, rate float64, burst int) (*httptest.Server, *Server, func(time.Duration)) {
	t.Helper()
	s := NewServer(Config{ModelsDir: t.TempDir(), MaxInFlight: 4, RatePerClient: rate, RateBurst: burst})
	var mu sync.Mutex
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	s.limits.SetClock(func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s, func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
}

// post sends an unpack request (garbage body — only the limiter's verdict
// matters) tagged with the given client ID.
func post(t *testing.T, url, client string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/unpack", bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		req.Header.Set(ClientHeader, client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestRateLimit429RetryAfter pins the satellite requirement: a rate-limited
// 429 carries a Retry-After derived from the client's actual bucket refill
// time — here 0.5 req/s with burst 1, so an empty bucket is exactly 2
// seconds from a full token.
func TestRateLimit429RetryAfter(t *testing.T) {
	ts, _, advance := newRateLimitedServer(t, 0.5, 1)

	// The first request spends the burst token; it is admitted (and then
	// fails as a 400, which is fine — admission is what's under test).
	if resp := post(t, ts.URL, "c1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("first request status %d, want 400 (admitted, bad blob)", resp.StatusCode)
	}
	// Zero time has passed on the fake clock: the bucket is empty and a full
	// token is 1/0.5 = 2s away.
	resp := post(t, ts.URL, "c1")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("rate-limit Retry-After = %q, want \"2\" (refill-derived)", got)
	}
	// Half the refill later, half the wait remains — the header tracks the
	// bucket, it is not a constant.
	advance(time.Second)
	if resp := post(t, ts.URL, "c1"); resp.Header.Get("Retry-After") != "1" {
		t.Errorf("after 1s, Retry-After = %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
	// A full refill later the client is admitted again.
	advance(time.Second)
	if resp := post(t, ts.URL, "c1"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("after full refill, status %d, want 400 (admitted)", resp.StatusCode)
	}
}

// TestRateLimitIsPerClient: one client exhausting its bucket must not affect
// another, and requests without the client header fall back to the remote
// address (which httptest keeps constant, so they share one bucket).
func TestRateLimitIsPerClient(t *testing.T) {
	ts, _, _ := newRateLimitedServer(t, 1, 1)
	if resp := post(t, ts.URL, "a"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("a's first request: status %d", resp.StatusCode)
	}
	if resp := post(t, ts.URL, "a"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatal("a's second request was not limited")
	}
	if resp := post(t, ts.URL, "b"); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("b was limited by a's traffic")
	}
	// Headerless requests key on the loopback address: the second one in the
	// same instant is limited.
	if resp := post(t, ts.URL, ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("first headerless request was limited")
	}
	if resp := post(t, ts.URL, ""); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatal("second headerless request was not limited")
	}
}

// TestRateLimitDisabledByDefault: the zero config never 429s on rate (the
// flat admission behavior every existing test depends on).
func TestRateLimitDisabledByDefault(t *testing.T) {
	s := NewServer(Config{ModelsDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for k := 0; k < 20; k++ {
		if resp := post(t, ts.URL, "hammer"); resp.StatusCode == http.StatusTooManyRequests {
			t.Fatalf("request %d rate-limited with no rate configured", k)
		}
	}
}

// TestLightEndpointsNotLimited: health and metrics stay reachable for a
// rate-limited client — shedding the diagnostics would hide the overload.
func TestLightEndpointsNotLimited(t *testing.T) {
	ts, _, _ := newRateLimitedServer(t, 0.5, 1)
	post(t, ts.URL, "c1") // spend the bucket
	for _, path := range []string{"/healthz", "/v1/models", "/metrics"} {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		req.Header.Set(ClientHeader, "c1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s for a limited client: status %d, want 200", path, resp.StatusCode)
		}
	}
}
