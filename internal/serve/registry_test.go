package serve_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/serve"
)

func TestRegistryBadIDs(t *testing.T) {
	r := serve.NewRegistry(modelsDir, 2)
	for _, id := range []string{
		"", "../escape", "a/b", "a\\b", ".hidden", "..", "with space",
		"null\x00byte", strings.Repeat("x", 129),
	} {
		if _, err := r.Get(context.Background(), id); !errors.Is(err, serve.ErrBadModelID) {
			t.Errorf("id %q: err = %v, want ErrBadModelID", id, err)
		}
	}
}

func TestRegistryUnknownModel(t *testing.T) {
	r := serve.NewRegistry(modelsDir, 2)
	if _, err := r.Get(context.Background(), "no-such-model"); !errors.Is(err, serve.ErrUnknownModel) {
		t.Fatalf("err = %v, want ErrUnknownModel", err)
	}
	// A failed load must not be cached: the registry stays empty.
	if res := r.Resident(); len(res) != 0 {
		t.Errorf("resident after failed load: %v", res)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	r := serve.NewRegistry(modelsDir, 2)
	ctx := context.Background()
	get := func(id string) {
		t.Helper()
		if _, err := r.Get(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	get("m0")
	get("m1")
	get("m0") // m0 is now most recent; m1 is the eviction victim
	get("m2") // evicts m1
	res := r.Resident()
	if len(res) != 2 || res[0] != "m0" || res[1] != "m2" {
		t.Fatalf("resident = %v, want [m0 m2]", res)
	}
	// Re-fetching the evicted model reloads it and evicts the LRU (m0).
	get("m1")
	res = r.Resident()
	if len(res) != 2 || res[0] != "m2" || res[1] != "m1" {
		t.Fatalf("resident = %v, want [m2 m1]", res)
	}
}

// TestRegistrySingleFlight issues many concurrent Gets for one cold model
// and checks exactly one disk load happened: all callers get the same
// framework pointer and the miss counter moves by one.
func TestRegistrySingleFlight(t *testing.T) {
	r := serve.NewRegistry(modelsDir, 4)
	before := obs.TakeSnapshot().Counters["serve/model_cache/misses"]

	const callers = 16
	var wg sync.WaitGroup
	results := make([]any, callers)
	errs := make([]error, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			fw, err := r.Get(context.Background(), "m3")
			results[i], errs[i] = fw, err
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Errorf("caller %d got a different framework instance", i)
		}
	}
	after := obs.TakeSnapshot().Counters["serve/model_cache/misses"]
	if after-before != 1 {
		t.Errorf("cold load ran %d times, want 1 (single-flight)", after-before)
	}
}

// TestRegistryFlightWaiterCancel detaches a waiter whose context expires
// while another caller's load is in progress; the load itself must still
// complete and populate the cache.
func TestRegistryFlightWaiterCancel(t *testing.T) {
	r := serve.NewRegistry(modelsDir, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A pre-cancelled context still succeeds on a cache hit path, but a
	// waiter joining an in-flight load returns ctx.Err(). Exercising the
	// exact interleaving deterministically would need load hooks; instead,
	// assert the weaker contract: Get with a dead context either succeeds
	// (it won the load or hit the cache) or fails with the context's error.
	fw, err := r.Get(ctx, "m2")
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want nil or context.Canceled", err)
	}
	if err == nil && fw == nil {
		t.Fatal("nil framework without error")
	}
	// The model must be servable afterwards regardless of the outcome above.
	if _, err := r.Get(context.Background(), "m2"); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryCorruptModelNotCached(t *testing.T) {
	r := serve.NewRegistry(modelsDir, 2)
	for i := 0; i < 2; i++ {
		_, err := r.Get(context.Background(), "corrupt")
		if err == nil {
			t.Fatal("corrupt model loaded")
		}
		if errors.Is(err, serve.ErrUnknownModel) || errors.Is(err, serve.ErrBadModelID) {
			t.Fatalf("corrupt model misclassified: %v", err)
		}
	}
	if res := r.Resident(); len(res) != 0 {
		t.Errorf("corrupt model resident: %v", res)
	}
}
