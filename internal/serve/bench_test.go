package serve_test

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/fieldio"
	"github.com/fxrz-go/fxrz/internal/serve"
)

// The BenchmarkServe* pairs measure what the HTTP layer costs on top of the
// library: the `direct` variant calls the framework in-process, the `http`
// variant sends the same work through a real server round trip (routing,
// admission, container parse, response write). BENCH_serve.json records the
// http/direct overhead ratio per endpoint and benchguard gates it — the
// serving layer must stay a wrapper, not a tax. Ratios are within-run, so
// the gate is meaningful on any machine. Re-record with `make bench-serve`.

// benchEnv is the shared benchmark fixture: one server, one field, one
// pre-compressed stream, all reusing the TestMain-trained model.
type benchEnv struct {
	ts      *httptest.Server
	field   *fxrz.Field
	body    []byte // field as an fxrzfield container
	blob    []byte // field compressed at target
	target  float64
	fwBound *fxrz.Framework // parallelism-bound framework, as the server uses it
}

func newBenchEnv(b *testing.B) *benchEnv {
	b.Helper()
	f, err := datagenField()
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := trainedFW.ValidRatioRange(f)
	target := lo + 0.5*(hi-lo)
	var buf bytes.Buffer
	if err := fieldio.Write(&buf, f); err != nil {
		b.Fatal(err)
	}
	blob, _, err := trainedFW.CompressToRatio(f, target)
	if err != nil {
		b.Fatal(err)
	}
	s := serve.NewServer(serve.Config{ModelsDir: modelsDir, Parallelism: 1})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	// Warm the model cache so benchmarks measure serving, not the cold load.
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	return &benchEnv{
		ts: ts, field: f, body: buf.Bytes(), blob: blob, target: target,
		fwBound: trainedFW.WithParallelism(1),
	}
}

func datagenField() (*fxrz.Field, error) {
	return datagen.NyxField("baryon_density", 2, 2, 24)
}

func (e *benchEnv) post(b *testing.B, path string, body []byte) []byte {
	b.Helper()
	resp, err := http.Post(e.ts.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	out, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		b.Fatal(rerr)
	}
	if resp.StatusCode != 200 {
		b.Fatalf("%s: status %d: %s", path, resp.StatusCode, out)
	}
	return out
}

func BenchmarkServeEstimate(b *testing.B) {
	e := newBenchEnv(b)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.fwBound.EstimateConfig(e.field, e.target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http", func(b *testing.B) {
		path := fmt.Sprintf("/v1/estimate?model=nyx-sz&target=%g", e.target)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.post(b, path, e.body)
		}
	})
}

func BenchmarkServePack(b *testing.B) {
	e := newBenchEnv(b)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := e.fwBound.CompressToRatio(e.field, e.target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http", func(b *testing.B) {
		path := fmt.Sprintf("/v1/pack?model=nyx-sz&target=%g", e.target)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.post(b, path, e.body)
		}
	})
}

func BenchmarkServeUnpack(b *testing.B) {
	e := newBenchEnv(b)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fxrz.Decompress(e.blob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.post(b, "/v1/unpack", e.blob)
		}
	})
}
