package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/batch"
	"github.com/fxrz-go/fxrz/internal/datagen"
	"github.com/fxrz-go/fxrz/internal/fieldio"
	"github.com/fxrz-go/fxrz/internal/serve"
)

// The BenchmarkServe* pairs measure what the HTTP layer costs on top of the
// library: the `direct` variant calls the framework in-process, the `http`
// variant sends the same work through a real server round trip (routing,
// admission, container parse, response write). BENCH_serve.json records the
// http/direct overhead ratio per endpoint and benchguard gates it — the
// serving layer must stay a wrapper, not a tax. Ratios are within-run, so
// the gate is meaningful on any machine. Re-record with `make bench-serve`.

// benchEnv is the shared benchmark fixture: one server, one field, one
// pre-compressed stream, all reusing the TestMain-trained model.
type benchEnv struct {
	ts      *httptest.Server
	field   *fxrz.Field
	body    []byte // field as an fxrzfield container
	blob    []byte // field compressed at target
	target  float64
	fwBound *fxrz.Framework // parallelism-bound framework, as the server uses it
}

func newBenchEnv(b *testing.B) *benchEnv {
	b.Helper()
	f, err := datagenField()
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := trainedFW.ValidRatioRange(f)
	target := lo + 0.5*(hi-lo)
	var buf bytes.Buffer
	if err := fieldio.Write(&buf, f); err != nil {
		b.Fatal(err)
	}
	blob, _, err := trainedFW.CompressToRatio(f, target)
	if err != nil {
		b.Fatal(err)
	}
	s := serve.NewServer(serve.Config{ModelsDir: modelsDir, Parallelism: 1})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	// Warm the model cache so benchmarks measure serving, not the cold load.
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	return &benchEnv{
		ts: ts, field: f, body: buf.Bytes(), blob: blob, target: target,
		fwBound: trainedFW.WithParallelism(1),
	}
}

func datagenField() (*fxrz.Field, error) {
	return datagen.NyxField("baryon_density", 2, 2, 24)
}

func (e *benchEnv) post(b *testing.B, path string, body []byte) []byte {
	b.Helper()
	resp, err := http.Post(e.ts.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	out, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		b.Fatal(rerr)
	}
	if resp.StatusCode != 200 {
		b.Fatalf("%s: status %d: %s", path, resp.StatusCode, out)
	}
	return out
}

func BenchmarkServeEstimate(b *testing.B) {
	e := newBenchEnv(b)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.fwBound.EstimateConfig(e.field, e.target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http", func(b *testing.B) {
		path := fmt.Sprintf("/v1/estimate?model=nyx-sz&target=%g", e.target)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.post(b, path, e.body)
		}
	})
}

func BenchmarkServePack(b *testing.B) {
	e := newBenchEnv(b)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := e.fwBound.CompressToRatio(e.field, e.target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http", func(b *testing.B) {
		path := fmt.Sprintf("/v1/pack?model=nyx-sz&target=%g", e.target)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.post(b, path, e.body)
		}
	})
}

// The BenchmarkServeBatch* family measures the amortization curve the
// /v1/*-many endpoints exist for: the same item at batch sizes 1/4/16/64,
// whole-batch ns/op. benchguard divides by the /bN subname to get per-item
// cost and gates the floor — per-item estimate at batch 16 must be at least
// 3x cheaper than batch 1, and per-item cost must fall monotonically with
// batch size (with slack for loopback transport noise on the big-body
// curves). Re-record with `make bench-serve`.

// batchPayload wraps n copies of body into one request container.
func batchPayload(n int, body []byte) []byte {
	items := make([]batch.Item, n)
	for i := range items {
		items[i] = batch.Item{ID: uint64(i), Payload: body}
	}
	return batch.EncodeRequest(items)
}

// checkBatch validates one response container outside the timed loop: all n
// items must come back 200 or the curve measures error paths.
func (e *benchEnv) checkBatch(b *testing.B, path string, payload []byte, n int) {
	b.Helper()
	results, err := batch.DecodeResponse(e.post(b, path, payload))
	if err != nil {
		b.Fatal(err)
	}
	if len(results) != n {
		b.Fatalf("%d results for %d items", len(results), n)
	}
	for _, r := range results {
		if r.Status != 200 {
			b.Fatalf("item %d status %d: %s", r.ID, r.Status, r.Payload)
		}
	}
}

func benchBatchSizes(b *testing.B, e *benchEnv, path string, body []byte) {
	b.Helper()
	for _, n := range []int{1, 4, 16, 64} {
		payload := batchPayload(n, body)
		b.Run(fmt.Sprintf("b%d", n), func(b *testing.B) {
			e.checkBatch(b, path, payload, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.post(b, path, payload)
			}
		})
	}
}

// BenchmarkServeBatchEstimate batches the features-mode estimate — the knob
// query whose own work is microseconds, so the curve isolates the fixed
// per-request cost (round trip, routing, admission, container handling) that
// batching exists to amortize. Field-payload estimates spend ~200us per item
// on feature extraction, which caps the visible amortization regardless of
// how cheap the per-request overhead gets.
func BenchmarkServeBatchEstimate(b *testing.B) {
	e := newBenchEnv(b)
	ft := fxrz.ExtractFeatures(e.field, 4)
	est, err := e.fwBound.EstimateConfig(e.field, e.target)
	if err != nil {
		b.Fatal(err)
	}
	featJSON, err := json.Marshal(serve.FeaturesRequest{
		ValueRange: ft.ValueRange, MeanValue: ft.MeanValue,
		MND: ft.MND, MLD: ft.MLD, MSD: ft.MSD, CARatio: est.NonConstantR,
	})
	if err != nil {
		b.Fatal(err)
	}
	benchBatchSizes(b, e, fmt.Sprintf("/v1/estimate-many?model=nyx-sz&target=%g", e.target), featJSON)
}

func BenchmarkServeBatchPack(b *testing.B) {
	e := newBenchEnv(b)
	benchBatchSizes(b, e, fmt.Sprintf("/v1/pack-many?model=nyx-sz&target=%g", e.target), e.body)
}

func BenchmarkServeBatchUnpack(b *testing.B) {
	e := newBenchEnv(b)
	benchBatchSizes(b, e, "/v1/unpack-many", e.blob)
}

func BenchmarkServeUnpack(b *testing.B) {
	e := newBenchEnv(b)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := fxrz.Decompress(e.blob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.post(b, "/v1/unpack", e.blob)
		}
	})
}
