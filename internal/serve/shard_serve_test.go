// Sharded serving end to end: real multi-instance rings over loopback
// listeners, scatter-gather merge identity against a single instance, and
// fault injection at the serving layer — a dead shard, a corrupt peer
// response, an always-5xx peer, a shed local slice. Retries are observed
// through obs counters and recorded sleeps, never wall-clock waits.
package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	fxrz "github.com/fxrz-go/fxrz"
	"github.com/fxrz-go/fxrz/internal/batch"
	"github.com/fxrz-go/fxrz/internal/fieldio"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/serve"
	"github.com/fxrz-go/fxrz/internal/shard"
)

// shardCluster starts n HTTP endpoints whose base URLs form one static
// ring. An index with a handler in fakes serves that handler instead of a
// real serve.Server — fault injection slots for corrupt, 5xx, or refusing
// peers. Real instances get a no-op recorded sleep so no retry in the
// suite ever wall-waits. stop(i) kills instance i mid-test.
func shardCluster(t *testing.T, n int, mutate func(i int, c *serve.Config), fakes map[int]http.Handler) (bases []string, servers []*serve.Server, stop func(i int)) {
	t.Helper()
	lns := make([]net.Listener, n)
	bases = make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		bases[i] = "http://" + ln.Addr().String()
	}
	servers = make([]*serve.Server, n)
	httpSrvs := make([]*http.Server, n)
	for i := range lns {
		var h http.Handler
		if fake, ok := fakes[i]; ok {
			h = fake
		} else {
			cfg := serve.Config{ModelsDir: modelsDir, Peers: append([]string(nil), bases...), Self: bases[i]}
			if mutate != nil {
				mutate(i, &cfg)
			}
			s := serve.NewServer(cfg)
			s.ShardRouter().SetSleep(func(time.Duration) {})
			servers[i] = s
			h = s.Handler()
		}
		httpSrvs[i] = &http.Server{Handler: h}
		go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(httpSrvs[i], lns[i])
	}
	t.Cleanup(func() {
		for i := range httpSrvs {
			_ = httpSrvs[i].Close()
		}
	})
	return bases, servers, func(i int) { _ = httpSrvs[i].Close() }
}

// keysOwnedBy generates count distinct shard-key values the ring places on
// owner — the same placement every instance of the cluster computes.
func keysOwnedBy(t *testing.T, bases []string, owner string, count int) []string {
	t.Helper()
	ring, err := shard.NewRing(bases[0], bases)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; len(keys) < count; i++ {
		if i > 100000 {
			t.Fatalf("no %d keys owned by %s in 100k candidates", count, owner)
		}
		k := fmt.Sprintf("key-%05d", i)
		if ring.Owner(k) == owner {
			keys = append(keys, k)
		}
	}
	return keys
}

// featuresPayload builds a deterministic features-mode estimate body.
func featuresPayload(t *testing.T, f *fxrz.Field, target float64) []byte {
	t.Helper()
	full, err := trainedFW.EstimateConfig(f, target)
	if err != nil {
		t.Fatal(err)
	}
	ft := fxrz.ExtractFeatures(f, 4)
	body, _ := json.Marshal(serve.FeaturesRequest{
		ValueRange: ft.ValueRange, MeanValue: ft.MeanValue,
		MND: ft.MND, MLD: ft.MLD, MSD: ft.MSD, CARatio: full.NonConstantR,
	})
	return body
}

// estimateModuloTime strips the wall-clock AnalysisMS and re-marshals, so
// two estimate payloads can be compared bit-wise.
func estimateModuloTime(t *testing.T, payload []byte) []byte {
	t.Helper()
	var er serve.EstimateResponse
	if err := json.Unmarshal(payload, &er); err != nil {
		t.Fatalf("estimate payload %q: %v", payload, err)
	}
	er.AnalysisMS = 0
	out, _ := json.Marshal(er)
	return out
}

// TestScatterEstimateMatchesSingleInstance: a mixed-shard estimate batch
// through a two-instance ring answers item for item what a single instance
// answers (modulo the wall-clock AnalysisMS), with the remote items
// observably forwarded.
func TestScatterEstimateMatchesSingleInstance(t *testing.T) {
	bases, _, _ := shardCluster(t, 2, nil, nil)
	single, _ := newTestServer(t, nil)
	f := testField(t)
	target := midTarget(t, f)
	feat := featuresPayload(t, f, target)

	localKeys := keysOwnedBy(t, bases, bases[0], 2)
	remoteKeys := keysOwnedBy(t, bases, bases[1], 2)
	items := []batch.Item{
		{ID: 0, Params: "shard-key=" + localKeys[0], Payload: feat},
		{ID: 1, Params: "shard-key=" + remoteKeys[0], Payload: feat},
		{ID: 2, Params: "shard-key=" + remoteKeys[1] + "&model=m0", Payload: feat},
		{ID: 3, Params: "shard-key=" + localKeys[1], Payload: feat},
	}
	url := fmt.Sprintf("/v1/estimate-many?model=nyx-sz&target=%g", target)

	before := obs.TakeSnapshot()
	status, got, _ := postBatch(t, bases[0]+url, items)
	after := obs.TakeSnapshot()
	if status != 200 {
		t.Fatalf("cluster outer status %d", status)
	}
	st2, want, _ := postBatch(t, single.URL+url, items)
	if st2 != 200 {
		t.Fatalf("single-instance outer status %d", st2)
	}
	for i := range items {
		if got[i].ID != items[i].ID {
			t.Fatalf("result %d echoes ID %d, want %d", i, got[i].ID, items[i].ID)
		}
		if got[i].Status != 200 {
			t.Fatalf("item %d status %d: %s", i, got[i].Status, got[i].Payload)
		}
		g := estimateModuloTime(t, got[i].Payload)
		w := estimateModuloTime(t, want[i].Payload)
		if !bytes.Equal(g, w) {
			t.Errorf("item %d diverged from single-instance:\ncluster: %s\n single: %s", i, g, w)
		}
	}
	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	if d := delta("shard/forwarded"); d != 2 {
		t.Errorf("shard/forwarded delta = %d, want 2 (the remote-keyed items)", d)
	}
	if d := delta("shard/merged"); d != 1 {
		t.Errorf("shard/merged delta = %d, want 1", d)
	}
	if d := delta("shard/local_items"); d != 2 {
		// Counted by the entry shard's merge only; the peer's forwarded slice
		// runs the plain (non-routing) path.
		t.Errorf("shard/local_items delta = %d, want 2", d)
	}
}

// TestScatterPackUnpackBitIdentical: pack-many and a mixed-shard
// unpack-many (with item-level regions) through the ring return payloads
// bit-identical to the single instance.
func TestScatterPackUnpackBitIdentical(t *testing.T) {
	bases, _, _ := shardCluster(t, 2, nil, nil)
	single, _ := newTestServer(t, nil)
	f := testField(t)
	target := midTarget(t, f)
	var fb bytes.Buffer
	if err := fieldio.Write(&fb, f); err != nil {
		t.Fatal(err)
	}
	blob, _, err := trainedFW.CompressToRatio(f, target)
	if err != nil {
		t.Fatal(err)
	}

	localKeys := keysOwnedBy(t, bases, bases[0], 2)
	remoteKeys := keysOwnedBy(t, bases, bases[1], 2)

	packItems := []batch.Item{
		{ID: 0, Params: "shard-key=" + localKeys[0], Payload: fb.Bytes()},
		{ID: 1, Params: "shard-key=" + remoteKeys[0], Payload: fb.Bytes()},
	}
	packURL := fmt.Sprintf("/v1/pack-many?model=nyx-sz&target=%g", target)
	status, got, _ := postBatch(t, bases[0]+packURL, packItems)
	if status != 200 {
		t.Fatalf("cluster pack-many status %d", status)
	}
	st2, want, _ := postBatch(t, single.URL+packURL, packItems)
	if st2 != 200 {
		t.Fatalf("single pack-many status %d", st2)
	}
	for i := range packItems {
		if got[i].Status != 200 {
			t.Fatalf("pack item %d status %d: %s", i, got[i].Status, got[i].Payload)
		}
		if !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("pack item %d stream not bit-identical to single-instance", i)
		}
	}

	const region = "4:20,8:21,2:17"
	unpackItems := []batch.Item{
		{ID: 10, Params: "shard-key=" + remoteKeys[0] + "&region=" + region, Payload: blob},
		{ID: 11, Params: "shard-key=" + localKeys[0], Payload: blob},
		{ID: 12, Params: "shard-key=" + remoteKeys[1], Payload: blob},
		{ID: 13, Params: "shard-key=" + localKeys[1] + "&region=" + region, Payload: blob},
	}
	status, got, _ = postBatch(t, bases[0]+"/v1/unpack-many", unpackItems)
	if status != 200 {
		t.Fatalf("cluster unpack-many status %d", status)
	}
	st2, want, _ = postBatch(t, single.URL+"/v1/unpack-many", unpackItems)
	if st2 != 200 {
		t.Fatalf("single unpack-many status %d", st2)
	}
	for i := range unpackItems {
		if got[i].Status != 200 {
			t.Fatalf("unpack item %d status %d: %s", i, got[i].Status, got[i].Payload)
		}
		if !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("unpack item %d field not bit-identical to single-instance", i)
		}
	}
}

// TestScatterDeadPeer: killing one of two shards mid-ring fails exactly
// that shard's items with per-item 503s — the outer response stays 200,
// the surviving shard's items answer bit-identically to a single instance,
// and the retries stay within the bounded budget (observed, not slept).
func TestScatterDeadPeer(t *testing.T) {
	bases, _, stop := shardCluster(t, 2, nil, nil)
	single, _ := newTestServer(t, nil)
	f := testField(t)
	target := midTarget(t, f)
	feat := featuresPayload(t, f, target)

	localKeys := keysOwnedBy(t, bases, bases[0], 2)
	remoteKeys := keysOwnedBy(t, bases, bases[1], 2)
	items := []batch.Item{
		{ID: 0, Params: "shard-key=" + localKeys[0], Payload: feat},
		{ID: 1, Params: "shard-key=" + remoteKeys[0], Payload: feat},
		{ID: 2, Params: "shard-key=" + localKeys[1], Payload: feat},
		{ID: 3, Params: "shard-key=" + remoteKeys[1], Payload: feat},
	}
	url := fmt.Sprintf("/v1/estimate-many?model=nyx-sz&target=%g", target)

	stop(1) // shard B dies before the batch arrives

	before := obs.TakeSnapshot()
	status, got, _ := postBatch(t, bases[0]+url, items)
	after := obs.TakeSnapshot()
	if status != 200 {
		t.Fatalf("outer status %d — a dead peer must not fail the whole batch", status)
	}
	wantStatus := []int{200, 503, 200, 503}
	for i, r := range got {
		if r.Status != wantStatus[i] {
			t.Errorf("item %d status %d, want %d (%s)", i, r.Status, wantStatus[i], r.Payload)
		}
	}
	// The healthy items answer exactly like a single instance.
	st2, want, _ := postBatch(t, single.URL+url, items)
	if st2 != 200 {
		t.Fatalf("single-instance status %d", st2)
	}
	for _, i := range []int{0, 2} {
		if !bytes.Equal(estimateModuloTime(t, got[i].Payload), estimateModuloTime(t, want[i].Payload)) {
			t.Errorf("surviving item %d diverged from single-instance", i)
		}
	}
	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	if d := delta("shard/retry"); d != shard.DefaultRetries {
		t.Errorf("shard/retry delta = %d, want %d (bounded budget)", d, shard.DefaultRetries)
	}
	if d := delta("shard/peer_err"); d != 1 {
		t.Errorf("shard/peer_err delta = %d, want 1 (one failed sub-batch)", d)
	}
}

// TestScatterCorruptPeer: a peer answering 200 with an undecodable response
// container fails only its own sub-batch, with per-item 400s and zero
// retries — corrupt bytes must never be silently merged or re-fetched.
func TestScatterCorruptPeer(t *testing.T) {
	corrupt := func(w http.ResponseWriter, r *http.Request) {
		// A well-formed container whose CRC was flipped in flight.
		body := batch.EncodeResponse([]batch.Result{{ID: 0, Status: 200, Payload: []byte("x")}})
		body[len(body)-1] ^= 0x01
		_, _ = w.Write(body)
	}
	bases, _, _ := shardCluster(t, 2, nil, map[int]http.Handler{1: http.HandlerFunc(corrupt)})
	f := testField(t)
	target := midTarget(t, f)
	feat := featuresPayload(t, f, target)

	localKeys := keysOwnedBy(t, bases, bases[0], 1)
	remoteKeys := keysOwnedBy(t, bases, bases[1], 2)
	items := []batch.Item{
		{ID: 0, Params: "shard-key=" + remoteKeys[0], Payload: feat},
		{ID: 1, Params: "shard-key=" + localKeys[0], Payload: feat},
		{ID: 2, Params: "shard-key=" + remoteKeys[1], Payload: feat},
	}
	before := obs.TakeSnapshot()
	status, got, _ := postBatch(t, bases[0]+fmt.Sprintf("/v1/estimate-many?model=nyx-sz&target=%g", target), items)
	after := obs.TakeSnapshot()
	if status != 200 {
		t.Fatalf("outer status %d", status)
	}
	wantStatus := []int{400, 200, 400}
	for i, r := range got {
		if r.Status != wantStatus[i] {
			t.Errorf("item %d status %d, want %d (%s)", i, r.Status, wantStatus[i], r.Payload)
		}
	}
	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	if d := delta("shard/retry"); d != 0 {
		t.Errorf("shard/retry delta = %d, want 0 (corruption must not retry)", d)
	}
	if d := delta("shard/peer_err"); d != 1 {
		t.Errorf("shard/peer_err delta = %d, want 1", d)
	}
}

// TestScatterRefusingPeers: an always-5xx peer exhausts the bounded retry
// budget and 503s its items; a peer shedding with 429 passes its refusal
// through per item without any retry.
func TestScatterRefusingPeers(t *testing.T) {
	cases := []struct {
		name        string
		peerStatus  int
		wantStatus  int
		wantRetries int64
	}{
		{"always 503", http.StatusServiceUnavailable, 503, shard.DefaultRetries},
		{"peer shed 429", http.StatusTooManyRequests, 429, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fake := func(w http.ResponseWriter, r *http.Request) { http.Error(w, tc.name, tc.peerStatus) }
			bases, _, _ := shardCluster(t, 2, nil, map[int]http.Handler{1: http.HandlerFunc(fake)})
			f := testField(t)
			target := midTarget(t, f)
			feat := featuresPayload(t, f, target)

			localKeys := keysOwnedBy(t, bases, bases[0], 1)
			remoteKeys := keysOwnedBy(t, bases, bases[1], 1)
			items := []batch.Item{
				{ID: 0, Params: "shard-key=" + localKeys[0], Payload: feat},
				{ID: 1, Params: "shard-key=" + remoteKeys[0], Payload: feat},
			}
			before := obs.TakeSnapshot()
			status, got, _ := postBatch(t, bases[0]+fmt.Sprintf("/v1/estimate-many?model=nyx-sz&target=%g", target), items)
			after := obs.TakeSnapshot()
			if status != 200 {
				t.Fatalf("outer status %d", status)
			}
			if got[0].Status != 200 {
				t.Errorf("local item status %d, want 200 (%s)", got[0].Status, got[0].Payload)
			}
			if got[1].Status != tc.wantStatus {
				t.Errorf("remote item status %d, want %d (%s)", got[1].Status, tc.wantStatus, got[1].Payload)
			}
			if d := after.Counters["shard/retry"] - before.Counters["shard/retry"]; d != tc.wantRetries {
				t.Errorf("shard/retry delta = %d, want %d", d, tc.wantRetries)
			}
		})
	}
}

// TestScatterLocalShed: when the entry shard's own rate limit refuses the
// local slice, those items carry per-item 429s while the forwarded items
// still succeed — a local shed never poisons the remote half of the merge.
func TestScatterLocalShed(t *testing.T) {
	bases, _, _ := shardCluster(t, 2, func(i int, c *serve.Config) {
		if i == 0 {
			c.RatePerClient = 0.001 // effectively no refill during the test
			c.RateBurst = 1
		}
	}, nil)
	f := testField(t)
	target := midTarget(t, f)
	feat := featuresPayload(t, f, target)

	localKeys := keysOwnedBy(t, bases, bases[0], 2)
	remoteKeys := keysOwnedBy(t, bases, bases[1], 1)
	items := []batch.Item{
		{ID: 0, Params: "shard-key=" + localKeys[0], Payload: feat},
		{ID: 1, Params: "shard-key=" + remoteKeys[0], Payload: feat},
		{ID: 2, Params: "shard-key=" + localKeys[1], Payload: feat},
	}
	// The 2-item local slice overdraws the burst of 1; the forwarded item is
	// charged at the peer, whose limiter is disabled.
	body := batch.EncodeRequest(items)
	req, _ := http.NewRequest("POST", bases[0]+fmt.Sprintf("/v1/estimate-many?model=nyx-sz&target=%g", target), bytes.NewReader(body))
	req.Header.Set(serve.ClientHeader, "shed-client")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("outer status %d — a local shed must stay per-item in scatter mode (%s)", resp.StatusCode, raw)
	}
	got, err := batch.DecodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus := []int{429, 200, 429}
	for i, r := range got {
		if r.Status != wantStatus[i] {
			t.Errorf("item %d status %d, want %d (%s)", i, r.Status, wantStatus[i], r.Payload)
		}
	}
}

// TestScatterForwardedMarkerExecutesLocally: a sub-batch carrying the
// forwarded marker executes where it lands, even for keys the ring places
// elsewhere — the loop-prevention contract (all instances agree on owners,
// so re-routing could only bounce forever).
func TestScatterForwardedMarkerExecutesLocally(t *testing.T) {
	bases, _, _ := shardCluster(t, 2, nil, nil)
	f := testField(t)
	target := midTarget(t, f)
	feat := featuresPayload(t, f, target)

	// Keys owned by shard A, posted to shard B with the forwarded marker:
	// B must answer them itself, forwarding nothing.
	keysA := keysOwnedBy(t, bases, bases[0], 2)
	items := []batch.Item{
		{ID: 0, Params: "shard-key=" + keysA[0], Payload: feat},
		{ID: 1, Params: "shard-key=" + keysA[1], Payload: feat},
	}
	body := batch.EncodeRequest(items)
	req, _ := http.NewRequest("POST", bases[1]+fmt.Sprintf("/v1/estimate-many?model=nyx-sz&target=%g", target), bytes.NewReader(body))
	req.Header.Set(shard.ForwardedHeader, "1")

	before := obs.TakeSnapshot()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	after := obs.TakeSnapshot()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	got, err := batch.DecodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.Status != 200 {
			t.Errorf("item %d status %d: %s", i, r.Status, r.Payload)
		}
	}
	if d := after.Counters["shard/forwarded"] - before.Counters["shard/forwarded"]; d != 0 {
		t.Errorf("shard/forwarded delta = %d, want 0 (marked sub-batches must not re-route)", d)
	}
}

// TestShardHealthzShape pins the /healthz JSON contract a load balancer
// weights shards by: the exact top-level key set, the model census, and
// live cache hit/miss accounting — plus the ring membership block on a
// sharded instance (and its absence on a single instance).
func TestShardHealthzShape(t *testing.T) {
	ts, _ := newTestServer(t, nil)
	f := testField(t)
	target := midTarget(t, f)
	feat := featuresPayload(t, f, target)

	// Two estimates against one model: one cold load, one cache hit.
	for i := 0; i < 2; i++ {
		st, body := postSingle(t, fmt.Sprintf("%s/v1/estimate?model=nyx-sz&target=%g", ts.URL, target), "application/json", feat)
		if st != 200 {
			t.Fatalf("estimate %d status %d: %s", i, st, body)
		}
	}

	fetch := func(url string) map[string]json.RawMessage {
		t.Helper()
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	m := fetch(ts.URL)
	wantKeys := []string{"status", "in_flight", "admission_slots", "classes", "model_count", "model_cache", "resident_models"}
	for _, k := range wantKeys {
		if _, ok := m[k]; !ok {
			t.Errorf("healthz missing %q", k)
		}
	}
	if len(m) != len(wantKeys) {
		t.Errorf("healthz has %d top-level keys, want exactly %d: %v", len(m), len(wantKeys), m)
	}
	var health serve.HealthResponse
	raw, _ := json.Marshal(m)
	if err := json.Unmarshal(raw, &health); err != nil {
		t.Fatal(err)
	}
	// 5 fixture IDs + corrupt.fxm; README.txt skipped.
	if health.ModelCount != len(modelIDs)+1 {
		t.Errorf("model_count = %d, want %d", health.ModelCount, len(modelIDs)+1)
	}
	if health.ModelCache.Hits != 1 || health.ModelCache.Misses != 1 {
		t.Errorf("model_cache hits/misses = %d/%d, want 1/1", health.ModelCache.Hits, health.ModelCache.Misses)
	}
	if health.ModelCache.Resident != 1 || health.ModelCache.Capacity != 8 {
		t.Errorf("model_cache resident/capacity = %d/%d, want 1/8", health.ModelCache.Resident, health.ModelCache.Capacity)
	}
	if len(health.ResidentModels) != 1 || health.ResidentModels[0] != "nyx-sz" {
		t.Errorf("resident_models = %v, want [nyx-sz]", health.ResidentModels)
	}

	// A sharded instance reports its ring; a single instance has no shard key.
	bases, _, _ := shardCluster(t, 2, nil, nil)
	ms := fetch(bases[0])
	rawShard, ok := ms["shard"]
	if !ok {
		t.Fatal("sharded healthz missing the shard block")
	}
	var ss serve.ShardStatus
	if err := json.Unmarshal(rawShard, &ss); err != nil {
		t.Fatal(err)
	}
	if ss.Self != bases[0] || len(ss.Peers) != 2 {
		t.Errorf("shard block = %+v, want self %s and 2 peers", ss, bases[0])
	}
}
