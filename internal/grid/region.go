package grid

import "fmt"

// Region helpers shared by the region-of-interest decode paths: bounds
// validation, subvolume extraction, and a zero-allocation iterator.
//
// A region is a half-open axis-aligned box [lo, hi) with the same rank as the
// field it addresses, in the field's own (slowest-first) coordinate order.

// CheckRegion validates a half-open region against dims: lo and hi must have
// the same rank as dims, and 0 <= lo[d] < hi[d] <= dims[d] for every d.
func CheckRegion(dims, lo, hi []int) error {
	if len(lo) != len(dims) || len(hi) != len(dims) {
		return fmt.Errorf("grid: region rank %d:%d does not match %d field dims", len(lo), len(hi), len(dims))
	}
	for d := range dims {
		if lo[d] < 0 || hi[d] > dims[d] || lo[d] >= hi[d] {
			return fmt.Errorf("grid: region [%d:%d) out of bounds for dim %d (extent %d)", lo[d], hi[d], d, dims[d])
		}
	}
	return nil
}

// SliceRegion copies the half-open subvolume [lo, hi) of f into a new field
// of shape hi-lo. Rows along the fastest dimension are contiguous in both
// layouts, so they are copied whole.
func SliceRegion(f *Field, lo, hi []int) (*Field, error) {
	if err := CheckRegion(f.Dims, lo, hi); err != nil {
		return nil, err
	}
	nd := len(f.Dims)
	shape := make([]int, nd)
	for d := range shape {
		shape[d] = hi[d] - lo[d]
	}
	out, err := New(f.Name, shape...)
	if err != nil {
		return nil, err
	}
	strides := f.Strides()
	rowLen := shape[nd-1]
	var coord [MaxDims]int
	copy(coord[:], lo[:nd-1])
	dst := 0
	for {
		src := lo[nd-1]
		for d := 0; d < nd-1; d++ {
			src += coord[d] * strides[d]
		}
		copy(out.Data[dst:dst+rowLen], f.Data[src:src+rowLen])
		dst += rowLen
		d := nd - 2
		for d >= 0 {
			coord[d]++
			if coord[d] < hi[d] {
				break
			}
			coord[d] = lo[d]
			d--
		}
		if d < 0 {
			return out, nil
		}
	}
}

// RegionIter walks a half-open subvolume of a field in row-major order
// without allocating per step: the coordinate odometer and stride table live
// in fixed-size arrays inside the iterator, and Coord returns a slice of the
// internal array. The iteration pattern is
//
//	it, _ := f.IterRegion(lo, hi)
//	for it.Next() {
//		v := it.Value()
//	}
//
// Next/Value/Coord/Index perform zero heap allocations (pinned by
// TestRegionIterZeroAlloc with testing.AllocsPerRun).
type RegionIter struct {
	f       *Field
	nd      int
	lo, hi  [MaxDims]int
	strides [MaxDims]int
	coord   [MaxDims]int
	idx     int
	started bool
	done    bool
}

// IterRegion returns a zero-allocation iterator over the half-open region
// [lo, hi) of f.
func (f *Field) IterRegion(lo, hi []int) (*RegionIter, error) {
	if err := CheckRegion(f.Dims, lo, hi); err != nil {
		return nil, err
	}
	it := &RegionIter{f: f, nd: len(f.Dims)}
	copy(it.lo[:], lo)
	copy(it.hi[:], hi)
	copy(it.strides[:], f.Strides())
	it.Reset()
	return it, nil
}

// Reset rewinds the iterator to the state before the first Next.
func (it *RegionIter) Reset() {
	copy(it.coord[:], it.lo[:it.nd])
	it.idx = 0
	for d := 0; d < it.nd; d++ {
		it.idx += it.lo[d] * it.strides[d]
	}
	it.started = false
	it.done = false
}

// Next advances to the next sample in the region and reports whether one
// exists. The linear index is maintained incrementally: stepping the fastest
// dimension adds 1, and each odometer wrap rewinds that dimension's
// contribution before carrying into the next slower one.
func (it *RegionIter) Next() bool {
	if it.done {
		return false
	}
	if !it.started {
		it.started = true
		return true
	}
	d := it.nd - 1
	for d >= 0 {
		it.coord[d]++
		it.idx += it.strides[d]
		if it.coord[d] < it.hi[d] {
			return true
		}
		it.idx -= (it.coord[d] - it.lo[d]) * it.strides[d]
		it.coord[d] = it.lo[d]
		d--
	}
	it.done = true
	return false
}

// Value returns the sample at the current position.
func (it *RegionIter) Value() float32 { return it.f.Data[it.idx] }

// Index returns the linear index of the current position in the field.
func (it *RegionIter) Index() int { return it.idx }

// Coord returns the current coordinates. The returned slice aliases the
// iterator's internal array and is overwritten by the next call to Next.
func (it *RegionIter) Coord() []int { return it.coord[:it.nd] }
