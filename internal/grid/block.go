package grid

// Block identifies one cubic block of a field during block iteration.
type Block struct {
	// Origin is the coordinate of the block's first sample.
	Origin []int
	// Shape is the extent of the block along each dimension. Boundary blocks
	// are clipped, so Shape entries may be smaller than the nominal block side.
	Shape []int
}

// Size returns the number of samples in the block.
func (b Block) Size() int {
	n := 1
	for _, s := range b.Shape {
		n *= s
	}
	return n
}

// VisitBlocks partitions the field into side^N blocks (clipped at the
// boundary) and calls fn once per block with the block descriptor and the
// block's sample values gathered into buf. The buffer is reused between
// calls; fn must not retain it. Iteration order is row-major over blocks.
//
// This is the primitive behind the paper's Compressibility Adjustment
// (4×4×4 blocks, §IV-E2) and behind ZFP's 4^d block partitioning.
func VisitBlocks(f *Field, side int, fn func(b Block, vals []float32)) {
	nd := f.NDims()
	nblocks := make([]int, nd)
	for i, d := range f.Dims {
		nblocks[i] = (d + side - 1) / side
	}
	strides := f.Strides()
	bcoord := make([]int, nd)
	origin := make([]int, nd)
	shape := make([]int, nd)
	buf := make([]float32, pow(side, nd))
	for {
		for i := range bcoord {
			origin[i] = bcoord[i] * side
			shape[i] = side
			if origin[i]+shape[i] > f.Dims[i] {
				shape[i] = f.Dims[i] - origin[i]
			}
		}
		vals := buf[:0]
		vals = gather(f, origin, shape, strides, vals)
		fn(Block{Origin: origin, Shape: shape}, vals)
		d := nd - 1
		for d >= 0 {
			bcoord[d]++
			if bcoord[d] < nblocks[d] {
				break
			}
			bcoord[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}

// gather appends the samples of the sub-box [origin, origin+shape) to dst in
// row-major order.
func gather(f *Field, origin, shape, strides []int, dst []float32) []float32 {
	nd := len(origin)
	coord := make([]int, nd)
	for {
		lin := 0
		for i := range coord {
			lin += (origin[i] + coord[i]) * strides[i]
		}
		dst = append(dst, f.Data[lin])
		d := nd - 1
		for d >= 0 {
			coord[d]++
			if coord[d] < shape[d] {
				break
			}
			coord[d] = 0
			d--
		}
		if d < 0 {
			return dst
		}
	}
}

// ScatterBlock writes vals (row-major over the block) back into the field at
// the block's position. It is the inverse of the gather VisitBlocks performs.
func ScatterBlock(f *Field, b Block, vals []float32) {
	strides := f.Strides()
	nd := len(b.Origin)
	coord := make([]int, nd)
	for i := range vals {
		lin := 0
		for d := range coord {
			lin += (b.Origin[d] + coord[d]) * strides[d]
		}
		f.Data[lin] = vals[i]
		d := nd - 1
		for d >= 0 {
			coord[d]++
			if coord[d] < b.Shape[d] {
				break
			}
			coord[d] = 0
			d--
		}
	}
}

func pow(base, exp int) int {
	n := 1
	for i := 0; i < exp; i++ {
		n *= base
	}
	return n
}
