// Package grid provides the N-dimensional scientific field container used by
// every compressor and by the FXRZ framework itself.
//
// A Field is a dense, row-major array of float32 samples with between one and
// four dimensions. Dimensions are ordered slowest-varying first, so for a 3D
// field with Dims = [nz, ny, nx] the linear index of (z, y, x) is
// (z*ny+y)*nx+x. float32 is the canonical element type because the real-world
// datasets the paper evaluates (SDRBench Nyx, QMCPack, RTM, Hurricane) are
// single precision; statistics are nevertheless accumulated in float64.
package grid

import (
	"errors"
	"fmt"
)

// MaxDims is the largest dimensionality supported by the library. The paper's
// datasets span 3D (Nyx, RTM, Hurricane) and 4D (QMCPack orbitals).
const MaxDims = 4

// ErrDims reports an unsupported dimension specification.
var ErrDims = errors.New("grid: dims must have 1..4 strictly positive entries")

// Field is a dense N-dimensional array of float32 values.
type Field struct {
	// Name identifies the field for logging and experiment tables,
	// e.g. "nyx/baryon_density/ts3".
	Name string
	// Dims holds the extent of each dimension, slowest-varying first.
	Dims []int
	// Data holds the samples in row-major order; len(Data) == Size().
	Data []float32
}

// New allocates a zero-filled field with the given dimensions.
func New(name string, dims ...int) (*Field, error) {
	n, err := checkDims(dims)
	if err != nil {
		return nil, err
	}
	return &Field{Name: name, Dims: append([]int(nil), dims...), Data: make([]float32, n)}, nil
}

// FromData wraps an existing sample slice. The slice is retained, not copied.
func FromData(name string, data []float32, dims ...int) (*Field, error) {
	n, err := checkDims(dims)
	if err != nil {
		return nil, err
	}
	if len(data) != n {
		return nil, fmt.Errorf("grid: data length %d does not match dims %v (want %d)", len(data), dims, n)
	}
	return &Field{Name: name, Dims: append([]int(nil), dims...), Data: data}, nil
}

// MustNew is New for tests and examples with known-good dims; it panics on error.
func MustNew(name string, dims ...int) *Field {
	f, err := New(name, dims...)
	if err != nil {
		panic(err)
	}
	return f
}

func checkDims(dims []int) (int, error) {
	if len(dims) == 0 || len(dims) > MaxDims {
		return 0, ErrDims
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return 0, ErrDims
		}
		if n > (1<<40)/d {
			return 0, fmt.Errorf("grid: dims %v overflow addressable size", dims)
		}
		n *= d
	}
	return n, nil
}

// Size returns the total number of samples.
func (f *Field) Size() int { return len(f.Data) }

// NDims returns the number of dimensions.
func (f *Field) NDims() int { return len(f.Dims) }

// Bytes returns the uncompressed size in bytes (4 bytes per sample).
func (f *Field) Bytes() int { return 4 * len(f.Data) }

// Strides returns the row-major stride of each dimension, in elements.
// The last dimension always has stride 1.
func (f *Field) Strides() []int {
	s := make([]int, len(f.Dims))
	st := 1
	for i := len(f.Dims) - 1; i >= 0; i-- {
		s[i] = st
		st *= f.Dims[i]
	}
	return s
}

// Index converts multi-dimensional coordinates to a linear index.
// Coordinates must have the same length as Dims and be in range.
func (f *Field) Index(coord ...int) int {
	idx := 0
	for i, c := range coord {
		idx = idx*f.Dims[i] + c
	}
	return idx
}

// Coord converts a linear index back to multi-dimensional coordinates.
func (f *Field) Coord(idx int) []int {
	c := make([]int, len(f.Dims))
	for i := len(f.Dims) - 1; i >= 0; i-- {
		c[i] = idx % f.Dims[i]
		idx /= f.Dims[i]
	}
	return c
}

// At returns the sample at the given coordinates.
func (f *Field) At(coord ...int) float32 { return f.Data[f.Index(coord...)] }

// Set stores a sample at the given coordinates.
func (f *Field) Set(v float32, coord ...int) { f.Data[f.Index(coord...)] = v }

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	g := &Field{Name: f.Name, Dims: append([]int(nil), f.Dims...), Data: make([]float32, len(f.Data))}
	copy(g.Data, f.Data)
	return g
}

// Fill sets every sample to v.
func (f *Field) Fill(v float32) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// Range returns the minimum and maximum sample values. It returns (0, 0) for
// an empty field and ignores nothing: NaNs propagate, which callers treat as
// invalid input.
func (f *Field) Range() (min, max float64) {
	if len(f.Data) == 0 {
		return 0, 0
	}
	mn, mx := f.Data[0], f.Data[0]
	for _, v := range f.Data[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return float64(mn), float64(mx)
}

// Mean returns the arithmetic mean of all samples, accumulated in float64.
func (f *Field) Mean() float64 {
	if len(f.Data) == 0 {
		return 0
	}
	var s float64
	for _, v := range f.Data {
		s += float64(v)
	}
	return s / float64(len(f.Data))
}

// ValueRange returns max - min, the "Value Range" feature of the paper.
func (f *Field) ValueRange() float64 {
	mn, mx := f.Range()
	return mx - mn
}

// String implements fmt.Stringer for logging.
func (f *Field) String() string {
	return fmt.Sprintf("Field(%s %v, %d samples)", f.Name, f.Dims, len(f.Data))
}
