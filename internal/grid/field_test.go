package grid

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		dims []int
		ok   bool
	}{
		{"1d", []int{8}, true},
		{"2d", []int{4, 6}, true},
		{"3d", []int{3, 4, 5}, true},
		{"4d", []int{2, 3, 4, 5}, true},
		{"empty", nil, false},
		{"5d", []int{2, 2, 2, 2, 2}, false},
		{"zero", []int{4, 0}, false},
		{"negative", []int{-1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := New("t", tc.dims...)
			if tc.ok && err != nil {
				t.Fatalf("New(%v) unexpected error: %v", tc.dims, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("New(%v) expected error, got field %v", tc.dims, f)
			}
			if tc.ok {
				want := 1
				for _, d := range tc.dims {
					want *= d
				}
				if f.Size() != want {
					t.Errorf("Size() = %d, want %d", f.Size(), want)
				}
			}
		})
	}
}

func TestFromDataLengthMismatch(t *testing.T) {
	if _, err := FromData("t", make([]float32, 7), 2, 4); err == nil {
		t.Fatal("expected length mismatch error")
	}
	f, err := FromData("t", make([]float32, 8), 2, 4)
	if err != nil {
		t.Fatalf("FromData: %v", err)
	}
	if f.Bytes() != 32 {
		t.Errorf("Bytes() = %d, want 32", f.Bytes())
	}
}

func TestIndexCoordBijection(t *testing.T) {
	f := MustNew("t", 3, 5, 7)
	for i := 0; i < f.Size(); i++ {
		c := f.Coord(i)
		if got := f.Index(c...); got != i {
			t.Fatalf("Index(Coord(%d)) = %d", i, got)
		}
	}
}

func TestIndexCoordBijectionQuick(t *testing.T) {
	check := func(a, b, c uint8) bool {
		dims := []int{int(a%7) + 1, int(b%7) + 1, int(c%7) + 1}
		f := MustNew("q", dims...)
		for i := 0; i < f.Size(); i++ {
			if f.Index(f.Coord(i)...) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestStrides(t *testing.T) {
	f := MustNew("t", 2, 3, 4)
	if got, want := f.Strides(), []int{12, 4, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("Strides() = %v, want %v", got, want)
	}
}

func TestAtSetCloneIndependence(t *testing.T) {
	f := MustNew("t", 4, 4)
	f.Set(3.5, 2, 1)
	if got := f.At(2, 1); got != 3.5 {
		t.Fatalf("At = %v", got)
	}
	g := f.Clone()
	g.Set(-1, 2, 1)
	if f.At(2, 1) != 3.5 {
		t.Error("Clone shares backing storage with original")
	}
}

func TestRangeMeanValueRange(t *testing.T) {
	f := MustNew("t", 5)
	copy(f.Data, []float32{1, -2, 3, 0, 8})
	mn, mx := f.Range()
	if mn != -2 || mx != 8 {
		t.Errorf("Range = (%v, %v), want (-2, 8)", mn, mx)
	}
	if got := f.ValueRange(); got != 10 {
		t.Errorf("ValueRange = %v, want 10", got)
	}
	if got := f.Mean(); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestStrideSampleCountsAndUniqueness(t *testing.T) {
	f := MustNew("t", 8, 9, 10)
	for _, stride := range []int{1, 2, 3, 4, 7} {
		idx := StrideSample(f, stride)
		want := 1
		for _, d := range f.Dims {
			want *= (d + stride - 1) / stride
		}
		if len(idx) != want {
			t.Errorf("stride %d: got %d indices, want %d", stride, len(idx), want)
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= f.Size() {
				t.Fatalf("stride %d: index %d out of range", stride, i)
			}
			if seen[i] {
				t.Fatalf("stride %d: duplicate index %d", stride, i)
			}
			seen[i] = true
		}
	}
}

func TestStrideSampleFraction(t *testing.T) {
	// The paper's headline configuration: stride 4 on a 3D field keeps ~1.5%.
	f := MustNew("t", 64, 64, 64)
	idx := StrideSample(f, 4)
	frac := float64(len(idx)) / float64(f.Size())
	if frac < 0.014 || frac > 0.017 {
		t.Errorf("stride-4 fraction = %v, want ~1/64", frac)
	}
}

func TestSubsampleDims(t *testing.T) {
	f := MustNew("t", 9, 10)
	for i := range f.Data {
		f.Data[i] = float32(i)
	}
	s := Subsample(f, 4)
	if got, want := s.Dims, []int{3, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Subsample dims = %v, want %v", got, want)
	}
	if s.At(1, 1) != f.At(4, 4) {
		t.Errorf("Subsample value mismatch: %v vs %v", s.At(1, 1), f.At(4, 4))
	}
}

func TestVisitBlocksCoversFieldOnce(t *testing.T) {
	f := MustNew("t", 7, 9)
	for i := range f.Data {
		f.Data[i] = float32(i)
	}
	total := 0
	sum := 0.0
	VisitBlocks(f, 4, func(b Block, vals []float32) {
		if len(vals) != b.Size() {
			t.Fatalf("block %v: %d vals, want %d", b, len(vals), b.Size())
		}
		total += len(vals)
		for _, v := range vals {
			sum += float64(v)
		}
	})
	if total != f.Size() {
		t.Errorf("blocks covered %d samples, want %d", total, f.Size())
	}
	want := float64(f.Size()-1) * float64(f.Size()) / 2
	if sum != want {
		t.Errorf("block sum = %v, want %v (each sample exactly once)", sum, want)
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := MustNew("t", 6, 7, 5)
	for i := range f.Data {
		f.Data[i] = rng.Float32()
	}
	g := MustNew("t2", 6, 7, 5)
	VisitBlocks(f, 4, func(b Block, vals []float32) {
		cp := append([]float32(nil), vals...)
		ScatterBlock(g, Block{Origin: append([]int(nil), b.Origin...), Shape: append([]int(nil), b.Shape...)}, cp)
	})
	for i := range f.Data {
		if f.Data[i] != g.Data[i] {
			t.Fatalf("scatter/gather mismatch at %d", i)
		}
	}
}
