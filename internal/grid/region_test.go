package grid

import (
	"math/rand"
	"testing"
)

func TestCheckRegion(t *testing.T) {
	dims := []int{4, 5, 6}
	if err := CheckRegion(dims, []int{0, 0, 0}, []int{4, 5, 6}); err != nil {
		t.Fatalf("full region rejected: %v", err)
	}
	bad := []struct {
		lo, hi []int
	}{
		{[]int{0, 0}, []int{4, 5, 6}},
		{[]int{0, 0, 0}, []int{4, 5}},
		{[]int{-1, 0, 0}, []int{4, 5, 6}},
		{[]int{0, 0, 0}, []int{5, 5, 6}},
		{[]int{2, 0, 0}, []int{2, 5, 6}},
		{[]int{3, 0, 0}, []int{2, 5, 6}},
	}
	for i, c := range bad {
		if err := CheckRegion(dims, c.lo, c.hi); err == nil {
			t.Errorf("case %d: region %v:%v accepted", i, c.lo, c.hi)
		}
	}
}

func TestSliceRegionMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][]int{{17}, {5, 9}, {4, 6, 5}, {3, 4, 2, 5}}
	for _, dims := range shapes {
		f := MustNew("t", dims...)
		for i := range f.Data {
			f.Data[i] = rng.Float32()
		}
		nd := len(dims)
		lo := make([]int, nd)
		hi := make([]int, nd)
		for trial := 0; trial < 20; trial++ {
			for d := 0; d < nd; d++ {
				lo[d] = rng.Intn(dims[d])
				hi[d] = lo[d] + 1 + rng.Intn(dims[d]-lo[d])
			}
			sub, err := SliceRegion(f, lo, hi)
			if err != nil {
				t.Fatalf("SliceRegion(%v, %v): %v", lo, hi, err)
			}
			it, err := f.IterRegion(lo, hi)
			if err != nil {
				t.Fatalf("IterRegion: %v", err)
			}
			k := 0
			for it.Next() {
				if sub.Data[k] != it.Value() {
					t.Fatalf("dims %v region %v:%v: sample %d: slice %v, iter %v", dims, lo, hi, k, sub.Data[k], it.Value())
				}
				c := it.Coord()
				want := f.At(c...)
				if it.Value() != want {
					t.Fatalf("iter coord %v: value %v, field %v", c, it.Value(), want)
				}
				k++
			}
			if k != sub.Size() {
				t.Fatalf("iter visited %d samples, slice has %d", k, sub.Size())
			}
		}
	}
}

func TestRegionIterZeroAlloc(t *testing.T) {
	f := MustNew("t", 8, 8, 8)
	for i := range f.Data {
		f.Data[i] = float32(i)
	}
	it, err := f.IterRegion([]int{1, 2, 3}, []int{7, 8, 6})
	if err != nil {
		t.Fatal(err)
	}
	var sink float32
	allocs := testing.AllocsPerRun(100, func() {
		it.Reset()
		for it.Next() {
			sink += it.Value()
			sink += float32(it.Coord()[0])
			sink += float32(it.Index())
		}
	})
	if allocs != 0 {
		t.Fatalf("RegionIter allocates %v per full sweep, want 0", allocs)
	}
	_ = sink
}
