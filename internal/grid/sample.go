package grid

// StrideSample returns the linear indices of a uniform stride-K sample of the
// field: every K-th point along each dimension, as described in §IV-E1 of the
// paper ("Uniform Sampling for Feature Extraction"). With stride 4 on a 3D
// field this selects 1/64 ≈ 1.5% of the points while preserving the spatial
// layout needed by neighborhood features (the sampled points form a coarse
// grid, so Lorenzo/spline differences remain well defined on it).
//
// A stride of 1 (or less) selects every point.
func StrideSample(f *Field, stride int) []int {
	if stride <= 1 {
		idx := make([]int, f.Size())
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	sampled := make([]int, 0, f.Size()/stride+1)
	dims := f.Dims
	strides := f.Strides()
	coord := make([]int, len(dims))
	for {
		lin := 0
		for i, c := range coord {
			lin += c * strides[i]
		}
		sampled = append(sampled, lin)
		// Advance the coordinate odometer by `stride` in the last dimension.
		d := len(dims) - 1
		for d >= 0 {
			coord[d] += stride
			if coord[d] < dims[d] {
				break
			}
			coord[d] = 0
			d--
		}
		if d < 0 {
			return sampled
		}
	}
}

// Subsample materialises the stride-K sample of f as a new, smaller field
// whose dimensions are ceil(dim/stride). Neighborhood-based features computed
// on the subsampled field approximate those of the full field on smooth data.
func Subsample(f *Field, stride int) *Field {
	if stride <= 1 {
		return f.Clone()
	}
	dims := make([]int, len(f.Dims))
	for i, d := range f.Dims {
		dims[i] = (d + stride - 1) / stride
	}
	out := MustNew(f.Name+"/sub", dims...)
	srcStrides := f.Strides()
	coord := make([]int, len(dims))
	for i := range out.Data {
		lin := 0
		for d, c := range coord {
			lin += c * stride * srcStrides[d]
		}
		out.Data[i] = f.Data[lin]
		for d := len(dims) - 1; d >= 0; d-- {
			coord[d]++
			if coord[d] < dims[d] {
				break
			}
			coord[d] = 0
		}
	}
	return out
}
