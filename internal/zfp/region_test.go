package zfp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

func regionTestField(t testing.TB, dims ...int) *grid.Field {
	t.Helper()
	f := grid.MustNew("roi", dims...)
	rng := rand.New(rand.NewSource(42))
	for i := range f.Data {
		f.Data[i] = float32(math.Sin(float64(i)*0.05)) + 0.1*rng.Float32()
	}
	return f
}

// TestDecompressRegionMatchesFullDecode checks, for both modes, every
// dimensionality, and random regions, that the region decode is bit-equal to
// the corresponding slice of a full decode — with and without an index.
func TestDecompressRegionMatchesFullDecode(t *testing.T) {
	shapes := [][]int{{37}, {19, 23}, {10, 12, 14}, {3, 5, 9, 11}}
	codecs := []struct {
		name string
		comp func(*grid.Field) ([]byte, error)
	}{
		{"accuracy", func(f *grid.Field) ([]byte, error) { return New().Compress(f, 1e-3) }},
		{"rate", func(f *grid.Field) ([]byte, error) { return NewFixedRate().Compress(f, 7) }},
	}
	rng := rand.New(rand.NewSource(99))
	for _, dims := range shapes {
		f := regionTestField(t, dims...)
		for _, c := range codecs {
			blob, err := c.comp(f)
			if err != nil {
				t.Fatalf("%s %v: compress: %v", c.name, dims, err)
			}
			full, err := New().Decompress(blob)
			if err != nil {
				t.Fatalf("%s %v: decompress: %v", c.name, dims, err)
			}
			index, err := BuildRegionIndex(blob)
			if err != nil {
				t.Fatalf("%s %v: index: %v", c.name, dims, err)
			}
			nd := len(dims)
			lo, hi := make([]int, nd), make([]int, nd)
			for trial := 0; trial < 25; trial++ {
				for d := 0; d < nd; d++ {
					lo[d] = rng.Intn(dims[d])
					hi[d] = lo[d] + 1 + rng.Intn(dims[d]-lo[d])
				}
				if trial == 0 {
					for d := 0; d < nd; d++ {
						lo[d], hi[d] = 0, dims[d]
					}
				}
				want, err := grid.SliceRegion(full, lo, hi)
				if err != nil {
					t.Fatalf("slice: %v", err)
				}
				for _, idx := range [][]byte{index, nil} {
					got, err := DecompressRegion(blob, idx, lo, hi)
					if err != nil {
						t.Fatalf("%s %v region %v:%v (index=%v): %v", c.name, dims, lo, hi, idx != nil, err)
					}
					if len(got.Data) != len(want.Data) {
						t.Fatalf("%s %v region %v:%v: size %d, want %d", c.name, dims, lo, hi, len(got.Data), len(want.Data))
					}
					for i := range want.Data {
						if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
							t.Fatalf("%s %v region %v:%v (index=%v): sample %d: %v != %v",
								c.name, dims, lo, hi, idx != nil, i, got.Data[i], want.Data[i])
						}
					}
				}
			}
		}
	}
}

func TestDecompressRegionRejectsBadRegion(t *testing.T) {
	f := regionTestField(t, 10, 12, 14)
	blob, err := New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		lo, hi []int
	}{
		{[]int{0, 0}, []int{1, 1, 1}},
		{[]int{0, 0, 0}, []int{11, 12, 14}},
		{[]int{-1, 0, 0}, []int{1, 1, 1}},
		{[]int{3, 3, 3}, []int{3, 4, 4}},
	}
	for i, c := range bad {
		if _, err := DecompressRegion(blob, nil, c.lo, c.hi); err == nil {
			t.Errorf("case %d: region %v:%v accepted", i, c.lo, c.hi)
		}
	}
}

func TestRegionIndexCorruptRejected(t *testing.T) {
	f := regionTestField(t, 10, 12, 14)
	blob, err := New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	index, err := BuildRegionIndex(blob)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := []int{2, 2, 2}, []int{6, 6, 6}
	// Wrong mode byte.
	bad := append([]byte(nil), index...)
	bad[0] ^= 1
	if _, err := DecompressRegion(blob, bad, lo, hi); err == nil {
		t.Error("mode-mismatched index accepted")
	}
	// Truncated offsets.
	if _, err := DecompressRegion(blob, index[:len(index)-1], lo, hi); err == nil {
		t.Error("truncated index accepted")
	}
	// Trailing garbage.
	if _, err := DecompressRegion(blob, append(append([]byte(nil), index...), 0xFF), lo, hi); err == nil {
		t.Error("index with trailer accepted")
	}
}

// TestRegionIndexOverhead pins the <1% index budget on a realistically sized
// stream (the acceptance criterion benchguard gates on the bench fixture).
func TestRegionIndexOverhead(t *testing.T) {
	f := regionTestField(t, 64, 64, 64)
	blob, err := New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	index, err := BuildRegionIndex(blob)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(len(index)) / float64(len(blob)); frac > 0.01 {
		t.Fatalf("index overhead %.4f of blob (%d / %d bytes), want <= 0.01", frac, len(index), len(blob))
	}
}
