package zfp

import "sort"

// Fixed-point and transform machinery for 4^d blocks, following the ZFP 0.5.x
// algorithm: values in a block are aligned to a common exponent, converted to
// 30-bit signed fixed point, decorrelated with a separable lifted transform,
// reordered by total sequency, and mapped to negabinary for embedded coding.

const (
	// intPrec is the fixed-point precision for float32 data (zfp's Int=int32).
	intPrec = 32
	// blockSide is the block extent along each dimension.
	blockSide = 4
)

// fwdLift applies zfp's forward decorrelating transform to 4 elements with
// stride s. The transform approximates 1/16 * [[4,4,4,4],[5,1,-1,-5],
// [-4,4,4,-4],[-2,6,-6,2]] using reversible-ish lifting steps.
func fwdLift(p []int32, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

// invLift inverts fwdLift (up to the transform's inherent rounding).
func invLift(p []int32, off, s int) {
	x, y, z, w := p[off], p[off+s], p[off+2*s], p[off+3*s]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[off], p[off+s], p[off+2*s], p[off+3*s] = x, y, z, w
}

// fwdTransform decorrelates a 4^nd block in place, lifting along every
// dimension. Strides follow the row-major layout of the gathered block.
func fwdTransform(blk []int32, nd int) {
	switch nd {
	case 1:
		fwdLift(blk, 0, 1)
	case 2:
		for y := 0; y < 4; y++ {
			fwdLift(blk, 4*y, 1)
		}
		for x := 0; x < 4; x++ {
			fwdLift(blk, x, 4)
		}
	default: // 3
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				fwdLift(blk, 16*z+4*y, 1)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				fwdLift(blk, 16*z+x, 4)
			}
		}
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				fwdLift(blk, 4*y+x, 16)
			}
		}
	}
}

// invTransform inverts fwdTransform (dimensions in reverse order).
func invTransform(blk []int32, nd int) {
	switch nd {
	case 1:
		invLift(blk, 0, 1)
	case 2:
		for x := 0; x < 4; x++ {
			invLift(blk, x, 4)
		}
		for y := 0; y < 4; y++ {
			invLift(blk, 4*y, 1)
		}
	default: // 3
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				invLift(blk, 4*y+x, 16)
			}
		}
		for z := 0; z < 4; z++ {
			for x := 0; x < 4; x++ {
				invLift(blk, 16*z+x, 4)
			}
		}
		for z := 0; z < 4; z++ {
			for y := 0; y < 4; y++ {
				invLift(blk, 16*z+4*y, 1)
			}
		}
	}
}

// perms[nd-1] orders transform coefficients by total sequency (the sum of
// per-dimension frequency indices), lowest first, matching the spirit of
// zfp's PERM tables. Encoder and decoder share the table, so the exact
// tie-break (linear index) is immaterial.
var perms = buildPerms()

func buildPerms() [3][]int {
	var out [3][]int
	for nd := 1; nd <= 3; nd++ {
		n := 1
		for i := 0; i < nd; i++ {
			n *= blockSide
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		seq := func(i int) int {
			s := 0
			for d := 0; d < nd; d++ {
				s += i % blockSide
				i /= blockSide
			}
			return s
		}
		sort.SliceStable(idx, func(a, b int) bool {
			sa, sb := seq(idx[a]), seq(idx[b])
			if sa != sb {
				return sa < sb
			}
			return idx[a] < idx[b]
		})
		out[nd-1] = idx
	}
	return out
}

// int32ToNegabinary maps two's complement to negabinary so that small
// magnitudes of either sign have leading zero bits.
func int32ToNegabinary(x int32) uint32 {
	const mask = 0xaaaaaaaa
	return (uint32(x) + mask) ^ mask
}

// negabinaryToInt32 inverts int32ToNegabinary.
func negabinaryToInt32(u uint32) int32 {
	const mask = 0xaaaaaaaa
	return int32((u ^ mask) - mask)
}

// padLine fills positions n..3 of a 4-element line (stride s) from the first
// n valid samples, using zfp's pad_block pattern.
func padLine(p []float32, off, s, n int) {
	switch n {
	case 0:
		p[off] = 0
		fallthrough
	case 1:
		p[off+s] = p[off]
		fallthrough
	case 2:
		p[off+2*s] = p[off+s]
		fallthrough
	case 3:
		p[off+3*s] = p[off]
	}
}
