package zfp

// Chunked intra-field parallelism for the block coder.
//
// ZFP blocks are coded independently — the bit writer is the only state that
// crosses a block boundary — so any partition of the block list into
// contiguous chunks, encoded into private buffers and concatenated in block
// order, reproduces the serial stream bit for bit. Decoding fans out the same
// way once each chunk's starting bit offset is known: in fixed-rate mode
// block k starts at exactly k*maxbits, and in fixed-accuracy mode a serial
// skim pass (skipBlock) replays the decoder's bit consumption without doing
// any arithmetic, which is exact because decodeInts' control flow depends
// only on the values of the bits it reads, never on accumulated coefficients.
//
// Obs instrumentation: zfp/par_chunks and zfp/par_blocks count fan-outs, and
// the zfp/stitch and zfp/offset_scan spans time the serial portions.

import (
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

const (
	// zfpParMinBlocks gates the fan-out: below this many blocks the chunk
	// setup costs more than the work it spreads. The gate depends only on the
	// field's shape — never on the worker count — so the serial/parallel
	// routing itself cannot depend on the budget (it wouldn't change the
	// output either way; it keeps the decision easy to reason about).
	zfpParMinBlocks = 16
	// zfpChunksPerWorker oversubscribes chunks so a slow chunk (e.g. dense
	// high-precision blocks) doesn't leave the other workers idle.
	zfpChunksPerWorker = 4
)

// countBlocks returns the total number of 4^d blocks covering dims.
func countBlocks(dims []int) int {
	total := 1
	for _, d := range dims {
		total *= (d + blockSide - 1) / blockSide
	}
	return total
}

// blockOriginAt writes the origin of block k into origin, matching the
// row-major (last dimension fastest) order of visitBlockOrigins.
func blockOriginAt(dims []int, k int, origin []int) {
	for d := len(dims) - 1; d >= 0; d-- {
		nb := (dims[d] + blockSide - 1) / blockSide
		origin[d] = (k % nb) * blockSide
		k /= nb
	}
}

// chunkCount splits total blocks into at most workers*zfpChunksPerWorker
// contiguous chunks and returns (number of chunks, blocks per chunk).
func chunkCount(total, workers int) (nchunks, per int) {
	nchunks = workers * zfpChunksPerWorker
	if nchunks > total {
		nchunks = total
	}
	per = (total + nchunks - 1) / nchunks
	nchunks = (total + per - 1) / per
	return nchunks, per
}

// encodeBodyChunked is the parallel encode path: each chunk of blocks is
// encoded into its own pooled bit writer with its own scratch, then the
// chunk payloads are stitched in block order.
func encodeBodyChunked(folded *grid.Field, minexp, maxbits, workers int) ([]byte, error) {
	dims := folded.Dims
	nd := len(dims)
	bs := 1
	for i := 0; i < nd; i++ {
		bs *= blockSide
	}
	perm := perms[nd-1]
	total := countBlocks(dims)
	nchunks, per := chunkCount(total, workers)
	obs.Inc("zfp/par_encodes")
	obs.Add("zfp/par_chunks", int64(nchunks))
	obs.Add("zfp/par_blocks", int64(total))

	type chunkOut struct {
		payload []byte
		nbits   int
	}
	outs := make([]chunkOut, nchunks)
	pool.Run(workers, nchunks, func(ci int) {
		lo, hi := ci*per, (ci+1)*per
		if hi > total {
			hi = total
		}
		w := entropy.NewPooledBitWriter()
		s := getBlockScratch(bs)
		origin := make([]int, nd)
		for k := lo; k < hi; k++ {
			blockOriginAt(dims, k, origin)
			encodeBlock(w, folded, origin, s, minexp, maxbits, nd, perm)
		}
		putBlockScratch(s)
		// BitLen must be read before Bytes pads the final partial word.
		nbits := w.BitLen()
		outs[ci] = chunkOut{payload: w.Bytes(), nbits: nbits}
	})

	stop := obs.Span("zfp/stitch")
	w := entropy.NewPooledBitWriter()
	for _, o := range outs {
		w.AppendBits(o.payload, o.nbits)
		entropy.RecycleBuffer(o.payload)
	}
	stop()
	return w.Bytes(), nil
}

// decodeBodyChunked is the parallel decode path. Chunk starting offsets come
// from arithmetic in fixed-rate mode and from a serial skim in fixed-accuracy
// mode; blocks within a chunk then decode exactly as the serial walk would,
// and scatterClipped writes are disjoint across blocks, so no two workers
// touch the same output element.
func decodeBodyChunked(folded *grid.Field, payload []byte, minexp, maxbits, workers int) error {
	dims := folded.Dims
	nd := len(dims)
	bs := 1
	for i := 0; i < nd; i++ {
		bs *= blockSide
	}
	perm := perms[nd-1]
	total := countBlocks(dims)
	nchunks, per := chunkCount(total, workers)
	obs.Inc("zfp/par_decodes")
	obs.Add("zfp/par_chunks", int64(nchunks))
	obs.Add("zfp/par_blocks", int64(total))

	// starts[ci] is the bit offset of chunk ci's first block.
	starts := make([]int, nchunks)
	if maxbits > 0 {
		for ci := range starts {
			starts[ci] = ci * per * maxbits
		}
	} else {
		stop := obs.Span("zfp/offset_scan")
		r := entropy.NewBitReader(payload)
		bitPos := 0
		for ci := 0; ci < nchunks; ci++ {
			starts[ci] = bitPos
			lo, hi := ci*per, (ci+1)*per
			if hi > total {
				hi = total
			}
			for k := lo; k < hi; k++ {
				bitPos += skipBlock(r, minexp, maxbits, nd, bs)
			}
		}
		stop()
	}

	pool.Run(workers, nchunks, func(ci int) {
		lo, hi := ci*per, (ci+1)*per
		if hi > total {
			hi = total
		}
		r := entropy.NewBitReaderAt(payload, starts[ci])
		s := getBlockScratch(bs)
		origin := make([]int, nd)
		for k := lo; k < hi; k++ {
			blockOriginAt(dims, k, origin)
			decodeBlock(r, folded, origin, s, minexp, maxbits, nd, perm)
		}
		putBlockScratch(s)
	})
	return nil
}

// skipBlock replays one block's bit consumption without reconstructing it,
// returning the number of bits the decoder would consume. Must mirror
// decodeBlock exactly; size is the number of coefficients per block.
func skipBlock(r *entropy.BitReader, minexp, maxbits, nd, size int) int {
	used := 1
	if r.TryReadBit() != 0 {
		emax := int(r.TryReadBits(emaxBits)) - emaxBias
		used = headerBits
		maxprec := intPrec
		budget := unbounded
		if maxbits == 0 {
			maxprec = precision(emax, minexp, nd)
		} else {
			budget = maxbits
		}
		if maxprec > 0 {
			used += skipInts(r, budget-used, maxprec, size)
		}
	}
	if maxbits > 0 {
		for pad := maxbits - used; pad > 0; pad -= 64 {
			n := pad
			if n > 64 {
				n = 64
			}
			r.TryReadBits(uint(n))
		}
		return maxbits
	}
	return used
}
