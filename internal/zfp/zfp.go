// Package zfp implements the ZFP transform-based lossy compressor
// (Lindstrom, 2014; version 0.5.x algorithm) for 1D–4D float32 fields, in
// both of the modes the paper discusses:
//
//   - fixed-accuracy (the default Compressor): the knob is an absolute error
//     tolerance; each 4^d block encodes only the bit planes that can affect
//     the result beyond the tolerance, which yields the characteristic
//     stairwise ratio-versus-bound curve (only the tolerance's exponent
//     matters).
//   - fixed-rate (FixedRate): the knob is a bit budget per value; every block
//     occupies exactly the same number of bits. This is the mode the related
//     work (FRaZ) criticises for its ~2× lower ratio at equal distortion.
//
// The pipeline per 4^d block: common-exponent alignment, 30-bit fixed-point
// conversion, separable lifted decorrelating transform, total-sequency
// coefficient ordering, negabinary mapping, and embedded group-tested
// bit-plane coding. 4D fields are folded to 3D (leading two dimensions
// merged) for partitioning, as zfp users conventionally do.
package zfp

import (
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

const (
	emaxBias = 160
	emaxBits = 9
	// headerBits is the per-block header: 1 nonzero flag + biased exponent.
	headerBits = 1 + emaxBits
	// unbounded is the bit budget for fixed-accuracy mode.
	unbounded = 1 << 30
)

// Compressor is ZFP in fixed-accuracy mode. The zero value is ready to use.
type Compressor struct {
	// Workers bounds the intra-field fan-out (pool.Workers semantics: 0 uses
	// all cores, 1 forces a serial run). Output is byte-identical at every
	// setting — blocks are coded independently and stitched in block order.
	Workers int
}

// New returns a fixed-accuracy ZFP compressor.
func New() *Compressor { return &Compressor{} }

// Name implements compress.Compressor.
func (*Compressor) Name() string { return "zfp" }

// Axis implements compress.Compressor.
func (*Compressor) Axis() compress.Axis {
	return compress.Axis{Kind: compress.AbsErrorBound, Min: 1e-12, Max: 1e6}
}

// WithWorkers implements compress.ParallelCompressor.
func (c *Compressor) WithWorkers(n int) compress.Compressor { return &Compressor{Workers: n} }

// Compress implements compress.Compressor with an absolute error tolerance.
func (c *Compressor) Compress(f *grid.Field, tol float64) ([]byte, error) {
	if !(tol > 0) || math.IsInf(tol, 0) {
		return nil, fmt.Errorf("zfp: tolerance must be a positive finite number, got %v", tol)
	}
	defer obs.Span("compress/zfp")()
	obs.Inc("compressor_runs/zfp")
	out := compress.AppendHeader(nil, compress.Header{Magic: compress.MagicZFP, Name: f.Name, Dims: f.Dims, Knob: tol})
	out = append(out, 0) // mode byte: fixed accuracy
	payload, err := encodeBody(f, minExp(tol), 0, pool.Workers(c.Workers))
	if err != nil {
		return nil, err
	}
	out = append(out, payload...)
	entropy.RecycleBuffer(payload)
	return out, nil
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(blob []byte) (*grid.Field, error) {
	defer obs.Span("decompress/zfp")()
	h, payload, err := compress.ParseHeader(blob, compress.MagicZFP)
	if err != nil {
		return nil, fmt.Errorf("zfp: %w", err)
	}
	if len(payload) < 1 {
		return nil, fmt.Errorf("zfp: %w: missing mode", compress.ErrCorrupt)
	}
	mode, payload := payload[0], payload[1:]
	if _, err := compress.CheckElems(h.Dims, len(payload)); err != nil {
		return nil, fmt.Errorf("zfp: %w", err)
	}
	f, err := grid.New(h.Name, h.Dims...)
	if err != nil {
		return nil, fmt.Errorf("zfp: %w", err)
	}
	workers := pool.Workers(c.Workers)
	switch mode {
	case 0:
		err = decodeBody(f, payload, minExp(h.Knob), 0, workers)
	case 1:
		err = decodeBody(f, payload, 0, blockBits(h.Knob, foldedNDims(h.Dims)), workers)
	default:
		return nil, fmt.Errorf("zfp: %w: mode %d", compress.ErrCorrupt, mode)
	}
	if err != nil {
		return nil, err
	}
	return f, nil
}

// FixedRate is ZFP in fixed-rate mode: the knob is bits per value.
type FixedRate struct {
	// Workers bounds the intra-field fan-out; see Compressor.Workers.
	Workers int
}

// NewFixedRate returns a fixed-rate ZFP compressor.
func NewFixedRate() *FixedRate { return &FixedRate{} }

// Name implements compress.Compressor.
func (*FixedRate) Name() string { return "zfp-rate" }

// Axis implements compress.Compressor: the knob is a rate in bits/value, and
// smaller rates give larger ratios, so the model space is the negated rate.
func (*FixedRate) Axis() compress.Axis {
	return compress.Axis{Kind: compress.Precision, Min: 1, Max: 32}
}

// WithWorkers implements compress.ParallelCompressor.
func (c *FixedRate) WithWorkers(n int) compress.Compressor { return &FixedRate{Workers: n} }

// Compress encodes every block with exactly rate*4^d bits.
func (c *FixedRate) Compress(f *grid.Field, rate float64) ([]byte, error) {
	if !(rate > 0) || rate > 64 {
		return nil, fmt.Errorf("zfp: rate must be in (0, 64], got %v", rate)
	}
	defer obs.Span("compress/zfp-rate")()
	obs.Inc("compressor_runs/zfp-rate")
	out := compress.AppendHeader(nil, compress.Header{Magic: compress.MagicZFP, Name: f.Name, Dims: f.Dims, Knob: rate})
	out = append(out, 1) // mode byte: fixed rate
	payload, err := encodeBody(f, 0, blockBits(rate, foldedNDims(f.Dims)), pool.Workers(c.Workers))
	if err != nil {
		return nil, err
	}
	out = append(out, payload...)
	entropy.RecycleBuffer(payload)
	return out, nil
}

// Decompress implements compress.Compressor.
func (c *FixedRate) Decompress(blob []byte) (*grid.Field, error) {
	return (&Compressor{Workers: c.Workers}).Decompress(blob)
}

// minExp returns floor(log2(tol)), the weakest bit-plane exponent that can
// still matter under the tolerance.
func minExp(tol float64) int {
	_, e := math.Frexp(tol) // tol = m * 2^e, m in [0.5, 1)
	return e - 1
}

// blockBits converts a rate in bits/value to the per-block bit budget.
func blockBits(rate float64, nd int) int {
	n := 1
	for i := 0; i < nd; i++ {
		n *= blockSide
	}
	b := int(math.Round(rate * float64(n)))
	if b < headerBits {
		b = headerBits
	}
	return b
}

// foldDims merges leading dimensions so partitioning sees at most 3 dims.
func foldDims(dims []int) []int {
	if len(dims) <= 3 {
		return dims
	}
	folded := append([]int{dims[0] * dims[1]}, dims[2:]...)
	return folded
}

func foldedNDims(dims []int) int {
	if len(dims) > 3 {
		return 3
	}
	return len(dims)
}

// encodeBlock codes one 4^d block at origin into w: gather, common-exponent
// header, transform, and embedded bit-plane coding, padded to the budget in
// fixed-rate mode. It is the single per-block encoder shared by the serial
// walk and the chunked parallel path, so the two are identical by
// construction.
func encodeBlock(w *entropy.BitWriter, folded *grid.Field, origin []int, s *blockScratch, minexp, maxbits, nd int, perm []int) {
	vals, q, ub := s.vals, s.q, s.ub
	gatherPadded(folded, origin, vals)
	used := 0
	emax, zero := blockEmax(vals)
	budget := unbounded
	if maxbits > 0 {
		budget = maxbits
	}
	if zero {
		w.WriteBit(0)
		used = 1
	} else {
		w.WriteBit(1)
		w.WriteBits(uint64(emax+emaxBias), emaxBits)
		used = headerBits
		maxprec := intPrec
		if maxbits == 0 {
			maxprec = precision(emax, minexp, nd)
		}
		if maxprec > 0 {
			quantize(vals, emax, q)
			fwdTransform(q, nd)
			for i, p := range perm {
				ub[i] = int32ToNegabinary(q[p])
			}
			used += encodeInts(w, budget-used, maxprec, ub, &s.planes)
		}
	}
	// Fixed-rate blocks are padded to exactly the budget.
	if maxbits > 0 {
		for pad := maxbits - used; pad > 0; pad -= 64 {
			n := pad
			if n > 64 {
				n = 64
			}
			w.WriteBits(0, uint(n))
		}
	}
}

// encodeBody compresses the field body. maxbits == 0 selects fixed-accuracy
// mode with the given minexp; otherwise each block gets exactly maxbits bits.
// With workers > 1 and enough blocks, chunks of blocks are encoded
// concurrently and stitched in block order (see parallel.go); the blob is
// byte-identical either way.
func encodeBody(f *grid.Field, minexp, maxbits, workers int) ([]byte, error) {
	dims := foldDims(f.Dims)
	folded, err := grid.FromData(f.Name, f.Data, dims...)
	if err != nil {
		return nil, fmt.Errorf("zfp: fold: %w", err)
	}
	nd := len(dims)
	bs := 1
	for i := 0; i < nd; i++ {
		bs *= blockSide
	}
	if workers > 1 && countBlocks(dims) >= zfpParMinBlocks {
		return encodeBodyChunked(folded, minexp, maxbits, workers)
	}
	w := entropy.NewPooledBitWriter()
	s := getBlockScratch(bs)
	defer putBlockScratch(s)
	perm := perms[nd-1]

	visitBlockOrigins(dims, func(origin []int) {
		encodeBlock(w, folded, origin, s, minexp, maxbits, nd, perm)
	})
	return w.Bytes(), nil
}

// decodeBlock decodes one 4^d block from r into the field, mirroring
// encodeBlock (including the fixed-rate pad skip). Like encodeBlock it is
// shared by the serial and parallel paths.
func decodeBlock(r *entropy.BitReader, folded *grid.Field, origin []int, s *blockScratch, minexp, maxbits, nd int, perm []int) {
	decodeBlockVals(r, s, minexp, maxbits, nd, perm)
	scatterClipped(folded, origin, s.vals)
}

// decodeBlockVals decodes one 4^d block from r into s.vals without scattering
// it anywhere, consuming exactly the bits the block occupies (including the
// fixed-rate pad). The region decoder uses it directly so a block can be
// scattered into a region-shaped destination instead of the full field.
func decodeBlockVals(r *entropy.BitReader, s *blockScratch, minexp, maxbits, nd int, perm []int) {
	vals, q, ub := s.vals, s.q, s.ub
	used := 1
	nonzero := r.TryReadBit()
	if nonzero == 0 {
		for i := range vals {
			vals[i] = 0
		}
	} else {
		emax := int(r.TryReadBits(emaxBits)) - emaxBias
		used = headerBits
		maxprec := intPrec
		budget := unbounded
		if maxbits == 0 {
			maxprec = precision(emax, minexp, nd)
		} else {
			budget = maxbits
		}
		if maxprec > 0 {
			used += decodeInts(r, budget-used, maxprec, ub)
		} else {
			for i := range ub {
				ub[i] = 0
			}
		}
		for i, p := range perm {
			q[p] = negabinaryToInt32(ub[i])
		}
		invTransform(q, nd)
		dequantize(q, emax, vals)
	}
	if maxbits > 0 {
		for pad := maxbits - used; pad > 0; pad -= 64 {
			n := pad
			if n > 64 {
				n = 64
			}
			r.TryReadBits(uint(n))
		}
	}
}

// decodeBody reconstructs the field body written by encodeBody. With
// workers > 1 and enough blocks, chunks decode concurrently from precomputed
// bit offsets (see parallel.go); reconstructions are bit-identical either way.
func decodeBody(f *grid.Field, payload []byte, minexp, maxbits, workers int) error {
	dims := foldDims(f.Dims)
	folded, err := grid.FromData(f.Name, f.Data, dims...)
	if err != nil {
		return fmt.Errorf("zfp: fold: %w", err)
	}
	nd := len(dims)
	bs := 1
	for i := 0; i < nd; i++ {
		bs *= blockSide
	}
	if workers > 1 && countBlocks(dims) >= zfpParMinBlocks {
		return decodeBodyChunked(folded, payload, minexp, maxbits, workers)
	}
	r := entropy.NewBitReader(payload)
	s := getBlockScratch(bs)
	defer putBlockScratch(s)
	perm := perms[nd-1]

	visitBlockOrigins(dims, func(origin []int) {
		decodeBlock(r, folded, origin, s, minexp, maxbits, nd, perm)
	})
	return nil
}

// visitBlockOrigins iterates the origins of all 4^d blocks in row-major order.
func visitBlockOrigins(dims []int, fn func(origin []int)) {
	nd := len(dims)
	origin := make([]int, nd)
	for {
		fn(origin)
		d := nd - 1
		for d >= 0 {
			origin[d] += blockSide
			if origin[d] < dims[d] {
				break
			}
			origin[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}

// gatherPadded copies the (possibly clipped) block at origin into buf and
// pads partial lines with zfp's pad pattern so the transform sees a full 4^d
// block without introducing artificial discontinuities.
func gatherPadded(f *grid.Field, origin []int, buf []float32) {
	nd := len(f.Dims)
	ext := make([]int, nd)
	for d := range ext {
		ext[d] = blockSide
		if origin[d]+ext[d] > f.Dims[d] {
			ext[d] = f.Dims[d] - origin[d]
		}
	}
	strides := f.Strides()
	switch nd {
	case 1:
		for x := 0; x < ext[0]; x++ {
			buf[x] = f.Data[origin[0]+x]
		}
		padLine(buf, 0, 1, ext[0])
	case 2:
		for y := 0; y < ext[0]; y++ {
			row := (origin[0] + y) * strides[0]
			for x := 0; x < ext[1]; x++ {
				buf[4*y+x] = f.Data[row+origin[1]+x]
			}
			padLine(buf, 4*y, 1, ext[1])
		}
		for x := 0; x < blockSide; x++ {
			padLine(buf, x, 4, ext[0])
		}
	default: // 3
		for z := 0; z < ext[0]; z++ {
			for y := 0; y < ext[1]; y++ {
				row := (origin[0]+z)*strides[0] + (origin[1]+y)*strides[1]
				for x := 0; x < ext[2]; x++ {
					buf[16*z+4*y+x] = f.Data[row+origin[2]+x]
				}
				padLine(buf, 16*z+4*y, 1, ext[2])
			}
			for x := 0; x < blockSide; x++ {
				padLine(buf, 16*z+x, 4, ext[1])
			}
		}
		for y := 0; y < blockSide; y++ {
			for x := 0; x < blockSide; x++ {
				padLine(buf, 4*y+x, 16, ext[0])
			}
		}
	}
}

// scatterClipped writes the valid region of a decoded block back.
func scatterClipped(f *grid.Field, origin []int, buf []float32) {
	nd := len(f.Dims)
	ext := make([]int, nd)
	for d := range ext {
		ext[d] = blockSide
		if origin[d]+ext[d] > f.Dims[d] {
			ext[d] = f.Dims[d] - origin[d]
		}
	}
	strides := f.Strides()
	switch nd {
	case 1:
		for x := 0; x < ext[0]; x++ {
			f.Data[origin[0]+x] = buf[x]
		}
	case 2:
		for y := 0; y < ext[0]; y++ {
			row := (origin[0] + y) * strides[0]
			for x := 0; x < ext[1]; x++ {
				f.Data[row+origin[1]+x] = buf[4*y+x]
			}
		}
	default:
		for z := 0; z < ext[0]; z++ {
			for y := 0; y < ext[1]; y++ {
				row := (origin[0]+z)*strides[0] + (origin[1]+y)*strides[1]
				for x := 0; x < ext[2]; x++ {
					f.Data[row+origin[2]+x] = buf[16*z+4*y+x]
				}
			}
		}
	}
}

// elemCount multiplies dims without allocating (header sanity checks).
func elemCount(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}
