package zfp

import (
	"bytes"
	"math"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// FuzzDecompress drives the decoder with arbitrary byte streams: it must
// return errors (or wrong data) on garbage, never panic or hang, and the
// chunked parallel decoder must agree with the serial one bit for bit on
// every input — including corrupt ones. Seeds are valid streams so mutations
// explore near-valid inputs.
func FuzzDecompress(f *testing.F) {
	fld := grid.MustNew("seed", 6, 7, 5)
	for i := range fld.Data {
		fld.Data[i] = float32(i%13) * 0.5
	}
	c := New()
	knob := 1e-3
	if blob, err := c.Compress(fld, knob); err == nil {
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{0x5A, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := c.Decompress(data)
		if err == nil && g != nil && g.Size() > 1<<24 {
			t.Skip("oversized but well-formed header")
		}
		for _, w := range []int{2, 3} {
			pc := &Compressor{Workers: w}
			pg, perr := pc.Decompress(data)
			if (err == nil) != (perr == nil) {
				t.Fatalf("w=%d: serial err=%v, parallel err=%v", w, err, perr)
			}
			if err != nil {
				continue
			}
			for i := range g.Data {
				if math.Float32bits(g.Data[i]) != math.Float32bits(pg.Data[i]) {
					t.Fatalf("w=%d sample %d: serial %x, parallel %x",
						w, i, math.Float32bits(g.Data[i]), math.Float32bits(pg.Data[i]))
				}
			}
			// Round trip: re-compressing the agreed reconstruction must emit
			// identical blobs serially and in parallel, in both ZFP modes.
			sBlob, serr := c.Compress(g, knob)
			pBlob, perr2 := pc.Compress(g, knob)
			if (serr == nil) != (perr2 == nil) {
				t.Fatalf("w=%d: recompress serial err=%v, parallel err=%v", w, serr, perr2)
			}
			if serr == nil && !bytes.Equal(sBlob, pBlob) {
				t.Fatalf("w=%d: recompressed parallel blob differs from serial", w)
			}
			sRate, serr := (&FixedRate{Workers: 1}).Compress(g, 8)
			pRate, perr3 := (&FixedRate{Workers: w}).Compress(g, 8)
			if (serr == nil) != (perr3 == nil) {
				t.Fatalf("w=%d: fixed-rate serial err=%v, parallel err=%v", w, serr, perr3)
			}
			if serr == nil && !bytes.Equal(sRate, pRate) {
				t.Fatalf("w=%d: fixed-rate parallel blob differs from serial", w)
			}
		}
	})
}
