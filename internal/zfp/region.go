package zfp

// Region-of-interest decode: decode only the 4^d blocks that intersect a
// requested subvolume, seeking over the ones that don't.
//
// In fixed-rate mode every block occupies exactly maxbits bits, so block k
// starts at bit k*maxbits and seeking is pure arithmetic — no index is
// needed. In fixed-accuracy mode block sizes are data-dependent; the region
// index persists the bit offset of every stride-th block (varint
// delta-encoded), turning a seek into one NewBitReaderAt jump plus at most
// stride-1 skipBlock replays. Without an index the decoder falls back to the
// same skipBlock skim the parallel decoder uses, starting from bit 0 — still
// correct, just O(stream) instead of O(region).

import (
	"encoding/binary"
	"fmt"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
)

// indexBytesPerOffset is the sizing estimate for one varint delta: block
// payloads are a few hundred bits at typical tolerances, so deltas fit in
// two to three bytes.
const indexBytesPerOffset = 3

// offsetStride picks how many blocks one persisted offset covers so the
// index stays well under 1% of the payload (target ≈0.4%, floor 64 bytes so
// small blobs still get a useful index).
func offsetStride(total, payloadBytes int) int {
	budget := payloadBytes / 256
	if budget < 64 {
		budget = 64
	}
	maxEntries := budget / indexBytesPerOffset
	if maxEntries < 1 {
		maxEntries = 1
	}
	s := (total + maxEntries - 1) / maxEntries
	if s < 1 {
		s = 1
	}
	return s
}

// BuildRegionIndex skims a zfp blob and returns its region index payload:
//
//	byte    mode (must match the blob's mode byte)
//	uvarint stride (0 = no offset table; fixed-rate offsets are arithmetic)
//	uvarint count  (number of offsets; ceil(blocks/stride))
//	count × uvarint delta-encoded bit offsets of blocks 0, stride, 2·stride, …
//
// The skim reuses skipBlock, so the offsets are exactly the positions the
// decoder's own bit consumption produces.
func BuildRegionIndex(blob []byte) ([]byte, error) {
	h, payload, err := compress.ParseHeader(blob, compress.MagicZFP)
	if err != nil {
		return nil, fmt.Errorf("zfp: %w", err)
	}
	if len(payload) < 1 {
		return nil, fmt.Errorf("zfp: %w: missing mode", compress.ErrCorrupt)
	}
	mode, payload := payload[0], payload[1:]
	if _, err := compress.CheckElems(h.Dims, len(payload)); err != nil {
		return nil, fmt.Errorf("zfp: %w", err)
	}
	out := []byte{mode}
	switch mode {
	case 1:
		out = binary.AppendUvarint(out, 0)
		out = binary.AppendUvarint(out, 0)
	case 0:
		dims := foldDims(h.Dims)
		nd := len(dims)
		bs := 1
		for i := 0; i < nd; i++ {
			bs *= blockSide
		}
		minexp := minExp(h.Knob)
		total := countBlocks(dims)
		stride := offsetStride(total, len(payload))
		count := (total + stride - 1) / stride
		out = binary.AppendUvarint(out, uint64(stride))
		out = binary.AppendUvarint(out, uint64(count))
		r := entropy.NewBitReader(payload)
		bit, prev := 0, 0
		for k := 0; k < total; k++ {
			if k%stride == 0 {
				out = binary.AppendUvarint(out, uint64(bit-prev))
				prev = bit
			}
			bit += skipBlock(r, minexp, 0, nd, bs)
		}
	default:
		return nil, fmt.Errorf("zfp: %w: mode %d", compress.ErrCorrupt, mode)
	}
	return out, nil
}

// parseRegionIndex validates an index payload against the blob it claims to
// describe and returns the offset table (nil when the index carries none).
func parseRegionIndex(index []byte, mode byte, total, payloadBytes int) (stride int, offs []int, err error) {
	if len(index) == 0 {
		return 0, nil, nil
	}
	if index[0] != mode {
		return 0, nil, fmt.Errorf("zfp: %w: index mode mismatch", compress.ErrCorrupt)
	}
	rest := index[1:]
	s, k := binary.Uvarint(rest)
	if k <= 0 {
		return 0, nil, fmt.Errorf("zfp: %w: index stride", compress.ErrCorrupt)
	}
	rest = rest[k:]
	count, k := binary.Uvarint(rest)
	if k <= 0 {
		return 0, nil, fmt.Errorf("zfp: %w: index count", compress.ErrCorrupt)
	}
	rest = rest[k:]
	if s == 0 {
		if count != 0 || len(rest) != 0 {
			return 0, nil, fmt.Errorf("zfp: %w: index trailer", compress.ErrCorrupt)
		}
		return 0, nil, nil
	}
	want := uint64((total + int(s) - 1) / int(s))
	if count != want {
		return 0, nil, fmt.Errorf("zfp: %w: index has %d offsets, want %d", compress.ErrCorrupt, count, want)
	}
	offs = make([]int, count)
	bit := 0
	maxBit := 8 * payloadBytes
	for i := range offs {
		d, k := binary.Uvarint(rest)
		if k <= 0 {
			return 0, nil, fmt.Errorf("zfp: %w: index offset %d", compress.ErrCorrupt, i)
		}
		rest = rest[k:]
		bit += int(d)
		if bit < 0 || bit > maxBit {
			return 0, nil, fmt.Errorf("zfp: %w: index offset %d out of range", compress.ErrCorrupt, i)
		}
		offs[i] = bit
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("zfp: %w: index trailer", compress.ErrCorrupt)
	}
	return int(s), offs, nil
}

// blockSeeker positions a bit reader at the start of successive blocks,
// jumping via the offset table (or fixed-rate arithmetic) and replaying
// skipBlock for the remainder. Blocks must be requested in increasing order;
// after decoding block k the caller reports it with advanced(k).
type blockSeeker struct {
	payload                 []byte
	minexp, maxbits, nd, bs int
	stride                  int
	offs                    []int
	r                       *entropy.BitReader
	pos                     int
}

func (sk *blockSeeker) seek(k int) *entropy.BitReader {
	if sk.maxbits > 0 {
		if sk.r == nil || sk.pos != k {
			sk.r = entropy.NewBitReaderAt(sk.payload, k*sk.maxbits)
		}
		sk.pos = k
		return sk.r
	}
	if sk.r == nil || sk.pos > k {
		sk.jump(k)
	} else if sk.offs != nil {
		// Jump only when it lands ahead of the current position; otherwise
		// skimming forward from here is cheaper.
		if p := k / sk.stride; p*sk.stride > sk.pos {
			sk.jump(k)
		}
	}
	for sk.pos < k {
		skipBlock(sk.r, sk.minexp, 0, sk.nd, sk.bs)
		sk.pos++
	}
	return sk.r
}

func (sk *blockSeeker) jump(k int) {
	if sk.offs != nil {
		p := k / sk.stride
		sk.r = entropy.NewBitReaderAt(sk.payload, sk.offs[p])
		sk.pos = p * sk.stride
		return
	}
	sk.r = entropy.NewBitReader(sk.payload)
	sk.pos = 0
}

func (sk *blockSeeker) advanced(k int) { sk.pos = k + 1 }

// DecompressRegion decodes only the blocks of blob that intersect the
// half-open region [lo, hi) (original field coordinates) and returns a field
// of shape hi-lo. index may be nil or empty, in which case fixed-accuracy
// streams are skimmed from the start. The decoded samples are bit-identical
// to the corresponding slice of a full Decompress.
func DecompressRegion(blob, index []byte, lo, hi []int) (*grid.Field, error) {
	defer obs.Span("decompress/zfp-region")()
	h, payload, err := compress.ParseHeader(blob, compress.MagicZFP)
	if err != nil {
		return nil, fmt.Errorf("zfp: %w", err)
	}
	if err := grid.CheckRegion(h.Dims, lo, hi); err != nil {
		return nil, fmt.Errorf("zfp: %w", err)
	}
	if len(payload) < 1 {
		return nil, fmt.Errorf("zfp: %w: missing mode", compress.ErrCorrupt)
	}
	mode, payload := payload[0], payload[1:]
	if _, err := compress.CheckElems(h.Dims, len(payload)); err != nil {
		return nil, fmt.Errorf("zfp: %w", err)
	}
	var minexp, maxbits int
	switch mode {
	case 0:
		minexp = minExp(h.Knob)
	case 1:
		maxbits = blockBits(h.Knob, foldedNDims(h.Dims))
	default:
		return nil, fmt.Errorf("zfp: %w: mode %d", compress.ErrCorrupt, mode)
	}
	fdims := foldDims(h.Dims)
	nd := len(fdims)
	bs := 1
	for i := 0; i < nd; i++ {
		bs *= blockSide
	}
	perm := perms[nd-1]
	total := countBlocks(fdims)
	stride, offs, err := parseRegionIndex(index, mode, total, len(payload))
	if err != nil {
		return nil, err
	}

	// Map the region onto the folded geometry. For 4D fields the two leading
	// dimensions fold into one, so a box in original coordinates becomes a
	// (conservative) interval along the folded axis; those blocks decode into
	// a full-size folded buffer and the exact box is sliced out afterwards —
	// the folded row-major layout is the original layout, so the slice is a
	// plain subvolume copy. For 1–3D the region maps one-to-one and blocks
	// scatter straight into the region-shaped output.
	flo, fhi := lo, hi
	var folded *grid.Field
	if len(h.Dims) == 4 {
		flo = []int{lo[0]*h.Dims[1] + lo[1], lo[2], lo[3]}
		fhi = []int{(hi[0]-1)*h.Dims[1] + hi[1], hi[2], hi[3]}
		folded, err = grid.New(h.Name, fdims...)
		if err != nil {
			return nil, fmt.Errorf("zfp: %w", err)
		}
	}
	var out *grid.Field
	if folded == nil {
		shape := make([]int, nd)
		for d := range shape {
			shape[d] = hi[d] - lo[d]
		}
		out, err = grid.New(h.Name, shape...)
		if err != nil {
			return nil, fmt.Errorf("zfp: %w", err)
		}
	}

	var bl, bh, nb [3]int
	for d := 0; d < nd; d++ {
		bl[d] = flo[d] / blockSide
		bh[d] = (fhi[d] - 1) / blockSide
		nb[d] = (fdims[d] + blockSide - 1) / blockSide
	}

	sk := &blockSeeker{payload: payload, minexp: minexp, maxbits: maxbits, nd: nd, bs: bs, stride: stride, offs: offs}
	s := getBlockScratch(bs)
	defer putBlockScratch(s)
	origin := make([]int, nd)
	decoded := 0
	bc := bl
	for {
		k := 0
		for d := 0; d < nd; d++ {
			k = k*nb[d] + bc[d]
			origin[d] = bc[d] * blockSide
		}
		r := sk.seek(k)
		decodeBlockVals(r, s, minexp, maxbits, nd, perm)
		sk.advanced(k)
		if folded != nil {
			scatterClipped(folded, origin, s.vals)
		} else {
			scatterRegion(out, lo, hi, origin, s.vals)
		}
		decoded++
		d := nd - 1
		for d >= 0 {
			bc[d]++
			if bc[d] <= bh[d] {
				break
			}
			bc[d] = bl[d]
			d--
		}
		if d < 0 {
			break
		}
	}
	obs.Inc("zfp/region_decodes")
	obs.Add("zfp/region_blocks", int64(decoded))
	obs.Add("zfp/region_blocks_skipped", int64(total-decoded))

	if folded != nil {
		view, err := grid.FromData(h.Name, folded.Data, h.Dims...)
		if err != nil {
			return nil, fmt.Errorf("zfp: %w", err)
		}
		return grid.SliceRegion(view, lo, hi)
	}
	return out, nil
}

// scatterRegion writes the part of a decoded block that intersects [lo, hi)
// into the region-shaped output field (out.Dims == hi-lo). Mirrors
// scatterClipped with the region box as the clip instead of the field bounds.
func scatterRegion(out *grid.Field, lo, hi, origin []int, buf []float32) {
	nd := len(out.Dims)
	var a, b [3]int
	for d := 0; d < nd; d++ {
		a[d] = origin[d]
		if lo[d] > a[d] {
			a[d] = lo[d]
		}
		b[d] = origin[d] + blockSide
		if hi[d] < b[d] {
			b[d] = hi[d]
		}
	}
	strides := out.Strides()
	switch nd {
	case 1:
		for x := a[0]; x < b[0]; x++ {
			out.Data[x-lo[0]] = buf[x-origin[0]]
		}
	case 2:
		for y := a[0]; y < b[0]; y++ {
			row := (y - lo[0]) * strides[0]
			brow := (y - origin[0]) * blockSide
			for x := a[1]; x < b[1]; x++ {
				out.Data[row+x-lo[1]] = buf[brow+x-origin[1]]
			}
		}
	default:
		for z := a[0]; z < b[0]; z++ {
			for y := a[1]; y < b[1]; y++ {
				row := (z-lo[0])*strides[0] + (y-lo[1])*strides[1]
				brow := (z-origin[0])*blockSide*blockSide + (y-origin[1])*blockSide
				for x := a[2]; x < b[2]; x++ {
					out.Data[row+x-lo[2]] = buf[brow+x-origin[2]]
				}
			}
		}
	}
}
