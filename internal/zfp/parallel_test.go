package zfp

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
)

func zfpParWidths() []int {
	ws := []int{2, 3}
	if n := runtime.NumCPU(); n > 3 {
		ws = append(ws, n)
	}
	return ws
}

// Shapes with enough blocks to clear zfpParMinBlocks, plus clipped extents
// (non-multiples of 4) and shapes below the gate.
var zfpParShapes = [][]int{
	{64},         // 16 blocks in 1D
	{7},          // below the gate: serial either way
	{12, 20},     // 15 blocks (3×5) — just below the gate
	{24, 24},     // 36 blocks
	{9, 13},      // clipped extents
	{8, 12, 16},  // 3D, 24 blocks
	{6, 7, 5},    // 3D clipped
	{3, 6, 7, 5}, // 4D folds into 3D blocks
}

func zfpParField(shape []int, kind string) *grid.Field {
	f := grid.MustNew(kind, shape...)
	rng := rand.New(rand.NewSource(int64(len(f.Data)) + int64(len(kind))))
	for i := range f.Data {
		switch kind {
		case "smooth":
			f.Data[i] = float32(math.Cos(float64(i) / 9))
		case "noisy":
			f.Data[i] = rng.Float32()*2e3 - 1e3
		case "spiky":
			// Mixed magnitudes: zero blocks next to huge ones stress the
			// per-block emax header and the zero-block flag.
			switch i % 5 {
			case 0:
				f.Data[i] = 0
			case 1:
				f.Data[i] = 1e30
			default:
				f.Data[i] = float32(i%3) * 1e-6
			}
		}
	}
	return f
}

// Both ZFP modes must emit byte-identical streams and bit-identical
// reconstructions at every worker count.
func TestZFPParallelIdentity(t *testing.T) {
	for _, shape := range zfpParShapes {
		for _, kind := range []string{"smooth", "noisy", "spiky"} {
			f := zfpParField(shape, kind)

			serialAcc := &Compressor{Workers: 1}
			accBlob, err := serialAcc.Compress(f, 1e-3)
			if err != nil {
				t.Fatalf("%v/%s: serial fixed-accuracy compress: %v", shape, kind, err)
			}
			accRec, err := serialAcc.Decompress(accBlob)
			if err != nil {
				t.Fatalf("%v/%s: serial fixed-accuracy decompress: %v", shape, kind, err)
			}

			serialRate := &FixedRate{Workers: 1}
			rateBlob, err := serialRate.Compress(f, 8)
			if err != nil {
				t.Fatalf("%v/%s: serial fixed-rate compress: %v", shape, kind, err)
			}
			rateRec, err := serialRate.Decompress(rateBlob)
			if err != nil {
				t.Fatalf("%v/%s: serial fixed-rate decompress: %v", shape, kind, err)
			}

			for _, w := range zfpParWidths() {
				acc := &Compressor{Workers: w}
				blob, err := acc.Compress(f, 1e-3)
				if err != nil {
					t.Fatalf("%v/%s w=%d: fixed-accuracy compress: %v", shape, kind, w, err)
				}
				if !bytes.Equal(blob, accBlob) {
					t.Fatalf("%v/%s w=%d: fixed-accuracy blob differs from serial", shape, kind, w)
				}
				rec, err := acc.Decompress(accBlob)
				if err != nil {
					t.Fatalf("%v/%s w=%d: fixed-accuracy decompress: %v", shape, kind, w, err)
				}
				if !zfpBitsEqual(rec.Data, accRec.Data) {
					t.Fatalf("%v/%s w=%d: fixed-accuracy reconstruction differs", shape, kind, w)
				}

				rate := &FixedRate{Workers: w}
				rblob, err := rate.Compress(f, 8)
				if err != nil {
					t.Fatalf("%v/%s w=%d: fixed-rate compress: %v", shape, kind, w, err)
				}
				if !bytes.Equal(rblob, rateBlob) {
					t.Fatalf("%v/%s w=%d: fixed-rate blob differs from serial", shape, kind, w)
				}
				rrec, err := rate.Decompress(rateBlob)
				if err != nil {
					t.Fatalf("%v/%s w=%d: fixed-rate decompress: %v", shape, kind, w, err)
				}
				if !zfpBitsEqual(rrec.Data, rateRec.Data) {
					t.Fatalf("%v/%s w=%d: fixed-rate reconstruction differs", shape, kind, w)
				}
			}
		}
	}
}

func zfpBitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// skipBlock must consume exactly the bits decodeBlock consumes, block by
// block, across a whole fixed-accuracy stream — the property the parallel
// decoder's offset skim rests on. Proven by decoding every block twice: once
// sequentially and once from a fresh reader positioned at the skim's
// accumulated offset; any skim drift desynchronises all later blocks.
func TestSkipBlockMatchesDecodeConsumption(t *testing.T) {
	for _, shape := range [][]int{{24, 24}, {6, 7, 5}, {8, 12, 16}} {
		for _, kind := range []string{"smooth", "spiky"} {
			f := zfpParField(shape, kind)
			c := &Compressor{Workers: 1}
			blob, err := c.Compress(f, 1e-4)
			if err != nil {
				t.Fatal(err)
			}
			h, payload, err := compress.ParseHeader(blob, compress.MagicZFP)
			if err != nil {
				t.Fatal(err)
			}
			folded := foldDims(h.Dims)
			nd := len(folded)
			bs := 1
			for i := 0; i < nd; i++ {
				bs *= blockSide
			}
			minexp := minExp(h.Knob)
			perm := perms[nd-1]

			seqOut := grid.MustNew("seq", folded...)
			atOut := grid.MustNew("at", folded...)
			dec := entropy.NewBitReader(payload)
			skim := entropy.NewBitReader(payload)
			s := getBlockScratch(bs)
			s2 := getBlockScratch(bs)
			defer putBlockScratch(s)
			defer putBlockScratch(s2)
			total := countBlocks(folded)
			origin := make([]int, nd)
			bitPos := 0
			for k := 0; k < total; k++ {
				blockOriginAt(folded, k, origin)
				r := entropy.NewBitReaderAt(payload, bitPos)
				decodeBlock(r, atOut, origin, s2, minexp, 0, nd, perm)
				decodeBlock(dec, seqOut, origin, s, minexp, 0, nd, perm)
				bitPos += skipBlock(skim, minexp, 0, nd, bs)
			}
			if !zfpBitsEqual(atOut.Data, seqOut.Data) {
				t.Fatalf("%v/%s: offset-skim decode drifted from sequential decode", shape, kind)
			}
		}
	}
}

// A shared FixedRate value used from many goroutines must stay race-free and
// deterministic: scratch comes from the pool per chunk, never per codec.
func TestZFPSharedCompressorConcurrent(t *testing.T) {
	f := zfpParField([]int{8, 12, 16}, "noisy")
	c := &FixedRate{Workers: 2}
	want, err := c.Compress(f, 12)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				blob, err := c.Compress(f, 12)
				if err != nil {
					errs[g] = err
					return
				}
				if !bytes.Equal(blob, want) {
					errs[g] = errConcurrentMismatch{}
					return
				}
				if _, err := c.Decompress(blob); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

type errConcurrentMismatch struct{}

func (errConcurrentMismatch) Error() string { return "concurrent blob differs from reference" }
