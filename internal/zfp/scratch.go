package zfp

import (
	"sync"

	"github.com/fxrz-go/fxrz/internal/obs"
)

// Per-body scratch for the block pipeline, following the scratch-pool pattern
// of internal/sz and internal/entropy: a stationary sweep encodes the same
// field dozens of times, and the gather/quantize/negabinary buffers plus the
// plane-transpose matrix are the recurring allocations. Every buffer is fully
// overwritten before any read, so recycling is safe without zeroing (the
// plane matrix is cleared by gatherPlanes itself).
//
// Each get reports a hit or miss to the obs counters zfp/scratch_hit and
// zfp/scratch_miss.

// blockScratch bundles the per-block working set of encodeBody/decodeBody.
type blockScratch struct {
	vals   []float32
	q      []int32
	ub     []uint32
	planes [64]uint64
}

var scratchPool = sync.Pool{New: func() any { return new(blockScratch) }}

// getBlockScratch returns scratch sized for bs-coefficient blocks (bs ≤ 64).
func getBlockScratch(bs int) *blockScratch {
	s := scratchPool.Get().(*blockScratch)
	if cap(s.vals) < bs {
		obs.Inc("zfp/scratch_miss")
		s.vals = make([]float32, bs)
		s.q = make([]int32, bs)
		s.ub = make([]uint32, bs)
		return s
	}
	obs.Inc("zfp/scratch_hit")
	s.vals = s.vals[:bs]
	s.q = s.q[:bs]
	s.ub = s.ub[:bs]
	return s
}

func putBlockScratch(s *blockScratch) { scratchPool.Put(s) }
