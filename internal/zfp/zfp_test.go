package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/compress/compresstest"
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
)

func TestRoundTripRespectsTolerance(t *testing.T) {
	compresstest.RoundTrip(t, New(), []float64{1e-3, 1e-1, 1, 100},
		func(f *grid.Field, knob float64) float64 { return knob })
}

func TestRatioMonotone(t *testing.T) {
	compresstest.MonotoneRatio(t, New(), []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}, true)
}

func TestRejectsCorrupt(t *testing.T) {
	compresstest.RejectsCorrupt(t, New(), 1e-2)
}

func TestInvalidTolerance(t *testing.T) {
	f := grid.MustNew("t", 8)
	for _, tol := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := New().Compress(f, tol); err == nil {
			t.Errorf("tol=%v accepted", tol)
		}
	}
}

func TestStairwiseRatioCurve(t *testing.T) {
	// ZFP's hallmark: the ratio depends on the tolerance's exponent, so
	// tolerances within one octave produce identical streams.
	f := grid.MustNew("s", 32, 32, 32)
	for i := range f.Data {
		f.Data[i] = float32(math.Sin(float64(i) / 100))
	}
	c := New()
	r1, err := compress.CompressRatio(c, f, 0.010)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := compress.CompressRatio(c, f, 0.015) // same floor(log2)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("ratios differ within an octave: %v vs %v", r1, r2)
	}
	r3, err := compress.CompressRatio(c, f, 0.04) // two octaves up
	if err != nil {
		t.Fatal(err)
	}
	if r3 <= r1 {
		t.Errorf("ratio did not step up across octaves: %v vs %v", r3, r1)
	}
}

func TestLiftInverseNearExact(t *testing.T) {
	// The lifted transform loses at most a few low-order bits; verify
	// inv(fwd(x)) is within a tiny additive error of x.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 1000; trial++ {
		var p, q [4]int32
		for i := range p {
			p[i] = int32(rng.Intn(1<<28) - 1<<27)
			q[i] = p[i]
		}
		fwdLift(q[:], 0, 1)
		invLift(q[:], 0, 1)
		for i := range p {
			d := int64(p[i]) - int64(q[i])
			if d < -4 || d > 4 {
				t.Fatalf("lift round trip off by %d at %d: %v", d, i, p)
			}
		}
	}
}

func TestNegabinaryBijection(t *testing.T) {
	check := func(x int32) bool { return negabinaryToInt32(int32ToNegabinary(x)) == x }
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
	for _, x := range []int32{0, 1, -1, math.MaxInt32, math.MinInt32} {
		if negabinaryToInt32(int32ToNegabinary(x)) != x {
			t.Errorf("negabinary round trip failed for %d", x)
		}
	}
}

func TestPermutationIsBijective(t *testing.T) {
	for nd := 1; nd <= 3; nd++ {
		perm := perms[nd-1]
		n := 1
		for i := 0; i < nd; i++ {
			n *= 4
		}
		if len(perm) != n {
			t.Fatalf("nd=%d: perm size %d, want %d", nd, len(perm), n)
		}
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || p >= n || seen[p] {
				t.Fatalf("nd=%d: invalid perm %v", nd, perm)
			}
			seen[p] = true
		}
		// Low-sequency (DC) coefficient must come first.
		if perm[0] != 0 {
			t.Errorf("nd=%d: DC not first: %v", nd, perm[0])
		}
	}
}

func TestEncodeDecodeIntsMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		size := []int{4, 16, 64}[trial%3]
		data := make([]uint32, size)
		for i := range data {
			switch trial % 4 {
			case 0:
				data[i] = rng.Uint32()
			case 1:
				data[i] = rng.Uint32() >> 16 // small magnitudes
			case 2:
				data[i] = 0
			default:
				if i == 0 {
					data[i] = rng.Uint32()
				}
			}
		}
		maxprec := 1 + rng.Intn(32)
		for _, maxbits := range []int{unbounded, 30, 100, 1} {
			w := &entropy.BitWriter{}
			var planes [64]uint64
			used := encodeInts(w, maxbits, maxprec, data, &planes)
			if used > maxbits {
				t.Fatalf("encode used %d > budget %d", used, maxbits)
			}
			got := make([]uint32, size)
			r := entropy.NewBitReader(w.Bytes())
			dused := decodeInts(r, maxbits, maxprec, got)
			if dused != used {
				t.Fatalf("decode consumed %d bits, encode produced %d (maxbits=%d maxprec=%d)", dused, used, maxbits, maxprec)
			}
			// With an unbounded budget the planes >= kmin must match exactly.
			if maxbits == unbounded {
				kmin := 0
				if intPrec > maxprec {
					kmin = intPrec - maxprec
				}
				mask := uint32(0xFFFFFFFF) << uint(kmin)
				for i := range data {
					if data[i]&mask != got[i]&mask {
						t.Fatalf("plane mismatch at %d: %08x vs %08x (maxprec %d)", i, data[i]&mask, got[i]&mask, maxprec)
					}
				}
			}
		}
	}
}

func TestFixedRateExactBudget(t *testing.T) {
	f := grid.MustNew("r", 32, 32, 32)
	rng := rand.New(rand.NewSource(8))
	for i := range f.Data {
		f.Data[i] = rng.Float32()*2 - 1
	}
	c := NewFixedRate()
	for _, rate := range []float64{1, 2, 4, 8, 16} {
		blob, err := c.Compress(f, rate)
		if err != nil {
			t.Fatal(err)
		}
		g, err := c.Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		if g.Size() != f.Size() {
			t.Fatal("size mismatch")
		}
		ratio := compress.Ratio(f, blob)
		wantRatio := 32 / rate
		if ratio < wantRatio*0.85 || ratio > wantRatio*1.15 {
			t.Errorf("rate %g: ratio %.2f, want ~%.2f", rate, ratio, wantRatio)
		}
	}
}

func TestFixedRateQualityBelowFixedAccuracy(t *testing.T) {
	// The related-work observation: at matched ratios, fixed-rate ZFP has
	// clearly worse (or at best equal) accuracy than fixed-accuracy ZFP on
	// non-uniform data, because every block gets the same budget.
	f := grid.MustNew("mix", 32, 32, 32)
	for z := 0; z < 32; z++ {
		for y := 0; y < 32; y++ {
			for x := 0; x < 32; x++ {
				v := math.Sin(float64(x) / 3)
				if z >= 16 {
					v = 0.001 * math.Sin(float64(x*y)/7) // near-constant half
				}
				f.Set(float32(v), z, y, x)
			}
		}
	}
	acc := New()
	blobA, err := acc.Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	ratioA := compress.Ratio(f, blobA)
	// Fixed-rate at the same ratio.
	rate := 32 / ratioA
	fr := NewFixedRate()
	blobR, err := fr.Compress(f, rate)
	if err != nil {
		t.Fatal(err)
	}
	gA, _ := acc.Decompress(blobA)
	gR, err := fr.Decompress(blobR)
	if err != nil {
		t.Fatal(err)
	}
	errA, _ := compress.MaxAbsError(f, gA)
	errR, _ := compress.MaxAbsError(f, gR)
	if errR < errA {
		t.Errorf("fixed-rate error %g unexpectedly beat fixed-accuracy %g at matched ratio %.1f", errR, errA, ratioA)
	}
}

func Test4DFoldsTo3D(t *testing.T) {
	f := grid.MustNew("orbitals", 6, 5, 9, 7)
	rng := rand.New(rand.NewSource(10))
	for i := range f.Data {
		f.Data[i] = rng.Float32()
	}
	blob, err := New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New().Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Dims) != 4 || g.Dims[0] != 6 || g.Dims[3] != 7 {
		t.Fatalf("dims = %v", g.Dims)
	}
	maxErr, _ := compress.MaxAbsError(f, g)
	if maxErr > 1e-3 {
		t.Errorf("4D max error %g > 1e-3", maxErr)
	}
}
