package zfp

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/fxrz-go/fxrz/internal/entropy"
)

// encodeIntsPerPlane is the pre-transpose embedded coder: it re-gathers each
// bit plane with a 64-iteration scan. Kept as the oracle the one-pass
// transpose gather is property-tested (and benchmarked) against.
func encodeIntsPerPlane(w *entropy.BitWriter, maxbits, maxprec int, data []uint32) int {
	size := len(data)
	kmin := 0
	if intPrec > maxprec {
		kmin = intPrec - maxprec
	}
	bits := maxbits
	n := 0
	for k := intPrec; k > kmin && bits > 0; k-- {
		kk := uint(k - 1)
		var x uint64
		for i := 0; i < size; i++ {
			x |= uint64((data[i]>>kk)&1) << uint(i)
		}
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		w.WriteBits(x, uint(m))
		x >>= uint(m)
		for n < size && bits > 0 {
			bits--
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for n < size-1 && bits > 0 {
				bits--
				b := uint(x & 1)
				w.WriteBit(b)
				if b != 0 {
					break
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
	return maxbits - bits
}

// refBlocks yields coefficient blocks with distinct bit-plane structure.
func refBlocks(rng *rand.Rand) [][]uint32 {
	sizes := []int{1, 4, 16, 31, 64}
	var blocks [][]uint32
	for _, sz := range sizes {
		zero := make([]uint32, sz)
		dense := make([]uint32, sz)
		sparse := make([]uint32, sz)
		for i := range dense {
			dense[i] = rng.Uint32()
			if i%7 == 0 {
				sparse[i] = 1 << uint(rng.Intn(32))
			}
		}
		blocks = append(blocks, zero, dense, sparse)
	}
	return blocks
}

func TestGatherPlanesMatchesPerPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var planes [64]uint64
	for _, data := range refBlocks(rng) {
		gatherPlanes(data, &planes)
		for k := 0; k < intPrec; k++ {
			var want uint64
			for i := range data {
				want |= uint64((data[i]>>uint(k))&1) << uint(i)
			}
			if got := planes[63-k]; got != want {
				t.Fatalf("size %d plane %d: got %#x want %#x", len(data), k, got, want)
			}
		}
	}
}

func TestEncodeIntsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var planes [64]uint64
	for _, data := range refBlocks(rng) {
		for _, maxprec := range []int{1, 7, 16, intPrec} {
			for _, maxbits := range []int{1, 13, 100, 1 << 12} {
				wRef := &entropy.BitWriter{}
				wNew := &entropy.BitWriter{}
				uRef := encodeIntsPerPlane(wRef, maxbits, maxprec, data)
				uNew := encodeInts(wNew, maxbits, maxprec, data, &planes)
				if uRef != uNew {
					t.Fatalf("size %d prec %d bits %d: used %d vs %d",
						len(data), maxprec, maxbits, uRef, uNew)
				}
				if !bytes.Equal(wRef.Bytes(), wNew.Bytes()) {
					t.Fatalf("size %d prec %d bits %d: streams differ", len(data), maxprec, maxbits)
				}
			}
		}
	}
}
