package zfp

import (
	"math"

	"github.com/fxrz-go/fxrz/internal/entropy"
)

// Embedded bit-plane coding of a block of negabinary coefficients with
// group testing, transcribed from zfp's encode_ints/decode_ints. Bit planes
// are visited from most to least significant; within a plane, coefficients
// already known to be significant are coded verbatim and the remainder is
// coded with a unary run-length scheme that stops at the first new
// significant coefficient.

// transpose64 transposes a 64×64 bit matrix in place (Hacker's Delight
// 7-3): six block-swap stages of 32 word pairs each, instead of the 64×64
// single-bit moves of the naive loop. In the algorithm's convention, bit
// (63-c) of a[r] is the matrix element at row r, column c.
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := uint(32); j != 0; j, m = j>>1, m^(m<<(j>>1)) {
		for k := 0; k < 64; k = ((k | int(j)) + 1) &^ int(j) {
			t := (a[k] ^ (a[k|int(j)] >> j)) & m
			a[k] ^= t
			a[k|int(j)] ^= t << j
		}
	}
}

// gatherPlanes extracts every bit plane of a block in one transpose pass:
// after the call, planes[63-k] holds plane k across the coefficients
// (bit i set ⇔ bit k of data[i] set). Loading row 63-i with coefficient i
// cancels the transpose's bit-order convention, so no per-plane bit reversal
// is needed. Equivalent to, and property-tested against, the per-plane
// gather loop the embedded coder used before.
func gatherPlanes(data []uint32, planes *[64]uint64) {
	*planes = [64]uint64{}
	for i, v := range data {
		planes[63-i] = uint64(v)
	}
	transpose64(planes)
}

// encodeInts writes up to maxbits bits covering maxprec bit planes of data
// (negabinary, ordered by sequency) and returns the number of bits written.
// planes is caller-provided scratch for the one-pass plane gather.
func encodeInts(w *entropy.BitWriter, maxbits, maxprec int, data []uint32, planes *[64]uint64) int {
	size := len(data)
	kmin := 0
	if intPrec > maxprec {
		kmin = intPrec - maxprec
	}
	// Step 1 (hoisted): gather all bit planes in one transpose instead of
	// re-scanning the 64 coefficients once per plane.
	gatherPlanes(data, planes)
	bits := maxbits
	n := 0
	for k := intPrec; k > kmin && bits > 0; k-- {
		x := planes[64-k]
		// Step 2: plane bits of already-significant coefficients, verbatim.
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		w.WriteBits(x, uint(m))
		x >>= uint(m)
		// Step 3: unary run-length code the rest.
		for n < size && bits > 0 {
			bits--
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for n < size-1 && bits > 0 {
				bits--
				b := uint(x & 1)
				w.WriteBit(b)
				if b != 0 {
					break
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
	return maxbits - bits
}

// decodeInts mirrors encodeInts, reconstructing coefficients from up to
// maxbits bits; it returns the number of bits consumed. Reads past the
// encoded tail see zeros, matching zfp's stream semantics.
func decodeInts(r *entropy.BitReader, maxbits, maxprec int, data []uint32) int {
	size := len(data)
	for i := range data {
		data[i] = 0
	}
	kmin := 0
	if intPrec > maxprec {
		kmin = intPrec - maxprec
	}
	bits := maxbits
	n := 0
	for k := intPrec; k > kmin && bits > 0; k-- {
		kk := uint(k - 1)
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		x := r.TryReadBits(uint(m))
		for n < size && bits > 0 {
			bits--
			if r.TryReadBit() == 0 {
				break
			}
			for n < size-1 && bits > 0 {
				bits--
				if r.TryReadBit() != 0 {
					break
				}
				n++
			}
			x |= uint64(1) << uint(n)
			n++
		}
		for i := 0; x != 0; i, x = i+1, x>>1 {
			data[i] |= uint32(x&1) << kk
		}
	}
	return maxbits - bits
}

// skipInts consumes exactly the bits decodeInts would for a block of `size`
// coefficients, without materialising them, and returns the count. This is
// what makes a serial offset skim possible in fixed-accuracy mode: the
// embedded coder's control flow — plane reads, group tests, run-length
// walks — branches only on the values of bits already read, never on the
// reconstructed coefficients, so replaying the reads replays the consumption.
func skipInts(r *entropy.BitReader, maxbits, maxprec, size int) int {
	kmin := 0
	if intPrec > maxprec {
		kmin = intPrec - maxprec
	}
	bits := maxbits
	n := 0
	for k := intPrec; k > kmin && bits > 0; k-- {
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		r.TryReadBits(uint(m))
		for n < size && bits > 0 {
			bits--
			if r.TryReadBit() == 0 {
				break
			}
			for n < size-1 && bits > 0 {
				bits--
				if r.TryReadBit() != 0 {
					break
				}
				n++
			}
			n++
		}
	}
	return maxbits - bits
}

// blockEmax returns the common exponent for a block: the smallest e with
// max|v| < 2^e, and whether the block is entirely zero.
func blockEmax(vals []float32) (int, bool) {
	var m float64
	for _, v := range vals {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	if m == 0 {
		return 0, true
	}
	_, e := math.Frexp(m) // m = f * 2^e with f in [0.5, 1)
	return e, false
}

// precision returns the number of bit planes to code in fixed-accuracy mode,
// zfp's conservative formula: planes below minexp cannot affect the result
// by more than the tolerance once transform error growth (2 bits per
// dimension plus sign) is accounted for.
func precision(emax, minexp, nd int) int {
	p := emax - minexp + 2*(nd+1)
	if p < 0 {
		p = 0
	}
	if p > intPrec {
		p = intPrec
	}
	return p
}

// quantize converts block values to 30-bit fixed point at the common
// exponent; dequantize inverts it.
func quantize(vals []float32, emax int, out []int32) {
	s := math.Ldexp(1, intPrec-2-emax)
	for i, v := range vals {
		out[i] = int32(float64(v) * s)
	}
}

func dequantize(in []int32, emax int, out []float32) {
	s := math.Ldexp(1, emax-(intPrec-2))
	for i, q := range in {
		out[i] = float32(float64(q) * s)
	}
}
