package zfp

import (
	"math"

	"github.com/fxrz-go/fxrz/internal/entropy"
)

// Embedded bit-plane coding of a block of negabinary coefficients with
// group testing, transcribed from zfp's encode_ints/decode_ints. Bit planes
// are visited from most to least significant; within a plane, coefficients
// already known to be significant are coded verbatim and the remainder is
// coded with a unary run-length scheme that stops at the first new
// significant coefficient.

// encodeInts writes up to maxbits bits covering maxprec bit planes of data
// (negabinary, ordered by sequency) and returns the number of bits written.
func encodeInts(w *entropy.BitWriter, maxbits, maxprec int, data []uint32) int {
	size := len(data)
	kmin := 0
	if intPrec > maxprec {
		kmin = intPrec - maxprec
	}
	bits := maxbits
	n := 0
	for k := intPrec; k > kmin && bits > 0; k-- {
		kk := uint(k - 1)
		// Step 1: gather bit plane kk across coefficients (size <= 64).
		var x uint64
		for i := 0; i < size; i++ {
			x |= uint64((data[i]>>kk)&1) << uint(i)
		}
		// Step 2: plane bits of already-significant coefficients, verbatim.
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		w.WriteBits(x, uint(m))
		x >>= uint(m)
		// Step 3: unary run-length code the rest.
		for n < size && bits > 0 {
			bits--
			if x == 0 {
				w.WriteBit(0)
				break
			}
			w.WriteBit(1)
			for n < size-1 && bits > 0 {
				bits--
				b := uint(x & 1)
				w.WriteBit(b)
				if b != 0 {
					break
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
	return maxbits - bits
}

// decodeInts mirrors encodeInts, reconstructing coefficients from up to
// maxbits bits; it returns the number of bits consumed. Reads past the
// encoded tail see zeros, matching zfp's stream semantics.
func decodeInts(r *entropy.BitReader, maxbits, maxprec int, data []uint32) int {
	size := len(data)
	for i := range data {
		data[i] = 0
	}
	kmin := 0
	if intPrec > maxprec {
		kmin = intPrec - maxprec
	}
	bits := maxbits
	n := 0
	for k := intPrec; k > kmin && bits > 0; k-- {
		kk := uint(k - 1)
		m := n
		if m > bits {
			m = bits
		}
		bits -= m
		x := r.TryReadBits(uint(m))
		for n < size && bits > 0 {
			bits--
			if r.TryReadBit() == 0 {
				break
			}
			for n < size-1 && bits > 0 {
				bits--
				if r.TryReadBit() != 0 {
					break
				}
				n++
			}
			x |= uint64(1) << uint(n)
			n++
		}
		for i := 0; x != 0; i, x = i+1, x>>1 {
			data[i] |= uint32(x&1) << kk
		}
	}
	return maxbits - bits
}

// blockEmax returns the common exponent for a block: the smallest e with
// max|v| < 2^e, and whether the block is entirely zero.
func blockEmax(vals []float32) (int, bool) {
	var m float64
	for _, v := range vals {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	if m == 0 {
		return 0, true
	}
	_, e := math.Frexp(m) // m = f * 2^e with f in [0.5, 1)
	return e, false
}

// precision returns the number of bit planes to code in fixed-accuracy mode,
// zfp's conservative formula: planes below minexp cannot affect the result
// by more than the tolerance once transform error growth (2 bits per
// dimension plus sign) is accounted for.
func precision(emax, minexp, nd int) int {
	p := emax - minexp + 2*(nd+1)
	if p < 0 {
		p = 0
	}
	if p > intPrec {
		p = intPrec
	}
	return p
}

// quantize converts block values to 30-bit fixed point at the common
// exponent; dequantize inverts it.
func quantize(vals []float32, emax int, out []int32) {
	s := math.Ldexp(1, intPrec-2-emax)
	for i, v := range vals {
		out[i] = int32(float64(v) * s)
	}
}

func dequantize(in []int32, emax int, out []float32) {
	s := math.Ldexp(1, emax-(intPrec-2))
	for i, q := range in {
		out[i] = float32(float64(q) * s)
	}
}
