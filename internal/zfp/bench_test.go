package zfp

import (
	"math/rand"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress/compresstest"
	"github.com/fxrz-go/fxrz/internal/entropy"
)

func BenchmarkCompress(b *testing.B)          { compresstest.BenchCompress(b, New(), 1e-3) }
func BenchmarkDecompress(b *testing.B)        { compresstest.BenchDecompress(b, New(), 1e-3) }
func BenchmarkFixedRateCompress(b *testing.B) { compresstest.BenchCompress(b, NewFixedRate(), 8) }

// BenchmarkKernelEncodeInts compares the historical per-plane gather (64
// coefficient scans per block) against the one-pass bit-matrix transpose on a
// dense 4³ block at full precision. Recorded in BENCH_kernels.json as
// zfp_encode_ints.
func BenchmarkKernelEncodeInts(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]uint32, 64)
	for i := range data {
		data[i] = rng.Uint32()
	}
	const maxbits = 1 << 12
	b.Run("perplane", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := entropy.NewPooledBitWriter()
			encodeIntsPerPlane(w, maxbits, intPrec, data)
			entropy.RecycleBuffer(w.Bytes())
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(data)), "ns/elem")
	})
	b.Run("transposed", func(b *testing.B) {
		var planes [64]uint64
		for i := 0; i < b.N; i++ {
			w := entropy.NewPooledBitWriter()
			encodeInts(w, maxbits, intPrec, data, &planes)
			entropy.RecycleBuffer(w.Bytes())
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(data)), "ns/elem")
	})
}
