// Package metrics provides the data-quality and accuracy statistics the
// evaluation reports: PSNR and error norms for distortion analysis (Fig 10),
// histograms and standard deviation for dataset-variability analysis
// (Figs 8–9), and the estimation-error formula (Formula 5) every accuracy
// table is built from.
package metrics

import (
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// EstimationError implements Formula (5): |TCR - MCR| / TCR.
func EstimationError(tcr, mcr float64) float64 {
	if tcr == 0 {
		return math.Inf(1)
	}
	return math.Abs(tcr-mcr) / tcr
}

// MSE returns the mean squared error between two equally-shaped fields.
func MSE(a, b *grid.Field) (float64, error) {
	if a.Size() != b.Size() {
		return 0, fmt.Errorf("metrics: size mismatch %d vs %d", a.Size(), b.Size())
	}
	var s float64
	for i := range a.Data {
		d := float64(a.Data[i]) - float64(b.Data[i])
		s += d * d
	}
	return s / float64(a.Size()), nil
}

// PSNR returns the peak signal-to-noise ratio in dB, with the peak taken as
// the original field's value range (the convention in the lossy-compression
// community). Identical fields give +Inf.
func PSNR(orig, rec *grid.Field) (float64, error) {
	mse, err := MSE(orig, rec)
	if err != nil {
		return 0, err
	}
	if mse == 0 {
		return math.Inf(1), nil
	}
	vr := orig.ValueRange()
	if vr == 0 {
		return 0, fmt.Errorf("metrics: constant field has no PSNR")
	}
	return 20*math.Log10(vr) - 10*math.Log10(mse), nil
}

// MaxRelError returns max |a-b| / valueRange(a), a scale-free distortion
// measure.
func MaxRelError(a, b *grid.Field) (float64, error) {
	if a.Size() != b.Size() {
		return 0, fmt.Errorf("metrics: size mismatch %d vs %d", a.Size(), b.Size())
	}
	vr := a.ValueRange()
	if vr == 0 {
		return 0, nil
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m / vr, nil
}

// StdDev returns the population standard deviation of the field's values,
// the statistic Fig 9 uses to demonstrate train/test variability.
func StdDev(f *grid.Field) float64 {
	n := len(f.Data)
	if n == 0 {
		return 0
	}
	mean := f.Mean()
	var s float64
	for _, v := range f.Data {
		d := float64(v) - mean
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}

// Histogram bins the field's values into `bins` equal-width buckets over its
// value range and returns the counts plus the bucket edges (len bins+1).
// Used for the data-distribution comparison of Fig 8.
func Histogram(f *grid.Field, bins int) (counts []int, edges []float64, err error) {
	if bins <= 0 {
		return nil, nil, fmt.Errorf("metrics: bins must be positive, got %d", bins)
	}
	mn, mx := f.Range()
	counts = make([]int, bins)
	edges = make([]float64, bins+1)
	width := (mx - mn) / float64(bins)
	for i := range edges {
		edges[i] = mn + float64(i)*width
	}
	if width == 0 {
		counts[0] = f.Size()
		return counts, edges, nil
	}
	for _, v := range f.Data {
		b := int((float64(v) - mn) / width)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, edges, nil
}

// HistogramDistance returns the L1 distance between the normalised
// histograms of two fields over a shared range — a scalar summary of "how
// different are these distributions" for the Fig 8 experiment. 0 means
// identical, 2 means disjoint.
func HistogramDistance(a, b *grid.Field, bins int) (float64, error) {
	if bins <= 0 {
		return 0, fmt.Errorf("metrics: bins must be positive, got %d", bins)
	}
	amn, amx := a.Range()
	bmn, bmx := b.Range()
	mn, mx := math.Min(amn, bmn), math.Max(amx, bmx)
	if mx == mn {
		return 0, nil
	}
	width := (mx - mn) / float64(bins)
	count := func(f *grid.Field) []float64 {
		h := make([]float64, bins)
		for _, v := range f.Data {
			k := int((float64(v) - mn) / width)
			if k >= bins {
				k = bins - 1
			}
			if k < 0 {
				k = 0
			}
			h[k]++
		}
		for i := range h {
			h[i] /= float64(f.Size())
		}
		return h
	}
	ha, hb := count(a), count(b)
	var d float64
	for i := range ha {
		d += math.Abs(ha[i] - hb[i])
	}
	return d, nil
}

// StructureDisplacement measures how far local maxima ("halos" in the Nyx
// analysis of Fig 10) move between an original and a reconstructed field: it
// returns the fraction of the top-k blocks (by block maximum) whose argmax
// position changed. It is the stand-in for the paper's halo-mislocation
// percentages (0.46% / 10.81% / 79.17% at eb 0.001 / 0.05 / 0.45).
func StructureDisplacement(orig, rec *grid.Field, blockSide int) (float64, error) {
	if orig.Size() != rec.Size() {
		return 0, fmt.Errorf("metrics: size mismatch")
	}
	if blockSide <= 0 {
		return 0, fmt.Errorf("metrics: block side must be positive")
	}
	type argmax struct {
		idx int
		val float32
	}
	locate := func(f *grid.Field) []argmax {
		var out []argmax
		grid.VisitBlocks(f, blockSide, func(b grid.Block, vals []float32) {
			best := 0
			for i, v := range vals {
				if v > vals[best] {
					best = i
				}
			}
			out = append(out, argmax{idx: best, val: vals[best]})
		})
		return out
	}
	lo, lr := locate(orig), locate(rec)
	moved, total := 0, 0
	for i := range lo {
		if lo[i].val == 0 {
			continue // empty region, not a structure
		}
		total++
		if lo[i].idx != lr[i].idx {
			moved++
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(moved) / float64(total), nil
}

// BoundForPSNR returns the absolute error bound expected to achieve the
// target PSNR (dB) under an SZ-style quantizer, whose error is approximately
// uniform in [-eb, eb] (MSE = eb²/3). This is the analytic PSNR→bound
// mapping of the related work (Tao et al.); combined with FXRZ it lets users
// target either a ratio or a quality level.
func BoundForPSNR(f *grid.Field, targetPSNR float64) (float64, error) {
	vr := f.ValueRange()
	if vr <= 0 {
		return 0, fmt.Errorf("metrics: constant field has no PSNR-derived bound")
	}
	if targetPSNR <= 0 {
		return 0, fmt.Errorf("metrics: target PSNR must be positive, got %v", targetPSNR)
	}
	return vr * math.Pow(10, -targetPSNR/20) * math.Sqrt(3), nil
}

// ExpectedPSNR inverts BoundForPSNR: the PSNR an SZ-style quantizer at the
// bound should deliver.
func ExpectedPSNR(f *grid.Field, eb float64) (float64, error) {
	vr := f.ValueRange()
	if vr <= 0 || eb <= 0 {
		return 0, fmt.Errorf("metrics: need positive range and bound")
	}
	return 20 * math.Log10(vr/(eb/math.Sqrt(3))), nil
}
