package metrics

import (
	"fmt"
	"math"
	"strings"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// RenderSlice draws a z-slice of a 3D (or 2D) field as an ASCII intensity
// map, the terminal stand-in for the paper's visualization figures (Fig 4's
// RTM wave textures, Fig 8/9's train-test comparisons, Fig 10's
// reconstruction quality). Values are ranked into ten brightness levels over
// the slice's own range; width controls the horizontal resolution.
func RenderSlice(f *grid.Field, z, width int) (string, error) {
	var ny, nx, base int
	switch f.NDims() {
	case 2:
		ny, nx = f.Dims[0], f.Dims[1]
	case 3:
		if z < 0 || z >= f.Dims[0] {
			return "", fmt.Errorf("metrics: slice %d out of range [0, %d)", z, f.Dims[0])
		}
		ny, nx = f.Dims[1], f.Dims[2]
		base = z * ny * nx
	default:
		return "", fmt.Errorf("metrics: RenderSlice needs a 2D or 3D field, got %dD", f.NDims())
	}
	if width <= 0 {
		width = 64
	}
	if width > nx {
		width = nx
	}
	// Terminal cells are ~2× taller than wide; halve the row resolution.
	height := ny * width / nx / 2
	if height < 1 {
		height = 1
	}

	mn, mx := math.Inf(1), math.Inf(-1)
	for i := 0; i < ny*nx; i++ {
		v := float64(f.Data[base+i])
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
	}
	ramp := []rune(" .:-=+*#%@")
	var b strings.Builder
	for r := 0; r < height; r++ {
		y := r * (ny - 1) / maxI(height-1, 1)
		for c := 0; c < width; c++ {
			x := c * (nx - 1) / maxI(width-1, 1)
			v := float64(f.Data[base+y*nx+x])
			level := 0
			if mx > mn {
				level = int((v - mn) / (mx - mn) * float64(len(ramp)-1))
			}
			if level < 0 {
				level = 0
			}
			if level >= len(ramp) {
				level = len(ramp) - 1
			}
			b.WriteRune(ramp[level])
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// RenderConstantBlocks draws the constant/non-constant block classification
// of a z-slice — the paper's Fig 6 ("Illustration of Constant/Non-constant
// Blocks" on Nyx temperature). Constant blocks print as '.', non-constant as
// '#'. The threshold convention matches core.NonConstantRatio: a block is
// constant when its value range is below lambda·|mean of the whole field|.
func RenderConstantBlocks(f *grid.Field, z, blockSide int, lambda float64) (string, error) {
	if f.NDims() != 3 {
		return "", fmt.Errorf("metrics: RenderConstantBlocks needs a 3D field, got %dD", f.NDims())
	}
	if z < 0 || z >= f.Dims[0] {
		return "", fmt.Errorf("metrics: slice %d out of range", z)
	}
	if blockSide <= 0 {
		blockSide = 4
	}
	if lambda <= 0 {
		lambda = 0.15
	}
	threshold := lambda * math.Abs(f.Mean())
	ny, nx := f.Dims[1], f.Dims[2]
	base := z * ny * nx
	var b strings.Builder
	for by := 0; by < ny; by += blockSide {
		for bx := 0; bx < nx; bx += blockSide {
			mn, mx := math.Inf(1), math.Inf(-1)
			for y := by; y < by+blockSide && y < ny; y++ {
				for x := bx; x < bx+blockSide && x < nx; x++ {
					v := float64(f.Data[base+y*nx+x])
					mn = math.Min(mn, v)
					mx = math.Max(mx, v)
				}
			}
			if mx-mn < threshold {
				b.WriteByte('.')
			} else {
				b.WriteByte('#')
			}
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
