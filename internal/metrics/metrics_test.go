package metrics

import (
	"math"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

func TestEstimationError(t *testing.T) {
	if got := EstimationError(100, 92); math.Abs(got-0.08) > 1e-12 {
		t.Errorf("EstimationError(100, 92) = %v", got)
	}
	if got := EstimationError(100, 108); math.Abs(got-0.08) > 1e-12 {
		t.Errorf("overshoot: %v", got)
	}
	if !math.IsInf(EstimationError(0, 5), 1) {
		t.Error("zero TCR should give +Inf")
	}
}

func TestMSEAndPSNR(t *testing.T) {
	a := grid.MustNew("a", 4)
	b := grid.MustNew("b", 4)
	copy(a.Data, []float32{0, 1, 2, 3})
	copy(b.Data, []float32{0, 1, 2, 3})
	mse, err := MSE(a, b)
	if err != nil || mse != 0 {
		t.Fatalf("identical MSE = %v, %v", mse, err)
	}
	p, err := PSNR(a, b)
	if err != nil || !math.IsInf(p, 1) {
		t.Fatalf("identical PSNR = %v, %v", p, err)
	}
	b.Data[0] = 1 // one error of 1 over 4 points: MSE 0.25
	mse, _ = MSE(a, b)
	if mse != 0.25 {
		t.Errorf("MSE = %v", mse)
	}
	p, _ = PSNR(a, b)
	want := 20*math.Log10(3) - 10*math.Log10(0.25)
	if math.Abs(p-want) > 1e-9 {
		t.Errorf("PSNR = %v, want %v", p, want)
	}
	if _, err := MSE(a, grid.MustNew("c", 5)); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestPSNRDecreasesWithDistortion(t *testing.T) {
	a := grid.MustNew("a", 100)
	for i := range a.Data {
		a.Data[i] = float32(math.Sin(float64(i) / 10))
	}
	noisy := func(amp float32) *grid.Field {
		b := a.Clone()
		for i := range b.Data {
			if i%2 == 0 {
				b.Data[i] += amp
			} else {
				b.Data[i] -= amp
			}
		}
		return b
	}
	p1, _ := PSNR(a, noisy(0.01))
	p2, _ := PSNR(a, noisy(0.1))
	if p2 >= p1 {
		t.Errorf("PSNR should fall with distortion: %v vs %v", p1, p2)
	}
}

func TestMaxRelError(t *testing.T) {
	a := grid.MustNew("a", 3)
	copy(a.Data, []float32{0, 5, 10})
	b := a.Clone()
	b.Data[1] = 6
	got, err := MaxRelError(a, b)
	if err != nil || math.Abs(got-0.1) > 1e-9 {
		t.Errorf("MaxRelError = %v, %v", got, err)
	}
}

func TestStdDev(t *testing.T) {
	f := grid.MustNew("f", 4)
	copy(f.Data, []float32{1, 3, 1, 3})
	if got := StdDev(f); math.Abs(got-1) > 1e-9 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	f := grid.MustNew("f", 6)
	copy(f.Data, []float32{0, 0.1, 0.5, 0.9, 1.0, 0.4})
	counts, edges, err := Histogram(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 || len(edges) != 3 {
		t.Fatalf("shapes: %v %v", counts, edges)
	}
	if counts[0]+counts[1] != 6 {
		t.Errorf("counts %v don't sum to size", counts)
	}
	// Half-open bins: 0.5 falls in the upper bin.
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("counts = %v, want [3 3]", counts)
	}
	if _, _, err := Histogram(f, 0); err == nil {
		t.Error("zero bins accepted")
	}
	c := grid.MustNew("c", 3)
	c.Fill(7)
	counts, _, err = Histogram(c, 4)
	if err != nil || counts[0] != 3 {
		t.Errorf("constant field histogram: %v, %v", counts, err)
	}
}

func TestHistogramDistance(t *testing.T) {
	a := grid.MustNew("a", 100)
	b := grid.MustNew("b", 100)
	for i := range a.Data {
		a.Data[i] = float32(i) / 100
		b.Data[i] = float32(i) / 100
	}
	d, err := HistogramDistance(a, b, 10)
	if err != nil || d != 0 {
		t.Errorf("identical distributions: d=%v err=%v", d, err)
	}
	for i := range b.Data {
		b.Data[i] += 10 // disjoint support
	}
	d, _ = HistogramDistance(a, b, 10)
	if d < 1.9 {
		t.Errorf("disjoint distributions: d=%v, want ~2", d)
	}
}

func TestStructureDisplacement(t *testing.T) {
	a := grid.MustNew("a", 8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			a.Set(float32(1+0.1*float64(x%3)), y, x)
		}
	}
	a.Set(10, 1, 1) // a "halo" in block (0,0)
	a.Set(12, 5, 6) // a "halo" in block (1,1)

	same := a.Clone()
	d, err := StructureDisplacement(a, same, 4)
	if err != nil || d != 0 {
		t.Errorf("identical fields: d=%v err=%v", d, err)
	}

	moved := a.Clone()
	moved.Set(1, 1, 1)
	moved.Set(11, 2, 2) // halo moved within block (0,0)
	d, _ = StructureDisplacement(a, moved, 4)
	if d <= 0 {
		t.Errorf("moved structure not detected: d=%v", d)
	}
	if _, err := StructureDisplacement(a, grid.MustNew("c", 4), 4); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestRenderSlice(t *testing.T) {
	f := grid.MustNew("r", 4, 16, 32)
	for i := range f.Data {
		f.Data[i] = float32(i % 7)
	}
	img, err := RenderSlice(f, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(img) == 0 {
		t.Fatal("empty render")
	}
	if _, err := RenderSlice(f, 99, 32); err == nil {
		t.Error("out-of-range slice accepted")
	}
	if _, err := RenderSlice(grid.MustNew("x", 2, 2, 2, 2), 0, 8); err == nil {
		t.Error("4D field accepted")
	}
	// 2D works.
	g := grid.MustNew("g", 8, 8)
	if _, err := RenderSlice(g, 0, 8); err != nil {
		t.Errorf("2D render: %v", err)
	}
}

func TestRenderConstantBlocks(t *testing.T) {
	f := grid.MustNew("c", 4, 8, 8)
	f.Fill(10)
	// One rough block in the corner of slice 1.
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			f.Set(float32(10+y*x), 1, y, x)
		}
	}
	m, err := RenderConstantBlocks(f, 1, 4, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if m != "#.\n..\n" {
		t.Errorf("block map = %q, want one non-constant corner", m)
	}
	if _, err := RenderConstantBlocks(grid.MustNew("x", 4, 4), 0, 4, 0.15); err == nil {
		t.Error("2D field accepted")
	}
}

func TestBoundForPSNRInverse(t *testing.T) {
	f := grid.MustNew("p", 100)
	for i := range f.Data {
		f.Data[i] = float32(i) / 10
	}
	for _, target := range []float64{40, 60, 80} {
		eb, err := BoundForPSNR(f, target)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ExpectedPSNR(f, eb)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(back-target) > 1e-9 {
			t.Errorf("target %v: round trip %v", target, back)
		}
	}
	c := grid.MustNew("c", 4)
	c.Fill(1)
	if _, err := BoundForPSNR(c, 50); err == nil {
		t.Error("constant field accepted")
	}
	if _, err := BoundForPSNR(f, -5); err == nil {
		t.Error("negative PSNR accepted")
	}
}
