package sz

// Dimension-specialized Lorenzo quantization kernels.
//
// The generic codec walks a subset-mask loop plus a coordinate odometer for
// every point (see lorenzo in sz.go). For the 1D/2D/3D fields the paper's
// datasets actually use, the kernels below split each row into its first
// column (a boundary point with a reduced stencil) and the row interior,
// where the full fixed-offset stencil applies and the inner loop is free of
// subset masks, odometer steps and boundary branches.
//
// Bit-identity contract: every kernel accumulates the same stencil terms in
// the same subset-mask order as lorenzo.predict (pred starts at 0.0 and each
// term is added or subtracted in mask order), and the quantize/escape step is
// the shared encPoint/decPoint, so the specialized paths produce byte-for-byte
// the same compressed blobs and bit-for-bit the same reconstructions as the
// generic path. TestQuantizeKernelsMatchGeneric and FuzzDecompress pin this.

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
)

// encPoint quantizes point idx against its Lorenzo prediction: it stores the
// residual code and the decoder-visible reconstruction, or escapes the value
// to the raw pool when the residual cannot be represented within the bound.
// raw must have enough capacity for every possible escape (f.Size()), so the
// append never reallocates.
func encPoint(data []float32, idx int, pred, eb, twoEB float64, codes []uint16, recon, raw []float32) []float32 {
	v := float64(data[idx])
	q := math.Round((v - pred) / twoEB)
	if !math.IsNaN(q) && !math.IsInf(q, 0) {
		if code := int64(q) + radius; code > 0 && code < intervals {
			// The reconstruction is rounded to float32 exactly as the
			// decoder will produce it; accept only if the bound holds
			// after that rounding.
			rec := float32(pred + twoEB*q)
			if math.Abs(float64(rec)-v) <= eb {
				codes[idx] = uint16(code)
				recon[idx] = rec
				return raw
			}
		}
	}
	codes[idx] = 0
	recon[idx] = data[idx]
	return append(raw, data[idx])
}

// decPoint reconstructs point idx from its quantization code, pulling escaped
// values from the raw pool. It returns the updated raw cursor, or -1 when the
// pool is exhausted (the caller reports corruption).
func decPoint(data []float32, idx int, pred, twoEB float64, codeBytes, rawPayload []byte, nraw uint64, rawPos int) int {
	code := binary.LittleEndian.Uint16(codeBytes[2*idx:])
	if code != 0 {
		data[idx] = float32(pred + twoEB*float64(int(code)-radius))
		return rawPos
	}
	if uint64(rawPos) >= nraw {
		return -1
	}
	data[idx] = math.Float32frombits(binary.LittleEndian.Uint32(rawPayload[4*rawPos:]))
	return rawPos + 1
}

// quantizeField runs the prediction/quantization pass of Compress, writing a
// code and reconstruction for every point and appending escaped values to
// raw (whose capacity must cover f.Size()). forceGeneric routes through the
// N-d odometer path; it exists so tests and benchmarks can compare the
// specialized kernels against their oracle.
func quantizeField(f *grid.Field, eb float64, codes []uint16, recon, raw []float32, forceGeneric bool) []float32 {
	if !forceGeneric {
		switch len(f.Dims) {
		case 1:
			obs.Add("sz/quantize_fast_points", int64(len(f.Data)))
			return quantize1D(f.Data, eb, codes, recon, raw)
		case 2:
			obs.Add("sz/quantize_fast_points", int64(len(f.Data)))
			return quantize2D(f.Data, f.Dims, eb, codes, recon, raw)
		case 3:
			obs.Add("sz/quantize_fast_points", int64(len(f.Data)))
			return quantize3D(f.Data, f.Dims, eb, codes, recon, raw)
		}
	}
	obs.Add("sz/quantize_generic_points", int64(len(f.Data)))
	return quantizeFieldGeneric(f, eb, codes, recon, raw)
}

// quantizeFieldGeneric is the N-dimensional odometer path: the fallback for
// 4D fields and the oracle the specialized kernels are tested against.
func quantizeFieldGeneric(f *grid.Field, eb float64, codes []uint16, recon, raw []float32) []float32 {
	twoEB := 2 * eb
	lor := newLorenzo(f.Dims)
	for idx := range f.Data {
		raw = encPoint(f.Data, idx, lor.predict(recon, idx), eb, twoEB, codes, recon, raw)
		lor.advance()
	}
	return raw
}

func quantize1D(data []float32, eb float64, codes []uint16, recon, raw []float32) []float32 {
	twoEB := 2 * eb
	if len(data) == 0 {
		return raw
	}
	raw = encPoint(data, 0, 0, eb, twoEB, codes, recon, raw)
	for i := 1; i < len(data); i++ {
		pred := 0.0
		pred += float64(recon[i-1])
		raw = encPoint(data, i, pred, eb, twoEB, codes, recon, raw)
	}
	return raw
}

func quantize2D(data []float32, dims []int, eb float64, codes []uint16, recon, raw []float32) []float32 {
	ny, nx := dims[0], dims[1]
	twoEB := 2 * eb
	idx := 0
	for y := 0; y < ny; y++ {
		if y == 0 {
			raw = encPoint(data, 0, 0, eb, twoEB, codes, recon, raw)
			idx++
			for x := 1; x < nx; x++ {
				pred := 0.0
				pred += float64(recon[idx-1])
				raw = encPoint(data, idx, pred, eb, twoEB, codes, recon, raw)
				idx++
			}
			continue
		}
		pred := 0.0
		pred += float64(recon[idx-nx])
		raw = encPoint(data, idx, pred, eb, twoEB, codes, recon, raw)
		idx++
		for x := 1; x < nx; x++ {
			p := 0.0
			p += float64(recon[idx-nx])
			p += float64(recon[idx-1])
			p -= float64(recon[idx-nx-1])
			raw = encPoint(data, idx, p, eb, twoEB, codes, recon, raw)
			idx++
		}
	}
	return raw
}

func quantize3D(data []float32, dims []int, eb float64, codes []uint16, recon, raw []float32) []float32 {
	nz, ny, nx := dims[0], dims[1], dims[2]
	s1 := nx
	s0 := ny * nx
	twoEB := 2 * eb
	idx := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			// First column of the row: stencil terms that look back along x
			// drop out; the rest keep their subset-mask accumulation order.
			pred := 0.0
			if z > 0 {
				pred += float64(recon[idx-s0])
			}
			if y > 0 {
				pred += float64(recon[idx-s1])
				if z > 0 {
					pred -= float64(recon[idx-s0-s1])
				}
			}
			raw = encPoint(data, idx, pred, eb, twoEB, codes, recon, raw)
			idx++
			// Row interior: one fixed stencil per row class, branch-free in x.
			switch {
			case z > 0 && y > 0:
				for x := 1; x < nx; x++ {
					p := 0.0
					p += float64(recon[idx-s0])
					p += float64(recon[idx-s1])
					p -= float64(recon[idx-s0-s1])
					p += float64(recon[idx-1])
					p -= float64(recon[idx-s0-1])
					p -= float64(recon[idx-s1-1])
					p += float64(recon[idx-s0-s1-1])
					raw = encPoint(data, idx, p, eb, twoEB, codes, recon, raw)
					idx++
				}
			case z > 0:
				for x := 1; x < nx; x++ {
					p := 0.0
					p += float64(recon[idx-s0])
					p += float64(recon[idx-1])
					p -= float64(recon[idx-s0-1])
					raw = encPoint(data, idx, p, eb, twoEB, codes, recon, raw)
					idx++
				}
			case y > 0:
				for x := 1; x < nx; x++ {
					p := 0.0
					p += float64(recon[idx-s1])
					p += float64(recon[idx-1])
					p -= float64(recon[idx-s1-1])
					raw = encPoint(data, idx, p, eb, twoEB, codes, recon, raw)
					idx++
				}
			default:
				for x := 1; x < nx; x++ {
					p := 0.0
					p += float64(recon[idx-1])
					raw = encPoint(data, idx, p, eb, twoEB, codes, recon, raw)
					idx++
				}
			}
		}
	}
	return raw
}

// errRawExhausted is the corruption error shared by every reconstruction
// kernel when a stream escapes more points than its raw pool holds.
func errRawExhausted() error {
	return fmt.Errorf("sz: %w: raw pool exhausted", compress.ErrCorrupt)
}

// reconstructField mirrors quantizeField on the decode side, dispatching to
// the same interior/boundary row split.
func reconstructField(f *grid.Field, eb float64, codeBytes, rawPayload []byte, nraw uint64, forceGeneric bool) error {
	if !forceGeneric {
		switch len(f.Dims) {
		case 1:
			obs.Add("sz/reconstruct_fast_points", int64(len(f.Data)))
			return reconstruct1D(f.Data, eb, codeBytes, rawPayload, nraw)
		case 2:
			obs.Add("sz/reconstruct_fast_points", int64(len(f.Data)))
			return reconstruct2D(f.Data, f.Dims, eb, codeBytes, rawPayload, nraw)
		case 3:
			obs.Add("sz/reconstruct_fast_points", int64(len(f.Data)))
			return reconstruct3D(f.Data, f.Dims, eb, codeBytes, rawPayload, nraw)
		}
	}
	obs.Add("sz/reconstruct_generic_points", int64(len(f.Data)))
	return reconstructFieldGeneric(f, eb, codeBytes, rawPayload, nraw)
}

// reconstructFieldGeneric is the N-d odometer decode path (4D fallback and
// test oracle). The prediction is pure, so computing it for escaped points
// too (which the dispatch kernels also do) cannot change the output.
func reconstructFieldGeneric(f *grid.Field, eb float64, codeBytes, rawPayload []byte, nraw uint64) error {
	twoEB := 2 * eb
	lor := newLorenzo(f.Dims)
	rawPos := 0
	for idx := range f.Data {
		rawPos = decPoint(f.Data, idx, lor.predict(f.Data, idx), twoEB, codeBytes, rawPayload, nraw, rawPos)
		if rawPos < 0 {
			return errRawExhausted()
		}
		lor.advance()
	}
	return nil
}

func reconstruct1D(data []float32, eb float64, codeBytes, rawPayload []byte, nraw uint64) error {
	twoEB := 2 * eb
	if len(data) == 0 {
		return nil
	}
	rawPos := decPoint(data, 0, 0, twoEB, codeBytes, rawPayload, nraw, 0)
	for i := 1; i < len(data) && rawPos >= 0; i++ {
		pred := 0.0
		pred += float64(data[i-1])
		rawPos = decPoint(data, i, pred, twoEB, codeBytes, rawPayload, nraw, rawPos)
	}
	if rawPos < 0 {
		return errRawExhausted()
	}
	return nil
}

func reconstruct2D(data []float32, dims []int, eb float64, codeBytes, rawPayload []byte, nraw uint64) error {
	ny, nx := dims[0], dims[1]
	twoEB := 2 * eb
	idx := 0
	rawPos := 0
	for y := 0; y < ny && rawPos >= 0; y++ {
		if y == 0 {
			rawPos = decPoint(data, 0, 0, twoEB, codeBytes, rawPayload, nraw, rawPos)
			idx++
			for x := 1; x < nx && rawPos >= 0; x++ {
				pred := 0.0
				pred += float64(data[idx-1])
				rawPos = decPoint(data, idx, pred, twoEB, codeBytes, rawPayload, nraw, rawPos)
				idx++
			}
			continue
		}
		pred := 0.0
		pred += float64(data[idx-nx])
		rawPos = decPoint(data, idx, pred, twoEB, codeBytes, rawPayload, nraw, rawPos)
		idx++
		for x := 1; x < nx && rawPos >= 0; x++ {
			p := 0.0
			p += float64(data[idx-nx])
			p += float64(data[idx-1])
			p -= float64(data[idx-nx-1])
			rawPos = decPoint(data, idx, p, twoEB, codeBytes, rawPayload, nraw, rawPos)
			idx++
		}
	}
	if rawPos < 0 {
		return errRawExhausted()
	}
	return nil
}

func reconstruct3D(data []float32, dims []int, eb float64, codeBytes, rawPayload []byte, nraw uint64) error {
	nz, ny, nx := dims[0], dims[1], dims[2]
	s1 := nx
	s0 := ny * nx
	twoEB := 2 * eb
	idx := 0
	rawPos := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			pred := 0.0
			if z > 0 {
				pred += float64(data[idx-s0])
			}
			if y > 0 {
				pred += float64(data[idx-s1])
				if z > 0 {
					pred -= float64(data[idx-s0-s1])
				}
			}
			rawPos = decPoint(data, idx, pred, twoEB, codeBytes, rawPayload, nraw, rawPos)
			idx++
			switch {
			case z > 0 && y > 0:
				for x := 1; x < nx && rawPos >= 0; x++ {
					p := 0.0
					p += float64(data[idx-s0])
					p += float64(data[idx-s1])
					p -= float64(data[idx-s0-s1])
					p += float64(data[idx-1])
					p -= float64(data[idx-s0-1])
					p -= float64(data[idx-s1-1])
					p += float64(data[idx-s0-s1-1])
					rawPos = decPoint(data, idx, p, twoEB, codeBytes, rawPayload, nraw, rawPos)
					idx++
				}
			case z > 0:
				for x := 1; x < nx && rawPos >= 0; x++ {
					p := 0.0
					p += float64(data[idx-s0])
					p += float64(data[idx-1])
					p -= float64(data[idx-s0-1])
					rawPos = decPoint(data, idx, p, twoEB, codeBytes, rawPayload, nraw, rawPos)
					idx++
				}
			case y > 0:
				for x := 1; x < nx && rawPos >= 0; x++ {
					p := 0.0
					p += float64(data[idx-s1])
					p += float64(data[idx-1])
					p -= float64(data[idx-s1-1])
					rawPos = decPoint(data, idx, p, twoEB, codeBytes, rawPayload, nraw, rawPos)
					idx++
				}
			default:
				for x := 1; x < nx && rawPos >= 0; x++ {
					p := 0.0
					p += float64(data[idx-1])
					rawPos = decPoint(data, idx, p, twoEB, codeBytes, rawPayload, nraw, rawPos)
					idx++
				}
			}
			if rawPos < 0 {
				return errRawExhausted()
			}
		}
	}
	return nil
}
