package sz

import (
	"math"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// FuzzDecompress drives the decoder with arbitrary byte streams: it must
// return errors (or wrong data) on garbage, never panic or hang. Seeds are
// valid streams so mutations explore near-valid inputs.
func FuzzDecompress(f *testing.F) {
	fld := grid.MustNew("seed", 6, 7, 5)
	for i := range fld.Data {
		fld.Data[i] = float32(i%13) * 0.5
	}
	c := New()
	knob := 1e-3
	if blob, err := c.Compress(fld, knob); err == nil {
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{0x5A, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := c.Decompress(data)
		if err == nil && g != nil && g.Size() > 1<<24 {
			t.Skip("oversized but well-formed header")
		}
		// The specialized decode kernels must agree with the generic odometer
		// on arbitrary (including corrupt) streams: same error verdict, same
		// reconstructed bit patterns.
		gg, gerr := decompressSZ(data, true)
		if (err == nil) != (gerr == nil) {
			t.Fatalf("fast err=%v, generic err=%v", err, gerr)
		}
		if err == nil {
			for i := range g.Data {
				if math.Float32bits(g.Data[i]) != math.Float32bits(gg.Data[i]) {
					t.Fatalf("sample %d: fast %x, generic %x",
						i, math.Float32bits(g.Data[i]), math.Float32bits(gg.Data[i]))
				}
			}
		}
	})
}
