package sz

import (
	"bytes"
	"math"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// FuzzDecompress drives the decoder with arbitrary byte streams: it must
// return errors (or wrong data) on garbage, never panic or hang. Seeds are
// valid streams so mutations explore near-valid inputs.
func FuzzDecompress(f *testing.F) {
	fld := grid.MustNew("seed", 6, 7, 5)
	for i := range fld.Data {
		fld.Data[i] = float32(i%13) * 0.5
	}
	c := New()
	knob := 1e-3
	if blob, err := c.Compress(fld, knob); err == nil {
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{0x5A, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := c.Decompress(data)
		if err == nil && g != nil && g.Size() > 1<<24 {
			t.Skip("oversized but well-formed header")
		}
		// The specialized decode kernels must agree with the generic odometer
		// on arbitrary (including corrupt) streams: same error verdict, same
		// reconstructed bit patterns.
		gg, gerr := decompressSZ(data, true, 1)
		if (err == nil) != (gerr == nil) {
			t.Fatalf("fast err=%v, generic err=%v", err, gerr)
		}
		if err == nil {
			for i := range g.Data {
				if math.Float32bits(g.Data[i]) != math.Float32bits(gg.Data[i]) {
					t.Fatalf("sample %d: fast %x, generic %x",
						i, math.Float32bits(g.Data[i]), math.Float32bits(gg.Data[i]))
				}
			}
		}
		// The wavefront decoder must agree with the serial one on the same
		// arbitrary input — identical verdict and identical bits — and a
		// round trip through both compressors must emit identical blobs.
		for _, w := range []int{2, 3} {
			pg, perr := decompressSZ(data, false, w)
			if (err == nil) != (perr == nil) {
				t.Fatalf("w=%d: serial err=%v, parallel err=%v", w, err, perr)
			}
			if err != nil {
				continue
			}
			for i := range g.Data {
				if math.Float32bits(g.Data[i]) != math.Float32bits(pg.Data[i]) {
					t.Fatalf("w=%d sample %d: serial %x, parallel %x",
						w, i, math.Float32bits(g.Data[i]), math.Float32bits(pg.Data[i]))
				}
			}
			sBlob, serr := compressSZ(g, 1e-3, false, 1)
			pBlob, perr2 := compressSZ(g, 1e-3, false, w)
			if (serr == nil) != (perr2 == nil) {
				t.Fatalf("w=%d: recompress serial err=%v, parallel err=%v", w, serr, perr2)
			}
			if serr == nil && !bytes.Equal(sBlob, pBlob) {
				t.Fatalf("w=%d: recompressed parallel blob differs from serial", w)
			}
		}
	})
}
