package sz

// Wavefront-parallel Lorenzo quantization and reconstruction.
//
// The Lorenzo stencil at a point reads only neighbors at offset -1 in each
// dimension, so all points on an anti-diagonal hyperplane are mutually
// independent once the previous hyperplanes are done. In 3D the work unit is
// a full x-row keyed by (z, y): row (z, y) depends only on rows (z-1, y),
// (z, y-1) and (z-1, y-1), all on earlier wavefronts w = z + y. In 2D a row
// is the sequential unit itself, so rows are cut into column tiles and the
// unit is (y, tx) on wavefront w = y + tx: a tile's in-row dependency is the
// previous tile of the same row (wavefront w-1) and its cross-row
// dependencies are tiles (y-1, tx) and (y-1, tx-1) (wavefronts w-1, w-2).
// 1D is a single dependency chain and 4D uses the generic odometer; both
// stay serial (the parallel entry points simply decline them).
//
// Bit-identity: every point is quantized by the same stencil arithmetic in
// the same per-point order as the serial kernels (the tile/row kernels below
// replicate quantize2D/quantize3D term for term), and the wavefront only
// changes *when* a point is processed relative to points it provably does not
// depend on. Escapes are marked in the codes array during the sweep and the
// raw pool is collected afterwards in one serial row-major pass, which yields
// the exact append order of the serial encoder. On the decode side a serial
// prescan over the codes computes each unit's starting raw-pool cursor by
// prefix sum, and reproduces the serial decoder's pool-exhaustion error
// exactly: the serial path fails if and only if the total number of escapes
// exceeds the pool, which the prescan knows up front.

import (
	"encoding/binary"
	"math"

	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

const (
	// szParMinPoints gates the wavefront: smaller fields finish faster
	// serially than the per-hyperplane barriers cost. Size-based only — the
	// worker count never influences routing.
	szParMinPoints = 1 << 13
	// szParMinTileW is the narrowest useful 2D column tile; narrower tiles
	// spend more time on barriers than on points.
	szParMinTileW = 128
)

// encPointMark is encPoint with the raw-pool append deferred: escapes leave
// code 0 and the verbatim value in recon, and collectRaw gathers them later
// in row-major order. Quantization arithmetic is identical to encPoint.
func encPointMark(data []float32, idx int, pred, eb, twoEB float64, codes []uint16, recon []float32) {
	v := float64(data[idx])
	q := math.Round((v - pred) / twoEB)
	if !math.IsNaN(q) && !math.IsInf(q, 0) {
		if code := int64(q) + radius; code > 0 && code < intervals {
			rec := float32(pred + twoEB*q)
			if math.Abs(float64(rec)-v) <= eb {
				codes[idx] = uint16(code)
				recon[idx] = rec
				return
			}
		}
	}
	codes[idx] = 0
	recon[idx] = data[idx]
}

// decPointAt is decPoint for callers that already know the escape cursor is
// in range (the prescan validated the whole stream), so it has no exhaustion
// branch. It returns the updated cursor.
func decPointAt(data []float32, idx int, pred, twoEB float64, codeBytes, rawPayload []byte, rawPos int) int {
	code := binary.LittleEndian.Uint16(codeBytes[2*idx:])
	if code != 0 {
		data[idx] = float32(pred + twoEB*float64(int(code)-radius))
		return rawPos
	}
	data[idx] = math.Float32frombits(binary.LittleEndian.Uint32(rawPayload[4*rawPos:]))
	return rawPos + 1
}

// tileCount picks the number of 2D column tiles: enough to keep the budget
// busy, never narrower than szParMinTileW. One tile means the wavefront
// would degenerate to row-serial order with pure overhead, so callers fall
// back to the serial kernel below 2.
func tileCount(nx, workers int) int {
	ntx := nx / szParMinTileW
	if lim := 2 * workers; ntx > lim {
		ntx = lim
	}
	return ntx
}

// quantizeFieldParallel runs the wavefront quantization sweep when the field
// shape supports it, returning (raw, true), or (raw, false) untouched when
// the caller should use the serial path. The blob downstream is identical
// either way.
func quantizeFieldParallel(f *grid.Field, eb float64, codes []uint16, recon, raw []float32, workers int) ([]float32, bool) {
	if workers <= 1 || len(f.Data) < szParMinPoints {
		return raw, false
	}
	switch len(f.Dims) {
	case 2:
		ny, nx := f.Dims[0], f.Dims[1]
		ntx := tileCount(nx, workers)
		if ntx < 2 {
			return raw, false
		}
		quantizeWavefront2D(f.Data, ny, nx, ntx, eb, codes, recon, workers)
	case 3:
		quantizeWavefront3D(f.Data, f.Dims, eb, codes, recon, workers)
	default:
		return raw, false
	}
	obs.Add("sz/quantize_wavefront_points", int64(len(f.Data)))
	stop := obs.Span("sz/raw_collect")
	raw = collectRaw(f.Data, codes, raw)
	stop()
	return raw, true
}

// collectRaw appends every escaped point's value to raw in row-major order —
// the exact sequence the serial kernels build with in-stream appends.
func collectRaw(data []float32, codes []uint16, raw []float32) []float32 {
	for idx, c := range codes {
		if c == 0 {
			raw = append(raw, data[idx])
		}
	}
	return raw
}

// waveBounds returns the inclusive index range [lo, hi] of the second
// coordinate (tile or z) active on wavefront w when the first coordinate has
// n1 values and the second has n2: lo..hi are the values of the second
// coordinate c2 with 0 <= w-c2 < n1 and c2 < n2.
func waveBounds(w, n1, n2 int) (lo, hi int) {
	lo, hi = w-(n1-1), w
	if lo < 0 {
		lo = 0
	}
	if hi > n2-1 {
		hi = n2 - 1
	}
	return lo, hi
}

// quantizeWavefront2D sweeps (y, tile) units along anti-diagonals
// w = y + tx. Each unit runs the serial row kernel's arithmetic over its
// column range [tx*tileW, min((tx+1)*tileW, nx)).
func quantizeWavefront2D(data []float32, ny, nx, ntx int, eb float64, codes []uint16, recon []float32, workers int) {
	tileW := (nx + ntx - 1) / ntx
	twoEB := 2 * eb
	nwaves := ny + ntx - 1
	obs.Add("sz/wavefronts", int64(nwaves))
	for w := 0; w < nwaves; w++ {
		lo, hi := waveBounds(w, ny, ntx)
		obs.MaxGauge("sz/wavefront_max_width", int64(hi-lo+1))
		wv := w
		pool.Run(workers, hi-lo+1, func(t int) {
			tx := lo + t
			y := wv - tx
			x1 := (tx + 1) * tileW
			if x1 > nx {
				x1 = nx
			}
			encTile2D(data, nx, y, tx*tileW, x1, eb, twoEB, codes, recon)
		})
	}
}

// encTile2D quantizes columns [x0, x1) of row y, replicating quantize2D's
// stencil accumulation term for term.
func encTile2D(data []float32, nx, y, x0, x1 int, eb, twoEB float64, codes []uint16, recon []float32) {
	idx := y*nx + x0
	x := x0
	if y == 0 {
		if x == 0 {
			encPointMark(data, idx, 0, eb, twoEB, codes, recon)
			idx++
			x++
		}
		for ; x < x1; x++ {
			pred := 0.0
			pred += float64(recon[idx-1])
			encPointMark(data, idx, pred, eb, twoEB, codes, recon)
			idx++
		}
		return
	}
	if x == 0 {
		pred := 0.0
		pred += float64(recon[idx-nx])
		encPointMark(data, idx, pred, eb, twoEB, codes, recon)
		idx++
		x++
	}
	for ; x < x1; x++ {
		p := 0.0
		p += float64(recon[idx-nx])
		p += float64(recon[idx-1])
		p -= float64(recon[idx-nx-1])
		encPointMark(data, idx, p, eb, twoEB, codes, recon)
		idx++
	}
}

// quantizeWavefront3D sweeps full x-rows keyed (z, y) along anti-diagonals
// w = z + y.
func quantizeWavefront3D(data []float32, dims []int, eb float64, codes []uint16, recon []float32, workers int) {
	nz, ny, nx := dims[0], dims[1], dims[2]
	twoEB := 2 * eb
	nwaves := nz + ny - 1
	obs.Add("sz/wavefronts", int64(nwaves))
	for w := 0; w < nwaves; w++ {
		lo, hi := waveBounds(w, ny, nz)
		obs.MaxGauge("sz/wavefront_max_width", int64(hi-lo+1))
		wv := w
		pool.Run(workers, hi-lo+1, func(t int) {
			z := lo + t
			encRow3D(data, ny, nx, z, wv-z, eb, twoEB, codes, recon)
		})
	}
}

// encRow3D quantizes row (z, y), replicating quantize3D's first-column and
// interior stencils term for term.
func encRow3D(data []float32, ny, nx, z, y int, eb, twoEB float64, codes []uint16, recon []float32) {
	s1 := nx
	s0 := ny * nx
	idx := z*s0 + y*s1
	pred := 0.0
	if z > 0 {
		pred += float64(recon[idx-s0])
	}
	if y > 0 {
		pred += float64(recon[idx-s1])
		if z > 0 {
			pred -= float64(recon[idx-s0-s1])
		}
	}
	encPointMark(data, idx, pred, eb, twoEB, codes, recon)
	idx++
	switch {
	case z > 0 && y > 0:
		for x := 1; x < nx; x++ {
			p := 0.0
			p += float64(recon[idx-s0])
			p += float64(recon[idx-s1])
			p -= float64(recon[idx-s0-s1])
			p += float64(recon[idx-1])
			p -= float64(recon[idx-s0-1])
			p -= float64(recon[idx-s1-1])
			p += float64(recon[idx-s0-s1-1])
			encPointMark(data, idx, p, eb, twoEB, codes, recon)
			idx++
		}
	case z > 0:
		for x := 1; x < nx; x++ {
			p := 0.0
			p += float64(recon[idx-s0])
			p += float64(recon[idx-1])
			p -= float64(recon[idx-s0-1])
			encPointMark(data, idx, p, eb, twoEB, codes, recon)
			idx++
		}
	case y > 0:
		for x := 1; x < nx; x++ {
			p := 0.0
			p += float64(recon[idx-s1])
			p += float64(recon[idx-1])
			p -= float64(recon[idx-s1-1])
			encPointMark(data, idx, p, eb, twoEB, codes, recon)
			idx++
		}
	default:
		for x := 1; x < nx; x++ {
			p := 0.0
			p += float64(recon[idx-1])
			encPointMark(data, idx, p, eb, twoEB, codes, recon)
			idx++
		}
	}
}

// reconstructFieldParallel mirrors quantizeFieldParallel on the decode side:
// it returns (true, err) when it handled the field with the wavefront sweep
// and (false, nil) when the caller should use the serial path.
func reconstructFieldParallel(f *grid.Field, eb float64, codeBytes, rawPayload []byte, nraw uint64, workers int) (bool, error) {
	if workers <= 1 || len(f.Data) < szParMinPoints {
		return false, nil
	}
	switch len(f.Dims) {
	case 2:
		ny, nx := f.Dims[0], f.Dims[1]
		ntx := tileCount(nx, workers)
		if ntx < 2 {
			return false, nil
		}
		return true, reconstructWavefront2D(f.Data, ny, nx, ntx, eb, codeBytes, rawPayload, nraw, workers)
	case 3:
		return true, reconstructWavefront3D(f.Data, f.Dims, eb, codeBytes, rawPayload, nraw, workers)
	default:
		return false, nil
	}
}

// prescanEscapes walks units of the given extent in row-major unit order and
// returns each unit's starting raw-pool cursor plus the total escape count.
// unitLen(u) must return the codes covered by unit u as a contiguous-in-unit
// iteration; since escapes only depend on the codes, one serial pass suffices.
func prescanEscapes(codeBytes []byte, nunits int, unitIdx func(u int) (start, count, stride int)) (starts []int, total int) {
	starts = make([]int, nunits)
	for u := 0; u < nunits; u++ {
		starts[u] = total
		start, count, stride := unitIdx(u)
		idx := start
		for i := 0; i < count; i++ {
			if codeBytes[2*idx] == 0 && codeBytes[2*idx+1] == 0 {
				total++
			}
			idx += stride
		}
	}
	return starts, total
}

func reconstructWavefront2D(data []float32, ny, nx, ntx int, eb float64, codeBytes, rawPayload []byte, nraw uint64, workers int) error {
	tileW := (nx + ntx - 1) / ntx
	twoEB := 2 * eb
	stop := obs.Span("sz/raw_prescan")
	// Unit u = y*ntx + tx covers row y, columns [tx*tileW, x1).
	starts, total := prescanEscapes(codeBytes, ny*ntx, func(u int) (int, int, int) {
		y, tx := u/ntx, u%ntx
		x0 := tx * tileW
		x1 := x0 + tileW
		if x1 > nx {
			x1 = nx
		}
		return y*nx + x0, x1 - x0, 1
	})
	stop()
	if uint64(total) > nraw {
		return errRawExhausted()
	}
	nwaves := ny + ntx - 1
	obs.Add("sz/wavefronts", int64(nwaves))
	for w := 0; w < nwaves; w++ {
		lo, hi := waveBounds(w, ny, ntx)
		wv := w
		pool.Run(workers, hi-lo+1, func(t int) {
			tx := lo + t
			y := wv - tx
			x1 := (tx + 1) * tileW
			if x1 > nx {
				x1 = nx
			}
			decTile2D(data, nx, y, tx*tileW, x1, twoEB, codeBytes, rawPayload, starts[y*ntx+tx])
		})
	}
	return nil
}

// decTile2D reconstructs columns [x0, x1) of row y with the serial kernel's
// stencils, starting its raw cursor at rawPos.
func decTile2D(data []float32, nx, y, x0, x1 int, twoEB float64, codeBytes, rawPayload []byte, rawPos int) {
	idx := y*nx + x0
	x := x0
	if y == 0 {
		if x == 0 {
			rawPos = decPointAt(data, idx, 0, twoEB, codeBytes, rawPayload, rawPos)
			idx++
			x++
		}
		for ; x < x1; x++ {
			pred := 0.0
			pred += float64(data[idx-1])
			rawPos = decPointAt(data, idx, pred, twoEB, codeBytes, rawPayload, rawPos)
			idx++
		}
		return
	}
	if x == 0 {
		pred := 0.0
		pred += float64(data[idx-nx])
		rawPos = decPointAt(data, idx, pred, twoEB, codeBytes, rawPayload, rawPos)
		idx++
		x++
	}
	for ; x < x1; x++ {
		p := 0.0
		p += float64(data[idx-nx])
		p += float64(data[idx-1])
		p -= float64(data[idx-nx-1])
		rawPos = decPointAt(data, idx, p, twoEB, codeBytes, rawPayload, rawPos)
		idx++
	}
}

func reconstructWavefront3D(data []float32, dims []int, eb float64, codeBytes, rawPayload []byte, nraw uint64, workers int) error {
	nz, ny, nx := dims[0], dims[1], dims[2]
	twoEB := 2 * eb
	stop := obs.Span("sz/raw_prescan")
	// Unit u = z*ny + y covers the contiguous row starting at (z*ny+y)*nx.
	starts, total := prescanEscapes(codeBytes, nz*ny, func(u int) (int, int, int) {
		return u * nx, nx, 1
	})
	stop()
	if uint64(total) > nraw {
		return errRawExhausted()
	}
	nwaves := nz + ny - 1
	obs.Add("sz/wavefronts", int64(nwaves))
	for w := 0; w < nwaves; w++ {
		lo, hi := waveBounds(w, ny, nz)
		wv := w
		pool.Run(workers, hi-lo+1, func(t int) {
			z := lo + t
			y := wv - z
			decRow3D(data, ny, nx, z, y, twoEB, codeBytes, rawPayload, starts[z*ny+y])
		})
	}
	return nil
}

// decRow3D reconstructs row (z, y) with the serial kernel's stencils,
// starting its raw cursor at rawPos.
func decRow3D(data []float32, ny, nx, z, y int, twoEB float64, codeBytes, rawPayload []byte, rawPos int) {
	s1 := nx
	s0 := ny * nx
	idx := z*s0 + y*s1
	pred := 0.0
	if z > 0 {
		pred += float64(data[idx-s0])
	}
	if y > 0 {
		pred += float64(data[idx-s1])
		if z > 0 {
			pred -= float64(data[idx-s0-s1])
		}
	}
	rawPos = decPointAt(data, idx, pred, twoEB, codeBytes, rawPayload, rawPos)
	idx++
	switch {
	case z > 0 && y > 0:
		for x := 1; x < nx; x++ {
			p := 0.0
			p += float64(data[idx-s0])
			p += float64(data[idx-s1])
			p -= float64(data[idx-s0-s1])
			p += float64(data[idx-1])
			p -= float64(data[idx-s0-1])
			p -= float64(data[idx-s1-1])
			p += float64(data[idx-s0-s1-1])
			rawPos = decPointAt(data, idx, p, twoEB, codeBytes, rawPayload, rawPos)
			idx++
		}
	case z > 0:
		for x := 1; x < nx; x++ {
			p := 0.0
			p += float64(data[idx-s0])
			p += float64(data[idx-1])
			p -= float64(data[idx-s0-1])
			rawPos = decPointAt(data, idx, p, twoEB, codeBytes, rawPayload, rawPos)
			idx++
		}
	case y > 0:
		for x := 1; x < nx; x++ {
			p := 0.0
			p += float64(data[idx-s1])
			p += float64(data[idx-1])
			p -= float64(data[idx-s1-1])
			rawPos = decPointAt(data, idx, p, twoEB, codeBytes, rawPayload, rawPos)
			idx++
		}
	default:
		for x := 1; x < nx; x++ {
			p := 0.0
			p += float64(data[idx-1])
			rawPos = decPointAt(data, idx, p, twoEB, codeBytes, rawPayload, rawPos)
			idx++
		}
	}
}
