package sz

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

func regionTestField(t testing.TB, escapes bool, dims ...int) *grid.Field {
	t.Helper()
	f := grid.MustNew("roi", dims...)
	rng := rand.New(rand.NewSource(31))
	for i := range f.Data {
		f.Data[i] = float32(math.Sin(float64(i)*0.07)) + 0.2*rng.Float32()
		if escapes {
			switch i % 97 {
			case 0:
				f.Data[i] = float32(math.NaN())
			case 13:
				f.Data[i] = float32(math.Inf(1))
			case 31:
				f.Data[i] = 1e30 * rng.Float32() // forces raw escapes
			}
		}
	}
	return f
}

func TestSZDecompressRegionMatchesFullDecode(t *testing.T) {
	shapes := [][]int{{53}, {17, 21}, {12, 10, 11}, {4, 5, 6, 7}}
	rng := rand.New(rand.NewSource(7))
	for _, dims := range shapes {
		for _, escapes := range []bool{false, true} {
			f := regionTestField(t, escapes, dims...)
			blob, err := New().Compress(f, 1e-3)
			if err != nil {
				t.Fatalf("%v escapes=%v: compress: %v", dims, escapes, err)
			}
			full, err := New().Decompress(blob)
			if err != nil {
				t.Fatalf("%v escapes=%v: decompress: %v", dims, escapes, err)
			}
			index, err := BuildRegionIndex(blob)
			if err != nil {
				t.Fatalf("%v escapes=%v: index: %v", dims, escapes, err)
			}
			nd := len(dims)
			lo, hi := make([]int, nd), make([]int, nd)
			for trial := 0; trial < 25; trial++ {
				for d := 0; d < nd; d++ {
					lo[d] = rng.Intn(dims[d])
					hi[d] = lo[d] + 1 + rng.Intn(dims[d]-lo[d])
				}
				if trial == 0 {
					for d := 0; d < nd; d++ {
						lo[d], hi[d] = 0, dims[d]
					}
				}
				want, err := grid.SliceRegion(full, lo, hi)
				if err != nil {
					t.Fatalf("slice: %v", err)
				}
				for _, idx := range [][]byte{index, nil} {
					got, err := DecompressRegion(blob, idx, lo, hi)
					if err != nil {
						t.Fatalf("%v escapes=%v region %v:%v (index=%v): %v", dims, escapes, lo, hi, idx != nil, err)
					}
					for i := range want.Data {
						if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
							t.Fatalf("%v escapes=%v region %v:%v (index=%v): sample %d: %x != %x",
								dims, escapes, lo, hi, idx != nil, i,
								math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
						}
					}
				}
			}
		}
	}
}

func TestSZRegionIndexCorruptRejected(t *testing.T) {
	f := regionTestField(t, true, 12, 10, 11)
	blob, err := New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	index, err := BuildRegionIndex(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(index) < 3 {
		t.Skipf("index too small to corrupt (%d bytes)", len(index))
	}
	lo, hi := []int{8, 2, 2}, []int{12, 6, 6}
	if _, err := DecompressRegion(blob, index[:len(index)-1], lo, hi); err == nil {
		t.Error("truncated index accepted")
	}
	if _, err := DecompressRegion(blob, append(append([]byte(nil), index...), 0x7), lo, hi); err == nil {
		t.Error("index with trailer accepted")
	}
}

// TestSZRegionSkipsPrefix pins that an indexed region decode near the end of
// the field does not reconstruct the whole prefix (the point of the index).
func TestSZRegionSkipsPrefix(t *testing.T) {
	f := regionTestField(t, false, 64, 16, 16)
	blob, err := New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	index, err := BuildRegionIndex(blob)
	if err != nil {
		t.Fatal(err)
	}
	si, err := parseSZIndex(index, f.Dims, f.Size())
	if err != nil {
		t.Fatal(err)
	}
	if si == nil {
		t.Fatal("no slab index built for a 64-row field")
	}
	if si.T >= 64 {
		t.Fatalf("slab height %d does not partition 64 rows", si.T)
	}
	got, err := DecompressRegion(blob, index, []int{60, 0, 0}, []int{64, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	full, err := New().Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	want, err := grid.SliceRegion(full, []int{60, 0, 0}, []int{64, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
			t.Fatalf("sample %d differs", i)
		}
	}
}
