package sz

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
)

// chunkedShapes are field shapes that span at least two slabs under
// szChunkLayout, one per rank (plus a single-slab control the tests use to
// pin the legacy fallback).
var chunkedShapes = [][]int{
	{3 * 65536},      // 1D: 65536-point slabs
	{2048, 64},       // 2D: 1024-row slabs
	{48, 64, 64},     // 3D: 16-row slabs
	{20, 24, 24, 12}, // 4D: generic-kernel slabs
}

func chunkedWidths() []int {
	w := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		w = append(w, n)
	}
	return w
}

// TestSZChunkedLayout pins the chunking policy: multi-slab fields emit the
// chunked container with a row-aligned block size, sub-slab fields keep the
// legacy whole-stream format byte-for-byte.
func TestSZChunkedLayout(t *testing.T) {
	for _, dims := range chunkedShapes {
		rows, nSlabs := szChunkLayout(dims)
		if nSlabs < 2 {
			t.Fatalf("%v: expected >= 2 slabs, got %d (rows %d)", dims, nSlabs, rows)
		}
		f := regionTestField(t, false, dims...)
		blob, err := New().Compress(f, 1e-3)
		if err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if got := SlabRows(blob); got != rows {
			t.Fatalf("%v: SlabRows = %d, want %d", dims, got, rows)
		}
	}
	// 16³ (the golden-fixture shape) must stay legacy: one slab, no chunking.
	f := regionTestField(t, false, 16, 16, 16)
	blob, err := New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if got := SlabRows(blob); got != 0 {
		t.Fatalf("16³ blob reports slab height %d, want legacy 0", got)
	}
	h, payload, err := compress.ParseHeader(blob, compress.MagicSZ)
	if err != nil {
		t.Fatal(err)
	}
	packed, _, _, err := splitSZSections(h.Dims, payload)
	if err != nil {
		t.Fatal(err)
	}
	if entropy.IsChunked(packed) {
		t.Fatal("sub-slab field emitted a chunked entropy container")
	}
}

// TestSZChunkedDeterminism: chunked blobs must be byte-identical at every
// worker width and under the forced-generic quantization oracle.
func TestSZChunkedDeterminism(t *testing.T) {
	for _, dims := range chunkedShapes {
		for _, escapes := range []bool{false, true} {
			f := regionTestField(t, escapes, dims...)
			var ref []byte
			for _, w := range chunkedWidths() {
				blob, err := compressSZ(f, 1e-3, false, w)
				if err != nil {
					t.Fatalf("%v w=%d: %v", dims, w, err)
				}
				if ref == nil {
					ref = blob
				} else if !bytes.Equal(blob, ref) {
					t.Fatalf("%v escapes=%v: blob at w=%d differs from w=1", dims, escapes, w)
				}
			}
			generic, err := compressSZ(f, 1e-3, true, 1)
			if err != nil {
				t.Fatalf("%v generic: %v", dims, err)
			}
			if !bytes.Equal(generic, ref) {
				t.Fatalf("%v escapes=%v: generic-oracle blob differs from specialized", dims, escapes)
			}
		}
	}
}

// TestSZChunkedRoundTrip: decode must be bit-identical at every worker width
// and under the generic reconstruction oracle, and must honor the error
// bound on every finite point.
func TestSZChunkedRoundTrip(t *testing.T) {
	const eb = 1e-3
	for _, dims := range chunkedShapes {
		for _, escapes := range []bool{false, true} {
			f := regionTestField(t, escapes, dims...)
			blob, err := New().Compress(f, eb)
			if err != nil {
				t.Fatalf("%v: %v", dims, err)
			}
			var ref *grid.Field
			for _, w := range chunkedWidths() {
				got, err := decompressSZ(blob, false, w)
				if err != nil {
					t.Fatalf("%v w=%d: %v", dims, w, err)
				}
				if ref == nil {
					ref = got
				} else {
					for i := range ref.Data {
						if math.Float32bits(got.Data[i]) != math.Float32bits(ref.Data[i]) {
							t.Fatalf("%v escapes=%v w=%d: sample %d differs", dims, escapes, w, i)
						}
					}
				}
			}
			generic, err := decompressSZ(blob, true, 1)
			if err != nil {
				t.Fatalf("%v generic: %v", dims, err)
			}
			for i := range ref.Data {
				if math.Float32bits(generic.Data[i]) != math.Float32bits(ref.Data[i]) {
					t.Fatalf("%v escapes=%v: generic-oracle decode differs at %d", dims, escapes, i)
				}
				orig := float64(f.Data[i])
				if !math.IsNaN(orig) && !math.IsInf(orig, 0) {
					if math.Abs(float64(ref.Data[i])-orig) > eb+1e-9 {
						t.Fatalf("%v escapes=%v: error bound violated at %d", dims, escapes, i)
					}
				}
			}
		}
	}
}

// TestSZChunkedConstantField: a constant field collapses to near-nothing in
// LZ, the degenerate case for per-chunk window resets.
func TestSZChunkedConstantField(t *testing.T) {
	f := grid.MustNew("flat", 48, 64, 64)
	for i := range f.Data {
		f.Data[i] = 3.25
	}
	blob, err := New().Compress(f, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if SlabRows(blob) == 0 {
		t.Fatal("constant 48×64×64 blob is not chunked")
	}
	got, err := (&Compressor{Workers: 2}).Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got.Data {
		if math.Abs(float64(v)-3.25) > 1e-6 {
			t.Fatalf("sample %d = %v", i, v)
		}
	}
}

// TestSZChunkedRegionMatchesFullDecode is the chunked counterpart of
// TestSZDecompressRegionMatchesFullDecode: random regions out of chunked
// blobs, with and without an index, must be bit-identical to the full decode.
func TestSZChunkedRegionMatchesFullDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, dims := range chunkedShapes {
		for _, escapes := range []bool{false, true} {
			f := regionTestField(t, escapes, dims...)
			blob, err := New().Compress(f, 1e-3)
			if err != nil {
				t.Fatalf("%v: %v", dims, err)
			}
			if SlabRows(blob) == 0 {
				t.Fatalf("%v: expected a chunked blob", dims)
			}
			full, err := New().Decompress(blob)
			if err != nil {
				t.Fatalf("%v: %v", dims, err)
			}
			index, err := BuildRegionIndex(blob)
			if err != nil {
				t.Fatalf("%v: index: %v", dims, err)
			}
			nd := len(dims)
			lo, hi := make([]int, nd), make([]int, nd)
			for trial := 0; trial < 20; trial++ {
				for d := 0; d < nd; d++ {
					lo[d] = rng.Intn(dims[d])
					hi[d] = lo[d] + 1 + rng.Intn(dims[d]-lo[d])
				}
				if trial == 0 {
					for d := 0; d < nd; d++ {
						lo[d], hi[d] = 0, dims[d]
					}
				}
				want, err := grid.SliceRegion(full, lo, hi)
				if err != nil {
					t.Fatalf("slice: %v", err)
				}
				for _, idx := range [][]byte{index, nil} {
					got, err := DecompressRegion(blob, idx, lo, hi)
					if err != nil {
						t.Fatalf("%v escapes=%v region %v:%v (index=%v): %v", dims, escapes, lo, hi, idx != nil, err)
					}
					for i := range want.Data {
						if math.Float32bits(got.Data[i]) != math.Float32bits(want.Data[i]) {
							t.Fatalf("%v escapes=%v region %v:%v (index=%v): sample %d differs",
								dims, escapes, lo, hi, idx != nil, i)
						}
					}
				}
			}
		}
	}
}

// TestSZChunkedIndex pins the seedless index format for chunked blobs: slab
// height equal to the chunk height, escape prefix sums, flag byte 2 per
// boundary, and no seed planes (so the index is tiny and building it decodes
// no samples).
func TestSZChunkedIndex(t *testing.T) {
	f := regionTestField(t, true, 48, 64, 64)
	blob, err := New().Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	index, err := BuildRegionIndex(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(index) > 64 {
		t.Fatalf("seedless index is %d bytes; expected escape counts only", len(index))
	}
	si, err := parseSZIndex(index, f.Dims, f.Size())
	if err != nil {
		t.Fatal(err)
	}
	if si == nil {
		t.Fatal("no index built for a chunked blob")
	}
	if si.T != SlabRows(blob) {
		t.Fatalf("index slab height %d != chunk height %d", si.T, SlabRows(blob))
	}
	for i, fl := range si.flags {
		if fl != 2 {
			t.Fatalf("boundary %d flag = %d, want 2 (seed absent)", i+1, fl)
		}
	}
	// A seedless index paired with a legacy whole-stream blob must be
	// rejected when the decoder needs the seed it does not carry.
	if _, err := si.seedPlane(1, 64*64); err == nil {
		t.Fatal("seedPlane on a flag-2 boundary succeeded")
	}
	// Flag bytes outside {0,1,2} stay rejected.
	bad := bytes.Clone(index)
	bad[len(bad)-1] = 3
	if _, err := parseSZIndex(bad, f.Dims, f.Size()); err == nil {
		t.Fatal("flag byte 3 accepted")
	}
}
