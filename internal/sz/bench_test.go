package sz

import (
	"math"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress/compresstest"
	"github.com/fxrz-go/fxrz/internal/grid"
)

func BenchmarkCompress(b *testing.B)   { compresstest.BenchCompress(b, New(), 1e-3) }
func BenchmarkDecompress(b *testing.B) { compresstest.BenchDecompress(b, New(), 1e-3) }

// BenchmarkKernelQuantize3D compares the generic odometer Lorenzo pass
// against the dimension-specialized 3D kernel on a smooth 64³ field — the
// hot loop of every Compress call. Recorded in BENCH_kernels.json as
// sz_quantize_3d.
func BenchmarkKernelQuantize3D(b *testing.B) {
	f := grid.MustNew("bench", 64, 64, 64)
	for z := 0; z < 64; z++ {
		for y := 0; y < 64; y++ {
			for x := 0; x < 64; x++ {
				f.Set(float32(math.Sin(float64(z)/16)+math.Cos(float64(y)/16)+math.Sin(float64(x)/16)), z, y, x)
			}
		}
	}
	n := f.Size()
	codes := make([]uint16, n)
	recon := make([]float32, n)
	raw := make([]float32, 0, n)
	for _, v := range []struct {
		name    string
		generic bool
	}{{"generic", true}, {"fast", false}} {
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(f.Bytes()))
			for i := 0; i < b.N; i++ {
				raw = quantizeField(f, 1e-3, codes, recon, raw[:0], v.generic)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/elem")
		})
	}
}
