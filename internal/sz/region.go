package sz

// Region-of-interest decode for the SZ codec.
//
// Lorenzo reconstruction is a prefix recurrence: every point predicts from
// already-reconstructed neighbors, so decoding point p normally requires all
// points before p. The region index breaks the recurrence at slab boundaries
// along the slowest dimension by persisting, for each boundary, (a) the raw
// escape-pool cursor at the boundary (varint delta-encoded) and (b) the
// reconstructed hyperplane just before it — the predictor seed. A region
// decode then entropy-decodes the (whole-stream) quantization codes, jumps to
// the nearest boundary at or below the region, and reconstructs only rows
// [slab start, hi[0]) instead of the entire field.
//
// Bit-identity: the slab kernel accumulates the same stencil terms in the
// same subset-mask order as lorenzo.predict (which the specialized kernels
// are already pinned to), the quantize arithmetic is decPoint's, and the seed
// plane holds exactly the values a full decode would have produced — so the
// restarted recurrence is the full recurrence.

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
)

// szIndexMaxSlabs caps the number of slabs: each boundary costs a full
// hyperplane, so past a point more boundaries buy little skipping but a lot
// of index.
const szIndexMaxSlabs = 16

// slabHeight picks the slab height T for a field of nz rows of planeSize
// points each, keeping the seed planes within a budget proportional to the
// blob. Returns 0 when no useful index fits (the decoder then reconstructs
// from row 0, which is still correct).
func slabHeight(nz, planeSize, blobLen int) int {
	if nz < 2 {
		return 0
	}
	planeBytes := 4*planeSize + 8
	budget := blobLen / 8
	if budget < 4096 {
		budget = 4096
	}
	maxBoundaries := budget / planeBytes
	if maxBoundaries < 1 {
		return 0
	}
	nSlabs := maxBoundaries + 1
	if nSlabs > nz {
		nSlabs = nz
	}
	if nSlabs > szIndexMaxSlabs {
		nSlabs = szIndexMaxSlabs
	}
	return (nz + nSlabs - 1) / nSlabs
}

// BuildRegionIndex decodes an sz blob once and returns its region index
// payload:
//
//	uvarint T (slab height along dim 0; 0 = no index)
//	uvarint nSlabs (= ceil(dims[0]/T))
//	(nSlabs-1) × uvarint: escape count within each preceding slab (the raw
//	    cursor at slab i's start is the sum of the first i counts)
//	(nSlabs-1) × seed plane: 1 flag byte (0 raw | 1 entropy-compressed),
//	    uvarint length, then the reconstructed float32 plane at row i·T-1
func BuildRegionIndex(blob []byte) ([]byte, error) {
	h, payload, err := compress.ParseHeader(blob, compress.MagicSZ)
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	codeBytes, _, _, err := parseSZSections(h.Dims, payload)
	if err != nil {
		return nil, err
	}
	nz := h.Dims[0]
	planeSize := elemCount(h.Dims) / nz
	T := slabHeight(nz, planeSize, len(blob))
	out := binary.AppendUvarint(nil, uint64(T))
	if T == 0 {
		return out, nil
	}
	rec, err := decompressSZ(blob, false, 1)
	if err != nil {
		return nil, err
	}
	nSlabs := (nz + T - 1) / T
	out = binary.AppendUvarint(out, uint64(nSlabs))
	for i := 1; i < nSlabs; i++ {
		cnt := 0
		for p := (i - 1) * T * planeSize; p < i*T*planeSize; p++ {
			if binary.LittleEndian.Uint16(codeBytes[2*p:]) == 0 {
				cnt++
			}
		}
		out = binary.AppendUvarint(out, uint64(cnt))
	}
	rawPlane := make([]byte, 4*planeSize)
	for i := 1; i < nSlabs; i++ {
		plane := rec.Data[(i*T-1)*planeSize : i*T*planeSize]
		for j, v := range plane {
			binary.LittleEndian.PutUint32(rawPlane[4*j:], math.Float32bits(v))
		}
		comp, cerr := entropy.CompressBytes(rawPlane)
		if cerr == nil && len(comp) < len(rawPlane) {
			out = append(out, 1)
			out = binary.AppendUvarint(out, uint64(len(comp)))
			out = append(out, comp...)
		} else {
			out = append(out, 0)
			out = binary.AppendUvarint(out, uint64(len(rawPlane)))
			out = append(out, rawPlane...)
		}
	}
	return out, nil
}

// szIndex is a parsed region index.
type szIndex struct {
	T      int
	cumEsc []int // cumEsc[i] = escapes before slab i's first point
	flags  []byte
	seeds  [][]byte // per boundary, the encoded seed plane bytes
}

// parseSZIndex validates an index payload; it returns nil (no error) for a
// well-formed empty index.
func parseSZIndex(index []byte, dims []int, n int) (*szIndex, error) {
	t, k := binary.Uvarint(index)
	if k <= 0 {
		return nil, fmt.Errorf("sz: %w: index slab height", compress.ErrCorrupt)
	}
	rest := index[k:]
	if t == 0 {
		if len(rest) != 0 {
			return nil, fmt.Errorf("sz: %w: index trailer", compress.ErrCorrupt)
		}
		return nil, nil
	}
	nz := dims[0]
	if t > uint64(nz) {
		return nil, fmt.Errorf("sz: %w: slab height %d for %d rows", compress.ErrCorrupt, t, nz)
	}
	T := int(t)
	nSlabs, k := binary.Uvarint(rest)
	if k <= 0 || nSlabs != uint64((nz+T-1)/T) || nSlabs < 2 {
		return nil, fmt.Errorf("sz: %w: index slab count", compress.ErrCorrupt)
	}
	rest = rest[k:]
	si := &szIndex{T: T, cumEsc: make([]int, nSlabs)}
	for i := 1; i < int(nSlabs); i++ {
		d, k := binary.Uvarint(rest)
		if k <= 0 || d > uint64(n) {
			return nil, fmt.Errorf("sz: %w: index escape count", compress.ErrCorrupt)
		}
		rest = rest[k:]
		si.cumEsc[i] = si.cumEsc[i-1] + int(d)
		if si.cumEsc[i] < 0 || si.cumEsc[i] > n {
			return nil, fmt.Errorf("sz: %w: index escape cursor", compress.ErrCorrupt)
		}
	}
	for i := 1; i < int(nSlabs); i++ {
		if len(rest) < 1 || rest[0] > 1 {
			return nil, fmt.Errorf("sz: %w: seed flag", compress.ErrCorrupt)
		}
		flag := rest[0]
		rest = rest[1:]
		ln, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < ln {
			return nil, fmt.Errorf("sz: %w: seed plane %d", compress.ErrCorrupt, i)
		}
		rest = rest[k:]
		si.flags = append(si.flags, flag)
		si.seeds = append(si.seeds, rest[:ln])
		rest = rest[ln:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("sz: %w: index trailer", compress.ErrCorrupt)
	}
	return si, nil
}

// seedPlane returns the raw little-endian float32 bytes of the seed plane at
// row s*T-1 (the boundary entering slab s >= 1).
func (si *szIndex) seedPlane(s, planeSize int) ([]byte, error) {
	data := si.seeds[s-1]
	if si.flags[s-1] == 1 {
		var err error
		data, err = entropy.DecompressBytes(data)
		if err != nil {
			return nil, fmt.Errorf("sz: seed plane: %w", err)
		}
	}
	if len(data) != 4*planeSize {
		return nil, fmt.Errorf("sz: %w: seed plane is %d bytes, want %d", compress.ErrCorrupt, len(data), 4*planeSize)
	}
	return data, nil
}

// DecompressRegion decodes the half-open region [lo, hi) of an sz blob,
// reconstructing only rows [slab(lo[0]), hi[0]) of the Lorenzo recurrence.
// index may be nil or empty; reconstruction then restarts at row 0, which
// still skips the rows past hi[0]. The output is bit-identical to the
// corresponding slice of a full Decompress.
func DecompressRegion(blob, index []byte, lo, hi []int) (*grid.Field, error) {
	defer obs.Span("decompress/sz-region")()
	h, payload, err := compress.ParseHeader(blob, compress.MagicSZ)
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	if err := grid.CheckRegion(h.Dims, lo, hi); err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	codeBytes, rawPayload, nraw, err := parseSZSections(h.Dims, payload)
	if err != nil {
		return nil, err
	}
	n := elemCount(h.Dims)
	nz := h.Dims[0]
	planeSize := n / nz

	z0, rawPos := 0, 0
	var seed []byte
	if len(index) > 0 {
		si, err := parseSZIndex(index, h.Dims, n)
		if err != nil {
			return nil, err
		}
		if si != nil {
			if s0 := lo[0] / si.T; s0 > 0 {
				z0 = s0 * si.T
				rawPos = si.cumEsc[s0]
				if seed, err = si.seedPlane(s0, planeSize); err != nil {
					return nil, err
				}
			}
		}
	}
	if uint64(rawPos) > nraw {
		return nil, fmt.Errorf("sz: %w: index raw cursor", compress.ErrCorrupt)
	}
	seedRows := 0
	if z0 > 0 {
		seedRows = 1
	}
	rows := hi[0] - z0 + seedRows
	buf := getF32s(rows * planeSize)
	defer putF32s(buf)
	for j := 0; j < seedRows*planeSize; j++ {
		buf[j] = math.Float32frombits(binary.LittleEndian.Uint32(seed[4*j:]))
	}
	if err := reconstructSlab(buf, h.Dims, z0, seedRows, h.Knob, codeBytes, rawPayload, nraw, rawPos); err != nil {
		return nil, err
	}
	obs.Inc("sz/region_decodes")
	obs.Add("sz/region_rows_decoded", int64(hi[0]-z0))
	obs.Add("sz/region_rows_skipped", int64(z0+nz-hi[0]))

	bufDims := append([]int{rows}, h.Dims[1:]...)
	view, err := grid.FromData(h.Name, buf, bufDims...)
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	vlo := append([]int{lo[0] - z0 + seedRows}, lo[1:]...)
	vhi := append([]int{hi[0] - z0 + seedRows}, hi[1:]...)
	return grid.SliceRegion(view, vlo, vhi)
}

// reconstructSlab runs the Lorenzo reconstruction over global rows
// [z0, z0+rows) into buf, whose first seedRows planes hold the already
// reconstructed boundary hyperplane. The predictor is the generic mask-order
// accumulation of lorenzo.predict — the oracle the specialized full-decode
// kernels are pinned to — and the quantize/escape arithmetic mirrors
// decPoint, so restarted output is bit-identical to a full decode.
func reconstructSlab(buf []float32, dims []int, z0, seedRows int, eb float64, codeBytes, rawPayload []byte, nraw uint64, rawPos int) error {
	twoEB := 2 * eb
	planeSize := 1
	for _, d := range dims[1:] {
		planeSize *= d
	}
	lor := newLorenzo(dims)
	lor.coord[0] = z0
	gidx := z0 * planeSize
	for lidx := seedRows * planeSize; lidx < len(buf); lidx++ {
		pred := lor.predict(buf, lidx)
		code := binary.LittleEndian.Uint16(codeBytes[2*gidx:])
		if code != 0 {
			buf[lidx] = float32(pred + twoEB*float64(int(code)-radius))
		} else {
			if uint64(rawPos) >= nraw {
				return errRawExhausted()
			}
			buf[lidx] = math.Float32frombits(binary.LittleEndian.Uint32(rawPayload[4*rawPos:]))
			rawPos++
		}
		lor.advance()
		gidx++
	}
	return nil
}
