package sz

// Region-of-interest decode for the SZ codec.
//
// Lorenzo reconstruction is a prefix recurrence: every point predicts from
// already-reconstructed neighbors, so decoding point p normally requires all
// points before p.
//
// For chunked blobs (szChunkLayout) the encoder already broke the recurrence:
// the predictor resets at every slab boundary and the code stream lives in
// the chunked entropy container with one chunk per slab. A region decode then
// entropy-decodes only the chunks covering [slab(lo[0]), hi[0]) — O(region),
// not O(stream) — and reconstructs each covering slab from its own chunk,
// skipping the Lorenzo arithmetic for points outside the dependency-closed
// prefix box [0, hi[d]) of the trailing dimensions (every predictor neighbor
// sits at offset -1, so the box is closed under dependencies; skipped escape
// codes still advance the raw-pool cursor). The region index shrinks to the
// per-slab escape-pool cursors; without one, the decoder counts escapes from
// the stream head, which costs entropy decode but no Lorenzo work.
//
// Legacy whole-stream blobs keep the original scheme: the index persists, per
// boundary, the raw cursor and the reconstructed hyperplane just before it —
// the predictor seed — and a region decode entropy-decodes the whole stream,
// jumps to the nearest boundary at or below the region, and reconstructs only
// rows [slab start, hi[0]).
//
// Bit-identity: the slab kernels accumulate the same stencil terms in the
// same subset-mask order as lorenzo.predict (which the specialized kernels
// are already pinned to), the quantize arithmetic is decPoint's, and the
// restart state (a chunked slab's reset predictor, a legacy seed plane) holds
// exactly what a full decode would have produced — so the restarted
// recurrence is the full recurrence.

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
)

// szIndexMaxSlabs caps the number of slabs: each boundary costs a full
// hyperplane, so past a point more boundaries buy little skipping but a lot
// of index.
const szIndexMaxSlabs = 16

// slabHeight picks the slab height T for a field of nz rows of planeSize
// points each, keeping the seed planes within a budget proportional to the
// blob. Returns 0 when no useful index fits (the decoder then reconstructs
// from row 0, which is still correct).
func slabHeight(nz, planeSize, blobLen int) int {
	if nz < 2 {
		return 0
	}
	planeBytes := 4*planeSize + 8
	budget := blobLen / 8
	if budget < 4096 {
		budget = 4096
	}
	maxBoundaries := budget / planeBytes
	if maxBoundaries < 1 {
		return 0
	}
	nSlabs := maxBoundaries + 1
	if nSlabs > nz {
		nSlabs = nz
	}
	if nSlabs > szIndexMaxSlabs {
		nSlabs = szIndexMaxSlabs
	}
	return (nz + nSlabs - 1) / nSlabs
}

// BuildRegionIndex decodes an sz blob once and returns its region index
// payload:
//
//	uvarint T (slab height along dim 0; 0 = no index)
//	uvarint nSlabs (= ceil(dims[0]/T))
//	(nSlabs-1) × uvarint: escape count within each preceding slab (the raw
//	    cursor at slab i's start is the sum of the first i counts)
//	(nSlabs-1) × seed plane: 1 flag byte (0 raw | 1 entropy-compressed |
//	    2 absent), then — for flags 0 and 1 — uvarint length and the
//	    reconstructed float32 plane at row i·T-1
//
// For a chunked blob the slab height is the blob's own chunk height, every
// seed flag is 2 (the encoder's predictor resets replace the seed planes),
// and no field decode happens at all — the index is just the escape-count
// prefix sums, a few bytes per slab.
func BuildRegionIndex(blob []byte) ([]byte, error) {
	h, payload, err := compress.ParseHeader(blob, compress.MagicSZ)
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	packed, _, _, err := splitSZSections(h.Dims, payload)
	if err != nil {
		return nil, err
	}
	chunkT, err := szSlabRowsFromPacked(packed, h.Dims)
	if err != nil {
		return nil, err
	}
	codeBytes, err := entropy.DecompressBytes(packed)
	if err != nil {
		return nil, fmt.Errorf("sz: decode codes: %w", err)
	}
	nz := h.Dims[0]
	if len(codeBytes) != 2*elemCount(h.Dims) {
		return nil, fmt.Errorf("sz: %w: %d code bytes for %d points", compress.ErrCorrupt, len(codeBytes), elemCount(h.Dims))
	}
	planeSize := elemCount(h.Dims) / nz
	appendEscCounts := func(out []byte, T, nSlabs int) []byte {
		for i := 1; i < nSlabs; i++ {
			cnt := 0
			for p := (i - 1) * T * planeSize; p < i*T*planeSize; p++ {
				if binary.LittleEndian.Uint16(codeBytes[2*p:]) == 0 {
					cnt++
				}
			}
			out = binary.AppendUvarint(out, uint64(cnt))
		}
		return out
	}
	if chunkT > 0 {
		nSlabs := (nz + chunkT - 1) / chunkT
		if nSlabs < 2 {
			return binary.AppendUvarint(nil, 0), nil
		}
		out := binary.AppendUvarint(nil, uint64(chunkT))
		out = binary.AppendUvarint(out, uint64(nSlabs))
		out = appendEscCounts(out, chunkT, nSlabs)
		for i := 1; i < nSlabs; i++ {
			out = append(out, 2)
		}
		return out, nil
	}
	T := slabHeight(nz, planeSize, len(blob))
	out := binary.AppendUvarint(nil, uint64(T))
	if T == 0 {
		return out, nil
	}
	rec, err := decompressSZ(blob, false, 1)
	if err != nil {
		return nil, err
	}
	nSlabs := (nz + T - 1) / T
	out = binary.AppendUvarint(out, uint64(nSlabs))
	out = appendEscCounts(out, T, nSlabs)
	rawPlane := make([]byte, 4*planeSize)
	for i := 1; i < nSlabs; i++ {
		plane := rec.Data[(i*T-1)*planeSize : i*T*planeSize]
		for j, v := range plane {
			binary.LittleEndian.PutUint32(rawPlane[4*j:], math.Float32bits(v))
		}
		comp, cerr := entropy.CompressBytes(rawPlane)
		if cerr == nil && len(comp) < len(rawPlane) {
			out = append(out, 1)
			out = binary.AppendUvarint(out, uint64(len(comp)))
			out = append(out, comp...)
		} else {
			out = append(out, 0)
			out = binary.AppendUvarint(out, uint64(len(rawPlane)))
			out = append(out, rawPlane...)
		}
	}
	return out, nil
}

// szIndex is a parsed region index.
type szIndex struct {
	T      int
	cumEsc []int // cumEsc[i] = escapes before slab i's first point
	flags  []byte
	seeds  [][]byte // per boundary, the encoded seed plane bytes
}

// parseSZIndex validates an index payload; it returns nil (no error) for a
// well-formed empty index.
func parseSZIndex(index []byte, dims []int, n int) (*szIndex, error) {
	t, k := binary.Uvarint(index)
	if k <= 0 {
		return nil, fmt.Errorf("sz: %w: index slab height", compress.ErrCorrupt)
	}
	rest := index[k:]
	if t == 0 {
		if len(rest) != 0 {
			return nil, fmt.Errorf("sz: %w: index trailer", compress.ErrCorrupt)
		}
		return nil, nil
	}
	nz := dims[0]
	if t > uint64(nz) {
		return nil, fmt.Errorf("sz: %w: slab height %d for %d rows", compress.ErrCorrupt, t, nz)
	}
	T := int(t)
	nSlabs, k := binary.Uvarint(rest)
	if k <= 0 || nSlabs != uint64((nz+T-1)/T) || nSlabs < 2 {
		return nil, fmt.Errorf("sz: %w: index slab count", compress.ErrCorrupt)
	}
	rest = rest[k:]
	si := &szIndex{T: T, cumEsc: make([]int, nSlabs)}
	for i := 1; i < int(nSlabs); i++ {
		d, k := binary.Uvarint(rest)
		if k <= 0 || d > uint64(n) {
			return nil, fmt.Errorf("sz: %w: index escape count", compress.ErrCorrupt)
		}
		rest = rest[k:]
		si.cumEsc[i] = si.cumEsc[i-1] + int(d)
		if si.cumEsc[i] < 0 || si.cumEsc[i] > n {
			return nil, fmt.Errorf("sz: %w: index escape cursor", compress.ErrCorrupt)
		}
	}
	for i := 1; i < int(nSlabs); i++ {
		if len(rest) < 1 || rest[0] > 2 {
			return nil, fmt.Errorf("sz: %w: seed flag", compress.ErrCorrupt)
		}
		flag := rest[0]
		rest = rest[1:]
		if flag == 2 {
			// Chunked blob: the predictor resets at this boundary, so no
			// seed plane is stored.
			si.flags = append(si.flags, flag)
			si.seeds = append(si.seeds, nil)
			continue
		}
		ln, k := binary.Uvarint(rest)
		if k <= 0 || uint64(len(rest)-k) < ln {
			return nil, fmt.Errorf("sz: %w: seed plane %d", compress.ErrCorrupt, i)
		}
		rest = rest[k:]
		si.flags = append(si.flags, flag)
		si.seeds = append(si.seeds, rest[:ln])
		rest = rest[ln:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("sz: %w: index trailer", compress.ErrCorrupt)
	}
	return si, nil
}

// seedPlane returns the raw little-endian float32 bytes of the seed plane at
// row s*T-1 (the boundary entering slab s >= 1).
func (si *szIndex) seedPlane(s, planeSize int) ([]byte, error) {
	if si.flags[s-1] == 2 {
		return nil, fmt.Errorf("sz: %w: seedless index paired with a whole-stream blob", compress.ErrCorrupt)
	}
	data := si.seeds[s-1]
	if si.flags[s-1] == 1 {
		var err error
		data, err = entropy.DecompressBytes(data)
		if err != nil {
			return nil, fmt.Errorf("sz: seed plane: %w", err)
		}
	}
	if len(data) != 4*planeSize {
		return nil, fmt.Errorf("sz: %w: seed plane is %d bytes, want %d", compress.ErrCorrupt, len(data), 4*planeSize)
	}
	return data, nil
}

// SlabRows reports the slab height of an sz blob whose code stream lives in
// the chunked entropy container (each slab decodable on its own), or 0 for a
// legacy whole-stream blob or anything unparseable. roi.Reader uses it to
// choose between per-slab lazy materialization and a full decode.
func SlabRows(blob []byte) int {
	h, payload, err := compress.ParseHeader(blob, compress.MagicSZ)
	if err != nil {
		return 0
	}
	packed, _, _, err := splitSZSections(h.Dims, payload)
	if err != nil {
		return 0
	}
	T, err := szSlabRowsFromPacked(packed, h.Dims)
	if err != nil || T >= h.Dims[0] {
		return 0
	}
	return T
}

// DecompressRegion decodes the half-open region [lo, hi) of an sz blob,
// reconstructing only rows [slab(lo[0]), hi[0]) of the Lorenzo recurrence.
// For chunked blobs only the entropy chunks covering those rows are decoded.
// index may be nil or empty; a legacy blob then reconstructs from row 0
// (still skipping the rows past hi[0]), and a chunked blob pays one extra
// entropy pass over the preceding chunks to place the escape-pool cursor.
// The output is bit-identical to the corresponding slice of a full
// Decompress.
func DecompressRegion(blob, index []byte, lo, hi []int) (*grid.Field, error) {
	defer obs.Span("decompress/sz-region")()
	h, payload, err := compress.ParseHeader(blob, compress.MagicSZ)
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	if err := grid.CheckRegion(h.Dims, lo, hi); err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	packed, rawPayload, nraw, err := splitSZSections(h.Dims, payload)
	if err != nil {
		return nil, err
	}
	n := elemCount(h.Dims)
	nz := h.Dims[0]
	planeSize := n / nz
	chunkT, err := szSlabRowsFromPacked(packed, h.Dims)
	if err != nil {
		return nil, err
	}
	if chunkT > 0 && chunkT < nz {
		return decompressRegionChunked(h, packed, rawPayload, nraw, chunkT, index, lo, hi)
	}
	codeBytes, err := entropy.DecompressBytes(packed)
	if err != nil {
		return nil, fmt.Errorf("sz: decode codes: %w", err)
	}
	if len(codeBytes) != 2*n {
		return nil, fmt.Errorf("sz: %w: %d code bytes for %d points", compress.ErrCorrupt, len(codeBytes), n)
	}

	z0, rawPos := 0, 0
	var seed []byte
	if len(index) > 0 {
		si, err := parseSZIndex(index, h.Dims, n)
		if err != nil {
			return nil, err
		}
		if si != nil {
			if s0 := lo[0] / si.T; s0 > 0 {
				z0 = s0 * si.T
				rawPos = si.cumEsc[s0]
				if seed, err = si.seedPlane(s0, planeSize); err != nil {
					return nil, err
				}
			}
		}
	}
	if uint64(rawPos) > nraw {
		return nil, fmt.Errorf("sz: %w: index raw cursor", compress.ErrCorrupt)
	}
	seedRows := 0
	if z0 > 0 {
		seedRows = 1
	}
	rows := hi[0] - z0 + seedRows
	buf := getF32s(rows * planeSize)
	defer putF32s(buf)
	for j := 0; j < seedRows*planeSize; j++ {
		buf[j] = math.Float32frombits(binary.LittleEndian.Uint32(seed[4*j:]))
	}
	if err := reconstructSlab(buf, h.Dims, z0, seedRows, h.Knob, codeBytes, rawPayload, nraw, rawPos); err != nil {
		return nil, err
	}
	obs.Inc("sz/region_decodes")
	obs.Add("sz/region_rows_decoded", int64(hi[0]-z0))
	obs.Add("sz/region_rows_skipped", int64(z0+nz-hi[0]))

	bufDims := append([]int{rows}, h.Dims[1:]...)
	view, err := grid.FromData(h.Name, buf, bufDims...)
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	vlo := append([]int{lo[0] - z0 + seedRows}, lo[1:]...)
	vhi := append([]int{hi[0] - z0 + seedRows}, hi[1:]...)
	return grid.SliceRegion(view, vlo, vhi)
}

// decompressRegionChunked is the region decoder for chunked blobs: slab
// boundaries coincide with entropy-chunk boundaries and the predictor resets
// at each one, so only the chunks covering rows [slab(lo[0]), hi[0]) are
// entropy-decoded and each covering slab reconstructs independently. The
// escape-pool cursor entering the first slab comes from the index when one is
// present; otherwise the preceding chunks are entropy-decoded once, purely to
// count their escape codes (no Lorenzo work).
func decompressRegionChunked(h compress.Header, packed, rawPayload []byte, nraw uint64, chunkT int, index []byte, lo, hi []int) (*grid.Field, error) {
	n := elemCount(h.Dims)
	nz := h.Dims[0]
	planeSize := n / nz
	s0 := lo[0] / chunkT
	z0 := s0 * chunkT
	cum0 := -1
	if len(index) > 0 {
		si, err := parseSZIndex(index, h.Dims, n)
		if err != nil {
			return nil, err
		}
		if si != nil {
			if si.T != chunkT {
				return nil, fmt.Errorf("sz: %w: index slab height %d does not match chunk height %d", compress.ErrCorrupt, si.T, chunkT)
			}
			cum0 = si.cumEsc[s0]
		}
	}
	decodeFrom := z0
	if cum0 < 0 && z0 > 0 {
		decodeFrom = 0 // no index: count escapes from the stream head
	}
	codes, err := entropy.DecompressBytesRange(packed, 2*decodeFrom*planeSize, 2*hi[0]*planeSize, 2*n, 1)
	if err != nil {
		return nil, fmt.Errorf("sz: decode codes: %w", err)
	}
	if cum0 < 0 {
		cum0 = 0
		for p := 0; p < (z0-decodeFrom)*planeSize; p++ {
			if codes[2*p] == 0 && codes[2*p+1] == 0 {
				cum0++
			}
		}
		codes = codes[2*(z0-decodeFrom)*planeSize:]
	}
	if uint64(cum0) > nraw {
		return nil, fmt.Errorf("sz: %w: index raw cursor", compress.ErrCorrupt)
	}

	rows := hi[0] - z0
	buf := getF32s(rows * planeSize)
	defer putF32s(buf)
	rawPos := cum0
	for zs := z0; zs < hi[0]; zs += chunkT {
		ze := zs + chunkT
		if ze > nz {
			ze = nz
		}
		decRows := ze - zs
		if zs+decRows > hi[0] {
			decRows = hi[0] - zs
		}
		slabDims := append([]int{ze - zs}, h.Dims[1:]...)
		rawPos, err = reconstructSlabPrefix(buf[(zs-z0)*planeSize:(zs-z0+decRows)*planeSize],
			slabDims, h.Knob, hi[1:], codes[2*(zs-z0)*planeSize:], rawPayload, nraw, rawPos)
		if err != nil {
			return nil, err
		}
	}
	obs.Inc("sz/region_decodes")
	obs.Inc("sz/region_chunked_decodes")
	obs.Add("sz/region_rows_decoded", int64(hi[0]-z0))
	obs.Add("sz/region_rows_skipped", int64(z0+nz-hi[0]))

	bufDims := append([]int{rows}, h.Dims[1:]...)
	view, err := grid.FromData(h.Name, buf, bufDims...)
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	vlo := append([]int{lo[0] - z0}, lo[1:]...)
	vhi := append([]int{hi[0] - z0}, hi[1:]...)
	return grid.SliceRegion(view, vlo, vhi)
}

// reconstructSlabPrefix reconstructs the leading len(buf) points of one
// chunked slab. slabDims is the slab's full extent (the predictor geometry);
// buf may stop short of it along dim 0 when the region does. Points outside
// the prefix box [0, hiTail[d]) of the trailing dimensions are skipped —
// every Lorenzo dependency of an in-box point is itself in-box, so their
// values are never read — but their escape codes still advance the raw-pool
// cursor to keep it exact for the points that are reconstructed. Returns the
// cursor after the slab.
func reconstructSlabPrefix(buf []float32, slabDims []int, eb float64, hiTail []int, codeBytes, rawPayload []byte, nraw uint64, rawPos int) (int, error) {
	twoEB := 2 * eb
	lor := newLorenzo(slabDims)
	for lidx := range buf {
		inBox := true
		for d := 1; d < len(slabDims); d++ {
			if lor.coord[d] >= hiTail[d-1] {
				inBox = false
				break
			}
		}
		code := binary.LittleEndian.Uint16(codeBytes[2*lidx:])
		if inBox {
			if code != 0 {
				buf[lidx] = float32(lor.predict(buf, lidx) + twoEB*float64(int(code)-radius))
			} else {
				if uint64(rawPos) >= nraw {
					return 0, errRawExhausted()
				}
				buf[lidx] = math.Float32frombits(binary.LittleEndian.Uint32(rawPayload[4*rawPos:]))
				rawPos++
			}
		} else if code == 0 {
			rawPos++
		}
		lor.advance()
	}
	return rawPos, nil
}

// reconstructSlab runs the Lorenzo reconstruction over global rows
// [z0, z0+rows) into buf, whose first seedRows planes hold the already
// reconstructed boundary hyperplane. The predictor is the generic mask-order
// accumulation of lorenzo.predict — the oracle the specialized full-decode
// kernels are pinned to — and the quantize/escape arithmetic mirrors
// decPoint, so restarted output is bit-identical to a full decode.
func reconstructSlab(buf []float32, dims []int, z0, seedRows int, eb float64, codeBytes, rawPayload []byte, nraw uint64, rawPos int) error {
	twoEB := 2 * eb
	planeSize := 1
	for _, d := range dims[1:] {
		planeSize *= d
	}
	lor := newLorenzo(dims)
	lor.coord[0] = z0
	gidx := z0 * planeSize
	for lidx := seedRows * planeSize; lidx < len(buf); lidx++ {
		pred := lor.predict(buf, lidx)
		code := binary.LittleEndian.Uint16(codeBytes[2*gidx:])
		if code != 0 {
			buf[lidx] = float32(pred + twoEB*float64(int(code)-radius))
		} else {
			if uint64(rawPos) >= nraw {
				return errRawExhausted()
			}
			buf[lidx] = math.Float32frombits(binary.LittleEndian.Uint32(rawPayload[4*rawPos:]))
			rawPos++
		}
		lor.advance()
		gidx++
	}
	return nil
}
