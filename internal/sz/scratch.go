package sz

import (
	"sync"

	"github.com/fxrz-go/fxrz/internal/obs"
)

// Scratch pools for the quantization buffers of both SZ codecs. A stationary
// sweep compresses the same field dozens of times; the code, reconstruction
// and byte-serialisation buffers are the three large per-run allocations, and
// all three are fully overwritten before any read (the Lorenzo predictor only
// consults reconstructed values at indices already written this run), so
// recycling them is safe without zeroing.
//
// Each get reports a hit or miss to the obs counters sz/scratch_hit and
// sz/scratch_miss (a miss is a fresh allocation because no recycled buffer
// was large enough).

var (
	u16Pool  = sync.Pool{New: func() any { return new([]uint16) }}
	f32Pool  = sync.Pool{New: func() any { return new([]float32) }}
	bytePool = sync.Pool{New: func() any { return new([]byte) }}
)

// record bumps the pool hit/miss counters.
func record(hit bool) {
	if hit {
		obs.Inc("sz/scratch_hit")
	} else {
		obs.Inc("sz/scratch_miss")
	}
}

// getU16s returns a uint16 slice of length n with unspecified contents.
func getU16s(n int) []uint16 {
	p := u16Pool.Get().(*[]uint16)
	s := *p
	if cap(s) < n {
		record(false)
		return make([]uint16, n)
	}
	record(true)
	return s[:n]
}

func putU16s(s []uint16) {
	if cap(s) == 0 {
		return
	}
	u16Pool.Put(&s)
}

// getF32s returns a float32 slice of length n with unspecified contents.
func getF32s(n int) []float32 {
	p := f32Pool.Get().(*[]float32)
	s := *p
	if cap(s) < n {
		record(false)
		return make([]float32, n)
	}
	record(true)
	return s[:n]
}

func putF32s(s []float32) {
	if cap(s) == 0 {
		return
	}
	f32Pool.Put(&s)
}

// getScratchBytes returns a byte slice of length n with unspecified contents.
func getScratchBytes(n int) []byte {
	p := bytePool.Get().(*[]byte)
	s := *p
	if cap(s) < n {
		record(false)
		return make([]byte, n)
	}
	record(true)
	return s[:n]
}

func putScratchBytes(s []byte) {
	if cap(s) == 0 {
		return
	}
	bytePool.Put(&s)
}
