package sz

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// parWidths are the worker counts the bit-identity contract is proven at.
func parWidths() []int {
	ws := []int{2, 3}
	if n := runtime.NumCPU(); n > 3 {
		ws = append(ws, n)
	}
	return ws
}

// parShapes cross the wavefront cutoffs: 2D needs nx >= 2*szParMinTileW for
// a real tiling, 3D just needs szParMinPoints points; the small and 1D/4D
// shapes prove the gates decline cleanly (serial fallback, identical blobs).
var parShapes = [][]int{
	{1 << 14},      // 1D: always serial
	{8, 8},         // tiny 2D: below the point cutoff
	{40, 512},      // 2D: 2+ tiles at any width
	{97, 300},      // 2D: odd extents, ragged last tile
	{64, 130},      // 2D: above point cutoff, ntx<2 → serial fallback
	{16, 32, 32},   // 3D: wavefront with nz+ny-1 fronts
	{5, 70, 33},    // 3D: ragged, ny >> nz
	{4, 4, 32, 32}, // 4D: always serial (generic path)
}

// parField fills a field with the given character. Characters mirror the
// serial identity suite: smooth (mostly quantized), noisy (mixed), escape
// (NaN/Inf/huge forcing the raw path), constant.
func parField(shape []int, kind string) *grid.Field {
	f := grid.MustNew(kind, shape...)
	rng := rand.New(rand.NewSource(int64(len(f.Data))))
	for i := range f.Data {
		switch kind {
		case "smooth":
			f.Data[i] = float32(math.Sin(float64(i) / 17))
		case "noisy":
			f.Data[i] = rng.Float32()*2e4 - 1e4
		case "escape":
			switch i % 7 {
			case 0:
				f.Data[i] = float32(math.NaN())
			case 1:
				f.Data[i] = float32(math.Inf(1))
			case 2:
				f.Data[i] = float32(math.Inf(-1))
			case 3:
				f.Data[i] = 3e38
			case 4:
				f.Data[i] = float32(math.Copysign(0, -1))
			default:
				f.Data[i] = float32(i)
			}
		case "constant":
			f.Data[i] = 4.25
		}
	}
	return f
}

var parKinds = []string{"smooth", "noisy", "escape", "constant"}

// Parallel compression and decompression must be byte- and bit-identical to
// the serial path for every shape, data character and worker count.
func TestSZParallelIdentity(t *testing.T) {
	for _, shape := range parShapes {
		for _, kind := range parKinds {
			f := parField(shape, kind)
			for _, eb := range []float64{1e-6, 1e-3, 1.0} {
				serialBlob, err := compressSZ(f, eb, false, 1)
				if err != nil {
					t.Fatalf("%v/%s eb=%g: serial compress: %v", shape, kind, eb, err)
				}
				serialRec, err := decompressSZ(serialBlob, false, 1)
				if err != nil {
					t.Fatalf("%v/%s eb=%g: serial decompress: %v", shape, kind, eb, err)
				}
				for _, w := range parWidths() {
					parBlob, err := compressSZ(f, eb, false, w)
					if err != nil {
						t.Fatalf("%v/%s eb=%g w=%d: compress: %v", shape, kind, eb, w, err)
					}
					if !bytes.Equal(parBlob, serialBlob) {
						t.Fatalf("%v/%s eb=%g w=%d: parallel blob differs from serial", shape, kind, eb, w)
					}
					parRec, err := decompressSZ(serialBlob, false, w)
					if err != nil {
						t.Fatalf("%v/%s eb=%g w=%d: decompress: %v", shape, kind, eb, w, err)
					}
					if !bitsEqual(parRec.Data, serialRec.Data) {
						t.Fatalf("%v/%s eb=%g w=%d: parallel reconstruction differs from serial", shape, kind, eb, w)
					}
				}
			}
		}
	}
}

// bitsEqual compares float32 slices by bit pattern (NaN-safe).
func bitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// The wavefront kernels themselves must reproduce the serial quantizer's
// codes, reconstruction and raw-escape order exactly.
func TestWavefrontKernelsMatchSerial(t *testing.T) {
	for _, shape := range parShapes {
		if len(shape) != 2 && len(shape) != 3 {
			continue
		}
		for _, kind := range parKinds {
			f := parField(shape, kind)
			n := f.Size()
			eb := 1e-3

			sCodes := make([]uint16, n)
			sRecon := make([]float32, n)
			sRaw := quantizeField(f, eb, sCodes, sRecon, make([]float32, 0, n), false)

			for _, w := range parWidths() {
				pCodes := make([]uint16, n)
				pRecon := make([]float32, n)
				pRaw, handled := quantizeFieldParallel(f, eb, pCodes, pRecon, make([]float32, 0, n), w)
				if !handled {
					continue // gated to serial; codec-level test already covers it
				}
				for i := range sCodes {
					if pCodes[i] != sCodes[i] {
						t.Fatalf("%v/%s w=%d: code[%d] = %d, want %d", shape, kind, w, i, pCodes[i], sCodes[i])
					}
				}
				if !bitsEqual(pRecon, sRecon) {
					t.Fatalf("%v/%s w=%d: recon differs", shape, kind, w)
				}
				if !bitsEqual(pRaw, sRaw) {
					t.Fatalf("%v/%s w=%d: raw escape order differs (%d vs %d escapes)", shape, kind, w, len(pRaw), len(sRaw))
				}
			}
		}
	}
}

// A truncated raw pool must fail identically on both paths: same error, at
// any worker count.
func TestSZParallelRawExhaustedIdentity(t *testing.T) {
	f := parField([]int{16, 32, 32}, "escape")
	blob, err := compressSZ(f, 1e-3, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Reserialize with the raw count inflated beyond the payload: reuse the
	// serial corruption helper path by chopping raw floats off the tail.
	cut := blob[:len(blob)-8]
	if _, serr := decompressSZ(cut, false, 1); serr == nil {
		t.Skip("truncated blob unexpectedly decodes; corruption covered elsewhere")
	} else {
		for _, w := range parWidths() {
			_, perr := decompressSZ(cut, false, w)
			if perr == nil {
				t.Fatalf("w=%d: truncated blob decoded", w)
			}
			if perr.Error() != serr.Error() {
				t.Fatalf("w=%d: error %q differs from serial %q", w, perr, serr)
			}
		}
	}
}

// SZ2 routes only its entropy stage through the worker budget; blobs must
// still be byte-identical at every width.
func TestSZ2ParallelIdentity(t *testing.T) {
	f := parField([]int{32, 64, 64}, "smooth")
	serial := &V2{Workers: 1}
	want, err := serial.Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	wantRec, err := serial.Decompress(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWidths() {
		par := &V2{Workers: w}
		got, err := par.Compress(f, 1e-3)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("w=%d: parallel sz2 blob differs from serial", w)
		}
		rec, err := par.Decompress(got)
		if err != nil {
			t.Fatalf("w=%d: decompress: %v", w, err)
		}
		if !bitsEqual(rec.Data, wantRec.Data) {
			t.Fatalf("w=%d: sz2 reconstruction differs", w)
		}
	}
}

// A single parallel Compressor value shared across goroutines must be safe:
// the pooled scratch is per-acquisition, never per-codec. Run under -race.
func TestSZSharedCompressorConcurrent(t *testing.T) {
	f := parField([]int{16, 32, 32}, "noisy")
	c := &Compressor{Workers: 2}
	want, err := c.Compress(f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				blob, err := c.Compress(f, 1e-3)
				if err != nil {
					errs[g] = err
					return
				}
				if !bytes.Equal(blob, want) {
					errs[g] = errMismatch
					return
				}
				if _, err := c.Decompress(blob); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

var errMismatch = errMismatchType{}

type errMismatchType struct{}

func (errMismatchType) Error() string { return "concurrent blob differs from reference" }
