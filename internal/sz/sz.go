// Package sz implements an SZ-style error-bounded lossy compressor for
// scientific floating-point fields, following the classic SZ 1.4/2.x
// pipeline: an N-dimensional Lorenzo predictor operating on reconstructed
// values, linear-scaling quantization of prediction residuals against the
// absolute error bound, an escape path for unpredictable points, and a
// lossless back end (LZ dictionary coding + Huffman) standing in for SZ's
// Huffman+Zstd stage.
//
// The compressor guarantees |decompressed - original| <= eb for every point
// (unpredictable points are stored verbatim).
package sz

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

// quantization alphabet: code 0 escapes to the raw path, codes 1..intervals-1
// carry the residual bucket q = code - radius.
const (
	intervals = 1 << 16
	radius    = intervals / 2
)

// Compressor is the SZ-like codec. The zero value is ready to use.
type Compressor struct {
	// Workers bounds the intra-field fan-out (pool.Workers semantics: 0 uses
	// all cores, 1 forces a serial run). The 2D/3D Lorenzo sweeps run as
	// anti-diagonal wavefronts and the Huffman frequency count is sharded;
	// blobs and reconstructions are bit-identical at every setting.
	Workers int
}

// New returns an SZ-like compressor.
func New() *Compressor { return &Compressor{} }

// Name implements compress.Compressor.
func (*Compressor) Name() string { return "sz" }

// Axis implements compress.Compressor: the knob is an absolute error bound.
func (*Compressor) Axis() compress.Axis {
	return compress.Axis{Kind: compress.AbsErrorBound, Min: 1e-12, Max: 1e6}
}

// WithWorkers implements compress.ParallelCompressor.
func (c *Compressor) WithWorkers(n int) compress.Compressor { return &Compressor{Workers: n} }

// Compress implements compress.Compressor.
func (c *Compressor) Compress(f *grid.Field, eb float64) ([]byte, error) {
	return compressSZ(f, eb, false, pool.Workers(c.Workers))
}

// szSlabMinRows floors the slab height of a chunked blob: below it the
// boundary planes (which quantize with one fewer predictor dimension) would
// be a noticeable fraction of each slab and cost compression ratio.
const szSlabMinRows = 8

// szChunkLayout maps a field's shape onto the chunked-entropy container:
// slabs of rowsPerSlab leading-dimension rows, each 2·planeSize·rowsPerSlab
// code bytes — one entropy chunk per slab, sized near the container's target.
// A field that does not fill two slabs stays in the legacy whole-stream
// format (same size cutoff idiom as the wavefront kernels).
func szChunkLayout(dims []int) (rowsPerSlab, nSlabs int) {
	nz := dims[0]
	if nz <= 0 {
		return 0, 1
	}
	rowBytes := 2 * (elemCount(dims) / nz)
	rowsPerSlab = entropy.ChunkTargetBytes / rowBytes
	if rowsPerSlab < szSlabMinRows {
		rowsPerSlab = szSlabMinRows
	}
	return rowsPerSlab, (nz + rowsPerSlab - 1) / rowsPerSlab
}

// szSlabRowsFromPacked recovers the slab height a chunked code stream was
// encoded with (0 for a legacy whole-stream blob). The container is
// self-describing: a chunked blob's block size is always a whole number of
// rows, and its presence is the signal that the encoder reset the Lorenzo
// predictor at every slab boundary.
func szSlabRowsFromPacked(packed []byte, dims []int) (int, error) {
	blockBytes := entropy.ChunkedBlockSize(packed)
	if blockBytes == 0 {
		return 0, nil
	}
	nz := dims[0]
	if nz <= 0 {
		return 0, fmt.Errorf("sz: %w: chunked stream for empty dims", compress.ErrCorrupt)
	}
	rowBytes := 2 * (elemCount(dims) / nz)
	if rowBytes == 0 || blockBytes%rowBytes != 0 {
		return 0, fmt.Errorf("sz: %w: chunk size %d is not a whole number of %d-byte rows", compress.ErrCorrupt, blockBytes, rowBytes)
	}
	return blockBytes / rowBytes, nil
}

// compressSZ is the Compress implementation; forceGeneric pins the
// quantization pass to the N-d odometer oracle so tests can prove the
// specialized kernels emit identical blobs.
//
// Fields spanning two or more slabs (szChunkLayout) quantize slab by slab
// with the Lorenzo predictor reset at every slab boundary — each slab is an
// independent sub-field — and the code stream is packed into the chunked
// entropy container with one chunk per slab. That makes every slab decodable
// from its own chunk alone: the full decoder fans slabs across workers and
// the region decoder touches only the chunks covering the request. Smaller
// fields keep the legacy whole-field predictor and whole-stream container
// byte-identically.
func compressSZ(f *grid.Field, eb float64, forceGeneric bool, workers int) ([]byte, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("sz: error bound must be a positive finite number, got %v", eb)
	}
	defer obs.Span("compress/sz")()
	obs.Inc("compressor_runs/sz")
	n := f.Size()
	codes := getU16s(n)
	defer putU16s(codes)
	recon := getF32s(n)
	defer putF32s(recon)
	// The escape pool is staged through the scratch pools too: at most n
	// points can escape, so a capacity-n buffer guarantees the appends inside
	// the kernels never reallocate.
	rawBuf := getF32s(n)[:0]
	defer putF32s(rawBuf[:cap(rawBuf)])
	raw := rawBuf
	rowsPerSlab, nSlabs := szChunkLayout(f.Dims)
	if nSlabs >= 2 {
		obs.Inc("sz/chunked_encode")
		nz := f.Dims[0]
		ps := n / nz
		subDims := append([]int(nil), f.Dims...)
		for z0 := 0; z0 < nz; z0 += rowsPerSlab {
			z1 := z0 + rowsPerSlab
			if z1 > nz {
				z1 = nz
			}
			subDims[0] = z1 - z0
			sub, err := grid.FromData(f.Name, f.Data[z0*ps:z1*ps], subDims...)
			if err != nil {
				return nil, fmt.Errorf("sz: %w", err)
			}
			// Slabs run serially here (the escape pool appends in global
			// row-major order); the wavefront inside each slab still fans out.
			handled := false
			if !forceGeneric {
				raw, handled = quantizeFieldParallel(sub, eb, codes[z0*ps:z1*ps], recon[z0*ps:z1*ps], raw, workers)
			}
			if !handled {
				raw = quantizeField(sub, eb, codes[z0*ps:z1*ps], recon[z0*ps:z1*ps], raw, forceGeneric)
			}
		}
	} else {
		handled := false
		if !forceGeneric {
			raw, handled = quantizeFieldParallel(f, eb, codes, recon, rawBuf, workers)
		}
		if !handled {
			raw = quantizeField(f, eb, codes, recon, rawBuf, forceGeneric)
		}
	}

	codeBytes := getScratchBytes(2 * n)
	for i, c := range codes {
		binary.LittleEndian.PutUint16(codeBytes[2*i:], c)
	}
	var packedCodes []byte
	var err error
	if nSlabs >= 2 {
		packedCodes, err = entropy.CompressBytesBlocks(codeBytes, 2*rowsPerSlab*(n/f.Dims[0]), workers)
	} else {
		packedCodes, err = entropy.CompressBytesParallel(codeBytes, workers)
	}
	putScratchBytes(codeBytes)
	if err != nil {
		return nil, fmt.Errorf("sz: encode codes: %w", err)
	}
	rawBytes := getScratchBytes(4 * len(raw))
	for i, v := range raw {
		binary.LittleEndian.PutUint32(rawBytes[4*i:], math.Float32bits(v))
	}

	out := compress.AppendHeader(nil, compress.Header{Magic: compress.MagicSZ, Name: f.Name, Dims: f.Dims, Knob: eb})
	out = binary.AppendUvarint(out, uint64(len(packedCodes)))
	out = append(out, packedCodes...)
	out = binary.AppendUvarint(out, uint64(len(raw)))
	out = append(out, rawBytes...)
	putScratchBytes(rawBytes)
	return out, nil
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(blob []byte) (*grid.Field, error) {
	return decompressSZ(blob, false, pool.Workers(c.Workers))
}

// splitSZSections splits an sz payload (everything after the common header)
// into its still-compressed code section and the raw escape pool, with the
// container-level corruption checks but without entropy-decoding anything —
// the region decoder seeks inside the packed stream instead of expanding it.
func splitSZSections(dims []int, payload []byte) (packed, rawPayload []byte, nraw uint64, err error) {
	if _, err := compress.CheckElems(dims, len(payload)); err != nil {
		return nil, nil, 0, fmt.Errorf("sz: %w", err)
	}
	pcLen, k := binary.Uvarint(payload)
	if k <= 0 || uint64(len(payload)-k) < pcLen {
		return nil, nil, 0, fmt.Errorf("sz: %w: code section", compress.ErrCorrupt)
	}
	payload = payload[k:]
	packed = payload[:pcLen]
	payload = payload[pcLen:]
	nraw, k = binary.Uvarint(payload)
	if k <= 0 || uint64(len(payload)-k) < 4*nraw {
		return nil, nil, 0, fmt.Errorf("sz: %w: raw section", compress.ErrCorrupt)
	}
	return packed, payload[k:], nraw, nil
}

// parseSZSections is splitSZSections plus the entropy decode of the code
// section (fanning a chunked container's chunks over `workers`). Shared by
// the full decoder, the region decoder, and the region index builder so the
// three agree on the container layout.
func parseSZSections(dims []int, payload []byte, workers int) (codeBytes, rawPayload []byte, nraw uint64, err error) {
	packed, rawPayload, nraw, err := splitSZSections(dims, payload)
	if err != nil {
		return nil, nil, 0, err
	}
	codeBytes, err = entropy.DecompressBytesParallel(packed, workers)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("sz: decode codes: %w", err)
	}
	if len(codeBytes) != 2*elemCount(dims) {
		return nil, nil, 0, fmt.Errorf("sz: %w: %d code bytes for %d points", compress.ErrCorrupt, len(codeBytes), elemCount(dims))
	}
	return codeBytes, rawPayload, nraw, nil
}

// decompressSZ is the Decompress implementation; forceGeneric pins the
// reconstruction pass to the N-d odometer oracle (see compressSZ).
//
// A chunked blob (szSlabRowsFromPacked) reconstructs slab by slab: the
// entropy chunks already fanned out inside parseSZSections, and the slabs —
// independent sub-fields thanks to the encoder's predictor resets — fan out
// here under the same worker budget, outer workers across slabs and inner
// workers on each slab's wavefront via pool.Split.
func decompressSZ(blob []byte, forceGeneric bool, workers int) (*grid.Field, error) {
	defer obs.Span("decompress/sz")()
	h, payload, err := compress.ParseHeader(blob, compress.MagicSZ)
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	packed, rawPayload, nraw, err := splitSZSections(h.Dims, payload)
	if err != nil {
		return nil, err
	}
	T, err := szSlabRowsFromPacked(packed, h.Dims)
	if err != nil {
		return nil, err
	}
	codeBytes, err := entropy.DecompressBytesParallel(packed, workers)
	if err != nil {
		return nil, fmt.Errorf("sz: decode codes: %w", err)
	}
	if len(codeBytes) != 2*elemCount(h.Dims) {
		return nil, fmt.Errorf("sz: %w: %d code bytes for %d points", compress.ErrCorrupt, len(codeBytes), elemCount(h.Dims))
	}
	f, err := grid.New(h.Name, h.Dims...)
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	if T > 0 {
		if err := reconstructSlabs(f, h.Knob, codeBytes, rawPayload, nraw, T, workers, forceGeneric); err != nil {
			return nil, err
		}
		return f, nil
	}
	handled := false
	if !forceGeneric {
		var perr error
		handled, perr = reconstructFieldParallel(f, h.Knob, codeBytes, rawPayload, nraw, workers)
		if perr != nil {
			return nil, perr
		}
	}
	if !handled {
		if err := reconstructField(f, h.Knob, codeBytes, rawPayload, nraw, forceGeneric); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// reconstructSlabs rebuilds a chunked blob's field slab by slab. Each slab's
// escape-pool cursor comes from a prescan of the already-decoded code stream
// (escapes appear in global row-major order), so slabs reconstruct in any
// order and therefore in parallel.
func reconstructSlabs(f *grid.Field, eb float64, codeBytes, rawPayload []byte, nraw uint64, T, workers int, forceGeneric bool) error {
	nz := f.Dims[0]
	ps := len(f.Data) / nz
	nSlabs := (nz + T - 1) / T
	starts, total := prescanEscapes(codeBytes, nSlabs, func(s int) (start, count, stride int) {
		z0 := s * T
		z1 := z0 + T
		if z1 > nz {
			z1 = nz
		}
		return z0 * ps, (z1 - z0) * ps, 1
	})
	if uint64(total) > nraw {
		return errRawExhausted()
	}
	outer, inner := pool.Split(workers, nSlabs)
	errs := make([]error, nSlabs)
	pool.Run(outer, nSlabs, func(s int) {
		z0 := s * T
		z1 := z0 + T
		if z1 > nz {
			z1 = nz
		}
		subDims := append([]int(nil), f.Dims...)
		subDims[0] = z1 - z0
		sub, err := grid.FromData(f.Name, f.Data[z0*ps:z1*ps], subDims...)
		if err != nil {
			errs[s] = fmt.Errorf("sz: %w", err)
			return
		}
		next := int(nraw)
		if s+1 < nSlabs {
			next = starts[s+1]
		}
		subRaw := rawPayload[4*starts[s]:]
		subNraw := uint64(next - starts[s])
		subCodes := codeBytes[2*z0*ps : 2*z1*ps]
		handled := false
		if !forceGeneric {
			handled, errs[s] = reconstructFieldParallel(sub, eb, subCodes, subRaw, subNraw, inner)
			if errs[s] != nil {
				return
			}
		}
		if !handled {
			errs[s] = reconstructField(sub, eb, subCodes, subRaw, subNraw, forceGeneric)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// lorenzo evaluates the N-dimensional Lorenzo predictor at successive
// row-major positions. The predictor is the inclusion–exclusion sum over the
// 2^d-1 neighbors at offset -1 in each subset of dimensions:
//
//	pred(x) = Σ_{∅≠S⊆dims} (-1)^(|S|+1) · v(x - Σ_{d∈S} e_d)
//
// which reduces to equations (1) and (2) of the paper in 2D/3D. Neighbors
// outside the grid contribute zero, consistently on both codec sides.
type lorenzo struct {
	dims    []int
	strides []int
	coord   []int
	// offs[m] is the linear offset of the neighbor for subset mask m+1.
	offs  []int
	signs []float64
}

func newLorenzo(dims []int) *lorenzo {
	l := &lorenzo{dims: dims, coord: make([]int, len(dims))}
	st := 1
	l.strides = make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		l.strides[i] = st
		st *= dims[i]
	}
	nmask := 1 << len(dims)
	for m := 1; m < nmask; m++ {
		off := 0
		for d := 0; d < len(dims); d++ {
			if m&(1<<d) != 0 {
				off += l.strides[d]
			}
		}
		l.offs = append(l.offs, off)
		if bits.OnesCount(uint(m))%2 == 1 {
			l.signs = append(l.signs, 1)
		} else {
			l.signs = append(l.signs, -1)
		}
	}
	return l
}

// predict computes the Lorenzo prediction for the current position using
// already-reconstructed values in data.
func (l *lorenzo) predict(data []float32, idx int) float64 {
	var pred float64
	nmask := 1 << len(l.dims)
	for m := 1; m < nmask; m++ {
		ok := true
		for d := 0; d < len(l.dims); d++ {
			if m&(1<<d) != 0 && l.coord[d] == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		pred += l.signs[m-1] * float64(data[idx-l.offs[m-1]])
	}
	return pred
}

// advance steps the internal coordinate odometer to the next row-major index.
func (l *lorenzo) advance() {
	for d := len(l.dims) - 1; d >= 0; d-- {
		l.coord[d]++
		if l.coord[d] < l.dims[d] {
			return
		}
		l.coord[d] = 0
	}
}

// elemCount multiplies dims without allocating (header sanity checks).
func elemCount(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}
