// Package sz implements an SZ-style error-bounded lossy compressor for
// scientific floating-point fields, following the classic SZ 1.4/2.x
// pipeline: an N-dimensional Lorenzo predictor operating on reconstructed
// values, linear-scaling quantization of prediction residuals against the
// absolute error bound, an escape path for unpredictable points, and a
// lossless back end (LZ dictionary coding + Huffman) standing in for SZ's
// Huffman+Zstd stage.
//
// The compressor guarantees |decompressed - original| <= eb for every point
// (unpredictable points are stored verbatim).
package sz

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

// quantization alphabet: code 0 escapes to the raw path, codes 1..intervals-1
// carry the residual bucket q = code - radius.
const (
	intervals = 1 << 16
	radius    = intervals / 2
)

// Compressor is the SZ-like codec. The zero value is ready to use.
type Compressor struct {
	// Workers bounds the intra-field fan-out (pool.Workers semantics: 0 uses
	// all cores, 1 forces a serial run). The 2D/3D Lorenzo sweeps run as
	// anti-diagonal wavefronts and the Huffman frequency count is sharded;
	// blobs and reconstructions are bit-identical at every setting.
	Workers int
}

// New returns an SZ-like compressor.
func New() *Compressor { return &Compressor{} }

// Name implements compress.Compressor.
func (*Compressor) Name() string { return "sz" }

// Axis implements compress.Compressor: the knob is an absolute error bound.
func (*Compressor) Axis() compress.Axis {
	return compress.Axis{Kind: compress.AbsErrorBound, Min: 1e-12, Max: 1e6}
}

// WithWorkers implements compress.ParallelCompressor.
func (c *Compressor) WithWorkers(n int) compress.Compressor { return &Compressor{Workers: n} }

// Compress implements compress.Compressor.
func (c *Compressor) Compress(f *grid.Field, eb float64) ([]byte, error) {
	return compressSZ(f, eb, false, pool.Workers(c.Workers))
}

// compressSZ is the Compress implementation; forceGeneric pins the
// quantization pass to the N-d odometer oracle so tests can prove the
// specialized kernels emit identical blobs.
func compressSZ(f *grid.Field, eb float64, forceGeneric bool, workers int) ([]byte, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("sz: error bound must be a positive finite number, got %v", eb)
	}
	defer obs.Span("compress/sz")()
	obs.Inc("compressor_runs/sz")
	n := f.Size()
	codes := getU16s(n)
	defer putU16s(codes)
	recon := getF32s(n)
	defer putF32s(recon)
	// The escape pool is staged through the scratch pools too: at most n
	// points can escape, so a capacity-n buffer guarantees the appends inside
	// the kernels never reallocate.
	rawBuf := getF32s(n)[:0]
	defer putF32s(rawBuf[:cap(rawBuf)])
	var raw []float32
	handled := false
	if !forceGeneric {
		raw, handled = quantizeFieldParallel(f, eb, codes, recon, rawBuf, workers)
	}
	if !handled {
		raw = quantizeField(f, eb, codes, recon, rawBuf, forceGeneric)
	}

	codeBytes := getScratchBytes(2 * n)
	for i, c := range codes {
		binary.LittleEndian.PutUint16(codeBytes[2*i:], c)
	}
	packedCodes, err := entropy.CompressBytesParallel(codeBytes, workers)
	putScratchBytes(codeBytes)
	if err != nil {
		return nil, fmt.Errorf("sz: encode codes: %w", err)
	}
	rawBytes := getScratchBytes(4 * len(raw))
	for i, v := range raw {
		binary.LittleEndian.PutUint32(rawBytes[4*i:], math.Float32bits(v))
	}

	out := compress.AppendHeader(nil, compress.Header{Magic: compress.MagicSZ, Name: f.Name, Dims: f.Dims, Knob: eb})
	out = binary.AppendUvarint(out, uint64(len(packedCodes)))
	out = append(out, packedCodes...)
	out = binary.AppendUvarint(out, uint64(len(raw)))
	out = append(out, rawBytes...)
	putScratchBytes(rawBytes)
	return out, nil
}

// Decompress implements compress.Compressor.
func (c *Compressor) Decompress(blob []byte) (*grid.Field, error) {
	return decompressSZ(blob, false, pool.Workers(c.Workers))
}

// parseSZSections splits an sz payload (everything after the common header)
// into its entropy-decoded quantization codes and the raw escape pool, with
// all the corruption checks Decompress performs. Shared by the full decoder,
// the region decoder, and the region index builder so the three agree on the
// container layout.
func parseSZSections(dims []int, payload []byte) (codeBytes, rawPayload []byte, nraw uint64, err error) {
	if _, err := compress.CheckElems(dims, len(payload)); err != nil {
		return nil, nil, 0, fmt.Errorf("sz: %w", err)
	}
	pcLen, k := binary.Uvarint(payload)
	if k <= 0 || uint64(len(payload)-k) < pcLen {
		return nil, nil, 0, fmt.Errorf("sz: %w: code section", compress.ErrCorrupt)
	}
	payload = payload[k:]
	codeBytes, err = entropy.DecompressBytes(payload[:pcLen])
	if err != nil {
		return nil, nil, 0, fmt.Errorf("sz: decode codes: %w", err)
	}
	payload = payload[pcLen:]
	nraw, k = binary.Uvarint(payload)
	if k <= 0 || uint64(len(payload)-k) < 4*nraw {
		return nil, nil, 0, fmt.Errorf("sz: %w: raw section", compress.ErrCorrupt)
	}
	if len(codeBytes) != 2*elemCount(dims) {
		return nil, nil, 0, fmt.Errorf("sz: %w: %d code bytes for %d points", compress.ErrCorrupt, len(codeBytes), elemCount(dims))
	}
	return codeBytes, payload[k:], nraw, nil
}

// decompressSZ is the Decompress implementation; forceGeneric pins the
// reconstruction pass to the N-d odometer oracle (see compressSZ).
func decompressSZ(blob []byte, forceGeneric bool, workers int) (*grid.Field, error) {
	defer obs.Span("decompress/sz")()
	h, payload, err := compress.ParseHeader(blob, compress.MagicSZ)
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	codeBytes, payload, nraw, err := parseSZSections(h.Dims, payload)
	if err != nil {
		return nil, err
	}
	f, err := grid.New(h.Name, h.Dims...)
	if err != nil {
		return nil, fmt.Errorf("sz: %w", err)
	}
	handled := false
	if !forceGeneric {
		var perr error
		handled, perr = reconstructFieldParallel(f, h.Knob, codeBytes, payload, nraw, workers)
		if perr != nil {
			return nil, perr
		}
	}
	if !handled {
		if err := reconstructField(f, h.Knob, codeBytes, payload, nraw, forceGeneric); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// lorenzo evaluates the N-dimensional Lorenzo predictor at successive
// row-major positions. The predictor is the inclusion–exclusion sum over the
// 2^d-1 neighbors at offset -1 in each subset of dimensions:
//
//	pred(x) = Σ_{∅≠S⊆dims} (-1)^(|S|+1) · v(x - Σ_{d∈S} e_d)
//
// which reduces to equations (1) and (2) of the paper in 2D/3D. Neighbors
// outside the grid contribute zero, consistently on both codec sides.
type lorenzo struct {
	dims    []int
	strides []int
	coord   []int
	// offs[m] is the linear offset of the neighbor for subset mask m+1.
	offs  []int
	signs []float64
}

func newLorenzo(dims []int) *lorenzo {
	l := &lorenzo{dims: dims, coord: make([]int, len(dims))}
	st := 1
	l.strides = make([]int, len(dims))
	for i := len(dims) - 1; i >= 0; i-- {
		l.strides[i] = st
		st *= dims[i]
	}
	nmask := 1 << len(dims)
	for m := 1; m < nmask; m++ {
		off := 0
		for d := 0; d < len(dims); d++ {
			if m&(1<<d) != 0 {
				off += l.strides[d]
			}
		}
		l.offs = append(l.offs, off)
		if bits.OnesCount(uint(m))%2 == 1 {
			l.signs = append(l.signs, 1)
		} else {
			l.signs = append(l.signs, -1)
		}
	}
	return l
}

// predict computes the Lorenzo prediction for the current position using
// already-reconstructed values in data.
func (l *lorenzo) predict(data []float32, idx int) float64 {
	var pred float64
	nmask := 1 << len(l.dims)
	for m := 1; m < nmask; m++ {
		ok := true
		for d := 0; d < len(l.dims); d++ {
			if m&(1<<d) != 0 && l.coord[d] == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		pred += l.signs[m-1] * float64(data[idx-l.offs[m-1]])
	}
	return pred
}

// advance steps the internal coordinate odometer to the next row-major index.
func (l *lorenzo) advance() {
	for d := len(l.dims) - 1; d >= 0; d-- {
		l.coord[d]++
		if l.coord[d] < l.dims[d] {
			return
		}
		l.coord[d] = 0
	}
}

// elemCount multiplies dims without allocating (header sanity checks).
func elemCount(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}
