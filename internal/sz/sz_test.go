package sz

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/compress/compresstest"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/metrics"
)

func TestRoundTripRespectsBound(t *testing.T) {
	compresstest.RoundTrip(t, New(), []float64{1e-4, 1e-2, 0.5, 10},
		func(f *grid.Field, knob float64) float64 { return knob })
}

func TestRatioMonotoneInBound(t *testing.T) {
	compresstest.MonotoneRatio(t, New(), []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}, true)
}

func TestRejectsCorruptStreams(t *testing.T) {
	compresstest.RejectsCorrupt(t, New(), 1e-3)
}

func TestInvalidErrorBound(t *testing.T) {
	f := grid.MustNew("t", 8)
	c := New()
	for _, eb := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := c.Compress(f, eb); err == nil {
			t.Errorf("eb=%v accepted", eb)
		}
	}
}

func TestConstantFieldCompressesExtremely(t *testing.T) {
	f := grid.MustNew("const", 64, 64, 64)
	f.Fill(42)
	r, err := compress.CompressRatio(New(), f, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// A constant field quantizes to a single repeated code; with the LZ
	// stage the ratio should be in the thousands.
	if r < 1000 {
		t.Errorf("constant field ratio = %.1f, want >= 1000", r)
	}
}

func TestSmoothFieldBeatsEntropyCeiling(t *testing.T) {
	// Pure symbol entropy coding of float32 tops out at 32×; the LZ stage
	// must push smooth fields past it at loose bounds.
	f := grid.MustNew("smooth", 48, 48, 48)
	for z := 0; z < 48; z++ {
		for y := 0; y < 48; y++ {
			for x := 0; x < 48; x++ {
				f.Set(float32(math.Sin(float64(z)/16)+math.Cos(float64(y)/16)+math.Sin(float64(x)/16)), z, y, x)
			}
		}
	}
	r, err := compress.CompressRatio(New(), f, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r < 40 {
		t.Errorf("smooth field at loose bound: ratio = %.1f, want >= 40", r)
	}
}

func TestLorenzoPrediction2D(t *testing.T) {
	// On a bilinear ramp v = a + b·y + c·x the 2D Lorenzo predictor is exact
	// away from the borders.
	f := grid.MustNew("ramp", 8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			f.Set(float32(1+2*y+3*x), y, x)
		}
	}
	l := newLorenzo(f.Dims)
	data := f.Data
	for idx := 0; idx < f.Size(); idx++ {
		c := f.Coord(idx)
		pred := l.predict(data, idx)
		if c[0] > 0 && c[1] > 0 {
			want := float64(f.At(c...))
			if math.Abs(pred-want) > 1e-5 {
				t.Fatalf("Lorenzo at %v: pred %v, want %v", c, pred, want)
			}
		}
		l.advance()
	}
}

func TestLorenzoPrediction3DMatchesPaperFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := grid.MustNew("r", 5, 6, 7)
	for i := range f.Data {
		f.Data[i] = rng.Float32()
	}
	l := newLorenzo(f.Dims)
	d := func(z, y, x int) float64 { return float64(f.At(z, y, x)) }
	for idx := 0; idx < f.Size(); idx++ {
		c := f.Coord(idx)
		pred := l.predict(f.Data, idx)
		if c[0] > 0 && c[1] > 0 && c[2] > 0 {
			i, j, k := c[0], c[1], c[2]
			// Equation (2) of the paper.
			want := d(i-1, j, k) + d(i, j-1, k) + d(i, j, k-1) -
				d(i-1, j-1, k) - d(i-1, j, k-1) - d(i, j-1, k-1) +
				d(i-1, j-1, k-1)
			if math.Abs(pred-want) > 1e-6 {
				t.Fatalf("3D Lorenzo at %v: pred %v, want %v", c, pred, want)
			}
		}
		l.advance()
	}
}

func TestQuickRoundTripBound(t *testing.T) {
	c := New()
	check := func(seed int64, ebExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := grid.MustNew("q", 7, 9)
		for i := range f.Data {
			f.Data[i] = rng.Float32()*20 - 10
		}
		eb := math.Pow(10, -float64(ebExp%6)) // 1 .. 1e-5
		blob, err := c.Compress(f, eb)
		if err != nil {
			return false
		}
		g, err := c.Decompress(blob)
		if err != nil {
			return false
		}
		maxErr, _ := compress.MaxAbsError(f, g)
		return maxErr <= eb*(1+1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHeaderPreservesNameAndDims(t *testing.T) {
	f := grid.MustNew("nyx/baryon", 4, 5, 6)
	for i := range f.Data {
		f.Data[i] = float32(i)
	}
	blob, err := New().Compress(f, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New().Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "nyx/baryon" {
		t.Errorf("name = %q", g.Name)
	}
}

func TestRelativeBoundWrapper(t *testing.T) {
	f := grid.MustNew("r", 16, 16)
	for i := range f.Data {
		f.Data[i] = float32(1000 + 50*math.Sin(float64(i)/9))
	}
	rel := compress.NewRelBound(New())
	if rel.Name() != "sz-rel" {
		t.Errorf("name %q", rel.Name())
	}
	blob, err := rel.Compress(f, 0.01) // 1% of the ~100 range → abs ≈ 1
	if err != nil {
		t.Fatal(err)
	}
	g, err := rel.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	maxErr, _ := compress.MaxAbsError(f, g)
	wantBound := 0.01 * f.ValueRange()
	if maxErr > wantBound*(1+1e-6) {
		t.Errorf("max error %v exceeds relative bound %v", maxErr, wantBound)
	}
	for _, bad := range []float64{0, -1, 2, math.NaN()} {
		if _, err := rel.Compress(f, bad); err == nil {
			t.Errorf("relative bound %v accepted", bad)
		}
	}
	// The framework can train on a relative-bound codec unchanged.
	fw, err := core2Train(rel, f)
	if err != nil {
		t.Fatal(err)
	}
	_ = fw
}

// core2Train exercises the compressor through the framework's sweep helper
// without importing core (avoiding a cycle in this package's tests): it just
// validates that Axis.Span over the relative domain produces usable knobs.
func core2Train(c compress.Compressor, f *grid.Field) (bool, error) {
	for _, knob := range c.Axis().Span(5) {
		if _, err := c.Compress(f, knob); err != nil {
			return false, err
		}
	}
	return true, nil
}

func TestPSNRTargetedBound(t *testing.T) {
	// The analytic PSNR→bound mapping must land within a few dB of the
	// target when driving the real quantizer.
	f := grid.MustNew("p", 32, 32, 32)
	for z := 0; z < 32; z++ {
		for y := 0; y < 32; y++ {
			for x := 0; x < 32; x++ {
				f.Set(float32(math.Sin(float64(z)/7)+math.Cos(float64(y)/9)+math.Sin(float64(x)/5)), z, y, x)
			}
		}
	}
	for _, target := range []float64{50, 70} {
		eb, err := metrics.BoundForPSNR(f, target)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := New().Compress(f, eb)
		if err != nil {
			t.Fatal(err)
		}
		g, err := New().Decompress(blob)
		if err != nil {
			t.Fatal(err)
		}
		psnr, err := metrics.PSNR(f, g)
		if err != nil {
			t.Fatal(err)
		}
		// SZ's effective error is below the bound (escape path, prediction
		// hits), so measured PSNR is at or above target; allow a few dB.
		if psnr < target-1 || psnr > target+12 {
			t.Errorf("target %v dB: measured %.1f dB", target, psnr)
		}
	}
}
