package sz

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/entropy"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

// V2 is an SZ2-style compressor (Liang et al., 2018 — the "SZ 2.x" the
// paper's evaluation used): the field is processed in blocks, and each
// block chooses between the Lorenzo predictor and a per-block linear
// regression v ≈ b0 + Σ_d b_d·x_d, whichever predicts better. Regression
// wins on locally planar data where Lorenzo's reconstruction-noise feedback
// hurts; Lorenzo wins on complex local structure. The choice bit and the
// quantized regression coefficients are part of the stream.
//
// The error-bound contract is identical to the classic codec:
// |decompressed - original| <= eb pointwise.
type V2 struct {
	// Workers bounds the intra-field fan-out (pool.Workers semantics). The
	// blockwise Lorenzo-vs-regression walk is sequential through the shared
	// reconstruction, so only the entropy stage's frequency count fans out;
	// output is byte-identical at every setting.
	Workers int
}

// NewV2 returns an SZ2-style compressor.
func NewV2() *V2 { return &V2{} }

// Name implements compress.Compressor.
func (*V2) Name() string { return "sz2" }

// Axis implements compress.Compressor.
func (*V2) Axis() compress.Axis {
	return compress.Axis{Kind: compress.AbsErrorBound, Min: 1e-12, Max: 1e6}
}

// WithWorkers implements compress.ParallelCompressor.
func (c *V2) WithWorkers(n int) compress.Compressor { return &V2{Workers: n} }

// regBlockSide matches SZ2's default prediction block.
const regBlockSide = 6

// Compress implements compress.Compressor.
func (c *V2) Compress(f *grid.Field, eb float64) ([]byte, error) {
	if !(eb > 0) || math.IsInf(eb, 0) {
		return nil, fmt.Errorf("sz2: error bound must be a positive finite number, got %v", eb)
	}
	defer obs.Span("compress/sz2")()
	obs.Inc("compressor_runs/sz2")
	n := f.Size()
	recon := getF32s(n)
	defer putF32s(recon)
	codes := getU16s(n)[:0]
	defer func() { putU16s(codes) }()
	// Escapes are staged through the float32 scratch pool: at most n points
	// can escape, so the capacity-n buffer below never regrows.
	raw := getF32s(n)[:0]
	defer putF32s(raw[:cap(raw)])
	var modeBits []byte
	var coeffCodes []byte
	twoEB := 2 * eb
	// Coefficients are quantized on a grid fine enough that the prediction
	// error they add stays well under eb across a block.
	coeffQ := eb / (4 * regBlockSide)

	strides := f.Strides()
	lor := &lorenzoAt{dims: f.Dims, strides: strides}
	// Reusable global-coordinate buffer: origin+local, computed in place so
	// the per-point predictor never allocates.
	gcoord := make([]int, f.NDims())

	blockIdx := 0
	visitBlockOrigins(f.Dims, regBlockSide, func(origin []int) {
		shape := clipShape(f.Dims, origin, regBlockSide)

		// Fit the linear model on original values.
		coeffs := fitLinear(f, origin, shape, strides)
		// Quantize coefficients to what the decoder will see.
		qc := make([]int64, len(coeffs))
		rc := make([]float64, len(coeffs))
		usable := true
		for i, b := range coeffs {
			q := math.Round(b / coeffQ)
			if math.IsNaN(q) || math.Abs(q) > 1e15 {
				usable = false
				break
			}
			qc[i] = int64(q)
			rc[i] = q * coeffQ
		}

		// Choose the mode by comparing prediction error on original values.
		useReg := false
		if usable {
			regErr, lorErr := 0.0, 0.0
			forEachInBlock(origin, shape, strides, func(idx int, local []int) {
				v := float64(f.Data[idx])
				regErr += math.Abs(v - evalLinear(rc, local))
				for d := range gcoord {
					gcoord[d] = origin[d] + local[d]
				}
				lorErr += math.Abs(v - lor.predictOriginal(f.Data, idx, gcoord))
			})
			useReg = regErr < lorErr
		}
		if useReg {
			modeBits = setBit(modeBits, blockIdx)
			for _, q := range qc {
				coeffCodes = binary.AppendVarint(coeffCodes, q)
			}
		}
		blockIdx++

		// Encode the block's points in global row-major-within-block order.
		forEachInBlock(origin, shape, strides, func(idx int, local []int) {
			v := float64(f.Data[idx])
			var pred float64
			if useReg {
				pred = evalLinear(rc, local)
			} else {
				for d := range gcoord {
					gcoord[d] = origin[d] + local[d]
				}
				pred = lor.predictRecon(recon, idx, gcoord)
			}
			q := math.Round((v - pred) / twoEB)
			if !math.IsNaN(q) && !math.IsInf(q, 0) {
				if code := int64(q) + radius; code > 0 && code < intervals {
					rec := float32(pred + twoEB*q)
					if math.Abs(float64(rec)-v) <= eb {
						codes = append(codes, uint16(code))
						recon[idx] = rec
						return
					}
				}
			}
			codes = append(codes, 0)
			raw = append(raw, f.Data[idx])
			recon[idx] = f.Data[idx]
		})
	})

	codeBytes := getScratchBytes(2 * len(codes))
	for i, c := range codes {
		binary.LittleEndian.PutUint16(codeBytes[2*i:], c)
	}
	// Both streams use the chunked container (legacy below its cutoff): sz2
	// reconstruction is a serial block walk, but the entropy stage no longer
	// has to be — Decompress fans the chunks of each stream across workers.
	workers := pool.Workers(c.Workers)
	packedCodes, err := entropy.CompressBytesChunked(codeBytes, workers)
	putScratchBytes(codeBytes)
	if err != nil {
		return nil, fmt.Errorf("sz2: encode codes: %w", err)
	}
	packedCoeffs, err := entropy.CompressBytesChunked(coeffCodes, workers)
	if err != nil {
		return nil, fmt.Errorf("sz2: encode coefficients: %w", err)
	}

	out := compress.AppendHeader(nil, compress.Header{Magic: compress.MagicSZ2, Name: f.Name, Dims: f.Dims, Knob: eb})
	out = binary.AppendUvarint(out, uint64(len(modeBits)))
	out = append(out, modeBits...)
	out = binary.AppendUvarint(out, uint64(len(packedCoeffs)))
	out = append(out, packedCoeffs...)
	out = binary.AppendUvarint(out, uint64(len(packedCodes)))
	out = append(out, packedCodes...)
	out = binary.AppendUvarint(out, uint64(len(raw)))
	for _, v := range raw {
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(v))
	}
	return out, nil
}

// Decompress implements compress.Compressor. The blockwise reconstruction
// walk is inherently serial, but chunked entropy streams decode across the
// worker budget first.
func (c *V2) Decompress(blob []byte) (*grid.Field, error) {
	defer obs.Span("decompress/sz2")()
	workers := pool.Workers(c.Workers)
	h, payload, err := compress.ParseHeader(blob, compress.MagicSZ2)
	if err != nil {
		return nil, fmt.Errorf("sz2: %w", err)
	}
	if _, err := compress.CheckElems(h.Dims, len(payload)); err != nil {
		return nil, fmt.Errorf("sz2: %w", err)
	}
	section := func() ([]byte, error) {
		l, k := binary.Uvarint(payload)
		if k <= 0 || uint64(len(payload)-k) < l {
			return nil, fmt.Errorf("sz2: %w: truncated section", compress.ErrCorrupt)
		}
		s := payload[k : k+int(l)]
		payload = payload[k+int(l):]
		return s, nil
	}
	modeBits, err := section()
	if err != nil {
		return nil, err
	}
	packedCoeffs, err := section()
	if err != nil {
		return nil, err
	}
	coeffCodes, err := entropy.DecompressBytesParallel(packedCoeffs, workers)
	if err != nil {
		return nil, fmt.Errorf("sz2: decode coefficients: %w", err)
	}
	packedCodes, err := section()
	if err != nil {
		return nil, err
	}
	codeBytes, err := entropy.DecompressBytesParallel(packedCodes, workers)
	if err != nil {
		return nil, fmt.Errorf("sz2: decode codes: %w", err)
	}
	nraw, k := binary.Uvarint(payload)
	if k <= 0 || uint64(len(payload)-k) < 4*nraw {
		return nil, fmt.Errorf("sz2: %w: raw section", compress.ErrCorrupt)
	}
	payload = payload[k:]

	f, err := grid.New(h.Name, h.Dims...)
	if err != nil {
		return nil, fmt.Errorf("sz2: %w", err)
	}
	if len(codeBytes) != 2*f.Size() {
		return nil, fmt.Errorf("sz2: %w: %d code bytes for %d points", compress.ErrCorrupt, len(codeBytes), f.Size())
	}
	eb := h.Knob
	twoEB := 2 * eb
	coeffQ := eb / (4 * regBlockSide)
	nd := f.NDims()
	strides := f.Strides()
	lor := &lorenzoAt{dims: f.Dims, strides: strides}
	gcoord := make([]int, nd)

	pos, rawPos, blockIdx := 0, 0, 0
	coeffPos := 0
	var decodeErr error
	visitBlockOrigins(h.Dims, regBlockSide, func(origin []int) {
		if decodeErr != nil {
			return
		}
		shape := clipShape(h.Dims, origin, regBlockSide)
		useReg := getBit(modeBits, blockIdx)
		blockIdx++
		rc := make([]float64, nd+1)
		if useReg {
			for i := range rc {
				q, k := binary.Varint(coeffCodes[coeffPos:])
				if k <= 0 {
					decodeErr = fmt.Errorf("sz2: %w: coefficient stream exhausted", compress.ErrCorrupt)
					return
				}
				coeffPos += k
				rc[i] = float64(q) * coeffQ
			}
		}
		forEachInBlock(origin, shape, strides, func(idx int, local []int) {
			if decodeErr != nil {
				return
			}
			code := binary.LittleEndian.Uint16(codeBytes[2*pos:])
			pos++
			if code == 0 {
				if uint64(rawPos) >= nraw {
					decodeErr = fmt.Errorf("sz2: %w: raw pool exhausted", compress.ErrCorrupt)
					return
				}
				f.Data[idx] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*rawPos:]))
				rawPos++
				return
			}
			var pred float64
			if useReg {
				pred = evalLinear(rc, local)
			} else {
				for d := range gcoord {
					gcoord[d] = origin[d] + local[d]
				}
				pred = lor.predictRecon(f.Data, idx, gcoord)
			}
			f.Data[idx] = float32(pred + twoEB*float64(int(code)-radius))
		})
	})
	if decodeErr != nil {
		return nil, decodeErr
	}
	return f, nil
}

// fitLinear computes least-squares coefficients [b0, b_1..b_nd] for
// v ≈ b0 + Σ b_d·local_d over the block. Per-dimension slopes come from the
// separable covariance formula; the block coordinates are orthogonal after
// centering, so no matrix solve is needed.
func fitLinear(f *grid.Field, origin, shape, strides []int) []float64 {
	nd := len(origin)
	count := 0
	meanV := 0.0
	meanX := make([]float64, nd)
	forEachInBlock(origin, shape, strides, func(idx int, local []int) {
		v := float64(f.Data[idx])
		meanV += v
		for d := 0; d < nd; d++ {
			meanX[d] += float64(local[d])
		}
		count++
	})
	fc := float64(count)
	meanV /= fc
	for d := range meanX {
		meanX[d] /= fc
	}
	cov := make([]float64, nd)
	varX := make([]float64, nd)
	forEachInBlock(origin, shape, strides, func(idx int, local []int) {
		dv := float64(f.Data[idx]) - meanV
		for d := 0; d < nd; d++ {
			dx := float64(local[d]) - meanX[d]
			cov[d] += dv * dx
			varX[d] += dx * dx
		}
	})
	coeffs := make([]float64, nd+1)
	b0 := meanV
	for d := 0; d < nd; d++ {
		if varX[d] > 0 {
			coeffs[d+1] = cov[d] / varX[d]
		}
		b0 -= coeffs[d+1] * meanX[d]
	}
	coeffs[0] = b0
	return coeffs
}

// evalLinear evaluates the (reconstructed) linear model at local block
// coordinates.
func evalLinear(rc []float64, local []int) float64 {
	v := rc[0]
	for d := 0; d < len(local); d++ {
		v += rc[d+1] * float64(local[d])
	}
	return v
}

// lorenzoAt evaluates the Lorenzo predictor at an arbitrary position (the
// block processing order is not row-major over the field, so the streaming
// odometer of the classic codec does not apply).
type lorenzoAt struct {
	dims    []int
	strides []int
}

func (l *lorenzoAt) predictRecon(data []float32, idx int, coord []int) float64 {
	return l.predict(data, idx, coord)
}

func (l *lorenzoAt) predictOriginal(data []float32, idx int, coord []int) float64 {
	return l.predict(data, idx, coord)
}

func (l *lorenzoAt) predict(data []float32, idx int, coord []int) float64 {
	nd := len(l.dims)
	var pred float64
	for m := 1; m < 1<<nd; m++ {
		ok := true
		off := 0
		bits := 0
		for d := 0; d < nd; d++ {
			if m&(1<<d) != 0 {
				if coord[d] == 0 {
					ok = false
					break
				}
				off += l.strides[d]
				bits++
			}
		}
		if !ok {
			continue
		}
		sign := 1.0
		if bits%2 == 0 {
			sign = -1
		}
		pred += sign * float64(data[idx-off])
	}
	return pred
}

// Helpers shared by the encoder and decoder.

func clipShape(dims, origin []int, side int) []int {
	shape := make([]int, len(dims))
	for d := range shape {
		shape[d] = side
		if origin[d]+shape[d] > dims[d] {
			shape[d] = dims[d] - origin[d]
		}
	}
	return shape
}

// forEachInBlock visits the block's points in row-major order, passing the
// global linear index and the local (block-relative) coordinates.
func forEachInBlock(origin, shape, strides []int, fn func(idx int, local []int)) {
	nd := len(origin)
	local := make([]int, nd)
	for {
		idx := 0
		for d := 0; d < nd; d++ {
			idx += (origin[d] + local[d]) * strides[d]
		}
		fn(idx, local)
		d := nd - 1
		for d >= 0 {
			local[d]++
			if local[d] < shape[d] {
				break
			}
			local[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}

// visitBlockOrigins iterates block origins in row-major order.
func visitBlockOrigins(dims []int, side int, fn func(origin []int)) {
	nd := len(dims)
	origin := make([]int, nd)
	for {
		fn(origin)
		d := nd - 1
		for d >= 0 {
			origin[d] += side
			if origin[d] < dims[d] {
				break
			}
			origin[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}

func setBit(bits []byte, i int) []byte {
	for len(bits) <= i/8 {
		bits = append(bits, 0)
	}
	bits[i/8] |= 1 << uint(i%8)
	return bits
}

func getBit(bits []byte, i int) bool {
	if i/8 >= len(bits) {
		return false
	}
	return bits[i/8]&(1<<uint(i%8)) != 0
}
