package sz

import (
	"math"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/compress/compresstest"
	"github.com/fxrz-go/fxrz/internal/grid"
)

func TestV2RoundTripRespectsBound(t *testing.T) {
	compresstest.RoundTrip(t, NewV2(), []float64{1e-4, 1e-2, 0.5, 10},
		func(f *grid.Field, knob float64) float64 { return knob })
}

func TestV2RatioMonotone(t *testing.T) {
	compresstest.MonotoneRatio(t, NewV2(), []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}, true)
}

func TestV2RejectsCorrupt(t *testing.T) {
	compresstest.RejectsCorrupt(t, NewV2(), 1e-3)
}

func TestV2InvalidErrorBound(t *testing.T) {
	f := grid.MustNew("t", 8)
	for _, eb := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewV2().Compress(f, eb); err == nil {
			t.Errorf("eb=%v accepted", eb)
		}
	}
}

func TestV2RegressionWinsOnNoisyPlanarData(t *testing.T) {
	// Planar trend plus sub-bound noise: the Lorenzo predictor amplifies the
	// noise (its 3D stencil sums 7 noisy neighbors) while block regression
	// smooths it, so SZ2's per-block selection must come out ahead. On a
	// *clean* plane both are exact and classic SZ wins on overhead — that is
	// also SZ2's documented behaviour.
	f := grid.MustNew("noisy-planar", 36, 36, 36)
	i := 0
	for z := 0; z < 36; z++ {
		for y := 0; y < 36; y++ {
			for x := 0; x < 36; x++ {
				noise := float64((i*2654435761)%1000)/1000 - 0.5 // deterministic
				f.Set(float32(0.5*float64(z)+0.25*float64(y)-0.1*float64(x)+0.02*noise), z, y, x)
				i++
			}
		}
	}
	eb := 0.01
	r1, err := compress.CompressRatio(New(), f, eb)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := compress.CompressRatio(NewV2(), f, eb)
	if err != nil {
		t.Fatal(err)
	}
	if r2 <= r1 {
		t.Errorf("SZ2 ratio %.1f not above classic %.1f on noisy planar data", r2, r1)
	}
}

func TestV2FitLinearExactOnPlane(t *testing.T) {
	f := grid.MustNew("p", 6, 6)
	for y := 0; y < 6; y++ {
		for x := 0; x < 6; x++ {
			f.Set(float32(3+2*y-5*x), y, x)
		}
	}
	coeffs := fitLinear(f, []int{0, 0}, []int{6, 6}, f.Strides())
	want := []float64{3, 2, -5}
	for i := range want {
		if math.Abs(coeffs[i]-want[i]) > 1e-9 {
			t.Fatalf("coeffs = %v, want %v", coeffs, want)
		}
	}
}

func TestV2ModeBitsRoundTrip(t *testing.T) {
	var bits []byte
	for _, i := range []int{0, 3, 8, 17, 63} {
		bits = setBit(bits, i)
	}
	for i := 0; i < 70; i++ {
		want := i == 0 || i == 3 || i == 8 || i == 17 || i == 63
		if getBit(bits, i) != want {
			t.Fatalf("bit %d = %v, want %v", i, getBit(bits, i), want)
		}
	}
}
