package sz

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// The specialized 1D/2D/3D kernels must be bit-identical to the generic
// odometer path: same compressed bytes, same reconstructed bit patterns.
// These tests sweep shapes that stress every row class (first-row, first-
// column, interior, unit dims), data that exercises both the quantized and
// the escape path (NaN, Inf, huge values), and bounds from very tight to
// absurdly loose.

var identityShapes = [][]int{
	{1}, {7}, {64},
	{1, 9}, {9, 1}, {8, 8}, {5, 13},
	{1, 1, 1}, {4, 1, 7}, {1, 8, 8}, {16, 16, 16}, {3, 5, 7},
	{2, 3, 4, 5}, {4, 4, 4, 4}, // 4-d exercises the shared generic path
}

// identityFields returns fields with distinct value characters for a shape.
func identityFields(t *testing.T, shape []int) []*grid.Field {
	t.Helper()
	mk := func(name string) *grid.Field { return grid.MustNew(name, shape...) }

	smooth := mk("smooth")
	for i := range smooth.Data {
		smooth.Data[i] = float32(math.Sin(float64(i) / 11))
	}

	rnd := mk("random")
	rng := rand.New(rand.NewSource(int64(len(rnd.Data))))
	for i := range rnd.Data {
		rnd.Data[i] = rng.Float32()*2e4 - 1e4
	}

	// Escape-heavy: non-finite and huge samples that force raw literals, plus
	// negative zero to pin the float accumulation order.
	esc := mk("escape")
	for i := range esc.Data {
		switch i % 7 {
		case 0:
			esc.Data[i] = float32(math.NaN())
		case 1:
			esc.Data[i] = float32(math.Inf(1))
		case 2:
			esc.Data[i] = float32(math.Inf(-1))
		case 3:
			esc.Data[i] = 3e38
		case 4:
			esc.Data[i] = float32(math.Copysign(0, -1))
		default:
			esc.Data[i] = float32(i)
		}
	}

	konst := mk("const")
	konst.Fill(4.25)

	return []*grid.Field{smooth, rnd, esc, konst}
}

func TestCompressFastMatchesGenericBitwise(t *testing.T) {
	for _, shape := range identityShapes {
		for _, f := range identityFields(t, shape) {
			for _, eb := range []float64{1e-3, 1e-7, 1e3} {
				blobG, errG := compressSZ(f, eb, true, 1)
				blobF, errF := compressSZ(f, eb, false, 1)
				if (errG == nil) != (errF == nil) {
					t.Fatalf("%v/%s eb=%g: generic err=%v, fast err=%v", shape, f.Name, eb, errG, errF)
				}
				if errG != nil {
					continue
				}
				if !bytes.Equal(blobG, blobF) {
					t.Fatalf("%v/%s eb=%g: compressed blobs differ (%d vs %d bytes)",
						shape, f.Name, eb, len(blobG), len(blobF))
				}

				gG, errG := decompressSZ(blobG, true, 1)
				gF, errF := decompressSZ(blobG, false, 1)
				if errG != nil || errF != nil {
					t.Fatalf("%v/%s eb=%g: decompress generic err=%v fast err=%v", shape, f.Name, eb, errG, errF)
				}
				for i := range gG.Data {
					if math.Float32bits(gG.Data[i]) != math.Float32bits(gF.Data[i]) {
						t.Fatalf("%v/%s eb=%g: sample %d differs: %x vs %x",
							shape, f.Name, eb, i, math.Float32bits(gG.Data[i]), math.Float32bits(gF.Data[i]))
					}
				}
			}
		}
	}
}

// TestReconstructFastMatchesGenericOnTruncatedRaw confirms the two decode
// paths agree on the error for a blob whose raw-literal pool is exhausted
// mid-stream.
func TestReconstructFastMatchesGenericOnTruncatedRaw(t *testing.T) {
	f := grid.MustNew("esc", 4, 5)
	for i := range f.Data {
		f.Data[i] = float32(math.Inf(1)) // every sample escapes
	}
	blob, err := compressSZ(f, 1e-3, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Decompressing a prefix tends to truncate the raw pool; both paths must
	// fail (or succeed) identically.
	for cut := len(blob) - 1; cut > len(blob)-16 && cut > 0; cut-- {
		gG, errG := decompressSZ(blob[:cut], true, 1)
		gF, errF := decompressSZ(blob[:cut], false, 1)
		if (errG == nil) != (errF == nil) {
			t.Fatalf("cut=%d: generic err=%v, fast err=%v", cut, errG, errF)
		}
		if errG == nil {
			for i := range gG.Data {
				if math.Float32bits(gG.Data[i]) != math.Float32bits(gF.Data[i]) {
					t.Fatalf("cut=%d sample %d differs", cut, i)
				}
			}
		}
	}
}
