package core

import (
	"math"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

// validRangeField returns a 16³ field; constant fields exercise the CA
// clamp (zero non-constant blocks), varied ones the ordinary path.
func validRangeField(constant bool) *grid.Field {
	f := grid.MustNew("vr", 16, 16, 16)
	for i := range f.Data {
		if constant {
			f.Data[i] = 2.5
		} else {
			f.Data[i] = float32(i%97) * 3.5
		}
	}
	return f
}

// With CA disabled the range is the raw training hull, untouched by the
// field's content.
func TestValidRatioRangeCADisabled(t *testing.T) {
	fw := &Framework{
		cfg:     Config{UseCA: false},
		ratioLo: 5,
		ratioHi: 80,
	}
	lo, hi := fw.ValidRatioRange(validRangeField(true))
	if lo != 5 || hi != 80 {
		t.Fatalf("ValidRatioRange = (%g, %g), want (5, 80)", lo, hi)
	}
}

// An all-constant field drives the non-constant block ratio to its clamp
// (1/total blocks, never zero): the valid range scales up by the block count
// and must stay finite and ordered.
func TestValidRatioRangeAllConstantField(t *testing.T) {
	fw := &Framework{
		cfg:     Config{UseCA: true, Lambda: DefaultLambda, BlockSide: DefaultBlockSide},
		ratioLo: 5,
		ratioHi: 80,
	}
	f := validRangeField(true)
	r := NonConstantRatio(f, DefaultBlockSide, DefaultLambda)
	// 16³ field, 4³ blocks → 64 blocks, all constant → r clamps to 1/64.
	if want := 1.0 / 64; r != want {
		t.Fatalf("NonConstantRatio = %g, want %g", r, want)
	}
	lo, hi := fw.ValidRatioRange(f)
	if math.IsInf(hi, 0) || math.IsNaN(lo) {
		t.Fatalf("range not finite: (%g, %g)", lo, hi)
	}
	if lo > hi {
		t.Fatalf("inverted range: (%g, %g)", lo, hi)
	}
	if wantLo, wantHi := 5*64.0, 80*64.0; lo != wantLo || hi != wantHi {
		t.Fatalf("ValidRatioRange = (%g, %g), want (%g, %g)", lo, hi, wantLo, wantHi)
	}
}

// A hull recorded inverted (possible in hand-built or legacy model files)
// must come back normalised: callers rely on lo <= hi.
func TestValidRatioRangeInvertedHull(t *testing.T) {
	fw := &Framework{
		cfg:     Config{UseCA: false},
		ratioLo: 80,
		ratioHi: 5,
	}
	lo, hi := fw.ValidRatioRange(validRangeField(false))
	if lo != 5 || hi != 80 {
		t.Fatalf("ValidRatioRange = (%g, %g), want normalised (5, 80)", lo, hi)
	}
	if lo > hi {
		t.Fatalf("inverted range survived normalisation: (%g, %g)", lo, hi)
	}
}
