package core

import (
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress/compresstest"
)

func BenchmarkExtractFeaturesStride4(b *testing.B) {
	f := compresstest.BenchField()
	b.SetBytes(int64(f.Bytes()))
	for i := 0; i < b.N; i++ {
		ExtractFeatures(f, 4)
	}
}

func BenchmarkExtractFeaturesFull(b *testing.B) {
	f := compresstest.BenchField()
	b.SetBytes(int64(f.Bytes()))
	for i := 0; i < b.N; i++ {
		ExtractFeatures(f, 1)
	}
}

func BenchmarkNonConstantRatio(b *testing.B) {
	f := compresstest.BenchField()
	b.SetBytes(int64(f.Bytes()))
	for i := 0; i < b.N; i++ {
		NonConstantRatio(f, 4, 0.15)
	}
}
