package core

import (
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress/compresstest"
)

func BenchmarkExtractFeaturesStride4(b *testing.B) {
	f := compresstest.BenchField()
	b.SetBytes(int64(f.Bytes()))
	for i := 0; i < b.N; i++ {
		ExtractFeatures(f, 4)
	}
}

func BenchmarkExtractFeaturesFull(b *testing.B) {
	f := compresstest.BenchField()
	b.SetBytes(int64(f.Bytes()))
	for i := 0; i < b.N; i++ {
		ExtractFeatures(f, 1)
	}
}

func BenchmarkNonConstantRatio(b *testing.B) {
	f := compresstest.BenchField()
	b.SetBytes(int64(f.Bytes()))
	for i := 0; i < b.N; i++ {
		NonConstantRatio(f, 4, 0.15)
	}
}

// BenchmarkKernelCAScan compares the generic odometer block scan against the
// full-block min/max kernels on the standard bench field (block-aligned, so
// every block takes the fast path). Recorded in BENCH_kernels.json as
// ca_scan.
func BenchmarkKernelCAScan(b *testing.B) {
	f := compresstest.BenchField()
	const side = DefaultBlockSide
	nd := f.NDims()
	nblocks := make([]int, nd)
	total := 1
	for i, d := range f.Dims {
		nblocks[i] = (d + side - 1) / side
		total *= nblocks[i]
	}
	strides := f.Strides()
	threshold := DefaultLambda * 2 // any fixed positive threshold works
	for _, v := range []struct {
		name    string
		generic bool
	}{{"odometer", true}, {"fast", false}} {
		b.Run(v.name, func(b *testing.B) {
			b.SetBytes(int64(f.Bytes()))
			for i := 0; i < b.N; i++ {
				countNonConstantBlocks(f, side, nblocks, strides, 0, total, threshold, v.generic)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(f.Size()), "ns/elem")
		})
	}
}
