package core

import (
	"fmt"
	"math"
	"time"

	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/pool"
)

// Estimate is the inference engine's output: the recommended knob plus the
// analysis breakdown the performance evaluation (Table VIII) reports.
type Estimate struct {
	// Knob is the error bound (or precision) predicted to reach the target.
	Knob float64
	// AdjustedRatio is the ACR actually fed to the model (== TCR when CA is
	// disabled).
	AdjustedRatio float64
	// NonConstantR is the CA block ratio R of the analysed field.
	NonConstantR float64
	// Extrapolating is set when the adjusted target falls outside the ratio
	// hull seen in training; the prediction is clamped-quality only.
	Extrapolating bool
	// FeatureTime, CATime and PredictTime decompose the analysis cost.
	FeatureTime time.Duration
	CATime      time.Duration
	PredictTime time.Duration
}

// AnalysisTime is the total inference cost (the paper's "analysis time").
func (e Estimate) AnalysisTime() time.Duration {
	return e.FeatureTime + e.CATime + e.PredictTime
}

// ValidRatioRange reports the target-ratio interval the framework can serve
// for the given field without extrapolating: the training ratio hull mapped
// back through the field's Compressibility Adjustment factor. It mirrors the
// paper's per-dataset "valid range of compression ratios" (Fig 11).
func (fw *Framework) ValidRatioRange(f *grid.Field) (lo, hi float64) {
	r := 1.0
	if fw.cfg.UseCA {
		r = NonConstantRatioParallel(f, fw.cfg.BlockSide, fw.cfg.Lambda, pool.Workers(fw.cfg.Parallelism))
	}
	lo, hi = fw.ratioLo/r, fw.ratioHi/r
	// A hull loaded from an older model file (or hand-built for tests) may be
	// inverted; callers expect lo <= hi regardless.
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

// EstimateConfig runs FXRZ inference: extract features from a stride sample
// of the field, apply the Compressibility Adjustment to the target ratio,
// and query the model for the knob. No compressor is executed.
func (fw *Framework) EstimateConfig(f *grid.Field, targetRatio float64) (Estimate, error) {
	if fw.model == nil {
		return Estimate{}, fmt.Errorf("core: framework not trained")
	}
	if !(targetRatio > 0) || math.IsInf(targetRatio, 0) {
		return Estimate{}, fmt.Errorf("core: target ratio must be a positive finite number, got %v", targetRatio)
	}
	defer obs.Span("infer/estimate")()
	var est Estimate
	workers := pool.Workers(fw.cfg.Parallelism)

	t0 := time.Now()
	feats := ExtractFeaturesParallel(f, fw.cfg.Stride, workers).Vector()
	est.FeatureTime = time.Since(t0)

	est.NonConstantR = 1
	if fw.cfg.UseCA {
		t1 := time.Now()
		est.NonConstantR = NonConstantRatioParallel(f, fw.cfg.BlockSide, fw.cfg.Lambda, workers)
		est.CATime = time.Since(t1)
	}
	est.AdjustedRatio = AdjustRatio(targetRatio, est.NonConstantR)
	if est.AdjustedRatio < fw.ratioLo || est.AdjustedRatio > fw.ratioHi {
		est.Extrapolating = true
	}

	t2 := time.Now()
	x := append(append([]float64(nil), feats...), est.AdjustedRatio)
	est.Knob = fw.axis.FromModel(fw.model.Predict(x))
	est.PredictTime = time.Since(t2)
	return est, nil
}

// EstimateFromFeatures runs inference from pre-extracted features alone — no
// field access at all, only a model query. This is the serving fast path: a
// client that already knows its data features (or caches them per variable)
// gets a knob back for the cost of one forest walk. Without the field the
// Compressibility Adjustment block scan cannot run, so the caller supplies
// the CA block ratio R explicitly; passing r <= 0 (or 1) skips adjustment,
// exactly as a CA-disabled framework would behave.
func (fw *Framework) EstimateFromFeatures(ft Features, targetRatio, r float64) (Estimate, error) {
	if fw.model == nil {
		return Estimate{}, fmt.Errorf("core: framework not trained")
	}
	if !(targetRatio > 0) || math.IsInf(targetRatio, 0) {
		return Estimate{}, fmt.Errorf("core: target ratio must be a positive finite number, got %v", targetRatio)
	}
	if !(r > 0) {
		r = 1
	}
	defer obs.Span("infer/estimate_features")()
	var est Estimate
	est.NonConstantR = r
	est.AdjustedRatio = AdjustRatio(targetRatio, r)
	if est.AdjustedRatio < fw.ratioLo || est.AdjustedRatio > fw.ratioHi {
		est.Extrapolating = true
	}
	t0 := time.Now()
	x := append(ft.Vector(), est.AdjustedRatio)
	est.Knob = fw.axis.FromModel(fw.model.Predict(x))
	est.PredictTime = time.Since(t0)
	return est, nil
}
