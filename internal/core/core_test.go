package core

import (
	"math"
	"sync"
	"testing"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
)

func rampField(name string, n int) *grid.Field {
	f := grid.MustNew(name, n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			f.Set(float32(2*y+3*x), y, x)
		}
	}
	return f
}

func waveField(name string, n int, freq float64) *grid.Field {
	f := grid.MustNew(name, n, n, n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				f.Set(float32(math.Sin(freq*float64(z+2*y+3*x)/float64(n))), z, y, x)
			}
		}
	}
	return f
}

func TestFeaturesOnKnownFields(t *testing.T) {
	// Constant field: everything zero except the mean.
	c := grid.MustNew("const", 8, 8)
	c.Fill(5)
	ft := ExtractFeatures(c, 1)
	if ft.ValueRange != 0 || ft.MND != 0 || ft.MLD != 0 || ft.MSD != 0 {
		t.Errorf("constant field features not zero: %+v", ft)
	}
	if ft.MeanValue != 5 {
		t.Errorf("mean = %v", ft.MeanValue)
	}

	// Bilinear ramp: Lorenzo is exact (MLD ~ 0 up to float32 rounding), but
	// the gradient is not zero.
	r := rampField("ramp", 12)
	fr := ExtractFeatures(r, 1)
	if fr.MLD > 1e-4 {
		t.Errorf("ramp MLD = %v, want ~0 (Lorenzo exact on bilinear data)", fr.MLD)
	}
	if fr.MeanGradient == 0 {
		t.Error("ramp MeanGradient should be positive")
	}
	if fr.ValueRange != float64(2*11+3*11) {
		t.Errorf("ramp ValueRange = %v", fr.ValueRange)
	}
}

func TestFeaturesOrderSmoothVsRough(t *testing.T) {
	smoothF := waveField("smooth", 16, 2)
	roughF := waveField("rough", 16, 40)
	fs := ExtractFeatures(smoothF, 1)
	fr := ExtractFeatures(roughF, 1)
	if fs.MND >= fr.MND {
		t.Errorf("MND: smooth %v should be < rough %v", fs.MND, fr.MND)
	}
	if fs.MLD >= fr.MLD {
		t.Errorf("MLD: smooth %v should be < rough %v", fs.MLD, fr.MLD)
	}
	if fs.MSD >= fr.MSD {
		t.Errorf("MSD: smooth %v should be < rough %v", fs.MSD, fr.MSD)
	}
}

func TestStrideSamplingApproximatesFullFeatures(t *testing.T) {
	f := waveField("w", 32, 3)
	full := ExtractFeatures(f, 1)
	sampled := ExtractFeatures(f, 4)
	// Range and mean must be close; smoothness features shift with the
	// coarser grid but must stay the same order of magnitude.
	if math.Abs(full.MeanValue-sampled.MeanValue) > 0.1*math.Max(1, math.Abs(full.MeanValue)) {
		t.Errorf("mean: full %v vs sampled %v", full.MeanValue, sampled.MeanValue)
	}
	if sampled.ValueRange < 0.8*full.ValueRange || sampled.ValueRange > full.ValueRange*1.001 {
		t.Errorf("range: full %v vs sampled %v", full.ValueRange, sampled.ValueRange)
	}
	if sampled.MND == 0 || sampled.MND > 100*full.MND {
		t.Errorf("MND order: full %v vs sampled %v", full.MND, sampled.MND)
	}
}

func TestFeatureVectorShapes(t *testing.T) {
	ft := ExtractFeatures(rampField("r", 8), 1)
	if len(ft.Vector()) != 5 {
		t.Errorf("Vector len %d", len(ft.Vector()))
	}
	if len(ft.FullVector()) != 8 {
		t.Errorf("FullVector len %d", len(ft.FullVector()))
	}
	if len(FeatureNames) != 8 {
		t.Errorf("FeatureNames len %d", len(FeatureNames))
	}
}

// fakeCompressor has an analytic knob→ratio law for fast curve tests:
// ratio = scale * eb^0.5.
type fakeCompressor struct{ scale float64 }

func (f *fakeCompressor) Name() string { return "fake" }
func (f *fakeCompressor) Axis() compress.Axis {
	return compress.Axis{Kind: compress.AbsErrorBound, Min: 1e-9, Max: 10}
}
func (f *fakeCompressor) Compress(fl *grid.Field, knob float64) ([]byte, error) {
	ratio := f.scale * math.Sqrt(knob)
	n := int(float64(fl.Bytes()) / ratio)
	if n < 1 {
		n = 1
	}
	return make([]byte, n), nil
}
func (f *fakeCompressor) Decompress([]byte) (*grid.Field, error) {
	return nil, nil
}

func TestCurveInvertsAnalyticLaw(t *testing.T) {
	fc := &fakeCompressor{scale: 100}
	f := grid.MustNew("t", 32, 32)
	knobs := compress.Axis{Kind: compress.AbsErrorBound, Min: 1e-6, Max: 1}.Span(25)
	curve, err := BuildCurve(fc, f, knobs)
	if err != nil {
		t.Fatal(err)
	}
	// ratio(eb) = 100·√eb, so eb(ratio) = (ratio/100)².
	for _, ratio := range []float64{1, 5, 20, 50, 90} {
		knob, ok := curve.KnobForRatio(ratio)
		if !ok {
			t.Fatalf("ratio %v outside curve range", ratio)
		}
		want := math.Pow(ratio/100, 2)
		if math.Abs(knob-want)/want > 0.25 {
			t.Errorf("KnobForRatio(%v) = %v, want ~%v", ratio, knob, want)
		}
	}
}

func TestCurveMonotoneAfterCleanup(t *testing.T) {
	axis := compress.Axis{Kind: compress.AbsErrorBound, Min: 1e-9, Max: 10}
	pts := []Stationary{
		{Knob: 1e-4, Ratio: 5},
		{Knob: 1e-3, Ratio: 9},
		{Knob: 1e-2, Ratio: 8.5}, // dip that must be cleaned
		{Knob: 1e-1, Ratio: 20},
	}
	c, err := NewCurve(axis, pts)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for _, p := range c.Points() {
		if p.Ratio <= prev {
			t.Fatalf("points not strictly increasing: %v", c.Points())
		}
		prev = p.Ratio
	}
}

func TestCurveClampsOutOfRange(t *testing.T) {
	axis := compress.Axis{Kind: compress.AbsErrorBound, Min: 1e-9, Max: 10}
	c, err := NewCurve(axis, []Stationary{{1e-3, 10}, {1e-1, 100}})
	if err != nil {
		t.Fatal(err)
	}
	if k, ok := c.KnobForRatio(1000); ok || k != 1e-1 {
		t.Errorf("above range: (%v, %v)", k, ok)
	}
	if k, ok := c.KnobForRatio(1); ok || k != 1e-3 {
		t.Errorf("below range: (%v, %v)", k, ok)
	}
}

func TestCurveErrors(t *testing.T) {
	axis := compress.Axis{Kind: compress.AbsErrorBound, Min: 1e-9, Max: 10}
	if _, err := NewCurve(axis, []Stationary{{1e-3, 10}}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := NewCurve(axis, []Stationary{{1e-3, 10}, {1e-2, 10}}); err == nil {
		t.Error("flat curve accepted (collapses to one point)")
	}
}

func TestNonConstantRatio(t *testing.T) {
	// Left half constant 10, right half noisy around 10.
	f := grid.MustNew("half", 16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			v := float32(10)
			if x >= 8 {
				v += float32(3 * math.Sin(float64(y*16+x)))
			}
			f.Set(v, y, x)
		}
	}
	r := NonConstantRatio(f, 4, 0.15)
	if r < 0.4 || r > 0.6 {
		t.Errorf("R = %v, want ~0.5 (half the blocks constant)", r)
	}

	con := grid.MustNew("const", 16, 16)
	con.Fill(3)
	rc := NonConstantRatio(con, 4, 0.15)
	if rc > 0.1 {
		t.Errorf("constant field R = %v, want near 0", rc)
	}
	if rc <= 0 {
		t.Errorf("R must stay positive, got %v", rc)
	}

	noisy := grid.MustNew("noise", 16, 16)
	for i := range noisy.Data {
		noisy.Data[i] = float32(math.Sin(float64(i) * 13))
	}
	if rn := NonConstantRatio(noisy, 4, 0.15); rn != 1 {
		t.Errorf("fully noisy field R = %v, want 1", rn)
	}
}

func TestLambdaMonotone(t *testing.T) {
	// Larger λ ⇒ higher threshold ⇒ more blocks classified constant ⇒ lower R.
	f := grid.MustNew("g", 16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			f.Set(float32(10+0.5*math.Sin(float64(x)/2)+0.2*float64(y%3)), y, x)
		}
	}
	r05 := NonConstantRatio(f, 4, 0.05)
	r15 := NonConstantRatio(f, 4, 0.15)
	if r15 > r05 {
		t.Errorf("R(λ=0.15)=%v > R(λ=0.05)=%v", r15, r05)
	}
}

func TestSweepKnobsShapes(t *testing.T) {
	f := rampField("r", 8)
	ebAxis := compress.Axis{Kind: compress.AbsErrorBound, Min: 1e-12, Max: 1e6}
	knobs := SweepKnobs(ebAxis, f, 25, 1e-6, 0.25)
	if len(knobs) != 25 {
		t.Fatalf("%d knobs", len(knobs))
	}
	vr := f.ValueRange()
	if knobs[0] < 0.9e-6*vr || knobs[len(knobs)-1] > 0.26*vr {
		t.Errorf("knob range [%v, %v] not relative to value range %v", knobs[0], knobs[len(knobs)-1], vr)
	}
	pAxis := compress.Axis{Kind: compress.Precision, Min: 2, Max: 32}
	pknobs := SweepKnobs(pAxis, f, 25, 0, 0)
	for _, k := range pknobs {
		if k != math.Round(k) || k < 2 || k > 32 {
			t.Errorf("precision knob %v invalid", k)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	fc := &fakeCompressor{scale: 100}
	if _, err := Train(fc, nil, Config{}); err == nil {
		t.Error("no fields accepted")
	}
	fw, err := Train(fc, []*grid.Field{rampField("a", 16)}, Config{Trees: 10, StationaryPoints: 8, AugmentPerField: 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.EstimateConfig(rampField("b", 16), -1); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := fw.EstimateConfig(rampField("b", 16), math.Inf(1)); err == nil {
		t.Error("infinite target accepted")
	}
	if fw.Stats().Samples == 0 || fw.Stats().FieldsTrained != 1 {
		t.Errorf("stats = %+v", fw.Stats())
	}
}

func TestFrameworkRecoversAnalyticLaw(t *testing.T) {
	// With the analytic fake compressor, a trained framework must invert
	// ratio = 100·√eb up to model error on a field family with matching
	// features.
	fc := &fakeCompressor{scale: 100}
	var fields []*grid.Field
	for i := 0; i < 3; i++ {
		fields = append(fields, waveField("train", 12, float64(2+i)))
	}
	fw, err := Train(fc, fields, Config{Trees: 50, StationaryPoints: 15, AugmentPerField: 80, UseCA: false, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	test := waveField("test", 12, 2.5)
	for _, tcr := range []float64{10, 30, 60} {
		est, err := fw.EstimateConfig(test, tcr)
		if err != nil {
			t.Fatal(err)
		}
		achieved := 100 * math.Sqrt(est.Knob)
		relErr := math.Abs(achieved-tcr) / tcr
		if relErr > 0.30 {
			t.Errorf("TCR %v: knob %v achieves %v (err %.0f%%)", tcr, est.Knob, achieved, relErr*100)
		}
	}
}

func TestEstimateBreakdownPopulated(t *testing.T) {
	fc := &fakeCompressor{scale: 100}
	fw, err := Train(fc, []*grid.Field{waveField("a", 12, 3)}, Config{Trees: 10, StationaryPoints: 8, AugmentPerField: 20, UseCA: true})
	if err != nil {
		t.Fatal(err)
	}
	est, err := fw.EstimateConfig(waveField("b", 12, 3), 20)
	if err != nil {
		t.Fatal(err)
	}
	if est.NonConstantR <= 0 || est.NonConstantR > 1 {
		t.Errorf("R = %v", est.NonConstantR)
	}
	if est.AdjustedRatio != 20*est.NonConstantR {
		t.Errorf("ACR = %v, want %v", est.AdjustedRatio, 20*est.NonConstantR)
	}
	if est.AnalysisTime() <= 0 {
		t.Error("analysis time not measured")
	}
}

func TestFeatures4D(t *testing.T) {
	f := grid.MustNew("orb", 3, 8, 8, 8)
	for i := range f.Data {
		f.Data[i] = float32(math.Sin(float64(i) / 50))
	}
	ft := ExtractFeatures(f, 1)
	if ft.ValueRange <= 0 || ft.MND <= 0 || ft.MLD <= 0 {
		t.Errorf("4D features degenerate: %+v", ft)
	}
	// Stride sampling on 4D must not panic and must stay finite.
	fs := ExtractFeatures(f, 2)
	for _, v := range fs.FullVector() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("non-finite 4D sampled feature: %+v", fs)
		}
	}
}

func TestNonConstantRatio4D(t *testing.T) {
	// Orbitals 0–3 oscillate, orbitals 4–7 are zero; 4⁴ blocks align with
	// the orbital boundary, so half the blocks are constant.
	f := grid.MustNew("orb", 8, 8, 8, 8)
	half := f.Size() / 2
	for i := 0; i < half; i++ {
		f.Data[i] = float32(math.Sin(float64(i)))
	}
	r := NonConstantRatio(f, 4, 0.15)
	if r < 0.3 || r > 0.7 {
		t.Errorf("4D R = %v, want roughly half", r)
	}
}

func TestCurvePrecisionAxis(t *testing.T) {
	axis := compress.Axis{Kind: compress.Precision, Min: 2, Max: 32}
	pts := []Stationary{
		{Knob: 32, Ratio: 1.5},
		{Knob: 24, Ratio: 2.5},
		{Knob: 16, Ratio: 6},
		{Knob: 8, Ratio: 30},
	}
	c, err := NewCurve(axis, pts)
	if err != nil {
		t.Fatal(err)
	}
	knob, ok := c.KnobForRatio(4)
	if !ok {
		t.Fatal("ratio 4 should be in range")
	}
	if knob < 16 || knob > 24 || knob != math.Round(knob) {
		t.Errorf("precision for ratio 4 = %v, want integer in [16, 24]", knob)
	}
	// Looser ratios must give lower precisions.
	k30, _ := c.KnobForRatio(29)
	k2, _ := c.KnobForRatio(2)
	if k30 >= k2 {
		t.Errorf("precision ordering wrong: ratio 29 → %v, ratio 2 → %v", k30, k2)
	}
}

func TestEstimateConfigConcurrentUse(t *testing.T) {
	// A trained framework is read-only at inference; concurrent
	// EstimateConfig calls from many goroutines must be safe (run with
	// -race to enforce).
	fc := &fakeCompressor{scale: 100}
	fw, err := Train(fc, []*grid.Field{waveField("a", 12, 3), waveField("b", 12, 4)},
		Config{Trees: 20, StationaryPoints: 8, AugmentPerField: 30})
	if err != nil {
		t.Fatal(err)
	}
	test := waveField("t", 12, 3.5)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := fw.EstimateConfig(test, float64(5+i%40)); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
