package core

// Specialized min/max kernels for full (unclipped) side^d CA blocks. The
// generic odometer in ca.go recomputes a dot product with the stride vector
// for every sample; a full block needs none of that — the interior is a fixed
// lattice walked with incremented offsets. Traversal order matches the
// odometer's (last dimension fastest), so results are identical even for
// blocks containing NaNs, whose comparisons always lose.

// blockRange1D scans a full 1-d block of side samples starting at base.
func blockRange1D(data []float32, base, side, s0 int) (mn, mx float32) {
	mn = data[base]
	mx = mn
	p := base
	for x := 0; x < side; x++ {
		v := data[p]
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		p += s0
	}
	return mn, mx
}

// blockRange2D scans a full side×side block.
func blockRange2D(data []float32, base, side, s0, s1 int) (mn, mx float32) {
	mn = data[base]
	mx = mn
	for y := 0; y < side; y++ {
		p := base + y*s0
		for x := 0; x < side; x++ {
			v := data[p]
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			p += s1
		}
	}
	return mn, mx
}

// blockRange3D scans a full side×side×side block.
func blockRange3D(data []float32, base, side, s0, s1, s2 int) (mn, mx float32) {
	mn = data[base]
	mx = mn
	for z := 0; z < side; z++ {
		zoff := base + z*s0
		for y := 0; y < side; y++ {
			p := zoff + y*s1
			for x := 0; x < side; x++ {
				v := data[p]
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
				p += s2
			}
		}
	}
	return mn, mx
}
