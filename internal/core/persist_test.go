package core

import (
	"bytes"
	"strings"
	"testing"

	"github.com/fxrz-go/fxrz/internal/grid"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	fc := &fakeCompressor{scale: 100}
	var fields []*grid.Field
	for i := 0; i < 2; i++ {
		fields = append(fields, waveField("train", 12, float64(2+i)))
	}
	fw, err := Train(fc, fields, Config{Trees: 20, StationaryPoints: 10, AugmentPerField: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fw.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFramework(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CompressorName() != "fake" {
		t.Errorf("compressor name %q", got.CompressorName())
	}
	lo1, hi1 := fw.TrainedRatioRange()
	lo2, hi2 := got.TrainedRatioRange()
	if lo1 != lo2 || hi1 != hi2 {
		t.Errorf("ratio range changed: (%v,%v) vs (%v,%v)", lo1, hi1, lo2, hi2)
	}
	test := waveField("test", 12, 2.5)
	for _, tcr := range []float64{10, 30, 60} {
		a, err := fw.EstimateConfig(test, tcr)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.EstimateConfig(test, tcr)
		if err != nil {
			t.Fatal(err)
		}
		if a.Knob != b.Knob {
			t.Errorf("tcr %v: knob %v vs %v after reload", tcr, a.Knob, b.Knob)
		}
	}
	if got.Stats().Samples != fw.Stats().Samples {
		t.Errorf("stats lost: %d vs %d", got.Stats().Samples, fw.Stats().Samples)
	}
}

func TestSaveRejectsNonForest(t *testing.T) {
	fc := &fakeCompressor{scale: 100}
	fw, err := Train(fc, []*grid.Field{waveField("a", 12, 3)},
		Config{Model: ModelAdaBoost, StationaryPoints: 8, AugmentPerField: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("AdaBoost framework saved without error")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadFramework(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := LoadFramework(strings.NewReader("not a model at all, definitely")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadFramework(strings.NewReader("FXRZMODEL1 but then junk")); err == nil {
		t.Error("corrupt body accepted")
	}
}
