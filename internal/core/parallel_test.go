package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/ml"
	"github.com/fxrz-go/fxrz/internal/obs"
	"github.com/fxrz-go/fxrz/internal/sz"
)

// TestTrainParallelismDeterminism enforces the tentpole contract: same seed +
// same fields must yield bit-identical frameworks at Parallelism 1, 2 and
// NumCPU — identical sample counts, ratio hulls, model predictions and
// serialized model bytes. The serial baseline runs with obs recording
// disabled and every other run with it enabled, so the test also proves the
// observability layer cannot perturb training (counters are observational
// only and excluded from model serialization).
func TestTrainParallelismDeterminism(t *testing.T) {
	fields := []*grid.Field{
		waveField("det-a", 12, 4),
		waveField("det-b", 12, 9),
		waveField("det-c", 12, 17),
	}
	probe := waveField("det-probe", 12, 6)

	type result struct {
		samples  int
		lo, hi   float64
		knob     float64
		acr      float64
		nonConst float64
		modelSum string
	}
	run := func(p int) result {
		cfg := Config{
			StationaryPoints: 8,
			AugmentPerField:  40,
			Trees:            25,
			Seed:             11,
			UseCA:            true,
			Parallelism:      p,
		}
		fw, err := Train(sz.New(), fields, cfg)
		if err != nil {
			t.Fatalf("Parallelism=%d: %v", p, err)
		}
		lo, hi := fw.TrainedRatioRange()
		est, err := fw.EstimateConfig(probe, (lo+hi)/2)
		if err != nil {
			t.Fatalf("Parallelism=%d: estimate: %v", p, err)
		}
		// Hash the serialized forest alone: Save also gob-encodes TrainStats,
		// whose wall-clock durations legitimately differ between runs. The
		// model bits are the determinism contract — obs counters and timings
		// must never leak into them.
		forest, err := fw.model.(*ml.Forest).MarshalBinary()
		if err != nil {
			t.Fatalf("Parallelism=%d: marshal forest: %v", p, err)
		}
		sum := sha256.Sum256(forest)
		return result{
			samples:  fw.Stats().Samples,
			lo:       lo,
			hi:       hi,
			knob:     est.Knob,
			acr:      est.AdjustedRatio,
			nonConst: est.NonConstantR,
			modelSum: hex.EncodeToString(sum[:]),
		}
	}

	obs.Disable()
	want := run(1) // baseline: serial, recording off

	obs.Enable()
	defer obs.Disable()
	if got := run(1); got != want {
		t.Errorf("obs recording perturbed serial training:\n got %+v\nwant %+v", got, want)
	}
	for _, p := range []int{2, runtime.NumCPU()} {
		if got := run(p); got != want {
			t.Errorf("Parallelism=%d diverged from serial:\n got %+v\nwant %+v", p, got, want)
		}
	}

	// The instrumented runs must have recorded the per-stage spans and
	// compressor run counts the snapshot schema promises.
	s := obs.TakeSnapshot()
	for _, span := range []string{"train/sweep", "train/analysis", "train/assembly", "features/extract", "ca/scan"} {
		if s.Spans[span].Count == 0 {
			t.Errorf("span %q not recorded during instrumented training", span)
		}
	}
	if s.Counters["compressor_runs/sz"] == 0 {
		t.Error("compressor_runs/sz counter not recorded")
	}
}

// TestNonConstantRatioParallelQuick is the testing/quick property of the
// issue: parallel NonConstantRatio must equal the serial reference for
// arbitrary fields, block sides and worker counts.
func TestNonConstantRatioParallelQuick(t *testing.T) {
	property := func(seed int64, dimSel, sideSel, workerSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nd := 1 + int(dimSel)%3
		dims := make([]int, nd)
		for i := range dims {
			dims[i] = 1 + rng.Intn(9)
		}
		f := grid.MustNew("quick", dims...)
		for i := range f.Data {
			// Mix smooth ramps with flat stretches so both block verdicts occur.
			if rng.Intn(3) == 0 {
				f.Data[i] = 1
			} else {
				f.Data[i] = float32(rng.NormFloat64())
			}
		}
		side := 1 + int(sideSel)%5
		workers := 1 + int(workerSel)%8
		serial := NonConstantRatio(f, side, DefaultLambda)
		parallel := NonConstantRatioParallel(f, side, DefaultLambda, workers)
		if serial != parallel {
			t.Logf("dims=%v side=%d workers=%d: serial=%v parallel=%v", dims, side, workers, serial, parallel)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestExtractFeaturesParallelDeterminism checks bit-identical features at
// every worker count on a field large enough to span multiple reduction
// chunks (40³ = 64000 > reductionChunk).
func TestExtractFeaturesParallelDeterminism(t *testing.T) {
	f := waveField("chunked", 40, 7)
	if f.Size() <= reductionChunk {
		t.Fatalf("test field must span multiple chunks; size %d", f.Size())
	}
	serial := ExtractFeaturesParallel(f, 1, 1)
	for _, workers := range []int{2, 3, 8} {
		got := ExtractFeaturesParallel(f, 1, workers)
		if got != serial {
			t.Errorf("workers=%d: features diverged\n got %+v\nwant %+v", workers, got, serial)
		}
	}
	// Strided extraction must agree with the historic entry point.
	if got, want := ExtractFeaturesParallel(f, 4, 8), ExtractFeatures(f, 4); got != want {
		t.Errorf("strided parallel features diverged\n got %+v\nwant %+v", got, want)
	}
}

// TestBuildCurveParallelDeterminism checks curve equality and deterministic
// error reporting across worker counts.
func TestBuildCurveParallelDeterminism(t *testing.T) {
	f := rampField("curve-par", 24)
	comp := &fakeCompressor{scale: 8}
	knobs := SweepKnobs(comp.Axis(), f, 9, 1e-6, 0.25)

	want, err := BuildCurve(comp, f, knobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		got, err := BuildCurveParallel(comp, f, knobs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Points()) != len(want.Points()) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got.Points()), len(want.Points()))
		}
		for i, p := range got.Points() {
			if p != want.Points()[i] {
				t.Errorf("workers=%d: point %d = %+v, want %+v", workers, i, p, want.Points()[i])
			}
		}
	}

	// Failing sweeps must surface the same (lowest-knob) error at any width.
	bad := &failingCompressor{fakeCompressor: fakeCompressor{scale: 8}, failKnob: knobs[2]}
	wantErr := fmt.Sprintf("core: stationary point knob=%g on %s", knobs[2], f.Name)
	for _, workers := range []int{1, 2, 8} {
		_, err := BuildCurveParallel(bad, f, knobs, workers)
		if err == nil || len(err.Error()) < len(wantErr) || err.Error()[:len(wantErr)] != wantErr {
			t.Errorf("workers=%d: err = %v, want prefix %q", workers, err, wantErr)
		}
	}
}

// failingCompressor fails on one specific knob value and otherwise behaves
// like fakeCompressor. It is stateless, so concurrent sweeps stay race-free.
type failingCompressor struct {
	fakeCompressor
	failKnob float64
}

func (f *failingCompressor) Compress(fl *grid.Field, knob float64) ([]byte, error) {
	if knob == f.failKnob {
		return nil, fmt.Errorf("injected failure")
	}
	return f.fakeCompressor.Compress(fl, knob)
}
