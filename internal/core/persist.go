package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/ml"
)

// Framework persistence: a trained model is saved once and reused by many
// runs (and, per the paper's §III-A, by many *users* of the same application
// package). Only random-forest frameworks are persistable — the paper adopts
// RFR, and AdaBoost/SVR exist for the Table III comparison.

const persistMagic = "FXRZMODEL1"

type frameworkDTO struct {
	Cfg        Config
	AxisKind   int
	AxisMin    float64
	AxisMax    float64
	Compressor string
	Forest     []byte
	RatioLo    float64
	RatioHi    float64
	Stats      TrainStats
}

// Save writes a trained framework to w.
func (fw *Framework) Save(w io.Writer) error {
	forest, ok := fw.model.(*ml.Forest)
	if !ok {
		return fmt.Errorf("core: only %s frameworks can be saved (have %T)", ModelRFR, fw.model)
	}
	blob, err := forest.MarshalBinary()
	if err != nil {
		return err
	}
	dto := frameworkDTO{
		Cfg:      fw.cfg,
		AxisKind: int(fw.axis.Kind), AxisMin: fw.axis.Min, AxisMax: fw.axis.Max,
		Compressor: fw.compressor,
		Forest:     blob,
		RatioLo:    fw.ratioLo, RatioHi: fw.ratioHi,
		Stats: fw.stats,
	}
	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	if err := gob.NewEncoder(w).Encode(dto); err != nil {
		return fmt.Errorf("core: encode framework: %w", err)
	}
	return nil
}

// LoadFramework restores a framework saved with Save. The caller is
// responsible for pairing it with the same compressor it was trained for
// (CompressorName tells which).
func LoadFramework(r io.Reader) (*Framework, error) {
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("core: reading model header: %w", err)
	}
	if !bytes.Equal(magic, []byte(persistMagic)) {
		return nil, fmt.Errorf("core: not an FXRZ model file")
	}
	var dto frameworkDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: decode framework: %w", err)
	}
	forest := &ml.Forest{}
	if err := forest.UnmarshalBinary(dto.Forest); err != nil {
		return nil, err
	}
	return &Framework{
		cfg:        dto.Cfg,
		axis:       compress.Axis{Kind: compress.AxisKind(dto.AxisKind), Min: dto.AxisMin, Max: dto.AxisMax},
		compressor: dto.Compressor,
		model:      forest,
		stats:      dto.Stats,
		ratioLo:    dto.RatioLo,
		ratioHi:    dto.RatioHi,
	}, nil
}
