package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/fxrz-go/fxrz/internal/compress"
	"github.com/fxrz-go/fxrz/internal/grid"
	"github.com/fxrz-go/fxrz/internal/pool"
)

// Stationary is one measured (knob setting, compression ratio) point
// obtained by actually running a compressor (§IV-B).
type Stationary struct {
	Knob  float64
	Ratio float64
}

// Curve is the interpolated knob-versus-ratio relation built from stationary
// points. Interpolation is piecewise linear between consecutive points with
// the knob expressed in the axis' model space (log10 of the error bound),
// matching the paper's observation that the relation is approximately linear
// between nearby stationary points.
type Curve struct {
	axis compress.Axis
	// points sorted by ratio ascending, de-duplicated and made monotone.
	pts []Stationary
}

// BuildCurve runs the compressor at each knob setting on the field and
// assembles the interpolation curve. This is the expensive training-time
// step the augmentation then amortises.
func BuildCurve(c compress.Compressor, f *grid.Field, knobs []float64) (*Curve, error) {
	return BuildCurveParallel(c, f, knobs, 1)
}

// BuildCurveParallel is BuildCurve with the per-knob compressor runs fanned
// out over a bounded worker pool. workers <= 1 sweeps serially on the calling
// goroutine. Measurements land in knob-indexed slots and any error reported
// is the lowest-indexed knob's, so the curve — and the error surfaced on
// failure — is identical at every worker count. The compressor must be safe
// for concurrent Compress calls (all built-in codecs are stateless).
func BuildCurveParallel(c compress.Compressor, f *grid.Field, knobs []float64, workers int) (*Curve, error) {
	if len(knobs) < 2 {
		return nil, fmt.Errorf("core: need at least 2 stationary knobs, got %d", len(knobs))
	}
	// Split the budget between the knob sweep and each compressor's intra-field
	// fan-out, and pin the inner width explicitly: a parallel-capable codec
	// left at its zero value would otherwise grab all cores in every worker.
	outer, inner := pool.Split(workers, len(knobs))
	cc := compress.WithWorkers(c, inner)
	pts := make([]Stationary, len(knobs))
	err := pool.RunErr(outer, len(knobs), func(i int) error {
		k := knobs[i]
		r, err := compress.CompressRatio(cc, f, k)
		if err != nil {
			return fmt.Errorf("core: stationary point knob=%g on %s: %w", k, f.Name, err)
		}
		pts[i] = Stationary{Knob: k, Ratio: r}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return NewCurve(c.Axis(), pts)
}

// NewCurve builds a curve from pre-measured stationary points (used by tests
// and by replaying cached sweeps).
func NewCurve(axis compress.Axis, pts []Stationary) (*Curve, error) {
	if len(pts) < 2 {
		return nil, fmt.Errorf("core: need at least 2 stationary points, got %d", len(pts))
	}
	sorted := append([]Stationary(nil), pts...)
	// Sort by model-space knob (looser → larger ratio for all axes).
	sort.Slice(sorted, func(i, j int) bool {
		return axis.ToModel(sorted[i].Knob) < axis.ToModel(sorted[j].Knob)
	})
	// Enforce ratio monotonicity: lossy back ends occasionally dip; the
	// cumulative max keeps the inverse well defined (the paper's curves are
	// monotone at its measurement granularity).
	clean := sorted[:0]
	maxRatio := math.Inf(-1)
	for _, p := range sorted {
		if p.Ratio <= 0 || math.IsNaN(p.Ratio) {
			continue
		}
		if p.Ratio > maxRatio {
			clean = append(clean, p)
			maxRatio = p.Ratio
		}
	}
	if len(clean) < 2 {
		return nil, fmt.Errorf("core: stationary points collapse to %d after monotone cleanup", len(clean))
	}
	return &Curve{axis: axis, pts: clean}, nil
}

// Points returns the cleaned stationary points, ratio-ascending.
func (c *Curve) Points() []Stationary { return c.pts }

// RatioRange returns the span of ratios the curve can invert.
func (c *Curve) RatioRange() (lo, hi float64) {
	return c.pts[0].Ratio, c.pts[len(c.pts)-1].Ratio
}

// KnobForRatio interpolates the knob expected to achieve the given ratio.
// Ratios outside the stationary range clamp to the nearest endpoint and
// report ok=false.
func (c *Curve) KnobForRatio(ratio float64) (knob float64, ok bool) {
	pts := c.pts
	if ratio <= pts[0].Ratio {
		return pts[0].Knob, ratio == pts[0].Ratio
	}
	if ratio >= pts[len(pts)-1].Ratio {
		return pts[len(pts)-1].Knob, ratio == pts[len(pts)-1].Ratio
	}
	i := sort.Search(len(pts), func(k int) bool { return pts[k].Ratio >= ratio }) // first >= ratio
	a, b := pts[i-1], pts[i]
	t := (ratio - a.Ratio) / (b.Ratio - a.Ratio)
	ma, mb := c.axis.ToModel(a.Knob), c.axis.ToModel(b.Knob)
	return c.axis.FromModel(ma + t*(mb-ma)), true
}

// Sample is one augmented training observation: a ratio and the knob the
// curve attributes to it.
type Sample struct {
	Ratio float64
	Knob  float64
}

// Augment generates n samples uniformly spaced in ratio across the curve's
// valid range — the paper's interpolation-based data augmentation, which
// multiplies ~25 compressor runs into an arbitrarily dense training set
// without running the compressor again.
func (c *Curve) Augment(n int) []Sample {
	if n < 2 {
		n = 2
	}
	lo, hi := c.RatioRange()
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		r := lo + (hi-lo)*float64(i)/float64(n-1)
		k, _ := c.KnobForRatio(r)
		out = append(out, Sample{Ratio: r, Knob: k})
	}
	return out
}

// InterpolationError measures the curve's self-consistency the way §IV-B
// reports it (3–5% per compressor): for each interior stationary point, a
// curve is rebuilt without it, the knob for its ratio is interpolated, the
// compressor is run at that knob, and the relative ratio error is averaged.
func InterpolationError(c compress.Compressor, f *grid.Field, knobs []float64) (float64, error) {
	full, err := BuildCurve(c, f, knobs)
	if err != nil {
		return 0, err
	}
	pts := full.Points()
	if len(pts) < 3 {
		return 0, fmt.Errorf("core: need 3+ stationary points for leave-one-out, got %d", len(pts))
	}
	var total float64
	var count int
	for i := 1; i < len(pts)-1; i++ {
		rest := make([]Stationary, 0, len(pts)-1)
		rest = append(rest, pts[:i]...)
		rest = append(rest, pts[i+1:]...)
		sub, err := NewCurve(c.Axis(), rest)
		if err != nil {
			return 0, err
		}
		knob, ok := sub.KnobForRatio(pts[i].Ratio)
		if !ok {
			continue
		}
		measured, err := compress.CompressRatio(c, f, knob)
		if err != nil {
			return 0, err
		}
		total += math.Abs(measured-pts[i].Ratio) / pts[i].Ratio
		count++
	}
	if count == 0 {
		return 0, fmt.Errorf("core: no interior points usable")
	}
	return total / float64(count), nil
}
